(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (fig1..fig7), plus bechamel micro-benchmarks of the
   system's building blocks (perf).  Run with no arguments for
   everything except perf. *)

let ppf = Format.std_formatter

let fig1 () = Dse.Report.print_fig1 ppf

let fig2 () =
  Dse.Report.print_fig2 ppf (Dse.Report.run_fig2 Apps.Registry.blastn)

let fig3 () =
  Dse.Report.print_fig3 ppf (Dse.Report.run_fig3 Apps.Registry.blastn)

let fig4 () = Dse.Report.print_fig4 ppf (Dse.Report.run_fig4 ())
let fig5 () = Dse.Report.print_fig5 ppf (Dse.Report.run_fig5 ())

let fig6 () =
  Dse.Report.print_fig6 ppf (Dse.Measure.build Apps.Registry.blastn)

let fig7 () = Dse.Report.print_fig7 ppf (Dse.Report.run_fig7 ())

let ablation () =
  Dse.Ablation.print_noise ppf
    (Dse.Ablation.noise_study ~weights:Dse.Cost.resource_weights
       Apps.Registry.blastn);
  Format.printf "@.";
  Dse.Ablation.print_variants ppf
    (Dse.Ablation.variant_study ~weights:Dse.Cost.runtime_weights
       (Dse.Measure.build Apps.Registry.frag));
  Format.printf "@.";
  Dse.Ablation.print_independence ppf
    (Dse.Ablation.independence_study ~weights:Dse.Cost.runtime_weights)

let energy () =
  Format.printf
    "Energy optimization (paper future work; w1=1, w2=1, w3=100):@.";
  List.iter
    (fun app ->
      Format.printf "%s:@." app.Apps.Registry.name;
      let o = Dse.Energy.optimize ~weights:Dse.Energy.energy_weights app in
      Dse.Energy.print_outcome ppf o)
    Apps.Registry.all

(* Bechamel micro-benchmarks: one per pipeline stage. *)
let perf () =
  let open Bechamel in
  let blastn_prog = Lazy.force Apps.Registry.blastn.Apps.Registry.program in
  let warm_epoch =
    Test.make ~name:"sim: BLASTN warm epoch" (Staged.stage (fun () ->
        ignore (Sim.Machine.run ~reps:2 Arch.Config.base blastn_prog)))
  in
  let synth_estimate =
    Test.make ~name:"synth: resource estimate" (Staged.stage (fun () ->
        ignore (Synth.Estimate.config Arch.Config.base)))
  in
  let compile =
    Test.make ~name:"minic: compile BLASTN" (Staged.stage (fun () ->
        ignore (Minic.Codegen.compile Apps.Blastn.program)))
  in
  let model = Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.blastn in
  let solver =
    Test.make ~name:"binlp: dcache model solve" (Staged.stage (fun () ->
        ignore (Optim.Binlp.solve (Dse.Formulate.make Dse.Cost.runtime_only model))))
  in
  let cache =
    let c =
      Sim.Cache.create ~ways:2 ~way_kb:4 ~line_words:8
        ~replacement:Arch.Config.Lru ~rng:(Sim.Rng.create ~seed:1)
    in
    Test.make ~name:"cache: read probe" (Staged.stage (fun () ->
        ignore (Sim.Cache.read c 0x1040)))
  in
  let tests = Test.make_grouped ~name:"uarch-reconf" [ warm_epoch; compile; synth_estimate; solver; cache ] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "Micro-benchmarks (bechamel, monotonic clock):@.";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> Format.printf "  %-40s %14.1f ns/run@." name est
      | Some [] | None -> Format.printf "  %-40s (no estimate)@." name)
    (List.sort compare rows)

let convex () =
  Format.printf
    "Convex recast study (paper future work): McCormick + LP-based B&B vs      exact combinatorial B&B@.";
  List.iter
    (fun app ->
      let model = Dse.Measure.build app in
      let s = Dse.Convex.run ~weights:Dse.Cost.runtime_weights model in
      Dse.Convex.print ppf s)
    Apps.Registry.all

let baselines () =
  Format.printf
    "Heuristic DSE baselines vs the paper's method (w1=100, w2=1)@.";
  Format.printf
    "(builds = configurations synthesized and executed; the paper budgets      ~30 min each)@.";
  List.iter
    (fun app ->
      let weights = Dse.Cost.runtime_weights in
      let paper = Dse.Heuristic.paper_method ~weights app in
      let descent =
        Dse.Heuristic.coordinate_descent
          ~features:(Apps.Features.of_app app)
          ~weights app
      in
      let random56 =
        Dse.Heuristic.random_search ~builds:paper.Dse.Heuristic.builds ~weights app
      in
      let random200 = Dse.Heuristic.random_search ~builds:200 ~weights app in
      Dse.Heuristic.print_comparison ppf app.Apps.Registry.name
        [ paper; descent; random56; random200 ])
    Apps.Registry.all

let sched () =
  Format.printf
    "Generic-domain study: DRR scheduler tuning under a 12 KB state budget      (the paper's 'other configuration management problems')@.";
  Format.printf "efficiency-first (weights 100, 1):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 100.0; 1.0 |]);
  Format.printf "memory-first (weights 1, 100):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 1.0; 100.0 |])

let experiments =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("ablation", ablation); ("energy", energy); ("convex", convex);
    ("baselines", baselines); ("sched", sched);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run name =
    match List.assoc_opt name experiments with
    | Some f ->
        Format.printf "@.";
        f ();
        Format.printf "@."
    | None when name = "perf" -> perf ()
    | None ->
        Format.eprintf "unknown experiment %S; known: %s, perf@." name
          (String.concat ", " (List.map fst experiments));
        exit 2
  in
  match args with
  | [] -> List.iter (fun (n, _) -> run n) experiments
  | names -> List.iter run names
