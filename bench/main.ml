(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (fig1..fig7), plus bechamel micro-benchmarks of the
   system's building blocks (perf).  Run with no arguments for
   everything except perf.

   Each experiment additionally emits a machine-readable
   BENCH_<target>.json next to its ASCII output: wall-clock, simulated
   cycles, solver nodes, build counts (deltas over the run) plus the
   full metrics-registry snapshot.  The shared observability term
   (Obs_cli) provides --trace-out/--metrics-out/--profile-out exactly
   as in the other CLIs.

   History: unless --history none, every experiment appends one JSONL
   entry (git rev, experiment, numeric metrics) to the history file,
   and --check compares the fresh run against the median of the last
   runs first — relative thresholds per metric family — exiting
   nonzero if any experiment regressed. *)

let ppf = Format.std_formatter

let fig1 () = Dse.Report.print_fig1 ppf

let fig2 () =
  Dse.Report.print_fig2 ppf (Dse.Report.run_fig2 Apps.Registry.blastn)

let fig3 () =
  Dse.Report.print_fig3 ppf (Dse.Report.run_fig3 Apps.Registry.blastn)

let fig4 () = Dse.Report.print_fig4 ppf (Dse.Report.run_fig4 ())
let fig5 () = Dse.Report.print_fig5 ppf (Dse.Report.run_fig5 ())

let fig6 () =
  Dse.Report.print_fig6 ppf (Dse.Measure.build Apps.Registry.blastn)

let fig7 () = Dse.Report.print_fig7 ppf (Dse.Report.run_fig7 ())

let ablation () =
  Dse.Ablation.print_noise ppf
    (Dse.Ablation.noise_study ~weights:Dse.Cost.resource_weights
       Apps.Registry.blastn);
  Format.printf "@.";
  Dse.Ablation.print_variants ppf
    (Dse.Ablation.variant_study ~weights:Dse.Cost.runtime_weights
       (Dse.Measure.build Apps.Registry.frag));
  Format.printf "@.";
  Dse.Ablation.print_independence ppf
    (Dse.Ablation.independence_study ~weights:Dse.Cost.runtime_weights)

let energy () =
  Format.printf
    "Energy optimization (paper future work; w1=1, w2=1, w3=100):@.";
  List.iter
    (fun app ->
      Format.printf "%s:@." app.Apps.Registry.name;
      let o = Dse.Energy.optimize ~weights:Dse.Energy.energy_weights app in
      Dse.Energy.print_outcome ppf o)
    Apps.Registry.all

(* Bechamel micro-benchmarks: one per pipeline stage. *)
let perf () =
  let open Bechamel in
  let blastn_prog = Lazy.force Apps.Registry.blastn.Apps.Registry.program in
  let warm_epoch =
    Test.make ~name:"sim: BLASTN warm epoch" (Staged.stage (fun () ->
        ignore (Sim.Machine.run ~reps:2 Arch.Config.base blastn_prog)))
  in
  let synth_estimate =
    Test.make ~name:"synth: resource estimate" (Staged.stage (fun () ->
        ignore (Synth.Estimate.config Arch.Config.base)))
  in
  let compile =
    Test.make ~name:"minic: compile BLASTN" (Staged.stage (fun () ->
        ignore (Minic.Codegen.compile Apps.Blastn.program)))
  in
  let model = Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.blastn in
  let solver =
    Test.make ~name:"binlp: dcache model solve" (Staged.stage (fun () ->
        ignore (Optim.Binlp.solve (Dse.Formulate.make Dse.Cost.runtime_only model))))
  in
  let cache =
    let c =
      Sim.Cache.create ~ways:2 ~way_kb:4 ~line_words:8
        ~replacement:Arch.Config.Lru ~rng:(Sim.Rng.create ~seed:1)
    in
    Test.make ~name:"cache: read probe" (Staged.stage (fun () ->
        ignore (Sim.Cache.read c 0x1040)))
  in
  let tests = Test.make_grouped ~name:"uarch-reconf" [ warm_epoch; compile; synth_estimate; solver; cache ] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "Micro-benchmarks (bechamel, monotonic clock):@.";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> Format.printf "  %-40s %14.1f ns/run@." name est
      | Some [] | None -> Format.printf "  %-40s (no estimate)@." name)
    (List.sort compare rows)

let convex () =
  Format.printf
    "Convex recast study (paper future work): McCormick + LP-based B&B vs      exact combinatorial B&B@.";
  List.iter
    (fun app ->
      let model = Dse.Measure.build app in
      let s = Dse.Convex.run ~weights:Dse.Cost.runtime_weights model in
      Dse.Convex.print ppf s)
    Apps.Registry.all

let baselines () =
  Format.printf
    "Heuristic DSE baselines vs the paper's method (w1=100, w2=1)@.";
  Format.printf
    "(builds = configurations synthesized and executed; the paper budgets      ~30 min each)@.";
  List.iter
    (fun app ->
      let weights = Dse.Cost.runtime_weights in
      let paper = Dse.Heuristic.paper_method ~weights app in
      let descent =
        Dse.Heuristic.coordinate_descent
          ~features:(Apps.Features.of_app app)
          ~weights app
      in
      let random56 =
        Dse.Heuristic.random_search ~builds:paper.Dse.Heuristic.builds ~weights app
      in
      let random200 = Dse.Heuristic.random_search ~builds:200 ~weights app in
      Dse.Heuristic.print_comparison ppf app.Apps.Registry.name
        [ paper; descent; random56; random200 ])
    Apps.Registry.all

let sched () =
  Format.printf
    "Generic-domain study: DRR scheduler tuning under a 12 KB state budget      (the paper's 'other configuration management problems')@.";
  Format.printf "efficiency-first (weights 100, 1):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 100.0; 1.0 |]);
  Format.printf "memory-first (weights 1, 100):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 1.0; 100.0 |])

(* Static-vs-scheduled figure (ROADMAP item 2): phase-aware
   reconfiguration head to head with the static optimum on every
   target, over apps with distinct phase structure.  Single-phase apps
   collapse to the static pick by construction; the bi-modal [phases]
   kernel is the showcase where the schedule wins net of switches. *)
let phases_fig () =
  Format.printf
    "Static vs phase-scheduled reconfiguration (w1=100, w2=1, schedule \
     dimensions):@.";
  List.iter
    (fun (module T : Dse.Target.S) ->
      let module S = Dse.Stack.Make (T) in
      Format.printf "%s:@." T.name;
      List.iter
        (fun app ->
          let o = S.Schedule.run ~weights:Dse.Cost.runtime_weights app in
          S.Schedule.print ppf o)
        [
          Apps.Registry.blastn; Apps.Registry.drr; Apps.Registry.frag;
          Apps.Extra.phases;
        ])
    Dse.Targets.all

let experiments =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("ablation", ablation); ("energy", energy); ("convex", convex);
    ("baselines", baselines); ("sched", sched); ("phases", phases_fig);
  ]

(* The numeric per-experiment measurements: the deltas of the
   interesting registry counters over the experiment's execution.
   These drive both the BENCH_<name>.json fields and the history
   entry, so the regression gate checks exactly what the JSON
   reports. *)
let measurements ~wall_ns ~(before : Obs.Metrics.snapshot)
    ~(after : Obs.Metrics.snapshot) =
  let delta key =
    Obs.Metrics.counter_value after key - Obs.Metrics.counter_value before key
  in
  let gauge key =
    match Obs.Metrics.find after key with
    | Some (Obs.Metrics.Gauge v) -> v
    | _ -> 0.0
  in
  let wall_s = Int64.to_float wall_ns /. 1e9 in
  [
    ("wall_clock_s", wall_s);
    ("sim_cycles", float_of_int (delta "sim.cycles"));
    ("sim_runs", float_of_int (delta "sim.runs"));
    ("solver_nodes", float_of_int (delta "binlp.nodes"));
    ("solver_incumbents", float_of_int (delta "binlp.incumbents"));
    ("builds", float_of_int (delta "dse.builds"));
    ("bounds_computed", float_of_int (delta "dse.bounds.computed"));
    ("bounds_pruned", float_of_int (delta "dse.bounds.pruned"));
    ("engine_hits", float_of_int (delta "dse.engine.hits"));
    ("engine_misses", float_of_int (delta "dse.engine.misses"));
    ("engine_inflight_dedup", float_of_int (delta "dse.engine.inflight_dedup"));
    ("heuristic_builds", float_of_int (delta "heuristic.builds"));
    (* peak, not post-join: the gauge is a monotone high-water mark,
       so the value survives pool shutdown (see {!Dse.Pool}) *)
    ("pool_tasks", float_of_int (delta "dse.pool.tasks"));
    ("pool_workers", gauge "dse.pool.workers");
    ("decode_programs", float_of_int (delta "sim.decode.programs"));
    ("decode_insns", float_of_int (delta "sim.decode.insns"));
    ("phases_detected", float_of_int (delta "dse.schedule.phases"));
    ("schedule_solver_nodes", float_of_int (delta "dse.schedule.nodes"));
    (* last verified scheduled-vs-static gain; a gauge, not a delta *)
    ("schedule_gain_pct", gauge "dse.schedule.gain_pct");
    ( "sim_cycles_per_second",
      if wall_s > 0.0 then float_of_int (delta "sim.cycles") /. wall_s
      else 0.0 );
    ( "binlp_nodes_per_second",
      if wall_s > 0.0 then float_of_int (delta "binlp.nodes") /. wall_s
      else 0.0 );
  ]

(* "wall_clock_s" and the derived throughput are floats; every counter
   delta renders as an int so the JSON stays shaped as before. *)
let float_keys =
  [
    "wall_clock_s"; "sim_cycles_per_second"; "binlp_nodes_per_second";
    "schedule_gain_pct";
  ]

let measurement_json (key, v) =
  if List.mem key float_keys then (key, Obs.Json.Float v)
  else (key, Obs.Json.Int (int_of_float v))

(* Summary of the engine's build-duration histogram (whole process so
   far): count, sum and log2-bucket p50/p99 upper estimates. *)
let build_seconds_json (after : Obs.Metrics.snapshot) =
  match Obs.Metrics.find after "dse.engine.build_seconds" with
  | Some (Obs.Metrics.Histogram { count; sum; _ } as h) when count > 0 ->
      let q p =
        match Obs.Metrics.quantile p h with
        | Some le -> Obs.Json.Float le
        | None -> Obs.Json.Null
      in
      Obs.Json.Obj
        [
          ("count", Obs.Json.Int count);
          ("sum", Obs.Json.Float sum);
          ("p50", q 0.5);
          ("p99", q 0.99);
        ]
  | _ -> Obs.Json.Null

(* Profiler cost accounting for one experiment: samples taken and span
   boundaries crossed during it, and the calibrated overhead estimate
   as a percentage of the experiment's wall clock. *)
let profiler_json ~wall_ns ~samples ~ops =
  let overhead = Obs.Profile.overhead_ns ~ops ~samples in
  Obs.Json.Obj
    [
      ("samples", Obs.Json.Int samples);
      ("span_ops", Obs.Json.Int ops);
      ( "overhead_pct",
        Obs.Json.Float
          (if wall_ns > 0L then overhead /. Int64.to_float wall_ns *. 100.0
           else 0.0) );
    ]

let bench_json name ~ms ~profiler ~(after : Obs.Metrics.snapshot) =
  Obs.Json.Obj
    ([ ("target", Obs.Json.String name) ]
    @ List.map measurement_json ms
    @ [ ("build_seconds", build_seconds_json after) ]
    @ (match profiler with None -> [] | Some j -> [ ("profiler", j) ])
    @ [ ("metrics", Obs.Metrics.to_json after) ])

let write_bench name json =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Json.to_string json));
  Format.eprintf "wrote %s@." path

let git_rev () =
  match Sys.getenv_opt "BENCH_GIT_REV" with
  | Some r -> r
  | None -> (
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

exception Bail of int

let run_experiment ~history_path ~check ~rev ~profiling regressions name =
  match List.assoc_opt name experiments with
  | Some f ->
      let before = Obs.Metrics.snapshot () in
      let samples0 = Obs.Profile.total_samples () in
      let ops0 = Obs.Profile.span_ops () in
      let t0 = Obs.Clock.now_ns () in
      Obs.Span.with_ ~cat:"bench" ("bench." ^ name) (fun () ->
          Format.printf "@.";
          f ();
          Format.printf "@.");
      let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
      let after = Obs.Metrics.snapshot () in
      let ms = measurements ~wall_ns ~before ~after in
      let profiler =
        if profiling then
          Some
            (profiler_json ~wall_ns
               ~samples:(Obs.Profile.total_samples () - samples0)
               ~ops:(Obs.Profile.span_ops () - ops0))
        else None
      in
      write_bench name (bench_json name ~ms ~profiler ~after);
      (match history_path with
      | None -> ()
      | Some path ->
          let entry =
            {
              Obs.History.rev = Lazy.force rev;
              target = name;
              time = Unix.gettimeofday ();
              metrics = ms;
            }
          in
          (if check then
             match Obs.History.load path with
             | Error m ->
                 Format.eprintf "%s@." m;
                 raise (Bail 2)
             | Ok history ->
                 let regs = Obs.History.check ~history entry in
                 List.iter
                   (fun r ->
                     Format.eprintf "%s: REGRESSION %a@." name
                       Obs.History.pp_regression r)
                   regs;
                 if regs <> [] then regressions := (name, regs) :: !regressions);
          Obs.History.append path entry)
  | None when name = "perf" -> perf ()
  | None ->
      Format.eprintf "unknown experiment %S; known: %s, perf@." name
        (String.concat ", " (List.map fst experiments));
      raise (Bail 2)

let main names check history rev obs =
  let body () =
    Obs_cli.with_reporting obs "bench" @@ fun () ->
    let history_path =
      match history with "none" | "" -> None | path -> Some path
    in
    let rev =
      lazy (match rev with Some r -> r | None -> git_rev ())
    in
    let profiling = obs.Obs_cli.profile_out <> None in
    let regressions = ref [] in
    let run = run_experiment ~history_path ~check ~rev ~profiling regressions in
    (match names with
    | [] -> List.iter (fun (n, _) -> run n) experiments
    | names -> List.iter run names);
    match !regressions with
    | [] -> 0
    | regs ->
        Format.eprintf "bench --check: %d experiment(s) regressed@."
          (List.length regs);
        1
  in
  match body () with code -> code | exception Bail code -> code

let cmd =
  let open Cmdliner in
  let names_arg =
    let doc =
      "Experiments to run (default: all except perf).  Known: fig1..fig7, \
       ablation, energy, convex, baselines, sched, phases, perf."
    in
    Arg.(value & pos_all string [] & info [] ~doc ~docv:"EXPERIMENT")
  in
  let check_arg =
    let doc =
      "Compare each experiment's fresh measurements against the median of \
       its recent history entries and exit nonzero if any metric crosses \
       its relative threshold."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let history_arg =
    let doc =
      "Append each experiment's measurements to this JSONL history file \
       ($(b,none) to disable history entirely)."
    in
    Arg.(
      value & opt string "BENCH_history.jsonl" & info [ "history" ] ~doc ~docv:"FILE")
  in
  let rev_arg =
    let doc =
      "Revision label for history entries (default: $(b,BENCH_GIT_REV) or \
       $(b,git rev-parse --short HEAD))."
    in
    Arg.(value & opt (some string) None & info [ "rev" ] ~doc ~docv:"REV")
  in
  let doc = "regenerate the paper's evaluation and gate on bench history" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const main $ names_arg $ check_arg $ history_arg $ rev_arg $ Obs_cli.term)

let () = exit (Cmdliner.Cmd.eval' cmd)
