(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (fig1..fig7), plus bechamel micro-benchmarks of the
   system's building blocks (perf).  Run with no arguments for
   everything except perf.

   Each experiment additionally emits a machine-readable
   BENCH_<target>.json next to its ASCII output: wall-clock, simulated
   cycles, solver nodes, build counts (deltas over the run) plus the
   full metrics-registry snapshot.  --trace-out/--metrics-out export
   the usual Chrome trace / metrics dump for the whole invocation. *)

let ppf = Format.std_formatter

let fig1 () = Dse.Report.print_fig1 ppf

let fig2 () =
  Dse.Report.print_fig2 ppf (Dse.Report.run_fig2 Apps.Registry.blastn)

let fig3 () =
  Dse.Report.print_fig3 ppf (Dse.Report.run_fig3 Apps.Registry.blastn)

let fig4 () = Dse.Report.print_fig4 ppf (Dse.Report.run_fig4 ())
let fig5 () = Dse.Report.print_fig5 ppf (Dse.Report.run_fig5 ())

let fig6 () =
  Dse.Report.print_fig6 ppf (Dse.Measure.build Apps.Registry.blastn)

let fig7 () = Dse.Report.print_fig7 ppf (Dse.Report.run_fig7 ())

let ablation () =
  Dse.Ablation.print_noise ppf
    (Dse.Ablation.noise_study ~weights:Dse.Cost.resource_weights
       Apps.Registry.blastn);
  Format.printf "@.";
  Dse.Ablation.print_variants ppf
    (Dse.Ablation.variant_study ~weights:Dse.Cost.runtime_weights
       (Dse.Measure.build Apps.Registry.frag));
  Format.printf "@.";
  Dse.Ablation.print_independence ppf
    (Dse.Ablation.independence_study ~weights:Dse.Cost.runtime_weights)

let energy () =
  Format.printf
    "Energy optimization (paper future work; w1=1, w2=1, w3=100):@.";
  List.iter
    (fun app ->
      Format.printf "%s:@." app.Apps.Registry.name;
      let o = Dse.Energy.optimize ~weights:Dse.Energy.energy_weights app in
      Dse.Energy.print_outcome ppf o)
    Apps.Registry.all

(* Bechamel micro-benchmarks: one per pipeline stage. *)
let perf () =
  let open Bechamel in
  let blastn_prog = Lazy.force Apps.Registry.blastn.Apps.Registry.program in
  let warm_epoch =
    Test.make ~name:"sim: BLASTN warm epoch" (Staged.stage (fun () ->
        ignore (Sim.Machine.run ~reps:2 Arch.Config.base blastn_prog)))
  in
  let synth_estimate =
    Test.make ~name:"synth: resource estimate" (Staged.stage (fun () ->
        ignore (Synth.Estimate.config Arch.Config.base)))
  in
  let compile =
    Test.make ~name:"minic: compile BLASTN" (Staged.stage (fun () ->
        ignore (Minic.Codegen.compile Apps.Blastn.program)))
  in
  let model = Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.blastn in
  let solver =
    Test.make ~name:"binlp: dcache model solve" (Staged.stage (fun () ->
        ignore (Optim.Binlp.solve (Dse.Formulate.make Dse.Cost.runtime_only model))))
  in
  let cache =
    let c =
      Sim.Cache.create ~ways:2 ~way_kb:4 ~line_words:8
        ~replacement:Arch.Config.Lru ~rng:(Sim.Rng.create ~seed:1)
    in
    Test.make ~name:"cache: read probe" (Staged.stage (fun () ->
        ignore (Sim.Cache.read c 0x1040)))
  in
  let tests = Test.make_grouped ~name:"uarch-reconf" [ warm_epoch; compile; synth_estimate; solver; cache ] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "Micro-benchmarks (bechamel, monotonic clock):@.";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> Format.printf "  %-40s %14.1f ns/run@." name est
      | Some [] | None -> Format.printf "  %-40s (no estimate)@." name)
    (List.sort compare rows)

let convex () =
  Format.printf
    "Convex recast study (paper future work): McCormick + LP-based B&B vs      exact combinatorial B&B@.";
  List.iter
    (fun app ->
      let model = Dse.Measure.build app in
      let s = Dse.Convex.run ~weights:Dse.Cost.runtime_weights model in
      Dse.Convex.print ppf s)
    Apps.Registry.all

let baselines () =
  Format.printf
    "Heuristic DSE baselines vs the paper's method (w1=100, w2=1)@.";
  Format.printf
    "(builds = configurations synthesized and executed; the paper budgets      ~30 min each)@.";
  List.iter
    (fun app ->
      let weights = Dse.Cost.runtime_weights in
      let paper = Dse.Heuristic.paper_method ~weights app in
      let descent =
        Dse.Heuristic.coordinate_descent
          ~features:(Apps.Features.of_app app)
          ~weights app
      in
      let random56 =
        Dse.Heuristic.random_search ~builds:paper.Dse.Heuristic.builds ~weights app
      in
      let random200 = Dse.Heuristic.random_search ~builds:200 ~weights app in
      Dse.Heuristic.print_comparison ppf app.Apps.Registry.name
        [ paper; descent; random56; random200 ])
    Apps.Registry.all

let sched () =
  Format.printf
    "Generic-domain study: DRR scheduler tuning under a 12 KB state budget      (the paper's 'other configuration management problems')@.";
  Format.printf "efficiency-first (weights 100, 1):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 100.0; 1.0 |]);
  Format.printf "memory-first (weights 1, 100):@.";
  Dse.Sched_tuning.print_outcome ppf
    (Dse.Sched_tuning.Tuner.optimize ~weights:[| 1.0; 100.0 |])

let experiments =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("ablation", ablation); ("energy", energy); ("convex", convex);
    ("baselines", baselines); ("sched", sched);
  ]

(* Machine-readable per-target output: wall clock plus the deltas of
   the interesting registry counters over the target's execution, and
   the full end-of-target snapshot. *)
let bench_json name ~wall_ns ~(before : Obs.Metrics.snapshot)
    ~(after : Obs.Metrics.snapshot) =
  let delta key = Obs.Metrics.counter_value after key - Obs.Metrics.counter_value before key in
  Obs.Json.Obj
    [
      ("target", Obs.Json.String name);
      ("wall_clock_s", Obs.Json.Float (Int64.to_float wall_ns /. 1e9));
      ("sim_cycles", Obs.Json.Int (delta "sim.cycles"));
      ("sim_runs", Obs.Json.Int (delta "sim.runs"));
      ("solver_nodes", Obs.Json.Int (delta "binlp.nodes"));
      ("solver_incumbents", Obs.Json.Int (delta "binlp.incumbents"));
      ("builds", Obs.Json.Int (delta "dse.builds"));
      ("bounds_computed", Obs.Json.Int (delta "dse.bounds.computed"));
      ("bounds_pruned", Obs.Json.Int (delta "dse.bounds.pruned"));
      ("engine_hits", Obs.Json.Int (delta "dse.engine.hits"));
      ("engine_misses", Obs.Json.Int (delta "dse.engine.misses"));
      ("engine_inflight_dedup", Obs.Json.Int (delta "dse.engine.inflight_dedup"));
      ("heuristic_builds", Obs.Json.Int (delta "heuristic.builds"));
      ("metrics", Obs.Metrics.to_json after);
    ]

let write_bench name json =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Json.to_string json));
  Format.eprintf "wrote %s@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace_out = ref None and metrics_out = ref None in
  let verbosity = ref 0 in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        parse rest
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        parse rest
    | "-v" :: rest ->
        incr verbosity;
        parse rest
    | "-vv" :: rest ->
        verbosity := !verbosity + 2;
        parse rest
    | ("--trace-out" | "--metrics-out") :: [] ->
        Format.eprintf "missing FILE argument@.";
        exit 2
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse args;
  let names = List.rev !names in
  Obs.Log.setup ~verbosity:!verbosity ();
  if !trace_out <> None then Obs.Trace.set_enabled true;
  let run name =
    match List.assoc_opt name experiments with
    | Some f ->
        let before = Obs.Metrics.snapshot () in
        let t0 = Obs.Clock.now_ns () in
        Obs.Span.with_ ~cat:"bench" ("bench." ^ name) (fun () ->
            Format.printf "@.";
            f ();
            Format.printf "@.");
        let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
        let after = Obs.Metrics.snapshot () in
        write_bench name (bench_json name ~wall_ns ~before ~after)
    | None when name = "perf" -> perf ()
    | None ->
        Format.eprintf "unknown experiment %S; known: %s, perf@." name
          (String.concat ", " (List.map fst experiments));
        exit 2
  in
  (match names with
  | [] -> List.iter (fun (n, _) -> run n) experiments
  | names -> List.iter run names);
  (match !trace_out with
  | None -> ()
  | Some path ->
      Obs.Export.write_trace path;
      Format.eprintf "wrote Chrome trace to %s@." path);
  match !metrics_out with
  | None -> ()
  | Some path ->
      Obs.Export.write_metrics path;
      Format.eprintf "wrote metrics snapshot to %s@." path
