(* Calibrated LUT/BRAM constants for the MicroBlaze-like core.

   The core is far leaner than LEON2 — a 3-stage scalar pipeline with
   no register windows — and targets a correspondingly smaller device
   (a quarter of the LEON2 part), so area trade-offs stay meaningful:
   the largest cache geometries in the decision space do not fit. *)

let device_luts = 9_600
let device_brams = 72

let core_luts = 1850
let barrel_shifter_luts = 260

let multiplier_luts = function
  | Arch.Mb_config.Mb_mul_none -> 0
  | Arch.Mb_config.Mb_mul32 -> 340
  | Arch.Mb_config.Mb_mul64 -> 640

let divider_luts = 410
let icache_ctrl_luts = 380
let dcache_ctrl_luts = 450
let cache_way_luts = 70
let cache_kb_luts = 6
let cache_line8_luts = 180
let lru_luts = 110
let core_brams = 4

(* BRAM geometry is a property of the FPGA family, not the core: reuse
   the LEON2 per-way data/tag block counts. *)
let cache_way_data_brams = Costs.cache_way_data_brams
let cache_way_tag_brams = Costs.cache_way_tag_brams
