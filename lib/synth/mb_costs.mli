(** Calibrated area constants for the MicroBlaze-like core and its
    (smaller) target device.  Counterpart of {!Costs}. *)

val device_luts : int
val device_brams : int

val core_luts : int
val barrel_shifter_luts : int
val multiplier_luts : Arch.Mb_config.multiplier -> int
val divider_luts : int
val icache_ctrl_luts : int
val dcache_ctrl_luts : int
val cache_way_luts : int
val cache_kb_luts : int
val cache_line8_luts : int
val lru_luts : int
val core_brams : int

val cache_way_data_brams : way_kb:int -> int
val cache_way_tag_brams : way_kb:int -> line_words:int -> int
