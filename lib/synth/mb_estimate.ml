(* Closed-form resource totals for the MicroBlaze-like core, built on
   the Mb_costs constants the same way Estimate is built on Costs. *)

let cache_way_brams ~way_kb ~line_words =
  Mb_costs.cache_way_data_brams ~way_kb
  + Mb_costs.cache_way_tag_brams ~way_kb ~line_words

let icache (c : Arch.Mb_config.icache) =
  let luts =
    Mb_costs.icache_ctrl_luts + Mb_costs.cache_way_luts
    + (Mb_costs.cache_kb_luts * c.way_kb)
    + if c.line_words = 8 then Mb_costs.cache_line8_luts else 0
  in
  let brams =
    cache_way_brams ~way_kb:c.way_kb ~line_words:c.line_words
  in
  { Resource.luts; brams }

let dcache (c : Arch.Config.cache) =
  let luts =
    Mb_costs.dcache_ctrl_luts
    + (Mb_costs.cache_way_luts * c.ways)
    + (Mb_costs.cache_kb_luts * c.way_kb)
    + (if c.line_words = 8 then Mb_costs.cache_line8_luts else 0)
    + (match c.replacement with
      | Arch.Config.Random -> 0
      | Arch.Config.Lru -> Mb_costs.lru_luts
      | Arch.Config.Lrr -> invalid_arg "Mb_estimate.dcache: LRR")
  in
  let brams =
    c.ways * cache_way_brams ~way_kb:c.way_kb ~line_words:c.line_words
  in
  { Resource.luts; brams }

let config (t : Arch.Mb_config.t) =
  (match Arch.Mb_config.validate t with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mb_estimate.config: " ^ m));
  let core_luts =
    Mb_costs.core_luts
    + Mb_costs.multiplier_luts t.multiplier
    + (if t.barrel_shifter then Mb_costs.barrel_shifter_luts else 0)
    + if t.divider then Mb_costs.divider_luts else 0
  in
  Resource.sum
    [
      { Resource.luts = core_luts; brams = Mb_costs.core_brams };
      icache t.icache;
      dcache t.dcache;
    ]

let base = config Arch.Mb_config.base

let fits (r : Resource.t) =
  r.luts <= Mb_costs.device_luts && r.brams <= Mb_costs.device_brams

let feasible t = Arch.Mb_config.is_valid t && fits (config t)
