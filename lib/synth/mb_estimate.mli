(** Closed-form resource estimates for MicroBlaze-like configurations,
    the counterpart of {!Estimate}.  Feasibility is judged against the
    smaller {!Mb_costs} device, not the LEON2 {!Device}. *)

val config : Arch.Mb_config.t -> Resource.t
(** @raise Invalid_argument on invalid configurations. *)

val base : Resource.t

val fits : Resource.t -> bool
(** Within the MicroBlaze device budget
    ({!Mb_costs.device_luts}/{!Mb_costs.device_brams}). *)

val feasible : Arch.Mb_config.t -> bool
(** Valid and fits the device. *)
