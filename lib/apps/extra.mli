(** Additional benchmark kernels beyond the paper's four, written in
    minic {e concrete syntax} (they are parsed by {!Minic.Parser} at
    startup, exercising the full source-to-silicon path).

    They are not part of {!Registry.all} — the paper's tables stay the
    paper's — but plug into every pipeline the same way:

    - [rtr]: CommBench-style IP route lookup over a two-level trie;
      pointer-chasing with a scattered working set (cache-hungry);
    - [dct]: integer 8x8 block DCT over an image strip;
      multiplication-dominated with a small working set;
    - [qsort]: recursive quicksort, tens of frames deep — the only
      kernel whose runtime depends on the register-window count;
    - [phases]: deliberately bi-modal — a sequential streaming pass
      followed by a 64 KB pointer chase.  The two phases prefer
      opposite dcache line sizes, which is exactly the workload shape
      phase-scheduled reconfiguration exists for. *)

val rtr : Registry.t
val dct : Registry.t
val qsort : Registry.t
val phases : Registry.t
val all : Registry.t list
