let parse_app ~name ~description ~reps source =
  let ast =
    match Minic.Parser.parse source with
    | Ok p -> p
    | Error msg -> failwith (Printf.sprintf "Extra.%s: %s" name msg)
  in
  Minic.Check.check_exn ast;
  {
    Registry.name;
    description;
    source = ast;
    program = lazy (Minic.Codegen.compile ast);
    reps;
    paper_base_seconds = Float.nan;
  }

(* Two-level trie route lookup: a 1 K level-1 table either answers
   directly or points into one of 32 level-2 blocks (32 KB total) whose
   lines are touched in address order — i.e. randomly. *)
let rtr_source =
  {|
int l1[64];
int l2[8192];
int nblocks = 0;

int build() {
  int k, seed, e;
  seed = 0x40C7E;
  k = 0;
  while (k < 64) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    if (((seed & 1) == 0) & (nblocks < 32)) {
      l1[k] = 0x10000 | nblocks;
      nblocks = nblocks + 1;
    } else {
      l1[k] = (seed >> 8) & 0xFF;
    }
    k = k + 1;
  }
  /* fill the level-2 blocks with next hops */
  k = 0;
  while (k < 8192) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    l2[k] = (seed >> 12) & 0xFF;
    k = k + 1;
  }
  return nblocks;
}

int lookup(int n) {
  int k, seed, ip, e, hop, total;
  seed = 0x1B0;
  total = 0;
  k = 0;
  while (k < n) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    ip = seed;
    e = l1[(ip >> 25) & 63];
    if (e >= 0x10000) {
      hop = l2[((e & 0xFF) << 8) + ((ip >> 15) & 255)];
    } else {
      hop = e;
    }
    total = total + hop;
    k = k + 1;
  }
  return total;
}

int main() {
  int blocks, total;
  blocks = build();
  total = lookup(20000);
  return total + (blocks << 24);
}
|}

(* Integer 8x8 block transform over a 16-block strip: 8192 multiplies
   per block, all operands register- or small-array-resident. *)
let dct_source =
  {|
int img[1024];
int out[1024];
int c[64] = {
   64,  64,  64,  64,  64,  64,  64,  64,
   89,  75,  50,  18, -18, -50, -75, -89,
   84,  35, -35, -84, -84, -35,  35,  84,
   75, -18, -89, -50,  50,  89,  18, -75,
   64, -64, -64,  64,  64, -64, -64,  64,
   50, -89,  18,  75, -75, -18,  89, -50,
   35, -84,  84, -35, -35,  84, -84,  35,
   18, -50,  75, -89,  89, -75,  50, -18
};

int fill() {
  int k, seed;
  seed = 0xDC7;
  k = 0;
  while (k < 1024) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    img[k] = ((seed >> 9) & 255) - 128;
    k = k + 1;
  }
  return 0;
}

int block(int blk) {
  int u, v, x, y, acc, sum;
  sum = 0;
  u = 0;
  while (u < 8) {
    v = 0;
    while (v < 8) {
      acc = 0;
      y = 0;
      while (y < 8) {
        x = 0;
        while (x < 8) {
          acc = acc + ((img[(blk << 6) + ((y << 3) + x)] * c[(u << 3) + x] * c[(v << 3) + y]) >> 8);
          x = x + 1;
        }
        y = y + 1;
      }
      out[(blk << 6) + ((u << 3) + v)] = acc;
      sum = (sum + acc) & 0xFFFFFF;
      v = v + 1;
    }
    u = u + 1;
  }
  return sum;
}

int main() {
  int blk, s, total;
  fill();
  total = 0;
  blk = 0;
  while (blk < 16) {
    s = block(blk);
    total = (total + s) & 0xFFFFFF;
    blk = blk + 1;
  }
  return total;
}
|}

(* Recursive quicksort over a 1 K-word array: call depth tens of
   frames, so the register-window count — a parameter none of the
   paper's four benchmarks exercises — has a real runtime effect
   (window overflow/underflow traps spill through the dcache). *)
let qsort_source =
  {|
int data[1024];

int fill() {
  int k, seed;
  seed = 0x9507;
  k = 0;
  while (k < 1024) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    data[k] = seed & 0xFFFF;
    k = k + 1;
  }
  return 0;
}

int qsort(int lo, int hi) {
  int p, x, k, t, store;
  if (lo >= hi) { return 0; }
  /* median-free Lomuto partition on data[hi] */
  x = data[hi];
  store = lo;
  k = lo;
  while (k < hi) {
    if (data[k] < x) {
      t = data[k];
      data[k] = data[store];
      data[store] = t;
      store = store + 1;
    }
    k = k + 1;
  }
  t = data[hi];
  data[hi] = data[store];
  data[store] = t;
  qsort(lo, store - 1);
  qsort(store + 1, hi);
  return 0;
}

int check() {
  int k, acc;
  acc = 0;
  k = 1;
  while (k < 1024) {
    if (data[k - 1] > data[k]) { return 0 - k; }
    acc = (acc + (data[k] * k)) & 0xFFFFFF;
    k = k + 1;
  }
  return acc;
}

int main() {
  int r;
  fill();
  qsort(0, 1023);
  r = check();
  return r;
}
|}

(* Deliberately bi-modal kernel for phase-scheduled reconfiguration: a
   sequential streaming pass (long cache lines amortize refills) is
   followed by a full-cycle pointer chase over 64 KB (nearly every hop
   misses, and a long line only lengthens the useless refill).  The
   two phases prefer opposite dcache line sizes, so a schedule that
   switches at the boundary beats every static pick once the per-phase
   gain clears the reconfiguration cost. *)
let phases_source =
  {|
int perm[16384];
int next[16384];

int init() {
  int k, seed, j, t;
  k = 0;
  while (k < 16384) {
    perm[k] = k;
    k = k + 1;
  }
  /* one round of random transpositions, then successor linking: the
     chase below walks a single 16384-element cycle */
  seed = 0x5EED;
  k = 0;
  while (k < 16384) {
    seed = ((seed * 1103515245) + 12345) & 0x7FFFFFFF;
    j = (seed >> 11) & 16383;
    t = perm[k];
    perm[k] = perm[j];
    perm[j] = t;
    k = k + 1;
  }
  k = 0;
  while (k < 16383) {
    next[perm[k]] = perm[k + 1];
    k = k + 1;
  }
  next[perm[16383]] = perm[0];
  return 0;
}

int stream_phase(int passes) {
  int k, p, acc;
  acc = 0;
  p = 0;
  while (p < passes) {
    k = 0;
    while (k < 16384) {
      acc = (acc + next[k]) & 0xFFFFFF;
      k = k + 1;
    }
    p = p + 1;
  }
  return acc;
}

int chase_phase(int hops) {
  int k, p;
  p = 0;
  k = 0;
  while (k < hops) {
    p = next[p];
    k = k + 1;
  }
  return p;
}

int main() {
  int a, b;
  init();
  a = stream_phase(2);
  b = chase_phase(16384);
  return (a + (b << 4)) & 0x7FFFFFFF;
}
|}

let rtr =
  parse_app ~name:"rtr"
    ~description:"two-level trie IP route lookup (CommBench-style, extra)"
    ~reps:2000 rtr_source

let dct =
  parse_app ~name:"dct"
    ~description:"integer 8x8 block DCT over an image strip (extra)" ~reps:800
    dct_source

let qsort =
  parse_app ~name:"qsort"
    ~description:"recursive quicksort of 1K words (extra; window-trap heavy)"
    ~reps:1500 qsort_source

let phases =
  parse_app ~name:"phases"
    ~description:
      "bi-modal streaming-then-pointer-chase kernel (extra; phase-schedule \
       showcase)"
    ~reps:4 phases_source

let all = [ rtr; dct; qsort; phases ]
