(** Static workload features, extracted without running anything.

    The paper's method spends a synthesis-plus-run build per probed
    configuration; some probes are statically useless — enlarging an
    instruction cache the whole program already fits in, or swapping
    multiplier variants under a program that never multiplies.  This
    module computes the features such arguments need from the source
    AST and the compiled binary; {!Dse.Heuristic} uses them to prune
    perturbations, and [appinfo] prints them. *)

type mix = {
  total : int;
  alu : int;  (** ALU ops and [sethi] *)
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;  (** conditional and unconditional branches *)
  call : int;  (** calls, indirect jumps, window save/restore *)
  other : int;
}
(** Static instruction counts over the code segment. *)

type t = {
  code_bytes : int;  (** code segment size: 4 bytes per instruction *)
  data_bytes : int;  (** data segment size (globals, both kinds) *)
  word_array_bytes : int;  (** footprint of word arrays *)
  byte_array_bytes : int;  (** footprint of byte arrays *)
  mix : mix;
  max_loop_depth : int;  (** deepest loop nest in any function *)
  loops : int;
      (** static loop count after level-0 optimization (what
          {!Minic.Bounds} analyses) *)
  bounded_loops : int;
      (** of those, loops with a finite worst-case trip bound — when
          [bounded_loops = loops] the whole program has a finite
          static worst-case cycle bound *)
  call_depth : int option;
      (** deepest call nesting from [main] ([main] itself = 0), or
          [None] when the call graph has a reachable cycle *)
  stack_bytes : int option;
      (** stack bound: one 96-byte frame per nesting level *)
}

val of_program : Minic.Ast.program -> Isa.Program.t -> t
val of_app : Registry.t -> t
(** Features of a registered app (forces its compiled program). *)

val mul_free : t -> bool
(** No multiply instruction anywhere in the binary. *)

val div_free : t -> bool

val code_resident_kb : t -> int
(** Smallest power-of-two way size (in KB) that holds the whole code
    segment — an icache way at least this large never misses after
    warmup, and never conflicts. *)

val pp : Format.formatter -> t -> unit
