type mix = {
  total : int;
  alu : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;
  call : int;
  other : int;
}

type t = {
  code_bytes : int;
  data_bytes : int;
  word_array_bytes : int;
  byte_array_bytes : int;
  mix : mix;
  max_loop_depth : int;
  loops : int;
  bounded_loops : int;
  call_depth : int option;
  stack_bytes : int option;
}

let mix_of_code code =
  let m =
    ref
      {
        total = Array.length code;
        alu = 0;
        mul = 0;
        div = 0;
        load = 0;
        store = 0;
        branch = 0;
        call = 0;
        other = 0;
      }
  in
  Array.iter
    (fun i ->
      let r = !m in
      m :=
        (match i with
        | Isa.Insn.Alu _ | Isa.Insn.Sethi _ -> { r with alu = r.alu + 1 }
        | Isa.Insn.Mul _ -> { r with mul = r.mul + 1 }
        | Isa.Insn.Div _ -> { r with div = r.div + 1 }
        | Isa.Insn.Load _ -> { r with load = r.load + 1 }
        | Isa.Insn.Store _ -> { r with store = r.store + 1 }
        | Isa.Insn.Branch _ -> { r with branch = r.branch + 1 }
        | Isa.Insn.Call _ | Isa.Insn.Jmpl _ | Isa.Insn.Save _
        | Isa.Insn.Restore _ ->
            { r with call = r.call + 1 }
        | Isa.Insn.Nop | Isa.Insn.Halt -> { r with other = r.other + 1 }))
    code;
  !m

let rec loop_depth_block stmts = List.fold_left (fun d s -> max d (loop_depth_stmt s)) 0 stmts

and loop_depth_stmt = function
  | Minic.Ast.While (_, body) -> 1 + loop_depth_block body
  | Minic.Ast.If (_, th, el) -> max (loop_depth_block th) (loop_depth_block el)
  | Minic.Ast.Set _ | Minic.Ast.Set_idx _ | Minic.Ast.Do _ | Minic.Ast.Ret _ -> 0

(* Deepest call nesting below [main]; [None] on a reachable cycle
   (recursion has no static stack bound). *)
let call_depth (p : Minic.Ast.program) =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Minic.Ast.func) -> Hashtbl.replace funcs f.Minic.Ast.name f) p.Minic.Ast.funcs;
  let callees (f : Minic.Ast.func) =
    let acc = ref [] in
    let rec expr = function
      | Minic.Ast.Int _ | Minic.Ast.Var _ -> ()
      | Minic.Ast.Idx (_, e) | Minic.Ast.Un (_, e) -> expr e
      | Minic.Ast.Bin (_, a, b) ->
          expr a;
          expr b
      | Minic.Ast.Call (g, args) ->
          acc := g :: !acc;
          List.iter expr args
    in
    let rec stmt = function
      | Minic.Ast.Set (_, e) | Minic.Ast.Do e | Minic.Ast.Ret e -> expr e
      | Minic.Ast.Set_idx (_, e1, e2) ->
          expr e1;
          expr e2
      | Minic.Ast.If (c, th, el) ->
          expr c;
          List.iter stmt th;
          List.iter stmt el
      | Minic.Ast.While (c, body) ->
          expr c;
          List.iter stmt body
    in
    List.iter stmt f.Minic.Ast.body;
    List.sort_uniq compare !acc
  in
  let exception Cycle in
  let memo = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let rec depth name =
    match Hashtbl.find_opt memo name with
    | Some d -> d
    | None ->
        if Hashtbl.mem on_stack name then raise Cycle;
        let d =
          match Hashtbl.find_opt funcs name with
          | None -> 0 (* unknown callee: Check rejects these anyway *)
          | Some f ->
              Hashtbl.replace on_stack name ();
              let d =
                List.fold_left
                  (fun acc g -> max acc (1 + depth g))
                  0 (callees f)
              in
              Hashtbl.remove on_stack name;
              d
        in
        Hashtbl.replace memo name d;
        d
  in
  match depth "main" with d -> Some d | exception Cycle -> None

let of_program (src : Minic.Ast.program) (prog : Isa.Program.t) =
  let word_array_bytes, byte_array_bytes =
    List.fold_left
      (fun (w, b) -> function
        | Minic.Ast.Scalar _ -> (w, b)
        | Minic.Ast.Array (_, Minic.Ast.Word, len) -> (w + (4 * len), b)
        | Minic.Ast.Array (_, Minic.Ast.Byte, len) -> (w, b + len)
        | Minic.Ast.Array_init (_, Minic.Ast.Word, vs) -> (w + (4 * Array.length vs), b)
        | Minic.Ast.Array_init (_, Minic.Ast.Byte, vs) -> (w, b + Array.length vs))
      (0, 0) src.Minic.Ast.globals
  in
  let call_depth = call_depth src in
  let bsum = Minic.Bounds.summary src in
  {
    code_bytes = 4 * Array.length prog.Isa.Program.code;
    data_bytes = Bytes.length prog.Isa.Program.data;
    word_array_bytes;
    byte_array_bytes;
    mix = mix_of_code prog.Isa.Program.code;
    max_loop_depth =
      List.fold_left
        (fun d (f : Minic.Ast.func) -> max d (loop_depth_block f.Minic.Ast.body))
        0 src.Minic.Ast.funcs;
    loops = bsum.Minic.Bounds.loops;
    bounded_loops = bsum.Minic.Bounds.bounded_loops;
    call_depth;
    stack_bytes = Option.map (fun d -> 96 * (d + 1)) call_depth;
  }

let of_app (app : Registry.t) =
  of_program app.Registry.source (Lazy.force app.Registry.program)

let mul_free t = t.mix.mul = 0
let div_free t = t.mix.div = 0

let code_resident_kb t =
  let rec go kb = if kb * 1024 >= t.code_bytes then kb else go (2 * kb) in
  go 1

let pp ppf t =
  Format.fprintf ppf
    "@[<v>code: %d B (fits a %d KB icache way)@,\
     data: %d B (%d B word arrays, %d B byte arrays)@,\
     mix: %d insns = %d alu, %d mul, %d div, %d load, %d store, %d branch, \
     %d call/ret, %d other@,\
     max loop depth: %d@,\
     loops: %d (%d statically bounded)@,\
     %a@]"
    t.code_bytes (code_resident_kb t) t.data_bytes t.word_array_bytes
    t.byte_array_bytes t.mix.total t.mix.alu t.mix.mul t.mix.div t.mix.load
    t.mix.store t.mix.branch t.mix.call t.mix.other t.max_loop_depth t.loops
    t.bounded_loops
    (fun ppf -> function
      | Some d ->
          Format.fprintf ppf "call depth: %d (stack bound %d B)" d
            (96 * (d + 1))
      | None -> Format.fprintf ppf "call depth: unbounded (recursion)")
    t.call_depth
