(** Binary decision variables of the MicroBlaze-like target.

    Same construction as the LEON2 {!Param} space: each variable [x_i]
    is one single-parameter perturbation of {!Mb_config.base}, and a
    solution is a set of perturbations applied simultaneously (at most
    one per group).

    Numbering:
    - x1..x4    icache size 1,4,8,16 KB
    - x5        icache line size 8 words
    - x6,x7     dcache ways 2,4
    - x8..x11   dcache way size 1,4,8,16 KB
    - x12       dcache line size 8 words
    - x13       dcache replacement LRU (needs x6 or x7)
    - x14       barrel shifter enabled
    - x15,x16   multiplier none, mul64
    - x17       hardware divider enabled *)

type group =
  | Icache_way_kb
  | Icache_line
  | Dcache_ways
  | Dcache_way_kb
  | Dcache_line
  | Dcache_repl
  | Barrel_shifter
  | Multiplier
  | Divider

type var = {
  index : int;  (** 1..17 *)
  group : group;
  label : string;
  apply : Mb_config.t -> Mb_config.t;
}

val count : int
(** 17. *)

val all : var list
val var : int -> var
(** @raise Invalid_argument if the index is out of 1..[count]. *)

val groups : group list
val group_members : group -> var list
val group_to_string : group -> string
val apply_all : Mb_config.t -> var list -> Mb_config.t

val dcache_size_dims : group list
(** Dcache geometry groups, the quick-study subspace analogue of
    {!Param.dcache_size_dims}. *)
