(** Compact textual encoding of configurations, for reproducible
    command lines and logs.

    The format is a comma-separated list of [key=value] fields:

    {v ic=1x4x8xrnd,dc=1x4x8xrnd,fr=0,fw=0,fj=1,ih=1,fd=1,ld=1,win=8,div=radix2,mul=m16x16,inf=1 v}

    where a cache field is [ways x way_kb x line_words x replacement].
    Fields may appear in any order; omitted fields keep their base
    value, so ["dc=1x32x4xrnd,mul=m32x32"] is a valid delta encoding.
    {!to_string} always emits every field. *)

val to_string : Config.t -> string

val digest : Config.t -> string
(** [Digest.string (to_string t)]: a content address of the canonical
    encoding.  Structurally equal configurations digest identically
    ({!to_string} emits every field), which is what makes it usable as
    the evaluation engine's cache key. *)

val of_string : string -> (Config.t, string) result
(** Decodes and validates.  Each key may appear at most once
    (duplicates are rejected rather than silently last-wins), and
    empty fields (stray commas) are rejected — except that one
    trailing comma is tolerated. *)

val of_string_exn : string -> Config.t
(** @raise Invalid_argument on malformed or invalid encodings. *)
