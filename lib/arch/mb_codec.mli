(** Canonical string encoding of MicroBlaze-like configurations.

    Format: [ic=KBxLINE,dc=WxKBxLINExREPL,bs=0|1,mul=none|mul32|mul64,div=0|1].
    [to_string] always emits every field in a fixed order, making
    {!digest} a content address of the configuration. *)

val to_string : Mb_config.t -> string
val digest : Mb_config.t -> Digest.t

val of_string : string -> (Mb_config.t, string) result
(** Parses a comma-separated [key=value] list applied on top of
    {!Mb_config.base}.  Unknown keys, duplicate keys, empty fields and
    invalid final configurations are rejected; exactly one trailing
    comma is tolerated. *)

val of_string_exn : string -> Mb_config.t
(** @raise Invalid_argument on parse or validation failure. *)
