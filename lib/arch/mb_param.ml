type group =
  | Icache_way_kb
  | Icache_line
  | Dcache_ways
  | Dcache_way_kb
  | Dcache_line
  | Dcache_repl
  | Barrel_shifter
  | Multiplier
  | Divider

type var = {
  index : int;
  group : group;
  label : string;
  apply : Mb_config.t -> Mb_config.t;
}

let set_icache c f = { c with Mb_config.icache = f c.Mb_config.icache }
let set_dcache c f = { c with Mb_config.dcache = f c.Mb_config.dcache }

let icache_kb n c = set_icache c (fun i -> { i with Mb_config.way_kb = n })

let icache_line n c =
  set_icache c (fun i -> { i with Mb_config.line_words = n })

let dcache_ways n c = set_dcache c (fun d -> { d with Config.ways = n })
let dcache_kb n c = set_dcache c (fun d -> { d with Config.way_kb = n })
let dcache_line n c = set_dcache c (fun d -> { d with Config.line_words = n })
let dcache_repl r c = set_dcache c (fun d -> { d with Config.replacement = r })

(* One-at-a-time perturbations of {!Mb_config.base}, numbered x1..x17;
   see the interface documentation for the full map.  32 KB cache ways
   are representable ({!Mb_config.valid_way_kbs}) but deliberately
   excluded from the decision space: this core targets a smaller
   device, and the paper's method only needs the perturbations it is
   willing to select. *)
let specs : (group * string * (Mb_config.t -> Mb_config.t)) list =
  [
    (Icache_way_kb, "icachesz1", icache_kb 1);
    (Icache_way_kb, "icachesz4", icache_kb 4);
    (Icache_way_kb, "icachesz8", icache_kb 8);
    (Icache_way_kb, "icachesz16", icache_kb 16);
    (Icache_line, "icachelinesz8", icache_line 8);
    (Dcache_ways, "dcachesets2", dcache_ways 2);
    (Dcache_ways, "dcachesets4", dcache_ways 4);
    (Dcache_way_kb, "dcachesz1", dcache_kb 1);
    (Dcache_way_kb, "dcachesz4", dcache_kb 4);
    (Dcache_way_kb, "dcachesz8", dcache_kb 8);
    (Dcache_way_kb, "dcachesz16", dcache_kb 16);
    (Dcache_line, "dcachelinesz8", dcache_line 8);
    (Dcache_repl, "dcacheLRU", dcache_repl Config.Lru);
    ( Barrel_shifter,
      "barrelshifter",
      fun c -> { c with Mb_config.barrel_shifter = true } );
    ( Multiplier,
      "mulnone",
      fun c -> { c with Mb_config.multiplier = Mb_config.Mb_mul_none } );
    ( Multiplier,
      "mul64",
      fun c -> { c with Mb_config.multiplier = Mb_config.Mb_mul64 } );
    (Divider, "divider", fun c -> { c with Mb_config.divider = true });
  ]

let all =
  List.mapi
    (fun i (group, label, apply) -> { index = i + 1; group; label; apply })
    specs

let count = List.length all
let table = Array.of_list all

let var i =
  if i < 1 || i > count then
    invalid_arg (Printf.sprintf "Mb_param.var: index %d not in 1..%d" i count)
  else table.(i - 1)

let groups =
  [
    Icache_way_kb;
    Icache_line;
    Dcache_ways;
    Dcache_way_kb;
    Dcache_line;
    Dcache_repl;
    Barrel_shifter;
    Multiplier;
    Divider;
  ]

let group_members g = List.filter (fun v -> v.group = g) all

let group_to_string = function
  | Icache_way_kb -> "icache size"
  | Icache_line -> "icache line size"
  | Dcache_ways -> "dcache ways"
  | Dcache_way_kb -> "dcache way size"
  | Dcache_line -> "dcache line size"
  | Dcache_repl -> "dcache replacement"
  | Barrel_shifter -> "barrel shifter"
  | Multiplier -> "multiplier"
  | Divider -> "divider"

let apply_all config vars =
  List.fold_left (fun c v -> v.apply c) config vars

let dcache_size_dims = [ Dcache_ways; Dcache_way_kb ]
