let replacement_of_string = function
  | "rnd" -> Ok Config.Random
  | "lrr" | "LRR" -> Ok Config.Lrr
  | "lru" | "LRU" -> Ok Config.Lru
  | s -> Error (Printf.sprintf "unknown replacement %S" s)

let multiplier_of_string = function
  | "none" -> Ok Config.Mul_none
  | "iterative" -> Ok Config.Mul_iterative
  | "m16x16" -> Ok Config.Mul_16x16
  | "m16x16+pipe" -> Ok Config.Mul_16x16_pipe
  | "m32x8" -> Ok Config.Mul_32x8
  | "m32x16" -> Ok Config.Mul_32x16
  | "m32x32" -> Ok Config.Mul_32x32
  | s -> Error (Printf.sprintf "unknown multiplier %S" s)

let divider_of_string = function
  | "radix2" -> Ok Config.Div_radix2
  | "none" -> Ok Config.Div_none
  | s -> Error (Printf.sprintf "unknown divider %S" s)

let cache_to_string (c : Config.cache) =
  Printf.sprintf "%dx%dx%dx%s" c.ways c.way_kb c.line_words
    (Config.replacement_to_string c.replacement)

let cache_of_string s =
  match String.split_on_char 'x' s with
  | [ ways; kb; line; repl ] -> (
      match
        ( int_of_string_opt ways,
          int_of_string_opt kb,
          int_of_string_opt line,
          replacement_of_string repl )
      with
      | Some ways, Some way_kb, Some line_words, Ok replacement ->
          Ok { Config.ways; way_kb; line_words; replacement }
      | _, _, _, Error e -> Error e
      | _ -> Error (Printf.sprintf "malformed cache %S" s))
  | _ -> Error (Printf.sprintf "malformed cache %S (want WxKBxLINExREPL)" s)

let bool_to_string b = if b then "1" else "0"

let bool_of_string = function
  | "1" | "true" | "on" -> Ok true
  | "0" | "false" | "off" -> Ok false
  | s -> Error (Printf.sprintf "expected boolean, got %S" s)

let to_string (t : Config.t) =
  String.concat ","
    [
      "ic=" ^ cache_to_string t.icache;
      "dc=" ^ cache_to_string t.dcache;
      "fr=" ^ bool_to_string t.dcache_fast_read;
      "fw=" ^ bool_to_string t.dcache_fast_write;
      "fj=" ^ bool_to_string t.iu.fast_jump;
      "ih=" ^ bool_to_string t.iu.icc_hold;
      "fd=" ^ bool_to_string t.iu.fast_decode;
      "ld=" ^ string_of_int t.iu.load_delay;
      "win=" ^ string_of_int t.iu.reg_windows;
      "div=" ^ Config.divider_to_string t.iu.divider;
      "mul=" ^ Config.multiplier_to_string t.iu.multiplier;
      "inf=" ^ bool_to_string t.infer_mult_div;
    ]

(* Content address of the canonical encoding: because [to_string]
   always emits every field, structurally equal configurations digest
   identically regardless of how they were constructed. *)
let digest t = Digest.string (to_string t)

let apply_field (t : Config.t) key value =
  let ( let* ) = Result.bind in
  let int_field v f =
    match int_of_string_opt v with
    | Some n -> Ok (f n)
    | None -> Error (Printf.sprintf "expected integer for %s, got %S" key v)
  in
  match key with
  | "ic" ->
      let* c = cache_of_string value in
      Ok { t with Config.icache = c }
  | "dc" ->
      let* c = cache_of_string value in
      Ok { t with Config.dcache = c }
  | "fr" ->
      let* b = bool_of_string value in
      Ok { t with Config.dcache_fast_read = b }
  | "fw" ->
      let* b = bool_of_string value in
      Ok { t with Config.dcache_fast_write = b }
  | "fj" ->
      let* b = bool_of_string value in
      Ok { t with Config.iu = { t.iu with fast_jump = b } }
  | "ih" ->
      let* b = bool_of_string value in
      Ok { t with Config.iu = { t.iu with icc_hold = b } }
  | "fd" ->
      let* b = bool_of_string value in
      Ok { t with Config.iu = { t.iu with fast_decode = b } }
  | "ld" -> int_field value (fun n -> { t with Config.iu = { t.iu with load_delay = n } })
  | "win" ->
      int_field value (fun n -> { t with Config.iu = { t.iu with reg_windows = n } })
  | "div" ->
      let* d = divider_of_string value in
      Ok { t with Config.iu = { t.iu with divider = d } }
  | "mul" ->
      let* m = multiplier_of_string value in
      Ok { t with Config.iu = { t.iu with multiplier = m } }
  | "inf" ->
      let* b = bool_of_string value in
      Ok { t with Config.infer_mult_div = b }
  | _ -> Error (Printf.sprintf "unknown field %S" key)

let of_string s =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ',' (String.trim s) in
  (* A single trailing comma ("mul=m32x32,") is tolerated; any other
     empty field — leading, doubled, or repeated trailing commas — is
     a malformed input, not silently dropped. *)
  let fields =
    match List.rev fields with
    | "" :: (_ :: _ as rest) -> List.rev rest
    | _ -> fields
  in
  let* config, _ =
    List.fold_left
      (fun acc field ->
        let* t, seen = acc in
        if field = "" then
          Error "empty field (stray ',' in configuration string)"
        else
          match String.index_opt field '=' with
          | None ->
              Error (Printf.sprintf "malformed field %S (want key=value)" field)
          | Some i ->
              let key = String.sub field 0 i in
              let value =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              if List.mem key seen then
                Error (Printf.sprintf "duplicate field %S" key)
              else
                let* t = apply_field t key value in
                Ok (t, key :: seen))
      (Ok (Config.base, [])) fields
  in
  let* () = Config.validate config in
  Ok config

let of_string_exn s =
  match of_string s with
  | Ok c -> c
  | Error m -> invalid_arg ("Codec.of_string_exn: " ^ m)
