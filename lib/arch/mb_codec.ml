(* Canonical string encoding for MicroBlaze-like configurations,
   mirroring the LEON2 {!Codec} conventions: [to_string] always emits
   every field in a fixed order, so the digest is a content address;
   [of_string] starts from {!Mb_config.base}, rejects duplicate or
   empty fields, tolerates exactly one trailing comma, and validates
   the final configuration. *)

let replacement_of_string = function
  | "rnd" -> Ok Config.Random
  | "lru" | "LRU" -> Ok Config.Lru
  | "lrr" | "LRR" -> Error "LRR replacement is not available on this core"
  | s -> Error (Printf.sprintf "unknown replacement %S" s)

let multiplier_of_string = function
  | "none" -> Ok Mb_config.Mb_mul_none
  | "mul32" -> Ok Mb_config.Mb_mul32
  | "mul64" -> Ok Mb_config.Mb_mul64
  | s -> Error (Printf.sprintf "unknown multiplier %S" s)

let icache_to_string (c : Mb_config.icache) =
  Printf.sprintf "%dx%d" c.way_kb c.line_words

let icache_of_string s =
  match String.split_on_char 'x' s with
  | [ kb; line ] -> (
      match (int_of_string_opt kb, int_of_string_opt line) with
      | Some way_kb, Some line_words -> Ok { Mb_config.way_kb; line_words }
      | _ -> Error (Printf.sprintf "malformed icache %S" s))
  | _ -> Error (Printf.sprintf "malformed icache %S (want KBxLINE)" s)

let dcache_to_string (c : Config.cache) =
  Printf.sprintf "%dx%dx%dx%s" c.ways c.way_kb c.line_words
    (Config.replacement_to_string c.replacement)

let dcache_of_string s =
  match String.split_on_char 'x' s with
  | [ ways; kb; line; repl ] -> (
      match
        ( int_of_string_opt ways,
          int_of_string_opt kb,
          int_of_string_opt line,
          replacement_of_string repl )
      with
      | Some ways, Some way_kb, Some line_words, Ok replacement ->
          Ok { Config.ways; way_kb; line_words; replacement }
      | _, _, _, Error e -> Error e
      | _ -> Error (Printf.sprintf "malformed cache %S" s))
  | _ -> Error (Printf.sprintf "malformed cache %S (want WxKBxLINExREPL)" s)

let bool_to_string b = if b then "1" else "0"

let bool_of_string = function
  | "1" | "true" | "on" -> Ok true
  | "0" | "false" | "off" -> Ok false
  | s -> Error (Printf.sprintf "expected boolean, got %S" s)

let to_string (t : Mb_config.t) =
  String.concat ","
    [
      "ic=" ^ icache_to_string t.icache;
      "dc=" ^ dcache_to_string t.dcache;
      "bs=" ^ bool_to_string t.barrel_shifter;
      "mul=" ^ Mb_config.multiplier_to_string t.multiplier;
      "div=" ^ bool_to_string t.divider;
    ]

let digest t = Digest.string (to_string t)

let apply_field (t : Mb_config.t) key value =
  let ( let* ) = Result.bind in
  match key with
  | "ic" ->
      let* c = icache_of_string value in
      Ok { t with Mb_config.icache = c }
  | "dc" ->
      let* c = dcache_of_string value in
      Ok { t with Mb_config.dcache = c }
  | "bs" ->
      let* b = bool_of_string value in
      Ok { t with Mb_config.barrel_shifter = b }
  | "mul" ->
      let* m = multiplier_of_string value in
      Ok { t with Mb_config.multiplier = m }
  | "div" ->
      let* b = bool_of_string value in
      Ok { t with Mb_config.divider = b }
  | _ -> Error (Printf.sprintf "unknown field %S" key)

let of_string s =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ',' (String.trim s) in
  (* One trailing comma is tolerated, as in the LEON2 codec; any other
     empty field is malformed input. *)
  let fields =
    match List.rev fields with
    | "" :: (_ :: _ as rest) -> List.rev rest
    | _ -> fields
  in
  let* config, _ =
    List.fold_left
      (fun acc field ->
        let* t, seen = acc in
        if field = "" then
          Error "empty field (stray ',' in configuration string)"
        else
          match String.index_opt field '=' with
          | None ->
              Error (Printf.sprintf "malformed field %S (want key=value)" field)
          | Some i ->
              let key = String.sub field 0 i in
              let value =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              if List.mem key seen then
                Error (Printf.sprintf "duplicate field %S" key)
              else
                let* t = apply_field t key value in
                Ok (t, key :: seen))
      (Ok (Mb_config.base, [])) fields
  in
  let* () = Mb_config.validate config in
  Ok config

let of_string_exn s =
  match of_string s with
  | Ok c -> c
  | Error m -> invalid_arg ("Mb_codec.of_string_exn: " ^ m)
