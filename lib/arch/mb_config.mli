(** MicroBlaze-like soft-core configurations — the second DSE target.

    A deliberately different trade space from LEON2's ({!Config}):
    direct-mapped-only instruction cache, a 1/2/4-way data cache with
    random or LRU replacement (no LRR), no register windows, and in
    their place a barrel-shifter option, a three-level multiplier
    choice and an optional hardware divider. *)

type multiplier =
  | Mb_mul_none  (** software multiplication routine *)
  | Mb_mul32     (** 32x32 -> 32 multiplier (default) *)
  | Mb_mul64     (** 64-bit-product multiplier, single cycle *)

type icache = {
  way_kb : int;      (** 1,2,4,8,16,32 *)
  line_words : int;  (** 4 or 8 32-bit words per line *)
}
(** Direct-mapped: one way, so only size and line length vary. *)

type t = {
  icache : icache;
  dcache : Config.cache;
      (** ways limited to 1/2/4; replacement to random/LRU *)
  barrel_shifter : bool;  (** without it, shifts iterate *)
  multiplier : multiplier;
  divider : bool;         (** without it, division is slow/iterative *)
}

val base : t
(** Out-of-the-box core: 2 KB direct-mapped caches with 4-word lines,
    no barrel shifter, 32-bit multiplier, no divider. *)

val valid_way_kbs : int list
val valid_dcache_ways : int list
val valid_line_words : int list

val validate : t -> (unit, string) result
(** Structural rules: parameter ranges, no LRR at all, LRU only with
    multi-way associativity (the coupling-law analogue of LEON2's
    replacement rules). *)

val is_valid : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
val multiplier_to_string : multiplier -> string
