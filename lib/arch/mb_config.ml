(* A MicroBlaze-like soft core: the second registered DSE target.

   The trade space is deliberately different from LEON2's:
   - the instruction cache is direct-mapped only (size and line length
     are the only knobs), as on the real MicroBlaze;
   - the data cache offers 1/2/4 ways with random or LRU replacement
     (no LRR option at all — the validity-coupling analogue is "LRU
     needs at least 2 ways");
   - there are no register windows, no condition-code hold and no
     SPARC-style fast jump/decode options;
   - instead the core has a barrel-shifter option (without it shifts
     iterate), a three-level multiplier choice and an optional hardware
     divider (without it division falls back to the slow iterative
     path). *)

type multiplier = Mb_mul_none | Mb_mul32 | Mb_mul64

type icache = { way_kb : int; line_words : int }
(** Direct-mapped: a single way, so only size and line length vary. *)

type t = {
  icache : icache;
  dcache : Config.cache;  (** ways limited to 1/2/4, replacement to rnd/LRU *)
  barrel_shifter : bool;
  multiplier : multiplier;
  divider : bool;
}

let base =
  {
    icache = { way_kb = 2; line_words = 4 };
    dcache =
      { Config.ways = 1; way_kb = 2; line_words = 4; replacement = Config.Random };
    barrel_shifter = false;
    multiplier = Mb_mul32;
    divider = false;
  }

let valid_way_kbs = [ 1; 2; 4; 8; 16; 32 ]
let valid_dcache_ways = [ 1; 2; 4 ]
let valid_line_words = [ 4; 8 ]

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (List.mem t.icache.way_kb valid_way_kbs) then
    err "icache: size %d KB not in {1,2,4,8,16,32}" t.icache.way_kb
  else if not (List.mem t.icache.line_words valid_line_words) then
    err "icache: line size %d words not in {4,8}" t.icache.line_words
  else if not (List.mem t.dcache.Config.ways valid_dcache_ways) then
    err "dcache: ways %d not in {1,2,4}" t.dcache.Config.ways
  else if not (List.mem t.dcache.Config.way_kb valid_way_kbs) then
    err "dcache: way size %d KB not in {1,2,4,8,16,32}" t.dcache.Config.way_kb
  else if not (List.mem t.dcache.Config.line_words valid_line_words) then
    err "dcache: line size %d words not in {4,8}" t.dcache.Config.line_words
  else
    match t.dcache.Config.replacement with
    | Config.Lrr -> err "dcache: LRR replacement is not available on this core"
    | Config.Lru when t.dcache.Config.ways < 2 ->
        err "dcache: LRU replacement requires multi-way associativity"
    | Config.Random | Config.Lru -> Ok ()

let is_valid t = Result.is_ok (validate t)
let equal (a : t) (b : t) = a = b

let multiplier_to_string = function
  | Mb_mul_none -> "none"
  | Mb_mul32 -> "mul32"
  | Mb_mul64 -> "mul64"

let pp ppf t =
  Fmt.pf ppf
    "@[<v>icache %dKB/line%d (direct-mapped)@,\
     dcache %a@,\
     barrel=%b mul=%s div=%b@]"
    t.icache.way_kb t.icache.line_words Config.pp_cache t.dcache
    t.barrel_shifter
    (multiplier_to_string t.multiplier)
    t.divider
