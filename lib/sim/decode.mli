(** Decode-once program representation for the direct-threaded core.

    {!of_program} resolves each static instruction into a flat record:
    operands, pre-masked immediate, class, and [base_cycles] with all
    deterministic stalls pre-priced from the shared {!Cost_model}
    table.  Only genuinely dynamic costs (cache line fills, the ICC
    hold, window traps, the taken-branch redirect) are left to the
    execute handlers in {!Cpu}. *)

type op =
  | Alu of Isa.Insn.alu_op * bool  (** op, sets cc *)
  | Sethi  (** [imm] holds the pre-shifted, pre-masked value *)
  | Mul of bool * bool  (** signed, sets cc *)
  | Div of bool  (** signed *)
  | Load of Isa.Insn.width * bool  (** width, sign-extending *)
  | Store of Isa.Insn.width
  | Branch of Isa.Insn.cond
  | Call
  | Jmpl
  | Save
  | Restore
  | Nop
  | Halt

type insn = {
  op : op;
  rd : int;  (** destination (source for stores) *)
  rs1 : int;
  rs2 : int;  (** [-1] when the second operand is [imm] *)
  imm : int;  (** masked to 32 bits *)
  target : int;  (** branch/call target, instruction index *)
  base_cycles : int;  (** 1 + every deterministic stall *)
  fetch_addr : int;  (** byte address of the fetch, [4 * index] *)
  sets_icc : bool;
  icc_wait : bool;  (** reads condition codes under the hold interlock *)
  interlock : int;
      (** load-delay stall charged when the textually next instruction
          reads this load's destination; 0 otherwise *)
}

val of_program : Cost_model.t -> Isa.Program.t -> insn array
(** Bumps the [sim.decode.programs] / [sim.decode.insns] counters. *)
