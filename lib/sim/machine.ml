type result = {
  profile : Profiler.t;
  cold_cycles : int;
  warm_cycles : int;
  checksum : int;
}

let clock_hz = 25_000_000.0
let default_mem_size = 1 lsl 20

(* Registry counters mirroring the Liquid-platform statistics module:
   every simulated epoch flushes its profile here, so a metrics dump
   shows where simulated cycles went across a whole DSE run. *)
let m_runs = Obs.Metrics.Counter.v "sim.runs" ~help:"simulated executions"

let m_counter name =
  Obs.Metrics.Counter.v ("sim." ^ name) ~help:("profiler " ^ name)

let flush_profile p =
  Obs.Metrics.Counter.incr m_runs;
  List.iter
    (fun (name, v) -> Obs.Metrics.Counter.incr ~by:v (m_counter name))
    (Profiler.to_assoc p)

let run_once ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  Cpu.run cpu;
  cpu

let cycles_attr (p : Profiler.t) =
  [
    ("cycles", Obs.Json.Int p.Profiler.cycles);
    ("instructions", Obs.Json.Int p.Profiler.instructions);
  ]

let run ?(mem_size = default_mem_size) ?(reps = 1) ?shift_stall config prog =
  let cpu = Cpu.create ?shift_stall config prog ~mem_size in
  let cold =
    Obs.Span.with_span ~cat:"sim" "sim.cold_epoch" (fun sp ->
        Cpu.run cpu;
        let cold = Profiler.copy (Cpu.profile cpu) in
        List.iter (fun (k, v) -> Obs.Span.add_attr sp k v) (cycles_attr cold);
        cold)
  in
  let cold_sum = Cpu.result cpu in
  if reps = 1 then begin
    flush_profile cold;
    {
      profile = cold;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = cold.Profiler.cycles;
      checksum = cold_sum;
    }
  end
  else begin
    let warm =
      Obs.Span.with_span ~cat:"sim" "sim.warm_epoch" (fun sp ->
          Cpu.reset_profile cpu;
          Cpu.reinit cpu;
          Cpu.run cpu;
          let warm = Profiler.copy (Cpu.profile cpu) in
          List.iter (fun (k, v) -> Obs.Span.add_attr sp k v) (cycles_attr warm);
          warm)
    in
    let warm_sum = Cpu.result cpu in
    if warm_sum <> cold_sum then
      failwith
        (Printf.sprintf
           "Machine.run: non-deterministic application (cold checksum %d, warm %d)"
           cold_sum warm_sum);
    let profile = Profiler.scale_add cold ~warm ~reps in
    flush_profile profile;
    {
      profile;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = warm.Profiler.cycles;
      checksum = cold_sum;
    }
  end

let seconds r = float_of_int r.profile.Profiler.cycles /. clock_hz

(* ------------------------------------------------------------------ *)
(* Phased execution: run the same program while switching the
   microarchitecture at pre-computed retired-instruction boundaries,
   charging a per-switch reconfiguration cost.  The epoch structure
   mirrors [run]: one cold execution, one warm execution scaled by
   [reps - 1].  Each warm repetition additionally pays [wrap_cycles]
   to reconfigure from the last phase's configuration back to the
   first one at the repetition boundary. *)

type switch = {
  at_insn : int;  (** retired-instruction boundary (per execution) *)
  config : Arch.Config.t;
  shift_stall : int;
  cycles : int;  (** reconfiguration cost charged at this switch *)
}

type phased = {
  result : result;
  phase_profiles : Profiler.t list;
      (** one per phase, scaled to [reps] executions; sums to
          [result.profile] *)
  switch_cycles : int;  (** total reconfiguration cycles in [result] *)
}

let check_switches switches =
  ignore
    (List.fold_left
       (fun prev sw ->
         if sw.at_insn <= prev then
           invalid_arg
             "Machine.run_phased: switch boundaries must be strictly increasing";
         sw.at_insn)
       0 switches)

(* One full execution with mid-run switches.  [config]/[stall] track
   the installed microarchitecture across epochs; switches that change
   nothing are skipped entirely — no reconfigure and no charge — which
   makes a degenerate 1-configuration schedule bit-identical to [run].
   Returns cumulative profiler snapshots at each boundary plus halt,
   and the switch cycles charged. *)
let phased_epoch cpu ~switches ~keep_caches ~config ~stall =
  let prof = Cpu.profile cpu in
  let snaps = ref [] in
  let charged = ref 0 in
  List.iter
    (fun sw ->
      Cpu.run_until cpu ~insns:sw.at_insn;
      snaps := Profiler.copy prof :: !snaps;
      if sw.config <> !config || sw.shift_stall <> !stall then begin
        if sw.cycles > 0 then begin
          prof.Profiler.cycles <- prof.Profiler.cycles + sw.cycles;
          charged := !charged + sw.cycles
        end;
        Cpu.reconfigure ~shift_stall:sw.shift_stall ~keep_caches cpu sw.config;
        config := sw.config;
        stall := sw.shift_stall
      end)
    switches;
  Cpu.run cpu;
  snaps := Profiler.copy prof :: !snaps;
  (List.rev !snaps, !charged)

(* Per-phase deltas from cumulative snapshots. *)
let snap_deltas snaps =
  let rec go prev = function
    | [] -> []
    | s :: tl -> Profiler.sub s prev :: go s tl
  in
  go (Profiler.create ()) snaps

let last_exn = function
  | [] -> invalid_arg "Machine: empty snapshot list"
  | l -> List.nth l (List.length l - 1)

let run_phased ?(mem_size = default_mem_size) ?(reps = 1) ?(shift_stall = 0)
    ?(keep_caches = false) ?(wrap_cycles = 0) ~switches config prog =
  check_switches switches;
  let cpu = Cpu.create ~shift_stall config prog ~mem_size in
  let cur_config = ref config in
  let cur_stall = ref shift_stall in
  let cold_snaps, cold_charged =
    Obs.Span.with_span ~cat:"sim" "sim.cold_epoch" (fun sp ->
        let snaps, charged =
          phased_epoch cpu ~switches ~keep_caches ~config:cur_config
            ~stall:cur_stall
        in
        List.iter
          (fun (k, v) -> Obs.Span.add_attr sp k v)
          (cycles_attr (last_exn snaps));
        (snaps, charged))
  in
  let cold = last_exn cold_snaps in
  let cold_sum = Cpu.result cpu in
  if reps = 1 then begin
    flush_profile cold;
    {
      result =
        {
          profile = cold;
          cold_cycles = cold.Profiler.cycles;
          warm_cycles = cold.Profiler.cycles;
          checksum = cold_sum;
        };
      phase_profiles = snap_deltas cold_snaps;
      switch_cycles = cold_charged;
    }
  end
  else begin
    let warm_snaps, warm_charged =
      Obs.Span.with_span ~cat:"sim" "sim.warm_epoch" (fun sp ->
          Cpu.reset_profile cpu;
          (* the repetition boundary reconfigures back to the first
             phase's configuration; the wrap charge lands in the first
             phase of the warm profile, so [scale_add] counts it once
             per repetition *)
          let prof = Cpu.profile cpu in
          if wrap_cycles > 0 then
            prof.Profiler.cycles <- prof.Profiler.cycles + wrap_cycles;
          if !cur_config <> config || !cur_stall <> shift_stall then begin
            Cpu.reconfigure ~shift_stall ~keep_caches cpu config;
            cur_config := config;
            cur_stall := shift_stall
          end;
          Cpu.reinit cpu;
          let snaps, charged =
            phased_epoch cpu ~switches ~keep_caches ~config:cur_config
              ~stall:cur_stall
          in
          List.iter
            (fun (k, v) -> Obs.Span.add_attr sp k v)
            (cycles_attr (last_exn snaps));
          (snaps, charged))
    in
    let warm = last_exn warm_snaps in
    let warm_sum = Cpu.result cpu in
    if warm_sum <> cold_sum then
      failwith
        (Printf.sprintf
           "Machine.run_phased: non-deterministic application (cold checksum \
            %d, warm %d)"
           cold_sum warm_sum);
    let profile = Profiler.scale_add cold ~warm ~reps in
    flush_profile profile;
    {
      result =
        {
          profile;
          cold_cycles = cold.Profiler.cycles;
          warm_cycles = warm.Profiler.cycles;
          checksum = cold_sum;
        };
      phase_profiles =
        List.map2
          (fun c w -> Profiler.scale_add c ~warm:w ~reps)
          (snap_deltas cold_snaps) (snap_deltas warm_snaps);
      switch_cycles = cold_charged + ((reps - 1) * (wrap_cycles + warm_charged));
    }
  end

let run_segmented ?mem_size ?reps ?(shift_stall = 0) ~boundaries config prog =
  let switches =
    List.map
      (fun b -> { at_insn = b; config; shift_stall; cycles = 0 })
      boundaries
  in
  run_phased ?mem_size ?reps ~shift_stall ~switches config prog

let trace_reads ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  let buf = Buffer.create (1 lsl 16) in
  Cpu.on_data_read cpu (fun addr ->
      Buffer.add_int32_le buf (Int32.of_int addr));
  Cpu.run cpu;
  let n = Buffer.length buf / 4 in
  let bytes = Buffer.to_bytes buf in
  Array.init n (fun k ->
      Int32.to_int (Bytes.get_int32_le bytes (4 * k)) land 0xFFFFFFFF)
