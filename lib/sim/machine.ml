type result = {
  profile : Profiler.t;
  cold_cycles : int;
  warm_cycles : int;
  checksum : int;
}

let clock_hz = 25_000_000.0
let default_mem_size = 1 lsl 20

(* Registry counters mirroring the Liquid-platform statistics module:
   every simulated epoch flushes its profile here, so a metrics dump
   shows where simulated cycles went across a whole DSE run. *)
let m_runs = Obs.Metrics.Counter.v "sim.runs" ~help:"simulated executions"

let m_counter name =
  Obs.Metrics.Counter.v ("sim." ^ name) ~help:("profiler " ^ name)

let flush_profile p =
  Obs.Metrics.Counter.incr m_runs;
  List.iter
    (fun (name, v) -> Obs.Metrics.Counter.incr ~by:v (m_counter name))
    (Profiler.to_assoc p)

let run_once ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  Cpu.run cpu;
  cpu

let cycles_attr (p : Profiler.t) =
  [
    ("cycles", Obs.Json.Int p.Profiler.cycles);
    ("instructions", Obs.Json.Int p.Profiler.instructions);
  ]

let run ?(mem_size = default_mem_size) ?(reps = 1) ?shift_stall config prog =
  let cpu = Cpu.create ?shift_stall config prog ~mem_size in
  let cold =
    Obs.Span.with_span ~cat:"sim" "sim.cold_epoch" (fun sp ->
        Cpu.run cpu;
        let cold = Profiler.copy (Cpu.profile cpu) in
        List.iter (fun (k, v) -> Obs.Span.add_attr sp k v) (cycles_attr cold);
        cold)
  in
  let cold_sum = Cpu.result cpu in
  if reps = 1 then begin
    flush_profile cold;
    {
      profile = cold;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = cold.Profiler.cycles;
      checksum = cold_sum;
    }
  end
  else begin
    let warm =
      Obs.Span.with_span ~cat:"sim" "sim.warm_epoch" (fun sp ->
          Cpu.reset_profile cpu;
          Cpu.reinit cpu;
          Cpu.run cpu;
          let warm = Profiler.copy (Cpu.profile cpu) in
          List.iter (fun (k, v) -> Obs.Span.add_attr sp k v) (cycles_attr warm);
          warm)
    in
    let warm_sum = Cpu.result cpu in
    if warm_sum <> cold_sum then
      failwith
        (Printf.sprintf
           "Machine.run: non-deterministic application (cold checksum %d, warm %d)"
           cold_sum warm_sum);
    let profile = Profiler.scale_add cold ~warm ~reps in
    flush_profile profile;
    {
      profile;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = warm.Profiler.cycles;
      checksum = cold_sum;
    }
  end

let seconds r = float_of_int r.profile.Profiler.cycles /. clock_hz

let trace_reads ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  let buf = Buffer.create (1 lsl 16) in
  Cpu.on_data_read cpu (fun addr ->
      Buffer.add_int32_le buf (Int32.of_int addr));
  Cpu.run cpu;
  let n = Buffer.length buf / 4 in
  let bytes = Buffer.to_bytes buf in
  Array.init n (fun k ->
      Int32.to_int (Bytes.get_int32_le bytes (4 * k)) land 0xFFFFFFFF)
