(* Direct-threaded execution core.

   [create] pre-decodes the program ({!Decode}) and compiles each
   static instruction into one execute handler — a closure capturing
   the instruction's operands and pre-priced base cycles — so the
   per-instruction path is a single indirect call with no per-cycle
   decode, operand resolution, or stall re-derivation.  All cycle
   prices come from the shared {!Cost_model} table; the handlers only
   add the dynamic costs the table cannot know statically (cache line
   fills, the ICC hold against the previous instruction, window traps,
   the taken-branch redirect).

   Two hot-path shortcuts are observably exact:

   - Same-line access fast path: an access to the line the cache made
     most-recently-used on its previous access is a guaranteed hit,
     and re-touching the MRU way preserves the within-set recency
     order every replacement policy decides victims by (LRU compares
     stamps only within a set, LRR and Random ignore touches
     entirely).  The handler skips the tag search and bumps the
     cache's read/write count directly, so hit/miss sequences, victim
     choices and statistics are bit-identical.  [dlast] is maintained
     on every dcache access (a write miss allocates nothing and
     touches nothing, so it leaves the invariant intact) and
     invalidated after window traps; [ilast] needs no invalidation
     because only fetches touch the icache.

   - Register-window addressing replaces [Isa.Reg.physical]'s
     division with one conditional subtract — exact for r in 8..31
     and cwp in 0..nwin-1, where cwp*16 + (r-8) < 2*(nwin*16). *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let mask32 = 0xFFFFFFFF

type t = {
  mutable config : Arch.Config.t;
  prog : Isa.Program.t;
  mutable cm : Cost_model.t;
  regs : int array;
  nwin : int;
  wsize : int;  (* nwin * 16: windowed registers in the file *)
  mutable cwp : int;
  mutable resident : int;  (* frames currently held in windows, 1..nwin-1 *)
  mutable pc : int;
  mutable halted : bool;
  mutable icc_n : bool;
  mutable icc_z : bool;
  mutable icc_v : bool;
  mutable icc_c : bool;
  mutable prev_set_icc : bool;
  (* same-line fast-path state: line address whose way is known
     resident and most-recently-used in its set; -1 when unknown *)
  mutable ilast : int;
  mutable dlast : int;
  mutable ishift : int;  (* log2 icache line bytes *)
  mutable dshift : int;  (* log2 dcache line bytes *)
  mem : Memory.t;
  mutable icache : Cache.t;
  mutable dcache : Cache.t;
  mutable istats : Cache.stats;
  mutable dstats : Cache.stats;
  prof : Profiler.t;
  mutable on_read : int -> unit;
  mutable handlers : (unit -> unit) array;
}

(* Window-relative register addressing without the division of
   [Isa.Reg.physical]: for r in 8..31 the raw index cwp*16 + (r-8) is
   at most wsize + 7, so one conditional subtract performs the
   wrap-around exactly.  The result is within the register file by
   construction, hence the unchecked array accesses. *)
let[@inline] rread t r =
  if r < 8 then if r = 0 then 0 else Array.unsafe_get t.regs r
  else
    let x = (t.cwp lsl 4) + (r - 8) in
    let x = if x >= t.wsize then x - t.wsize else x in
    Array.unsafe_get t.regs (8 + x)

let[@inline] rwrite t r v =
  if r <> 0 then
    if r < 8 then Array.unsafe_set t.regs r (v land mask32)
    else
      let x = (t.cwp lsl 4) + (r - 8) in
      let x = if x >= t.wsize then x - t.wsize else x in
      Array.unsafe_set t.regs (8 + x) (v land mask32)

let read_reg t r = if r = 0 then 0 else rread t r
let write_reg t r v = rwrite t r v

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let set_nz t res =
  t.icc_n <- res land 0x80000000 <> 0;
  t.icc_z <- res = 0

let branch_taken t = function
  | Isa.Insn.Always -> true
  | Isa.Insn.Eq -> t.icc_z
  | Isa.Insn.Ne -> not t.icc_z
  | Isa.Insn.Gt -> not (t.icc_z || t.icc_n <> t.icc_v)
  | Isa.Insn.Le -> t.icc_z || t.icc_n <> t.icc_v
  | Isa.Insn.Ge -> t.icc_n = t.icc_v
  | Isa.Insn.Lt -> t.icc_n <> t.icc_v
  | Isa.Insn.Gu -> not (t.icc_c || t.icc_z)
  | Isa.Insn.Leu -> t.icc_c || t.icc_z

(* Front end: charge the pre-priced base cycles plus the icache line
   fill when the fetch misses.  Fetches of the line fetched last are
   guaranteed hits (only fetches access the icache), so they skip the
   tag probe and count the read directly. *)
let[@inline] front t base fetch fline =
  t.prof.Profiler.instructions <- t.prof.Profiler.instructions + 1;
  if fline = t.ilast then begin
    t.istats.Cache.reads <- t.istats.Cache.reads + 1;
    base
  end
  else begin
    t.ilast <- fline;
    if Cache.read t.icache fetch then base
    else begin
      t.prof.Profiler.icache_misses <- t.prof.Profiler.icache_misses + 1;
      base + t.cm.Cost_model.iline_fill
    end
  end

(* Commit: one pc store, one cycle-counter add. *)
let[@inline] commit t next c =
  t.pc <- next;
  t.prof.Profiler.cycles <- t.prof.Profiler.cycles + c

(* Dcache probe for a load: extra cycles beyond the pre-priced hit
   cost (0 on a hit, the line fill on a miss — which allocates, so the
   line ends most-recently-used either way). *)
let[@inline] dload_extra t addr =
  let line = addr lsr t.dshift in
  if line = t.dlast then begin
    t.dstats.Cache.reads <- t.dstats.Cache.reads + 1;
    0
  end
  else begin
    t.dlast <- line;
    if Cache.read t.dcache addr then 0
    else begin
      t.prof.Profiler.dcache_read_misses <-
        t.prof.Profiler.dcache_read_misses + 1;
      t.cm.Cost_model.dline_fill
    end
  end

(* Dcache probe for a store: write-through, no allocate — the cost is
   static, only the replacement state and statistics are updated.  A
   write miss changes no cache state, so [dlast] stays valid. *)
let[@inline] dstore_probe t addr =
  let line = addr lsr t.dshift in
  if line = t.dlast then t.dstats.Cache.writes <- t.dstats.Cache.writes + 1
  else if Cache.write t.dcache addr then t.dlast <- line

let observe_read t addr = t.on_read addr

(* Register-window spill/fill.  The 16 locals+ins of window [w] live in
   the 64-byte save area at that window's %sp, as laid out by the
   standard SPARC overflow/underflow handlers.  Rare, so they go
   through the plain cache entry points and invalidate [dlast]. *)
let window_sp t w =
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:w Isa.Reg.sp)

let dcache_load_cost t addr =
  if Cache.read t.dcache addr then t.cm.Cost_model.load_extra
  else begin
    t.prof.Profiler.dcache_read_misses <- t.prof.Profiler.dcache_read_misses + 1;
    t.cm.Cost_model.dline_fill + t.cm.Cost_model.load_extra
  end

let dcache_store_cost t addr =
  let hit = Cache.write t.dcache addr in
  ignore hit;
  t.cm.Cost_model.store_extra

let count_load t = t.prof.Profiler.dcache_reads <- t.prof.Profiler.dcache_reads + 1
let count_store t = t.prof.Profiler.dcache_writes <- t.prof.Profiler.dcache_writes + 1

let spill_window t w =
  let sp = window_sp t w in
  let cost = ref Cost_model.trap_overhead in
  for k = 0 to 7 do
    let l = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.l k) in
    let i = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.i k) in
    count_store t;
    Memory.write_u32 t.mem (sp + (4 * k)) t.regs.(l);
    cost := !cost + 1 + dcache_store_cost t (sp + (4 * k));
    count_store t;
    Memory.write_u32 t.mem (sp + 32 + (4 * k)) t.regs.(i);
    cost := !cost + 1 + dcache_store_cost t (sp + 32 + (4 * k))
  done;
  t.dlast <- -1;
  !cost

let fill_window t w =
  let sp = window_sp t w in
  let cost = ref Cost_model.trap_overhead in
  for k = 0 to 7 do
    let l = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.l k) in
    let i = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.i k) in
    count_load t;
    t.regs.(l) <- Memory.read_u32 t.mem (sp + (4 * k));
    cost := !cost + 1 + dcache_load_cost t (sp + (4 * k));
    count_load t;
    t.regs.(i) <- Memory.read_u32 t.mem (sp + 32 + (4 * k));
    cost := !cost + 1 + dcache_load_cost t (sp + 32 + (4 * k))
  done;
  t.dlast <- -1;
  !cost

let[@inline] alu_result op a b =
  match op with
  | Isa.Insn.Add -> (a + b) land mask32
  | Isa.Insn.Sub -> (a - b) land mask32
  | Isa.Insn.And -> a land b
  | Isa.Insn.Or -> a lor b
  | Isa.Insn.Xor -> a lxor b
  | Isa.Insn.Sll -> (a lsl (b land 31)) land mask32
  | Isa.Insn.Srl -> a lsr (b land 31)
  | Isa.Insn.Sra -> (to_signed a asr (b land 31)) land mask32

let set_icc_arith t op a b res =
  set_nz t res;
  (match op with
  | Isa.Insn.Add ->
      t.icc_c <- a + b > mask32;
      t.icc_v <- lnot (a lxor b) land (a lxor res) land 0x80000000 <> 0
  | Isa.Insn.Sub ->
      t.icc_c <- a < b;
      t.icc_v <- (a lxor b) land (a lxor res) land 0x80000000 <> 0
  | Isa.Insn.And | Isa.Insn.Or | Isa.Insn.Xor | Isa.Insn.Sll | Isa.Insn.Srl
  | Isa.Insn.Sra ->
      t.icc_c <- false;
      t.icc_v <- false);
  ()

(* Compile one decoded instruction into its execute handler: the whole
   per-instruction path — front end, operand reads, the operation,
   commit — lives in one flat closure body, so executing an
   instruction is exactly one indirect call. *)
let compile t idx (d : Decode.insn) =
  let base = d.Decode.base_cycles in
  let fetch = d.Decode.fetch_addr in
  let fline = fetch lsr t.ishift in
  let fall = idx + 1 in
  let rd = d.Decode.rd in
  let rs1 = d.Decode.rs1 in
  let rs2 = d.Decode.rs2 in
  let imm = d.Decode.imm in
  let tgt = d.Decode.target in
  let prof = t.prof in
  match d.Decode.op with
  | Decode.Alu (op, cc) ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- cc;
        let a = rread t rs1 in
        let b = if rs2 >= 0 then rread t rs2 else imm in
        let res = alu_result op a b in
        if cc then set_icc_arith t op a b res;
        rwrite t rd res;
        commit t fall c
  | Decode.Sethi ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        rwrite t rd imm;
        commit t fall c
  | Decode.Mul (signed, cc) ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- cc;
        let a = rread t rs1 in
        let b = if rs2 >= 0 then rread t rs2 else imm in
        let res =
          if signed then to_signed a * to_signed b land mask32
          else a * b land mask32
        in
        if cc then begin
          set_nz t res;
          t.icc_v <- false;
          t.icc_c <- false
        end;
        rwrite t rd res;
        prof.Profiler.mults <- prof.Profiler.mults + 1;
        commit t fall c
  | Decode.Div signed ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let a = rread t rs1 in
        let b = if rs2 >= 0 then rread t rs2 else imm in
        if b = 0 then error "division by zero at pc %d" idx;
        let res =
          if signed then to_signed a / to_signed b land mask32
          else a / b land mask32
        in
        rwrite t rd res;
        prof.Profiler.divs <- prof.Profiler.divs + 1;
        commit t fall c
  | Decode.Load (width, signed) ->
      let il = d.Decode.interlock in
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let addr =
          (rread t rs1 + if rs2 >= 0 then rread t rs2 else imm) land mask32
        in
        count_load t;
        observe_read t addr;
        let raw =
          match width with
          | Isa.Insn.Byte -> Memory.read_u8 t.mem addr
          | Isa.Insn.Half -> Memory.read_u16 t.mem addr
          | Isa.Insn.Word -> Memory.read_u32 t.mem addr
        in
        let v =
          if not signed then raw
          else
            match width with
            | Isa.Insn.Byte -> (raw lxor 0x80) - 0x80 land mask32
            | Isa.Insn.Half -> (raw lxor 0x8000) - 0x8000 land mask32
            | Isa.Insn.Word -> raw
        in
        rwrite t rd (v land mask32);
        let c = c + dload_extra t addr in
        (* load-delay interlock against an immediately dependent user;
           the dependence is static, priced at decode time *)
        let c =
          if il > 0 then begin
            prof.Profiler.load_interlocks <- prof.Profiler.load_interlocks + 1;
            c + il
          end
          else c
        in
        commit t fall c
  | Decode.Store width ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let addr =
          (rread t rs1 + if rs2 >= 0 then rread t rs2 else imm) land mask32
        in
        let v = rread t rd in
        count_store t;
        (match width with
        | Isa.Insn.Byte -> Memory.write_u8 t.mem addr v
        | Isa.Insn.Half -> Memory.write_u16 t.mem addr v
        | Isa.Insn.Word -> Memory.write_u32 t.mem addr v);
        dstore_probe t addr;
        commit t fall c
  | Decode.Branch Isa.Insn.Always ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        prof.Profiler.branches <- prof.Profiler.branches + 1;
        prof.Profiler.taken_branches <- prof.Profiler.taken_branches + 1;
        commit t tgt (c + 1)
  | Decode.Branch cond ->
      let icc_wait = d.Decode.icc_wait in
      fun () ->
        let c = front t base fetch fline in
        let c =
          if icc_wait && t.prev_set_icc then begin
            prof.Profiler.icc_hold_stalls <- prof.Profiler.icc_hold_stalls + 1;
            c + 1
          end
          else c
        in
        t.prev_set_icc <- false;
        prof.Profiler.branches <- prof.Profiler.branches + 1;
        if branch_taken t cond then begin
          prof.Profiler.taken_branches <- prof.Profiler.taken_branches + 1;
          commit t tgt (c + 1)
        end
        else commit t fall c
  | Decode.Call ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        rwrite t rd idx;
        commit t tgt c
  | Decode.Jmpl ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let target =
          (rread t rs1 + if rs2 >= 0 then rread t rs2 else imm) land mask32
        in
        rwrite t rd idx;
        commit t target c
  | Decode.Save ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let res =
          (rread t rs1 + if rs2 >= 0 then rread t rs2 else imm) land mask32
        in
        let c =
          if t.resident = t.nwin - 1 then begin
            let oldest = (t.cwp + t.resident - 1) mod t.nwin in
            prof.Profiler.window_overflows <- prof.Profiler.window_overflows + 1;
            c + spill_window t oldest
          end
          else begin
            t.resident <- t.resident + 1;
            c
          end
        in
        t.cwp <- (if t.cwp = 0 then t.nwin - 1 else t.cwp - 1);
        rwrite t rd res;
        commit t fall c
  | Decode.Restore ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        let res =
          (rread t rs1 + if rs2 >= 0 then rread t rs2 else imm) land mask32
        in
        let c =
          if t.resident = 1 then begin
            let caller = (t.cwp + 1) mod t.nwin in
            prof.Profiler.window_underflows <-
              prof.Profiler.window_underflows + 1;
            c + fill_window t caller
          end
          else begin
            t.resident <- t.resident - 1;
            c
          end
        in
        t.cwp <- (let c' = t.cwp + 1 in if c' = t.nwin then 0 else c');
        rwrite t rd res;
        commit t fall c
  | Decode.Nop ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        commit t fall c
  | Decode.Halt ->
      fun () ->
        let c = front t base fetch fline in
        t.prev_set_icc <- false;
        t.halted <- true;
        commit t fall c

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create ?(shift_stall = 0) config prog ~mem_size =
  (match Arch.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cpu.create: " ^ msg));
  let data_end = Isa.Program.data_end prog in
  if mem_size < data_end + 4096 then
    invalid_arg "Cpu.create: memory too small for data image + stack";
  let iu = config.Arch.Config.iu in
  let cm = Cost_model.of_arch_config ~shift_stall config in
  let icache = Cache.of_config config.Arch.Config.icache ~rng:(Rng.create ~seed:0x1CE) in
  let dcache = Cache.of_config config.Arch.Config.dcache ~rng:(Rng.create ~seed:0xDCE) in
  let t =
    {
      config;
      prog;
      cm;
      regs = Array.make (Isa.Reg.file_size ~nwindows:iu.reg_windows) 0;
      nwin = iu.reg_windows;
      wsize = iu.reg_windows * 16;
      cwp = 0;
      resident = 1;
      pc = prog.Isa.Program.entry;
      halted = false;
      icc_n = false;
      icc_z = false;
      icc_v = false;
      icc_c = false;
      prev_set_icc = false;
      ilast = -1;
      dlast = -1;
      ishift = log2 (Cache.line_bytes icache);
      dshift = log2 (Cache.line_bytes dcache);
      mem = Memory.create ~size:mem_size;
      icache;
      dcache;
      istats = Cache.stats icache;
      dstats = Cache.stats dcache;
      prof = Profiler.create ();
      on_read = ignore;
      handlers = [||];
    }
  in
  t.handlers <- Array.mapi (compile t) (Decode.of_program cm prog);
  Memory.load_image t.mem ~at:Isa.Program.data_base prog.Isa.Program.data;
  let sp = mem_size - 128 in
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:0 Isa.Reg.sp) <- sp;
  t

let reinit t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.cwp <- 0;
  t.resident <- 1;
  t.pc <- t.prog.Isa.Program.entry;
  t.halted <- false;
  t.icc_n <- false;
  t.icc_z <- false;
  t.icc_v <- false;
  t.icc_c <- false;
  t.prev_set_icc <- false;
  Memory.clear t.mem;
  Memory.load_image t.mem ~at:Isa.Program.data_base t.prog.Isa.Program.data;
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:0 Isa.Reg.sp) <-
    Memory.size t.mem - 128

(* Runtime reconfiguration: swap the microarchitecture under a live
   execution.  Architectural state (registers, memory, pc, windows,
   condition codes) is untouched — only the cost model, the caches and
   the pre-compiled handlers change.  A cache whose geometry is
   unchanged may keep its contents ([keep_caches], modelling partial
   reconfiguration that leaves that region's block RAM intact);
   otherwise it restarts cold with its standard deterministic seed.
   The register-window file is structural (it holds live architectural
   state), so its size cannot change at runtime. *)
let reconfigure ?(shift_stall = 0) ?(keep_caches = false) t config =
  (match Arch.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cpu.reconfigure: " ^ msg));
  if
    config.Arch.Config.iu.Arch.Config.reg_windows
    <> t.config.Arch.Config.iu.Arch.Config.reg_windows
  then invalid_arg "Cpu.reconfigure: register-window count is not runtime-reconfigurable";
  let keep old_cfg new_cfg old_cache seed =
    if keep_caches && old_cfg = new_cfg then old_cache
    else Cache.of_config new_cfg ~rng:(Rng.create ~seed)
  in
  let icache =
    keep t.config.Arch.Config.icache config.Arch.Config.icache t.icache 0x1CE
  in
  let dcache =
    keep t.config.Arch.Config.dcache config.Arch.Config.dcache t.dcache 0xDCE
  in
  t.config <- config;
  t.cm <- Cost_model.of_arch_config ~shift_stall config;
  t.icache <- icache;
  t.dcache <- dcache;
  t.istats <- Cache.stats icache;
  t.dstats <- Cache.stats dcache;
  t.ishift <- log2 (Cache.line_bytes icache);
  t.dshift <- log2 (Cache.line_bytes dcache);
  t.ilast <- -1;
  t.dlast <- -1;
  t.handlers <- Array.mapi (compile t) (Decode.of_program t.cm t.prog)

let step t =
  if t.halted then false
  else begin
    let h = t.handlers in
    let idx = t.pc in
    if idx < 0 || idx >= Array.length h then
      error "pc %d outside program (0..%d)" idx (Array.length h - 1);
    (Array.unsafe_get h idx) ();
    not t.halted
  end

let run ?(max_insns = 200_000_000) t =
  let budget = ref max_insns in
  let continue = ref (not t.halted) in
  while !continue do
    if !budget <= 0 then error "instruction budget exhausted";
    decr budget;
    continue := step t
  done

(* Run until the profiler has retired [insns] instructions in total
   (each step retires exactly one), or the program halts first. *)
let run_until t ~insns =
  let continue = ref (not t.halted) in
  while !continue && t.prof.Profiler.instructions < insns do
    continue := step t
  done

let profile t = t.prof
let reset_profile t = Profiler.reset t.prof
let result t = read_reg t (Isa.Reg.o 0)
let pc t = t.pc
let halted t = t.halted
let mem t = t.mem
let program t = t.prog
let icache t = t.icache
let dcache t = t.dcache

let on_data_read t f = t.on_read <- f
