exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let mask32 = 0xFFFFFFFF

type t = {
  config : Arch.Config.t;
  prog : Isa.Program.t;
  regs : int array;
  nwin : int;
  mutable cwp : int;
  mutable resident : int;  (* frames currently held in windows, 1..nwin-1 *)
  mutable pc : int;
  mutable halted : bool;
  mutable icc_n : bool;
  mutable icc_z : bool;
  mutable icc_v : bool;
  mutable icc_c : bool;
  mutable prev_set_icc : bool;
  (* scratch accumulators for [step]: fields rather than refs keep the
     per-instruction path allocation-free (minor-GC pressure is a
     stop-the-world sync across domains in parallel model building) *)
  mutable acc_cycles : int;
  mutable next_pc : int;
  mem : Memory.t;
  icache : Cache.t;
  dcache : Cache.t;
  prof : Profiler.t;
  mutable on_read : int -> unit;
  (* precomputed timing knobs *)
  iline_fill : int;
  dline_fill : int;
  load_extra : int;       (* dcache hit latency beyond 1 cycle *)
  store_extra : int;
  jump_extra : int;       (* beyond the 1-cycle redirect *)
  decode_extra : int;     (* on control transfers when fast decode off *)
  interlock : int;        (* load-delay interlock cycles *)
  mul_stall : int;
  div_stall : int;
  shift_stall : int;      (* extra cycles per shift (no barrel shifter) *)
}

let trap_overhead = 6

let create ?(shift_stall = 0) config prog ~mem_size =
  (match Arch.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cpu.create: " ^ msg));
  let data_end = Isa.Program.data_end prog in
  if mem_size < data_end + 4096 then
    invalid_arg "Cpu.create: memory too small for data image + stack";
  let iu = config.Arch.Config.iu in
  let t =
    {
      config;
      prog;
      regs = Array.make (Isa.Reg.file_size ~nwindows:iu.reg_windows) 0;
      nwin = iu.reg_windows;
      cwp = 0;
      resident = 1;
      pc = prog.Isa.Program.entry;
      halted = false;
      icc_n = false;
      icc_z = false;
      icc_v = false;
      icc_c = false;
      prev_set_icc = false;
      acc_cycles = 0;
      next_pc = 0;
      mem = Memory.create ~size:mem_size;
      icache = Cache.of_config config.Arch.Config.icache ~rng:(Rng.create ~seed:0x1CE);
      dcache = Cache.of_config config.Arch.Config.dcache ~rng:(Rng.create ~seed:0xDCE);
      prof = Profiler.create ();
      on_read = ignore;
      iline_fill =
        Memory.line_fill_cycles ~line_words:config.Arch.Config.icache.line_words;
      dline_fill =
        Memory.line_fill_cycles ~line_words:config.Arch.Config.dcache.line_words;
      (* Fast read/write shorten LEON's combinational cache paths; at
         our fixed clock they change area, not CPI. *)
      load_extra = 1;
      store_extra = 1;
      jump_extra = (if iu.fast_jump then 0 else 1);
      decode_extra = (if iu.fast_decode then 0 else 1);
      interlock = iu.load_delay - 1;
      mul_stall = Funit.mul_latency iu.multiplier - 1;
      div_stall = Funit.div_latency iu.divider - 1;
      shift_stall;
    }
  in
  Memory.load_image t.mem ~at:Isa.Program.data_base prog.Isa.Program.data;
  let sp = mem_size - 128 in
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:0 Isa.Reg.sp) <- sp;
  t

let reinit t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.cwp <- 0;
  t.resident <- 1;
  t.pc <- t.prog.Isa.Program.entry;
  t.halted <- false;
  t.icc_n <- false;
  t.icc_z <- false;
  t.icc_v <- false;
  t.icc_c <- false;
  t.prev_set_icc <- false;
  Memory.clear t.mem;
  Memory.load_image t.mem ~at:Isa.Program.data_base t.prog.Isa.Program.data;
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:0 Isa.Reg.sp) <-
    Memory.size t.mem - 128

let phys t r = Isa.Reg.physical ~nwindows:t.nwin ~cwp:t.cwp r
let read_reg t r = if r = 0 then 0 else t.regs.(phys t r)
let write_reg t r v = if r <> 0 then t.regs.(phys t r) <- v land mask32

let operand t = function
  | Isa.Insn.Reg r -> read_reg t r
  | Isa.Insn.Imm i -> i land mask32

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let set_nz t res =
  t.icc_n <- res land 0x80000000 <> 0;
  t.icc_z <- res = 0

let branch_taken t = function
  | Isa.Insn.Always -> true
  | Isa.Insn.Eq -> t.icc_z
  | Isa.Insn.Ne -> not t.icc_z
  | Isa.Insn.Gt -> not (t.icc_z || t.icc_n <> t.icc_v)
  | Isa.Insn.Le -> t.icc_z || t.icc_n <> t.icc_v
  | Isa.Insn.Ge -> t.icc_n = t.icc_v
  | Isa.Insn.Lt -> t.icc_n <> t.icc_v
  | Isa.Insn.Gu -> not (t.icc_c || t.icc_z)
  | Isa.Insn.Leu -> t.icc_c || t.icc_z

(* Data-cache timing helpers: return extra cycles beyond the base one. *)
let dcache_load_cost t addr =
  if Cache.read t.dcache addr then t.load_extra
  else begin
    t.prof.Profiler.dcache_read_misses <- t.prof.Profiler.dcache_read_misses + 1;
    t.dline_fill + t.load_extra
  end

let dcache_store_cost t addr =
  let hit = Cache.write t.dcache addr in
  ignore hit;
  t.store_extra

let count_load t = t.prof.Profiler.dcache_reads <- t.prof.Profiler.dcache_reads + 1
let observe_read t addr = t.on_read addr
let count_store t = t.prof.Profiler.dcache_writes <- t.prof.Profiler.dcache_writes + 1

(* Register-window spill/fill.  The 16 locals+ins of window [w] live in
   the 64-byte save area at that window's %sp, as laid out by the
   standard SPARC overflow/underflow handlers. *)
let window_sp t w =
  t.regs.(Isa.Reg.physical ~nwindows:t.nwin ~cwp:w Isa.Reg.sp)

let spill_window t w =
  let sp = window_sp t w in
  let cost = ref trap_overhead in
  for k = 0 to 7 do
    let l = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.l k) in
    let i = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.i k) in
    count_store t;
    Memory.write_u32 t.mem (sp + (4 * k)) t.regs.(l);
    cost := !cost + 1 + dcache_store_cost t (sp + (4 * k));
    count_store t;
    Memory.write_u32 t.mem (sp + 32 + (4 * k)) t.regs.(i);
    cost := !cost + 1 + dcache_store_cost t (sp + 32 + (4 * k))
  done;
  !cost

let fill_window t w =
  let sp = window_sp t w in
  let cost = ref trap_overhead in
  for k = 0 to 7 do
    let l = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.l k) in
    let i = Isa.Reg.physical ~nwindows:t.nwin ~cwp:w (Isa.Reg.i k) in
    count_load t;
    t.regs.(l) <- Memory.read_u32 t.mem (sp + (4 * k));
    cost := !cost + 1 + dcache_load_cost t (sp + (4 * k));
    count_load t;
    t.regs.(i) <- Memory.read_u32 t.mem (sp + 32 + (4 * k));
    cost := !cost + 1 + dcache_load_cost t (sp + 32 + (4 * k))
  done;
  !cost

let alu_result t op a b =
  match op with
  | Isa.Insn.Add -> (a + b) land mask32
  | Isa.Insn.Sub -> (a - b) land mask32
  | Isa.Insn.And -> a land b
  | Isa.Insn.Or -> a lor b
  | Isa.Insn.Xor -> a lxor b
  | Isa.Insn.Sll -> (a lsl (b land 31)) land mask32
  | Isa.Insn.Srl -> a lsr (b land 31)
  | Isa.Insn.Sra ->
      ignore t;
      (to_signed a asr (b land 31)) land mask32

let set_icc_arith t op a b res =
  set_nz t res;
  (match op with
  | Isa.Insn.Add ->
      t.icc_c <- a + b > mask32;
      t.icc_v <- lnot (a lxor b) land (a lxor res) land 0x80000000 <> 0
  | Isa.Insn.Sub ->
      t.icc_c <- a < b;
      t.icc_v <- (a lxor b) land (a lxor res) land 0x80000000 <> 0
  | Isa.Insn.And | Isa.Insn.Or | Isa.Insn.Xor | Isa.Insn.Sll | Isa.Insn.Srl
  | Isa.Insn.Sra ->
      t.icc_c <- false;
      t.icc_v <- false);
  ()

let step t =
  if t.halted then false
  else begin
    let code = t.prog.Isa.Program.code in
    let idx = t.pc in
    if idx < 0 || idx >= Array.length code then
      error "pc %d outside program (0..%d)" idx (Array.length code - 1);
    let insn = code.(idx) in
    let prof = t.prof in
    t.acc_cycles <- 1;
    (* instruction fetch *)
    if not (Cache.read t.icache (idx * 4)) then begin
      prof.Profiler.icache_misses <- prof.Profiler.icache_misses + 1;
      t.acc_cycles <- t.acc_cycles + t.iline_fill
    end;
    prof.Profiler.instructions <- prof.Profiler.instructions + 1;
    if t.decode_extra > 0 && Isa.Insn.is_control insn then
      t.acc_cycles <- t.acc_cycles + t.decode_extra;
    (* ICC hold: with the hold logic enabled, a branch reading condition
       codes produced by the immediately preceding instruction stalls a
       cycle; without it the codes are forwarded. *)
    if
      t.config.Arch.Config.iu.icc_hold && t.prev_set_icc
      && Isa.Insn.uses_icc insn
    then begin
      t.acc_cycles <- t.acc_cycles + 1;
      prof.Profiler.icc_hold_stalls <- prof.Profiler.icc_hold_stalls + 1
    end;
    t.prev_set_icc <- Isa.Insn.sets_icc insn;
    t.next_pc <- idx + 1;
    (match insn with
    | Isa.Insn.Alu { op; cc; rd; rs1; op2 } ->
        let a = read_reg t rs1 and b = operand t op2 in
        let res = alu_result t op a b in
        if cc then set_icc_arith t op a b res;
        (if t.shift_stall > 0 then
           match op with
           | Isa.Insn.Sll | Isa.Insn.Srl | Isa.Insn.Sra ->
               t.acc_cycles <- t.acc_cycles + t.shift_stall
           | _ -> ());
        write_reg t rd res
    | Isa.Insn.Sethi { rd; imm } -> write_reg t rd ((imm lsl 11) land mask32)
    | Isa.Insn.Mul { signed; cc; rd; rs1; op2 } ->
        let a = read_reg t rs1 and b = operand t op2 in
        let res =
          if signed then to_signed a * to_signed b land mask32
          else a * b land mask32
        in
        if cc then begin
          set_nz t res;
          t.icc_v <- false;
          t.icc_c <- false
        end;
        write_reg t rd res;
        prof.Profiler.mults <- prof.Profiler.mults + 1;
        t.acc_cycles <- t.acc_cycles + t.mul_stall
    | Isa.Insn.Div { signed; rd; rs1; op2 } ->
        let a = read_reg t rs1 and b = operand t op2 in
        if b = 0 then error "division by zero at pc %d" idx;
        let res =
          if signed then to_signed a / to_signed b land mask32
          else a / b land mask32
        in
        write_reg t rd res;
        prof.Profiler.divs <- prof.Profiler.divs + 1;
        t.acc_cycles <- t.acc_cycles + t.div_stall
    | Isa.Insn.Load { width; signed; rd; rs1; op2 } ->
        let addr = (read_reg t rs1 + operand t op2) land mask32 in
        count_load t;
        observe_read t addr;
        let raw =
          match width with
          | Isa.Insn.Byte -> Memory.read_u8 t.mem addr
          | Isa.Insn.Half -> Memory.read_u16 t.mem addr
          | Isa.Insn.Word -> Memory.read_u32 t.mem addr
        in
        let v =
          if not signed then raw
          else
            match width with
            | Isa.Insn.Byte -> (raw lxor 0x80) - 0x80 land mask32
            | Isa.Insn.Half -> (raw lxor 0x8000) - 0x8000 land mask32
            | Isa.Insn.Word -> raw
        in
        write_reg t rd (v land mask32);
        t.acc_cycles <- t.acc_cycles + dcache_load_cost t addr;
        (* load-delay interlock against an immediately dependent user *)
        if t.interlock > 0 && rd <> 0 && idx + 1 < Array.length code then
          if List.mem rd (Isa.Insn.reads code.(idx + 1)) then begin
            t.acc_cycles <- t.acc_cycles + t.interlock;
            prof.Profiler.load_interlocks <- prof.Profiler.load_interlocks + 1
          end
    | Isa.Insn.Store { width; rs; rs1; op2 } ->
        let addr = (read_reg t rs1 + operand t op2) land mask32 in
        let v = read_reg t rs in
        count_store t;
        (match width with
        | Isa.Insn.Byte -> Memory.write_u8 t.mem addr v
        | Isa.Insn.Half -> Memory.write_u16 t.mem addr v
        | Isa.Insn.Word -> Memory.write_u32 t.mem addr v);
        t.acc_cycles <- t.acc_cycles + dcache_store_cost t addr
    | Isa.Insn.Branch { cond; target } ->
        prof.Profiler.branches <- prof.Profiler.branches + 1;
        if branch_taken t cond then begin
          prof.Profiler.taken_branches <- prof.Profiler.taken_branches + 1;
          t.next_pc <- target;
          t.acc_cycles <- t.acc_cycles + 1
        end
    | Isa.Insn.Call { target } ->
        write_reg t Isa.Reg.ra idx;
        t.next_pc <- target;
        t.acc_cycles <- t.acc_cycles + 1 + t.jump_extra
    | Isa.Insn.Jmpl { rd; rs1; op2 } ->
        let target = (read_reg t rs1 + operand t op2) land mask32 in
        write_reg t rd idx;
        t.next_pc <- target;
        t.acc_cycles <- t.acc_cycles + 1 + t.jump_extra
    | Isa.Insn.Save { rd; rs1; op2 } ->
        let res = (read_reg t rs1 + operand t op2) land mask32 in
        if t.resident = t.nwin - 1 then begin
          let oldest = (t.cwp + t.resident - 1) mod t.nwin in
          t.acc_cycles <- t.acc_cycles + spill_window t oldest;
          prof.Profiler.window_overflows <- prof.Profiler.window_overflows + 1
        end
        else t.resident <- t.resident + 1;
        t.cwp <- (t.cwp - 1 + t.nwin) mod t.nwin;
        write_reg t rd res
    | Isa.Insn.Restore { rd; rs1; op2 } ->
        let res = (read_reg t rs1 + operand t op2) land mask32 in
        if t.resident = 1 then begin
          let caller = (t.cwp + 1) mod t.nwin in
          t.acc_cycles <- t.acc_cycles + fill_window t caller;
          prof.Profiler.window_underflows <- prof.Profiler.window_underflows + 1
        end
        else t.resident <- t.resident - 1;
        t.cwp <- (t.cwp + 1) mod t.nwin;
        write_reg t rd res
    | Isa.Insn.Nop -> ()
    | Isa.Insn.Halt -> t.halted <- true);
    t.pc <- t.next_pc;
    prof.Profiler.cycles <- prof.Profiler.cycles + t.acc_cycles;
    not t.halted
  end

let run ?(max_insns = 200_000_000) t =
  let budget = ref max_insns in
  let continue = ref (not t.halted) in
  while !continue do
    if !budget <= 0 then error "instruction budget exhausted";
    decr budget;
    continue := step t
  done

let profile t = t.prof
let reset_profile t = Profiler.reset t.prof
let result t = read_reg t (Isa.Reg.o 0)
let pc t = t.pc
let halted t = t.halted
let mem t = t.mem
let program t = t.prog
let icache t = t.icache
let dcache t = t.dcache

let on_data_read t f = t.on_read <- f
