(** Cycle-accurate execution statistics.

    This plays the role of the Liquid Architecture platform's
    hardware-based, non-intrusive statistics module: it observes the
    processor and counts cycles and events without perturbing the
    execution. *)

type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable icache_misses : int;
  mutable dcache_reads : int;
  mutable dcache_read_misses : int;
  mutable dcache_writes : int;
  mutable dcache_write_misses : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable mults : int;
  mutable divs : int;
  mutable window_overflows : int;
  mutable window_underflows : int;
  mutable load_interlocks : int;
  mutable icc_hold_stalls : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val add : t -> t -> t
(** Component-wise sum (for combining epochs). *)

val sub : t -> t -> t
(** Component-wise difference: [sub after before] is the delta
    accumulated between two snapshots of the same execution. *)

val scale_add : t -> warm:t -> reps:int -> t
(** [scale_add cold ~warm ~reps] models [reps] executions: one cold run
    plus [reps - 1] repetitions of the warm (steady-state) run. *)

val to_assoc : t -> (string * int) list
(** Every counter as a [(name, value)] row, in declaration order. *)

val to_json : t -> Obs.Json.t

val invariants : t -> (string * bool) list
(** Named structural invariants of a profile (misses bounded by
    accesses, [instructions <= cycles], stalls fit in cycles, ...);
    each paired with whether it holds. *)

val check : t -> (unit, string) result
(** [Error] lists the violated {!invariants}. *)

val pp : t Fmt.t
