(* Decode-once program representation.

   Each static instruction is resolved exactly once per {!Cpu.create}
   into a flat record: operand registers and pre-masked immediates,
   the instruction class, and [base_cycles] with every deterministic
   stall already priced in from the {!Cost_model} table (shift/mul/div
   latencies, slow decode on control transfers, slow jump on
   call/return).  Dynamic costs — line fills, the ICC hold against the
   previous instruction, window traps, the taken-branch redirect —
   remain runtime decisions, but their trigger conditions are
   precomputed where static ([icc_wait], the load-delay [interlock]
   against the textually next instruction). *)

let m_programs =
  Obs.Metrics.Counter.v "sim.decode.programs"
    ~help:"programs pre-decoded for direct-threaded execution"

let m_insns =
  Obs.Metrics.Counter.v "sim.decode.insns"
    ~help:"static instructions pre-decoded"

let mask32 = 0xFFFFFFFF

type op =
  | Alu of Isa.Insn.alu_op * bool  (* op, sets cc *)
  | Sethi  (* [imm] holds the pre-shifted, pre-masked value *)
  | Mul of bool * bool  (* signed, sets cc *)
  | Div of bool  (* signed *)
  | Load of Isa.Insn.width * bool  (* width, sign-extending *)
  | Store of Isa.Insn.width
  | Branch of Isa.Insn.cond
  | Call
  | Jmpl
  | Save
  | Restore
  | Nop
  | Halt

type insn = {
  op : op;
  rd : int;
  rs1 : int;
  rs2 : int;  (* -1: the second operand is [imm] *)
  imm : int;  (* already masked to 32 bits *)
  target : int;  (* branch/call target (instruction index) *)
  base_cycles : int;  (* 1 + all deterministic stalls *)
  fetch_addr : int;  (* byte address of the fetch, [4 * index] *)
  sets_icc : bool;
  icc_wait : bool;  (* reads condition codes under the hold interlock *)
  interlock : int;  (* load-delay stall iff the next insn reads [rd] *)
}

let no_reg = -1

let split_op2 = function
  | Isa.Insn.Reg r -> (r, 0)
  | Isa.Insn.Imm i -> (no_reg, i land mask32)

let of_insn (cm : Cost_model.t) code idx insn =
  let rd, rs1, (rs2, imm), target, op, base_cycles =
    match insn with
    | Isa.Insn.Alu { op; cc; rd; rs1; op2 } ->
        let base =
          match op with
          | Isa.Insn.Sll | Isa.Insn.Srl | Isa.Insn.Sra ->
              Cost_model.shift_cycles cm
          | _ -> Cost_model.alu_cycles cm
        in
        (rd, rs1, split_op2 op2, 0, Alu (op, cc), base)
    | Isa.Insn.Sethi { rd; imm } ->
        (rd, 0, (no_reg, (imm lsl 11) land mask32), 0, Sethi, 1)
    | Isa.Insn.Mul { signed; cc; rd; rs1; op2 } ->
        (rd, rs1, split_op2 op2, 0, Mul (signed, cc), Cost_model.mul_cycles cm)
    | Isa.Insn.Div { signed; rd; rs1; op2 } ->
        (rd, rs1, split_op2 op2, 0, Div signed, Cost_model.div_cycles cm)
    | Isa.Insn.Load { width; signed; rd; rs1; op2 } ->
        ( rd,
          rs1,
          split_op2 op2,
          0,
          Load (width, signed),
          Cost_model.load_hit_cycles cm )
    | Isa.Insn.Store { width; rs; rs1; op2 } ->
        (rs, rs1, split_op2 op2, 0, Store width, Cost_model.store_cycles cm)
    | Isa.Insn.Branch { cond; target } ->
        (0, 0, (no_reg, 0), target, Branch cond, Cost_model.branch_cycles cm)
    | Isa.Insn.Call { target } ->
        (Isa.Reg.ra, 0, (no_reg, 0), target, Call, Cost_model.jump_cycles cm)
    | Isa.Insn.Jmpl { rd; rs1; op2 } ->
        (rd, rs1, split_op2 op2, 0, Jmpl, Cost_model.jump_cycles cm)
    | Isa.Insn.Save { rd; rs1; op2 } ->
        (rd, rs1, split_op2 op2, 0, Save, Cost_model.save_cycles cm)
    | Isa.Insn.Restore { rd; rs1; op2 } ->
        (rd, rs1, split_op2 op2, 0, Restore, Cost_model.restore_cycles cm)
    | Isa.Insn.Nop -> (0, 0, (no_reg, 0), 0, Nop, 1)
    | Isa.Insn.Halt -> (0, 0, (no_reg, 0), 0, Halt, Cost_model.halt_cycles cm)
  in
  (* Load-delay interlock against an immediately dependent user: loads
     always fall through to [idx + 1], so the check is fully static. *)
  let interlock =
    match insn with
    | Isa.Insn.Load { rd; _ }
      when cm.Cost_model.interlock > 0 && rd <> 0
           && idx + 1 < Array.length code
           && List.mem rd (Isa.Insn.reads code.(idx + 1)) ->
        cm.Cost_model.interlock
    | _ -> 0
  in
  {
    op;
    rd;
    rs1;
    rs2;
    imm;
    target;
    base_cycles;
    fetch_addr = idx * 4;
    sets_icc = Isa.Insn.sets_icc insn;
    icc_wait = cm.Cost_model.icc_stall > 0 && Isa.Insn.uses_icc insn;
    interlock;
  }

let of_program cm (prog : Isa.Program.t) =
  let code = prog.Isa.Program.code in
  Obs.Metrics.Counter.incr m_programs;
  Obs.Metrics.Counter.incr ~by:(Array.length code) m_insns;
  Array.mapi (fun idx insn -> of_insn cm code idx insn) code
