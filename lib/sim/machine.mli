(** Application execution harness.

    The paper measures applications whose wall-clock runtimes reach
    minutes (billions of cycles).  Simulating every repetition is
    pointless: after the first execution the caches are warm and every
    further execution of these deterministic kernels costs the same.
    [run] therefore simulates one cold execution and one warm
    execution, checks they compute the same result, and reports
    [cold + (reps - 1) * warm] — a faithful model of a long run at a
    tiny fraction of the simulation cost. *)

type result = {
  profile : Profiler.t;   (** scaled to [reps] executions *)
  cold_cycles : int;
  warm_cycles : int;
  checksum : int;         (** %o0 at halt; equal across executions *)
}

val clock_hz : float
(** Nominal processor clock used to convert cycles to the paper's
    seconds scale (LEON2 on a VirtexE ran at 25 MHz). *)

val run :
  ?mem_size:int ->
  ?reps:int ->
  ?shift_stall:int ->
  Arch.Config.t ->
  Isa.Program.t ->
  result
(** [shift_stall] is forwarded to {!Cpu.create} (default 0: barrel
    shifter present, as on LEON2).
    @raise Cpu.Error on execution errors
    @raise Failure if cold and warm checksums disagree. *)

val seconds : result -> float
(** Scaled runtime in seconds at {!clock_hz}. *)

val run_once : ?mem_size:int -> Arch.Config.t -> Isa.Program.t -> Cpu.t
(** Single cold execution, returning the machine for inspection. *)

val trace_reads : ?mem_size:int -> Arch.Config.t -> Isa.Program.t -> int array
(** One cold execution, returning the byte addresses of all data reads
    in order — input for {!Stackdist} miss-rate-curve prediction. *)
