(** Application execution harness.

    The paper measures applications whose wall-clock runtimes reach
    minutes (billions of cycles).  Simulating every repetition is
    pointless: after the first execution the caches are warm and every
    further execution of these deterministic kernels costs the same.
    [run] therefore simulates one cold execution and one warm
    execution, checks they compute the same result, and reports
    [cold + (reps - 1) * warm] — a faithful model of a long run at a
    tiny fraction of the simulation cost. *)

type result = {
  profile : Profiler.t;   (** scaled to [reps] executions *)
  cold_cycles : int;
  warm_cycles : int;
  checksum : int;         (** %o0 at halt; equal across executions *)
}

val clock_hz : float
(** Nominal processor clock used to convert cycles to the paper's
    seconds scale (LEON2 on a VirtexE ran at 25 MHz). *)

val run :
  ?mem_size:int ->
  ?reps:int ->
  ?shift_stall:int ->
  Arch.Config.t ->
  Isa.Program.t ->
  result
(** [shift_stall] is forwarded to {!Cpu.create} (default 0: barrel
    shifter present, as on LEON2).
    @raise Cpu.Error on execution errors
    @raise Failure if cold and warm checksums disagree. *)

val seconds : result -> float
(** Scaled runtime in seconds at {!clock_hz}. *)

(** {2 Phased execution}

    Runtime reconfiguration: the same program runs while the
    microarchitecture is switched at pre-computed retired-instruction
    boundaries, paying a per-switch cycle cost.  Epoch structure
    mirrors {!run} — one cold execution plus one warm execution scaled
    by [reps - 1]; each warm repetition additionally pays
    [wrap_cycles] to reconfigure from the last phase's configuration
    back to the first at the repetition boundary. *)

type switch = {
  at_insn : int;  (** retired-instruction boundary (per execution) *)
  config : Arch.Config.t;  (** configuration installed at the boundary *)
  shift_stall : int;  (** forwarded to {!Cpu.reconfigure} *)
  cycles : int;  (** reconfiguration cost charged at this switch *)
}

type phased = {
  result : result;
  phase_profiles : Profiler.t list;
      (** one per phase, scaled to [reps] executions; sums to
          [result.profile] component-wise *)
  switch_cycles : int;
      (** total reconfiguration cycles included in [result.profile] *)
}

val run_phased :
  ?mem_size:int ->
  ?reps:int ->
  ?shift_stall:int ->
  ?keep_caches:bool ->
  ?wrap_cycles:int ->
  switches:switch list ->
  Arch.Config.t ->
  Isa.Program.t ->
  phased
(** [run_phased ~switches first prog] starts each execution on [first]
    (with [shift_stall], default 0) and applies each switch in order.
    A switch to the already-installed configuration is skipped, so a
    schedule with one distinct configuration is bit-identical to
    {!run}.  [keep_caches] is the target's reconfiguration policy: when
    set, a cache whose geometry a switch leaves unchanged keeps its
    contents (see {!Cpu.reconfigure}).
    @raise Invalid_argument if boundaries are not strictly increasing
    or a switch changes the register-window count.
    @raise Failure if cold and warm checksums disagree. *)

val run_segmented :
  ?mem_size:int ->
  ?reps:int ->
  ?shift_stall:int ->
  boundaries:int list ->
  Arch.Config.t ->
  Isa.Program.t ->
  phased
(** Like {!run} on a single configuration, but additionally snapshots
    the profile at each retired-instruction boundary: [result] is
    bit-identical to {!run} and [phase_profiles] carves it into
    per-phase deltas.  Used for per-phase measurement. *)

val run_once : ?mem_size:int -> Arch.Config.t -> Isa.Program.t -> Cpu.t
(** Single cold execution, returning the machine for inspection. *)

val trace_reads : ?mem_size:int -> Arch.Config.t -> Isa.Program.t -> int array
(** One cold execution, returning the byte addresses of all data reads
    in order — input for {!Stackdist} miss-rate-curve prediction. *)
