(* Program-phase detection over windowed profiler deltas.

   The detector runs one cold execution of the application on a fixed
   reference configuration and snapshots the profiler every [window]
   retired instructions.  Each window yields a small feature vector
   (instruction mix plus cache behavior); a phase boundary opens where
   a full window's features diverge from the running aggregate of the
   current phase by more than [threshold] (L1 distance).  Everything
   is integer-counter arithmetic over a deterministic simulation, so
   detection is deterministic and independent of worker counts.

   Phases are architectural program behavior: the instruction stream
   is configuration-independent, so boundaries computed on the
   reference configuration are valid retired-instruction offsets for
   any configuration of the same ISA. *)

type options = {
  window : int;  (* retired instructions per observation window *)
  threshold : float;  (* L1 feature distance opening a new phase *)
  min_windows : int;  (* windows a phase must span before it can close *)
  max_phases : int;
}

let default_options =
  { window = 4096; threshold = 0.35; min_windows = 4; max_phases = 8 }

type phase = {
  start_insn : int;
  end_insn : int;
  profile : Profiler.t;  (* cold-execution delta over this span *)
}

type t = { options : options; total_insns : int; phases : phase list }

(* Feature vector of a profile delta: fractions in [0, 1], so the L1
   distance is scale-free and windows of different sizes compare. *)
let features (p : Profiler.t) =
  let insns = float_of_int (max 1 p.Profiler.instructions) in
  let frac n = float_of_int n /. insns in
  [|
    frac p.Profiler.dcache_reads;
    frac p.Profiler.dcache_writes;
    frac p.Profiler.branches;
    frac (p.Profiler.mults + p.Profiler.divs);
    frac p.Profiler.icache_misses;
    (let reads = max 1 p.Profiler.dcache_reads in
     float_of_int p.Profiler.dcache_read_misses /. float_of_int reads);
  |]

let distance a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := !d +. abs_float (x -. b.(i))) a;
  !d

let detect ?(options = default_options) ?shift_stall ?(mem_size = 1 lsl 20)
    config prog =
  if options.window < 1 then invalid_arg "Phase.detect: window must be >= 1";
  if options.min_windows < 1 then
    invalid_arg "Phase.detect: min_windows must be >= 1";
  if options.max_phases < 1 then
    invalid_arg "Phase.detect: max_phases must be >= 1";
  let cpu = Cpu.create ?shift_stall config prog ~mem_size in
  let prof = Cpu.profile cpu in
  let closed = ref [] in
  let nclosed = ref 0 in
  (* open-phase state: start offset, profiler snapshot at phase start,
     number of full windows accumulated so far *)
  let phase_start = ref 0 in
  let phase_snap = ref (Profiler.create ()) in
  let phase_windows = ref 0 in
  (* profiler snapshot at the start of the current window *)
  let window_snap = ref (Profiler.create ()) in
  let running = ref true in
  while !running do
    let wstart = prof.Profiler.instructions in
    Cpu.run_until cpu ~insns:(wstart + options.window);
    let retired = prof.Profiler.instructions - wstart in
    if retired = 0 then running := false
    else begin
      let now = Profiler.copy prof in
      (* a partial (final) window never opens a phase: its features
         are computed over too few instructions to be comparable *)
      let split =
        retired = options.window
        && !phase_windows >= options.min_windows
        && !nclosed + 2 <= options.max_phases
        &&
        let w = Profiler.sub now !window_snap in
        let agg = Profiler.sub !window_snap !phase_snap in
        distance (features w) (features agg) > options.threshold
      in
      if split then begin
        closed :=
          {
            start_insn = !phase_start;
            end_insn = wstart;
            profile = Profiler.sub !window_snap !phase_snap;
          }
          :: !closed;
        incr nclosed;
        phase_start := wstart;
        phase_snap := !window_snap;
        phase_windows := 1
      end
      else incr phase_windows;
      window_snap := now;
      if Cpu.halted cpu then running := false
    end
  done;
  let total = prof.Profiler.instructions in
  let final =
    {
      start_insn = !phase_start;
      end_insn = total;
      profile = Profiler.sub (Profiler.copy prof) !phase_snap;
    }
  in
  { options; total_insns = total; phases = List.rev (final :: !closed) }

let count t = List.length t.phases

(* Interior boundaries only: the retired-instruction offsets at which a
   phased execution must switch (excludes 0 and the total). *)
let boundaries t = List.map (fun p -> p.start_insn) (List.tl t.phases)

let digest t =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "w=%d;t=%.6f;m=%d;p=%d;n=%d;" t.options.window
       t.options.threshold t.options.min_windows t.options.max_phases
       t.total_insns);
  List.iter (fun p -> Buffer.add_string b (Printf.sprintf "%d," p.start_insn))
    t.phases;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Coarse behavioral class of a phase, for reporting. *)
let dominant (p : Profiler.t) =
  let insns = float_of_int (max 1 p.Profiler.instructions) in
  let frac n = float_of_int n /. insns in
  let miss_rate =
    float_of_int p.Profiler.dcache_read_misses
    /. float_of_int (max 1 p.Profiler.dcache_reads)
  in
  (* Thresholds are calibrated for the register-allocating minic
     codegen, where even tight array loops retire only a few memory
     accesses per ten instructions. *)
  if miss_rate > 0.25 && frac p.Profiler.dcache_reads > 0.03 then "memory"
  else if frac (p.Profiler.mults + p.Profiler.divs) > 0.02 then "arith"
  else if frac (p.Profiler.dcache_reads + p.Profiler.dcache_writes) > 0.12
  then "data"
  else if frac p.Profiler.branches > 0.12 then "control"
  else "compute"

let cpi (p : Profiler.t) =
  float_of_int p.Profiler.cycles /. float_of_int (max 1 p.Profiler.instructions)

let pp ppf t =
  Fmt.pf ppf "@[<v>%d phase%s over %d instructions@," (count t)
    (if count t = 1 then "" else "s")
    t.total_insns;
  List.iteri
    (fun i p ->
      Fmt.pf ppf "  phase %d: insns [%d, %d)  %-7s  CPI %.3f@," (i + 1)
        p.start_insn p.end_insn (dominant p.profile) (cpi p.profile))
    t.phases;
  Fmt.pf ppf "@]"
