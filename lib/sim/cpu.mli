(** In-order LEON2-style processor core.

    Executes {!Isa} programs with cycle accounting driven by the
    microarchitecture configuration: instruction/data cache hits and
    line fills, load-delay interlocks, ICC-hold stalls, jump and
    branch redirect penalties, multiplier/divider latencies and
    register-window overflow/underflow traps (which spill/fill through
    the data cache, as on real SPARC systems).  Dcache fast read/write
    are modeled as area-only options: they shorten combinational paths
    (a clock-frequency effect) and leave CPI unchanged, which is why
    the paper's optimizer never selects them.

    Execution is decode-once, execute-many: {!create} pre-decodes the
    program ({!Decode}) and compiles every static instruction into a
    direct-threaded execute handler, with each deterministic stall
    pre-priced from the shared {!Cost_model} table — the same table
    [Dse.Bounds] prices the static cycle bounds from.

    Registers hold 32-bit values represented as OCaml ints in
    [0, 0xFFFFFFFF]. *)

type t

exception Error of string
(** Raised on malformed execution: bad program counter, division by
    zero, memory faults, or exceeding the step budget. *)

val create : ?shift_stall:int -> Arch.Config.t -> Isa.Program.t -> mem_size:int -> t
(** Builds a machine, loads the program's data image and points the
    stack pointer at the top of memory.  [shift_stall] (default 0)
    charges that many extra cycles on every shift instruction — cores
    without a barrel shifter (e.g. the MicroBlaze-like target) iterate
    shifts instead of resolving them in one cycle.
    @raise Invalid_argument if the configuration is invalid. *)

val reinit : t -> unit
(** Reset architectural state (registers, pc, icc, window state) and
    reload the data image, but keep cache contents warm.  Used to model
    repeated executions of the same application. *)

val reconfigure :
  ?shift_stall:int -> ?keep_caches:bool -> t -> Arch.Config.t -> unit
(** Swap the microarchitecture under a live execution: rebuild the cost
    model and re-compile the handlers for [config], leaving all
    architectural state (registers, memory, pc, window state, condition
    codes) untouched.  A cache whose geometry is unchanged keeps its
    contents when [keep_caches] is set (default false) — modelling
    partial reconfiguration that leaves that region's block RAM intact;
    any other cache restarts cold with its standard deterministic seed.
    @raise Invalid_argument if [config] is invalid or changes the
    register-window count, which holds live architectural state. *)

val step : t -> bool
(** Execute one instruction; [false] once halted. *)

val run : ?max_insns:int -> t -> unit
(** Run to [Halt].  @raise Error if the budget (default 2e8) runs out. *)

val run_until : t -> insns:int -> unit
(** Run until the profiler's total retired-instruction count reaches
    [insns] (each step retires exactly one instruction), or the program
    halts, whichever comes first. *)

val profile : t -> Profiler.t
val reset_profile : t -> unit
val result : t -> int
(** Value of %o0 in the current window — by convention the program's
    checksum at [Halt]. *)

val on_data_read : t -> (int -> unit) -> unit
(** Install an observer called with the byte address of every data read
    (loads and window-fill reads) — used for address-trace capture,
    e.g. by {!Stackdist}. *)

val read_reg : t -> Isa.Reg.t -> int
val write_reg : t -> Isa.Reg.t -> int -> unit
val pc : t -> int
val halted : t -> bool
val mem : t -> Memory.t
val program : t -> Isa.Program.t
val icache : t -> Cache.t
val dcache : t -> Cache.t
