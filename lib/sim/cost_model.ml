(* The single per-target cost table: every per-class cycle price the
   simulator charges dynamically and the static bounds charge
   symbolically is derived here, once, from an {!Arch.Config.t}.

   {!Cpu} consumes the table when pre-decoding a program (deterministic
   stalls are folded into each instruction's base cycles) and at run
   time (line fills, interlocks, window traps); {!Dse.Bounds} consumes
   the same table to price {!Minic.Bounds} instruction-mix intervals.
   Neither re-derives a stall from the configuration on its own — that
   duplication is exactly the drift hazard this module removes. *)

type t = {
  iline_fill : int;
  dline_fill : int;
  load_extra : int;
  store_extra : int;
  interlock : int;
  shift_stall : int;
  mul_stall : int;
  div_stall : int;
  icc_stall : int;
  decode_extra : int;
  jump_extra : int;
  nwin : int;
}

(* Window-trap plumbing: a fixed 6-cycle trap entry/exit plus a
   16-register burst (stores for a spill, loads for a fill) through the
   data cache, as on real SPARC overflow/underflow handlers. *)
let trap_overhead = 6
let window_regs = 16

let of_arch_config ?(shift_stall = 0) (c : Arch.Config.t) =
  let iu = c.Arch.Config.iu in
  {
    iline_fill =
      Memory.line_fill_cycles
        ~line_words:c.Arch.Config.icache.Arch.Config.line_words;
    dline_fill =
      Memory.line_fill_cycles
        ~line_words:c.Arch.Config.dcache.Arch.Config.line_words;
    (* Fast read/write shorten LEON's combinational cache paths; at our
       fixed clock they change area, not CPI. *)
    load_extra = 1;
    store_extra = 1;
    interlock = iu.Arch.Config.load_delay - 1;
    shift_stall;
    mul_stall = Funit.mul_latency iu.Arch.Config.multiplier - 1;
    div_stall = Funit.div_latency iu.Arch.Config.divider - 1;
    icc_stall = (if iu.Arch.Config.icc_hold then 1 else 0);
    decode_extra = (if iu.Arch.Config.fast_decode then 0 else 1);
    jump_extra = (if iu.Arch.Config.fast_jump then 0 else 1);
    nwin = iu.Arch.Config.reg_windows;
  }

(* Per-class prices.  "Hit" prices assume every access hits the caches
   and no optional stall fires; the [_worst] variants add a full line
   fill (and, for loads, the maximal load-delay interlock). *)

let alu_cycles _ = 1
let shift_cycles t = 1 + t.shift_stall
let mul_cycles t = 1 + t.mul_stall
let div_cycles t = 1 + t.div_stall
let load_hit_cycles t = 1 + t.load_extra
let load_worst_cycles t = load_hit_cycles t + t.dline_fill + t.interlock

(* Write-through: a store's cost does not depend on hit/miss at all. *)
let store_cycles t = 1 + t.store_extra
let branch_cycles t = 1 + t.decode_extra
let taken_extra _ = 1
let ba_cycles t = branch_cycles t + taken_extra t
let cbr_cmp_cycles t = branch_cycles t + t.icc_stall
let jump_cycles t = 2 + t.decode_extra + t.jump_extra
let save_cycles _ = 1
let restore_cycles _ = 1
let halt_cycles _ = 1

(* Worst-case window traps: every spilled register a write-through
   store, every filled register a potential line miss. *)
let spill_worst t = trap_overhead + (window_regs * store_cycles t)
let fill_worst t = trap_overhead + (window_regs * (load_hit_cycles t + t.dline_fill))
