type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable icache_misses : int;
  mutable dcache_reads : int;
  mutable dcache_read_misses : int;
  mutable dcache_writes : int;
  mutable dcache_write_misses : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable mults : int;
  mutable divs : int;
  mutable window_overflows : int;
  mutable window_underflows : int;
  mutable load_interlocks : int;
  mutable icc_hold_stalls : int;
}

let create () =
  {
    cycles = 0;
    instructions = 0;
    icache_misses = 0;
    dcache_reads = 0;
    dcache_read_misses = 0;
    dcache_writes = 0;
    dcache_write_misses = 0;
    branches = 0;
    taken_branches = 0;
    mults = 0;
    divs = 0;
    window_overflows = 0;
    window_underflows = 0;
    load_interlocks = 0;
    icc_hold_stalls = 0;
  }

let reset t =
  t.cycles <- 0;
  t.instructions <- 0;
  t.icache_misses <- 0;
  t.dcache_reads <- 0;
  t.dcache_read_misses <- 0;
  t.dcache_writes <- 0;
  t.dcache_write_misses <- 0;
  t.branches <- 0;
  t.taken_branches <- 0;
  t.mults <- 0;
  t.divs <- 0;
  t.window_overflows <- 0;
  t.window_underflows <- 0;
  t.load_interlocks <- 0;
  t.icc_hold_stalls <- 0

let copy t = { t with cycles = t.cycles }

let map2 f a b =
  {
    cycles = f a.cycles b.cycles;
    instructions = f a.instructions b.instructions;
    icache_misses = f a.icache_misses b.icache_misses;
    dcache_reads = f a.dcache_reads b.dcache_reads;
    dcache_read_misses = f a.dcache_read_misses b.dcache_read_misses;
    dcache_writes = f a.dcache_writes b.dcache_writes;
    dcache_write_misses = f a.dcache_write_misses b.dcache_write_misses;
    branches = f a.branches b.branches;
    taken_branches = f a.taken_branches b.taken_branches;
    mults = f a.mults b.mults;
    divs = f a.divs b.divs;
    window_overflows = f a.window_overflows b.window_overflows;
    window_underflows = f a.window_underflows b.window_underflows;
    load_interlocks = f a.load_interlocks b.load_interlocks;
    icc_hold_stalls = f a.icc_hold_stalls b.icc_hold_stalls;
  }

let add = map2 ( + )
let sub = map2 ( - )

let scale_add cold ~warm ~reps =
  if reps < 1 then invalid_arg "Profiler.scale_add: reps must be >= 1";
  map2 (fun c w -> c + ((reps - 1) * w)) cold warm

let to_assoc t =
  [
    ("cycles", t.cycles);
    ("instructions", t.instructions);
    ("icache_misses", t.icache_misses);
    ("dcache_reads", t.dcache_reads);
    ("dcache_read_misses", t.dcache_read_misses);
    ("dcache_writes", t.dcache_writes);
    ("dcache_write_misses", t.dcache_write_misses);
    ("branches", t.branches);
    ("taken_branches", t.taken_branches);
    ("mults", t.mults);
    ("divs", t.divs);
    ("window_overflows", t.window_overflows);
    ("window_underflows", t.window_underflows);
    ("load_interlocks", t.load_interlocks);
    ("icc_hold_stalls", t.icc_hold_stalls);
  ]

let to_json t =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (to_assoc t))

(* Structural sanity of a profile.  Hits are derived (hits = accesses -
   misses), so "hits + misses = accesses" holds exactly when misses do
   not exceed accesses; stalls and retirements cannot outnumber elapsed
   cycles. *)
let invariants t =
  [
    ("counters non-negative", List.for_all (fun (_, v) -> v >= 0) (to_assoc t));
    ("dcache read misses <= reads", t.dcache_read_misses <= t.dcache_reads);
    ("dcache write misses <= writes", t.dcache_write_misses <= t.dcache_writes);
    ("icache misses <= instructions", t.icache_misses <= t.instructions);
    ("instructions <= cycles", t.instructions <= t.cycles);
    ("taken branches <= branches", t.taken_branches <= t.branches);
    ( "stall classes fit in cycles",
      t.load_interlocks + t.icc_hold_stalls <= t.cycles );
  ]

let check t =
  match List.filter (fun (_, ok) -> not ok) (invariants t) with
  | [] -> Ok ()
  | broken -> Error (String.concat "; " (List.map fst broken))

let pp ppf t =
  Fmt.pf ppf
    "@[<v>cycles              %d@,\
     instructions        %d (CPI %.3f)@,\
     icache misses       %d@,\
     dcache reads/misses %d/%d@,\
     dcache writes/misses %d/%d@,\
     branches/taken      %d/%d@,\
     mults/divs          %d/%d@,\
     window ovf/unf      %d/%d@,\
     load interlocks     %d@,\
     icc hold stalls     %d@]"
    t.cycles t.instructions
    (if t.instructions = 0 then 0.0
     else float_of_int t.cycles /. float_of_int t.instructions)
    t.icache_misses t.dcache_reads t.dcache_read_misses t.dcache_writes
    t.dcache_write_misses t.branches t.taken_branches t.mults t.divs
    t.window_overflows t.window_underflows t.load_interlocks t.icc_hold_stalls
