(** Program-phase detection over windowed profiler deltas.

    One cold execution on a reference configuration is carved into
    fixed-size windows of retired instructions; each window yields a
    feature vector (instruction mix + cache behavior) and a phase
    boundary opens where a window diverges from the running aggregate
    of the current phase.  Detection is deterministic: it is integer
    counter arithmetic over a deterministic simulation, independent of
    worker counts.

    Phase boundaries are expressed in retired instructions, which are
    configuration-independent (the architectural instruction stream
    does not depend on caches or latencies) — so boundaries detected
    on one configuration are valid switch points for any other. *)

type options = {
  window : int;  (** retired instructions per observation window *)
  threshold : float;  (** L1 feature distance opening a new phase *)
  min_windows : int;  (** windows a phase must span before it can close *)
  max_phases : int;  (** hard cap on detected phases *)
}

val default_options : options
(** [{ window = 4096; threshold = 0.35; min_windows = 4; max_phases = 8 }] *)

type phase = {
  start_insn : int;  (** first retired instruction of the phase *)
  end_insn : int;  (** one past the last retired instruction *)
  profile : Profiler.t;  (** cold-execution delta over this span *)
}

type t = { options : options; total_insns : int; phases : phase list }
(** Phases partition [0, total_insns) in order; there is always at
    least one phase. *)

val detect :
  ?options:options ->
  ?shift_stall:int ->
  ?mem_size:int ->
  Arch.Config.t ->
  Isa.Program.t ->
  t
(** Run one cold execution and segment it.
    @raise Invalid_argument on nonsensical options.
    @raise Cpu.Error on execution errors. *)

val count : t -> int
val boundaries : t -> int list
(** Interior boundaries only (excludes 0 and [total_insns]): exactly
    the [at_insn] switch points for {!Machine.run_phased}. *)

val digest : t -> string
(** Hex digest of the segmentation (options + boundaries + length) —
    used to extend memo keys for per-phase measurements. *)

val features : Profiler.t -> float array
(** The detector's feature vector for a profile delta (fractions in
    [0, 1]). *)

val distance : float array -> float array -> float
(** L1 distance between two feature vectors. *)

val dominant : Profiler.t -> string
(** Coarse behavioral class of a phase profile, for reporting: one of
    ["memory"], ["arith"], ["data"], ["control"], ["compute"]. *)

val pp : t Fmt.t
