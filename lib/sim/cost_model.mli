(** The unified per-class cost table.

    One configuration's derived cycle prices, computed once from an
    {!Arch.Config.t} and consumed by {e both} sides of the timing
    contract:

    - {!Cpu} prices pre-decoded instructions with it (deterministic
      stalls folded into per-instruction base cycles, dynamic costs —
      line fills, interlocks, window traps — charged from the same
      fields at run time);
    - [Dse.Bounds] prices {!Minic.Bounds} instruction-mix intervals
      with the per-class functions below.

    Stall pricing must live here and only here: a class priced in two
    places can silently drift, which is precisely the bug class the
    bounds fuzz oracles exist to catch. *)

type t = {
  iline_fill : int;  (** icache line-fill penalty, cycles *)
  dline_fill : int;  (** dcache line-fill penalty, cycles *)
  load_extra : int;  (** dcache hit latency beyond 1 cycle *)
  store_extra : int;  (** write-through cost beyond 1 cycle *)
  interlock : int;  (** load-delay interlock cycles ([load_delay - 1]) *)
  shift_stall : int;  (** extra cycles per shift (no barrel shifter) *)
  mul_stall : int;
  div_stall : int;
  icc_stall : int;  (** 1 when the ICC-hold interlock is configured *)
  decode_extra : int;  (** per control transfer when fast decode is off *)
  jump_extra : int;  (** per call/return when fast jump is off *)
  nwin : int;  (** register windows *)
}

val of_arch_config : ?shift_stall:int -> Arch.Config.t -> t
(** [shift_stall] defaults to 0 (a barrel shifter). *)

val trap_overhead : int
(** Fixed window-trap entry/exit cost, cycles. *)

val window_regs : int
(** Registers moved by one spill or fill (16 locals+ins). *)

(** {2 Per-class prices}

    Best-case ("hit") prices assume cache hits and no optional stall;
    [_worst] variants add a full line fill and, for loads, the maximal
    interlock.  Deterministic stalls (shift/mul/div latencies, ICC
    hold on a compare-and-branch, slow decode/jump, the +1 of a taken
    branch) are exact. *)

val alu_cycles : t -> int
val shift_cycles : t -> int
val mul_cycles : t -> int
val div_cycles : t -> int
val load_hit_cycles : t -> int
val load_worst_cycles : t -> int
val store_cycles : t -> int
val branch_cycles : t -> int
(** An untaken conditional branch (fast/slow decode included). *)

val taken_extra : t -> int
(** Redirect cost added on top of [branch_cycles] when taken. *)

val ba_cycles : t -> int
val cbr_cmp_cycles : t -> int
(** A conditional branch immediately consuming fresh condition codes:
    [branch_cycles] plus the ICC-hold stall. *)

val jump_cycles : t -> int
(** CALL/JMPL: redirect plus decode/jump stalls. *)

val save_cycles : t -> int
val restore_cycles : t -> int
val halt_cycles : t -> int

val spill_worst : t -> int
(** Worst-case window-overflow trap (every store through the cache). *)

val fill_worst : t -> int
(** Worst-case window-underflow trap (every load a line miss). *)
