type status = Open | Known_issue of string

type entry = {
  oracle : string;
  seed : int;
  count : int;
  status : status;
  counterexample : string;
}

let filename e = Printf.sprintf "%s-s%d.repro" e.oracle e.seed

let to_string e =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "oracle: %s\n" e.oracle);
  Buffer.add_string b (Printf.sprintf "seed: %d\n" e.seed);
  Buffer.add_string b (Printf.sprintf "count: %d\n" e.count);
  (match e.status with
  | Open -> Buffer.add_string b "status: open\n"
  | Known_issue why ->
      Buffer.add_string b (Printf.sprintf "status: known-issue %s\n" why));
  Buffer.add_string b "---\n";
  Buffer.add_string b e.counterexample;
  if e.counterexample <> "" && e.counterexample.[String.length e.counterexample - 1] <> '\n'
  then Buffer.add_char b '\n';
  Buffer.contents b

let write ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string e));
  path

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec header acc = function
    | "---" :: rest -> Ok (List.rev acc, String.concat "\n" rest)
    | line :: rest -> header (line :: acc) rest
    | [] -> Error "missing `---' separator"
  in
  match header [] lines with
  | Error _ as e -> e
  | Ok (hdr, counterexample) ->
      let field key =
        let prefix = key ^ ": " in
        List.find_map
          (fun line ->
            if String.length line >= String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              Some
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            else if line = key ^ ":" then Some ""
            else None)
          hdr
      in
      let ( let* ) r f = Result.bind r f in
      let require key =
        match field key with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing `%s:' header" key)
      in
      let int_of key v =
        match int_of_string_opt (String.trim v) with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "header `%s:' is not an integer: %S" key v)
      in
      let* oracle = require "oracle" in
      let* seed = Result.bind (require "seed") (int_of "seed") in
      let* count = Result.bind (require "count") (int_of "count") in
      let* status =
        match require "status" with
        | Error _ as e -> e
        | Ok "open" -> Ok Open
        | Ok s ->
            let prefix = "known-issue" in
            if String.length s >= String.length prefix
               && String.sub s 0 (String.length prefix) = prefix
            then
              Ok (Known_issue (String.trim
                    (String.sub s (String.length prefix)
                       (String.length s - String.length prefix))))
            else Error (Printf.sprintf "unknown status %S" s)
      in
      Ok { oracle = String.trim oracle; seed; count; status; counterexample }

let read path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string text
