module G = QCheck2.Gen
module Ast = Minic.Ast

let ( let* ) = G.( let* )

(* ------------------------------------------------------------------ *)
(* minic programs                                                      *)
(* ------------------------------------------------------------------ *)

type profile = Straightline | Branching | Looping | Callish | Mixed

let all_profiles = [ Straightline; Branching; Looping; Callish; Mixed ]

let profile_name = function
  | Straightline -> "straightline"
  | Branching -> "branching"
  | Looping -> "looping"
  | Callish -> "callish"
  | Mixed -> "mixed"

(* The generated vocabulary is fixed: three globals and a handful of
   locals.  Every program is safe by construction on ALL paths — array
   indices are masked to the array length, division and modulo only
   ever see a non-zero literal divisor, loops are counter loops whose
   counter is touched by nothing but the loop scaffolding, and every
   local is initialized before the random body runs.  A clean
   interpretation is therefore guaranteed, which is what lets the
   oracles treat any trap, divergence, or lint error as a genuine
   bug rather than a property of the input. *)

let arrays = [ ("arr", 15); ("buf", 7) ]

type env = {
  readable : string list;  (* variables expressions may mention *)
  assignable : string list;  (* variables statements may Set *)
  counters : string list;  (* loop counters not yet claimed *)
  funcs : (string * int) list;  (* callable helpers: name, arity *)
}

let literal =
  G.frequency
    [
      (5, G.int_range (-64) 64);
      (2, G.int_range (-10_000) 10_000);
      (1, G.oneofl [ 0x7FFFFFFF; -0x80000000; 0xFFFF; 255; 1 lsl 16 ]);
    ]

let var env = G.map (fun x -> Ast.Var x) (G.oneofl env.readable)

(* arr[(v|n) & mask] — in bounds whatever the operand's value is. *)
let masked_index env mask =
  let* operand =
    G.oneof [ var env; G.map (fun n -> Ast.Int n) (G.int_range 0 (4 * mask)) ]
  in
  G.return (Ast.Bin (Ast.And, operand, Ast.Int mask))

let array_read env =
  let* name, mask = G.oneofl arrays in
  let* index = masked_index env mask in
  G.return (Ast.Idx (name, index))

let leaf env =
  G.frequency
    [
      (3, G.map (fun n -> Ast.Int n) literal);
      (4, var env);
      (2, array_read env);
    ]

(* Every operator except Div and Mod is total (shift amounts are
   masked to 5 bits by the semantics, so huge shifts are fine). *)
let total_binop =
  G.oneofl
    [
      Ast.Add; Ast.Sub; Ast.Mul; Ast.And; Ast.Or; Ast.Xor; Ast.Shl; Ast.Shr;
      Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne;
    ]

let nonzero_literal =
  G.map (fun n -> if n >= 0 then n + 1 else n) (G.int_range (-500) 499)

let rec expr env depth =
  if depth <= 0 then leaf env
  else
    G.frequency
      [
        (2, leaf env);
        ( 5,
          let* op = total_binop in
          let* a = expr env (depth - 1) in
          let* b = expr env (depth - 1) in
          G.return (Ast.Bin (op, a, b)) );
        ( 1,
          (* Division and modulo only by a non-zero literal. *)
          let* op = G.oneofl [ Ast.Div; Ast.Mod ] in
          let* a = expr env (depth - 1) in
          let* d = nonzero_literal in
          G.return (Ast.Bin (op, a, Ast.Int d)) );
        ( 2,
          let* op = G.oneofl [ Ast.Neg; Ast.Not; Ast.Bitnot ] in
          let* a = expr env (depth - 1) in
          G.return (Ast.Un (op, a)) );
      ]

type weights = {
  w_assign : int;
  w_store : int;
  w_if : int;
  w_while : int;
  w_call : int;
}

let weights_of_profile = function
  | Straightline -> { w_assign = 6; w_store = 3; w_if = 0; w_while = 0; w_call = 0 }
  | Branching -> { w_assign = 3; w_store = 2; w_if = 4; w_while = 0; w_call = 1 }
  | Looping -> { w_assign = 3; w_store = 2; w_if = 1; w_while = 4; w_call = 0 }
  | Callish -> { w_assign = 2; w_store = 1; w_if = 1; w_while = 1; w_call = 4 }
  | Mixed -> { w_assign = 3; w_store = 2; w_if = 2; w_while = 2; w_call = 2 }

let assign_stmt env =
  let* x = G.oneofl env.assignable in
  let* e = expr env 3 in
  G.return [ Ast.Set (x, e) ]

let store_stmt env =
  let* name, mask = G.oneofl arrays in
  let* index = masked_index env mask in
  let* e = expr env 3 in
  G.return [ Ast.Set_idx (name, index, e) ]

let call_stmt env =
  match env.funcs with
  | [] -> assign_stmt env
  | funcs ->
      let* f, arity = G.oneofl funcs in
      let* args = G.list_size (G.return arity) (expr env 2) in
      let call = Ast.Call (f, args) in
      G.oneof
        [
          G.return [ Ast.Do call ];
          G.map (fun x -> [ Ast.Set (x, call) ]) (G.oneofl env.assignable);
        ]

(* A statement "slot" expands to one or two statements (a while loop
   carries its counter initialization with it). *)
let rec slot env ~depth w =
  G.frequency
    (List.filter
       (fun (n, _) -> n > 0)
       [
         (w.w_assign, assign_stmt env);
         (w.w_store, store_stmt env);
         ((if depth > 0 then w.w_if else 0), if_stmt env ~depth w);
         ( (if depth > 0 && env.counters <> [] then w.w_while else 0),
           while_stmt env ~depth w );
         ((if env.funcs <> [] then w.w_call else 0), call_stmt env);
       ])

and block env ~depth ~slots w =
  let* groups = G.list_size (G.return slots) (slot env ~depth w) in
  G.return (List.concat groups)

and if_stmt env ~depth w =
  let* cond = expr env 2 in
  let* nthen = G.int_range 1 3 in
  let* then_ = block env ~depth:(depth - 1) ~slots:nthen w in
  let* else_ =
    G.oneof
      [
        G.return [];
        (let* n = G.int_range 1 2 in
         block env ~depth:(depth - 1) ~slots:n w);
      ]
  in
  G.return [ Ast.If (cond, then_, else_) ]

and while_stmt env ~depth w =
  match env.counters with
  | [] -> assign_stmt env
  | k :: rest ->
      (* k = 0; while (k < bound) { body; k = k + 1; } — the body may
         read k but never assigns it, so the loop always terminates. *)
      let env' = { env with readable = k :: env.readable; counters = rest } in
      let* bound = G.int_range 1 8 in
      let* slots = G.int_range 1 2 in
      let* body = block env' ~depth:(depth - 1) ~slots w in
      G.return
        [
          Ast.Set (k, Ast.Int 0);
          Ast.While
            ( Ast.Bin (Ast.Lt, Ast.Var k, Ast.Int bound),
              body @ [ Ast.Set (k, Ast.Bin (Ast.Add, Ast.Var k, Ast.Int 1)) ] );
        ]

(* Helpers are straight-line-plus-if functions over their parameters,
   the globals, and a couple of locals; they never loop, never call,
   and end in an explicit return. *)
let helper name =
  let* nparams = G.int_range 1 3 in
  let params = List.init nparams (Printf.sprintf "p%d") in
  let locals = [ "d0"; "d1" ] in
  let env =
    {
      readable = params @ locals @ [ "g" ];
      assignable = locals @ [ "g" ];
      counters = [];
      funcs = [];
    }
  in
  let pre = { env with readable = params @ [ "g" ] } in
  let* init0 = expr pre 2 in
  let* init1 = expr pre 2 in
  let prologue = [ Ast.Set ("d0", init0); Ast.Set ("d1", init1) ] in
  let w = weights_of_profile Branching in
  let* nslots = G.int_range 1 3 in
  let* body = block env ~depth:1 ~slots:nslots w in
  let* ret = expr env 3 in
  G.return
    { Ast.name; params; locals; body = prologue @ (body @ [ Ast.Ret ret ]) }

let main_locals = [ "a"; "b"; "c"; "s" ]

let main_of ~funcs ~w =
  let env =
    {
      readable = main_locals @ [ "g" ];
      assignable = main_locals @ [ "g" ];
      counters = [ "k0"; "k1" ];
      funcs;
    }
  in
  (* The prologue initializes every non-counter local (counters are
     initialized by their loop scaffolding and visible only inside the
     loop), so no path reads an uninitialized variable. *)
  let pre = { env with readable = [ "g" ]; assignable = [] } in
  let* prologue =
    G.flatten_l
      (List.map
         (fun x ->
           let* e = expr pre 2 in
           G.return (Ast.Set (x, e)))
         main_locals)
  in
  let* nslots = G.int_range 3 8 in
  let* body = block env ~depth:2 ~slots:nslots w in
  (* Fold every observable into the result so divergences anywhere in
     the state surface as a wrong return value.  The chain is
     left-leaning, which keeps the expression-stack depth constant. *)
  let sum =
    List.fold_left
      (fun acc e -> Ast.Bin (Ast.Add, acc, e))
      (Ast.Var "a")
      [
        Ast.Var "b";
        Ast.Var "c";
        Ast.Var "s";
        Ast.Var "g";
        Ast.Idx ("arr", Ast.Bin (Ast.And, Ast.Var "a", Ast.Int 15));
        Ast.Idx ("buf", Ast.Bin (Ast.And, Ast.Var "b", Ast.Int 7));
      ]
  in
  let epilogue = [ Ast.Ret sum ] in
  G.return
    {
      Ast.name = "main";
      params = [];
      locals = main_locals @ [ "k0"; "k1" ];
      body = prologue @ body @ epilogue;
    }

let program_of_profile profile =
  let* g0 = G.int_range (-1000) 1000 in
  let* arr_init =
    G.array_size (G.return 16) (G.int_range (-10_000) 10_000)
  in
  let* buf_init = G.array_size (G.return 8) (G.int_range 0 255) in
  let globals =
    [
      Ast.Scalar ("g", g0);
      Ast.Array_init ("arr", Ast.Word, arr_init);
      Ast.Array_init ("buf", Ast.Byte, buf_init);
    ]
  in
  let* nhelpers =
    match profile with
    | Callish -> G.int_range 1 2
    | Mixed | Branching -> G.int_range 0 1
    | Straightline | Looping -> G.return 0
  in
  let* helpers =
    G.flatten_l (List.init nhelpers (fun i -> helper (Printf.sprintf "f%d" i)))
  in
  let funcs =
    List.map (fun (f : Ast.func) -> (f.name, List.length f.params)) helpers
  in
  let w = weights_of_profile profile in
  let* main = main_of ~funcs ~w in
  G.return { Ast.globals; funcs = helpers @ [ main ] }

let program =
  let* profile =
    G.frequencyl
      [ (2, Straightline); (3, Branching); (3, Looping); (2, Callish); (4, Mixed) ]
  in
  program_of_profile profile

let print_program = Minic.Pretty.to_string

(* ------------------------------------------------------------------ *)
(* Architecture configurations                                         *)
(* ------------------------------------------------------------------ *)

let replacement ways =
  match ways with
  | 1 -> G.return Arch.Config.Random
  | 2 -> G.oneofl [ Arch.Config.Random; Arch.Config.Lrr; Arch.Config.Lru ]
  | _ -> G.oneofl [ Arch.Config.Random; Arch.Config.Lru ]

let cache =
  let* ways = G.oneofl Arch.Config.valid_ways in
  let* way_kb = G.oneofl Arch.Config.valid_way_kbs in
  let* line_words = G.oneofl Arch.Config.valid_line_words in
  let* replacement = replacement ways in
  G.return { Arch.Config.ways; way_kb; line_words; replacement }

let iu =
  let* fast_jump = G.bool in
  let* icc_hold = G.bool in
  let* fast_decode = G.bool in
  let* load_delay = G.oneofl [ 1; 2 ] in
  let* reg_windows = G.oneofl Arch.Config.valid_reg_windows in
  let* divider = G.oneofl [ Arch.Config.Div_radix2; Arch.Config.Div_none ] in
  let* multiplier =
    G.oneofl
      [
        Arch.Config.Mul_none; Arch.Config.Mul_iterative; Arch.Config.Mul_16x16;
        Arch.Config.Mul_16x16_pipe; Arch.Config.Mul_32x8; Arch.Config.Mul_32x16;
        Arch.Config.Mul_32x32;
      ]
  in
  G.return
    {
      Arch.Config.fast_jump; icc_hold; fast_decode; load_delay; reg_windows;
      divider; multiplier;
    }

let config =
  let* icache = cache in
  let* dcache = cache in
  let* dcache_fast_read = G.bool in
  let* dcache_fast_write = G.bool in
  let* iu = iu in
  let* infer_mult_div = G.bool in
  G.return
    {
      Arch.Config.icache; dcache; dcache_fast_read; dcache_fast_write; iu;
      infer_mult_div;
    }

let print_config = Arch.Codec.to_string

let mb_replacement ways =
  match ways with
  | 1 -> G.return Arch.Config.Random
  | _ -> G.oneofl [ Arch.Config.Random; Arch.Config.Lru ]

let mb_config =
  let* icache_kb = G.oneofl Arch.Mb_config.valid_way_kbs in
  let* icache_line = G.oneofl Arch.Mb_config.valid_line_words in
  let* ways = G.oneofl Arch.Mb_config.valid_dcache_ways in
  let* way_kb = G.oneofl Arch.Mb_config.valid_way_kbs in
  let* line_words = G.oneofl Arch.Mb_config.valid_line_words in
  let* replacement = mb_replacement ways in
  let* barrel_shifter = G.bool in
  let* multiplier =
    G.oneofl
      [ Arch.Mb_config.Mb_mul_none; Arch.Mb_config.Mb_mul32;
        Arch.Mb_config.Mb_mul64 ]
  in
  let* divider = G.bool in
  G.return
    {
      Arch.Mb_config.icache =
        { Arch.Mb_config.way_kb = icache_kb; line_words = icache_line };
      dcache = { Arch.Config.ways; way_kb; line_words; replacement };
      barrel_shifter;
      multiplier;
      divider;
    }

let print_mb_config = Arch.Mb_codec.to_string

(* ------------------------------------------------------------------ *)
(* Small SOS1 binary programs for the exact solver                     *)
(* ------------------------------------------------------------------ *)

(* Coefficients are halves of small integers: exactly representable,
   so solver-vs-brute-force objective comparison is a pure search
   question, not a floating-point one. *)
let half lo hi = G.map (fun n -> float_of_int n /. 2.0) (G.int_range lo hi)

let lin nvars =
  let* n = G.int_range 1 (min 3 nvars) in
  let* vars = G.list_size (G.return n) (G.int_range 0 (nvars - 1)) in
  let vars = List.sort_uniq compare vars in
  let* coeffs =
    G.flatten_l
      (List.map
         (fun v ->
           let* c = half (-6) 6 in
           G.return (v, c))
         vars)
  in
  let* const = half (-4) 4 in
  G.return { Optim.Binlp.coeffs; const }

let constr nvars =
  let* nterms = G.int_range 1 2 in
  let* terms =
    G.list_size (G.return nterms)
      (G.frequency
         [
           (3, G.map (fun l -> Optim.Binlp.Lin l) (lin nvars));
           ( 1,
             let* a = lin nvars in
             let* b = lin nvars in
             G.return (Optim.Binlp.Prod (a, b)) );
         ])
  in
  let* rel = G.oneofl [ Optim.Binlp.Le; Optim.Binlp.Ge ] in
  let* bound = half (-16) 24 in
  G.return { Optim.Binlp.terms; rel; bound }

let binlp_problem =
  let* nvars = G.int_range 1 6 in
  let* objective = G.array_size (G.return nvars) (half (-8) 8) in
  (* Up to two disjoint SOS1 groups over a prefix of the variables;
     the rest are free binaries. *)
  let* s1 = G.int_range 0 (min 3 nvars) in
  let* s2 = G.int_range 0 (min 3 (nvars - s1)) in
  let groups =
    List.filter
      (fun g -> g <> [])
      [ List.init s1 Fun.id; List.init s2 (fun i -> s1 + i) ]
  in
  let* ncons = G.int_range 0 3 in
  let* constraints = G.list_size (G.return ncons) (constr nvars) in
  G.return { Optim.Binlp.nvars; objective; groups; constraints }

let print_lin (l : Optim.Binlp.lin) =
  let parts =
    List.map (fun (v, c) -> Printf.sprintf "%g*x%d" c v) l.coeffs
  in
  String.concat " + " (parts @ [ Printf.sprintf "%g" l.const ])

let print_binlp (p : Optim.Binlp.problem) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "min %s\n"
       (String.concat " + "
          (List.mapi
             (fun i c -> Printf.sprintf "%g*x%d" c i)
             (Array.to_list p.objective))));
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "sos1 {%s}\n"
           (String.concat "," (List.map (Printf.sprintf "x%d") g))))
    p.groups;
  List.iter
    (fun (c : Optim.Binlp.constr) ->
      let term = function
        | Optim.Binlp.Lin l -> Printf.sprintf "(%s)" (print_lin l)
        | Optim.Binlp.Prod (x, y) ->
            Printf.sprintf "(%s)*(%s)" (print_lin x) (print_lin y)
      in
      Buffer.add_string b
        (Printf.sprintf "%s %s %g\n"
           (String.concat " + " (List.map term c.terms))
           (match c.rel with Le -> "<=" | Ge -> ">=")
           c.bound))
    p.constraints;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON documents                                                      *)
(* ------------------------------------------------------------------ *)

let json_float =
  G.map
    (fun f -> if Float.is_finite f then f else 0.0)
    (G.frequency
       [
         (3, G.float);
         (2, G.map (fun n -> float_of_int n /. 3.0) (G.int_range (-1000) 1000));
         (2, G.map float_of_int (G.int_range (-1_000_000) 1_000_000));
         ( 1,
           G.oneofl
             [
               0.1 +. 0.2; 1.0 /. 3.0; Float.pi; 1e-300; 5e-324;
               1.7976931348623157e308; 1.000000000001234;
             ] );
       ])

let json_string =
  G.frequency
    [
      (4, G.string_printable);
      (1, G.oneofl [ "\"quoted\""; "back\\slash"; "new\nline"; "tab\ttab"; "" ]);
    ]

let rec json_value depth =
  let leaf =
    G.frequency
      [
        (1, G.return Obs.Json.Null);
        (2, G.map (fun b -> Obs.Json.Bool b) G.bool);
        (3, G.map (fun n -> Obs.Json.Int n) (G.int_range (-1_000_000_000) 1_000_000_000));
        (3, G.map (fun f -> Obs.Json.Float f) json_float);
        (2, G.map (fun s -> Obs.Json.String s) json_string);
      ]
  in
  if depth <= 0 then leaf
  else
    G.frequency
      [
        (3, leaf);
        ( 1,
          let* n = G.int_range 0 4 in
          let* elems = G.list_size (G.return n) (json_value (depth - 1)) in
          G.return (Obs.Json.List elems) );
        ( 1,
          let* n = G.int_range 0 4 in
          let* fields =
            G.list_size (G.return n)
              (let* k = json_string in
               let* v = json_value (depth - 1) in
               G.return (k, v))
          in
          G.return (Obs.Json.Obj fields) );
      ]

let json = json_value 3

let print_json = Obs.Json.to_string
