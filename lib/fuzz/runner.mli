(** Drives the oracle suite, writes failures to the corpus, and
    replays corpus entries. *)

type report = {
  oracle : string;
  seed : int;  (** the derived per-oracle seed actually used *)
  count : int;
  outcome : Oracle.outcome;
  corpus_file : string option;  (** written on failure when enabled *)
}

val derive_seed : int -> string -> int
(** Per-oracle seed from the master seed and the oracle name, so each
    oracle sees an independent deterministic stream.  Reports and
    corpus entries record the derived value; replay never re-derives. *)

val failed : report -> bool

val run :
  ?names:string list ->
  ?corpus_dir:string ->
  seed:int ->
  budget:int ->
  Format.formatter ->
  (report list, string) result
(** Run every oracle (or just [names]) for [budget] trials each,
    printing one status line per oracle and full shrunk
    counterexamples for failures.  With [corpus_dir], each failure is
    persisted as an open corpus entry.  [Error] only on unknown oracle
    names. *)

type replay_result =
  | Fixed  (** no longer reproduces *)
  | Still_failing_known of string  (** reproduces, marked known-issue *)
  | Still_failing  (** reproduces and the entry is open *)

val replay : Format.formatter -> string -> (replay_result, string) result
(** Re-run a corpus entry from its recorded [(oracle, seed, count)].
    [Error] on unreadable files or unknown oracle names. *)
