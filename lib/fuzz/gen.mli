(** Random-input generators for the differential fuzzer.

    Everything here is built on {!QCheck2.Gen}, so shrinking comes for
    free: QCheck2 shrinks by re-running the generator on smaller
    random choices, which means every shrunk candidate still satisfies
    the generators' safety invariants.

    The minic program generator is {e safe by construction} on every
    path, not merely on the executed one: array indices are masked to
    the array bounds, division and modulo only ever see a non-zero
    literal divisor, loops are counter loops whose counter nothing
    else writes, and every local is initialized before use.  A
    generated program therefore always terminates and never traps, so
    an oracle can treat any interpreter trap, any simulator
    divergence, and any "definite trap" / "possibly uninitialized"
    lint finding as a genuine bug. *)

(** Statement-mix profiles for minic program generation. *)
type profile = Straightline | Branching | Looping | Callish | Mixed

val all_profiles : profile list
val profile_name : profile -> string

val program_of_profile : profile -> Minic.Ast.program QCheck2.Gen.t

val program : Minic.Ast.program QCheck2.Gen.t
(** Profile-weighted mix of {!program_of_profile}. *)

val print_program : Minic.Ast.program -> string

val config : Arch.Config.t QCheck2.Gen.t
(** Uniform draw over the structural configuration space; always
    passes {!Arch.Config.validate}. *)

val print_config : Arch.Config.t -> string

val mb_config : Arch.Mb_config.t QCheck2.Gen.t
(** Uniform draw over the MicroBlaze-like structural space; always
    passes {!Arch.Mb_config.validate}. *)

val print_mb_config : Arch.Mb_config.t -> string

val binlp_problem : Optim.Binlp.problem QCheck2.Gen.t
(** Small instances (at most 6 variables, 2 SOS1 groups, 3
    constraints, product terms included) with half-integer
    coefficients, sized for brute-force cross-checking. *)

val print_binlp : Optim.Binlp.problem -> string

val json : Obs.Json.t QCheck2.Gen.t
(** Finite floats only (JSON cannot round-trip inf/nan). *)

val print_json : Obs.Json.t -> string
