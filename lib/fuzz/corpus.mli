(** Checked-in failure corpus.

    A corpus entry records everything needed to replay a failure
    exactly: the oracle name and the [(seed, count)] pair the runner
    used when it found it (see {!Oracle.run} — a run is a pure
    function of those).  The shrunk counterexample is stored too, but
    only for human triage; replay re-runs the oracle from the seed.

    Entries marked [known-issue] document divergences that are
    understood but deliberately not yet fixed; {!Runner.replay} treats
    them as expected (exit 0) so the corpus can be kept under
    [dune runtest] without blocking the build. *)

type status = Open | Known_issue of string

type entry = {
  oracle : string;
  seed : int;
  count : int;
  status : status;
  counterexample : string;  (** informational, fully shrunk *)
}

val filename : entry -> string
(** [<oracle>-s<seed>.repro]. *)

val to_string : entry -> string
(** [oracle:]/[seed:]/[count:]/[status:] headers, a [---] separator,
    then the printed counterexample. *)

val of_string : string -> (entry, string) result

val write : dir:string -> entry -> string
(** Persist under [dir] (created if missing); returns the path. *)

val read : string -> (entry, string) result
