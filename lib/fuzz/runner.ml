type report = {
  oracle : string;
  seed : int;  (** the derived per-oracle seed actually used *)
  count : int;
  outcome : Oracle.outcome;
  corpus_file : string option;
}

(* Independent per-oracle streams from one master seed, so `run --seed
   N` exercises different randomness per oracle while staying fully
   reproducible.  The derived seed is recorded in reports and corpus
   entries; replay uses the recorded value, never this function. *)
let derive_seed master name = Hashtbl.hash (master, name) land 0x3FFFFFFF

let pp_failure ppf ~counterexample ~messages =
  List.iter (fun m -> Format.fprintf ppf "    %s@." (String.trim m)) messages;
  Format.fprintf ppf "    counterexample:@.";
  String.split_on_char '\n' (String.trim counterexample)
  |> List.iter (fun line -> Format.fprintf ppf "      %s@." line)

let run_one ppf ~corpus_dir ~seed ~count oracle =
  let name = Oracle.name oracle in
  let outcome =
    Obs.Span.with_ ~cat:"fuzz" name
      ~attrs:[ ("seed", Obs.Json.Int seed); ("count", Obs.Json.Int count) ]
    @@ fun () -> Oracle.run ~seed ~count oracle
  in
  let corpus_file =
    match outcome with
    | Oracle.Pass { trials } ->
        Format.fprintf ppf "%-20s ok (%d trials, seed %d)@." name trials seed;
        None
    | Oracle.Fail { counterexample; shrink_steps; messages } ->
        Format.fprintf ppf "%-20s FAIL (seed %d, shrunk %d steps)@." name seed
          shrink_steps;
        pp_failure ppf ~counterexample ~messages;
        Option.map
          (fun dir ->
            let path =
              Corpus.write ~dir
                {
                  Corpus.oracle = name;
                  seed;
                  count;
                  status = Corpus.Open;
                  counterexample;
                }
            in
            Format.fprintf ppf "    wrote %s@." path;
            path)
          corpus_dir
    | Oracle.Crash { counterexample; message } ->
        Format.fprintf ppf "%-20s CRASH (seed %d): %s@." name seed message;
        pp_failure ppf ~counterexample ~messages:[];
        Option.map
          (fun dir ->
            let path =
              Corpus.write ~dir
                {
                  Corpus.oracle = name;
                  seed;
                  count;
                  status = Corpus.Open;
                  counterexample =
                    Printf.sprintf "crash: %s\n%s" message counterexample;
                }
            in
            Format.fprintf ppf "    wrote %s@." path;
            path)
          corpus_dir
  in
  { oracle = name; seed; count; outcome; corpus_file }

let failed r =
  match r.outcome with
  | Oracle.Pass _ -> false
  | Oracle.Fail _ | Oracle.Crash _ -> true

let run ?(names = []) ?corpus_dir ~seed ~budget ppf =
  let selected =
    match names with
    | [] -> Ok Oracle.all
    | names ->
        let missing = List.filter (fun n -> Oracle.find n = None) names in
        if missing <> [] then
          Error
            (Printf.sprintf "unknown oracle(s): %s (try `fuzz list')"
               (String.concat ", " missing))
        else Ok (List.filter_map Oracle.find names)
  in
  Result.map
    (fun oracles ->
      let reports =
        List.map
          (fun o ->
            run_one ppf ~corpus_dir ~seed:(derive_seed seed (Oracle.name o))
              ~count:budget o)
          oracles
      in
      let nfail = List.length (List.filter failed reports) in
      if nfail = 0 then
        Format.fprintf ppf "all %d oracles passed@." (List.length reports)
      else Format.fprintf ppf "%d oracle(s) FAILED@." nfail;
      reports)
    selected

type replay_result = Fixed | Still_failing_known of string | Still_failing

let replay ppf path =
  match Corpus.read path with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok entry -> (
      match Oracle.find entry.oracle with
      | None -> Error (Printf.sprintf "%s: unknown oracle %S" path entry.oracle)
      | Some oracle -> (
          match Oracle.run ~seed:entry.seed ~count:entry.count oracle with
          | Oracle.Pass _ ->
              Format.fprintf ppf
                "%s: no longer reproduces (%s, seed %d, %d trials)@." path
                entry.oracle entry.seed entry.count;
              Ok Fixed
          | (Oracle.Fail _ | Oracle.Crash _) as outcome -> (
              let counterexample, messages =
                match outcome with
                | Oracle.Fail { counterexample; messages; _ } ->
                    (counterexample, messages)
                | Oracle.Crash { counterexample; message } ->
                    (counterexample, [ message ])
                | Oracle.Pass _ -> assert false
              in
              match entry.status with
              | Corpus.Known_issue why ->
                  Format.fprintf ppf "%s: still failing (known issue: %s)@."
                    path why;
                  Ok (Still_failing_known why)
              | Corpus.Open ->
                  Format.fprintf ppf "%s: still failing (%s, seed %d)@." path
                    entry.oracle entry.seed;
                  pp_failure ppf ~counterexample ~messages;
                  Ok Still_failing)))
