module T2 = QCheck2.Test
module R = QCheck2.TestResult

type outcome =
  | Pass of { trials : int }
  | Fail of { counterexample : string; shrink_steps : int; messages : string list }
  | Crash of { counterexample : string; message : string }

type t =
  | T : {
      name : string;
      doc : string;
      gen : 'a QCheck2.Gen.t;
      print : 'a -> string;
      prop : 'a -> bool;
    }
      -> t

let name (T o) = o.name
let doc (T o) = o.doc

let run ?(count = 200) ~seed (T o) =
  let cell = T2.make_cell ~name:o.name ~count ~print:o.print o.gen o.prop in
  let rand = Random.State.make [| seed |] in
  match R.get_state (T2.check_cell ~rand cell) with
  | R.Success -> Pass { trials = count }
  | R.Failed { instances = [] } ->
      Fail { counterexample = "<none>"; shrink_steps = 0; messages = [] }
  | R.Failed { instances = c :: _ } ->
      Fail
        {
          counterexample = o.print c.instance;
          shrink_steps = c.shrink_steps;
          messages = c.msg_l;
        }
  | R.Failed_other { msg } ->
      Fail { counterexample = "<none>"; shrink_steps = 0; messages = [ msg ] }
  | R.Error { instance; exn; backtrace = _ } ->
      Crash
        {
          counterexample = o.print instance.instance;
          message = Printexc.to_string exn;
        }

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* Far beyond what a generated program can consume (loops iterate at
   most 8x8 times over a handful of statements), so exhaustion means a
   termination bug, not an undersized budget. *)
let fuel = 2_000_000

let checked p =
  match Minic.Check.check p with
  | Ok () -> ()
  | Error errs ->
      T2.fail_reportf "generator emitted an invalid program:@ %s"
        (String.concat "; " errs)

let interp p =
  match Minic.Interp.run ~fuel p with
  | v -> Ok v
  | exception Minic.Interp.Runtime_error m -> Error m

let interp_clean p =
  match interp p with
  | Ok v -> v
  | Error m ->
      T2.fail_reportf "interpreter trapped on a safe-by-construction program: %s"
        m

let simulate config prog =
  let cpu = Sim.Cpu.create config prog ~mem_size:(1 lsl 20) in
  Sim.Cpu.run ~max_insns:20_000_000 cpu;
  if not (Sim.Cpu.halted cpu) then
    T2.fail_reportf "simulator did not halt within 20M instructions";
  Sim.Cpu.result cpu

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let interp_vs_sim =
  T
    {
      name = "interp-vs-sim";
      doc =
        "compiled execution on a random valid configuration matches the \
         reference interpreter";
      gen = QCheck2.Gen.pair Gen.program Gen.config;
      print =
        (fun (p, c) ->
          Printf.sprintf "// config: %s\n%s" (Gen.print_config c)
            (Gen.print_program p));
      prop =
        (fun (p, config) ->
          checked p;
          (match Arch.Config.validate config with
          | Ok () -> ()
          | Error m -> T2.fail_reportf "generator emitted invalid config: %s" m);
          let expected = interp_clean p in
          let got = simulate config (Minic.Codegen.compile p) in
          if got <> expected then
            T2.fail_reportf "interp=%d sim=%d under %s" expected got
              (Gen.print_config config)
          else true);
    }

let optimize_preserves =
  T
    {
      name = "optimize-preserves";
      doc =
        "--O1/--O2 rewriting preserves interpreter semantics and compiled \
         results";
      gen = QCheck2.Gen.pair Gen.program (QCheck2.Gen.oneofl [ 1; 2 ]);
      print =
        (fun (p, level) ->
          Printf.sprintf "// level: %d\n%s" level (Gen.print_program p));
      prop =
        (fun (p, level) ->
          checked p;
          let expected = interp_clean p in
          let q = Minic.Optimize.program ~level p in
          (match Minic.Check.check q with
          | Ok () -> ()
          | Error errs ->
              T2.fail_reportf "optimized program fails Check: %s"
                (String.concat "; " errs));
          (match interp q with
          | Ok v when v = expected -> ()
          | Ok v ->
              T2.fail_reportf "O%d changed the result: %d -> %d" level expected
                v
          | Error m -> T2.fail_reportf "O%d introduced a trap: %s" level m);
          let got = simulate Arch.Config.base (Minic.Codegen.compile q) in
          if got <> expected then
            T2.fail_reportf "compiled O%d result %d differs from interp %d"
              level got expected
          else true);
    }

let uninit_warning (f : Minic.Lint.finding) =
  f.severity = Minic.Lint.Warning
  && (let msg = f.message in
      let needle = "before initialization" in
      let n = String.length needle and m = String.length msg in
      let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
      scan 0)

let lint_sound =
  T
    {
      name = "lint-sound";
      doc =
        "no definite-trap error or uninitialized-use warning on a program \
         that is safe on every path";
      gen = Gen.program;
      print = Gen.print_program;
      prop =
        (fun p ->
          checked p;
          ignore (interp_clean p);
          let findings = Minic.Lint.program p in
          match
            List.find_opt
              (fun (f : Minic.Lint.finding) ->
                f.severity = Minic.Lint.Error || uninit_warning f)
              findings
          with
          | Some f ->
              T2.fail_reportf "unsound finding: %a" Minic.Lint.pp_finding f
          | None -> true);
    }

let codec_roundtrip =
  T
    {
      name = "codec-roundtrip";
      doc =
        "Arch.Codec print/parse/digest round-trips; duplicates and stray \
         commas are rejected";
      gen = Gen.config;
      print = Gen.print_config;
      prop =
        (fun c ->
          (match Arch.Config.validate c with
          | Ok () -> ()
          | Error m -> T2.fail_reportf "generator emitted invalid config: %s" m);
          let s = Arch.Codec.to_string c in
          (match Arch.Codec.of_string s with
          | Error m -> T2.fail_reportf "of_string rejected %S: %s" s m
          | Ok c' ->
              if not (Arch.Config.equal c c') then
                T2.fail_reportf "round-trip changed the config: %S -> %S" s
                  (Arch.Codec.to_string c');
              if Arch.Codec.digest c <> Arch.Codec.digest c' then
                T2.fail_reportf "digest differs across a round-trip of %S" s);
          (match Arch.Codec.of_string (s ^ ",") with
          | Ok c' when Arch.Config.equal c c' -> ()
          | Ok _ -> T2.fail_reportf "trailing comma changed the config: %S" s
          | Error m ->
              T2.fail_reportf "single trailing comma rejected on %S: %s" s m);
          (match Arch.Codec.of_string (s ^ ",,") with
          | Error _ -> ()
          | Ok _ -> T2.fail_reportf "double trailing comma accepted on %S" s);
          let first_field = String.sub s 0 (String.index s ',') in
          (match Arch.Codec.of_string (s ^ "," ^ first_field) with
          | Error _ -> ()
          | Ok _ ->
              T2.fail_reportf "duplicate field %S accepted on %S" first_field s);
          true);
    }

let mb_codec_roundtrip =
  T
    {
      name = "mb-codec-roundtrip";
      doc =
        "Arch.Mb_codec print/parse/digest round-trips; duplicates and stray \
         commas are rejected";
      gen = Gen.mb_config;
      print = Gen.print_mb_config;
      prop =
        (fun c ->
          (match Arch.Mb_config.validate c with
          | Ok () -> ()
          | Error m -> T2.fail_reportf "generator emitted invalid config: %s" m);
          let s = Arch.Mb_codec.to_string c in
          (match Arch.Mb_codec.of_string s with
          | Error m -> T2.fail_reportf "of_string rejected %S: %s" s m
          | Ok c' ->
              if not (Arch.Mb_config.equal c c') then
                T2.fail_reportf "round-trip changed the config: %S -> %S" s
                  (Arch.Mb_codec.to_string c');
              if Arch.Mb_codec.digest c <> Arch.Mb_codec.digest c' then
                T2.fail_reportf "digest differs across a round-trip of %S" s);
          (match Arch.Mb_codec.of_string (s ^ ",") with
          | Ok c' when Arch.Mb_config.equal c c' -> ()
          | Ok _ -> T2.fail_reportf "trailing comma changed the config: %S" s
          | Error m ->
              T2.fail_reportf "single trailing comma rejected on %S: %s" s m);
          (match Arch.Mb_codec.of_string (s ^ ",,") with
          | Error _ -> ()
          | Ok _ -> T2.fail_reportf "double trailing comma accepted on %S" s);
          let first_field = String.sub s 0 (String.index s ',') in
          (match Arch.Mb_codec.of_string (s ^ "," ^ first_field) with
          | Error _ -> ()
          | Ok _ ->
              T2.fail_reportf "duplicate field %S accepted on %S" first_field s);
          true);
    }

let binlp_exact =
  T
    {
      name = "binlp-exact";
      doc =
        "branch-and-bound solve agrees with brute-force enumeration on small \
         SOS1 instances";
      gen = Gen.binlp_problem;
      print = Gen.print_binlp;
      prop =
        (fun p ->
          let brute = Optim.Binlp.brute_force p in
          let solved = Optim.Binlp.solve ~node_limit:2_000_000 p in
          if solved.Optim.Binlp.status <> Optim.Binlp.Optimal then
            T2.fail_reportf "solver hit the node limit on a small instance";
          match (brute, solved.Optim.Binlp.best) with
          | None, None -> true
          | Some b, None ->
              T2.fail_reportf
                "solver reported infeasible but brute force found objective %g"
                b.objective
          | None, Some s ->
              T2.fail_reportf
                "solver found objective %g but brute force says infeasible \
                 (point feasible: %b)"
                s.objective
                (Optim.Binlp.check p s.x)
          | Some b, Some s ->
              if not (Optim.Binlp.check p s.x) then
                T2.fail_reportf "solver returned an infeasible point";
              if Float.abs (s.objective -. b.objective) > 1e-6 then
                T2.fail_reportf "objectives differ: solve=%g brute=%g"
                  s.objective b.objective;
              (* The pinned tie-break (bit-exact minimal objective,
                 then lexicographically-smallest assignment; both
                 sides recompute objectives in index order, and the
                 generator emits exact dyadic coefficients) makes the
                 winning assignment itself comparable, not just its
                 objective. *)
              if s.x <> b.x then
                T2.fail_reportf
                  "tie-break diverged: solve and brute force picked \
                   different optimal assignments (obj %g)"
                  s.objective
              else true);
    }

(* Explicit multi-worker pools, created lazily so the domains only
   spawn when this oracle actually runs, and joined at exit.  The host
   may have a single core — the point is scheduling interleaving, not
   speed. *)
let par_pools =
  lazy
    (let mk w =
       let p = Dse.Pool.create ~workers:w () in
       at_exit (fun () -> Dse.Pool.shutdown p);
       p
     in
     (mk 2, mk 4))

let binlp_par =
  T
    {
      name = "binlp-par";
      doc =
        "parallel solve (2 and 4 workers) is bit-identical to the sequential \
         solve: same status, same winner";
      gen = Gen.binlp_problem;
      print = Gen.print_binlp;
      prop =
        (fun p ->
          let seq = Optim.Binlp.solve ~node_limit:2_000_000 p in
          let pool2, pool4 = Lazy.force par_pools in
          List.iter
            (fun (label, pool) ->
              let par =
                Optim.Binlp.solve ~node_limit:2_000_000
                  ~runner:(Dse.Pool.solver_runner pool)
                  p
              in
              if par.Optim.Binlp.status <> seq.Optim.Binlp.status then
                T2.fail_reportf "%s: status differs from sequential" label;
              match (seq.Optim.Binlp.best, par.Optim.Binlp.best) with
              | None, None -> ()
              | Some s, Some q
                when Int64.bits_of_float s.Optim.Binlp.objective
                     = Int64.bits_of_float q.Optim.Binlp.objective
                     && s.Optim.Binlp.x = q.Optim.Binlp.x ->
                  ()
              | Some s, Some q ->
                  T2.fail_reportf
                    "%s: winner differs: seq obj=%g par obj=%g (same \
                     assignment: %b)"
                    label s.Optim.Binlp.objective q.Optim.Binlp.objective
                    (s.Optim.Binlp.x = q.Optim.Binlp.x)
              | Some _, None ->
                  T2.fail_reportf "%s: parallel solve reported infeasible"
                    label
              | None, Some _ ->
                  T2.fail_reportf
                    "%s: parallel solve found a point on an infeasible \
                     instance"
                    label)
            [ ("2-workers", pool2); ("4-workers", pool4) ];
          true);
    }

let rec json_equal (a : Obs.Json.t) (b : Obs.Json.t) =
  match (a, b) with
  | Obs.Json.Float x, Obs.Json.Float y ->
      Int64.bits_of_float x = Int64.bits_of_float y
  | Obs.Json.List xs, Obs.Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           xs ys
  | _ -> a = b

let json_roundtrip =
  T
    {
      name = "json-roundtrip";
      doc = "Obs.Json print/parse round-trips bit-exactly (finite floats)";
      gen = Gen.json;
      print = Gen.print_json;
      prop =
        (fun v ->
          let s = Obs.Json.to_string v in
          match Obs.Json.parse s with
          | Error m -> T2.fail_reportf "parse failed on %S: %s" s m
          | Ok v' ->
              if not (json_equal v v') then
                T2.fail_reportf "round-trip changed the value: %S -> %S" s
                  (Obs.Json.to_string v')
              else true);
    }

let pretty_parse =
  T
    {
      name = "pretty-parse";
      doc = "Minic.Pretty output parses back to a structurally equal program";
      gen = Gen.program;
      print = Gen.print_program;
      prop =
        (fun p ->
          checked p;
          let src = Minic.Pretty.to_string p in
          match Minic.Parser.parse src with
          | Error m -> T2.fail_reportf "parse failed: %s" m
          | Ok p' ->
              if p' <> p then
                T2.fail_reportf "round-trip changed the program:@ %s"
                  (Minic.Pretty.to_string p')
              else true);
    }

(* Static-bounds sanitizer: the analysis ({!Minic.Bounds} priced by
   {!Dse.Bounds}) and the cycle-accurate simulator cross-check each
   other — an unsound bound or a mis-charged stall shows up as an
   escape on either side.  Generated programs are trap-free by
   construction ([interp_clean] re-asserts it), which is exactly the
   regime the bounds describe. *)
let bounds_oracle ~name ~core ~print_config ~cycle_model ~run_program gen_config
    =
  T
    {
      name;
      doc =
        Printf.sprintf
          "simulated cycles lie within the static [best, worst] bounds \
           (%s target)"
          core;
      gen = QCheck2.Gen.pair Gen.program gen_config;
      print =
        (fun (p, c) ->
          Printf.sprintf "// config: %s\n%s" (print_config c)
            (Gen.print_program p));
      prop =
        (fun (p, config) ->
          checked p;
          ignore (interp_clean p);
          let lo, hi =
            Dse.Bounds.cycles (cycle_model config) (Minic.Bounds.summary p)
          in
          let r : Sim.Machine.result = run_program config (Minic.Codegen.compile p) in
          let cycles =
            float_of_int r.Sim.Machine.profile.Sim.Profiler.cycles
          in
          if cycles < lo || cycles > hi then
            T2.fail_reportf
              "simulated %.0f cycles outside static bounds [%.0f, %.0f] \
               under %s"
              cycles lo hi (print_config config)
          else true);
    }

let bounds_leon2 =
  bounds_oracle ~name:"bounds-leon2" ~core:"LEON2"
    ~print_config:Gen.print_config ~cycle_model:Dse.Target_leon2.cycle_model
    ~run_program:(fun config prog -> Dse.Target_leon2.run_program config prog)
    Gen.config

let bounds_microblaze =
  bounds_oracle ~name:"bounds-microblaze" ~core:"MicroBlaze"
    ~print_config:Gen.print_mb_config
    ~cycle_model:Dse.Target_microblaze.cycle_model
    ~run_program:(fun config prog ->
      Dse.Target_microblaze.run_program config prog)
    Gen.mb_config

(* ------------------------------------------------------------------ *)
(* Cost-table oracle                                                   *)
(* ------------------------------------------------------------------ *)

(* Accounting identity for the shared per-class cost table: a
   microprogram with [n + 8] instances of one instruction class must
   cost exactly [8 * price(class)] more cycles than the same program
   with [n] instances, once the genuinely configuration-geometry
   dependent dynamics — icache/dcache line fills from the longer code
   footprint, window traps on tiny register files — are corrected for
   with the profiler's own counter deltas.  Deterministic stalls (ICC
   hold, the load-delay interlock, taken redirects, shift/mul/div
   latencies) are NOT corrected: they are part of the class price
   under test, so a table that misprices them fails the identity. *)

let cost_classes :
    (string * (Sim.Cost_model.t -> int) * (Isa.Asm.t -> unit)) list =
  let o0 = Isa.Reg.o 0 in
  let o1 = Isa.Reg.o 1 in
  let o2 = Isa.Reg.o 2 in
  let o3 = Isa.Reg.o 3 in
  let g0 = Isa.Reg.g0 in
  let emit i a = Isa.Asm.emit a i in
  [
    ( "alu",
      Sim.Cost_model.alu_cycles,
      emit (Isa.Insn.Alu { op = Isa.Insn.Add; cc = false; rd = o2; rs1 = o0; op2 = Isa.Insn.Imm 7 }) );
    ( "shift",
      Sim.Cost_model.shift_cycles,
      emit (Isa.Insn.Alu { op = Isa.Insn.Sll; cc = false; rd = o2; rs1 = o0; op2 = Isa.Insn.Imm 3 }) );
    ( "mul",
      Sim.Cost_model.mul_cycles,
      emit (Isa.Insn.Mul { signed = false; cc = false; rd = o2; rs1 = o0; op2 = Isa.Insn.Imm 3 }) );
    ( "div",
      Sim.Cost_model.div_cycles,
      emit (Isa.Insn.Div { signed = false; rd = o2; rs1 = o0; op2 = Isa.Insn.Imm 3 }) );
    ("sethi", (fun _ -> 1), emit (Isa.Insn.Sethi { rd = o2; imm = 0x1234 }));
    ("nop", (fun _ -> 1), emit Isa.Insn.Nop);
    ( "load",
      Sim.Cost_model.load_hit_cycles,
      emit (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = o2; rs1 = o1; op2 = Isa.Insn.Imm 0 }) );
    ( "store",
      Sim.Cost_model.store_cycles,
      emit (Isa.Insn.Store { width = Isa.Insn.Word; rs = o0; rs1 = o1; op2 = Isa.Insn.Imm 0 }) );
    ( "branch-untaken",
      Sim.Cost_model.branch_cycles,
      (* no instruction in the program sets the condition codes, so Eq
         (initial z = 0) never takes and never waits on the hold *)
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Branch { cond = Isa.Insn.Eq; target = Isa.Asm.here a + 1 })
    );
    ( "branch-always",
      Sim.Cost_model.ba_cycles,
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Branch { cond = Isa.Insn.Always; target = Isa.Asm.here a + 1 }) );
    ( "call",
      Sim.Cost_model.jump_cycles,
      fun a -> Isa.Asm.emit a (Isa.Insn.Call { target = Isa.Asm.here a + 1 }) );
    ( "jmpl",
      Sim.Cost_model.jump_cycles,
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Jmpl { rd = g0; rs1 = g0; op2 = Isa.Insn.Imm (Isa.Asm.here a + 1) }) );
    ( "cmp-branch",
      (fun cm ->
        Sim.Cost_model.alu_cycles cm + Sim.Cost_model.cbr_cmp_cycles cm),
      (* subcc %g0,%g0 sets z, bne consumes it untaken — one ICC-hold
         stall per pair exactly when the table says icc_stall = 1 *)
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Alu { op = Isa.Insn.Sub; cc = true; rd = g0; rs1 = g0; op2 = Isa.Insn.Reg g0 });
        Isa.Asm.emit a
          (Isa.Insn.Branch { cond = Isa.Insn.Ne; target = Isa.Asm.here a + 1 })
    );
    ( "load-interlock",
      (fun cm ->
        Sim.Cost_model.load_hit_cycles cm
        + cm.Sim.Cost_model.interlock
        + Sim.Cost_model.alu_cycles cm),
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = o2; rs1 = o1; op2 = Isa.Insn.Imm 0 });
        Isa.Asm.emit a
          (Isa.Insn.Alu { op = Isa.Insn.Add; cc = false; rd = o3; rs1 = o2; op2 = Isa.Insn.Imm 0 }) );
    ( "save-restore",
      (fun cm ->
        Sim.Cost_model.save_cycles cm + Sim.Cost_model.restore_cycles cm),
      fun a ->
        Isa.Asm.emit a
          (Isa.Insn.Save { rd = Isa.Reg.sp; rs1 = Isa.Reg.sp; op2 = Isa.Insn.Imm (-96) });
        Isa.Asm.emit a
          (Isa.Insn.Restore { rd = g0; rs1 = g0; op2 = Isa.Insn.Imm 0 }) );
  ]

let cost_program ~instances body =
  let a = Isa.Asm.create () in
  let buf = Isa.Asm.data_zero a ~name:"buf" 64 in
  Isa.Asm.set32 a buf (Isa.Reg.o 1);
  Isa.Asm.set32 a 12345 (Isa.Reg.o 0);
  for _ = 1 to instances do
    body a
  done;
  Isa.Asm.emit a Isa.Insn.Halt;
  Isa.Asm.finish a ~entry:0

let cost_table_oracle ~name ~core ~print_config ~cycle_model ~run_program
    gen_config =
  T
    {
      name;
      doc =
        Printf.sprintf
          "the shared cost table prices every instruction class exactly as \
           the simulator charges it (%s target)"
          core;
      gen = gen_config;
      print = print_config;
      prop =
        (fun config ->
          let cm : Sim.Cost_model.t = cycle_model config in
          let profile_of n body =
            let r : Sim.Machine.result = run_program config (cost_program ~instances:n body) in
            r.Sim.Machine.profile
          in
          List.iter
            (fun (cls, price, body) ->
              let p1 = profile_of 11 body in
              let p2 = profile_of 19 body in
              let d f = f p2 - f p1 in
              let dynamic =
                (d (fun p -> p.Sim.Profiler.icache_misses)
                * cm.Sim.Cost_model.iline_fill)
                + d (fun p -> p.Sim.Profiler.dcache_read_misses)
                  * cm.Sim.Cost_model.dline_fill
                + d (fun p -> p.Sim.Profiler.window_overflows)
                  * (Sim.Cost_model.trap_overhead
                    + (Sim.Cost_model.window_regs * Sim.Cost_model.store_cycles cm))
                + d (fun p -> p.Sim.Profiler.window_underflows)
                  * (Sim.Cost_model.trap_overhead
                    + (Sim.Cost_model.window_regs * Sim.Cost_model.load_hit_cycles cm))
              in
              let observed = d (fun p -> p.Sim.Profiler.cycles) - dynamic in
              let expected = 8 * price cm in
              if observed <> expected then
                T2.fail_reportf
                  "class %s: observed %d cycles per 8 instances, table \
                   prices %d under %s"
                  cls observed expected (print_config config))
            cost_classes;
          true);
    }

let cpu_cost_table_leon2 =
  cost_table_oracle ~name:"cpu-cost-table-leon2" ~core:"LEON2"
    ~print_config:Gen.print_config ~cycle_model:Dse.Target_leon2.cycle_model
    ~run_program:(fun config prog -> Dse.Target_leon2.run_program config prog)
    Gen.config

let cpu_cost_table_microblaze =
  cost_table_oracle ~name:"cpu-cost-table-microblaze" ~core:"MicroBlaze"
    ~print_config:Gen.print_mb_config
    ~cycle_model:Dse.Target_microblaze.cycle_model
    ~run_program:(fun config prog ->
      Dse.Target_microblaze.run_program config prog)
    Gen.mb_config

(* The journal's per-domain buffers under real pool concurrency: every
   recorded event must survive the merge (none lost, none duplicated),
   carry well-formed serializable fields, and each domain's buffer must
   be monotonically timestamped — the invariants the explain reports
   and the trace mirror rely on. *)
let journal_pool =
  T
    {
      name = "journal-pool";
      doc =
        "journal events recorded from pool workers are complete, \
         well-formed and per-domain monotone";
      gen =
        QCheck2.Gen.(list_size (int_range 0 12) (int_range 0 5));
      print =
        (fun counts ->
          Printf.sprintf "[%s]"
            (String.concat "; " (List.map string_of_int counts)));
      prop =
        (fun counts ->
          Obs.Journal.set_enabled true;
          Obs.Journal.clear ();
          Fun.protect ~finally:(fun () ->
              Obs.Journal.set_enabled false;
              Obs.Journal.clear ())
          @@ fun () ->
          let task idx n =
            for k = 0 to n - 1 do
              Obs.Journal.record ~kind:"fuzz.tick"
                [ ("idx", Obs.Json.Int idx); ("k", Obs.Json.Int k) ]
            done;
            n
          in
          let indexed = List.mapi (fun i n -> (i, n)) counts in
          let returned =
            Dse.Pool.map (Dse.Pool.default ()) (fun (i, n) -> task i n) indexed
          in
          if returned <> List.map snd indexed then
            T2.fail_reportf "pool map reordered or lost results";
          let events =
            List.filter
              (fun (e : Obs.Journal.event) -> e.Obs.Journal.kind = "fuzz.tick")
              (Obs.Journal.events ())
          in
          let expected = List.fold_left ( + ) 0 counts in
          if List.length events <> expected then
            T2.fail_reportf "recorded %d events, expected %d"
              (List.length events) expected;
          List.iter
            (fun (e : Obs.Journal.event) ->
              if e.Obs.Journal.ts_ns < 0L then
                T2.fail_reportf "negative timestamp";
              if e.Obs.Journal.kind = "" then T2.fail_reportf "empty kind";
              ignore (Obs.Json.to_string (Obs.Journal.to_json e)))
            events;
          List.iter
            (fun (tid, evs) ->
              let rec monotone = function
                | (a : Obs.Journal.event) :: (b : Obs.Journal.event) :: rest ->
                    if Int64.compare a.Obs.Journal.ts_ns b.Obs.Journal.ts_ns > 0
                    then
                      T2.fail_reportf
                        "domain %d buffer not monotonically timestamped" tid;
                    monotone (b :: rest)
                | _ -> ()
              in
              monotone evs)
            (Obs.Journal.events_by_domain ());
          true);
    }

(* Phase-schedule dominance: with the switch cost forced to zero (the
   schedule problem solved without its switch terms), the scheduled
   optimum can always replicate any static selection uniformly across
   phases, so its objective is <= the static optimum's on the
   phase-summed model.  Exercises the slot layout, per-phase SOS1
   groups and per-phase resource constraints of
   [Formulate.make_schedule] against [Formulate.make] over the real
   LEON2 variable space with synthetic per-phase runtime deltas. *)
module SL = Dse.Stack.Make (Dse.Target_leon2)

let schedule_dominance =
  let module L = Dse.Target_leon2 in
  let synth_base =
    {
      Dse.Cost.seconds = 1.0;
      resources =
        { Synth.Resource.luts = L.device_luts / 2; brams = L.device_brams / 2 };
    }
  in
  let gen =
    let open QCheck2.Gen in
    let* nphases = int_range 2 3 in
    let* reps = int_range 1 3 in
    let* nrows = int_range 2 (min 6 (List.length L.vars)) in
    let+ rows =
      list_repeat nrows
        (triple
           (list_repeat nphases (float_range (-20.) 20.))
           (float_range (-3.) 3.) (float_range (-3.) 3.))
    in
    (nphases, reps, rows)
  in
  let print (nphases, reps, rows) =
    Printf.sprintf "phases=%d reps=%d\n%s" nphases reps
      (String.concat "\n"
         (List.mapi
            (fun i (rhos, lam, bet) ->
              Printf.sprintf "  row %d: rho=[%s] lambda=%.3f beta=%.3f" i
                (String.concat "; " (List.map (Printf.sprintf "%.3f") rhos))
                lam bet)
            rows))
  in
  T
    {
      name = "schedule-dominance";
      doc =
        "with zero switch cost the scheduled optimum is never worse than the \
         static optimum on the phase-summed model";
      gen;
      print;
      prop =
        (fun (nphases, reps, rows) ->
          let vars = List.filteri (fun i _ -> i < List.length rows) L.vars in
          let weights = Dse.Cost.runtime_weights in
          let row_of v rho lam bet =
            {
              SL.Measure.var = v;
              config = v.L.apply L.base;
              cost = synth_base;
              deltas = { Dse.Cost.rho; lambda = lam; beta = bet };
            }
          in
          let app = Apps.Registry.blastn in
          let phase_model p =
            SL.Measure.model_of app ~base:synth_base
              (List.map2
                 (fun v (rhos, lam, bet) -> row_of v (List.nth rhos p) lam bet)
                 vars rows)
          in
          let models = List.init nphases phase_model in
          let summed =
            SL.Measure.model_of app ~base:synth_base
              (List.map2
                 (fun v (rhos, lam, bet) ->
                   row_of v (List.fold_left ( +. ) 0.0 rhos) lam bet)
                 vars rows)
          in
          let sched = SL.Formulate.make_schedule ~reps ~weights models in
          let static_prob = SL.Formulate.make weights summed in
          let s = Optim.Binlp.solve ~node_limit:2_000_000 static_prob in
          let d =
            Optim.Binlp.solve ~node_limit:2_000_000
              sched.SL.Formulate.problem
          in
          match (s.Optim.Binlp.best, d.Optim.Binlp.best) with
          | None, None -> true
          | None, Some _ ->
              (* The empty selection is always schedule-feasible when it
                 is static-feasible and vice versa: both sides must
                 agree on feasibility. *)
              T2.fail_reportf
                "schedule found a point on a static-infeasible instance"
          | Some _, None ->
              T2.fail_reportf
                "schedule problem infeasible while static is feasible"
          | Some st, Some sc ->
              if
                sc.Optim.Binlp.objective
                > st.Optim.Binlp.objective +. 1e-6
              then
                T2.fail_reportf "scheduled optimum %.9f > static optimum %.9f"
                  sc.Optim.Binlp.objective st.Optim.Binlp.objective
              else true);
    }

(* Change-point detection must be a pure function of (options, config,
   program): repeated detections — including detections executed on
   pool worker domains of different counts — agree bit-for-bit on the
   segmentation, and the segmentation is a partition of the retired
   instruction stream. *)
let phase_determinism =
  T
    {
      name = "phase-determinism";
      doc =
        "windowed change-point detection is deterministic across repeated \
         runs and pool worker counts, and partitions the instruction stream";
      gen = Gen.program;
      print = Gen.print_program;
      prop =
        (fun p ->
          checked p;
          let prog = Minic.Codegen.compile p in
          let options =
            {
              Sim.Phase.default_options with
              Sim.Phase.window = 256;
              min_windows = 2;
              max_phases = 6;
            }
          in
          let detect () =
            Sim.Phase.detect ~options Arch.Config.base prog
          in
          let reference = detect () in
          let want = Sim.Phase.digest reference in
          if Sim.Phase.digest (detect ()) <> want then
            T2.fail_reportf "repeated detection disagrees";
          let pool2, pool4 = Lazy.force par_pools in
          List.iter
            (fun (label, pool) ->
              List.iter
                (fun d ->
                  if Sim.Phase.digest d <> want then
                    T2.fail_reportf "detection under %s pool disagrees" label)
                (Dse.Pool.map pool (fun () -> detect ()) [ (); () ]))
            [ ("2-worker", pool2); ("4-worker", pool4) ];
          let total = reference.Sim.Phase.total_insns in
          let rec partitions pos = function
            | [] -> T2.fail_reportf "no phases"
            | [ (last : Sim.Phase.phase) ] ->
                last.Sim.Phase.start_insn = pos
                && last.Sim.Phase.end_insn = total
                || T2.fail_reportf "last phase does not close the partition"
            | (ph : Sim.Phase.phase) :: rest ->
                (ph.Sim.Phase.start_insn = pos
                 && ph.Sim.Phase.end_insn > ph.Sim.Phase.start_insn
                || T2.fail_reportf "phase [%d, %d) does not continue at %d"
                     ph.Sim.Phase.start_insn ph.Sim.Phase.end_insn pos)
                && partitions ph.Sim.Phase.end_insn rest
          in
          partitions 0 reference.Sim.Phase.phases);
    }

let all =
  [
    interp_vs_sim;
    optimize_preserves;
    lint_sound;
    codec_roundtrip;
    mb_codec_roundtrip;
    binlp_exact;
    binlp_par;
    json_roundtrip;
    pretty_parse;
    bounds_leon2;
    bounds_microblaze;
    cpu_cost_table_leon2;
    cpu_cost_table_microblaze;
    journal_pool;
    schedule_dominance;
    phase_determinism;
  ]

let find n = List.find_opt (fun o -> name o = n) all
