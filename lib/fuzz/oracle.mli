(** Differential oracles: properties that cross-check two independent
    implementations of the same semantics, run over {!Gen}'s random
    inputs.

    Each oracle packages a generator, a printer, and a property behind
    an existential, so the runner can treat them uniformly.  A run is
    fully determined by [(oracle, seed, count)] — {!run} draws from
    [Random.State.make [| seed |]] and nothing else — which is what
    makes corpus replay exact. *)

type outcome =
  | Pass of { trials : int }
  | Fail of {
      counterexample : string;  (** printed, fully shrunk *)
      shrink_steps : int;
      messages : string list;  (** [Test.fail_reportf] diagnostics *)
    }
  | Crash of { counterexample : string; message : string }
      (** The property raised instead of returning false. *)

type t =
  | T : {
      name : string;
      doc : string;
      gen : 'a QCheck2.Gen.t;
      print : 'a -> string;
      prop : 'a -> bool;
    }
      -> t

val name : t -> string
val doc : t -> string

val run : ?count:int -> seed:int -> t -> outcome
(** Check [count] (default 200) random instances, shrinking any
    failure to a local minimum.  Deterministic in [(seed, count)]. *)

val interp_vs_sim : t
(** Random program x random valid configuration: {!Minic.Interp}
    against {!Sim.Cpu} executing {!Minic.Codegen} output. *)

val optimize_preserves : t
(** [--O1]/[--O2] program against the unoptimized interpretation, both
    interpreted and compiled. *)

val lint_sound : t
(** No definite-trap error and no uninitialized-use warning on
    programs that are safe on every path by construction. *)

val codec_roundtrip : t
(** {!Arch.Codec} print/parse/digest identity, plus rejection of
    duplicate keys and stray commas. *)

val mb_codec_roundtrip : t
(** {!Arch.Mb_codec} print/parse/digest identity for the MicroBlaze
    target, with the same duplicate/stray-comma rejections. *)

val binlp_exact : t
(** {!Optim.Binlp.solve} against {!Optim.Binlp.brute_force} on small
    SOS1 instances, product-form constraints included.  Compares the
    winning {e assignments}, not just the objectives — both sides pin
    the same tie-break (minimal objective, then lexicographically
    smallest point). *)

val binlp_par : t
(** Parallel {!Optim.Binlp.solve} on explicit 2- and 4-worker
    {!Dse.Pool}s against the sequential solve: same status and a
    bit-identical winner (objective and assignment), for every worker
    count.  Exercises the shared-incumbent search under real domain
    interleaving. *)

val json_roundtrip : t
(** {!Obs.Json} print/parse identity, bit-exact on finite floats. *)

val pretty_parse : t
(** {!Minic.Pretty} output re-parses to a structurally equal program. *)

val bounds_leon2 : t
(** Random program x random LEON2 configuration: simulated cycles lie
    within the static [best, worst] bounds of
    {!Minic.Bounds}/{!Dse.Bounds} — a sanitizer cross-checking the
    analysis and the simulator against each other. *)

val bounds_microblaze : t
(** The same bounds sanitizer on the MicroBlaze-like backend (barrel
    shifter and multiplier/divider options included). *)

val journal_pool : t
(** {!Obs.Journal} under {!Dse.Pool} concurrency: events recorded from
    worker domains are complete after the merge, well-formed
    (serializable, non-empty kinds, non-negative timestamps), and each
    domain's buffer is monotonically timestamped. *)

val schedule_dominance : t
(** With the switch cost forced to zero (the schedule problem solved
    without its switch terms), the scheduled optimum on synthetic
    multi-phase models is never worse than the static optimum of the
    phase-summed model — uniform replication of the static winner is
    always schedule-feasible. *)

val phase_determinism : t
(** {!Sim.Phase.detect} is bit-deterministic across repeated runs and
    {!Dse.Pool} worker counts, and its phases partition the retired
    instruction stream. *)

val all : t list
val find : string -> t option
