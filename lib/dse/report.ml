let pf = Format.fprintf

(* --- Figure 1 --- *)

let print_fig1 ppf =
  pf ppf "Figure 1: LEON reconfigurable parameters@.";
  pf ppf "  %-22s %-10s %s@." "parameter" "default" "values";
  let c = Arch.Config.base in
  let cache_rows which (cc : Arch.Config.cache) =
    [
      (which ^ " ways (sets)", string_of_int cc.ways, "1-4");
      (which ^ " way size", Printf.sprintf "%dKB" cc.way_kb, "1,2,4,8,16,32,64KB");
      (which ^ " line size", string_of_int cc.line_words, "4,8 words");
      ( which ^ " replacement",
        Arch.Config.replacement_to_string cc.replacement,
        "random,LRR,LRU" );
    ]
  in
  let onoff b = if b then "enable" else "disable" in
  let rows =
    cache_rows "icache" c.icache
    @ cache_rows "dcache" c.dcache
    @ [
        ("dcache fast read", onoff c.dcache_fast_read, "enable/disable");
        ("dcache fast write", onoff c.dcache_fast_write, "enable/disable");
        ("fast jump", onoff c.iu.fast_jump, "enable/disable");
        ("ICC hold", onoff c.iu.icc_hold, "enable/disable");
        ("fast decode", onoff c.iu.fast_decode, "enable/disable");
        ("load delay", string_of_int c.iu.load_delay, "1,2 cycles");
        ("register windows", string_of_int c.iu.reg_windows, "8,16-32");
        ( "divider",
          Arch.Config.divider_to_string c.iu.divider,
          "radix2,none" );
        ( "multiplier",
          Arch.Config.multiplier_to_string c.iu.multiplier,
          "none,iterative,16x16(+pipe),32x8,32x16,32x32" );
        ("infer mult/div", string_of_bool c.infer_mult_div, "true/false");
      ]
  in
  List.iter (fun (p, d, v) -> pf ppf "  %-22s %-10s %s@." p d v) rows;
  pf ppf "  parameter values: %d (paper counts 79)@."
    Arch.Space.parameter_value_count;
  pf ppf "  one-at-a-time variables: %d@." Arch.Space.one_at_a_time_count;
  pf ppf
    "  exhaustive cross product: %d (paper reports 3,641,573,376 with a \
     coarser value accounting)@."
    Arch.Space.exhaustive_count;
  pf ppf "  structurally valid: %d@." Arch.Space.exhaustive_valid_count;
  pf ppf "  dcache-only exhaustive (paper Section 5): %d@."
    Arch.Space.dcache_exhaustive_full_count

(* --- Figure 2 --- *)

type fig2 = {
  points : Exhaustive.point list;
  optimal : Exhaustive.point;
}

let run_fig2 app =
  let points = Exhaustive.dcache_sweep app in
  { points; optimal = Exhaustive.best_runtime points }

let point_row ppf (p : Exhaustive.point) =
  let d = p.Exhaustive.config.Arch.Config.dcache in
  match p.Exhaustive.cost with
  | None ->
      pf ppf "  %4d %8d %12s %7s %7s  (exceeds device BRAM)@." d.ways d.way_kb
        "-" "-" "-"
  | Some c ->
      pf ppf "  %4d %8d %12.3f %6d%% %6d%%@." d.ways d.way_kb c.Cost.seconds
        (Synth.Resource.lut_percent_int c.Cost.resources)
        (Synth.Resource.bram_percent_int c.Cost.resources)

let print_fig2 ppf (f : fig2) =
  pf ppf "Figure 2: BLASTN exhaustive dcache ways x way-size@.";
  pf ppf "  %4s %8s %12s %7s %7s@." "ways" "KB/way" "runtime(s)" "LUTs" "BRAM";
  List.iter (point_row ppf) f.points;
  pf ppf "  runtime-optimal:@.";
  point_row ppf f.optimal;
  let p = Paper.figure2_optimal in
  pf ppf "  paper optimal: %dx%dKB at %.2fs (%d%% LUT, %d%% BRAM)@."
    p.Paper.ways p.Paper.way_kb p.Paper.seconds p.Paper.lut_pct p.Paper.bram_pct

(* --- Figure 3 --- *)

type fig3 = {
  model : Measure.model;
  outcome : Optimizer.outcome;
}

let run_fig3 app =
  let model = Measure.build ~dims:Arch.Param.dcache_size_dims app in
  let outcome = Optimizer.run_with_model ~weights:Cost.runtime_only model in
  { model; outcome }

let config_row ppf (config : Arch.Config.t) (c : Cost.t) =
  let d = config.Arch.Config.dcache in
  pf ppf "  %4d %8d %12.3f %6d%% %6d%%@." d.ways d.way_kb c.Cost.seconds
    (Synth.Resource.lut_percent_int c.Cost.resources)
    (Synth.Resource.bram_percent_int c.Cost.resources)

let print_fig3 ppf (f : fig3) =
  pf ppf "Figure 3: optimizer's dcache model for BLASTN (w1=100, w2=0)@.";
  pf ppf "  evaluated one-at-a-time configurations:@.";
  pf ppf "  %4s %8s %12s %7s %7s@." "ways" "KB/way" "runtime(s)" "LUTs" "BRAM";
  List.iter
    (fun (r : Measure.row) -> config_row ppf r.Measure.config r.Measure.cost)
    f.model.Measure.rows;
  pf ppf "  base configuration:@.";
  config_row ppf Arch.Config.base f.model.Measure.base;
  pf ppf "  selected:@.";
  config_row ppf f.outcome.Optimizer.config f.outcome.Optimizer.actual;
  let pw, pk = Paper.figure3_selected in
  pf ppf "  paper selected: %dx%dKB@." pw pk

(* --- Figure 4 --- *)

type fig4_row = {
  app : Apps.Registry.t;
  exhaustive_best : Exhaustive.point option;
  optimizer_pick : Optimizer.outcome;
}

let dcache_insensitive points =
  let seconds =
    List.filter_map
      (fun (p : Exhaustive.point) ->
        Option.map (fun c -> c.Cost.seconds) p.Exhaustive.cost)
      points
  in
  match seconds with
  | [] -> true
  | s :: rest ->
      List.for_all (fun t -> Float.abs (t -. s) /. s < 0.0005) rest

let run_fig4 () =
  List.map
    (fun app ->
      let points = Exhaustive.dcache_sweep app in
      let exhaustive_best =
        if dcache_insensitive points then None
        else Some (Exhaustive.best_runtime points)
      in
      let model = Measure.build ~dims:Arch.Param.dcache_size_dims app in
      let optimizer_pick =
        Optimizer.run_with_model ~weights:Cost.runtime_only model
      in
      { app; exhaustive_best; optimizer_pick })
    [ Apps.Registry.drr; Apps.Registry.frag; Apps.Registry.arith ]

let print_fig4 ppf rows =
  pf ppf "Figure 4: dcache optimization for DRR, FRAG, Arith (w1=100, w2=0)@.";
  List.iter
    (fun r ->
      pf ppf "  %s:@." r.app.Apps.Registry.name;
      (match r.exhaustive_best with
      | None -> pf ppf "  exhaustive: no effect, application is not data intensive@."
      | Some p ->
          pf ppf "  exhaustive best:@.";
          point_row ppf p);
      pf ppf "  optimizer pick:@.";
      config_row ppf r.optimizer_pick.Optimizer.config
        r.optimizer_pick.Optimizer.actual;
      match List.assoc_opt r.app.Apps.Registry.name
              (List.map (fun (n, sel, s) -> (n, (sel, s))) Paper.figure4)
      with
      | Some ((w, k), s) when not (Float.is_nan s) ->
          pf ppf "  paper optimizer pick: %dx%dKB at %.3fs@." w k s
      | Some _ -> pf ppf "  paper: no effect@."
      | None -> ())
    rows

(* --- Figures 5 and 7 --- *)

let changed_params = Target_leon2.changed_params

let print_outcome_summary = Leon2.S.Optimizer.print_outcome_summary

let print_paper_summary ppf (s : Paper.opt_summary) =
  pf ppf "  paper %s: %s@." s.Paper.app
    (String.concat ", "
       (List.map (fun (k, v) -> k ^ "=" ^ v) s.Paper.params));
  pf ppf
    "    base %.2fs, predicted %.2fs, actual %.2fs (LUTs %d%%, BRAM %d%%), \
     change %+.2f%%@."
    s.Paper.base_seconds s.Paper.predicted_seconds s.Paper.actual_seconds
    s.Paper.actual_lut_pct s.Paper.actual_bram_pct
    (100.0
    *. (s.Paper.actual_seconds -. s.Paper.base_seconds)
    /. s.Paper.base_seconds)

let run_weighted weights =
  List.map
    (fun app -> Optimizer.run ~weights app)
    Apps.Registry.all

let run_fig5 () = run_weighted Cost.runtime_weights
let run_fig7 () = run_weighted Cost.resource_weights

let print_weighted title paper ppf outcomes =
  pf ppf "%s@." title;
  List.iter
    (fun o ->
      print_outcome_summary ppf o;
      let name = o.Optimizer.model.Measure.app.Apps.Registry.name in
      match List.find_opt (fun s -> s.Paper.app = name) paper with
      | Some s -> print_paper_summary ppf s
      | None -> ())
    outcomes

let print_fig5 ppf outcomes =
  print_weighted
    "Figure 5: application runtime optimization (w1=100, w2=1)"
    Paper.figure5 ppf outcomes

let print_fig7 ppf outcomes =
  print_weighted "Figure 7: chip resource optimization (w1=1, w2=100)"
    Paper.figure7 ppf outcomes

(* --- Figure 6 --- *)

let fig6_index_of_label = function
  | "icachesetsz2" -> 5
  | "icachelinesz4" -> 9
  | "dcachesetsz32" -> 19
  | "dcachelinesz4" -> 20
  | "nofastjump" -> 23
  | "noicchold" -> 24
  | "nodivider" -> 28
  | "multiplierm32x32" -> 51
  | l -> invalid_arg ("Report.fig6: unknown paper label " ^ l)

let run_fig6 model =
  List.map
    (fun ((label, _, _, _) as paper_row) ->
      (Measure.row model (fig6_index_of_label label), paper_row))
    Paper.figure6

let print_fig6 ppf model =
  pf ppf "Figure 6: BLASTN one-at-a-time costs (ours vs paper)@.";
  pf ppf "  %-18s %10s %6s %6s   %10s %6s %6s@." "parameter" "runtime" "LUT%"
    "BRAM%" "paper-rt" "LUT%" "BRAM%";
  List.iter
    (fun ((r : Measure.row), (label, ps, plut, pbram)) ->
      pf ppf "  %-18s %10.3f %5d%% %5d%%   %10.2f %5d%% %5d%%@." label
        r.Measure.cost.Cost.seconds
        (Synth.Resource.lut_percent_int r.Measure.cost.Cost.resources)
        (Synth.Resource.bram_percent_int r.Measure.cost.Cost.resources)
        ps plut pbram)
    (run_fig6 model)
