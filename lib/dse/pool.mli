(** Persistent domain pool with work-stealing scheduling.

    {!Parallel.map} used to spawn (and join) a fresh set of domains on
    every call; model building, exhaustive sweeps and the evaluation
    engine all fan out repeatedly, so domain start-up cost and the
    risk of oversubscription grew with every new client.  This pool
    spawns its worker domains once and keeps them parked on a
    condition variable between batches.

    Scheduling is work-stealing: each worker owns a deque, submitted
    tasks are distributed round-robin, a worker pops its own newest
    task (LIFO) and steals the oldest (FIFO) from a sibling when its
    deque runs dry.  The submitting caller also executes tasks while
    it waits, which (a) adds one unit of parallelism and (b) makes
    nested batches — a task that itself submits a batch, e.g. the
    parallel BINLP solver invoked from inside an Engine evaluation —
    deadlock free.  A nested submitter is recognized via domain-local
    storage and helps from its own deque LIFO-first, like the worker
    loop, instead of only stealing.

    Worker exceptions are re-raised in the submitter with their
    original backtraces ({!Printexc.raise_with_backtrace}).

    Observability: every batch opens a [pool.batch] span (items and
    worker count as attributes), every executed task — including
    singleton batches and {!run_inline} fallbacks that never touch a
    deque — bumps the [dse.pool.tasks] counter, and [dse.pool.workers]
    gauges the pool size (1 when only inline execution happened). *)

type t

val create : ?workers:int -> unit -> t
(** Spawn a pool of [workers] domains (default
    [Domain.recommended_domain_count () - 1], at least 1).
    @raise Invalid_argument if [workers < 1]. *)

val default : unit -> t
(** The shared process-wide pool, created on first use and joined via
    [at_exit].  All library clients ({!Parallel.map}, {!Engine}) use
    this instance. *)

val size : t -> int
(** Worker-domain count.  The submitting caller also runs tasks, so
    effective parallelism is [size t + 1]. *)

val run_batch : t -> (unit -> unit) list -> unit
(** Execute every task to completion.  If any task raised, the first
    exception (in completion order) is re-raised with its backtrace
    after the batch drains; remaining tasks of the batch are skipped
    (not started) once a failure is recorded. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on the pool.  Singleton and empty
    lists run inline (still counted as pool tasks). *)

val solver_runner : t -> Optim.Binlp.runner
(** Adapt the pool to {!Optim.Binlp.solve}'s injected execution
    backend ([optim] sits below [dse] and cannot name the pool
    directly).  [workers] is {!size}, so a one-worker pool — the
    default on a single-core host — makes the solver take its inline
    sequential path. *)

val run_inline : (unit -> 'a) -> 'a
(** Run a task on the calling domain, counted against
    [dse.pool.tasks]; sets [dse.pool.workers] to 1 if no pool was ever
    created.  Clients use this for their single-core fallback paths so
    pool metrics stay truthful when no domains are spawned. *)

val shutdown : t -> unit
(** Stop and join the workers (idempotent).  Only needed for pools
    created explicitly in tests; {!default} shuts itself down at
    process exit. *)
