let series_to_floats = List.map (fun (a, b) -> (float_of_int a, float_of_int b))

let xy ?(width = 56) ?(height = 16) ?(x_label = "x") ?(y_label = "y") ppf points =
  if points = [] then Format.fprintf ppf "(no data)@."
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let pad lo hi = if hi -. lo < 1e-12 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
    let x0, x1 = pad (List.fold_left min infinity xs) (List.fold_left max neg_infinity xs) in
    let y0, y1 = pad (List.fold_left min infinity ys) (List.fold_left max neg_infinity ys) in
    let grid = Array.make_matrix height width ' ' in
    (* Round to the nearest cell: truncation would bias every point
       down and left by up to a full cell. *)
    List.iter
      (fun (x, y) ->
        let cx =
          int_of_float
            (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)))
        in
        let cy =
          int_of_float
            (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
        in
        grid.(height - 1 - cy).(cx) <- '*')
      points;
    Format.fprintf ppf "%s@." y_label;
    Array.iteri
      (fun r row ->
        let edge =
          if r = 0 then Printf.sprintf "%10.2f |" y1
          else if r = height - 1 then Printf.sprintf "%10.2f |" y0
          else Printf.sprintf "%10s |" ""
        in
        Format.fprintf ppf "%s%s@." edge (String.init width (Array.get row)))
      grid;
    Format.fprintf ppf "%10s +%s@." "" (String.make width '-');
    (* Right-align the x1 label with the axis edge (the fixed
       [width - 20] padding drifted with the label's width and
       collapsed entirely below width 20). *)
    let x1s = Printf.sprintf "%.2f" x1 in
    Format.fprintf ppf "%10s  %-10.2f%*s%s  (%s)@." "" x0
      (max 1 (width - 10 - String.length x1s))
      "" x1s x_label
  end
