(* Decision-provenance reports: aggregate the raw {!Obs.Journal}
   stream of one pipeline run into a structured explanation — solver
   incumbent timelines, per-candidate engine outcomes, and static-bound
   tightness — rendered as JSON or markdown.

   The report is deterministic for a deterministic run when rendered
   with [~timings:false]: candidates are sorted by (app, config), the
   incumbent timeline keeps journal order (monotone by construction),
   and all wall-clock fields are omitted — so a pinned run golden-tests
   byte-for-byte. *)

type incumbent = {
  ts_ns : int64;
  node : int;
  objective : float;
  bound : float option; (* previous best; [None] for the first *)
}

type solve = {
  nodes : int;
  pruned_bound : int;
  pruned_validity : int;
  incumbent_count : int;
  objective : float option;
  timeline : incumbent list; (* oldest first *)
}

type outcome = Hit | Build | Unfit | Dedup | Pruned | Infeasible

type candidate = {
  app : string;
  config : string;
  hits : int;
  builds : int;
  unfit : int;
  dedup : int;
  pruned : int;
  infeasible : int;
}

type accounting = {
  a_hits : int;
  a_builds : int;
  a_unfit : int;
  a_dedup : int;
  a_pruned : int;
  a_infeasible : int;
}

type tightness_stats = {
  t_count : int;
  t_min : float;
  t_mean : float;
  t_max : float;
}

type bounds_report = {
  computed : int; (* bounds.computed + bounds.verify events *)
  verified : int;
  violations : int;
  tightness : tightness_stats option;
}

type schedule_phase = {
  p_index : int;
  p_start : int;
  p_end : int;
  p_dominant : string;
}

type schedule_switch = {
  w_at : int;
  w_cycles : int;
  w_to : string;
}

type schedule_report = {
  s_phases : schedule_phase list;
  s_selects : (int * string) list;
  s_switches : schedule_switch list;
  s_static_seconds : float option;
  s_scheduled_seconds : float option;
  s_switch_cycles : int option;
  s_gain_pct : float option;
}

type t = {
  meta : (string * Obs.Json.t) list;
  solves : solve list;
  candidates : candidate list;
  account : accounting;
  bounds : bounds_report;
  schedule : schedule_report option;
}

let considered a =
  a.a_hits + a.a_builds + a.a_unfit + a.a_dedup + a.a_pruned + a.a_infeasible

(* --- field access over journal events --- *)

let str k fields =
  match List.assoc_opt k fields with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let num k fields = Option.bind (List.assoc_opt k fields) Obs.Json.to_float
let int_f k fields = Option.bind (List.assoc_opt k fields) Obs.Json.to_int

let of_events events =
  let meta = ref [] in
  let solves = ref [] in
  let open_timeline = ref [] in
  let table : (string * string, candidate) Hashtbl.t = Hashtbl.create 64 in
  let acc =
    ref
      {
        a_hits = 0;
        a_builds = 0;
        a_unfit = 0;
        a_dedup = 0;
        a_pruned = 0;
        a_infeasible = 0;
      }
  in
  let computed = ref 0 in
  let verified = ref 0 in
  let violations = ref 0 in
  let tightnesses = ref [] in
  let sched_phases = ref [] in
  let sched_selects = ref [] in
  let sched_switches = ref [] in
  let sched_verify = ref None in
  let candidate_event outcome fields =
    match (str "app" fields, str "config" fields) with
    | Some app, Some config ->
        let key = (app, config) in
        let c =
          match Hashtbl.find_opt table key with
          | Some c -> c
          | None ->
              {
                app;
                config;
                hits = 0;
                builds = 0;
                unfit = 0;
                dedup = 0;
                pruned = 0;
                infeasible = 0;
              }
        in
        let a = !acc in
        let c, a =
          match outcome with
          | Hit -> ({ c with hits = c.hits + 1 }, { a with a_hits = a.a_hits + 1 })
          | Build ->
              ({ c with builds = c.builds + 1 }, { a with a_builds = a.a_builds + 1 })
          | Unfit ->
              ({ c with unfit = c.unfit + 1 }, { a with a_unfit = a.a_unfit + 1 })
          | Dedup ->
              ({ c with dedup = c.dedup + 1 }, { a with a_dedup = a.a_dedup + 1 })
          | Pruned ->
              ({ c with pruned = c.pruned + 1 }, { a with a_pruned = a.a_pruned + 1 })
          | Infeasible ->
              ( { c with infeasible = c.infeasible + 1 },
                { a with a_infeasible = a.a_infeasible + 1 } )
        in
        Hashtbl.replace table key c;
        acc := a
    | _ -> ()
  in
  let record_tightness fields =
    computed := !computed + 1;
    match num "tightness" fields with
    | Some r -> tightnesses := r :: !tightnesses
    | None -> ()
  in
  List.iter
    (fun (e : Obs.Journal.event) ->
      let f = e.Obs.Journal.fields in
      match e.Obs.Journal.kind with
      | "run.meta" -> if !meta = [] then meta := f
      | "binlp.incumbent" ->
          let inc =
            {
              ts_ns = e.Obs.Journal.ts_ns;
              node = Option.value ~default:0 (int_f "node" f);
              objective = Option.value ~default:0.0 (num "objective" f);
              bound = num "bound" f;
            }
          in
          open_timeline := inc :: !open_timeline
      | "binlp.solve" ->
          let s =
            {
              nodes = Option.value ~default:0 (int_f "nodes" f);
              pruned_bound = Option.value ~default:0 (int_f "pruned_bound" f);
              pruned_validity =
                Option.value ~default:0 (int_f "pruned_validity" f);
              incumbent_count = Option.value ~default:0 (int_f "incumbents" f);
              objective = num "objective" f;
              timeline = List.rev !open_timeline;
            }
          in
          open_timeline := [];
          solves := s :: !solves
      | "engine.hit" -> candidate_event Hit f
      | "engine.build" -> candidate_event Build f
      | "engine.unfit" -> candidate_event Unfit f
      | "engine.dedup" -> candidate_event Dedup f
      | "engine.pruned" -> candidate_event Pruned f
      | "engine.infeasible" -> candidate_event Infeasible f
      | "schedule.phase" ->
          sched_phases :=
            {
              p_index = Option.value ~default:0 (int_f "index" f);
              p_start = Option.value ~default:0 (int_f "start" f);
              p_end = Option.value ~default:0 (int_f "end" f);
              p_dominant = Option.value ~default:"" (str "dominant" f);
            }
            :: !sched_phases
      | "schedule.select" ->
          sched_selects :=
            ( Option.value ~default:0 (int_f "phase" f),
              Option.value ~default:"" (str "params" f) )
            :: !sched_selects
      | "schedule.switch" ->
          sched_switches :=
            {
              w_at = Option.value ~default:0 (int_f "at" f);
              w_cycles = Option.value ~default:0 (int_f "cycles" f);
              w_to = Option.value ~default:"" (str "to" f);
            }
            :: !sched_switches
      | "schedule.verify" ->
          sched_verify :=
            Some
              ( num "static_seconds" f,
                num "scheduled_seconds" f,
                int_f "switch_cycles" f,
                num "gain_pct" f )
      | "bounds.computed" -> record_tightness f
      | "bounds.verify" -> (
          record_tightness f;
          verified := !verified + 1;
          match (num "actual" f, num "lo" f, num "hi" f) with
          | Some actual, Some lo, Some hi when actual < lo || actual > hi ->
              violations := !violations + 1
          | _ -> ())
      | _ -> ())
    events;
  let candidates =
    Hashtbl.fold (fun _ c l -> c :: l) table []
    |> List.sort (fun a b -> compare (a.app, a.config) (b.app, b.config))
  in
  let tightness =
    match !tightnesses with
    | [] -> None
    | ts ->
        let n = List.length ts in
        Some
          {
            t_count = n;
            t_min = List.fold_left min infinity ts;
            t_mean = List.fold_left ( +. ) 0.0 ts /. float_of_int n;
            t_max = List.fold_left max neg_infinity ts;
          }
  in
  let schedule =
    if
      !sched_phases = [] && !sched_selects = [] && !sched_switches = []
      && !sched_verify = None
    then None
    else
      let vs, vd, vc, vg =
        match !sched_verify with
        | Some (s, d, c, g) -> (s, d, c, g)
        | None -> (None, None, None, None)
      in
      Some
        {
          s_phases = List.rev !sched_phases;
          s_selects = List.rev !sched_selects;
          s_switches = List.rev !sched_switches;
          s_static_seconds = vs;
          s_scheduled_seconds = vd;
          s_switch_cycles = vc;
          s_gain_pct = vg;
        }
  in
  {
    meta = !meta;
    solves = List.rev !solves;
    candidates;
    account = !acc;
    bounds =
      {
        computed = !computed;
        verified = !verified;
        violations = !violations;
        tightness;
      };
    schedule;
  }

let of_journal () = of_events (Obs.Journal.events ())

(* --- rendering --- *)

let opt_float = function
  | Some x -> Obs.Json.Float x
  | None -> Obs.Json.Null

let incumbent_json ~timings i =
  Obs.Json.Obj
    ((if timings then [ ("t_us", Obs.Json.Float (Obs.Clock.ns_to_us i.ts_ns)) ]
      else [])
    @ [
        ("node", Obs.Json.Int i.node);
        ("objective", Obs.Json.Float i.objective);
        ("bound", opt_float i.bound);
      ])

let solve_json ~timings s =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int s.nodes);
      ("pruned_bound", Obs.Json.Int s.pruned_bound);
      ("pruned_validity", Obs.Json.Int s.pruned_validity);
      ("incumbents", Obs.Json.Int s.incumbent_count);
      ("objective", opt_float s.objective);
      ("timeline", Obs.Json.List (List.map (incumbent_json ~timings) s.timeline));
    ]

let candidate_json c =
  Obs.Json.Obj
    [
      ("app", Obs.Json.String c.app);
      ("config", Obs.Json.String c.config);
      ("hits", Obs.Json.Int c.hits);
      ("builds", Obs.Json.Int c.builds);
      ("unfit", Obs.Json.Int c.unfit);
      ("dedup", Obs.Json.Int c.dedup);
      ("pruned", Obs.Json.Int c.pruned);
      ("infeasible", Obs.Json.Int c.infeasible);
    ]

let opt_int = function Some x -> Obs.Json.Int x | None -> Obs.Json.Null

let schedule_json s =
  Obs.Json.Obj
    [
      ( "phases",
        Obs.Json.List
          (List.map
             (fun p ->
               Obs.Json.Obj
                 [
                   ("index", Obs.Json.Int p.p_index);
                   ("start", Obs.Json.Int p.p_start);
                   ("end", Obs.Json.Int p.p_end);
                   ("dominant", Obs.Json.String p.p_dominant);
                 ])
             s.s_phases) );
      ( "selects",
        Obs.Json.List
          (List.map
             (fun (phase, params) ->
               Obs.Json.Obj
                 [
                   ("phase", Obs.Json.Int phase);
                   ("params", Obs.Json.String params);
                 ])
             s.s_selects) );
      ( "switches",
        Obs.Json.List
          (List.map
             (fun w ->
               Obs.Json.Obj
                 [
                   ("at", Obs.Json.Int w.w_at);
                   ("cycles", Obs.Json.Int w.w_cycles);
                   ("to", Obs.Json.String w.w_to);
                 ])
             s.s_switches) );
      ("static_seconds", opt_float s.s_static_seconds);
      ("scheduled_seconds", opt_float s.s_scheduled_seconds);
      ("switch_cycles", opt_int s.s_switch_cycles);
      ("gain_pct", opt_float s.s_gain_pct);
    ]

let to_json ?(timings = true) t =
  let a = t.account in
  Obs.Json.Obj
    ([
       ("meta", Obs.Json.Obj t.meta);
      ("solves", Obs.Json.List (List.map (solve_json ~timings) t.solves));
      ("candidates", Obs.Json.List (List.map candidate_json t.candidates));
      ( "accounting",
        Obs.Json.Obj
          [
            ("considered", Obs.Json.Int (considered a));
            ("hits", Obs.Json.Int a.a_hits);
            ("builds", Obs.Json.Int a.a_builds);
            ("unfit", Obs.Json.Int a.a_unfit);
            ("dedup", Obs.Json.Int a.a_dedup);
            ("pruned", Obs.Json.Int a.a_pruned);
            ("infeasible", Obs.Json.Int a.a_infeasible);
          ] );
      ( "bounds",
        Obs.Json.Obj
          ([
             ("computed", Obs.Json.Int t.bounds.computed);
             ("verified", Obs.Json.Int t.bounds.verified);
             ("violations", Obs.Json.Int t.bounds.violations);
           ]
          @
          match t.bounds.tightness with
          | None -> []
          | Some s ->
              [
                ( "tightness",
                  Obs.Json.Obj
                    [
                      ("count", Obs.Json.Int s.t_count);
                      ("min", Obs.Json.Float s.t_min);
                      ("mean", Obs.Json.Float s.t_mean);
                      ("max", Obs.Json.Float s.t_max);
                    ] );
              ]) );
    ]
    @
    match t.schedule with
    | None -> []
    | Some s -> [ ("schedule", schedule_json s) ])

let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let to_markdown ?(timings = true) t =
  let b = Buffer.create 4096 in
  buf_addf b "# Decision provenance\n";
  if t.meta <> [] then begin
    buf_addf b "\n## Run\n\n";
    List.iter
      (fun (k, v) -> buf_addf b "- %s: %s\n" k (Obs.Json.to_string v))
      t.meta
  end;
  List.iteri
    (fun i s ->
      buf_addf b "\n## Solve %d\n\n" (i + 1);
      buf_addf b
        "nodes: %d, pruned (bound): %d, pruned (validity): %d, incumbents: %d"
        s.nodes s.pruned_bound s.pruned_validity s.incumbent_count;
      (match s.objective with
      | Some o -> buf_addf b ", objective: %g\n" o
      | None -> buf_addf b ", no feasible solution\n");
      if s.timeline <> [] then begin
        if timings then begin
          buf_addf b "\n| node | objective | prev best | t (us) |\n";
          buf_addf b "|---:|---:|---:|---:|\n";
          List.iter
            (fun i ->
              buf_addf b "| %d | %g | %s | %.1f |\n" i.node i.objective
                (match i.bound with Some x -> Printf.sprintf "%g" x | None -> "-")
                (Obs.Clock.ns_to_us i.ts_ns))
            s.timeline
        end
        else begin
          buf_addf b "\n| node | objective | prev best |\n";
          buf_addf b "|---:|---:|---:|\n";
          List.iter
            (fun i ->
              buf_addf b "| %d | %g | %s |\n" i.node i.objective
                (match i.bound with Some x -> Printf.sprintf "%g" x | None -> "-"))
            s.timeline
        end
      end)
    t.solves;
  let a = t.account in
  buf_addf b "\n## Candidates\n\n";
  buf_addf b
    "considered: %d (hits %d, builds %d, unfit %d, dedup %d, pruned %d, \
     infeasible %d)\n"
    (considered a) a.a_hits a.a_builds a.a_unfit a.a_dedup a.a_pruned
    a.a_infeasible;
  if t.candidates <> [] then begin
    buf_addf b "\n| app | config | hits | builds | unfit | dedup | pruned | infeasible |\n";
    buf_addf b "|---|---|---:|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun c ->
        buf_addf b "| %s | `%s` | %d | %d | %d | %d | %d | %d |\n" c.app
          c.config c.hits c.builds c.unfit c.dedup c.pruned c.infeasible)
      t.candidates
  end;
  buf_addf b "\n## Static bounds\n\n";
  buf_addf b "computed: %d, verified: %d, violations: %d\n" t.bounds.computed
    t.bounds.verified t.bounds.violations;
  (match t.bounds.tightness with
  | None -> ()
  | Some s ->
      buf_addf b "tightness (lo/hi): min %.4f, mean %.4f, max %.4f over %d\n"
        s.t_min s.t_mean s.t_max s.t_count);
  (match t.schedule with
  | None -> ()
  | Some s ->
      buf_addf b "\n## Schedule\n";
      if s.s_phases <> [] then begin
        buf_addf b "\n| phase | insns | dominant | selected |\n";
        buf_addf b "|---:|---|---|---|\n";
        List.iter
          (fun p ->
            buf_addf b "| %d | [%d, %d) | %s | `%s` |\n" p.p_index p.p_start
              p.p_end p.p_dominant
              (match List.assoc_opt p.p_index s.s_selects with
              | Some params -> params
              | None -> "-"))
          s.s_phases
      end;
      if s.s_switches <> [] then begin
        buf_addf b "\n| switch at insn | cycles | to |\n";
        buf_addf b "|---:|---:|---|\n";
        List.iter
          (fun w -> buf_addf b "| %d | %d | `%s` |\n" w.w_at w.w_cycles w.w_to)
          s.s_switches
      end;
      match (s.s_static_seconds, s.s_scheduled_seconds) with
      | Some st, Some sc ->
          buf_addf b
            "\nstatic %.6f s vs scheduled %.6f s (switches: %s cycles), gain \
             %s%%\n"
            st sc
            (match s.s_switch_cycles with
            | Some c -> string_of_int c
            | None -> "-")
            (match s.s_gain_pct with
            | Some g -> Printf.sprintf "%.3f" g
            | None -> "-")
      | _ -> ());
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_json ?timings path t =
  write_file path (Obs.Json.to_string (to_json ?timings t) ^ "\n")

let write_markdown ?timings path t = write_file path (to_markdown ?timings t)
