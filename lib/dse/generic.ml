module type DOMAIN = sig
  type config

  val name : string
  val base : config
  val dimension_names : string array
  val measure : config -> float array
  val feasible : config -> bool

  type group = {
    label : string;
    options : (string * (config -> config)) list;
  }

  val groups : group list
  val budgets : (int * float) array
end

module Make (D : DOMAIN) = struct
  type row = {
    group : string;
    option_label : string;
    deltas : float array;
  }

  type outcome = {
    base_costs : float array;
    rows : row list;
    selected : (string * string) list;
    config : D.config;
    predicted : float array;
    actual : float array;
  }

  let ndims = Array.length D.dimension_names

  let check_measurement costs =
    if Array.length costs <> ndims then
      failwith (D.name ^ ": measurement dimension mismatch");
    Array.iter
      (fun c -> if c <= 0.0 then failwith (D.name ^ ": non-positive base cost"))
      costs

  (* One flat option list; each carries its group index for SOS1. *)
  type opt = {
    o_group : int;
    o_labels : string * string;
    o_apply : D.config -> D.config;
    o_deltas : float array;     (* percent per dimension *)
    o_raw : float array;        (* raw deltas, for budgets *)
  }

  let build_model () =
    let base_costs = D.measure D.base in
    check_measurement base_costs;
    let opts = ref [] in
    List.iteri
      (fun gi (g : D.group) ->
        List.iter
          (fun (label, apply) ->
            let config = apply D.base in
            if D.feasible config then begin
              let costs = D.measure config in
              let o_deltas =
                Array.init ndims (fun d ->
                    100.0 *. (costs.(d) -. base_costs.(d)) /. base_costs.(d))
              in
              let o_raw =
                Array.init ndims (fun d -> costs.(d) -. base_costs.(d))
              in
              opts :=
                {
                  o_group = gi;
                  o_labels = (g.label, label);
                  o_apply = apply;
                  o_deltas;
                  o_raw;
                }
                :: !opts
            end)
          g.options)
      D.groups;
    (base_costs, List.rev !opts)

  let optimize ~weights =
    if Array.length weights <> ndims then
      invalid_arg (D.name ^ ": one weight per dimension required");
    let base_costs, opts = build_model () in
    let oarr = Array.of_list opts in
    let nvars = Array.length oarr in
    let objective =
      Array.map
        (fun o ->
          let s = ref 0.0 in
          Array.iteri (fun d w -> s := !s +. (w *. o.o_deltas.(d))) weights;
          !s)
        oarr
    in
    let groups =
      List.mapi
        (fun gi _ ->
          List.filter (fun j -> oarr.(j).o_group = gi) (List.init nvars Fun.id))
        D.groups
      |> List.filter (fun g -> List.length g >= 2)
    in
    let budget_constraints =
      Array.to_list D.budgets
      |> List.map (fun (dim, cap) ->
             Optim.Binlp.linear
               {
                 Optim.Binlp.coeffs =
                   List.init nvars (fun j -> (j, oarr.(j).o_raw.(dim)));
                 const = 0.0;
               }
               Optim.Binlp.Le
               (cap -. base_costs.(dim)))
    in
    let problem =
      { Optim.Binlp.nvars; objective; groups; constraints = budget_constraints }
    in
    let solved =
      Optim.Binlp.solve ~runner:(Pool.solver_runner (Pool.default ())) problem
    in
    match solved.Optim.Binlp.best with
    | None -> failwith (D.name ^ ": no feasible selection")
    | Some solution ->
        let chosen =
          List.filter (fun j -> solution.Optim.Binlp.x.(j)) (List.init nvars Fun.id)
        in
        let config =
          List.fold_left (fun c j -> oarr.(j).o_apply c) D.base chosen
        in
        let predicted =
          Array.init ndims (fun d ->
              List.fold_left (fun acc j -> acc +. oarr.(j).o_deltas.(d)) 0.0 chosen)
        in
        let actual_costs = D.measure config in
        let actual =
          Array.init ndims (fun d ->
              100.0 *. (actual_costs.(d) -. base_costs.(d)) /. base_costs.(d))
        in
        {
          base_costs;
          rows =
            List.map
              (fun o ->
                { group = fst o.o_labels; option_label = snd o.o_labels; deltas = o.o_deltas })
              opts;
          selected = List.map (fun j -> oarr.(j).o_labels) chosen;
          config;
          predicted;
          actual;
        }
end
