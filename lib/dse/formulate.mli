(** The paper's Section 4 problem formulation.

    Translates a measured model into a constrained Binary Integer
    Nonlinear Program over the decision variables x1..x52:

    - objective: minimize [sum (w1 rho_i + w2 (lambda_i + beta_i)) x_i];
    - SOS1 constraints: at most one value per multi-valued parameter;
    - LEON validity couplings: LRR requires 2-way associativity
      ([x10 <= x1], [x21 <= x12]), LRU requires multi-way
      ([x11 <= x1+x2+x3], [x22 <= x12+x13+x14]);
    - FPGA resource constraints: total extra LUT%% <= L and BRAM%% <= B
      (the headroom left by the base configuration), where each cache's
      cost is the {e product} of its ways term [(1 + x_w2 + 2 x_w3 +
      3 x_w4)] and its per-way size deltas — the paper keeps the LUT
      constraint linear (LUT variation is small) and the BRAM
      constraint nonlinear; [variant] lets you swap either, which is
      how the paper's "LUTs%%-nonlin" and "BRAM%%-lin" rows arise. *)

type variant = Stack.variant = {
  lut_nonlinear : bool;  (** default false, as in the paper *)
  bram_linear : bool;    (** default false, as in the paper *)
}

val paper_variant : variant
val make : ?variant:variant -> Cost.weights -> Measure.model -> Optim.Binlp.problem

val make_custom :
  objective:(Measure.row -> float) ->
  ?variant:variant ->
  Measure.model ->
  Optim.Binlp.problem
(** Same constraints, arbitrary per-variable objective — used by
    extensions such as the energy optimizer. *)

val vars_of_solution : Measure.model -> Optim.Binlp.solution -> Arch.Param.var list
(** Decode: the selected perturbations, in paper index order. *)

val predicted_deltas :
  ?variant:variant -> Measure.model -> Arch.Param.var list -> Cost.deltas
(** The optimizer's linear-superposition cost approximation for a set
    of simultaneous perturbations: rho by summation; lambda/beta by the
    constraint-side formulas of [variant] (product form where
    nonlinear, plain summation where linear). *)
