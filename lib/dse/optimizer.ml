type prediction = {
  seconds : float;
  lut_percent : float;
  lut_percent_alt : float;
  bram_percent : float;
  bram_percent_alt : float;
}

type outcome = {
  model : Measure.model;
  weights : Cost.weights;
  solution : Optim.Binlp.solution;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  predicted : prediction;
  actual : Cost.t;
}

let predict ?variant model selected =
  let variant =
    match variant with None -> Formulate.paper_variant | Some v -> v
  in
  let d = Formulate.predicted_deltas ~variant model selected in
  let alt =
    Formulate.predicted_deltas
      ~variant:
        {
          Formulate.lut_nonlinear = not variant.Formulate.lut_nonlinear;
          bram_linear = not variant.Formulate.bram_linear;
        }
      model selected
  in
  let base = model.Measure.base in
  {
    seconds = base.Cost.seconds *. (1.0 +. (d.Cost.rho /. 100.0));
    lut_percent =
      Synth.Resource.lut_percent base.Cost.resources +. d.Cost.lambda;
    lut_percent_alt =
      Synth.Resource.lut_percent base.Cost.resources +. alt.Cost.lambda;
    bram_percent =
      Synth.Resource.bram_percent base.Cost.resources +. d.Cost.beta;
    bram_percent_alt =
      Synth.Resource.bram_percent base.Cost.resources +. alt.Cost.beta;
  }

(* The pipeline's four phases — measure, formulate, solve, verify — as
   spans, so a trace shows at a glance where a reconfiguration run
   spends its time ([Measure.build] opens the measure phase itself). *)
let run_with_model ?variant ~weights model =
  let app = model.Measure.app.Apps.Registry.name in
  let attrs = [ ("app", Obs.Json.String app) ] in
  let problem =
    Obs.Span.with_ ~cat:"dse" "phase.formulate" ~attrs (fun () ->
        Formulate.make ?variant weights model)
  in
  let solved =
    Obs.Span.with_ ~cat:"dse" "phase.solve" ~attrs (fun () ->
        Optim.Binlp.solve problem)
  in
  match solved with
  | None -> failwith "Optimizer: BINLP infeasible"
  | Some solution ->
      Obs.Span.with_ ~cat:"dse" "phase.verify" ~attrs @@ fun () ->
      let selected = Formulate.vars_of_solution model solution in
      let config = Arch.Param.apply_all Arch.Config.base selected in
      (match Arch.Config.validate config with
      | Ok () -> ()
      | Error m -> failwith ("Optimizer: decoded configuration invalid: " ^ m));
      (* Verify-by-build is noise-free even when the model was noisy:
         the recommendation is judged against reality. *)
      let actual = Engine.eval (Engine.default ()) model.Measure.app config in
      {
        model;
        weights;
        solution;
        selected;
        config;
        predicted = predict ?variant model selected;
        actual;
      }

let run ?noise ?dims ?variant ~weights app =
  let model =
    Obs.Span.with_ ~cat:"dse" "phase.measure"
      ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      (fun () -> Measure.build ?noise ?dims app)
  in
  run_with_model ?variant ~weights model

let pp_selected ppf vars =
  Fmt.(list ~sep:comma string)
    ppf
    (List.map (fun (v : Arch.Param.var) -> v.Arch.Param.label) vars)
