include Leon2.S.Optimizer
