(* Work-stealing deque: the owner pushes and pops newest at the back,
   thieves take the oldest from the front.  A plain mutex per deque is
   enough at this granularity — tasks are simulator runs, so queue
   operations are noise next to task bodies. *)
module Deque = struct
  type 'a t = {
    m : Mutex.t;
    mutable front : 'a list; (* oldest first *)
    mutable back : 'a list; (* newest first *)
  }

  let create () = { m = Mutex.create (); front = []; back = [] }

  let push t x =
    Mutex.lock t.m;
    t.back <- x :: t.back;
    Mutex.unlock t.m

  let pop_back t =
    Mutex.lock t.m;
    let r =
      match t.back with
      | x :: rest ->
          t.back <- rest;
          Some x
      | [] -> (
          match List.rev t.front with
          | x :: rest ->
              t.front <- [];
              t.back <- rest;
              Some x
          | [] -> None)
    in
    Mutex.unlock t.m;
    r

  let pop_front t =
    Mutex.lock t.m;
    let r =
      match t.front with
      | x :: rest ->
          t.front <- rest;
          Some x
      | [] -> (
          match List.rev t.back with
          | x :: rest ->
              t.back <- [];
              t.front <- rest;
              Some x
          | [] -> None)
    in
    Mutex.unlock t.m;
    r
end

type task = unit -> unit

type t = {
  deques : task Deque.t array; (* one per worker *)
  mutex : Mutex.t; (* sleep/wake of idle workers *)
  cond : Condition.t;
  pending : int Atomic.t; (* enqueued tasks not yet popped *)
  rr : int Atomic.t; (* round-robin submission cursor *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let m_tasks =
  Obs.Metrics.Counter.v "dse.pool.tasks"
    ~help:"tasks executed by the evaluation domain pool"

let g_workers =
  Obs.Metrics.Gauge.v "dse.pool.workers"
    ~help:"peak worker domains in the evaluation domain pool"

(* Peak high-water mark, never lowered: exporters (bench JSON, the
   history gate) snapshot metrics after searches finish, which may be
   after every pool was shut down and joined — the interesting value
   is how wide the pool ever was, not its post-join width. *)
let note_workers w =
  if w > Obs.Metrics.Gauge.value g_workers then
    Obs.Metrics.Gauge.set g_workers w

let size t = Array.length t.deques

(* Worker identity, set once per worker domain.  A nested [run_batch]
   submitted from inside a pool task (e.g. the parallel BINLP solver
   called by an Engine evaluation) helps with the submitting worker's
   own deque LIFO-first instead of only stealing, exactly like the
   worker loop itself. *)
let dls_worker : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self_index t =
  match Domain.DLS.get dls_worker with
  | Some (p, i) when p == t -> i
  | _ -> -1

(* Take one task: worker [i] pops its own deque's back, then steals
   from siblings' fronts; [i = -1] (the submitting caller) only
   steals.  Decrements [pending] exactly when a task is obtained. *)
let take t i =
  let n = Array.length t.deques in
  let own = if i >= 0 then Deque.pop_back t.deques.(i) else None in
  let r =
    match own with
    | Some _ -> own
    | None ->
        let start = if i >= 0 then i + 1 else 0 in
        let rec steal k =
          if k >= n then None
          else
            match Deque.pop_front t.deques.((start + k) mod n) with
            | Some _ as r -> r
            | None -> steal (k + 1)
        in
        steal 0
  in
  (match r with Some _ -> Atomic.decr t.pending | None -> ());
  r

(* Every executed task — queued on a worker, run by the helping
   submitter, or run inline on the caller (singleton batches, the
   single-core fallback) — goes through [counted], so [dse.pool.tasks]
   accounts for all evaluation work, not just what crossed a deque. *)
let counted f =
  Obs.Metrics.Counter.incr m_tasks;
  f ()

let run_task (task : task) = counted task

let run_inline f =
  (* Inline execution means the calling domain is the whole "pool";
     reflect that in the worker gauge rather than leaving it at 0. *)
  note_workers 1.0;
  counted f

let worker t i () =
  Domain.DLS.set dls_worker (Some (t, i));
  let rec loop () =
    match take t i with
    | Some task ->
        run_task task;
        loop ()
    | None ->
        Mutex.lock t.mutex;
        while (not t.stop) && Atomic.get t.pending = 0 do
          Condition.wait t.cond t.mutex
        done;
        let finished = t.stop && Atomic.get t.pending = 0 in
        Mutex.unlock t.mutex;
        if not finished then loop ()
  in
  loop ()

let create ?workers () =
  let workers =
    match workers with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Pool.create: workers must be >= 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      deques = Array.init workers (fun _ -> Deque.create ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      pending = Atomic.make 0;
      rr = Atomic.make 0;
      stop = false;
      domains = [];
    }
  in
  note_workers (float_of_int workers);
  t.domains <- List.init workers (fun i -> Domain.spawn (worker t i));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let enqueue t task =
  let i = Atomic.fetch_and_add t.rr 1 land max_int mod Array.length t.deques in
  Deque.push t.deques.(i) task;
  Atomic.incr t.pending

let run_batch t tasks =
  match tasks with
  | [] -> ()
  | [ f ] -> counted f
  | _ ->
      let n = List.length tasks in
      Obs.Span.with_ ~cat:"dse" "pool.batch"
        ~attrs:
          [ ("items", Obs.Json.Int n); ("workers", Obs.Json.Int (size t)) ]
      @@ fun () ->
      let remaining = Atomic.make n in
      let failure = Atomic.make None in
      let bm = Mutex.create () in
      let bc = Condition.create () in
      let wrap f () =
        (if Atomic.get failure = None then
           match f () with
           | () -> ()
           | exception e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock bm;
          Condition.broadcast bc;
          Mutex.unlock bm
        end
      in
      List.iter (fun f -> enqueue t (wrap f)) tasks;
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      (* The submitter helps: run queued tasks (of this batch or a
         concurrent one) until this batch completes — popping its own
         deque first when the submitter is itself a worker of this
         pool (nested batch), stealing otherwise.  It parks on [bc]
         only when nothing is queued anywhere, i.e. the rest of the
         batch is already executing on workers. *)
      let self = self_index t in
      let rec help () =
        if Atomic.get remaining > 0 then begin
          (match take t self with
          | Some task -> run_task task
          | None ->
              Mutex.lock bm;
              if Atomic.get remaining > 0 && Atomic.get t.pending = 0 then
                Condition.wait bc bm;
              Mutex.unlock bm);
          help ()
        end
      in
      help ();
      (match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ counted (fun () -> f x) ]
  | _ ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let output = Array.make n None in
      run_batch t (List.init n (fun i () -> output.(i) <- Some (f input.(i))));
      Array.to_list
        (Array.map (function Some y -> y | None -> assert false) output)

(* Adapt a pool to the solver's injected execution backend ([optim]
   cannot depend on [dse], so Binlp takes this record instead of a
   pool).  [workers = size t]: on a single-core host the default pool
   has one worker, so the solver takes its inline path and node
   accounting stays exactly sequential; with >= 2 workers it splits
   the frontier and the batch runs here with the submitter helping. *)
let solver_runner t =
  {
    Optim.Binlp.workers = size t;
    run_batch = (fun tasks -> run_batch t tasks);
  }

let default_mutex = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        at_exit (fun () -> shutdown p);
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p
