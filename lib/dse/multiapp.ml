include Leon2.S.Multiapp
