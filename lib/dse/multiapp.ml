type workload = (Apps.Registry.t * float) list

type outcome = {
  workload : workload;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  mix_gain_percent : float;
  per_app : (Apps.Registry.t * float) list;
}

let normalize workload =
  if workload = [] then invalid_arg "Multiapp.optimize: empty workload";
  List.iter
    (fun (_, s) ->
      if s <= 0.0 then invalid_arg "Multiapp.optimize: shares must be positive")
    workload;
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 workload in
  List.map (fun (app, s) -> (app, s /. total)) workload

(* Combine per-application models into one: runtime deltas are weighted
   by share, resource deltas taken from the first model (they depend on
   the configuration only). *)
let combine (models : (Measure.model * float) list) =
  match models with
  | [] -> invalid_arg "Multiapp.combine: no models"
  | (first, _) :: _ ->
      let rows =
        List.map
          (fun (r : Measure.row) ->
            let rho =
              List.fold_left
                (fun acc ((m : Measure.model), share) ->
                  let mr = Measure.row m r.Measure.var.Arch.Param.index in
                  acc +. (share *. mr.Measure.deltas.Cost.rho))
                0.0 models
            in
            { r with Measure.deltas = { r.Measure.deltas with Cost.rho = rho } })
          first.Measure.rows
      in
      Measure.with_rows first rows

(* Through the engine (not a bare [Apps.Registry.seconds]) so every
   verification simulation is memoized and counted in [dse.builds] —
   the base point is always a cache hit (measured during model
   building). *)
let runtime_change app config =
  let engine = Engine.default () in
  let base = (Engine.eval engine app Arch.Config.base).Cost.seconds in
  let tuned = (Engine.eval engine app config).Cost.seconds in
  100.0 *. (tuned -. base) /. base

let optimize ?dims ~weights workload =
  let workload = normalize workload in
  let models =
    List.map (fun (app, share) -> (Measure.build ?dims app, share)) workload
  in
  let model = combine models in
  let problem = Formulate.make weights model in
  match Optim.Binlp.solve problem with
  | None -> failwith "Multiapp.optimize: infeasible"
  | Some solution ->
      let selected = Formulate.vars_of_solution model solution in
      let config = Arch.Param.apply_all Arch.Config.base selected in
      let per_app =
        List.map (fun (app, _) -> (app, runtime_change app config)) workload
      in
      let mix_gain_percent =
        List.fold_left2
          (fun acc (_, share) (_, change) -> acc +. (share *. change))
          0.0 workload per_app
      in
      { workload; selected; config; mix_gain_percent; per_app }

let print ppf o =
  Format.fprintf ppf "  workload: %s@."
    (String.concat " + "
       (List.map
          (fun (app, s) ->
            Printf.sprintf "%.0f%% %s" (100.0 *. s) app.Apps.Registry.name)
          o.workload));
  Format.fprintf ppf "  reconfigured: %s@."
    (String.concat ", "
       (List.map (fun (k, v) -> k ^ "=" ^ v) (Report.changed_params o.config)));
  List.iter
    (fun (app, change) ->
      Format.fprintf ppf "    %-8s %+7.2f%%@." app.Apps.Registry.name change)
    o.per_app;
  Format.fprintf ppf "  mix: %+7.2f%%@." o.mix_gain_percent
