(** Decision-provenance reports over the {!Obs.Journal} stream.

    One pipeline run with journalling enabled leaves a raw event
    stream: per-candidate engine outcomes (hit / build / unfit /
    in-flight dedup / bounds-pruned / infeasible), solver incumbent
    improvements, and static-bound tightness checks.  [of_journal]
    aggregates it into a report answering "why did the run do what it
    did": the incumbent timeline of every solve, a per-candidate
    outcome table whose totals reconcile with the [dse.*] metrics
    ([builds = dse.builds], [hits = dse.engine.hits],
    [pruned = dse.bounds.pruned]), and tightness statistics of every
    bound the run computed.

    Rendered with [~timings:false] the report contains no wall-clock
    fields and candidates are sorted by (app, config), so a pinned
    deterministic run golden-tests byte-for-byte. *)

type incumbent = {
  ts_ns : int64;
  node : int;  (** branch-and-bound node at which the incumbent landed *)
  objective : float;
  bound : float option;  (** previous best objective; [None] for the first *)
}

type solve = {
  nodes : int;
  pruned_bound : int;
  pruned_validity : int;
  incumbent_count : int;
  objective : float option;  (** [None]: infeasible *)
  timeline : incumbent list;  (** oldest first *)
}

type candidate = {
  app : string;
  config : string;  (** the codec's canonical encoding *)
  hits : int;
  builds : int;
  unfit : int;
  dedup : int;
  pruned : int;
  infeasible : int;
}

type accounting = {
  a_hits : int;
  a_builds : int;
  a_unfit : int;
  a_dedup : int;
  a_pruned : int;
  a_infeasible : int;
}

type tightness_stats = {
  t_count : int;
  t_min : float;
  t_mean : float;
  t_max : float;
}

type bounds_report = {
  computed : int;
  verified : int;  (** verify-phase cross-checks of a built result *)
  violations : int;  (** actual runtime outside its static bounds *)
  tightness : tightness_stats option;  (** [None] when no ratios exist *)
}

type schedule_phase = {
  p_index : int;
  p_start : int;  (** first retired instruction *)
  p_end : int;  (** one past the last retired instruction *)
  p_dominant : string;  (** coarse behavioral class *)
}

type schedule_switch = {
  w_at : int;  (** retired-instruction boundary of the switch *)
  w_cycles : int;  (** reconfiguration cycles charged *)
  w_to : string;  (** parameters of the installed configuration *)
}

type schedule_report = {
  s_phases : schedule_phase list;  (** journal order = phase order *)
  s_selects : (int * string) list;  (** (phase, selected parameters) *)
  s_switches : schedule_switch list;
  s_static_seconds : float option;
  s_scheduled_seconds : float option;
  s_switch_cycles : int option;
  s_gain_pct : float option;
}
(** Aggregated [schedule.*] events of a phase-aware run: detected
    phases, the per-phase selections, every reconfiguration switch,
    and the verified static-vs-scheduled comparison. *)

type t = {
  meta : (string * Obs.Json.t) list;  (** the run's [run.meta] event *)
  solves : solve list;
  candidates : candidate list;  (** sorted by (app, config) *)
  account : accounting;
  bounds : bounds_report;
  schedule : schedule_report option;
      (** [None] when the run recorded no [schedule.*] events, so
          static-run reports are unchanged *)
}

val considered : accounting -> int
(** Total engine decisions: the sum of all six outcome counts. *)

val of_events : Obs.Journal.event list -> t

val of_journal : unit -> t
(** [of_events (Obs.Journal.events ())]. *)

val to_json : ?timings:bool -> t -> Obs.Json.t
(** Stable field order.  [~timings:false] (default [true]) omits every
    wall-clock field for golden testing. *)

val to_markdown : ?timings:bool -> t -> string

val write_json : ?timings:bool -> string -> t -> unit
(** Write {!to_json} (newline-terminated) to a file. *)

val write_markdown : ?timings:bool -> string -> t -> unit
