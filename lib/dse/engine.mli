(** The shared evaluation engine: every [(application, configuration)
    → cost] evaluation in the DSE stack goes through here.

    The paper's bottleneck is evaluation cost — each candidate
    configuration costs a ~30-minute synthesis, which is why it
    measures only 52 one-at-a-time perturbations.  Our reproduction
    inherits that shape in software: simulation plus resource
    estimation dominates every experiment's wall clock, and the
    experiments overlap heavily (the base configuration is re-measured
    by nearly every client; the Figure 2/3/4 sweeps share points with
    the one-at-a-time model).  The engine turns that cross-experiment
    redundancy into cache hits.

    {b Memoization.}  Results are stored in a content-addressed memo
    cache keyed by [(target name, application name, digest of the
    target codec's canonical encoding, noise amplitude)].  Evaluation
    is
    deterministic — the simulator is cycle-accurate and the synthesis
    model analytic, with {e deterministic} per-configuration
    measurement noise — so a memoized result is bit-identical to a
    recomputation.  Distinct noise amplitudes occupy distinct keys,
    which is what makes noise-ablation studies safe: they never
    observe each other's (differently perturbed) measurements.
    Including the target name keeps two targets that happen to share a
    configuration encoding from ever colliding in the cache.

    {b Targets.}  The [_on] family evaluates any backend through its
    {!Target.probe}; the unsuffixed functions are the LEON2-typed
    entry points, equivalent to passing [Target_leon2.probe].

    {b Deduplication.}  Concurrent requests for an in-flight key wait
    for the winner's result instead of recomputing, and the batch APIs
    collapse repeated requests before scheduling.

    {b Parallelism.}  Batch evaluations fan out on the persistent
    {!Pool} (work-stealing domain pool) instead of spawning domains
    per call.

    {b Observability.}  [dse.engine.hits], [dse.engine.misses] and
    [dse.engine.inflight_dedup] count cache behavior;
    [dse.builds] counts configurations actually synthesized and
    executed (i.e. cache misses that reached the simulator); each miss
    runs under an [engine.build] span. *)

type t

val default : unit -> t
(** The shared process-wide engine (on the {!Pool.default} pool),
    created on first use.  All library clients use this instance, so
    one experiment's evaluations are the next one's cache hits. *)

val create : ?pool:Pool.t -> unit -> t
(** A fresh engine with an empty cache (for tests).  An explicit
    [pool] is always used for batches; otherwise {!Pool.default} is
    resolved lazily and only on hosts with more than one core —
    single-core machines run batches inline, where a second domain is
    pure stop-the-world overhead. *)

val clear : t -> unit
(** Drop every cached result (counters are unaffected).  For tests
    that need a cold engine. *)

val eval_on :
  ?noise:float -> t -> 'c Target.probe -> Apps.Registry.t -> 'c -> Cost.t
(** Synthesize and run one configuration of an arbitrary target,
    memoized under the probe's target name.
    @raise Invalid_argument on structurally invalid configurations. *)

val eval_profiled_on :
  ?noise:float ->
  t ->
  'c Target.probe ->
  Apps.Registry.t ->
  'c ->
  Cost.t * Sim.Profiler.t

val eval_feasible_on :
  ?noise:float -> t -> 'c Target.probe -> Apps.Registry.t -> 'c -> Cost.t option
(** [None] when the configuration is invalid per the probe or exceeds
    the probe's device budget. *)

val eval_segments_on :
  ?noise:float ->
  t ->
  'c Target.probe ->
  phase:string ->
  segmented:(Apps.Registry.t -> 'c -> float * Sim.Profiler.t * Sim.Profiler.t list) ->
  Apps.Registry.t ->
  'c ->
  Cost.t * Sim.Profiler.t list
(** Per-phase measurement: like {!eval_on}, but the simulation is the
    caller-supplied [segmented] function returning [(seconds,
    whole-run profile, per-phase profiles)], and the memo key is
    extended with [phase] — the segmentation digest (see
    {!Sim.Phase.digest}) — so the same configuration's whole-run and
    per-phase measurements coexist in the cache, and two different
    segmentations never collide.  [segmented] must be deterministic
    for the [(phase, configuration)] pair. *)

val eval_all_segments_on :
  ?noise:float ->
  t ->
  'c Target.probe ->
  phase:string ->
  segmented:(Apps.Registry.t -> 'c -> float * Sim.Profiler.t * Sim.Profiler.t list) ->
  Apps.Registry.t ->
  'c list ->
  (Cost.t * Sim.Profiler.t list) list
(** Batch {!eval_segments_on} for one application, in input order,
    with the same deduplication and pooling as {!eval_all}. *)

type admission =
  | Infeasible  (** structurally invalid or exceeds the device *)
  | Pruned of float * float
      (** skipped without simulating: the static {e lower} runtime
          bound already exceeds the caller's cutoff; carries the
          [(lo, hi)] static bounds in seconds *)
  | Evaluated of Cost.t  (** admitted and fully evaluated *)

val eval_bounded_on :
  ?noise:float ->
  cutoff:(Synth.Resource.t -> float) ->
  t ->
  'c Target.probe ->
  Apps.Registry.t ->
  'c ->
  admission
(** {!eval_feasible_on} with a static-bounds admission gate.  When the
    probe carries a [static_bounds] model and
    [cutoff resources < infinity], the configuration's sound static
    runtime bounds are computed first ([dse.bounds.computed]); a
    candidate whose {e best-case} runtime strictly exceeds the cutoff
    is provably dominated and returned as {!Pruned} without touching
    the simulator ([dse.bounds.pruned]).  [cutoff] receives the same
    (noised) resource estimate a full evaluation would report, so
    callers can fold the resource share of their objective into the
    runtime cutoff.  Returning [infinity] disables pruning for that
    candidate; probes without [static_bounds] always evaluate.
    Pruning is exact, not heuristic: searches driven through this path
    select byte-identical winners, just with fewer simulations. *)

val eval_all_on :
  ?noise:float -> t -> 'c Target.probe -> (Apps.Registry.t * 'c) list -> Cost.t list

val eval_all_feasible_on :
  ?noise:float ->
  t ->
  'c Target.probe ->
  Apps.Registry.t ->
  'c list ->
  Cost.t option list

val eval : ?noise:float -> t -> Apps.Registry.t -> Arch.Config.t -> Cost.t
(** Synthesize and run one configuration, memoized.  [noise] is the
    deterministic LUT measurement-noise amplitude (fraction of the
    device); see {!Measure}.
    @raise Invalid_argument on structurally invalid configurations. *)

val eval_profiled :
  ?noise:float -> t -> Apps.Registry.t -> Arch.Config.t -> Cost.t * Sim.Profiler.t
(** Like {!eval} but also returns the execution profile of the
    (memoized) simulation — the energy model charges per-event costs
    from it without a second run. *)

val eval_feasible :
  ?noise:float -> t -> Apps.Registry.t -> Arch.Config.t -> Cost.t option
(** [None] when the configuration is structurally invalid or exceeds
    the device.  Resources are elaborated {e once} and reused for both
    the feasibility check (on the un-noised estimate, as
    {!Synth.Estimate.feasible} judges it) and the returned cost;
    over-capacity configurations are cached without ever reaching the
    simulator. *)

val eval_all :
  ?noise:float -> t -> (Apps.Registry.t * Arch.Config.t) list -> Cost.t list
(** Batch {!eval}, in input order.  Repeated requests are collapsed
    before scheduling (counted as [dse.engine.inflight_dedup]) and the
    distinct ones fan out on the pool. *)

val eval_all_feasible :
  ?noise:float -> t -> Apps.Registry.t -> Arch.Config.t list -> Cost.t option list
(** Batch {!eval_feasible} for one application, in input order, with
    the same deduplication and pooling as {!eval_all}. *)
