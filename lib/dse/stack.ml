(* The paper's pipeline, functorized over a {!Target.S} backend.

   [Make (T)] instantiates the whole measure → formulate → solve →
   verify stack for one soft core: the LEON2-typed modules of this
   library ({!Measure}, {!Formulate}, {!Optimizer}, {!Exhaustive},
   {!Heuristic}, {!Ablation}, {!Multiapp}) are [Make (Target_leon2)]
   re-exported (see [leon2.ml]), and additional backends such as the
   MicroBlaze-like core run the very same code paths.

   All percentage normalizations (lambda/beta in points of the device,
   resource headroom) are relative to the target's own device, so a
   small-device backend gets binding resource constraints instead of
   inheriting LEON2's headroom. *)

type variant = {
  lut_nonlinear : bool;
  bram_linear : bool;
}

let paper_variant = { lut_nonlinear = false; bram_linear = false }

let m_heuristic_builds =
  Obs.Metrics.Counter.v "heuristic.builds"
    ~help:"configurations built by heuristic searches"

let m_heuristic_pruned =
  Obs.Metrics.Counter.v "heuristic.pruned"
    ~help:"candidates skipped without simulating (static arguments)"

module Make (T : Target.S) = struct
  (* Device-relative percentages: identical to {!Synth.Resource}'s for
     the LEON2 instance (same device), target-specific otherwise. *)
  let lut_percent (r : Synth.Resource.t) =
    100.0 *. float_of_int r.Synth.Resource.luts /. float_of_int T.device_luts

  let bram_percent (r : Synth.Resource.t) =
    100.0 *. float_of_int r.Synth.Resource.brams /. float_of_int T.device_brams

  let lut_percent_int (r : Synth.Resource.t) =
    r.Synth.Resource.luts * 100 / T.device_luts

  let bram_percent_int (r : Synth.Resource.t) =
    r.Synth.Resource.brams * 100 / T.device_brams

  let fits (r : Synth.Resource.t) =
    r.Synth.Resource.luts <= T.device_luts
    && r.Synth.Resource.brams <= T.device_brams

  let deltas ~base (c : Cost.t) =
    {
      Cost.rho =
        100.0 *. (c.Cost.seconds -. base.Cost.seconds) /. base.Cost.seconds;
      lambda = lut_percent c.Cost.resources -. lut_percent base.Cost.resources;
      beta = bram_percent c.Cost.resources -. bram_percent base.Cost.resources;
    }

  let headroom_luts (c : Cost.t) = 100.0 -. lut_percent c.Cost.resources
  let headroom_brams (c : Cost.t) = 100.0 -. bram_percent c.Cost.resources

  module Measure = struct
    type row = {
      var : T.var;
      config : T.config;
      cost : Cost.t;
      deltas : Cost.deltas;
    }

    type model = {
      app : Apps.Registry.t;
      base : Cost.t;
      rows : row list;
      by_index : (int, row) Hashtbl.t;
    }

    let index_rows rows =
      let h = Hashtbl.create (max 16 (List.length rows)) in
      List.iter (fun r -> Hashtbl.replace h r.var.T.index r) rows;
      h

    let model_of app ~base rows = { app; base; rows; by_index = index_rows rows }
    let with_rows m rows = { m with rows; by_index = index_rows rows }

    let measure ?noise app config =
      Engine.eval_on ?noise (Engine.default ()) T.probe app config

    let reference_config = T.reference_config

    let build ?noise ?dims ?jobs app =
      Obs.Span.with_span ~cat:"dse" "measure.build"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun span ->
      (* Force the compiled program before any domain fan-out: Lazy is
         not domain-safe. *)
      ignore (Lazy.force app.Apps.Registry.program);
      let base = measure ?noise app T.base in
      let selected_groups =
        match dims with None -> T.groups | Some ds -> ds
      in
      let vars =
        List.filter (fun v -> List.mem v.T.group selected_groups) T.vars
      in
      Obs.Span.add_attr span "perturbations" (Obs.Json.Int (List.length vars));
      let measure_var var =
        Obs.Span.with_span ~cat:"dse" "measure.perturbation"
          ~attrs:[ ("label", Obs.Json.String var.T.label) ]
        @@ fun vspan ->
        let reference = reference_config var in
        let config = var.T.apply reference in
        let cost = measure ?noise app config in
        let ref_cost =
          if T.equal reference T.base then base
          else measure ?noise app reference
        in
        Obs.Span.add_attr vspan "sim_cycles"
          (Obs.Json.Int
             (int_of_float (cost.Cost.seconds *. Sim.Machine.clock_hz)));
        Obs.Span.add_attr vspan "luts"
          (Obs.Json.Int cost.Cost.resources.Synth.Resource.luts);
        Obs.Span.add_attr vspan "brams"
          (Obs.Json.Int cost.Cost.resources.Synth.Resource.brams);
        (* Marginal deltas relative to the reference, expressed against
           the base runtime as the paper's percentages are. *)
        let d = deltas ~base:ref_cost cost in
        let rho =
          100.0 *. (cost.Cost.seconds -. ref_cost.Cost.seconds)
          /. base.Cost.seconds
        in
        { var; config = var.T.apply T.base; cost; deltas = { d with Cost.rho } }
      in
      model_of app ~base (Parallel.map ?jobs measure_var vars)

    let row model index =
      match Hashtbl.find_opt model.by_index index with
      | Some r -> r
      | None -> raise Not_found
  end

  module Formulate = struct
    (* Solver variable j <-> model row j. *)
    let index_table (model : Measure.model) =
      let tbl = Hashtbl.create 64 in
      List.iteri
        (fun j (r : Measure.row) -> Hashtbl.add tbl r.Measure.var.T.index j)
        model.Measure.rows;
      tbl

    let solver_var tbl paper_index = Hashtbl.find_opt tbl paper_index

    (* A cache's ways factor: the explicit multipliers of [T.products]
       on top of the implicit single base way. *)
    let product_factor tbl pairs =
      let coeffs =
        List.filter_map
          (fun (i, m) ->
            match solver_var tbl i with Some j -> Some (j, m) | None -> None)
          pairs
      in
      { Optim.Binlp.coeffs; const = 1.0 }

    let lin_of tbl (model : Measure.model) get indices =
      let coeffs =
        List.filter_map
          (fun i ->
            match solver_var tbl i with
            | Some j ->
                let r = List.nth model.Measure.rows j in
                Some (j, get r.Measure.deltas)
            | None -> None)
          indices
      in
      { Optim.Binlp.coeffs; const = 0.0 }

    let range a b = List.init (b - a + 1) (fun k -> a + k)

    (* The indices outside every product's size list, ascending: their
       deltas enter the resource expressions linearly. *)
    let linear_indices =
      let in_products = List.concat_map snd T.products in
      List.filter (fun i -> not (List.mem i in_products)) (range 1 T.var_count)

    (* Resource expression (in percentage points of the device) for one
       metric, as constraint terms.  Nonlinear: per-cache products of
       the ways factor and the per-way size deltas, plus everything
       else linear; the paper's Section 4 FPGA resource constraints. *)
    let resource_terms tbl model get ~nonlinear =
      if not nonlinear then
        [ Optim.Binlp.Lin (lin_of tbl model get (range 1 T.var_count)) ]
      else
        List.map
          (fun (factor, sizes) ->
            Optim.Binlp.Prod
              (product_factor tbl factor, lin_of tbl model get sizes))
          T.products
        @ [ Optim.Binlp.Lin (lin_of tbl model get linear_indices) ]

    let coupling tbl antecedent consequents =
      (* antecedent <= sum of consequents, i.e. x_a - sum x_c <= 0. *)
      match solver_var tbl antecedent with
      | None -> None
      | Some ja ->
          let cons = List.filter_map (solver_var tbl) consequents in
          if cons = [] then
            (* No way to satisfy the coupling: forbid the antecedent. *)
            Some
              (Optim.Binlp.linear
                 { Optim.Binlp.coeffs = [ (ja, 1.0) ]; const = 0.0 }
                 Optim.Binlp.Le 0.0)
          else
            Some
              (Optim.Binlp.linear
                 {
                   Optim.Binlp.coeffs =
                     (ja, 1.0) :: List.map (fun j -> (j, -1.0)) cons;
                   const = 0.0;
                 }
                 Optim.Binlp.Le 0.0)

    let make_custom ~objective ?(variant = paper_variant) (model : Measure.model)
        =
      let tbl = index_table model in
      let rows = Array.of_list model.Measure.rows in
      let nvars = Array.length rows in
      let objective = Array.map objective rows in
      let groups =
        List.filter_map
          (fun g ->
            let members =
              List.filter_map
                (fun v -> solver_var tbl v.T.index)
                (T.group_members g)
            in
            if List.length members >= 2 then Some members else None)
          T.groups
      in
      let couplings =
        List.filter_map (fun (a, cs) -> coupling tbl a cs) T.couplings
      in
      let lut_terms =
        resource_terms tbl model
          (fun d -> d.Cost.lambda)
          ~nonlinear:variant.lut_nonlinear
      in
      let bram_terms =
        resource_terms tbl model
          (fun d -> d.Cost.beta)
          ~nonlinear:(not variant.bram_linear)
      in
      let resource_constraints =
        [
          { Optim.Binlp.terms = lut_terms; rel = Optim.Binlp.Le;
            bound = headroom_luts model.Measure.base };
          { Optim.Binlp.terms = bram_terms; rel = Optim.Binlp.Le;
            bound = headroom_brams model.Measure.base };
        ]
      in
      {
        Optim.Binlp.nvars;
        objective;
        groups;
        constraints = couplings @ resource_constraints;
      }

    let make ?variant (weights : Cost.weights) model =
      make_custom
        ~objective:(fun (r : Measure.row) ->
          Cost.objective weights r.Measure.deltas)
        ?variant model

    let vars_of_solution (model : Measure.model) (s : Optim.Binlp.solution) =
      List.filteri (fun j _ -> s.Optim.Binlp.x.(j)) model.Measure.rows
      |> List.map (fun (r : Measure.row) -> r.Measure.var)
      |> List.sort (fun (a : T.var) (b : T.var) -> compare a.T.index b.T.index)

    let predicted_deltas ?(variant = paper_variant) (model : Measure.model) vars
        =
      let tbl = index_table model in
      let nvars = List.length model.Measure.rows in
      let x = Array.make nvars false in
      List.iter
        (fun (v : T.var) ->
          match solver_var tbl v.T.index with
          | Some j -> x.(j) <- true
          | None ->
              invalid_arg "Formulate.predicted_deltas: variable not in model")
        vars;
      let eval terms =
        List.fold_left
          (fun acc t ->
            acc
            +.
            match t with
            | Optim.Binlp.Lin l -> Optim.Binlp.eval_lin l x
            | Optim.Binlp.Prod (l1, l2) ->
                Optim.Binlp.eval_lin l1 x *. Optim.Binlp.eval_lin l2 x)
          0.0 terms
      in
      let rho =
        List.fold_left
          (fun acc (r : Measure.row) ->
            if x.(Hashtbl.find tbl r.Measure.var.T.index) then
              acc +. r.Measure.deltas.Cost.rho
            else acc)
          0.0 model.Measure.rows
      in
      let lambda =
        eval
          (resource_terms tbl model
             (fun d -> d.Cost.lambda)
             ~nonlinear:variant.lut_nonlinear)
      in
      let beta =
        eval
          (resource_terms tbl model
             (fun d -> d.Cost.beta)
             ~nonlinear:(not variant.bram_linear))
      in
      { Cost.rho; lambda; beta }
  end

  module Optimizer = struct
    type prediction = {
      seconds : float;
      lut_percent : float;
      lut_percent_alt : float;
      bram_percent : float;
      bram_percent_alt : float;
    }

    type outcome = {
      model : Measure.model;
      weights : Cost.weights;
      solution : Optim.Binlp.solution;
      selected : T.var list;
      config : T.config;
      predicted : prediction;
      actual : Cost.t;
    }

    let predict ?variant model selected =
      let variant =
        match variant with None -> paper_variant | Some v -> v
      in
      let d = Formulate.predicted_deltas ~variant model selected in
      let alt =
        Formulate.predicted_deltas
          ~variant:
            {
              lut_nonlinear = not variant.lut_nonlinear;
              bram_linear = not variant.bram_linear;
            }
          model selected
      in
      let base = model.Measure.base in
      {
        seconds = base.Cost.seconds *. (1.0 +. (d.Cost.rho /. 100.0));
        lut_percent = lut_percent base.Cost.resources +. d.Cost.lambda;
        lut_percent_alt = lut_percent base.Cost.resources +. alt.Cost.lambda;
        bram_percent = bram_percent base.Cost.resources +. d.Cost.beta;
        bram_percent_alt = bram_percent base.Cost.resources +. alt.Cost.beta;
      }

    (* The pipeline's four phases — measure, formulate, solve, verify —
       as spans, so a trace shows at a glance where a reconfiguration
       run spends its time ([Measure.build] opens the measure phase
       itself). *)
    let run_with_model ?variant ~weights (model : Measure.model) =
      let app = model.Measure.app.Apps.Registry.name in
      let attrs = [ ("app", Obs.Json.String app) ] in
      let problem =
        Obs.Span.with_ ~cat:"dse" "phase.formulate" ~attrs (fun () ->
            Formulate.make ?variant weights model)
      in
      let solved =
        Obs.Span.with_ ~cat:"dse" "phase.solve" ~attrs (fun () ->
            Optim.Binlp.solve
              ~runner:(Pool.solver_runner (Pool.default ()))
              problem)
      in
      (* Node_limit_reached still carries the incumbent; a feasible
         incumbent is usable even if optimality was not proven. *)
      match solved.Optim.Binlp.best with
      | None -> failwith "Optimizer: BINLP infeasible"
      | Some solution ->
          Obs.Span.with_ ~cat:"dse" "phase.verify" ~attrs @@ fun () ->
          let selected = Formulate.vars_of_solution model solution in
          let config = T.apply_all T.base selected in
          (match T.validate config with
          | Ok () -> ()
          | Error m ->
              failwith ("Optimizer: decoded configuration invalid: " ^ m));
          (* Verify-by-build is noise-free even when the model was
             noisy: the recommendation is judged against reality. *)
          let actual =
            Engine.eval_on (Engine.default ()) T.probe model.Measure.app config
          in
          (* Sanitizer, never a prune: the verification build is part
             of the reported outcome, so it always runs; the static
             bounds only cross-check it.  A violation means the bounds
             analysis or the simulator is wrong. *)
          (match T.probe.Target.static_bounds with
          | None -> ()
          | Some bounds_of ->
              let lo, hi = bounds_of model.Measure.app config in
              Obs.Metrics.Counter.incr Bounds.m_computed;
              if Obs.Journal.enabled () then
                Obs.Journal.record ~kind:"bounds.verify"
                  [
                    ("app", Obs.Json.String app);
                    ("config", Obs.Json.String (T.to_string config));
                    ("lo", Obs.Json.Float lo);
                    ("hi", Obs.Json.Float hi);
                    ("actual", Obs.Json.Float actual.Cost.seconds);
                    ( "tightness",
                      match Bounds.tightness ~lo ~hi with
                      | Some r -> Obs.Json.Float r
                      | None -> Obs.Json.Null );
                  ];
              if actual.Cost.seconds < lo || actual.Cost.seconds > hi then begin
                Obs.Metrics.Counter.incr Bounds.m_violations;
                Format.eprintf
                  "verify(%s/%s): runtime %.9fs outside static bounds [%.9f, \
                   %.9f]@."
                  T.name app actual.Cost.seconds lo hi
              end);
          {
            model;
            weights;
            solution;
            selected;
            config;
            predicted = predict ?variant model selected;
            actual;
          }

    let run ?noise ?dims ?variant ~weights app =
      let model =
        Obs.Span.with_ ~cat:"dse" "phase.measure"
          ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
          (fun () -> Measure.build ?noise ?dims app)
      in
      run_with_model ?variant ~weights model

    let pp_selected ppf vars =
      Fmt.(list ~sep:comma string)
        ppf
        (List.map (fun (v : T.var) -> v.T.label) vars)

    let print_outcome_summary ppf (o : outcome) =
      let pf = Format.fprintf in
      let name = o.model.Measure.app.Apps.Registry.name in
      pf ppf "  %s:@." name;
      pf ppf "    reconfigured: %s@."
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (T.changed_params o.config)));
      let base = o.model.Measure.base in
      let p = o.predicted in
      pf ppf "    base runtime %.3fs@." base.Cost.seconds;
      pf ppf
        "    predicted: %.3fs, LUTs %.1f%% (nonlin %.1f%%), BRAM %.1f%% (lin \
         %.1f%%)@."
        p.seconds p.lut_percent p.lut_percent_alt p.bram_percent
        p.bram_percent_alt;
      let a = o.actual in
      pf ppf "    actual build: %.3fs, LUTs %d%%, BRAM %d%%@." a.Cost.seconds
        (lut_percent_int a.Cost.resources)
        (bram_percent_int a.Cost.resources);
      pf ppf "    runtime change: %+.2f%% (predicted %+.2f%%)@."
        (100.0 *. (a.Cost.seconds -. base.Cost.seconds) /. base.Cost.seconds)
        (100.0 *. (p.seconds -. base.Cost.seconds) /. base.Cost.seconds)
  end

  module Exhaustive = struct
    type point = {
      config : T.config;
      cost : Cost.t option;
    }

    (* One batched engine call: resources are elaborated once per point
       (feasibility and cost share the estimate), infeasible points
       never reach the simulator, and the feasible ones fan out on the
       pool. *)
    let sweep app configs =
      Engine.eval_all_feasible_on (Engine.default ()) T.probe app configs
      |> List.map2 (fun config cost -> { config; cost }) configs

    let geometry_sweep app = sweep app T.sweep_configs

    let feasible_points points =
      List.filter_map
        (fun p -> match p.cost with Some c -> Some (p, c) | None -> None)
        points

    let argmin key points =
      match feasible_points points with
      | [] -> raise Not_found
      | first :: rest ->
          let better a b = if key (snd a) <= key (snd b) then a else b in
          fst (List.fold_left better first rest)

    let best_runtime points =
      argmin
        (fun (c : Cost.t) ->
          ( c.Cost.seconds,
            c.Cost.resources.Synth.Resource.brams,
            c.Cost.resources.Synth.Resource.luts ))
        points

    let best_weighted weights ~base points =
      argmin
        (fun c -> (Cost.objective weights (deltas ~base c), 0, 0))
        points

    (* [sweep] + [best_runtime] with the engine's bounds-admission
       gate: the candidate with the smallest static worst case is
       simulated first, and its actual runtime prunes every candidate
       whose static best case is already slower.  Pruned points have
       [seconds >= lo > incumbent.seconds >= min seconds], so they can
       neither win nor tie the lexicographic argmin: the selected
       point is byte-identical to a full sweep's, with fewer
       simulations. *)
    let best_runtime_search app configs =
      match T.probe.Target.static_bounds with
      | None -> best_runtime (sweep app configs)
      | Some bounds_of -> (
          let engine = Engine.default () in
          ignore (Lazy.force app.Apps.Registry.program);
          let cands = List.filter T.feasible configs in
          match cands with
          | [] -> raise Not_found
          | first :: rest ->
              let static_hi config = snd (bounds_of app config) in
              let seed, _ =
                List.fold_left
                  (fun (bc, bh) c ->
                    let h = static_hi c in
                    if h < bh then (c, h) else (bc, bh))
                  (first, static_hi first)
                  rest
              in
              let incumbent = Engine.eval_on engine T.probe app seed in
              let cutoff (_ : Synth.Resource.t) = incumbent.Cost.seconds in
              let points =
                List.map
                  (fun config ->
                    if T.equal config seed then
                      { config; cost = Some incumbent }
                    else
                      match
                        Engine.eval_bounded_on engine ~cutoff T.probe app
                          config
                      with
                      | Engine.Evaluated cost -> { config; cost = Some cost }
                      | Engine.Infeasible | Engine.Pruned _ ->
                          { config; cost = None })
                  cands
              in
              best_runtime points)
  end

  module Heuristic = struct
    type result = {
      config : T.config;
      cost : Cost.t;
      objective : float;
      builds : int;
      pruned : int;
    }

    let evaluate ~weights ~base app config =
      let cost = Engine.eval_on (Engine.default ()) T.probe app config in
      (cost, Cost.objective weights (deltas ~base cost))

    (* The runtime above which a feasible candidate with resource
       estimate [r] provably cannot reach an objective strictly below
       [obj]: from [w1 rho + w2 (lambda + beta) < obj] with
       [rho = 100 (s - b) / b].  The epsilon makes the cutoff strictly
       conservative under floating-point rounding (prune less, never
       more).  With [w1 <= 0] runtime does not constrain the objective
       at all, so no candidate can be pruned on runtime bounds. *)
    let objective_cutoff ~weights ~(base : Cost.t) obj (r : Synth.Resource.t) =
      if weights.Cost.w1 <= 0.0 then infinity
      else
        let lambda = lut_percent r -. lut_percent base.Cost.resources in
        let beta = bram_percent r -. bram_percent base.Cost.resources in
        let s =
          base.Cost.seconds
          *. (1.0
             +. (obj -. (weights.Cost.w2 *. (lambda +. beta)))
                /. (100.0 *. weights.Cost.w1))
        in
        s +. (1e-9 *. (Float.abs s +. 1.0))

    let random_search ?(seed = 0x5EA7C4) ~builds ~weights app =
      if builds < 1 then
        invalid_arg "Heuristic.random_search: builds must be >= 1";
      Obs.Span.with_ ~cat:"dse" "heuristic.random_search"
        ~attrs:
          [
            ("app", Obs.Json.String app.Apps.Registry.name);
            ("builds", Obs.Json.Int builds);
          ]
      @@ fun () ->
      let rng = Sim.Rng.create ~seed in
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let best = ref (T.base, base, 0.0) in
      let spent = ref 0 in
      let pruned = ref 0 in
      (* Admission cutoff against the current incumbent: tightens as
         the search improves. *)
      let cutoff r =
        let _, _, best_obj = !best in
        objective_cutoff ~weights ~base best_obj r
      in
      while !spent < builds do
        let config = T.random_config rng in
        (* The engine elaborates resources once for the feasibility
           check, the bounds cutoff and the cost; infeasible draws are
           free. *)
        match Engine.eval_bounded_on engine ~cutoff T.probe app config with
        | Engine.Infeasible -> ()
        | Engine.Pruned _ ->
            (* A feasible draw that provably cannot beat the
               incumbent: it consumes budget exactly as the losing
               build it replaces would, so the draw sequence and the
               winner are unchanged — only the simulation count
               drops. *)
            incr spent;
            incr pruned
        | Engine.Evaluated cost ->
            incr spent;
            Obs.Metrics.Counter.incr m_heuristic_builds;
            let objective = Cost.objective weights (deltas ~base cost) in
            let _, _, best_obj = !best in
            if objective < best_obj then best := (config, cost, objective)
      done;
      let config, cost, objective = !best in
      { config; cost; objective; builds = builds - !pruned; pruned = !pruned }

    (* Skipping is trajectory-preserving: a pruned candidate has the
       exact runtime of the incumbent and no better LUT or BRAM count,
       so with the (non-negative) weighted objective it can never win
       the strict improvement test.  Both configurations are feasible
       here, so [T.resources] is total. *)
    let prunable ft current candidate =
      T.statically_equivalent ft current candidate
      &&
      let rcan = T.resources candidate and rcur = T.resources current in
      rcan.Synth.Resource.luts >= rcur.Synth.Resource.luts
      && rcan.Synth.Resource.brams >= rcur.Synth.Resource.brams

    let coordinate_descent ?(max_sweeps = 5) ?features ~weights app =
      Obs.Span.with_span ~cat:"dse" "heuristic.coordinate_descent"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun span ->
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let builds = ref 0 in
      let pruned = ref 0 in
      let current = ref T.base in
      let current_obj = ref 0.0 in
      let improved = ref true in
      let sweeps = ref 0 in
      while !improved && !sweeps < max_sweeps do
        improved := false;
        incr sweeps;
        List.iter
          (fun g ->
            List.iter
              (fun apply ->
                let candidate = apply !current in
                if (not (T.equal candidate !current)) && T.feasible candidate
                then begin
                  match features with
                  | Some ft when prunable ft !current candidate ->
                      incr pruned;
                      Obs.Metrics.Counter.incr m_heuristic_pruned
                  | _ -> (
                      (* Bounds admission against the strict
                         improvement threshold: a pruned candidate
                         provably fails [objective < current - 1e-9],
                         so the descent trajectory is unchanged. *)
                      let cutoff =
                        objective_cutoff ~weights ~base
                          (!current_obj -. 1e-9)
                      in
                      match
                        Engine.eval_bounded_on engine ~cutoff T.probe app
                          candidate
                      with
                      | Engine.Infeasible -> ()
                      | Engine.Pruned _ ->
                          incr pruned;
                          Obs.Metrics.Counter.incr m_heuristic_pruned
                      | Engine.Evaluated cost ->
                          incr builds;
                          Obs.Metrics.Counter.incr m_heuristic_builds;
                          let objective =
                            Cost.objective weights (deltas ~base cost)
                          in
                          if objective < !current_obj -. 1e-9 then begin
                            current := candidate;
                            current_obj := objective;
                            improved := true
                          end)
                end)
              (T.group_options g))
          T.groups
      done;
      let cost = Engine.eval_on engine T.probe app !current in
      Obs.Span.add_attr span "builds" (Obs.Json.Int !builds);
      Obs.Span.add_attr span "pruned" (Obs.Json.Int !pruned);
      {
        config = !current;
        cost;
        objective = !current_obj;
        builds = !builds;
        pruned = !pruned;
      }

    let paper_method ~weights app =
      Obs.Span.with_ ~cat:"dse" "heuristic.paper_method"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun () ->
      let model = Measure.build app in
      let o = Optimizer.run_with_model ~weights model in
      (* Builds the pipeline actually spends: the base, one per row,
         one per distinct non-base reference configuration (the 2-way
         replacement references on LEON2), and the verification
         build. *)
      let repl_references =
        List.sort_uniq compare
          (List.filter_map
             (fun (r : Measure.row) ->
               let reference = T.reference_config r.Measure.var in
               if T.equal reference T.base then None
               else Some (T.to_string reference))
             model.Measure.rows)
        |> List.length
      in
      {
        config = o.Optimizer.config;
        cost = o.Optimizer.actual;
        objective =
          Cost.objective weights
            (deltas ~base:model.Measure.base o.Optimizer.actual);
        builds = 1 + List.length model.Measure.rows + repl_references + 1;
        pruned = 0;
      }

    let print_comparison ppf app_name results =
      Format.fprintf ppf "  %s:@." app_name;
      Format.fprintf ppf "    %-22s %8s %8s %12s %10s@." "method" "builds"
        "pruned" "objective" "runtime(s)";
      List.iteri
        (fun k r ->
          let name =
            match k with
            | 0 -> "paper (model+BINLP)"
            | 1 -> "coordinate descent"
            | _ -> Printf.sprintf "random search"
          in
          Format.fprintf ppf "    %-22s %8d %8d %12.2f %10.3f@." name r.builds
            r.pruned r.objective r.cost.Cost.seconds)
        results
  end

  module Ablation = struct
    type noise_point = {
      amplitude : float;
      outcome : Optimizer.outcome;
      objective_regret : float;
    }

    (* True (noise-free) objective of an already-built configuration.
       Noise-free evaluations live under their own cache key, so they
       are never contaminated by the perturbed measurements of the
       study. *)
    let true_objective weights app config =
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let cost = Engine.eval_on engine T.probe app config in
      Cost.objective weights (deltas ~base cost)

    let noise_study ?(amplitudes = [ 0.0; 0.002; 0.005; 0.01 ]) ~weights app =
      let reference =
        let o = Optimizer.run ~weights app in
        true_objective weights app o.Optimizer.config
      in
      List.map
        (fun amplitude ->
          let outcome =
            if amplitude = 0.0 then Optimizer.run ~weights app
            else Optimizer.run ~noise:amplitude ~weights app
          in
          let obj = true_objective weights app outcome.Optimizer.config in
          { amplitude; outcome; objective_regret = obj -. reference })
        amplitudes

    type variant_point = {
      variant : variant;
      outcome : Optimizer.outcome;
      bram_prediction_error : float;
    }

    let variant_study ~weights model =
      let variants =
        [
          { lut_nonlinear = false; bram_linear = false };
          { lut_nonlinear = true; bram_linear = false };
          { lut_nonlinear = false; bram_linear = true };
          { lut_nonlinear = true; bram_linear = true };
        ]
      in
      List.map
        (fun variant ->
          let outcome = Optimizer.run_with_model ~variant ~weights model in
          let actual = bram_percent outcome.Optimizer.actual.Cost.resources in
          {
            variant;
            outcome;
            bram_prediction_error =
              outcome.Optimizer.predicted.Optimizer.bram_percent -. actual;
          })
        variants

    type independence_point = {
      app : Apps.Registry.t;
      predicted_gain : float;
      actual_gain : float;
    }

    let independence_study ~weights =
      List.map
        (fun app ->
          let o = Optimizer.run ~weights app in
          let base = o.Optimizer.model.Measure.base.Cost.seconds in
          {
            app;
            predicted_gain =
              100.0 *. (o.Optimizer.predicted.Optimizer.seconds -. base)
              /. base;
            actual_gain =
              100.0 *. (o.Optimizer.actual.Cost.seconds -. base) /. base;
          })
        Apps.Registry.all

    let pf = Format.fprintf

    let print_noise ppf points =
      pf ppf "Ablation: synthesis measurement noise (LUT measurements)@.";
      pf ppf "  %9s %9s  %s@." "amplitude" "regret" "selected parameters";
      List.iter
        (fun (p : noise_point) ->
          let params =
            T.changed_params p.outcome.Optimizer.config
            |> List.map (fun (k, v) -> k ^ "=" ^ v)
            |> String.concat ", "
          in
          pf ppf "  %8.1f%% %+9.3f  %s@." (100.0 *. p.amplitude)
            p.objective_regret params)
        points;
      pf ppf
        "  (regret: true weighted objective relative to the noise-free pick; \
         the paper's 'registers=28..31 (sub-optimal)' rows are this effect)@."

    let print_variants ppf points =
      pf ppf "Ablation: constraint linearity (paper Section 4/6)@.";
      pf ppf "  %-12s %-12s %12s %10s %10s@." "LUT model" "BRAM model"
        "runtime(s)" "BRAM%" "pred.err";
      List.iter
        (fun (p : variant_point) ->
          pf ppf "  %-12s %-12s %12.3f %9.1f%% %+9.2f%s@."
            (if p.variant.lut_nonlinear then "nonlinear" else "linear")
            (if p.variant.bram_linear then "linear" else "nonlinear")
            p.outcome.Optimizer.actual.Cost.seconds
            (bram_percent p.outcome.Optimizer.actual.Cost.resources)
            p.bram_prediction_error
            (if fits p.outcome.Optimizer.actual.Cost.resources then ""
             else "  DOES NOT FIT THE DEVICE"))
        points;
      pf ppf
        "  (the linear BRAM model misses the ways x size interaction, \
         under-predicts — the paper's BRAM%%-lin rows — and here selects a \
         configuration the device cannot hold)@."

    let print_independence ppf points =
      pf ppf "Ablation: the parameter-independence assumption@.";
      pf ppf "  %-8s %12s %12s %12s@." "app" "predicted" "actual" "error";
      List.iter
        (fun p ->
          pf ppf "  %-8s %+11.2f%% %+11.2f%% %+11.2f%%@."
            p.app.Apps.Registry.name p.predicted_gain p.actual_gain
            (p.predicted_gain -. p.actual_gain))
        points;
      pf ppf
        "  (negative error = the optimizer over-promises, the paper's DRR \
         case: overlapping cache gains add up linearly in the model)@."
  end

  module Multiapp = struct
    type workload = (Apps.Registry.t * float) list

    type outcome = {
      workload : workload;
      selected : T.var list;
      config : T.config;
      mix_gain_percent : float;
      per_app : (Apps.Registry.t * float) list;
    }

    let normalize workload =
      if workload = [] then invalid_arg "Multiapp.optimize: empty workload";
      List.iter
        (fun (_, s) ->
          if s <= 0.0 then
            invalid_arg "Multiapp.optimize: shares must be positive")
        workload;
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 workload in
      List.map (fun (app, s) -> (app, s /. total)) workload

    (* Combine per-application models into one: runtime deltas are
       weighted by share, resource deltas taken from the first model
       (they depend on the configuration only). *)
    let combine (models : (Measure.model * float) list) =
      match models with
      | [] -> invalid_arg "Multiapp.combine: no models"
      | (first, _) :: _ ->
          let rows =
            List.map
              (fun (r : Measure.row) ->
                let rho =
                  List.fold_left
                    (fun acc ((m : Measure.model), share) ->
                      let mr = Measure.row m r.Measure.var.T.index in
                      acc +. (share *. mr.Measure.deltas.Cost.rho))
                    0.0 models
                in
                {
                  r with
                  Measure.deltas = { r.Measure.deltas with Cost.rho = rho };
                })
              first.Measure.rows
          in
          Measure.with_rows first rows

    (* Through the engine (not a bare [Apps.Registry.seconds]) so every
       verification simulation is memoized and counted in [dse.builds]
       — the base point is always a cache hit (measured during model
       building). *)
    let runtime_change app config =
      let engine = Engine.default () in
      let base = (Engine.eval_on engine T.probe app T.base).Cost.seconds in
      let tuned = (Engine.eval_on engine T.probe app config).Cost.seconds in
      100.0 *. (tuned -. base) /. base

    let optimize ?dims ~weights workload =
      let workload = normalize workload in
      let models =
        List.map (fun (app, share) -> (Measure.build ?dims app, share)) workload
      in
      let model = combine models in
      let problem = Formulate.make weights model in
      let solved =
        Optim.Binlp.solve ~runner:(Pool.solver_runner (Pool.default ())) problem
      in
      match solved.Optim.Binlp.best with
      | None -> failwith "Multiapp.optimize: infeasible"
      | Some solution ->
          let selected = Formulate.vars_of_solution model solution in
          let config = T.apply_all T.base selected in
          let per_app =
            List.map (fun (app, _) -> (app, runtime_change app config)) workload
          in
          let mix_gain_percent =
            List.fold_left2
              (fun acc (_, share) (_, change) -> acc +. (share *. change))
              0.0 workload per_app
          in
          { workload; selected; config; mix_gain_percent; per_app }

    let print ppf o =
      Format.fprintf ppf "  workload: %s@."
        (String.concat " + "
           (List.map
              (fun (app, s) ->
                Printf.sprintf "%.0f%% %s" (100.0 *. s)
                  app.Apps.Registry.name)
              o.workload));
      Format.fprintf ppf "  reconfigured: %s@."
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (T.changed_params o.config)));
      List.iter
        (fun (app, change) ->
          Format.fprintf ppf "    %-8s %+7.2f%%@." app.Apps.Registry.name
            change)
        o.per_app;
      Format.fprintf ppf "  mix: %+7.2f%%@." o.mix_gain_percent
  end
end
