(* The paper's pipeline, functorized over a {!Target.S} backend.

   [Make (T)] instantiates the whole measure → formulate → solve →
   verify stack for one soft core: the LEON2-typed modules of this
   library ({!Measure}, {!Formulate}, {!Optimizer}, {!Exhaustive},
   {!Heuristic}, {!Ablation}, {!Multiapp}) are [Make (Target_leon2)]
   re-exported (see [leon2.ml]), and additional backends such as the
   MicroBlaze-like core run the very same code paths.

   All percentage normalizations (lambda/beta in points of the device,
   resource headroom) are relative to the target's own device, so a
   small-device backend gets binding resource constraints instead of
   inheriting LEON2's headroom. *)

type variant = {
  lut_nonlinear : bool;
  bram_linear : bool;
}

let paper_variant = { lut_nonlinear = false; bram_linear = false }

let m_heuristic_builds =
  Obs.Metrics.Counter.v "heuristic.builds"
    ~help:"configurations built by heuristic searches"

let m_heuristic_pruned =
  Obs.Metrics.Counter.v "heuristic.pruned"
    ~help:"candidates skipped without simulating (static arguments)"

let m_schedule_phases =
  Obs.Metrics.Counter.v "dse.schedule.phases"
    ~help:"program phases detected across schedule solves"

let m_schedule_nodes =
  Obs.Metrics.Counter.v "dse.schedule.nodes"
    ~help:"branch-and-bound nodes explored by schedule solves"

let m_schedule_gain =
  Obs.Metrics.Gauge.v "dse.schedule.gain_pct"
    ~help:"last scheduled-vs-static runtime gain (percent, net of switches)"

module Make (T : Target.S) = struct
  (* Device-relative percentages: identical to {!Synth.Resource}'s for
     the LEON2 instance (same device), target-specific otherwise. *)
  let lut_percent (r : Synth.Resource.t) =
    100.0 *. float_of_int r.Synth.Resource.luts /. float_of_int T.device_luts

  let bram_percent (r : Synth.Resource.t) =
    100.0 *. float_of_int r.Synth.Resource.brams /. float_of_int T.device_brams

  let lut_percent_int (r : Synth.Resource.t) =
    r.Synth.Resource.luts * 100 / T.device_luts

  let bram_percent_int (r : Synth.Resource.t) =
    r.Synth.Resource.brams * 100 / T.device_brams

  let fits (r : Synth.Resource.t) =
    r.Synth.Resource.luts <= T.device_luts
    && r.Synth.Resource.brams <= T.device_brams

  let deltas ~base (c : Cost.t) =
    {
      Cost.rho =
        100.0 *. (c.Cost.seconds -. base.Cost.seconds) /. base.Cost.seconds;
      lambda = lut_percent c.Cost.resources -. lut_percent base.Cost.resources;
      beta = bram_percent c.Cost.resources -. bram_percent base.Cost.resources;
    }

  let headroom_luts (c : Cost.t) = 100.0 -. lut_percent c.Cost.resources
  let headroom_brams (c : Cost.t) = 100.0 -. bram_percent c.Cost.resources

  module Measure = struct
    type row = {
      var : T.var;
      config : T.config;
      cost : Cost.t;
      deltas : Cost.deltas;
    }

    type model = {
      app : Apps.Registry.t;
      base : Cost.t;
      rows : row list;
      by_index : (int, row) Hashtbl.t;
    }

    let index_rows rows =
      let h = Hashtbl.create (max 16 (List.length rows)) in
      List.iter (fun r -> Hashtbl.replace h r.var.T.index r) rows;
      h

    let model_of app ~base rows = { app; base; rows; by_index = index_rows rows }
    let with_rows m rows = { m with rows; by_index = index_rows rows }

    let measure ?noise app config =
      Engine.eval_on ?noise (Engine.default ()) T.probe app config

    let reference_config = T.reference_config

    let build ?noise ?dims ?jobs app =
      Obs.Span.with_span ~cat:"dse" "measure.build"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun span ->
      (* Force the compiled program before any domain fan-out: Lazy is
         not domain-safe. *)
      ignore (Lazy.force app.Apps.Registry.program);
      let base = measure ?noise app T.base in
      let selected_groups =
        match dims with None -> T.groups | Some ds -> ds
      in
      let vars =
        List.filter (fun v -> List.mem v.T.group selected_groups) T.vars
      in
      Obs.Span.add_attr span "perturbations" (Obs.Json.Int (List.length vars));
      let measure_var var =
        Obs.Span.with_span ~cat:"dse" "measure.perturbation"
          ~attrs:[ ("label", Obs.Json.String var.T.label) ]
        @@ fun vspan ->
        let reference = reference_config var in
        let config = var.T.apply reference in
        let cost = measure ?noise app config in
        let ref_cost =
          if T.equal reference T.base then base
          else measure ?noise app reference
        in
        Obs.Span.add_attr vspan "sim_cycles"
          (Obs.Json.Int
             (int_of_float (cost.Cost.seconds *. Sim.Machine.clock_hz)));
        Obs.Span.add_attr vspan "luts"
          (Obs.Json.Int cost.Cost.resources.Synth.Resource.luts);
        Obs.Span.add_attr vspan "brams"
          (Obs.Json.Int cost.Cost.resources.Synth.Resource.brams);
        (* Marginal deltas relative to the reference, expressed against
           the base runtime as the paper's percentages are. *)
        let d = deltas ~base:ref_cost cost in
        let rho =
          100.0 *. (cost.Cost.seconds -. ref_cost.Cost.seconds)
          /. base.Cost.seconds
        in
        { var; config = var.T.apply T.base; cost; deltas = { d with Cost.rho } }
      in
      model_of app ~base (Parallel.map ?jobs measure_var vars)

    let row model index =
      match Hashtbl.find_opt model.by_index index with
      | Some r -> r
      | None -> raise Not_found
  end

  module Formulate = struct
    (* Solver variable j <-> model row j. *)
    let index_table (model : Measure.model) =
      let tbl = Hashtbl.create 64 in
      List.iteri
        (fun j (r : Measure.row) -> Hashtbl.add tbl r.Measure.var.T.index j)
        model.Measure.rows;
      tbl

    let solver_var tbl paper_index = Hashtbl.find_opt tbl paper_index

    (* A cache's ways factor: the explicit multipliers of [T.products]
       on top of the implicit single base way. *)
    let product_factor tbl pairs =
      let coeffs =
        List.filter_map
          (fun (i, m) ->
            match solver_var tbl i with Some j -> Some (j, m) | None -> None)
          pairs
      in
      { Optim.Binlp.coeffs; const = 1.0 }

    let lin_of tbl (model : Measure.model) get indices =
      let coeffs =
        List.filter_map
          (fun i ->
            match solver_var tbl i with
            | Some j ->
                let r = List.nth model.Measure.rows j in
                Some (j, get r.Measure.deltas)
            | None -> None)
          indices
      in
      { Optim.Binlp.coeffs; const = 0.0 }

    let range a b = List.init (b - a + 1) (fun k -> a + k)

    (* The indices outside every product's size list, ascending: their
       deltas enter the resource expressions linearly. *)
    let linear_indices =
      let in_products = List.concat_map snd T.products in
      List.filter (fun i -> not (List.mem i in_products)) (range 1 T.var_count)

    (* Resource expression (in percentage points of the device) for one
       metric, as constraint terms.  Nonlinear: per-cache products of
       the ways factor and the per-way size deltas, plus everything
       else linear; the paper's Section 4 FPGA resource constraints. *)
    let resource_terms tbl model get ~nonlinear =
      if not nonlinear then
        [ Optim.Binlp.Lin (lin_of tbl model get (range 1 T.var_count)) ]
      else
        List.map
          (fun (factor, sizes) ->
            Optim.Binlp.Prod
              (product_factor tbl factor, lin_of tbl model get sizes))
          T.products
        @ [ Optim.Binlp.Lin (lin_of tbl model get linear_indices) ]

    let coupling tbl antecedent consequents =
      (* antecedent <= sum of consequents, i.e. x_a - sum x_c <= 0. *)
      match solver_var tbl antecedent with
      | None -> None
      | Some ja ->
          let cons = List.filter_map (solver_var tbl) consequents in
          if cons = [] then
            (* No way to satisfy the coupling: forbid the antecedent. *)
            Some
              (Optim.Binlp.linear
                 { Optim.Binlp.coeffs = [ (ja, 1.0) ]; const = 0.0 }
                 Optim.Binlp.Le 0.0)
          else
            Some
              (Optim.Binlp.linear
                 {
                   Optim.Binlp.coeffs =
                     (ja, 1.0) :: List.map (fun j -> (j, -1.0)) cons;
                   const = 0.0;
                 }
                 Optim.Binlp.Le 0.0)

    let make_custom ~objective ?(variant = paper_variant) (model : Measure.model)
        =
      let tbl = index_table model in
      let rows = Array.of_list model.Measure.rows in
      let nvars = Array.length rows in
      let objective = Array.map objective rows in
      let groups =
        List.filter_map
          (fun g ->
            let members =
              List.filter_map
                (fun v -> solver_var tbl v.T.index)
                (T.group_members g)
            in
            if List.length members >= 2 then Some members else None)
          T.groups
      in
      let couplings =
        List.filter_map (fun (a, cs) -> coupling tbl a cs) T.couplings
      in
      let lut_terms =
        resource_terms tbl model
          (fun d -> d.Cost.lambda)
          ~nonlinear:variant.lut_nonlinear
      in
      let bram_terms =
        resource_terms tbl model
          (fun d -> d.Cost.beta)
          ~nonlinear:(not variant.bram_linear)
      in
      let resource_constraints =
        [
          { Optim.Binlp.terms = lut_terms; rel = Optim.Binlp.Le;
            bound = headroom_luts model.Measure.base };
          { Optim.Binlp.terms = bram_terms; rel = Optim.Binlp.Le;
            bound = headroom_brams model.Measure.base };
        ]
      in
      {
        Optim.Binlp.nvars;
        objective;
        groups;
        constraints = couplings @ resource_constraints;
      }

    let make ?variant (weights : Cost.weights) model =
      make_custom
        ~objective:(fun (r : Measure.row) ->
          Cost.objective weights r.Measure.deltas)
        ?variant model

    (* {2 Schedule formulation}

       Phase-scheduled selection: every runtime-reconfigurable model
       row gets one solver variable {e per phase}; rows of the groups
       in [T.static_groups] keep a single variable shared by all
       phases.  Objective: per-phase runtime deltas (from the
       per-phase models) plus the resource deltas averaged over the
       phases, so a row selected in every phase contributes exactly
       its static objective; pairwise product terms charge
       [T.group_switch_cycles] whenever adjacent phases — and the
       wrap-around repetition boundary — disagree on a group's value.
       With one phase the formulation degenerates to {!make}
       exactly. *)

    type schedule = {
      problem : Optim.Binlp.problem;
      switch_terms : Optim.Binlp.term list;
          (* pass as [Optim.Binlp.solve]'s [objective_terms] *)
      phases : int;
      slots : (int * Measure.row) list array;
          (* per phase: (solver variable, row); static rows repeat
             their shared variable in every phase *)
    }

    let schedule_vars_of_solution sched (s : Optim.Binlp.solution) =
      Array.map
        (fun slots ->
          List.filter_map
            (fun (j, (r : Measure.row)) ->
              if s.Optim.Binlp.x.(j) then Some r.Measure.var else None)
            slots
          |> List.sort (fun (a : T.var) (b : T.var) ->
                 compare a.T.index b.T.index))
        sched.slots

    let make_schedule ?(variant = paper_variant) ~reps
        ~(weights : Cost.weights) (models : Measure.model list) =
      match models with
      | [] -> invalid_arg "Formulate.make_schedule: no phase models"
      | [ model ] ->
          {
            problem = make ~variant weights model;
            switch_terms = [];
            phases = 1;
            slots = [| List.mapi (fun j r -> (j, r)) model.Measure.rows |];
          }
      | first :: _ ->
          let marr = Array.of_list models in
          let nphases = Array.length marr in
          Array.iter
            (fun (m : Measure.model) ->
              if List.length m.Measure.rows <> List.length first.Measure.rows
              then
                invalid_arg
                  "Formulate.make_schedule: phase models disagree on rows")
            marr;
          let is_static (r : Measure.row) =
            List.mem r.Measure.var.T.group T.static_groups
          in
          let recon, static =
            List.partition (fun r -> not (is_static r)) first.Measure.rows
          in
          let n_recon = List.length recon in
          let nvars = (nphases * n_recon) + List.length static in
          (* paper index -> solver slot, as a function of the phase
             (constant for static rows). *)
          let slot_fns : (int, int -> int) Hashtbl.t = Hashtbl.create 64 in
          List.iteri
            (fun pos (r : Measure.row) ->
              Hashtbl.replace slot_fns r.Measure.var.T.index (fun p ->
                  (p * n_recon) + pos))
            recon;
          List.iteri
            (fun pos (r : Measure.row) ->
              Hashtbl.replace slot_fns r.Measure.var.T.index (fun _ ->
                  (nphases * n_recon) + pos))
            static;
          let slot p i =
            Option.map (fun f -> f p) (Hashtbl.find_opt slot_fns i)
          in
          (* Phase-p view of the paper-index -> solver-variable table,
             so [coupling] and [product_factor] apply unchanged. *)
          let tbls =
            Array.init nphases (fun p ->
                let h = Hashtbl.create 64 in
                List.iter
                  (fun (r : Measure.row) ->
                    let i = r.Measure.var.T.index in
                    match slot p i with
                    | Some j -> Hashtbl.replace h i j
                    | None -> ())
                  first.Measure.rows;
                h)
          in
          let rho_p p (r : Measure.row) =
            (Measure.row marr.(p) r.Measure.var.T.index).Measure.deltas
              .Cost.rho
          in
          let fp = float_of_int nphases in
          let objective = Array.make nvars 0.0 in
          List.iteri
            (fun pos (r : Measure.row) ->
              let d = r.Measure.deltas in
              for p = 0 to nphases - 1 do
                objective.((p * n_recon) + pos) <-
                  (weights.Cost.w1 *. rho_p p r)
                  +. (weights.Cost.w2 *. (d.Cost.lambda +. d.Cost.beta) /. fp)
              done)
            recon;
          List.iteri
            (fun pos (r : Measure.row) ->
              let d = r.Measure.deltas in
              let rho = ref 0.0 in
              for p = 0 to nphases - 1 do
                rho := !rho +. rho_p p r
              done;
              objective.((nphases * n_recon) + pos) <-
                (weights.Cost.w1 *. !rho)
                +. (weights.Cost.w2 *. (d.Cost.lambda +. d.Cost.beta)))
            static;
          let groups =
            List.concat_map
              (fun g ->
                let members p =
                  List.filter_map
                    (fun (v : T.var) -> slot p v.T.index)
                    (T.group_members g)
                in
                let m0 = members 0 in
                if List.length m0 < 2 then []
                else if List.mem g T.static_groups then [ m0 ]
                else List.init nphases members)
              T.groups
          in
          let phase_independent i =
            match Hashtbl.find_opt first.Measure.by_index i with
            | Some r -> is_static r
            | None -> true
          in
          let couplings =
            List.concat_map
              (fun (a, cs) ->
                let ps =
                  if List.for_all phase_independent (a :: cs) then [ 0 ]
                  else List.init nphases Fun.id
                in
                List.filter_map (fun p -> coupling tbls.(p) a cs) ps)
              T.couplings
          in
          let lin_of_p p get indices =
            let coeffs =
              List.filter_map
                (fun i ->
                  match Hashtbl.find_opt first.Measure.by_index i with
                  | None -> None
                  | Some (r : Measure.row) ->
                      Option.map
                        (fun j -> (j, get r.Measure.deltas))
                        (slot p i))
                indices
            in
            { Optim.Binlp.coeffs; const = 0.0 }
          in
          let resource_terms_p p get ~nonlinear =
            if not nonlinear then
              [ Optim.Binlp.Lin (lin_of_p p get (range 1 T.var_count)) ]
            else
              List.map
                (fun (factor, sizes) ->
                  Optim.Binlp.Prod
                    (product_factor tbls.(p) factor, lin_of_p p get sizes))
                T.products
              @ [ Optim.Binlp.Lin (lin_of_p p get linear_indices) ]
          in
          let resource_constraints =
            List.concat
              (List.init nphases (fun p ->
                   [
                     {
                       Optim.Binlp.terms =
                         resource_terms_p p
                           (fun d -> d.Cost.lambda)
                           ~nonlinear:variant.lut_nonlinear;
                       rel = Optim.Binlp.Le;
                       bound = headroom_luts first.Measure.base;
                     };
                     {
                       Optim.Binlp.terms =
                         resource_terms_p p
                           (fun d -> d.Cost.beta)
                           ~nonlinear:(not variant.bram_linear);
                       rel = Optim.Binlp.Le;
                       bound = headroom_brams first.Measure.base;
                     };
                   ]))
          in
          (* Interior boundaries are crossed once per repetition; the
             wrap-around switch back to phase 0 happens between
             repetitions, i.e. [reps - 1] times. *)
          let pairs =
            List.init (nphases - 1) (fun p -> (p, p + 1, reps))
            @ (if reps > 1 then [ (nphases - 1, 0, reps - 1) ] else [])
          in
          let base_seconds = first.Measure.base.Cost.seconds in
          let switch_terms =
            List.concat_map
              (fun (p, q, mult) ->
                List.concat_map
                  (fun g ->
                    let kappa = T.group_switch_cycles g in
                    if kappa = 0 || List.mem g T.static_groups then []
                    else
                      let members =
                        List.filter_map
                          (fun (v : T.var) ->
                            match (slot p v.T.index, slot q v.T.index) with
                            | Some jp, Some jq -> Some (jp, jq)
                            | _ -> None)
                          (T.group_members g)
                      in
                      if members = [] then []
                      else
                        (* coef * (1 - [phases p and q agree on g]): a
                           constant charge cancelled by the agreement
                           products — same member selected on both
                           sides, or none on both.  Different members
                           still cost [coef] once: one slice
                           reprogram. *)
                        let coef =
                          weights.Cost.w1 *. 100.
                          *. (float_of_int mult *. float_of_int kappa
                             /. Sim.Machine.clock_hz)
                          /. base_seconds
                        in
                        Optim.Binlp.Lin { coeffs = []; const = coef }
                        :: Optim.Binlp.Prod
                             ( {
                                 Optim.Binlp.coeffs =
                                   List.map (fun (jp, _) -> (jp, coef))
                                     members;
                                 const = -.coef;
                               },
                               {
                                 Optim.Binlp.coeffs =
                                   List.map (fun (_, jq) -> (jq, -1.0))
                                     members;
                                 const = 1.0;
                               } )
                        :: List.map
                             (fun (jp, jq) ->
                               Optim.Binlp.Prod
                                 ( {
                                     Optim.Binlp.coeffs = [ (jp, -.coef) ];
                                     const = 0.0;
                                   },
                                   {
                                     Optim.Binlp.coeffs = [ (jq, 1.0) ];
                                     const = 0.0;
                                   } ))
                             members)
                  T.groups)
              pairs
          in
          let slots =
            Array.init nphases (fun p ->
                List.mapi (fun pos r -> ((p * n_recon) + pos, r)) recon
                @ List.mapi
                    (fun pos r -> ((nphases * n_recon) + pos, r))
                    static)
          in
          {
            problem =
              {
                Optim.Binlp.nvars;
                objective;
                groups;
                constraints = couplings @ resource_constraints;
              };
            switch_terms;
            phases = nphases;
            slots;
          }

    let vars_of_solution (model : Measure.model) (s : Optim.Binlp.solution) =
      List.filteri (fun j _ -> s.Optim.Binlp.x.(j)) model.Measure.rows
      |> List.map (fun (r : Measure.row) -> r.Measure.var)
      |> List.sort (fun (a : T.var) (b : T.var) -> compare a.T.index b.T.index)

    let predicted_deltas ?(variant = paper_variant) (model : Measure.model) vars
        =
      let tbl = index_table model in
      let nvars = List.length model.Measure.rows in
      let x = Array.make nvars false in
      List.iter
        (fun (v : T.var) ->
          match solver_var tbl v.T.index with
          | Some j -> x.(j) <- true
          | None ->
              invalid_arg "Formulate.predicted_deltas: variable not in model")
        vars;
      let eval terms =
        List.fold_left
          (fun acc t ->
            acc
            +.
            match t with
            | Optim.Binlp.Lin l -> Optim.Binlp.eval_lin l x
            | Optim.Binlp.Prod (l1, l2) ->
                Optim.Binlp.eval_lin l1 x *. Optim.Binlp.eval_lin l2 x)
          0.0 terms
      in
      let rho =
        List.fold_left
          (fun acc (r : Measure.row) ->
            if x.(Hashtbl.find tbl r.Measure.var.T.index) then
              acc +. r.Measure.deltas.Cost.rho
            else acc)
          0.0 model.Measure.rows
      in
      let lambda =
        eval
          (resource_terms tbl model
             (fun d -> d.Cost.lambda)
             ~nonlinear:variant.lut_nonlinear)
      in
      let beta =
        eval
          (resource_terms tbl model
             (fun d -> d.Cost.beta)
             ~nonlinear:(not variant.bram_linear))
      in
      { Cost.rho; lambda; beta }
  end

  module Optimizer = struct
    type prediction = {
      seconds : float;
      lut_percent : float;
      lut_percent_alt : float;
      bram_percent : float;
      bram_percent_alt : float;
    }

    type outcome = {
      model : Measure.model;
      weights : Cost.weights;
      solution : Optim.Binlp.solution;
      selected : T.var list;
      config : T.config;
      predicted : prediction;
      actual : Cost.t;
    }

    let predict ?variant model selected =
      let variant =
        match variant with None -> paper_variant | Some v -> v
      in
      let d = Formulate.predicted_deltas ~variant model selected in
      let alt =
        Formulate.predicted_deltas
          ~variant:
            {
              lut_nonlinear = not variant.lut_nonlinear;
              bram_linear = not variant.bram_linear;
            }
          model selected
      in
      let base = model.Measure.base in
      {
        seconds = base.Cost.seconds *. (1.0 +. (d.Cost.rho /. 100.0));
        lut_percent = lut_percent base.Cost.resources +. d.Cost.lambda;
        lut_percent_alt = lut_percent base.Cost.resources +. alt.Cost.lambda;
        bram_percent = bram_percent base.Cost.resources +. d.Cost.beta;
        bram_percent_alt = bram_percent base.Cost.resources +. alt.Cost.beta;
      }

    (* The pipeline's four phases — measure, formulate, solve, verify —
       as spans, so a trace shows at a glance where a reconfiguration
       run spends its time ([Measure.build] opens the measure phase
       itself). *)
    let run_with_model ?variant ~weights (model : Measure.model) =
      let app = model.Measure.app.Apps.Registry.name in
      let attrs = [ ("app", Obs.Json.String app) ] in
      let problem =
        Obs.Span.with_ ~cat:"dse" "phase.formulate" ~attrs (fun () ->
            Formulate.make ?variant weights model)
      in
      let solved =
        Obs.Span.with_ ~cat:"dse" "phase.solve" ~attrs (fun () ->
            Optim.Binlp.solve
              ~runner:(Pool.solver_runner (Pool.default ()))
              problem)
      in
      (* Node_limit_reached still carries the incumbent; a feasible
         incumbent is usable even if optimality was not proven. *)
      match solved.Optim.Binlp.best with
      | None -> failwith "Optimizer: BINLP infeasible"
      | Some solution ->
          Obs.Span.with_ ~cat:"dse" "phase.verify" ~attrs @@ fun () ->
          let selected = Formulate.vars_of_solution model solution in
          let config = T.apply_all T.base selected in
          (match T.validate config with
          | Ok () -> ()
          | Error m ->
              failwith ("Optimizer: decoded configuration invalid: " ^ m));
          (* Verify-by-build is noise-free even when the model was
             noisy: the recommendation is judged against reality. *)
          let actual =
            Engine.eval_on (Engine.default ()) T.probe model.Measure.app config
          in
          (* Sanitizer, never a prune: the verification build is part
             of the reported outcome, so it always runs; the static
             bounds only cross-check it.  A violation means the bounds
             analysis or the simulator is wrong. *)
          (match T.probe.Target.static_bounds with
          | None -> ()
          | Some bounds_of ->
              let lo, hi = bounds_of model.Measure.app config in
              Obs.Metrics.Counter.incr Bounds.m_computed;
              if Obs.Journal.enabled () then
                Obs.Journal.record ~kind:"bounds.verify"
                  [
                    ("app", Obs.Json.String app);
                    ("config", Obs.Json.String (T.to_string config));
                    ("lo", Obs.Json.Float lo);
                    ("hi", Obs.Json.Float hi);
                    ("actual", Obs.Json.Float actual.Cost.seconds);
                    ( "tightness",
                      match Bounds.tightness ~lo ~hi with
                      | Some r -> Obs.Json.Float r
                      | None -> Obs.Json.Null );
                  ];
              if actual.Cost.seconds < lo || actual.Cost.seconds > hi then begin
                Obs.Metrics.Counter.incr Bounds.m_violations;
                Format.eprintf
                  "verify(%s/%s): runtime %.9fs outside static bounds [%.9f, \
                   %.9f]@."
                  T.name app actual.Cost.seconds lo hi
              end);
          {
            model;
            weights;
            solution;
            selected;
            config;
            predicted = predict ?variant model selected;
            actual;
          }

    let run ?noise ?dims ?variant ~weights app =
      let model =
        Obs.Span.with_ ~cat:"dse" "phase.measure"
          ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
          (fun () -> Measure.build ?noise ?dims app)
      in
      run_with_model ?variant ~weights model

    let pp_selected ppf vars =
      Fmt.(list ~sep:comma string)
        ppf
        (List.map (fun (v : T.var) -> v.T.label) vars)

    let print_outcome_summary ppf (o : outcome) =
      let pf = Format.fprintf in
      let name = o.model.Measure.app.Apps.Registry.name in
      pf ppf "  %s:@." name;
      pf ppf "    reconfigured: %s@."
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (T.changed_params o.config)));
      let base = o.model.Measure.base in
      let p = o.predicted in
      pf ppf "    base runtime %.3fs@." base.Cost.seconds;
      pf ppf
        "    predicted: %.3fs, LUTs %.1f%% (nonlin %.1f%%), BRAM %.1f%% (lin \
         %.1f%%)@."
        p.seconds p.lut_percent p.lut_percent_alt p.bram_percent
        p.bram_percent_alt;
      let a = o.actual in
      pf ppf "    actual build: %.3fs, LUTs %d%%, BRAM %d%%@." a.Cost.seconds
        (lut_percent_int a.Cost.resources)
        (bram_percent_int a.Cost.resources);
      pf ppf "    runtime change: %+.2f%% (predicted %+.2f%%)@."
        (100.0 *. (a.Cost.seconds -. base.Cost.seconds) /. base.Cost.seconds)
        (100.0 *. (p.seconds -. base.Cost.seconds) /. base.Cost.seconds)
  end

  module Exhaustive = struct
    type point = {
      config : T.config;
      cost : Cost.t option;
    }

    (* One batched engine call: resources are elaborated once per point
       (feasibility and cost share the estimate), infeasible points
       never reach the simulator, and the feasible ones fan out on the
       pool. *)
    let sweep app configs =
      Engine.eval_all_feasible_on (Engine.default ()) T.probe app configs
      |> List.map2 (fun config cost -> { config; cost }) configs

    let geometry_sweep app = sweep app T.sweep_configs

    let feasible_points points =
      List.filter_map
        (fun p -> match p.cost with Some c -> Some (p, c) | None -> None)
        points

    let argmin key points =
      match feasible_points points with
      | [] -> raise Not_found
      | first :: rest ->
          let better a b = if key (snd a) <= key (snd b) then a else b in
          fst (List.fold_left better first rest)

    let best_runtime points =
      argmin
        (fun (c : Cost.t) ->
          ( c.Cost.seconds,
            c.Cost.resources.Synth.Resource.brams,
            c.Cost.resources.Synth.Resource.luts ))
        points

    let best_weighted weights ~base points =
      argmin
        (fun c -> (Cost.objective weights (deltas ~base c), 0, 0))
        points

    (* [sweep] + [best_runtime] with the engine's bounds-admission
       gate: the candidate with the smallest static worst case is
       simulated first, and its actual runtime prunes every candidate
       whose static best case is already slower.  Pruned points have
       [seconds >= lo > incumbent.seconds >= min seconds], so they can
       neither win nor tie the lexicographic argmin: the selected
       point is byte-identical to a full sweep's, with fewer
       simulations. *)
    let best_runtime_search app configs =
      match T.probe.Target.static_bounds with
      | None -> best_runtime (sweep app configs)
      | Some bounds_of -> (
          let engine = Engine.default () in
          ignore (Lazy.force app.Apps.Registry.program);
          let cands = List.filter T.feasible configs in
          match cands with
          | [] -> raise Not_found
          | first :: rest ->
              let static_hi config = snd (bounds_of app config) in
              let seed, _ =
                List.fold_left
                  (fun (bc, bh) c ->
                    let h = static_hi c in
                    if h < bh then (c, h) else (bc, bh))
                  (first, static_hi first)
                  rest
              in
              let incumbent = Engine.eval_on engine T.probe app seed in
              let cutoff (_ : Synth.Resource.t) = incumbent.Cost.seconds in
              let points =
                List.map
                  (fun config ->
                    if T.equal config seed then
                      { config; cost = Some incumbent }
                    else
                      match
                        Engine.eval_bounded_on engine ~cutoff T.probe app
                          config
                      with
                      | Engine.Evaluated cost -> { config; cost = Some cost }
                      | Engine.Infeasible | Engine.Pruned _ ->
                          { config; cost = None })
                  cands
              in
              best_runtime points)
  end

  module Heuristic = struct
    type result = {
      config : T.config;
      cost : Cost.t;
      objective : float;
      builds : int;
      pruned : int;
    }

    let evaluate ~weights ~base app config =
      let cost = Engine.eval_on (Engine.default ()) T.probe app config in
      (cost, Cost.objective weights (deltas ~base cost))

    (* The runtime above which a feasible candidate with resource
       estimate [r] provably cannot reach an objective strictly below
       [obj]: from [w1 rho + w2 (lambda + beta) < obj] with
       [rho = 100 (s - b) / b].  The epsilon makes the cutoff strictly
       conservative under floating-point rounding (prune less, never
       more).  With [w1 <= 0] runtime does not constrain the objective
       at all, so no candidate can be pruned on runtime bounds. *)
    let objective_cutoff ~weights ~(base : Cost.t) obj (r : Synth.Resource.t) =
      if weights.Cost.w1 <= 0.0 then infinity
      else
        let lambda = lut_percent r -. lut_percent base.Cost.resources in
        let beta = bram_percent r -. bram_percent base.Cost.resources in
        let s =
          base.Cost.seconds
          *. (1.0
             +. (obj -. (weights.Cost.w2 *. (lambda +. beta)))
                /. (100.0 *. weights.Cost.w1))
        in
        s +. (1e-9 *. (Float.abs s +. 1.0))

    let random_search ?(seed = 0x5EA7C4) ~builds ~weights app =
      if builds < 1 then
        invalid_arg "Heuristic.random_search: builds must be >= 1";
      Obs.Span.with_ ~cat:"dse" "heuristic.random_search"
        ~attrs:
          [
            ("app", Obs.Json.String app.Apps.Registry.name);
            ("builds", Obs.Json.Int builds);
          ]
      @@ fun () ->
      let rng = Sim.Rng.create ~seed in
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let best = ref (T.base, base, 0.0) in
      let spent = ref 0 in
      let pruned = ref 0 in
      (* Admission cutoff against the current incumbent: tightens as
         the search improves. *)
      let cutoff r =
        let _, _, best_obj = !best in
        objective_cutoff ~weights ~base best_obj r
      in
      while !spent < builds do
        let config = T.random_config rng in
        (* The engine elaborates resources once for the feasibility
           check, the bounds cutoff and the cost; infeasible draws are
           free. *)
        match Engine.eval_bounded_on engine ~cutoff T.probe app config with
        | Engine.Infeasible -> ()
        | Engine.Pruned _ ->
            (* A feasible draw that provably cannot beat the
               incumbent: it consumes budget exactly as the losing
               build it replaces would, so the draw sequence and the
               winner are unchanged — only the simulation count
               drops. *)
            incr spent;
            incr pruned
        | Engine.Evaluated cost ->
            incr spent;
            Obs.Metrics.Counter.incr m_heuristic_builds;
            let objective = Cost.objective weights (deltas ~base cost) in
            let _, _, best_obj = !best in
            if objective < best_obj then best := (config, cost, objective)
      done;
      let config, cost, objective = !best in
      { config; cost; objective; builds = builds - !pruned; pruned = !pruned }

    (* Skipping is trajectory-preserving: a pruned candidate has the
       exact runtime of the incumbent and no better LUT or BRAM count,
       so with the (non-negative) weighted objective it can never win
       the strict improvement test.  Both configurations are feasible
       here, so [T.resources] is total. *)
    let prunable ft current candidate =
      T.statically_equivalent ft current candidate
      &&
      let rcan = T.resources candidate and rcur = T.resources current in
      rcan.Synth.Resource.luts >= rcur.Synth.Resource.luts
      && rcan.Synth.Resource.brams >= rcur.Synth.Resource.brams

    let coordinate_descent ?(max_sweeps = 5) ?features ~weights app =
      Obs.Span.with_span ~cat:"dse" "heuristic.coordinate_descent"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun span ->
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let builds = ref 0 in
      let pruned = ref 0 in
      let current = ref T.base in
      let current_obj = ref 0.0 in
      let improved = ref true in
      let sweeps = ref 0 in
      while !improved && !sweeps < max_sweeps do
        improved := false;
        incr sweeps;
        List.iter
          (fun g ->
            List.iter
              (fun apply ->
                let candidate = apply !current in
                if (not (T.equal candidate !current)) && T.feasible candidate
                then begin
                  match features with
                  | Some ft when prunable ft !current candidate ->
                      incr pruned;
                      Obs.Metrics.Counter.incr m_heuristic_pruned
                  | _ -> (
                      (* Bounds admission against the strict
                         improvement threshold: a pruned candidate
                         provably fails [objective < current - 1e-9],
                         so the descent trajectory is unchanged. *)
                      let cutoff =
                        objective_cutoff ~weights ~base
                          (!current_obj -. 1e-9)
                      in
                      match
                        Engine.eval_bounded_on engine ~cutoff T.probe app
                          candidate
                      with
                      | Engine.Infeasible -> ()
                      | Engine.Pruned _ ->
                          incr pruned;
                          Obs.Metrics.Counter.incr m_heuristic_pruned
                      | Engine.Evaluated cost ->
                          incr builds;
                          Obs.Metrics.Counter.incr m_heuristic_builds;
                          let objective =
                            Cost.objective weights (deltas ~base cost)
                          in
                          if objective < !current_obj -. 1e-9 then begin
                            current := candidate;
                            current_obj := objective;
                            improved := true
                          end)
                end)
              (T.group_options g))
          T.groups
      done;
      let cost = Engine.eval_on engine T.probe app !current in
      Obs.Span.add_attr span "builds" (Obs.Json.Int !builds);
      Obs.Span.add_attr span "pruned" (Obs.Json.Int !pruned);
      {
        config = !current;
        cost;
        objective = !current_obj;
        builds = !builds;
        pruned = !pruned;
      }

    let paper_method ~weights app =
      Obs.Span.with_ ~cat:"dse" "heuristic.paper_method"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun () ->
      let model = Measure.build app in
      let o = Optimizer.run_with_model ~weights model in
      (* Builds the pipeline actually spends: the base, one per row,
         one per distinct non-base reference configuration (the 2-way
         replacement references on LEON2), and the verification
         build. *)
      let repl_references =
        List.sort_uniq compare
          (List.filter_map
             (fun (r : Measure.row) ->
               let reference = T.reference_config r.Measure.var in
               if T.equal reference T.base then None
               else Some (T.to_string reference))
             model.Measure.rows)
        |> List.length
      in
      {
        config = o.Optimizer.config;
        cost = o.Optimizer.actual;
        objective =
          Cost.objective weights
            (deltas ~base:model.Measure.base o.Optimizer.actual);
        builds = 1 + List.length model.Measure.rows + repl_references + 1;
        pruned = 0;
      }

    let print_comparison ppf app_name results =
      Format.fprintf ppf "  %s:@." app_name;
      Format.fprintf ppf "    %-22s %8s %8s %12s %10s@." "method" "builds"
        "pruned" "objective" "runtime(s)";
      List.iteri
        (fun k r ->
          let name =
            match k with
            | 0 -> "paper (model+BINLP)"
            | 1 -> "coordinate descent"
            | _ -> Printf.sprintf "random search"
          in
          Format.fprintf ppf "    %-22s %8d %8d %12.2f %10.3f@." name r.builds
            r.pruned r.objective r.cost.Cost.seconds)
        results
  end

  module Ablation = struct
    type noise_point = {
      amplitude : float;
      outcome : Optimizer.outcome;
      objective_regret : float;
    }

    (* True (noise-free) objective of an already-built configuration.
       Noise-free evaluations live under their own cache key, so they
       are never contaminated by the perturbed measurements of the
       study. *)
    let true_objective weights app config =
      let engine = Engine.default () in
      let base = Engine.eval_on engine T.probe app T.base in
      let cost = Engine.eval_on engine T.probe app config in
      Cost.objective weights (deltas ~base cost)

    let noise_study ?(amplitudes = [ 0.0; 0.002; 0.005; 0.01 ]) ~weights app =
      let reference =
        let o = Optimizer.run ~weights app in
        true_objective weights app o.Optimizer.config
      in
      List.map
        (fun amplitude ->
          let outcome =
            if amplitude = 0.0 then Optimizer.run ~weights app
            else Optimizer.run ~noise:amplitude ~weights app
          in
          let obj = true_objective weights app outcome.Optimizer.config in
          { amplitude; outcome; objective_regret = obj -. reference })
        amplitudes

    type variant_point = {
      variant : variant;
      outcome : Optimizer.outcome;
      bram_prediction_error : float;
    }

    let variant_study ~weights model =
      let variants =
        [
          { lut_nonlinear = false; bram_linear = false };
          { lut_nonlinear = true; bram_linear = false };
          { lut_nonlinear = false; bram_linear = true };
          { lut_nonlinear = true; bram_linear = true };
        ]
      in
      List.map
        (fun variant ->
          let outcome = Optimizer.run_with_model ~variant ~weights model in
          let actual = bram_percent outcome.Optimizer.actual.Cost.resources in
          {
            variant;
            outcome;
            bram_prediction_error =
              outcome.Optimizer.predicted.Optimizer.bram_percent -. actual;
          })
        variants

    type independence_point = {
      app : Apps.Registry.t;
      predicted_gain : float;
      actual_gain : float;
    }

    let independence_study ~weights =
      List.map
        (fun app ->
          let o = Optimizer.run ~weights app in
          let base = o.Optimizer.model.Measure.base.Cost.seconds in
          {
            app;
            predicted_gain =
              100.0 *. (o.Optimizer.predicted.Optimizer.seconds -. base)
              /. base;
            actual_gain =
              100.0 *. (o.Optimizer.actual.Cost.seconds -. base) /. base;
          })
        Apps.Registry.all

    let pf = Format.fprintf

    let print_noise ppf points =
      pf ppf "Ablation: synthesis measurement noise (LUT measurements)@.";
      pf ppf "  %9s %9s  %s@." "amplitude" "regret" "selected parameters";
      List.iter
        (fun (p : noise_point) ->
          let params =
            T.changed_params p.outcome.Optimizer.config
            |> List.map (fun (k, v) -> k ^ "=" ^ v)
            |> String.concat ", "
          in
          pf ppf "  %8.1f%% %+9.3f  %s@." (100.0 *. p.amplitude)
            p.objective_regret params)
        points;
      pf ppf
        "  (regret: true weighted objective relative to the noise-free pick; \
         the paper's 'registers=28..31 (sub-optimal)' rows are this effect)@."

    let print_variants ppf points =
      pf ppf "Ablation: constraint linearity (paper Section 4/6)@.";
      pf ppf "  %-12s %-12s %12s %10s %10s@." "LUT model" "BRAM model"
        "runtime(s)" "BRAM%" "pred.err";
      List.iter
        (fun (p : variant_point) ->
          pf ppf "  %-12s %-12s %12.3f %9.1f%% %+9.2f%s@."
            (if p.variant.lut_nonlinear then "nonlinear" else "linear")
            (if p.variant.bram_linear then "linear" else "nonlinear")
            p.outcome.Optimizer.actual.Cost.seconds
            (bram_percent p.outcome.Optimizer.actual.Cost.resources)
            p.bram_prediction_error
            (if fits p.outcome.Optimizer.actual.Cost.resources then ""
             else "  DOES NOT FIT THE DEVICE"))
        points;
      pf ppf
        "  (the linear BRAM model misses the ways x size interaction, \
         under-predicts — the paper's BRAM%%-lin rows — and here selects a \
         configuration the device cannot hold)@."

    let print_independence ppf points =
      pf ppf "Ablation: the parameter-independence assumption@.";
      pf ppf "  %-8s %12s %12s %12s@." "app" "predicted" "actual" "error";
      List.iter
        (fun p ->
          pf ppf "  %-8s %+11.2f%% %+11.2f%% %+11.2f%%@."
            p.app.Apps.Registry.name p.predicted_gain p.actual_gain
            (p.predicted_gain -. p.actual_gain))
        points;
      pf ppf
        "  (negative error = the optimizer over-promises, the paper's DRR \
         case: overlapping cache gains add up linearly in the model)@."
  end

  module Multiapp = struct
    type workload = (Apps.Registry.t * float) list

    type outcome = {
      workload : workload;
      selected : T.var list;
      config : T.config;
      mix_gain_percent : float;
      per_app : (Apps.Registry.t * float) list;
    }

    let normalize workload =
      if workload = [] then invalid_arg "Multiapp.optimize: empty workload";
      List.iter
        (fun (_, s) ->
          if s <= 0.0 then
            invalid_arg "Multiapp.optimize: shares must be positive")
        workload;
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 workload in
      List.map (fun (app, s) -> (app, s /. total)) workload

    (* Combine per-application models into one: runtime deltas are
       weighted by share, resource deltas taken from the first model
       (they depend on the configuration only). *)
    let combine (models : (Measure.model * float) list) =
      match models with
      | [] -> invalid_arg "Multiapp.combine: no models"
      | (first, _) :: _ ->
          let rows =
            List.map
              (fun (r : Measure.row) ->
                let rho =
                  List.fold_left
                    (fun acc ((m : Measure.model), share) ->
                      let mr = Measure.row m r.Measure.var.T.index in
                      acc +. (share *. mr.Measure.deltas.Cost.rho))
                    0.0 models
                in
                {
                  r with
                  Measure.deltas = { r.Measure.deltas with Cost.rho = rho };
                })
              first.Measure.rows
          in
          Measure.with_rows first rows

    (* Through the engine (not a bare [Apps.Registry.seconds]) so every
       verification simulation is memoized and counted in [dse.builds]
       — the base point is always a cache hit (measured during model
       building). *)
    let runtime_change app config =
      let engine = Engine.default () in
      let base = (Engine.eval_on engine T.probe app T.base).Cost.seconds in
      let tuned = (Engine.eval_on engine T.probe app config).Cost.seconds in
      100.0 *. (tuned -. base) /. base

    let optimize ?dims ~weights workload =
      let workload = normalize workload in
      let models =
        List.map (fun (app, share) -> (Measure.build ?dims app, share)) workload
      in
      let model = combine models in
      let problem = Formulate.make weights model in
      let solved =
        Optim.Binlp.solve ~runner:(Pool.solver_runner (Pool.default ())) problem
      in
      match solved.Optim.Binlp.best with
      | None -> failwith "Multiapp.optimize: infeasible"
      | Some solution ->
          let selected = Formulate.vars_of_solution model solution in
          let config = T.apply_all T.base selected in
          let per_app =
            List.map (fun (app, _) -> (app, runtime_change app config)) workload
          in
          let mix_gain_percent =
            List.fold_left2
              (fun acc (_, share) (_, change) -> acc +. (share *. change))
              0.0 workload per_app
          in
          { workload; selected; config; mix_gain_percent; per_app }

    let print ppf o =
      Format.fprintf ppf "  workload: %s@."
        (String.concat " + "
           (List.map
              (fun (app, s) ->
                Printf.sprintf "%.0f%% %s" (100.0 *. s)
                  app.Apps.Registry.name)
              o.workload));
      Format.fprintf ppf "  reconfigured: %s@."
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (T.changed_params o.config)));
      List.iter
        (fun (app, change) ->
          Format.fprintf ppf "    %-8s %+7.2f%%@." app.Apps.Registry.name
            change)
        o.per_app;
      Format.fprintf ppf "  mix: %+7.2f%%@." o.mix_gain_percent
  end

  module Schedule = struct
    (* Phase-aware reconfiguration: detect phases of one application,
       measure the one-at-a-time model per phase (through the engine,
       keyed by the segmentation digest), solve one BINLP with
       per-phase variable copies and pairwise switch costs, and verify
       the winning schedule against the verified static pick.  Every
       step is deterministic, so the outcome is identical for any
       worker count. *)

    type plan =
      | Static of T.config
      | Phased of (int * T.config) list  (** [(start_insn, config)] *)

    type outcome = {
      app : Apps.Registry.t;
      phases : Sim.Phase.t;
      static : Optimizer.outcome;
      plan : plan;
      static_seconds : float;
      scheduled_seconds : float;
      switch_cycles : int;
          (* total reconfiguration cycles inside [scheduled_seconds] *)
      gain_percent : float;  (* static vs scheduled, net of switches *)
      solve_nodes : int;
    }

    let params_of config =
      match T.changed_params config with
      | [] -> "base"
      | ps -> String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ps)

    let record_phases app (phases : Sim.Phase.t) =
      if Obs.Journal.enabled () then
        List.iteri
          (fun k (p : Sim.Phase.phase) ->
            Obs.Journal.record ~kind:"schedule.phase"
              [
                ("target", Obs.Json.String T.name);
                ("app", Obs.Json.String app.Apps.Registry.name);
                ("index", Obs.Json.Int k);
                ("start", Obs.Json.Int p.Sim.Phase.start_insn);
                ("end", Obs.Json.Int p.Sim.Phase.end_insn);
                ( "dominant",
                  Obs.Json.String (Sim.Phase.dominant p.Sim.Phase.profile) );
              ])
          phases.Sim.Phase.phases

    let record_select app k config =
      if Obs.Journal.enabled () then
        Obs.Journal.record ~kind:"schedule.select"
          [
            ("target", Obs.Json.String T.name);
            ("app", Obs.Json.String app.Apps.Registry.name);
            ("phase", Obs.Json.Int k);
            ("config", Obs.Json.String (T.to_string config));
            ("params", Obs.Json.String (params_of config));
          ]

    let record_switch app ~at ~cycles config =
      if Obs.Journal.enabled () then
        Obs.Journal.record ~kind:"schedule.switch"
          [
            ("target", Obs.Json.String T.name);
            ("app", Obs.Json.String app.Apps.Registry.name);
            ("at", Obs.Json.Int at);
            ("cycles", Obs.Json.Int cycles);
            ("to", Obs.Json.String (params_of config));
          ]

    let record_verify app ~static_seconds ~scheduled_seconds ~switch_cycles
        ~gain =
      if Obs.Journal.enabled () then
        Obs.Journal.record ~kind:"schedule.verify"
          [
            ("target", Obs.Json.String T.name);
            ("app", Obs.Json.String app.Apps.Registry.name);
            ("static_seconds", Obs.Json.Float static_seconds);
            ("scheduled_seconds", Obs.Json.Float scheduled_seconds);
            ("switch_cycles", Obs.Json.Int switch_cycles);
            ("gain_pct", Obs.Json.Float gain);
          ]

    let run ?noise ?options ?dims ~weights app =
      Obs.Span.with_span ~cat:"dse" "schedule.run"
        ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
      @@ fun span ->
      let dims = match dims with None -> T.schedule_dims | Some d -> d in
      let phases =
        Obs.Span.with_ ~cat:"dse" "schedule.detect"
          ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
          (fun () -> T.detect_phases ?options app)
      in
      let nphases = Sim.Phase.count phases in
      Obs.Span.add_attr span "phases" (Obs.Json.Int nphases);
      Obs.Metrics.Counter.incr ~by:nphases m_schedule_phases;
      record_phases app phases;
      let static = Optimizer.run ?noise ~dims ~weights app in
      let static_seconds = static.Optimizer.actual.Cost.seconds in
      (* A one-phase application, or a schedule that selects the same
         configuration everywhere, degenerates to a static pick (no
         switches happen, so no switch cost is paid). *)
      let static_outcome ~nodes config =
        let scheduled_seconds =
          if T.equal config static.Optimizer.config then static_seconds
          else
            (Engine.eval_on (Engine.default ()) T.probe app config)
              .Cost.seconds
        in
        record_select app 0 config;
        let gain =
          100.0 *. (static_seconds -. scheduled_seconds) /. static_seconds
        in
        Obs.Metrics.Gauge.set m_schedule_gain gain;
        record_verify app ~static_seconds ~scheduled_seconds ~switch_cycles:0
          ~gain;
        {
          app;
          phases;
          static;
          plan = Static config;
          static_seconds;
          scheduled_seconds;
          switch_cycles = 0;
          gain_percent = gain;
          solve_nodes = nodes;
        }
      in
      if nphases = 1 then static_outcome ~nodes:0 static.Optimizer.config
      else begin
        let boundaries = Sim.Phase.boundaries phases in
        let digest = Sim.Phase.digest phases in
        let segmented app config =
          let ph = T.run_app_segmented ~config ~boundaries app in
          ( Sim.Machine.seconds ph.Sim.Machine.result,
            ph.Sim.Machine.result.Sim.Machine.profile,
            ph.Sim.Machine.phase_profiles )
        in
        (* Re-measure every model row per phase: same configurations
           as [Measure.build] (measured point and its reference), but
           through the segmented path so the cache keys carry the
           segmentation digest. *)
        let model = static.Optimizer.model in
        let rows = model.Measure.rows in
        let configs =
          T.base
          :: List.concat_map
               (fun (r : Measure.row) ->
                 let reference = Measure.reference_config r.Measure.var in
                 [ r.Measure.var.T.apply reference; reference ])
               rows
        in
        let results =
          Obs.Span.with_ ~cat:"dse" "schedule.measure"
            ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
            (fun () ->
              Engine.eval_all_segments_on ?noise (Engine.default ()) T.probe
                ~phase:digest ~segmented app configs)
        in
        let sec_tbl = Hashtbl.create 64 in
        List.iter2
          (fun c (_, profs) ->
            Hashtbl.replace sec_tbl
              (T.probe.Target.digest c)
              (Array.of_list
                 (List.map
                    (fun (pr : Sim.Profiler.t) ->
                      float_of_int pr.Sim.Profiler.cycles
                      /. Sim.Machine.clock_hz)
                    profs)))
          configs results;
        let sec p c = (Hashtbl.find sec_tbl (T.probe.Target.digest c)).(p) in
        let base_total = model.Measure.base.Cost.seconds in
        (* Per-phase marginal runtime deltas, normalized by the whole
           base runtime (so summing a row's rho over the phases gives
           back its static rho). *)
        let models =
          List.init nphases (fun p ->
              Measure.with_rows model
                (List.map
                   (fun (r : Measure.row) ->
                     let reference = Measure.reference_config r.Measure.var in
                     let measured = r.Measure.var.T.apply reference in
                     let rho =
                       100.0
                       *. (sec p measured -. sec p reference)
                       /. base_total
                     in
                     {
                       r with
                       Measure.deltas = { r.Measure.deltas with Cost.rho };
                     })
                   rows))
        in
        let sched =
          Obs.Span.with_ ~cat:"dse" "schedule.formulate"
            ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
            (fun () ->
              Formulate.make_schedule ~reps:app.Apps.Registry.reps ~weights
                models)
        in
        let solved =
          Obs.Span.with_ ~cat:"dse" "schedule.solve"
            ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
            (fun () ->
              Optim.Binlp.solve
                ~runner:(Pool.solver_runner (Pool.default ()))
                ~objective_terms:sched.Formulate.switch_terms
                sched.Formulate.problem)
        in
        Obs.Metrics.Counter.incr ~by:solved.Optim.Binlp.nodes m_schedule_nodes;
        match solved.Optim.Binlp.best with
        | None -> failwith "Schedule: scheduled BINLP infeasible"
        | Some solution ->
            let per_phase =
              Formulate.schedule_vars_of_solution sched solution
            in
            let configs = Array.map (T.apply_all T.base) per_phase in
            Array.iter
              (fun c ->
                match T.validate c with
                | Ok () -> ()
                | Error m ->
                    failwith ("Schedule: decoded configuration invalid: " ^ m))
              configs;
            if Array.for_all (fun c -> T.equal c configs.(0)) configs then
              static_outcome ~nodes:solved.Optim.Binlp.nodes configs.(0)
            else begin
              let schedule =
                List.map2
                  (fun s c -> (s, c))
                  (0 :: boundaries) (Array.to_list configs)
              in
              Array.iteri (fun k c -> record_select app k c) configs;
              (if Obs.Journal.enabled () then
                 match schedule with
                 | [] -> ()
                 | (_, first) :: rest ->
                     let rec switches prev = function
                       | [] -> prev
                       | (at, c) :: tl ->
                           record_switch app ~at
                             ~cycles:(T.switch_cycles prev c) c;
                           switches c tl
                     in
                     let last = switches first rest in
                     record_switch app ~at:phases.Sim.Phase.total_insns
                       ~cycles:(T.switch_cycles last first) first);
              let ph =
                Obs.Span.with_ ~cat:"dse" "schedule.verify"
                  ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
                  (fun () -> T.run_app_phased ~schedule app)
              in
              let scheduled_seconds =
                Sim.Machine.seconds ph.Sim.Machine.result
              in
              let gain =
                100.0
                *. (static_seconds -. scheduled_seconds)
                /. static_seconds
              in
              Obs.Metrics.Gauge.set m_schedule_gain gain;
              record_verify app ~static_seconds ~scheduled_seconds
                ~switch_cycles:ph.Sim.Machine.switch_cycles ~gain;
              {
                app;
                phases;
                static;
                plan = Phased schedule;
                static_seconds;
                scheduled_seconds;
                switch_cycles = ph.Sim.Machine.switch_cycles;
                gain_percent = gain;
                solve_nodes = solved.Optim.Binlp.nodes;
              }
            end
      end

    let print ppf (o : outcome) =
      let pf = Format.fprintf in
      pf ppf "  %s:@." o.app.Apps.Registry.name;
      pf ppf "    phases: %d@." (Sim.Phase.count o.phases);
      List.iteri
        (fun k (p : Sim.Phase.phase) ->
          pf ppf "      #%d [%d, %d) %s@." k p.Sim.Phase.start_insn
            p.Sim.Phase.end_insn
            (Sim.Phase.dominant p.Sim.Phase.profile))
        o.phases.Sim.Phase.phases;
      (match o.plan with
      | Static config -> pf ppf "    schedule: static (%s)@." (params_of config)
      | Phased schedule ->
          pf ppf "    schedule:@.";
          List.iter
            (fun (at, c) -> pf ppf "      @%-9d %s@." at (params_of c))
            schedule);
      pf ppf "    static:    %.6fs (%s)@." o.static_seconds
        (params_of o.static.Optimizer.config);
      pf ppf "    scheduled: %.6fs (switch overhead %d cycles)@."
        o.scheduled_seconds o.switch_cycles;
      pf ppf "    gain: %+.2f%% (solver nodes %d)@." o.gain_percent
        o.solve_nodes
  end
end
