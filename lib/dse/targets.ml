(* The target registry: every soft-core backend the DSE stack can
   drive, by name.  CLIs resolve their [--target] flag here; the
   [@targets] test alias iterates [all] so a new backend is picked up
   by the cross-target pipeline checks the moment it is registered. *)

let all : (module Target.S) list =
  [ (module Target_leon2); (module Target_microblaze) ]

let names = List.map (fun (module T : Target.S) -> T.name) all

let find name =
  List.find_opt (fun (module T : Target.S) -> T.name = name) all

let find_exn name =
  match find name with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Targets.find_exn: unknown target %S (known: %s)" name
           (String.concat ", " names))
