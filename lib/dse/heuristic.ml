type result = {
  config : Arch.Config.t;
  cost : Cost.t;
  objective : float;
  builds : int;
  pruned : int;
}

let m_builds =
  Obs.Metrics.Counter.v "heuristic.builds"
    ~help:"configurations built by heuristic searches"

let m_pruned =
  Obs.Metrics.Counter.v "heuristic.pruned"
    ~help:"candidates skipped via static-feature arguments"

let pick rng xs = List.nth xs (Sim.Rng.int rng (List.length xs))

let random_cache rng =
  let ways = pick rng Arch.Config.valid_ways in
  let way_kb = pick rng [ 1; 2; 4; 8; 16; 32 ] in
  let line_words = pick rng Arch.Config.valid_line_words in
  let replacement =
    match ways with
    | 1 -> Arch.Config.Random
    | 2 -> pick rng [ Arch.Config.Random; Arch.Config.Lrr; Arch.Config.Lru ]
    | _ -> pick rng [ Arch.Config.Random; Arch.Config.Lru ]
  in
  { Arch.Config.ways; way_kb; line_words; replacement }

let random_config rng =
  let bool () = Sim.Rng.int rng 2 = 1 in
  {
    Arch.Config.icache = random_cache rng;
    dcache = random_cache rng;
    dcache_fast_read = bool ();
    dcache_fast_write = bool ();
    iu =
      {
        Arch.Config.fast_jump = bool ();
        icc_hold = bool ();
        fast_decode = bool ();
        load_delay = 1 + Sim.Rng.int rng 2;
        reg_windows = pick rng Arch.Config.valid_reg_windows;
        divider = pick rng [ Arch.Config.Div_radix2; Arch.Config.Div_none ];
        multiplier =
          pick rng
            [
              Arch.Config.Mul_none; Arch.Config.Mul_iterative;
              Arch.Config.Mul_16x16; Arch.Config.Mul_16x16_pipe;
              Arch.Config.Mul_32x8; Arch.Config.Mul_32x16; Arch.Config.Mul_32x32;
            ];
      };
    infer_mult_div = bool ();
  }

let evaluate ~weights ~base app config =
  let cost = Engine.eval (Engine.default ()) app config in
  (cost, Cost.objective weights (Cost.deltas ~base cost))

let random_search ?(seed = 0x5EA7C4) ~builds ~weights app =
  if builds < 1 then invalid_arg "Heuristic.random_search: builds must be >= 1";
  Obs.Span.with_ ~cat:"dse" "heuristic.random_search"
    ~attrs:
      [
        ("app", Obs.Json.String app.Apps.Registry.name);
        ("builds", Obs.Json.Int builds);
      ]
  @@ fun () ->
  let rng = Sim.Rng.create ~seed in
  let engine = Engine.default () in
  let base = Engine.eval engine app Arch.Config.base in
  let best = ref (Arch.Config.base, base, 0.0) in
  let spent = ref 0 in
  while !spent < builds do
    let config = random_config rng in
    (* [eval_feasible] elaborates resources once for both the
       feasibility check and the cost; infeasible draws are free. *)
    match Engine.eval_feasible engine app config with
    | None -> ()
    | Some cost ->
        incr spent;
        Obs.Metrics.Counter.incr m_builds;
        let objective = Cost.objective weights (Cost.deltas ~base cost) in
        let _, _, best_obj = !best in
        if objective < best_obj then best := (config, cost, objective)
  done;
  let config, cost, objective = !best in
  { config; cost; objective; builds; pruned = 0 }

(* All alternative values for one parameter group, as configuration
   transformers relative to the current configuration. *)
let group_options (g : Arch.Param.group) =
  let members = Arch.Param.group_members g in
  (* Include "revert to base" for this group by applying the base
     field: approximate by reapplying base values through a synthetic
     transformer. *)
  let to_base (c : Arch.Config.t) =
    let b = Arch.Config.base in
    match g with
    | Arch.Param.Icache_ways ->
        { c with icache = { c.icache with ways = b.icache.ways } }
    | Arch.Param.Icache_way_kb ->
        { c with icache = { c.icache with way_kb = b.icache.way_kb } }
    | Arch.Param.Icache_line ->
        { c with icache = { c.icache with line_words = b.icache.line_words } }
    | Arch.Param.Icache_repl ->
        { c with icache = { c.icache with replacement = b.icache.replacement } }
    | Arch.Param.Dcache_ways ->
        { c with dcache = { c.dcache with ways = b.dcache.ways } }
    | Arch.Param.Dcache_way_kb ->
        { c with dcache = { c.dcache with way_kb = b.dcache.way_kb } }
    | Arch.Param.Dcache_line ->
        { c with dcache = { c.dcache with line_words = b.dcache.line_words } }
    | Arch.Param.Dcache_repl ->
        { c with dcache = { c.dcache with replacement = b.dcache.replacement } }
    | Arch.Param.Fast_read -> { c with dcache_fast_read = b.dcache_fast_read }
    | Arch.Param.Fast_write -> { c with dcache_fast_write = b.dcache_fast_write }
    | Arch.Param.Fast_jump ->
        { c with iu = { c.iu with fast_jump = b.iu.fast_jump } }
    | Arch.Param.Icc_hold -> { c with iu = { c.iu with icc_hold = b.iu.icc_hold } }
    | Arch.Param.Fast_decode ->
        { c with iu = { c.iu with fast_decode = b.iu.fast_decode } }
    | Arch.Param.Load_delay ->
        { c with iu = { c.iu with load_delay = b.iu.load_delay } }
    | Arch.Param.Reg_windows ->
        { c with iu = { c.iu with reg_windows = b.iu.reg_windows } }
    | Arch.Param.Divider -> { c with iu = { c.iu with divider = b.iu.divider } }
    | Arch.Param.Multiplier ->
        { c with iu = { c.iu with multiplier = b.iu.multiplier } }
    | Arch.Param.Infer_mult_div -> { c with infer_mult_div = b.infer_mult_div }
  in
  to_base :: List.map (fun v -> v.Arch.Param.apply) members

(* Is [candidate] provably runtime-identical to [current] by a static
   argument over the application's features?  Three such arguments:

   - the whole code segment fits a single icache way of both
     configurations (contiguous code, so no conflicts either): with
     identical line size the cold-miss sequence is identical and there
     are no capacity or conflict misses to remove, so any icache
     geometry/replacement change between the two is invisible;
   - the binary contains no multiply instruction, so the multiplier
     variant is invisible;
   - likewise for the divider. *)
let statically_equivalent ft (current : Arch.Config.t)
    (candidate : Arch.Config.t) =
  let icache_only =
    Arch.Config.equal { candidate with icache = current.icache } current
  in
  let resident (c : Arch.Config.t) =
    c.icache.way_kb >= Apps.Features.code_resident_kb ft
  in
  (icache_only
  && candidate.icache.line_words = current.icache.line_words
  && resident candidate && resident current)
  || Arch.Config.equal
       { candidate with iu = { candidate.iu with multiplier = current.iu.multiplier } }
       current
     && Apps.Features.mul_free ft
  || Arch.Config.equal
       { candidate with iu = { candidate.iu with divider = current.iu.divider } }
       current
     && Apps.Features.div_free ft

(* Skipping is trajectory-preserving: a pruned candidate has the exact
   runtime of the incumbent and no better LUT or BRAM count, so with
   the (non-negative) weighted objective it can never win the strict
   improvement test.  Both configurations are feasible here, so
   [Estimate.config] is total. *)
let prunable ft current candidate =
  statically_equivalent ft current candidate
  &&
  let rcan = Synth.Estimate.config candidate
  and rcur = Synth.Estimate.config current in
  rcan.Synth.Resource.luts >= rcur.Synth.Resource.luts
  && rcan.Synth.Resource.brams >= rcur.Synth.Resource.brams

let coordinate_descent ?(max_sweeps = 5) ?features ~weights app =
  Obs.Span.with_span ~cat:"dse" "heuristic.coordinate_descent"
    ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
  @@ fun span ->
  let engine = Engine.default () in
  let base = Engine.eval engine app Arch.Config.base in
  let builds = ref 0 in
  let pruned = ref 0 in
  let eval config =
    incr builds;
    Obs.Metrics.Counter.incr m_builds;
    evaluate ~weights ~base app config
  in
  let current = ref Arch.Config.base in
  let current_obj = ref 0.0 in
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < max_sweeps do
    improved := false;
    incr sweeps;
    List.iter
      (fun g ->
        List.iter
          (fun apply ->
            let candidate = apply !current in
            if
              (not (Arch.Config.equal candidate !current))
              && Synth.Estimate.feasible candidate
            then begin
              match features with
              | Some ft when prunable ft !current candidate ->
                  incr pruned;
                  Obs.Metrics.Counter.incr m_pruned
              | _ ->
                  let _, objective = eval candidate in
                  if objective < !current_obj -. 1e-9 then begin
                    current := candidate;
                    current_obj := objective;
                    improved := true
                  end
            end)
          (group_options g))
      Arch.Param.groups
  done;
  let cost = Engine.eval engine app !current in
  Obs.Span.add_attr span "builds" (Obs.Json.Int !builds);
  Obs.Span.add_attr span "pruned" (Obs.Json.Int !pruned);
  {
    config = !current;
    cost;
    objective = !current_obj;
    builds = !builds;
    pruned = !pruned;
  }

let paper_method ~weights app =
  Obs.Span.with_ ~cat:"dse" "heuristic.paper_method"
    ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
  @@ fun () ->
  let model = Measure.build app in
  let o = Optimizer.run_with_model ~weights model in
  let repl_references = 2 (* the 2-way icache/dcache reference builds *) in
  {
    config = o.Optimizer.config;
    cost = o.Optimizer.actual;
    objective =
      Cost.objective weights
        (Cost.deltas ~base:model.Measure.base o.Optimizer.actual);
    builds = 1 + List.length model.Measure.rows + repl_references + 1;
    pruned = 0;
  }

let print_comparison ppf app_name results =
  Format.fprintf ppf "  %s:@." app_name;
  Format.fprintf ppf "    %-22s %8s %8s %12s %10s@." "method" "builds"
    "pruned" "objective" "runtime(s)";
  List.iteri
    (fun k r ->
      let name =
        match k with
        | 0 -> "paper (model+BINLP)"
        | 1 -> "coordinate descent"
        | _ -> Printf.sprintf "random search"
      in
      Format.fprintf ppf "    %-22s %8d %8d %12.2f %10.3f@." name r.builds
        r.pruned r.objective r.cost.Cost.seconds)
    results
