include Leon2.S.Heuristic

let random_config = Target_leon2.random_config
