(** Optimizing one processor for an application {e set} — the paper's
    introduction motivates customization "for a particular application
    or application set", and a deployed soft core typically runs a mix.

    Each application contributes its one-at-a-time runtime deltas
    weighted by its share of execution time; resource deltas are
    configuration properties and identical across applications.  The
    combined model goes through the same Section 4 formulation and
    exact solver, and the recommendation is verified by building it and
    measuring {e every} application on it. *)

type workload = (Apps.Registry.t * float) list
(** Applications with their execution-time shares (normalized
    internally; shares must be positive). *)

type outcome = Leon2.S.Multiapp.outcome = {
  workload : workload;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  mix_gain_percent : float;
      (** share-weighted actual runtime change, negative = faster *)
  per_app : (Apps.Registry.t * float) list;
      (** actual runtime change per application, in percent *)
}

val optimize :
  ?dims:Arch.Param.group list -> weights:Cost.weights -> workload -> outcome
(** @raise Invalid_argument on an empty workload or non-positive
    shares. *)

val print : Format.formatter -> outcome -> unit
