(* The first-class Target abstraction: everything the DSE stack needs
   to know about one soft-core backend, bundled as a module.

   Two views of the same backend:

   - {!S} is the full interface the {!Stack} functor consumes —
     parameter space, codec, validity couplings, resource model,
     formulation structure and simulation; [Stack.Make (T)] instantiates
     the paper's whole measure → formulate → solve → verify pipeline
     for [T].
   - {!probe} is the small first-class record the {!Engine} keys its
     memo cache with: just enough to identify, validate, estimate and
     simulate one configuration.  Keeping it a plain polymorphic record
     (rather than a packed module) lets the engine stay monomorphic in
     ['c] per call while serving every target from one cache. *)

type 'c probe = {
  target : string;
      (** registry name; part of the engine's memo key, so two targets
          sharing an encoding never collide *)
  digest : 'c -> string;  (** content address of the canonical encoding *)
  describe : 'c -> string;
      (** the canonical encoding itself (the codec's [to_string]);
          provenance reports name candidates with it *)
  is_valid : 'c -> bool;
  resources : 'c -> Synth.Resource.t;
  device_luts : int;  (** the target device's capacity *)
  device_brams : int;
  simulate : Apps.Registry.t -> 'c -> float * Sim.Profiler.t;
      (** cycle-accurate (seconds, profile) of one application run *)
  static_bounds : (Apps.Registry.t -> 'c -> float * float) option;
      (** sound [best, worst] runtime bounds (seconds, full
          reps-scaled run — the same unit [simulate] reports) computed
          without simulating; [None] when the backend has no static
          cost model.  The engine's bounds-admission path uses this to
          skip provably dominated simulations. *)
}

module type S = sig
  (** One soft-core backend, as consumed by [Stack.Make]. *)

  type config
  type group

  type var = {
    index : int;  (** 1-based, the paper's x_i subscript *)
    group : group;
    label : string;
    apply : config -> config;
  }

  val name : string
  (** Registry key, e.g. ["leon2"]; lowercase. *)

  val description : string

  (** {2 Configurations} *)

  val base : config
  (** The out-of-the-box configuration every delta is relative to. *)

  val equal : config -> config -> bool
  val validate : config -> (unit, string) result
  val is_valid : config -> bool
  val pp : config Fmt.t

  val to_string : config -> string
  (** Canonical encoding: always emits every field, so structurally
      equal configurations encode (and digest) identically. *)

  val of_string : string -> (config, string) result
  val digest : config -> string

  (** {2 Decision variables} *)

  val vars : var list
  (** All one-at-a-time perturbations, [index] running 1..[var_count]. *)

  val var_count : int
  val var : int -> var
  (** @raise Invalid_argument when out of 1..[var_count]. *)

  val groups : group list
  val group_members : group -> var list
  val group_to_string : group -> string
  val apply_all : config -> var list -> config

  val quick_dims : group list
  (** A small, runtime-sensitive subspace for scaled-down studies and
      smoke runs (the LEON2 instance uses the paper's Section 5 dcache
      geometry dims). *)

  val reference_config : var -> config
  (** The configuration a variable's marginal cost is measured against:
      [base] for most variables; coupled variables (e.g. replacement
      policies that need associativity) use the cheapest configuration
      on which they are structurally valid. *)

  (** {2 Formulation structure} *)

  val couplings : (int * int list) list
  (** Validity couplings [(antecedent, consequents)]: selecting the
      antecedent variable requires selecting at least one consequent
      ([x_a <= sum x_c] in the BINLP). *)

  val products : ((int * float) list * int list) list
  (** Nonlinear resource terms, one per cache: a factor
      [(1 + sum coeff_i x_i)] over the ways variables (with explicit
      multipliers) times the linear combination of the way-size
      variables' deltas.  Variables in no product's size list
      contribute linearly. *)

  (** {2 Resources and device} *)

  val resources : config -> Synth.Resource.t
  (** @raise Invalid_argument on invalid configurations. *)

  val feasible : config -> bool
  (** Valid and fits the target device. *)

  val device_luts : int
  val device_brams : int

  (** {2 Heuristic-search hooks} *)

  val random_config : Sim.Rng.t -> config
  (** A uniformly random structurally-valid configuration. *)

  val group_options : group -> (config -> config) list
  (** All alternative values of one parameter group, as transformers of
      the current configuration (including "revert to base"). *)

  val statically_equivalent : Apps.Features.t -> config -> config -> bool
  (** Is the candidate provably runtime-identical to the current
      configuration by a static argument over the application's
      features?  Used to prune coordinate-descent builds. *)

  (** {2 Reporting} *)

  val changed_params : config -> (string * string) list
  (** Human-readable (parameter, value) pairs where a configuration
      differs from [base]. *)

  val sweep_configs : config list
  (** The target's scaled-down exhaustive geometry sweep (the LEON2
      instance: the paper's 28 dcache ways x way-size points). *)

  val describe_sweep_point : config -> string
  (** Short label of a sweep point, e.g. ["2x16KB"]. *)

  (** {2 Runtime reconfiguration}

      The switch-cost model for phase-scheduled execution, in
      Al-Wattar-style region framing: every runtime-tunable parameter
      group lives in a named floor-plan region, and switching the
      value of a group reprograms that group's slice of its region —
      a fixed cycle price per changed group.  Groups outside every
      region are static: they hold live architectural state (or
      structural logic) and cannot change at runtime, so a schedule
      shares one decision across all phases for them. *)

  val reconfig_regions : (string * group list) list
  (** Disjoint named floor-plan regions covering the runtime-tunable
      groups. *)

  val group_switch_cycles : group -> int
  (** Cycles to reprogram one group's slice of its region; [0] for
      static groups. *)

  val switch_cycles : config -> config -> int
  (** Total reconfiguration cycles between two configurations: the sum
      of [group_switch_cycles] over the groups whose projections
      differ.  [switch_cycles c c = 0]. *)

  val keep_caches_on_switch : bool
  (** Reconfiguration policy: [true] when partial reconfiguration
      leaves an untouched region's block RAM (cache contents) intact
      across a switch; [false] when a switch flushes the caches. *)

  val static_groups : group list
  (** Groups that cannot be switched at runtime (e.g. the LEON2
      register-window file, which holds live architectural state). *)

  val schedule_dims : group list
  (** The default decision dims for schedule solves: a runtime-switch-
      sensitive subspace small enough that per-phase copies of its
      variables keep the scheduled BINLP tractable. *)

  (** {2 Simulation} *)

  val run_app : ?config:config -> Apps.Registry.t -> Sim.Machine.result
  val run_program : ?mem_size:int -> config -> Isa.Program.t -> Sim.Machine.result

  val detect_phases :
    ?options:Sim.Phase.options -> Apps.Registry.t -> Sim.Phase.t
  (** Segment one cold execution of the application on [base] into
      program phases (see {!Sim.Phase}); deterministic. *)

  val run_app_segmented :
    ?config:config -> boundaries:int list -> Apps.Registry.t -> Sim.Machine.phased
  (** Like {!run_app} (bit-identical totals) but additionally carves
      the profile at the given retired-instruction boundaries — the
      per-phase measurement primitive. *)

  val run_app_phased :
    schedule:(int * config) list -> Apps.Registry.t -> Sim.Machine.phased
  (** Execute the application under a reconfiguration schedule
      [(start_insn, config)] (first entry must start at 0), paying
      {!switch_cycles} at each boundary, once per repetition, plus the
      wrap-around switch back to the first configuration at each
      repetition boundary; caches follow [keep_caches_on_switch]. *)

  val cycle_model : config -> Bounds.cycle_model
  (** The configuration's per-class cycle prices — the same shared
      {!Sim.Cost_model} record the simulator's execute handlers charge
      from, re-exported here as the backbone of [probe.static_bounds],
      of {!Bounds} pricing, and of [mcc --bounds]. *)

  val probe : config probe
  (** This target's engine probe; [probe.target = name]. *)
end
