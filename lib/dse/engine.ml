let m_builds =
  Obs.Metrics.Counter.v "dse.builds"
    ~help:"configurations synthesized and executed"

let m_hits =
  Obs.Metrics.Counter.v "dse.engine.hits"
    ~help:"evaluations served from the engine's memo cache"

let m_misses =
  Obs.Metrics.Counter.v "dse.engine.misses"
    ~help:"evaluations computed by the engine (cache misses)"

let m_dedup =
  Obs.Metrics.Counter.v "dse.engine.inflight_dedup"
    ~help:"evaluations collapsed onto an identical in-flight or batched request"

let h_build_seconds =
  Obs.Metrics.Histogram.v "dse.engine.build_seconds"
    ~help:"wall-clock duration of engine build+simulate computations"

(* Content-addressed cache key: the codec's canonical encoding always
   emits every field, so structurally equal configurations digest
   identically.  The target name is part of the key — two targets may
   share an encoding (or even a digest) without their measurements ever
   colliding.  Distinct noise amplitudes are distinct keys — their
   measurements differ, and ablation studies must not observe each
   other's perturbed results. *)
type key = {
  target : string;
  app : string;
  digest : string;
  noise : float option;
  phase : string option;
      (* segmentation digest for per-phase measurements: a segmented
         evaluation of the same configuration is a distinct result
         (it carries per-phase profiles), so it occupies a distinct
         key; [None] for whole-run evaluations *)
}

let key_of ?noise (probe : _ Target.probe) (app : Apps.Registry.t) config =
  {
    target = probe.Target.target;
    app = app.Apps.Registry.name;
    digest = probe.Target.digest config;
    noise;
    phase = None;
  }

type value = {
  cost : Cost.t;
  profile : Sim.Profiler.t;
  fits : bool;
  segments : Sim.Profiler.t list;
      (* per-phase profile deltas for segmented evaluations; [] for
         whole-run ones *)
}

(* [Unfit] holds the (noised) resource estimate of a configuration that
   exceeds the device: a feasibility query needs no simulation, but a
   later forced {!eval} upgrades the entry to [Full] by simulating with
   the saved resources. *)
type entry = Pending | Unfit of Synth.Resource.t | Full of value

type t = {
  mutex : Mutex.t;
  cond : Condition.t; (* signaled whenever an entry leaves [Pending] *)
  table : (key, entry) Hashtbl.t;
  pool : Pool.t option;
      (* [None] = the shared pool, resolved lazily at first batch and
         only on machines with real parallelism: on a single-core host
         a second domain is pure overhead (stop-the-world coordination
         against the mutator), so batches run inline there. *)
}

let create ?pool () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 256;
    pool;
  }

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* Deterministic synthesis "measurement noise": a hash of the
   configuration drives a uniform error in [-1, 1] x amplitude, where
   [amplitude] is a fraction of the target device's LUTs (0.005 =
   ±0.5 %) — the same unit [noise] is documented in throughout the
   interface.  The error is therefore at most
   [amplitude * device_luts] LUTs.  [Hashtbl.hash] is polymorphic, so
   the same formula serves every target's configuration type. *)
let lut_noise ~amplitude ~device_luts config =
  let h = Hashtbl.hash config in
  let u = float_of_int (h land 0xFFFF) /. 65535.0 in
  amplitude *. ((2.0 *. u) -. 1.0) *. float_of_int device_luts

(* Elaborate resources once: feasibility is judged on the un-noised
   estimate against the probe's device, the returned cost carries the
   noised one. *)
let noised_resources ?noise (probe : _ Target.probe) config =
  let resources = probe.Target.resources config in
  let fits =
    resources.Synth.Resource.luts <= probe.Target.device_luts
    && resources.Synth.Resource.brams <= probe.Target.device_brams
  in
  let resources =
    match noise with
    | None -> resources
    | Some amplitude ->
        {
          resources with
          Synth.Resource.luts =
            resources.Synth.Resource.luts
            + int_of_float
                (lut_noise ~amplitude ~device_luts:probe.Target.device_luts
                   config);
        }
  in
  (resources, fits)

let simulate (probe : _ Target.probe) app config =
  Obs.Metrics.Counter.incr m_builds;
  let t0 = Obs.Clock.since_start_ns () in
  let r = probe.Target.simulate app config in
  let dt = Int64.sub (Obs.Clock.since_start_ns ()) t0 in
  Obs.Metrics.Histogram.observe h_build_seconds (Int64.to_float dt *. 1e-9);
  r

(* Segmented counterpart: same accounting, caller-supplied simulation
   returning (seconds, whole-run profile, per-phase profiles). *)
let simulate_segmented f app config =
  Obs.Metrics.Counter.incr m_builds;
  let t0 = Obs.Clock.since_start_ns () in
  let r = f app config in
  let dt = Int64.sub (Obs.Clock.since_start_ns ()) t0 in
  Obs.Metrics.Histogram.observe h_build_seconds (Int64.to_float dt *. 1e-9);
  r

(* Journal identification of one candidate: the application plus the
   codec's canonical encoding (stable across runs, unlike digests,
   and what a reader of an explain report wants to see). *)
let journal_fields (probe : _ Target.probe) (app : Apps.Registry.t) config =
  [
    ("app", Obs.Json.String app.Apps.Registry.name);
    ("config", Obs.Json.String (probe.Target.describe config));
  ]

(* The per-key state machine.  [Pending] is only ever installed by a
   thread about to compute in place, so a waiter always waits on an
   actively running computation — never on a queued task — which keeps
   pool workers deadlock-free when they block here.  A failed compute
   removes its entry and wakes waiters before re-raising, so nobody
   waits on a corpse. *)
let obtain t ~feasible_only ?segmented ?noise probe app config =
  let key =
    {
      (key_of ?noise probe app config) with
      phase = Option.map fst segmented;
    }
  in
  let counted = ref false in
  let journal kind extra =
    if Obs.Journal.enabled () then
      Obs.Journal.record ~kind (journal_fields probe app config @ extra)
  in
  let hit r =
    if not !counted then begin
      Obs.Metrics.Counter.incr m_hits;
      journal "engine.hit" []
    end;
    r
  in
  let compute prior =
    Obs.Metrics.Counter.incr m_misses;
    match
      Obs.Span.with_ ~cat:"dse" "engine.build"
        ~attrs:[ ("app", Obs.Json.String key.app) ]
      @@ fun () ->
      let resources, fits =
        match prior with
        | Some r -> (r, false) (* a cached [Unfit]: skip re-elaboration *)
        | None -> noised_resources ?noise probe config
      in
      if feasible_only && not fits then Unfit resources
      else begin
        match segmented with
        | None ->
            let seconds, profile = simulate probe app config in
            Full { cost = { Cost.seconds; resources }; profile; fits;
                   segments = [] }
        | Some (_, f) ->
            let seconds, profile, segments = simulate_segmented f app config in
            Full { cost = { Cost.seconds; resources }; profile; fits;
                   segments }
      end
    with
    | entry ->
        Mutex.lock t.mutex;
        Hashtbl.replace t.table key entry;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        (match entry with
        | Full v -> journal "engine.build" [ ("fits", Obs.Json.Bool v.fits) ]
        | Unfit _ -> journal "engine.unfit" []
        | Pending -> ());
        entry
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        Printexc.raise_with_backtrace e bt
  in
  Mutex.lock t.mutex;
  let rec loop () =
    match Hashtbl.find_opt t.table key with
    | Some (Full _ as e) ->
        Mutex.unlock t.mutex;
        hit e
    | Some (Unfit _ as e) when feasible_only ->
        Mutex.unlock t.mutex;
        hit e
    | Some (Unfit r) ->
        (* A forced build of a known-unfit configuration. *)
        Hashtbl.replace t.table key Pending;
        Mutex.unlock t.mutex;
        compute (Some r)
    | Some Pending ->
        if not !counted then begin
          counted := true;
          Obs.Metrics.Counter.incr m_dedup;
          journal "engine.dedup" []
        end;
        Condition.wait t.cond t.mutex;
        loop ()
    | None ->
        Hashtbl.replace t.table key Pending;
        Mutex.unlock t.mutex;
        compute None
  in
  loop ()

(* [_uncounted] variants run the request without pool task accounting:
   they are what {!batch} submits to the pool (whose [Pool.map] /
   [Pool.run_inline] already count each unique request), while the
   public single-evaluation entry points below wrap them in
   {!Pool.run_inline} so sequential searches — coordinate descent,
   the paper method, random search — show up in [dse.pool.tasks] too
   instead of leaving it at 0. *)
let eval_on_uncounted ?noise t probe app config =
  match obtain t ~feasible_only:false ?noise probe app config with
  | Full v -> v.cost
  | Unfit _ | Pending -> assert false

let eval_on ?noise t probe app config =
  Pool.run_inline (fun () -> eval_on_uncounted ?noise t probe app config)

let eval_profiled_on ?noise t probe app config =
  Pool.run_inline (fun () ->
      match obtain t ~feasible_only:false ?noise probe app config with
      | Full v -> (v.cost, v.profile)
      | Unfit _ | Pending -> assert false)

let eval_segments_on_uncounted ?noise t probe ~phase ~segmented app config =
  match
    obtain t ~feasible_only:false ~segmented:(phase, segmented) ?noise probe
      app config
  with
  | Full v -> (v.cost, v.segments)
  | Unfit _ | Pending -> assert false

let eval_segments_on ?noise t probe ~phase ~segmented app config =
  Pool.run_inline (fun () ->
      eval_segments_on_uncounted ?noise t probe ~phase ~segmented app config)

let journal_infeasible probe app config reason =
  if Obs.Journal.enabled () then
    Obs.Journal.record ~kind:"engine.infeasible"
      (journal_fields probe app config
      @ [ ("reason", Obs.Json.String reason) ])

let eval_feasible_on_uncounted ?noise t (probe : _ Target.probe) app config =
  if not (probe.Target.is_valid config) then begin
    journal_infeasible probe app config "invalid";
    None
  end
  else
    match obtain t ~feasible_only:true ?noise probe app config with
    | Full v -> if v.fits then Some v.cost else None
    | Unfit _ -> None
    | Pending -> assert false

let eval_feasible_on ?noise t probe app config =
  Pool.run_inline (fun () ->
      eval_feasible_on_uncounted ?noise t probe app config)

type admission =
  | Infeasible
  | Pruned of float * float
  | Evaluated of Cost.t

(* Bounds admission: before paying for a simulation, compare the
   configuration's static lower runtime bound against the caller's
   cutoff — the runtime above which the candidate provably cannot
   matter (e.g. cannot beat a search's incumbent).  The cutoff is a
   function of the candidate's resources so callers can fold resource
   terms of their objective into it; it receives exactly the resource
   estimate a full evaluation would report.  Pruned configurations are
   never simulated and never cached (a later unbounded evaluation
   computes them normally). *)
let eval_bounded_on ?noise ~cutoff t (probe : _ Target.probe) app config =
  let admit () =
    match eval_feasible_on ?noise t probe app config with
    | None -> Infeasible
    | Some cost -> Evaluated cost
  in
  if not (probe.Target.is_valid config) then begin
    journal_infeasible probe app config "invalid";
    Infeasible
  end
  else
    match probe.Target.static_bounds with
    | None -> admit ()
    | Some bounds_of ->
        let resources, fits = noised_resources ?noise probe config in
        if not fits then begin
          journal_infeasible probe app config "unfit";
          Infeasible
        end
        else
          let limit = cutoff resources in
          if limit = infinity then admit ()
          else begin
            let lo, hi = bounds_of app config in
            Obs.Metrics.Counter.incr Bounds.m_computed;
            if Obs.Journal.enabled () then
              Obs.Journal.record ~kind:"bounds.computed"
                (journal_fields probe app config
                @ [
                    ("lo", Obs.Json.Float lo);
                    ("hi", Obs.Json.Float hi);
                    ( "tightness",
                      match Bounds.tightness ~lo ~hi with
                      | Some r -> Obs.Json.Float r
                      | None -> Obs.Json.Null );
                  ]);
            if lo > limit then begin
              Obs.Metrics.Counter.incr Bounds.m_pruned;
              if Obs.Journal.enabled () then
                Obs.Journal.record ~kind:"engine.pruned"
                  (journal_fields probe app config
                  @ [
                      ("lo", Obs.Json.Float lo);
                      ("hi", Obs.Json.Float hi);
                      ("cutoff", Obs.Json.Float limit);
                    ]);
              Pruned (lo, hi)
            end
            else admit ()
          end

(* Force lazily compiled programs before any pool fan-out: [Lazy] is
   not domain-safe. *)
let force_programs apps =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (app : Apps.Registry.t) ->
      if not (Hashtbl.mem seen app.Apps.Registry.name) then begin
        Hashtbl.add seen app.Apps.Registry.name ();
        ignore (Lazy.force app.Apps.Registry.program)
      end)
    apps

(* Collapse a keyed batch to its distinct requests (first occurrence
   order), counting (and journalling) the collapsed repeats, evaluate
   the distinct ones on the pool, and fan the results back out in
   input order. *)
let batch ~span_name ~journal_dedup t keyed evaluate =
  let seen = Hashtbl.create 64 in
  let uniques =
    List.filter
      (fun (k, req) ->
        if Hashtbl.mem seen k then begin
          Obs.Metrics.Counter.incr m_dedup;
          journal_dedup req;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      keyed
  in
  Obs.Span.with_ ~cat:"dse" span_name
    ~attrs:
      [
        ("items", Obs.Json.Int (List.length keyed));
        ("unique", Obs.Json.Int (List.length uniques));
      ]
  @@ fun () ->
  let eval_one (_, req) = evaluate req in
  let results =
    match t.pool with
    | Some pool -> Pool.map pool eval_one uniques
    | None when Domain.recommended_domain_count () > 1 ->
        Pool.map (Pool.default ()) eval_one uniques
    | None ->
        (* Single-core fallback: run on the caller, but still through
           the pool's task accounting so [dse.pool.tasks] reflects the
           work actually done (it used to stay 0 here). *)
        List.map (fun x -> Pool.run_inline (fun () -> eval_one x)) uniques
  in
  let by_key = Hashtbl.create 64 in
  List.iter2 (fun (k, _) r -> Hashtbl.replace by_key k r) uniques results;
  List.map (fun (k, _) -> Hashtbl.find by_key k) keyed

let eval_all_on ?noise t probe pairs =
  match pairs with
  | [] -> []
  | [ (app, config) ] -> [ eval_on ?noise t probe app config ]
  | _ ->
      force_programs (List.map fst pairs);
      let keyed =
        List.map
          (fun (app, config) -> (key_of ?noise probe app config, (app, config)))
          pairs
      in
      batch ~span_name:"engine.eval_all" t keyed
        ~journal_dedup:(fun (app, config) ->
          if Obs.Journal.enabled () then
            Obs.Journal.record ~kind:"engine.dedup"
              (journal_fields probe app config))
        (fun (app, config) -> eval_on_uncounted ?noise t probe app config)

let eval_all_feasible_on ?noise t probe app configs =
  match configs with
  | [] -> []
  | [ config ] -> [ eval_feasible_on ?noise t probe app config ]
  | _ ->
      ignore (Lazy.force app.Apps.Registry.program);
      let keyed =
        List.map (fun config -> (key_of ?noise probe app config, config)) configs
      in
      batch ~span_name:"engine.eval_all" t keyed
        ~journal_dedup:(fun config ->
          if Obs.Journal.enabled () then
            Obs.Journal.record ~kind:"engine.dedup"
              (journal_fields probe app config))
        (fun config -> eval_feasible_on_uncounted ?noise t probe app config)

let eval_all_segments_on ?noise t probe ~phase ~segmented app configs =
  match configs with
  | [] -> []
  | [ config ] ->
      [ eval_segments_on ?noise t probe ~phase ~segmented app config ]
  | _ ->
      ignore (Lazy.force app.Apps.Registry.program);
      let keyed =
        List.map
          (fun config ->
            ( { (key_of ?noise probe app config) with phase = Some phase },
              config ))
          configs
      in
      batch ~span_name:"engine.eval_all" t keyed
        ~journal_dedup:(fun config ->
          if Obs.Journal.enabled () then
            Obs.Journal.record ~kind:"engine.dedup"
              (journal_fields probe app config))
        (fun config ->
          eval_segments_on_uncounted ?noise t probe ~phase ~segmented app
            config)

(* The historical LEON2-typed entry points, now thin wrappers over the
   probe-parametric API. *)

let eval ?noise t app config = eval_on ?noise t Target_leon2.probe app config

let eval_profiled ?noise t app config =
  eval_profiled_on ?noise t Target_leon2.probe app config

let eval_feasible ?noise t app config =
  eval_feasible_on ?noise t Target_leon2.probe app config

let eval_all ?noise t pairs = eval_all_on ?noise t Target_leon2.probe pairs

let eval_all_feasible ?noise t app configs =
  eval_all_feasible_on ?noise t Target_leon2.probe app configs

let default_mutex = Mutex.create ()
let default_engine = ref None

let default () =
  Mutex.lock default_mutex;
  let e =
    match !default_engine with
    | Some e -> e
    | None ->
        let e = create () in
        default_engine := Some e;
        e
  in
  Mutex.unlock default_mutex;
  e
