(* The LEON2 reference target: the paper's own soft core, packaged as
   a {!Target.S} instance.  No interface file on purpose — the type
   equalities ([config = Arch.Config.t], [var = Arch.Param.var]) must
   stay visible so the pre-existing LEON2-typed modules ({!Measure},
   {!Optimizer}, ...) interoperate with the functorized stack without
   any conversion. *)

type config = Arch.Config.t
type group = Arch.Param.group

type var = Arch.Param.var = {
  index : int;
  group : group;
  label : string;
  apply : config -> config;
}

let name = "leon2"
let description = "LEON2 SPARC V8 soft core (the paper's platform)"
let base = Arch.Config.base
let equal = Arch.Config.equal
let validate = Arch.Config.validate
let is_valid = Arch.Config.is_valid
let pp = Arch.Config.pp
let to_string = Arch.Codec.to_string
let of_string = Arch.Codec.of_string
let digest = Arch.Codec.digest
let vars = Arch.Param.all
let var_count = Arch.Param.count
let var = Arch.Param.var
let groups = Arch.Param.groups
let group_members = Arch.Param.group_members
let group_to_string = Arch.Param.group_to_string
let apply_all = Arch.Param.apply_all
let quick_dims = Arch.Param.dcache_size_dims

(* Reference configuration against which a variable's marginal cost is
   taken: base, except for replacement policies, which are structurally
   invalid on the 1-way base cache and referenced to a plain 2-way
   configuration (the x10<=x1 couplings make the solver pick them only
   together with added ways). *)
let reference_config (var : var) =
  let two_way_icache c =
    { c with Arch.Config.icache = { c.Arch.Config.icache with ways = 2 } }
  in
  let two_way_dcache c =
    { c with Arch.Config.dcache = { c.Arch.Config.dcache with ways = 2 } }
  in
  match var.group with
  | Arch.Param.Icache_repl -> two_way_icache Arch.Config.base
  | Arch.Param.Dcache_repl -> two_way_dcache Arch.Config.base
  | _ -> Arch.Config.base

(* The paper's Section 4 couplings: LRR requires 2-way associativity,
   LRU requires multi-way. *)
let couplings =
  [
    (10, [ 1 ]);             (* icache LRR needs 2 ways *)
    (11, [ 1; 2; 3 ]);       (* icache LRU needs multiway *)
    (21, [ 12 ]);            (* dcache LRR *)
    (22, [ 12; 13; 14 ]);    (* dcache LRU *)
  ]

(* The paper's nonlinear cache terms: per cache, the ways factor
   (1 + x1 + 2 x2 + 3 x3 on top of the implicit single base way) times
   the per-way size deltas. *)
let products =
  [
    ([ (1, 1.0); (2, 2.0); (3, 3.0) ], [ 4; 5; 6; 7; 8 ]);
    ([ (12, 1.0); (13, 2.0); (14, 3.0) ], [ 15; 16; 17; 18; 19 ]);
  ]

let resources = Synth.Estimate.config
let feasible = Synth.Estimate.feasible
let device_luts = Synth.Device.luts
let device_brams = Synth.Device.brams

let pick rng xs = List.nth xs (Sim.Rng.int rng (List.length xs))

let random_cache rng =
  let ways = pick rng Arch.Config.valid_ways in
  let way_kb = pick rng [ 1; 2; 4; 8; 16; 32 ] in
  let line_words = pick rng Arch.Config.valid_line_words in
  let replacement =
    match ways with
    | 1 -> Arch.Config.Random
    | 2 -> pick rng [ Arch.Config.Random; Arch.Config.Lrr; Arch.Config.Lru ]
    | _ -> pick rng [ Arch.Config.Random; Arch.Config.Lru ]
  in
  { Arch.Config.ways; way_kb; line_words; replacement }

let random_config rng =
  let bool () = Sim.Rng.int rng 2 = 1 in
  {
    Arch.Config.icache = random_cache rng;
    dcache = random_cache rng;
    dcache_fast_read = bool ();
    dcache_fast_write = bool ();
    iu =
      {
        Arch.Config.fast_jump = bool ();
        icc_hold = bool ();
        fast_decode = bool ();
        load_delay = 1 + Sim.Rng.int rng 2;
        reg_windows = pick rng Arch.Config.valid_reg_windows;
        divider = pick rng [ Arch.Config.Div_radix2; Arch.Config.Div_none ];
        multiplier =
          pick rng
            [
              Arch.Config.Mul_none; Arch.Config.Mul_iterative;
              Arch.Config.Mul_16x16; Arch.Config.Mul_16x16_pipe;
              Arch.Config.Mul_32x8; Arch.Config.Mul_32x16; Arch.Config.Mul_32x32;
            ];
      };
    infer_mult_div = bool ();
  }

(* All alternative values for one parameter group, as configuration
   transformers relative to the current configuration; "revert to base"
   comes first. *)
let group_options (g : group) =
  let members = Arch.Param.group_members g in
  let to_base (c : Arch.Config.t) =
    let b = Arch.Config.base in
    match g with
    | Arch.Param.Icache_ways ->
        { c with icache = { c.icache with ways = b.icache.ways } }
    | Arch.Param.Icache_way_kb ->
        { c with icache = { c.icache with way_kb = b.icache.way_kb } }
    | Arch.Param.Icache_line ->
        { c with icache = { c.icache with line_words = b.icache.line_words } }
    | Arch.Param.Icache_repl ->
        { c with icache = { c.icache with replacement = b.icache.replacement } }
    | Arch.Param.Dcache_ways ->
        { c with dcache = { c.dcache with ways = b.dcache.ways } }
    | Arch.Param.Dcache_way_kb ->
        { c with dcache = { c.dcache with way_kb = b.dcache.way_kb } }
    | Arch.Param.Dcache_line ->
        { c with dcache = { c.dcache with line_words = b.dcache.line_words } }
    | Arch.Param.Dcache_repl ->
        { c with dcache = { c.dcache with replacement = b.dcache.replacement } }
    | Arch.Param.Fast_read -> { c with dcache_fast_read = b.dcache_fast_read }
    | Arch.Param.Fast_write -> { c with dcache_fast_write = b.dcache_fast_write }
    | Arch.Param.Fast_jump ->
        { c with iu = { c.iu with fast_jump = b.iu.fast_jump } }
    | Arch.Param.Icc_hold -> { c with iu = { c.iu with icc_hold = b.iu.icc_hold } }
    | Arch.Param.Fast_decode ->
        { c with iu = { c.iu with fast_decode = b.iu.fast_decode } }
    | Arch.Param.Load_delay ->
        { c with iu = { c.iu with load_delay = b.iu.load_delay } }
    | Arch.Param.Reg_windows ->
        { c with iu = { c.iu with reg_windows = b.iu.reg_windows } }
    | Arch.Param.Divider -> { c with iu = { c.iu with divider = b.iu.divider } }
    | Arch.Param.Multiplier ->
        { c with iu = { c.iu with multiplier = b.iu.multiplier } }
    | Arch.Param.Infer_mult_div -> { c with infer_mult_div = b.infer_mult_div }
  in
  to_base :: List.map (fun v -> v.Arch.Param.apply) members

(* Is [candidate] provably runtime-identical to [current] by a static
   argument over the application's features?  Three such arguments:

   - the whole code segment fits a single icache way of both
     configurations (contiguous code, so no conflicts either): with
     identical line size the cold-miss sequence is identical and there
     are no capacity or conflict misses to remove, so any icache
     geometry/replacement change between the two is invisible;
   - the binary contains no multiply instruction, so the multiplier
     variant is invisible;
   - likewise for the divider. *)
let statically_equivalent ft (current : Arch.Config.t)
    (candidate : Arch.Config.t) =
  let icache_only =
    Arch.Config.equal { candidate with icache = current.icache } current
  in
  let resident (c : Arch.Config.t) =
    c.icache.way_kb >= Apps.Features.code_resident_kb ft
  in
  (icache_only
  && candidate.icache.line_words = current.icache.line_words
  && resident candidate && resident current)
  || Arch.Config.equal
       { candidate with iu = { candidate.iu with multiplier = current.iu.multiplier } }
       current
     && Apps.Features.mul_free ft
  || Arch.Config.equal
       { candidate with iu = { candidate.iu with divider = current.iu.divider } }
       current
     && Apps.Features.div_free ft

let changed_params (config : Arch.Config.t) =
  let b = Arch.Config.base in
  let add acc name f v = if f then (name, v) :: acc else acc in
  let cache_diff which (c : Arch.Config.cache) (bc : Arch.Config.cache) acc =
    let acc =
      add acc (which ^ "sets") (c.ways <> bc.ways) (string_of_int c.ways)
    in
    let acc =
      add acc (which ^ "setsz") (c.way_kb <> bc.way_kb) (string_of_int c.way_kb)
    in
    let acc =
      add acc (which ^ "linesz")
        (c.line_words <> bc.line_words)
        (string_of_int c.line_words)
    in
    add acc (which ^ "replace")
      (c.replacement <> bc.replacement)
      (Arch.Config.replacement_to_string c.replacement)
  in
  []
  |> cache_diff "icach" config.icache b.icache
  |> cache_diff "dcach" config.dcache b.dcache
  |> (fun acc ->
       add acc "fastread" (config.dcache_fast_read <> b.dcache_fast_read)
         (if config.dcache_fast_read then "on" else "off"))
  |> (fun acc ->
       add acc "fastwrite" (config.dcache_fast_write <> b.dcache_fast_write)
         (if config.dcache_fast_write then "on" else "off"))
  |> (fun acc ->
       add acc "fastjump" (config.iu.fast_jump <> b.iu.fast_jump)
         (if config.iu.fast_jump then "on" else "off"))
  |> (fun acc ->
       add acc "icchold" (config.iu.icc_hold <> b.iu.icc_hold)
         (if config.iu.icc_hold then "on" else "off"))
  |> (fun acc ->
       add acc "fastdecode" (config.iu.fast_decode <> b.iu.fast_decode)
         (if config.iu.fast_decode then "on" else "off"))
  |> (fun acc ->
       add acc "loaddelay" (config.iu.load_delay <> b.iu.load_delay)
         (string_of_int config.iu.load_delay))
  |> (fun acc ->
       add acc "registers" (config.iu.reg_windows <> b.iu.reg_windows)
         (string_of_int config.iu.reg_windows))
  |> (fun acc ->
       add acc "divider" (config.iu.divider <> b.iu.divider)
         (Arch.Config.divider_to_string config.iu.divider))
  |> (fun acc ->
       add acc "multiplier" (config.iu.multiplier <> b.iu.multiplier)
         (Arch.Config.multiplier_to_string config.iu.multiplier))
  |> (fun acc ->
       add acc "infermuldiv" (config.infer_mult_div <> b.infer_mult_div)
         (string_of_bool config.infer_mult_div))
  |> List.rev

let sweep_configs = Arch.Space.dcache_geometry ()

let describe_sweep_point (c : Arch.Config.t) =
  Printf.sprintf "%dx%dKB" c.Arch.Config.dcache.ways c.Arch.Config.dcache.way_kb

(* Runtime reconfiguration model, in Al-Wattar-style region framing:
   the tunable parameter groups live in three floor-planned regions
   (icache, dcache, integer unit); switching one group's value
   reprograms that group's slice of its region at a fixed cycle price.
   The cache regions are larger bitstreams (block RAM + tag logic)
   than the IU's mux-dominated slices.  The register-window file holds
   live architectural state, so it is static — a schedule shares one
   window-count decision across all phases.  LEON2 models partial
   reconfiguration: a region (and its block RAM contents, i.e. cache
   state) not touched by a switch stays intact. *)
let reconfig_regions =
  [
    ( "icache",
      [
        Arch.Param.Icache_ways; Arch.Param.Icache_way_kb;
        Arch.Param.Icache_line; Arch.Param.Icache_repl;
      ] );
    ( "dcache",
      [
        Arch.Param.Dcache_ways; Arch.Param.Dcache_way_kb;
        Arch.Param.Dcache_line; Arch.Param.Dcache_repl;
        Arch.Param.Fast_read; Arch.Param.Fast_write;
      ] );
    ( "iu",
      [
        Arch.Param.Fast_jump; Arch.Param.Icc_hold; Arch.Param.Fast_decode;
        Arch.Param.Load_delay; Arch.Param.Divider; Arch.Param.Multiplier;
        Arch.Param.Infer_mult_div;
      ] );
  ]

let static_groups = [ Arch.Param.Reg_windows ]

let group_switch_cycles (g : group) =
  let cache = 6_000 and iu = 2_500 in
  match g with
  | Arch.Param.Icache_ways | Arch.Param.Icache_way_kb | Arch.Param.Icache_line
  | Arch.Param.Icache_repl | Arch.Param.Dcache_ways | Arch.Param.Dcache_way_kb
  | Arch.Param.Dcache_line | Arch.Param.Dcache_repl | Arch.Param.Fast_read
  | Arch.Param.Fast_write ->
      cache
  | Arch.Param.Fast_jump | Arch.Param.Icc_hold | Arch.Param.Fast_decode
  | Arch.Param.Load_delay | Arch.Param.Divider | Arch.Param.Multiplier
  | Arch.Param.Infer_mult_div ->
      iu
  | Arch.Param.Reg_windows -> 0

let group_changed (a : Arch.Config.t) (b : Arch.Config.t) (g : group) =
  match g with
  | Arch.Param.Icache_ways -> a.icache.ways <> b.icache.ways
  | Arch.Param.Icache_way_kb -> a.icache.way_kb <> b.icache.way_kb
  | Arch.Param.Icache_line -> a.icache.line_words <> b.icache.line_words
  | Arch.Param.Icache_repl -> a.icache.replacement <> b.icache.replacement
  | Arch.Param.Dcache_ways -> a.dcache.ways <> b.dcache.ways
  | Arch.Param.Dcache_way_kb -> a.dcache.way_kb <> b.dcache.way_kb
  | Arch.Param.Dcache_line -> a.dcache.line_words <> b.dcache.line_words
  | Arch.Param.Dcache_repl -> a.dcache.replacement <> b.dcache.replacement
  | Arch.Param.Fast_read -> a.dcache_fast_read <> b.dcache_fast_read
  | Arch.Param.Fast_write -> a.dcache_fast_write <> b.dcache_fast_write
  | Arch.Param.Fast_jump -> a.iu.fast_jump <> b.iu.fast_jump
  | Arch.Param.Icc_hold -> a.iu.icc_hold <> b.iu.icc_hold
  | Arch.Param.Fast_decode -> a.iu.fast_decode <> b.iu.fast_decode
  | Arch.Param.Load_delay -> a.iu.load_delay <> b.iu.load_delay
  | Arch.Param.Reg_windows -> a.iu.reg_windows <> b.iu.reg_windows
  | Arch.Param.Divider -> a.iu.divider <> b.iu.divider
  | Arch.Param.Multiplier -> a.iu.multiplier <> b.iu.multiplier
  | Arch.Param.Infer_mult_div -> a.infer_mult_div <> b.infer_mult_div

let switch_cycles a b =
  List.fold_left
    (fun acc g -> if group_changed a b g then acc + group_switch_cycles g else acc)
    0 Arch.Param.groups

let keep_caches_on_switch = true

let schedule_dims =
  [
    Arch.Param.Icache_way_kb; Arch.Param.Icache_line; Arch.Param.Dcache_way_kb;
    Arch.Param.Dcache_line;
  ]

let run_app = Apps.Registry.run
let run_program ?mem_size config prog = Sim.Machine.run ?mem_size config prog

let detect_phases ?options (app : Apps.Registry.t) =
  Sim.Phase.detect ?options base (Lazy.force app.Apps.Registry.program)

let run_app_segmented ?(config = base) ~boundaries (app : Apps.Registry.t) =
  Sim.Machine.run_segmented ~reps:app.Apps.Registry.reps ~boundaries config
    (Lazy.force app.Apps.Registry.program)

let run_app_phased ~schedule (app : Apps.Registry.t) =
  match schedule with
  | [] -> invalid_arg "Target_leon2.run_app_phased: empty schedule"
  | (s0, first) :: rest ->
      if s0 <> 0 then
        invalid_arg "Target_leon2.run_app_phased: schedule must start at 0";
      let rec switches prev = function
        | [] -> []
        | (at, c) :: tl ->
            {
              Sim.Machine.at_insn = at;
              config = c;
              shift_stall = 0;
              cycles = switch_cycles prev c;
            }
            :: switches c tl
      in
      let last = List.fold_left (fun _ (_, c) -> c) first rest in
      Sim.Machine.run_phased ~reps:app.Apps.Registry.reps
        ~keep_caches:keep_caches_on_switch
        ~wrap_cycles:(switch_cycles last first)
        ~switches:(switches first rest) first
        (Lazy.force app.Apps.Registry.program)

(* LEON2 has a barrel shifter: shifts are single-cycle. *)
let cycle_model config = Bounds.of_arch_config config

let probe =
  {
    Target.target = name;
    digest;
    describe = to_string;
    is_valid;
    resources;
    device_luts;
    device_brams;
    simulate =
      (fun app config ->
        let result = Apps.Registry.run ~config app in
        (Sim.Machine.seconds result, result.Sim.Machine.profile));
    static_bounds =
      Some (fun app config -> Bounds.app_bounds (cycle_model config) app);
  }
