type measurement = {
  seconds : float;
  millijoules : float;
  average_milliwatts : float;
  cost : Cost.t;
}

(* Static power: leakage plus clock-tree load of the occupied fabric. *)
let static_milliwatts_of (r : Synth.Resource.t) =
  20.0
  +. (0.002 *. float_of_int r.Synth.Resource.luts)
  +. (0.05 *. float_of_int r.Synth.Resource.brams)

let static_milliwatts config = static_milliwatts_of (Synth.Estimate.config config)

let log2f n = log (float_of_int n) /. log 2.0

(* Per-event dynamic energies in nanojoules. *)
let cache_access_nj (c : Arch.Config.cache) =
  0.25 +. (0.08 *. float_of_int c.ways) +. (0.04 *. log2f (c.way_kb * 1024))

let line_fill_nj (c : Arch.Config.cache) =
  6.0 +. (0.8 *. float_of_int c.line_words)

let mult_nj = function
  | Arch.Config.Mul_none -> 12.0      (* software shift-add loop *)
  | Arch.Config.Mul_iterative -> 6.0  (* 35 cycles of a small adder *)
  | Arch.Config.Mul_16x16 -> 2.2
  | Arch.Config.Mul_16x16_pipe -> 2.3
  | Arch.Config.Mul_32x8 -> 2.8
  | Arch.Config.Mul_32x16 -> 3.6
  | Arch.Config.Mul_32x32 -> 4.8      (* one pass of a big array *)

let div_nj = function
  | Arch.Config.Div_radix2 -> 12.0
  | Arch.Config.Div_none -> 30.0      (* software long division *)

let dynamic_nanojoules_per_event (config : Arch.Config.t) (p : Sim.Profiler.t) =
  let f = float_of_int in
  (0.9 *. f p.Sim.Profiler.instructions)
  +. (cache_access_nj config.icache *. f p.Sim.Profiler.instructions)
  +. (cache_access_nj config.dcache
     *. f (p.Sim.Profiler.dcache_reads + p.Sim.Profiler.dcache_writes))
  +. (line_fill_nj config.icache *. f p.Sim.Profiler.icache_misses)
  +. (line_fill_nj config.dcache *. f p.Sim.Profiler.dcache_read_misses)
  +. (1.2 *. f p.Sim.Profiler.dcache_writes) (* write-through bus traffic *)
  +. (mult_nj config.iu.multiplier *. f p.Sim.Profiler.mults)
  +. (div_nj config.iu.divider *. f p.Sim.Profiler.divs)
  +. (0.3 *. f p.Sim.Profiler.taken_branches)

(* One memoized engine evaluation yields runtime, resources and the
   execution profile: the energy model charges its per-event costs
   without a second simulation or resource elaboration. *)
let measure app config =
  let cost, profile = Engine.eval_profiled (Engine.default ()) app config in
  let seconds = cost.Cost.seconds in
  let dynamic_mj = dynamic_nanojoules_per_event config profile /. 1e6 in
  let static_mw = static_milliwatts_of cost.Cost.resources in
  let millijoules = (static_mw *. seconds) +. dynamic_mj in
  { seconds; millijoules; average_milliwatts = millijoules /. seconds; cost }

type weights = { w1 : float; w2 : float; w3 : float }

let energy_weights = { w1 = 1.0; w2 = 1.0; w3 = 100.0 }

type outcome = {
  base : measurement;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  actual : measurement;
  runtime_change_percent : float;
  energy_change_percent : float;
}

(* Marginal energy delta of one decision variable, in percent of the
   base energy, measured against the same reference Measure uses. *)
let epsilon app ~base (var : Arch.Param.var) =
  let reference = Measure.reference_config var in
  let ref_m =
    if Arch.Config.equal reference Arch.Config.base then base
    else measure app reference
  in
  let m = measure app (var.Arch.Param.apply reference) in
  100.0 *. (m.millijoules -. ref_m.millijoules) /. base.millijoules

let optimize ~weights app =
  let model = Measure.build app in
  let base = measure app Arch.Config.base in
  let eps = Hashtbl.create 64 in
  List.iter
    (fun (r : Measure.row) ->
      Hashtbl.add eps r.Measure.var.Arch.Param.index
        (epsilon app ~base r.Measure.var))
    model.Measure.rows;
  let objective (r : Measure.row) =
    let d = r.Measure.deltas in
    (weights.w1 *. d.Cost.rho)
    +. (weights.w2 *. (d.Cost.lambda +. d.Cost.beta))
    +. (weights.w3 *. Hashtbl.find eps r.Measure.var.Arch.Param.index)
  in
  let problem = Formulate.make_custom ~objective model in
  let solved =
    Optim.Binlp.solve ~runner:(Pool.solver_runner (Pool.default ())) problem
  in
  match solved.Optim.Binlp.best with
  | None -> failwith "Energy.optimize: infeasible"
  | Some solution ->
      let selected = Formulate.vars_of_solution model solution in
      let config = Arch.Param.apply_all Arch.Config.base selected in
      let actual = measure app config in
      {
        base;
        selected;
        config;
        actual;
        runtime_change_percent =
          100.0 *. (actual.seconds -. base.seconds) /. base.seconds;
        energy_change_percent =
          100.0 *. (actual.millijoules -. base.millijoules) /. base.millijoules;
      }

let print_outcome ppf o =
  Format.fprintf ppf "  reconfigured: %s@."
    (String.concat ", "
       (List.map
          (fun (k, v) -> k ^ "=" ^ v)
          (Report.changed_params o.config)));
  Format.fprintf ppf
    "  base:   %.3f s, %.1f mJ (%.1f mW average)@." o.base.seconds
    o.base.millijoules o.base.average_milliwatts;
  Format.fprintf ppf
    "  tuned:  %.3f s, %.1f mJ (%.1f mW average)@." o.actual.seconds
    o.actual.millijoules o.actual.average_milliwatts;
  Format.fprintf ppf "  energy %+.2f%%, runtime %+.2f%%@."
    o.energy_change_percent o.runtime_change_percent
