type study = {
  exact : Optimizer.outcome;
  recast_selected : Arch.Param.var list;
  recast_config : Arch.Config.t;
  recast_actual : Cost.t;
  agrees : bool;
  recast_respects_truth : bool;
  exact_nodes_hint : string;
  milp_nodes : int;
}

let run ~weights model =
  let exact = Optimizer.run_with_model ~weights model in
  let problem = Formulate.make weights model in
  match Optim.Mccormick.solve problem with
  | None -> failwith "Convex.run: linearized model infeasible"
  | Some relaxed ->
      let recast_selected = Formulate.vars_of_solution model relaxed in
      let recast_config =
        Arch.Param.apply_all Arch.Config.base recast_selected
      in
      let recast_actual =
        Engine.eval (Engine.default ()) model.Measure.app recast_config
      in
      {
        exact;
        recast_selected;
        recast_config;
        recast_actual;
        agrees =
          List.map (fun (v : Arch.Param.var) -> v.Arch.Param.index)
            recast_selected
          = List.map (fun (v : Arch.Param.var) -> v.Arch.Param.index)
              exact.Optimizer.selected;
        recast_respects_truth = Optim.Binlp.check problem relaxed.Optim.Binlp.x;
        exact_nodes_hint = "combinatorial B&B (exact)";
        milp_nodes = Optim.Milp.stats_nodes ();
      }

let print ppf s =
  let name = s.exact.Optimizer.model.Measure.app.Apps.Registry.name in
  Format.fprintf ppf "  %s:@." name;
  Format.fprintf ppf "    exact pick:  %a@." Optimizer.pp_selected
    s.exact.Optimizer.selected;
  Format.fprintf ppf "    recast pick: %a@." Optimizer.pp_selected
    s.recast_selected;
  Format.fprintf ppf
    "    agreement: %b; recast satisfies the true nonlinear constraints: %b@."
    s.agrees s.recast_respects_truth;
  Format.fprintf ppf
    "    exact actual: %a@.    recast actual: %a (LP-B&B nodes: %d)@." Cost.pp
    s.exact.Optimizer.actual Cost.pp s.recast_actual s.milp_nodes
