(** Exhaustive-search baseline over scaled-down subspaces (the paper's
    Section 5 analysis).

    The full space is out of reach (billions of configurations; the
    paper estimates 56 days for the 2,688 dcache combinations alone),
    so the paper — and we — exhaustively enumerate the 28 dcache
    (ways x way-size) geometry points and compare the optimizer's pick
    against the true optimum. *)

type point = Leon2.S.Exhaustive.point = {
  config : Arch.Config.t;
  cost : Cost.t option;  (** [None] when the FPGA cannot fit it *)
}

val dcache_sweep : Apps.Registry.t -> point list
(** All 28 ways x way-size combinations, base otherwise, in the
    paper's Figure 2 row order (ways-major). *)

val sweep : Apps.Registry.t -> Arch.Config.t list -> point list
(** One batched, memoized {!Engine.eval_all_feasible} call: deduped
    points, parallel evaluation, one resource elaboration per point. *)

val best_runtime : point list -> point
(** Feasible point with minimal runtime; ties broken by fewer BRAM
    then fewer LUTs (the paper's "simple sort").
    @raise Not_found if no point is feasible. *)

val best_runtime_search : Apps.Registry.t -> Arch.Config.t list -> point
(** {!sweep} + {!best_runtime} through the engine's static-bounds
    admission gate: the candidate with the smallest static worst case
    is simulated first and its actual runtime prunes every candidate
    whose static best case is already slower ([dse.bounds.pruned]).
    Selects exactly the point a full sweep would — pruned candidates
    are provably strictly slower than the incumbent — with fewer
    simulations.
    @raise Not_found if no candidate is feasible. *)

val best_weighted : Cost.weights -> base:Cost.t -> point list -> point
(** Feasible point minimizing the weighted objective. *)
