type variant = Stack.variant = {
  lut_nonlinear : bool;
  bram_linear : bool;
}

let paper_variant = Stack.paper_variant

include Leon2.S.Formulate
