include Leon2.S.Ablation
