type noise_point = {
  amplitude : float;
  outcome : Optimizer.outcome;
  objective_regret : float;
}

(* True (noise-free) objective of an already-built configuration.
   Noise-free evaluations live under their own cache key, so they are
   never contaminated by the perturbed measurements of the study. *)
let true_objective weights app config =
  let engine = Engine.default () in
  let base = Engine.eval engine app Arch.Config.base in
  let cost = Engine.eval engine app config in
  Cost.objective weights (Cost.deltas ~base cost)

let noise_study ?(amplitudes = [ 0.0; 0.002; 0.005; 0.01 ]) ~weights app =
  let reference =
    let o = Optimizer.run ~weights app in
    true_objective weights app o.Optimizer.config
  in
  List.map
    (fun amplitude ->
      let outcome =
        if amplitude = 0.0 then Optimizer.run ~weights app
        else Optimizer.run ~noise:amplitude ~weights app
      in
      let obj = true_objective weights app outcome.Optimizer.config in
      { amplitude; outcome; objective_regret = obj -. reference })
    amplitudes

type variant_point = {
  variant : Formulate.variant;
  outcome : Optimizer.outcome;
  bram_prediction_error : float;
}

let variant_study ~weights model =
  let variants =
    [
      { Formulate.lut_nonlinear = false; bram_linear = false };
      { Formulate.lut_nonlinear = true; bram_linear = false };
      { Formulate.lut_nonlinear = false; bram_linear = true };
      { Formulate.lut_nonlinear = true; bram_linear = true };
    ]
  in
  List.map
    (fun variant ->
      let outcome = Optimizer.run_with_model ~variant ~weights model in
      let actual =
        Synth.Resource.bram_percent
          outcome.Optimizer.actual.Cost.resources
      in
      {
        variant;
        outcome;
        bram_prediction_error =
          outcome.Optimizer.predicted.Optimizer.bram_percent -. actual;
      })
    variants

type independence_point = {
  app : Apps.Registry.t;
  predicted_gain : float;
  actual_gain : float;
}

let independence_study ~weights =
  List.map
    (fun app ->
      let o = Optimizer.run ~weights app in
      let base = o.Optimizer.model.Measure.base.Cost.seconds in
      {
        app;
        predicted_gain =
          100.0 *. (o.Optimizer.predicted.Optimizer.seconds -. base) /. base;
        actual_gain =
          100.0 *. (o.Optimizer.actual.Cost.seconds -. base) /. base;
      })
    Apps.Registry.all

let pf = Format.fprintf

let print_noise ppf points =
  pf ppf "Ablation: synthesis measurement noise (LUT measurements)@.";
  pf ppf "  %9s %9s  %s@." "amplitude" "regret" "selected parameters";
  List.iter
    (fun (p : noise_point) ->
      let params =
        Report.changed_params p.outcome.Optimizer.config
        |> List.map (fun (k, v) -> k ^ "=" ^ v)
        |> String.concat ", "
      in
      pf ppf "  %8.1f%% %+9.3f  %s@." (100.0 *. p.amplitude) p.objective_regret
        params)
    points;
  pf ppf
    "  (regret: true weighted objective relative to the noise-free pick; \
     the paper's 'registers=28..31 (sub-optimal)' rows are this effect)@."

let print_variants ppf points =
  pf ppf "Ablation: constraint linearity (paper Section 4/6)@.";
  pf ppf "  %-12s %-12s %12s %10s %10s@." "LUT model" "BRAM model"
    "runtime(s)" "BRAM%" "pred.err";
  List.iter
    (fun (p : variant_point) ->
      pf ppf "  %-12s %-12s %12.3f %9.1f%% %+9.2f%s@."
        (if p.variant.Formulate.lut_nonlinear then "nonlinear" else "linear")
        (if p.variant.Formulate.bram_linear then "linear" else "nonlinear")
        p.outcome.Optimizer.actual.Cost.seconds
        (Synth.Resource.bram_percent p.outcome.Optimizer.actual.Cost.resources)
        p.bram_prediction_error
        (if Synth.Resource.fits p.outcome.Optimizer.actual.Cost.resources then ""
         else "  DOES NOT FIT THE DEVICE"))
    points;
  pf ppf
    "  (the linear BRAM model misses the ways x size interaction, \
     under-predicts — the paper's BRAM%%-lin rows — and here selects a \
     configuration the device cannot hold)@."

let print_independence ppf points =
  pf ppf "Ablation: the parameter-independence assumption@.";
  pf ppf "  %-8s %12s %12s %12s@." "app" "predicted" "actual" "error";
  List.iter
    (fun p ->
      pf ppf "  %-8s %+11.2f%% %+11.2f%% %+11.2f%%@." p.app.Apps.Registry.name
        p.predicted_gain p.actual_gain
        (p.predicted_gain -. p.actual_gain))
    points;
  pf ppf
    "  (negative error = the optimizer over-promises, the paper's DRR \
     case: overlapping cache gains add up linearly in the model)@."
