(** End-to-end automatic microarchitecture reconfiguration: the paper's
    full pipeline.

    1. build the one-at-a-time cost model ({!Measure});
    2. formulate the BINLP ({!Formulate});
    3. solve it exactly ({!Optim.Binlp});
    4. decode the selected variables into a configuration;
    5. "actually synthesize" the recommendation: build and measure it,
       so predictions can be compared against reality (the paper's
       "Actual synthesis" rows). *)

type prediction = Leon2.S.Optimizer.prediction = {
  seconds : float;
  lut_percent : float;
  lut_percent_alt : float;   (** the swapped (nonlinear) LUT model *)
  bram_percent : float;
  bram_percent_alt : float;  (** the swapped (linear) BRAM model *)
}

type outcome = Leon2.S.Optimizer.outcome = {
  model : Measure.model;
  weights : Cost.weights;
  solution : Optim.Binlp.solution;
  selected : Arch.Param.var list;   (** paper-index order *)
  config : Arch.Config.t;
  predicted : prediction;
  actual : Cost.t;
}

val run :
  ?noise:float ->
  ?dims:Arch.Param.group list ->
  ?variant:Formulate.variant ->
  weights:Cost.weights ->
  Apps.Registry.t ->
  outcome
(** @raise Failure if the BINLP has no feasible solution (cannot happen
    with the paper's constraints: the empty selection is feasible). *)

val run_with_model :
  ?variant:Formulate.variant ->
  weights:Cost.weights ->
  Measure.model ->
  outcome
(** Reuse an already-measured model (model building dominates cost). *)

val pp_selected : Arch.Param.var list Fmt.t
