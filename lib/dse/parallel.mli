(** Order-preserving parallel map — a thin compatibility shim over the
    persistent {!Pool} (it used to spawn a fresh set of domains per
    call).  Callers must make sure any lazily compiled program is
    forced before mapping (OCaml's [Lazy] is not domain-safe). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs <= 1] (or a singleton/empty list) degrades to [List.map];
    otherwise the work runs on {!Pool.default} — [jobs] no longer
    bounds parallelism, it only selects the serial path, keeping the
    historical contract that the result is identical either way.  A
    worker exception is re-raised in the caller with its original
    backtrace. *)
