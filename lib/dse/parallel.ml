let map ?jobs f xs =
  let n = List.length xs in
  let jobs =
    min n
      (match jobs with Some j -> j | None -> Domain.recommended_domain_count ())
  in
  if jobs <= 1 then List.map f xs
  else
    Obs.Span.with_ ~cat:"dse" "parallel.map"
      ~attrs:[ ("jobs", Obs.Json.Int jobs); ("items", Obs.Json.Int n) ]
    @@ fun () -> Pool.map (Pool.default ()) f xs
