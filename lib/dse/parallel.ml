let map ?jobs f xs =
  let n = List.length xs in
  let jobs =
    min n (match jobs with Some j -> j | None -> Domain.recommended_domain_count ())
  in
  if jobs <= 1 then List.map f xs
  else
    Obs.Span.with_ ~cat:"dse" "parallel.map"
      ~attrs:[ ("jobs", Obs.Json.Int jobs); ("items", Obs.Json.Int n) ]
    @@ fun () ->
    begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let failure = Atomic.make None in
    let worker j () =
      let k = ref j in
      while !k < n && Atomic.get failure = None do
        (match f input.(!k) with
        | y -> output.(!k) <- Some y
        | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
        k := !k + jobs
      done
    in
    let domains = List.init jobs (fun j -> Domain.spawn (worker j)) in
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some y -> y | None -> assert false)
         output)
  end
