(* The functorized stack instantiated for the paper's own platform.
   The library's historical LEON2-typed modules ({!Measure},
   {!Formulate}, {!Optimizer}, {!Exhaustive}, {!Heuristic}, {!Ablation},
   {!Multiapp}) are re-exports of [S]'s submodules — one code path
   serves every target.

   No interface file on purpose: the module equalities (e.g.
   [Measure.row = Leon2.S.Measure.row]) must stay visible for the
   re-exporting interfaces to state them. *)

module S = Stack.Make (Target_leon2)
