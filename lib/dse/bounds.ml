(* Pricing {!Minic.Bounds} instruction-mix intervals for one concrete
   microarchitecture configuration.

   Every per-class price comes from {!Sim.Cost_model} — the same table
   {!Sim.Cpu} executes against — so the simulator and the static
   bounds cannot drift apart:

   - every instruction costs its class's exact base price, with all
     deterministic stalls (shift without a barrel shifter, multiply,
     divide, the ICC-hold interlock on a compare-and-branch, slow
     decode on control transfers, slow jump on call/return, the +1 of
     a taken branch) identical in both bounds;
   - a load hits in the best case and pays a full line fill plus the
     maximal load-delay interlock in the worst;
   - a store's write-through cost does not depend on hit/miss at all;
   - instruction fetches are all hits in the best case and all misses
     in the worst;
   - window spills/fills never fire in the best case (and provably
     never fire when the maximal call depth fits the window file), and
     every save/restore traps in the worst. *)

let m_computed =
  Obs.Metrics.Counter.v "dse.bounds.computed"
    ~help:"static cycle-bound computations"

let m_pruned =
  Obs.Metrics.Counter.v "dse.bounds.pruned"
    ~help:"simulations skipped because a static lower bound exceeded the cutoff"

let m_violations =
  Obs.Metrics.Counter.v "dse.bounds.violations"
    ~help:"simulated runtimes observed outside their static bounds"

type cycle_model = Sim.Cost_model.t = {
  iline_fill : int;
  dline_fill : int;
  load_extra : int;
  store_extra : int;
  interlock : int;
  shift_stall : int;
  mul_stall : int;
  div_stall : int;
  icc_stall : int;
  decode_extra : int;
  jump_extra : int;
  nwin : int;
}

let of_arch_config = Sim.Cost_model.of_arch_config

let cycles (cm : cycle_model) (s : Minic.Bounds.program_summary) =
  let m = s.Minic.Bounds.mix in
  (* A save at call depth d runs with 1 + d resident windows and
     spills iff 1 + d = nwin - 1; with the deepest chain at most
     nwin - 3 the window file never overflows (and, spills being the
     only way to empty it, never underflows either). *)
  let spill_free =
    match s.Minic.Bounds.call_depth with
    | Some d -> d <= cm.nwin - 3
    | None -> false
  in
  let spill_hi = if spill_free then 0 else Sim.Cost_model.spill_worst cm in
  let fill_hi = if spill_free then 0 else Sim.Cost_model.fill_worst cm in
  let lo_acc = ref 0.0 and hi_acc = ref 0.0 in
  let charge (c : Minic.Bounds.cnt) ~lo ~hi =
    lo_acc := !lo_acc +. (float_of_int c.Minic.Bounds.lo *. float_of_int lo);
    hi_acc :=
      !hi_acc
      +.
      if c.Minic.Bounds.hi = Minic.Bounds.unbounded then
        if hi = 0 then 0.0 else infinity
      else float_of_int c.Minic.Bounds.hi *. float_of_int hi
  in
  let exact c cost = charge c ~lo:cost ~hi:cost in
  exact m.Minic.Bounds.alu (Sim.Cost_model.alu_cycles cm);
  exact m.Minic.Bounds.shift (Sim.Cost_model.shift_cycles cm);
  exact m.Minic.Bounds.mul (Sim.Cost_model.mul_cycles cm);
  exact m.Minic.Bounds.div (Sim.Cost_model.div_cycles cm);
  charge m.Minic.Bounds.load
    ~lo:(Sim.Cost_model.load_hit_cycles cm)
    ~hi:(Sim.Cost_model.load_worst_cycles cm);
  exact m.Minic.Bounds.store (Sim.Cost_model.store_cycles cm);
  exact m.Minic.Bounds.cbr_cmp (Sim.Cost_model.cbr_cmp_cycles cm);
  exact m.Minic.Bounds.cbr_mat (Sim.Cost_model.branch_cycles cm);
  exact m.Minic.Bounds.taken (Sim.Cost_model.taken_extra cm);
  exact m.Minic.Bounds.ba (Sim.Cost_model.ba_cycles cm);
  exact m.Minic.Bounds.call (Sim.Cost_model.jump_cycles cm);
  exact m.Minic.Bounds.jmpl (Sim.Cost_model.jump_cycles cm);
  charge m.Minic.Bounds.save ~lo:(Sim.Cost_model.save_cycles cm)
    ~hi:(Sim.Cost_model.save_cycles cm + spill_hi);
  charge m.Minic.Bounds.restore ~lo:(Sim.Cost_model.restore_cycles cm)
    ~hi:(Sim.Cost_model.restore_cycles cm + fill_hi);
  exact m.Minic.Bounds.halt (Sim.Cost_model.halt_cycles cm);
  (* Worst case: every fetch misses the instruction cache. *)
  let ins = Minic.Bounds.insns m in
  hi_acc :=
    !hi_acc
    +.
    if ins.Minic.Bounds.hi = Minic.Bounds.unbounded then infinity
    else float_of_int ins.Minic.Bounds.hi *. float_of_int cm.iline_fill;
  (!lo_acc, !hi_acc)

let seconds cm ~reps s =
  let lo, hi = cycles cm s in
  let r = float_of_int reps in
  (r *. lo /. Sim.Machine.clock_hz, r *. hi /. Sim.Machine.clock_hz)

(* Per-app summaries are deterministic, so a racy double computation is
   harmless; the lock only protects the table itself. *)
let memo : (string, Minic.Bounds.program_summary) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

let summary_of_app (app : Apps.Registry.t) =
  Mutex.lock memo_mutex;
  let cached = Hashtbl.find_opt memo app.Apps.Registry.name in
  Mutex.unlock memo_mutex;
  match cached with
  | Some s -> s
  | None ->
      (* Level 0: {!Apps.Registry} compiles with [Codegen.compile]'s
         default (no optimization). *)
      let s = Minic.Bounds.summary app.Apps.Registry.source in
      Mutex.lock memo_mutex;
      Hashtbl.replace memo app.Apps.Registry.name s;
      Mutex.unlock memo_mutex;
      s

let app_bounds cm (app : Apps.Registry.t) =
  seconds cm ~reps:app.Apps.Registry.reps (summary_of_app app)

let tightness ~lo ~hi =
  if lo > 0.0 && hi < infinity then Some (hi /. lo) else None
