(* Pricing {!Minic.Bounds} instruction-mix intervals for one concrete
   microarchitecture configuration.

   The per-class prices below mirror {!Sim.Cpu}'s accounting exactly:

   - every instruction costs 1 base cycle;
   - deterministic stalls (shift without a barrel shifter, multiply,
     divide, the ICC-hold interlock on a compare-and-branch, slow
     decode on control transfers, slow jump on call/return, the +1 of
     a taken branch) are identical in both bounds;
   - a load hits (data [load_extra = 1]) in the best case and pays a
     full line fill plus the maximal load-delay interlock in the worst;
   - a store's write-through cost ([store_extra = 1]) does not depend
     on hit/miss at all;
   - instruction fetches are all hits in the best case and all misses
     in the worst;
   - window spills/fills never fire in the best case (and provably
     never fire when the maximal call depth fits the window file), and
     every save/restore traps in the worst. *)

let m_computed =
  Obs.Metrics.Counter.v "dse.bounds.computed"
    ~help:"static cycle-bound computations"

let m_pruned =
  Obs.Metrics.Counter.v "dse.bounds.pruned"
    ~help:"simulations skipped because a static lower bound exceeded the cutoff"

let m_violations =
  Obs.Metrics.Counter.v "dse.bounds.violations"
    ~help:"simulated runtimes observed outside their static bounds"

type cycle_model = {
  iline_fill : int;
  dline_fill : int;
  interlock : int;
  shift_stall : int;
  mul_stall : int;
  div_stall : int;
  icc_stall : int;
  decode_extra : int;
  jump_extra : int;
  nwin : int;
}

let of_arch_config ?(shift_stall = 0) (c : Arch.Config.t) =
  let iu = c.Arch.Config.iu in
  {
    iline_fill =
      Sim.Memory.line_fill_cycles
        ~line_words:c.Arch.Config.icache.Arch.Config.line_words;
    dline_fill =
      Sim.Memory.line_fill_cycles
        ~line_words:c.Arch.Config.dcache.Arch.Config.line_words;
    interlock = iu.Arch.Config.load_delay - 1;
    shift_stall;
    mul_stall = Sim.Funit.mul_latency iu.Arch.Config.multiplier - 1;
    div_stall = Sim.Funit.div_latency iu.Arch.Config.divider - 1;
    icc_stall = (if iu.Arch.Config.icc_hold then 1 else 0);
    decode_extra = (if iu.Arch.Config.fast_decode then 0 else 1);
    jump_extra = (if iu.Arch.Config.fast_jump then 0 else 1);
    nwin = iu.Arch.Config.reg_windows;
  }

(* The simulator's window-trap costs: [Cpu] charges a 6-cycle trap
   overhead plus a 16-register burst (stores for a spill, loads for a
   fill). *)
let trap_overhead = 6
let window_regs = 16

let cycles cm (s : Minic.Bounds.program_summary) =
  let m = s.Minic.Bounds.mix in
  (* A save at call depth d runs with 1 + d resident windows and
     spills iff 1 + d = nwin - 1; with the deepest chain at most
     nwin - 3 the window file never overflows (and, spills being the
     only way to empty it, never underflows either). *)
  let spill_free =
    match s.Minic.Bounds.call_depth with
    | Some d -> d <= cm.nwin - 3
    | None -> false
  in
  (* Spill: 16 stores at the unconditional write-through cost.  Fill:
     16 loads, each a potential line miss. *)
  let spill_hi = if spill_free then 0 else trap_overhead + (window_regs * 2) in
  let fill_hi =
    if spill_free then 0
    else trap_overhead + (window_regs * (2 + cm.dline_fill))
  in
  let lo_acc = ref 0.0 and hi_acc = ref 0.0 in
  let charge (c : Minic.Bounds.cnt) ~lo ~hi =
    lo_acc := !lo_acc +. (float_of_int c.Minic.Bounds.lo *. float_of_int lo);
    hi_acc :=
      !hi_acc
      +.
      if c.Minic.Bounds.hi = Minic.Bounds.unbounded then
        if hi = 0 then 0.0 else infinity
      else float_of_int c.Minic.Bounds.hi *. float_of_int hi
  in
  let exact c cost = charge c ~lo:cost ~hi:cost in
  exact m.Minic.Bounds.alu 1;
  exact m.Minic.Bounds.shift (1 + cm.shift_stall);
  exact m.Minic.Bounds.mul (1 + cm.mul_stall);
  exact m.Minic.Bounds.div (1 + cm.div_stall);
  charge m.Minic.Bounds.load ~lo:2 ~hi:(2 + cm.dline_fill + cm.interlock);
  exact m.Minic.Bounds.store 2;
  exact m.Minic.Bounds.cbr_cmp (1 + cm.icc_stall + cm.decode_extra);
  exact m.Minic.Bounds.cbr_mat (1 + cm.decode_extra);
  exact m.Minic.Bounds.taken 1;
  exact m.Minic.Bounds.ba (2 + cm.decode_extra);
  exact m.Minic.Bounds.call (2 + cm.decode_extra + cm.jump_extra);
  exact m.Minic.Bounds.jmpl (2 + cm.decode_extra + cm.jump_extra);
  charge m.Minic.Bounds.save ~lo:1 ~hi:(1 + spill_hi);
  charge m.Minic.Bounds.restore ~lo:1 ~hi:(1 + fill_hi);
  exact m.Minic.Bounds.halt 1;
  (* Worst case: every fetch misses the instruction cache. *)
  let ins = Minic.Bounds.insns m in
  hi_acc :=
    !hi_acc
    +.
    if ins.Minic.Bounds.hi = Minic.Bounds.unbounded then infinity
    else float_of_int ins.Minic.Bounds.hi *. float_of_int cm.iline_fill;
  (!lo_acc, !hi_acc)

let seconds cm ~reps s =
  let lo, hi = cycles cm s in
  let r = float_of_int reps in
  (r *. lo /. Sim.Machine.clock_hz, r *. hi /. Sim.Machine.clock_hz)

(* Per-app summaries are deterministic, so a racy double computation is
   harmless; the lock only protects the table itself. *)
let memo : (string, Minic.Bounds.program_summary) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

let summary_of_app (app : Apps.Registry.t) =
  Mutex.lock memo_mutex;
  let cached = Hashtbl.find_opt memo app.Apps.Registry.name in
  Mutex.unlock memo_mutex;
  match cached with
  | Some s -> s
  | None ->
      (* Level 0: {!Apps.Registry} compiles with [Codegen.compile]'s
         default (no optimization). *)
      let s = Minic.Bounds.summary app.Apps.Registry.source in
      Mutex.lock memo_mutex;
      Hashtbl.replace memo app.Apps.Registry.name s;
      Mutex.unlock memo_mutex;
      s

let app_bounds cm (app : Apps.Registry.t) =
  seconds cm ~reps:app.Apps.Registry.reps (summary_of_app app)

let tightness ~lo ~hi =
  if lo > 0.0 && hi < infinity then Some (hi /. lo) else None
