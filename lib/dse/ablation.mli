(** Ablation studies for the design choices the paper discusses.

    - {b Synthesis measurement noise}: the paper's LUT columns carry
      place-and-route variance, which explains its resource optimizer
      picking extra register windows flagged "sub-optimal".  Injecting
      deterministic noise into our measurements reproduces the
      phenomenon and quantifies its cost.
    - {b Constraint form}: the paper keeps the LUT constraint linear
      and the BRAM constraint nonlinear (product of ways and way-size
      terms), and Section 6 reports what each swap would do.  We rerun
      the optimizer under all four variants.
    - {b Parameter independence}: the central assumption.  We measure
      the prediction error (predicted vs actually-built runtime) of the
      selected configuration per application. *)

type noise_point = Leon2.S.Ablation.noise_point = {
  amplitude : float;                (** LUT noise, fraction of device *)
  outcome : Optimizer.outcome;
  objective_regret : float;
      (** true-cost objective of the noisy pick minus that of the
          noise-free pick, in objective units (positive = worse) *)
}

val noise_study :
  ?amplitudes:float list -> weights:Cost.weights -> Apps.Registry.t -> noise_point list
(** Default amplitudes: 0, 0.002, 0.005, 0.01. *)

type variant_point = Leon2.S.Ablation.variant_point = {
  variant : Formulate.variant;
  outcome : Optimizer.outcome;
  bram_prediction_error : float;
      (** predicted minus actual BRAM%% of the selected configuration *)
}

val variant_study : weights:Cost.weights -> Measure.model -> variant_point list
(** The four lut-linearity x bram-linearity combinations on one model. *)

type independence_point = Leon2.S.Ablation.independence_point = {
  app : Apps.Registry.t;
  predicted_gain : float;  (** percent runtime change predicted *)
  actual_gain : float;     (** percent runtime change measured *)
}

val independence_study : weights:Cost.weights -> independence_point list
(** All four benchmarks under the given weights. *)

val print_noise : Format.formatter -> noise_point list -> unit
val print_variants : Format.formatter -> variant_point list -> unit
val print_independence : Format.formatter -> independence_point list -> unit
