(** Target-parameterized static cycle bounds.

    {!Minic.Bounds} derives sound per-class dynamic instruction-count
    intervals from the minic CFG; this module prices each class for a
    concrete microarchitecture configuration, yielding sound
    [best-case, worst-case] cycle (and runtime) bounds without
    touching the simulator.

    The best case assumes every access hits the caches and no
    optional stall fires (no load interlock, no icache refill, no
    window spill/fill); the worst case charges every memory access a
    full line fill, every load the maximal interlock, every
    instruction fetch an icache miss, and every register-window
    crossing a trap — each priced from the configuration's own latency
    model (multiplier/divider options, barrel-shifter stalls, line
    geometry, ...).  Deterministic stalls (multiply, divide, shift,
    ICC hold on compare-and-branch, slow decode/jump) are exact and
    charged on both sides.

    Soundness caveat (inherited from {!Minic.Bounds}): bounds describe
    trap-free runs.  All registry programs and the fuzz generator's
    programs are trap-free by construction; a run that divides by zero
    stops early and may undershoot the lower bound. *)

type cycle_model = Sim.Cost_model.t = {
  iline_fill : int;  (** icache line-fill penalty, cycles *)
  dline_fill : int;  (** dcache line-fill penalty, cycles *)
  load_extra : int;  (** dcache hit latency beyond 1 cycle *)
  store_extra : int;  (** write-through cost beyond 1 cycle *)
  interlock : int;  (** load-delay interlock cycles ([load_delay - 1]) *)
  shift_stall : int;  (** extra cycles per shift (no barrel shifter) *)
  mul_stall : int;
  div_stall : int;
  icc_stall : int;  (** 1 when the ICC-hold interlock is configured *)
  decode_extra : int;  (** per control transfer when fast decode is off *)
  jump_extra : int;  (** per call/return when fast jump is off *)
  nwin : int;  (** register windows *)
}
(** The shared per-target cost table, {!Sim.Cost_model.t}: the exact
    same record {!Sim.Cpu.create} pre-decodes and executes against.
    Every class is priced with {!Sim.Cost_model}'s price functions, so
    the simulator and the bounds cannot drift apart. *)

val of_arch_config : ?shift_stall:int -> Arch.Config.t -> cycle_model
(** [Sim.Cost_model.of_arch_config]: [shift_stall] defaults to 0 (a
    barrel shifter), matching {!Sim.Cpu.create}. *)

val cycles :
  cycle_model -> Minic.Bounds.program_summary -> float * float
(** Sound [lo, hi] cycle bounds for {e one} complete run.  [hi] is
    [infinity] when the program has a loop the analysis cannot
    bound. *)

val seconds : cycle_model -> reps:int -> Minic.Bounds.program_summary -> float * float
(** Runtime bounds for [reps] runs at the nominal clock
    ({!Sim.Machine.clock_hz}): every epoch, cold or warm, lies within
    the per-run cycle bounds. *)

val summary_of_app : Apps.Registry.t -> Minic.Bounds.program_summary
(** The app's instruction-mix summary (compiled exactly as
    {!Apps.Registry} does, at optimization level 0), memoized
    process-wide by app name. *)

val app_bounds : cycle_model -> Apps.Registry.t -> float * float
(** [seconds] bounds of the app's full [reps]-scaled run — the unit
    {!Cost.t.seconds} is in, so directly comparable to engine
    results. *)

val tightness : lo:float -> hi:float -> float option
(** [hi / lo] — the bound-tightness ratio (1.0 = exact); [None] when
    undefined ([lo = 0] or [hi] infinite). *)

(** {2 Metrics}

    Registered process-wide; incremented by the engine's
    bounds-admission path and the optimizer's sanitizer. *)

val m_computed : Obs.Metrics.Counter.t
(** [dse.bounds.computed] *)

val m_pruned : Obs.Metrics.Counter.t
(** [dse.bounds.pruned] *)

val m_violations : Obs.Metrics.Counter.t
(** [dse.bounds.violations] — simulated cycles observed outside the
    static bounds (an analysis or simulator bug; see
    [Optimizer.verify]'s sanitizer and the fuzz oracles). *)
