type point = {
  config : Arch.Config.t;
  cost : Cost.t option;
}

(* One batched engine call: resources are elaborated once per point
   (feasibility and cost share the estimate), infeasible points never
   reach the simulator, and the feasible ones fan out on the pool. *)
let sweep app configs =
  Engine.eval_all_feasible (Engine.default ()) app configs
  |> List.map2 (fun config cost -> { config; cost }) configs

let dcache_sweep app = sweep app (Arch.Space.dcache_geometry ())

let feasible_points points =
  List.filter_map
    (fun p -> match p.cost with Some c -> Some (p, c) | None -> None)
    points

let argmin key points =
  match feasible_points points with
  | [] -> raise Not_found
  | first :: rest ->
      let better a b = if key (snd a) <= key (snd b) then a else b in
      fst (List.fold_left better first rest)

let best_runtime points =
  argmin
    (fun (c : Cost.t) ->
      ( c.Cost.seconds,
        c.Cost.resources.Synth.Resource.brams,
        c.Cost.resources.Synth.Resource.luts ))
    points

let best_weighted weights ~base points =
  argmin (fun c -> (Cost.objective weights (Cost.deltas ~base c), 0, 0)) points
