include Leon2.S.Exhaustive

let dcache_sweep = geometry_sweep
