(* A MicroBlaze-like soft core as a second {!Target.S} instance.

   The backend reuses the cycle-accurate SPARC simulator by *lowering*
   its configuration onto the LEON2 simulation knobs that model the
   same microarchitectural effects:

   - the direct-mapped icache lowers to a 1-way LEON2 icache of the
     same size and line length (replacement is then irrelevant);
   - the dcache maps structurally (same ways/size/line/replacement
     trade space, minus LRR);
   - a missing barrel shifter becomes a per-shift stall
     ({!Sim.Machine.run}'s [shift_stall]) — MicroBlaze without the
     optional barrel shifter iterates one bit per cycle;
   - the three-level multiplier and the optional divider map onto the
     nearest LEON2 functional-unit variants;
   - the SPARC-specific options this core does not offer (register
     windows, fast jump/decode, ICC hold, load delay, cache bypasses)
     are pinned to fixed values, so they never vary between two
     MicroBlaze configurations and cancel out of every delta.

   Resources come from the independent {!Synth.Mb_costs} /
   {!Synth.Mb_estimate} model against a much smaller device (9,600
   LUTs / 72 BRAMs), which is what makes the BINLP resource
   constraints bind in interesting places on this target. *)

type config = Arch.Mb_config.t
type group = Arch.Mb_param.group

type var = Arch.Mb_param.var = {
  index : int;
  group : group;
  label : string;
  apply : config -> config;
}

let name = "microblaze"
let description = "MicroBlaze-like RISC soft core (barrel shifter, mul/div options, direct-mapped icache)"
let base = Arch.Mb_config.base
let equal = Arch.Mb_config.equal
let validate = Arch.Mb_config.validate
let is_valid = Arch.Mb_config.is_valid
let pp = Arch.Mb_config.pp
let to_string = Arch.Mb_codec.to_string
let of_string = Arch.Mb_codec.of_string
let digest = Arch.Mb_codec.digest
let vars = Arch.Mb_param.all
let var_count = Arch.Mb_param.count
let var = Arch.Mb_param.var
let groups = Arch.Mb_param.groups
let group_members = Arch.Mb_param.group_members
let group_to_string = Arch.Mb_param.group_to_string
let apply_all = Arch.Mb_param.apply_all
let quick_dims = Arch.Mb_param.dcache_size_dims

(* LRU is structurally invalid on the 1-way base dcache; its marginal
   cost is measured on a plain 2-way configuration (the x13 <= x6 + x7
   coupling makes the solver pick it only together with added ways) —
   the exact analogue of LEON2's replacement references. *)
let reference_config (var : var) =
  match var.group with
  | Arch.Mb_param.Dcache_repl ->
      {
        base with
        Arch.Mb_config.dcache = { base.Arch.Mb_config.dcache with ways = 2 };
      }
  | _ -> base

(* This core's only validity coupling: LRU (x13) needs multi-way
   associativity (x6 or x7).  No LRR exists at all. *)
let couplings = [ (13, [ 6; 7 ]) ]

(* The dcache is the only set-associative cache, so it contributes the
   only nonlinear resource term: ways factor (1 + x6 + 3 x7) times the
   per-way size deltas x8..x11.  The direct-mapped icache's size deltas
   stay linear. *)
let products = [ ([ (6, 1.0); (7, 3.0) ], [ 8; 9; 10; 11 ]) ]

let resources = Synth.Mb_estimate.config
let feasible = Synth.Mb_estimate.feasible
let device_luts = Synth.Mb_costs.device_luts
let device_brams = Synth.Mb_costs.device_brams

let pick rng xs = List.nth xs (Sim.Rng.int rng (List.length xs))

let random_config rng =
  let bool () = Sim.Rng.int rng 2 = 1 in
  let icache =
    {
      Arch.Mb_config.way_kb = pick rng Arch.Mb_config.valid_way_kbs;
      line_words = pick rng Arch.Mb_config.valid_line_words;
    }
  in
  let ways = pick rng Arch.Mb_config.valid_dcache_ways in
  let replacement =
    match ways with
    | 1 -> Arch.Config.Random
    | _ -> pick rng [ Arch.Config.Random; Arch.Config.Lru ]
  in
  let dcache =
    {
      Arch.Config.ways;
      way_kb = pick rng Arch.Mb_config.valid_way_kbs;
      line_words = pick rng Arch.Mb_config.valid_line_words;
      replacement;
    }
  in
  {
    Arch.Mb_config.icache;
    dcache;
    barrel_shifter = bool ();
    multiplier =
      pick rng
        [ Arch.Mb_config.Mb_mul_none; Arch.Mb_config.Mb_mul32;
          Arch.Mb_config.Mb_mul64 ];
    divider = bool ();
  }

(* All alternative values for one parameter group, as configuration
   transformers relative to the current configuration; "revert to base"
   comes first. *)
let group_options (g : group) =
  let members = Arch.Mb_param.group_members g in
  let to_base (c : Arch.Mb_config.t) =
    let b = base in
    match g with
    | Arch.Mb_param.Icache_way_kb ->
        { c with icache = { c.icache with way_kb = b.icache.way_kb } }
    | Arch.Mb_param.Icache_line ->
        { c with icache = { c.icache with line_words = b.icache.line_words } }
    | Arch.Mb_param.Dcache_ways ->
        { c with dcache = { c.dcache with ways = b.dcache.ways } }
    | Arch.Mb_param.Dcache_way_kb ->
        { c with dcache = { c.dcache with way_kb = b.dcache.way_kb } }
    | Arch.Mb_param.Dcache_line ->
        { c with dcache = { c.dcache with line_words = b.dcache.line_words } }
    | Arch.Mb_param.Dcache_repl ->
        { c with dcache = { c.dcache with replacement = b.dcache.replacement } }
    | Arch.Mb_param.Barrel_shifter -> { c with barrel_shifter = b.barrel_shifter }
    | Arch.Mb_param.Multiplier -> { c with multiplier = b.multiplier }
    | Arch.Mb_param.Divider -> { c with divider = b.divider }
  in
  to_base :: List.map (fun v -> v.Arch.Mb_param.apply) members

(* The same three static invisibility arguments as on LEON2: a
   code-resident icache makes icache geometry changes invisible, and
   multiplier/divider variants are invisible to programs that never
   multiply/divide. *)
let statically_equivalent ft (current : Arch.Mb_config.t)
    (candidate : Arch.Mb_config.t) =
  let icache_only =
    Arch.Mb_config.equal { candidate with icache = current.icache } current
  in
  let resident (c : Arch.Mb_config.t) =
    c.icache.way_kb >= Apps.Features.code_resident_kb ft
  in
  (icache_only
  && candidate.icache.line_words = current.icache.line_words
  && resident candidate && resident current)
  || Arch.Mb_config.equal
       { candidate with multiplier = current.multiplier }
       current
     && Apps.Features.mul_free ft
  || Arch.Mb_config.equal { candidate with divider = current.divider } current
     && Apps.Features.div_free ft

let changed_params (config : Arch.Mb_config.t) =
  let b = base in
  let add acc name f v = if f then (name, v) :: acc else acc in
  []
  |> (fun acc ->
       add acc "icachesz"
         (config.icache.way_kb <> b.icache.way_kb)
         (string_of_int config.icache.way_kb))
  |> (fun acc ->
       add acc "icachelinesz"
         (config.icache.line_words <> b.icache.line_words)
         (string_of_int config.icache.line_words))
  |> (fun acc ->
       add acc "dcachesets"
         (config.dcache.ways <> b.dcache.ways)
         (string_of_int config.dcache.ways))
  |> (fun acc ->
       add acc "dcachesetsz"
         (config.dcache.way_kb <> b.dcache.way_kb)
         (string_of_int config.dcache.way_kb))
  |> (fun acc ->
       add acc "dcachelinesz"
         (config.dcache.line_words <> b.dcache.line_words)
         (string_of_int config.dcache.line_words))
  |> (fun acc ->
       add acc "dcachereplace"
         (config.dcache.replacement <> b.dcache.replacement)
         (Arch.Config.replacement_to_string config.dcache.replacement))
  |> (fun acc ->
       add acc "barrelshifter"
         (config.barrel_shifter <> b.barrel_shifter)
         (if config.barrel_shifter then "on" else "off"))
  |> (fun acc ->
       add acc "multiplier"
         (config.multiplier <> b.multiplier)
         (Arch.Mb_config.multiplier_to_string config.multiplier))
  |> (fun acc ->
       add acc "divider" (config.divider <> b.divider)
         (if config.divider then "on" else "off"))
  |> List.rev

(* The scaled-down exhaustive geometry sweep: all dcache ways x
   way-size points (ways-major, like the paper's Figure 2 rows). *)
let sweep_configs =
  List.concat_map
    (fun ways ->
      List.map
        (fun way_kb ->
          { base with Arch.Mb_config.dcache = { base.Arch.Mb_config.dcache with ways; way_kb } })
        Arch.Mb_config.valid_way_kbs)
    Arch.Mb_config.valid_dcache_ways

let describe_sweep_point (c : Arch.Mb_config.t) =
  Printf.sprintf "%dx%dKB" c.Arch.Mb_config.dcache.ways
    c.Arch.Mb_config.dcache.way_kb

(* Lowering onto the simulator: the knobs this core does not offer are
   pinned, so they cancel out of every delta between two MicroBlaze
   configurations. *)
let lower (c : Arch.Mb_config.t) : Arch.Config.t =
  {
    Arch.Config.icache =
      {
        Arch.Config.ways = 1;
        way_kb = c.icache.way_kb;
        line_words = c.icache.line_words;
        replacement = Arch.Config.Random;
      };
    dcache = c.dcache;
    dcache_fast_read = false;
    dcache_fast_write = false;
    iu =
      {
        Arch.Config.fast_jump = true;
        icc_hold = false;
        fast_decode = true;
        load_delay = 1;
        reg_windows = 8;
        divider =
          (if c.divider then Arch.Config.Div_radix2 else Arch.Config.Div_none);
        multiplier =
          (match c.multiplier with
          | Arch.Mb_config.Mb_mul_none -> Arch.Config.Mul_none
          | Arch.Mb_config.Mb_mul32 -> Arch.Config.Mul_32x16
          | Arch.Mb_config.Mb_mul64 -> Arch.Config.Mul_32x32);
      };
    infer_mult_div = true;
  }

(* Without the optional barrel shifter, MicroBlaze shifts iterate —
   modeled as a flat per-shift stall. *)
let shift_stall (c : Arch.Mb_config.t) = if c.Arch.Mb_config.barrel_shifter then 0 else 8

(* Runtime reconfiguration model.  The same region framing as LEON2,
   but the much smaller device reconfigures whole functional blocks:
   slices are cheaper (less logic per group), and a switch does NOT
   preserve cache contents — reprogramming this device's block RAM
   columns flushes them, so every switch restarts the caches cold.
   That asymmetry (LEON2 keeps untouched regions warm, MicroBlaze
   flushes) is exactly the policy knob [keep_caches_on_switch]
   exposes.  No group is architecturally static on this core. *)
let reconfig_regions =
  [
    ("icache", [ Arch.Mb_param.Icache_way_kb; Arch.Mb_param.Icache_line ]);
    ( "dcache",
      [
        Arch.Mb_param.Dcache_ways; Arch.Mb_param.Dcache_way_kb;
        Arch.Mb_param.Dcache_line; Arch.Mb_param.Dcache_repl;
      ] );
    ( "alu",
      [
        Arch.Mb_param.Barrel_shifter; Arch.Mb_param.Multiplier;
        Arch.Mb_param.Divider;
      ] );
  ]

let static_groups = []

let group_switch_cycles (g : group) =
  match g with
  | Arch.Mb_param.Icache_way_kb | Arch.Mb_param.Icache_line
  | Arch.Mb_param.Dcache_ways | Arch.Mb_param.Dcache_way_kb
  | Arch.Mb_param.Dcache_line | Arch.Mb_param.Dcache_repl ->
      4_000
  | Arch.Mb_param.Barrel_shifter | Arch.Mb_param.Multiplier
  | Arch.Mb_param.Divider ->
      2_000

let group_changed (a : Arch.Mb_config.t) (b : Arch.Mb_config.t) (g : group) =
  match g with
  | Arch.Mb_param.Icache_way_kb -> a.icache.way_kb <> b.icache.way_kb
  | Arch.Mb_param.Icache_line -> a.icache.line_words <> b.icache.line_words
  | Arch.Mb_param.Dcache_ways -> a.dcache.ways <> b.dcache.ways
  | Arch.Mb_param.Dcache_way_kb -> a.dcache.way_kb <> b.dcache.way_kb
  | Arch.Mb_param.Dcache_line -> a.dcache.line_words <> b.dcache.line_words
  | Arch.Mb_param.Dcache_repl -> a.dcache.replacement <> b.dcache.replacement
  | Arch.Mb_param.Barrel_shifter -> a.barrel_shifter <> b.barrel_shifter
  | Arch.Mb_param.Multiplier -> a.multiplier <> b.multiplier
  | Arch.Mb_param.Divider -> a.divider <> b.divider

let switch_cycles a b =
  List.fold_left
    (fun acc g -> if group_changed a b g then acc + group_switch_cycles g else acc)
    0 Arch.Mb_param.groups

let keep_caches_on_switch = false

let schedule_dims =
  [
    Arch.Mb_param.Icache_way_kb; Arch.Mb_param.Icache_line;
    Arch.Mb_param.Dcache_way_kb; Arch.Mb_param.Dcache_line;
  ]

let run_app ?(config = base) (app : Apps.Registry.t) =
  Sim.Machine.run ~reps:app.Apps.Registry.reps
    ~shift_stall:(shift_stall config) (lower config)
    (Lazy.force app.Apps.Registry.program)

let detect_phases ?options (app : Apps.Registry.t) =
  Sim.Phase.detect ?options ~shift_stall:(shift_stall base) (lower base)
    (Lazy.force app.Apps.Registry.program)

let run_app_segmented ?(config = base) ~boundaries (app : Apps.Registry.t) =
  Sim.Machine.run_segmented ~reps:app.Apps.Registry.reps
    ~shift_stall:(shift_stall config) ~boundaries (lower config)
    (Lazy.force app.Apps.Registry.program)

let run_app_phased ~schedule (app : Apps.Registry.t) =
  match schedule with
  | [] -> invalid_arg "Target_microblaze.run_app_phased: empty schedule"
  | (s0, first) :: rest ->
      if s0 <> 0 then
        invalid_arg "Target_microblaze.run_app_phased: schedule must start at 0";
      let rec switches prev = function
        | [] -> []
        | (at, c) :: tl ->
            {
              Sim.Machine.at_insn = at;
              config = lower c;
              shift_stall = shift_stall c;
              cycles = switch_cycles prev c;
            }
            :: switches c tl
      in
      let last = List.fold_left (fun _ (_, c) -> c) first rest in
      Sim.Machine.run_phased ~reps:app.Apps.Registry.reps
        ~shift_stall:(shift_stall first)
        ~keep_caches:keep_caches_on_switch
        ~wrap_cycles:(switch_cycles last first)
        ~switches:(switches first rest) (lower first)
        (Lazy.force app.Apps.Registry.program)

let run_program ?mem_size config prog =
  Sim.Machine.run ?mem_size ~shift_stall:(shift_stall config) (lower config)
    prog

let cycle_model config =
  Bounds.of_arch_config ~shift_stall:(shift_stall config) (lower config)

let probe =
  {
    Target.target = name;
    digest;
    describe = to_string;
    is_valid;
    resources;
    device_luts;
    device_brams;
    simulate =
      (fun app config ->
        let result = run_app ~config app in
        (Sim.Machine.seconds result, result.Sim.Machine.profile));
    static_bounds =
      Some (fun app config -> Bounds.app_bounds (cycle_model config) app);
  }
