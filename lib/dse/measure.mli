(** The perturb-one-at-a-time measurement harness (the paper's model
    building step).

    For each of the 52 decision variables, build the configuration
    that differs from base in just that parameter, "synthesize" it
    (resource model) and execute the application on it (simulator),
    recording the percentage deltas.  All evaluations go through the
    shared {!Engine}, so repeated builds (and overlaps with sweeps or
    other experiments) are cache hits.

    Replacement-policy perturbations (LRR/LRU) are structurally invalid
    on the 1-way base cache; their marginal cost is measured at 2-way
    associativity relative to a plain 2-way configuration, matching the
    own-dimension reading of the paper's model (the x10<=x1 couplings
    make the solver pick them only together with added ways).

    [noise] injects a deterministic, per-configuration pseudo-random
    LUT measurement error (a fraction of the device, e.g. 0.005 for
    ±0.5 %) modeling synthesis/place-and-route variance — the paper's
    LUT columns visibly carry such noise (it reports LUT *decreases*
    for larger caches, and its resource optimizer picks extra register
    windows flagged "sub-optimal").  Default: no noise. *)

type row = Leon2.S.Measure.row = {
  var : Arch.Param.var;
  config : Arch.Config.t;
  cost : Cost.t;
  deltas : Cost.deltas;
}

type model = Leon2.S.Measure.model = {
  app : Apps.Registry.t;
  base : Cost.t;
  rows : row list;  (** exactly the variables of the selected groups *)
  by_index : (int, row) Hashtbl.t;
      (** derived: rows by paper variable index.  Never update [rows]
          with a record-update expression — use {!with_rows}, which
          rebuilds the index. *)
}

val model_of : Apps.Registry.t -> base:Cost.t -> row list -> model
(** Build a model, deriving the index table from the rows. *)

val with_rows : model -> row list -> model
(** [model] with the given rows and a freshly derived index table. *)

val measure : ?noise:float -> Apps.Registry.t -> Arch.Config.t -> Cost.t
(** Synthesize and run one configuration — [Engine.eval] on the shared
    engine. @raise Invalid_argument if structurally invalid. *)

val build :
  ?noise:float ->
  ?dims:Arch.Param.group list ->
  ?jobs:int ->
  Apps.Registry.t ->
  model
(** [dims] restricts the model to the given parameter groups (the
    Section 5 study uses dcache ways and way size); default all 18
    groups, i.e. all 52 variables.  [jobs] fans the per-variable
    measurements out over the domain pool ({!Parallel.map}); the result
    is identical to the sequential build. *)

val reference_config : Arch.Param.var -> Arch.Config.t
(** The configuration a variable's marginal cost is measured against:
    base for everything except replacement policies, which are
    referenced to a 2-way cache (see above). *)

val row : model -> int -> row
(** Row for paper variable index (1-based). @raise Not_found if the
    variable is outside the model's dims. *)
