type row = {
  var : Arch.Param.var;
  config : Arch.Config.t;
  cost : Cost.t;
  deltas : Cost.deltas;
}

type model = {
  app : Apps.Registry.t;
  base : Cost.t;
  rows : row list;
  by_index : (int, row) Hashtbl.t;
}

let index_rows rows =
  let h = Hashtbl.create (max 16 (List.length rows)) in
  List.iter (fun r -> Hashtbl.replace h r.var.Arch.Param.index r) rows;
  h

let model_of app ~base rows = { app; base; rows; by_index = index_rows rows }
let with_rows m rows = { m with rows; by_index = index_rows rows }

let measure ?noise app config = Engine.eval ?noise (Engine.default ()) app config

(* Reference configuration against which a variable's marginal cost is
   taken: base, except for replacement policies (see interface). *)
let reference_config (var : Arch.Param.var) =
  let two_way_icache c =
    { c with Arch.Config.icache = { c.Arch.Config.icache with ways = 2 } }
  in
  let two_way_dcache c =
    { c with Arch.Config.dcache = { c.Arch.Config.dcache with ways = 2 } }
  in
  match var.group with
  | Arch.Param.Icache_repl -> two_way_icache Arch.Config.base
  | Arch.Param.Dcache_repl -> two_way_dcache Arch.Config.base
  | _ -> Arch.Config.base

let build ?noise ?dims ?jobs app =
  Obs.Span.with_span ~cat:"dse" "measure.build"
    ~attrs:[ ("app", Obs.Json.String app.Apps.Registry.name) ]
  @@ fun span ->
  (* Force the compiled program before any domain fan-out: Lazy is not
     domain-safe. *)
  ignore (Lazy.force app.Apps.Registry.program);
  let base = measure ?noise app Arch.Config.base in
  let selected_groups =
    match dims with None -> Arch.Param.groups | Some ds -> ds
  in
  let vars =
    List.filter (fun v -> List.mem v.Arch.Param.group selected_groups) Arch.Param.all
  in
  Obs.Span.add_attr span "perturbations" (Obs.Json.Int (List.length vars));
  let measure_var var =
    Obs.Span.with_span ~cat:"dse" "measure.perturbation"
      ~attrs:[ ("label", Obs.Json.String var.Arch.Param.label) ]
    @@ fun vspan ->
    let reference = reference_config var in
    let config = var.Arch.Param.apply reference in
    let cost = measure ?noise app config in
    let ref_cost =
      if Arch.Config.equal reference Arch.Config.base then base
      else measure ?noise app reference
    in
    Obs.Span.add_attr vspan "sim_cycles"
      (Obs.Json.Int
         (int_of_float (cost.Cost.seconds *. Sim.Machine.clock_hz)));
    Obs.Span.add_attr vspan "luts"
      (Obs.Json.Int cost.Cost.resources.Synth.Resource.luts);
    Obs.Span.add_attr vspan "brams"
      (Obs.Json.Int cost.Cost.resources.Synth.Resource.brams);
    (* Marginal deltas relative to the reference, expressed against the
       base runtime as the paper's percentages are. *)
    let d = Cost.deltas ~base:ref_cost cost in
    let rho =
      100.0 *. (cost.Cost.seconds -. ref_cost.Cost.seconds) /. base.Cost.seconds
    in
    {
      var;
      config = var.Arch.Param.apply Arch.Config.base;
      cost;
      deltas = { d with Cost.rho };
    }
  in
  model_of app ~base (Parallel.map ?jobs measure_var vars)

let row model index =
  match Hashtbl.find_opt model.by_index index with
  | Some r -> r
  | None -> raise Not_found
