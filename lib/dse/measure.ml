include Leon2.S.Measure
