(** Heuristic design-space exploration baselines.

    The related work the paper positions against explores the space
    with heuristics (Fischer et al.'s DSE, Gordon-Ross et al.'s
    hierarchical cache search).  Two classic baselines, each counting
    the builds (configuration measurements) it spends — the currency of
    the paper's scalability argument, since a real build costs ~30
    minutes of synthesis plus an application run:

    - {b random search}: sample valid configurations uniformly;
    - {b coordinate descent}: from the base configuration, repeatedly
      sweep every parameter, adopting the best value while holding the
      others fixed, until a full sweep improves nothing.

    Both optimize the same weighted objective the paper's BINLP does,
    and reject configurations that do not fit the device. *)

type result = Leon2.S.Heuristic.result = {
  config : Arch.Config.t;
  cost : Cost.t;
  objective : float;     (** weighted objective vs the base *)
  builds : int;          (** configurations actually simulated *)
  pruned : int;
      (** candidates skipped without a simulation — by a static
          feature argument or by the engine's static-bounds admission
          gate ({!Engine.eval_bounded_on}); both are
          trajectory-preserving, so the returned configuration is the
          one an unpruned run selects *)
}

val random_search :
  ?seed:int -> builds:int -> weights:Cost.weights -> Apps.Registry.t -> result
(** Samples until [builds] feasible candidates have been spent.  A
    feasible draw whose static {e best-case} runtime already loses to
    the incumbent consumes budget without simulating, so
    [result.builds + result.pruned = builds] and the winner matches an
    unpruned run's draw for draw. *)

val coordinate_descent :
  ?max_sweeps:int ->
  ?features:Apps.Features.t ->
  weights:Cost.weights ->
  Apps.Registry.t ->
  result
(** With [features] (see {!Apps.Features}), candidates that a static
    argument proves runtime-identical to the incumbent and no cheaper
    in resources are skipped without a build — e.g. icache
    enlargements when the whole program already fits one way, or
    multiplier swaps under a program that never multiplies.  The
    descent trajectory (and so the returned configuration) is
    unchanged; only [builds] drops and [pruned] counts the skips.
    Requires non-negative weights, which all {!Cost} presets are. *)

val paper_method : weights:Cost.weights -> Apps.Registry.t -> result
(** The paper's pipeline, packaged with its build count (52
    one-at-a-time probes + replacement references + the verification
    build) for comparison. *)

val random_config : Sim.Rng.t -> Arch.Config.t
(** A uniformly random structurally-valid configuration. *)

val print_comparison : Format.formatter -> string -> result list -> unit
(** [print_comparison ppf app_name [paper; descent; random...]] *)
