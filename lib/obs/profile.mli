(** Sampling profiler over the span stack.

    {!start} spawns one sampler domain that wakes every [period]
    seconds and charges a sample to every domain's current stack of
    span labels (maintained by {!Span.with_span} while profiling is
    enabled).  Mutator overhead is one [Atomic.set] per span boundary
    and nothing per sample, so leaving it on for a whole pipeline run
    costs well under a percent (see {!overhead_ns}); safe under
    {!Dse.Pool} — every worker domain gets its own stack cell.

    Output is a folded-stacks table ([a;b;c <count>] lines, the input
    format of flamegraph.pl and speedscope) plus a top-N self-time
    table for bench JSON. *)

val start : ?period:float -> unit -> unit
(** Enable profiling and spawn the sampler ([period] defaults to 1 ms).
    Idempotent while running. *)

val stop : unit -> unit
(** Disable profiling and join the sampler.  Accumulated samples are
    kept until {!reset}. *)

val enabled : unit -> bool

val push : string -> bool
(** Push a span label on the calling domain's stack; returns [true] so
    callers can remember to {!pop} exactly when they pushed.  Called
    by {!Span.with_span}; not meant for direct use. *)

val pop : unit -> unit
(** Tolerates an empty stack (profiling toggled mid-span). *)

val total_samples : unit -> int
val span_ops : unit -> int
(** Span boundaries observed while enabled. *)

val rows : unit -> (string * int) list
(** Folded stack -> sample count, sorted by stack. *)

val folded : unit -> string
(** The folded-stacks file contents (one ["stack count\n"] line per
    distinct stack). *)

val top : ?n:int -> unit -> (string * int) list
(** Top-N span labels by self samples (each sample charged to the leaf
    of its stack), descending. *)

val overhead_ns : ops:int -> samples:int -> float
(** Estimated profiler cost in nanoseconds for a run that crossed
    [ops] span boundaries and took [samples] samples, from unit costs
    calibrated once on this machine. *)

val to_json : unit -> Json.t
(** [{"samples": n, "span_ops": n, "top": [{label, samples, fraction}]}]. *)

val reset : unit -> unit
