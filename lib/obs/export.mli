(** Exporters: Chrome trace-event JSON (load in Perfetto / chrome://tracing)
    and a metrics dump.

    Trace-event objects keep a fixed field order —
    [name, cat, ph, ts, dur, pid, tid, args] for complete ('X') events,
    [name, cat, ph, ts, s, pid, tid, args] for instants,
    [name, cat, ph, ts, pid, tid, args] for counters ('C') — with [ts]/[dur]
    in microseconds on the process-relative monotonic axis, so the format
    is golden-testable byte-for-byte modulo timestamps. *)

val trace_json : unit -> Json.t
(** [{"displayTimeUnit": "ms", "traceEvents": [...]}] over the merged,
    ts-sorted buffers of every domain. *)

val trace_to_string : unit -> string

val write_trace : string -> unit
(** Write {!trace_to_string} to a file. *)

val metrics_json : unit -> Json.t
(** Snapshot of the metrics registry, keyed by metric name. *)

val write_metrics : string -> unit

val write_profile : string -> unit
(** Write the sampling profiler's folded-stacks table (see
    {!Profile.folded}) — feed to flamegraph.pl or speedscope. *)
