(** Process-wide metrics registry: named counters, gauges, and
    histograms with fixed log2-scale buckets.

    Handles are cheap atomic cells, safe to bump from any domain;
    registration (idempotent by name) takes a lock, so create handles
    once at module level or outside hot loops.  Unlike spans, metrics
    are always on — an [Atomic.fetch_and_add] per event is far below
    the noise floor of the simulator and solver they observe. *)

module Counter : sig
  type t

  val v : ?help:string -> string -> t
  (** Register (or re-find) the counter [name].
      @raise Invalid_argument if [name] exists with another type. *)

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val v : ?help:string -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val v : ?help:string -> string -> t
  (** Buckets are powers of two: observation [x] lands in the bucket
      whose upper bound is the smallest [2^k >= x] (clamped to
      [2^-31 .. 2^31]). *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (float * int) list;  (** non-empty buckets, (le, count) *)
    }

type snapshot = (string * (string * metric)) list
(** [(name, (help, metric))], sorted by name. *)

val snapshot : unit -> snapshot

val to_json : snapshot -> Json.t
(** Object keyed by metric name, fields in stable order. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table. *)

val quantile : float -> metric -> float option
(** [quantile q m] is the upper bound of the smallest bucket whose
    cumulative count reaches [q] of the total — an upper estimate of
    the q-quantile, within one power-of-two of the true value.  [None]
    for non-histograms and empty histograms. *)

val find : snapshot -> string -> metric option

val counter_value : snapshot -> string -> int
(** Convenience: the counter's value, or 0 if absent. *)

val reset : unit -> unit
(** Zero every registered metric (handles stay valid); for tests and
    per-target bench deltas. *)
