(* Decision-provenance journal: a structured event stream recording
   *why* the pipeline did what it did (per-candidate engine outcomes,
   solver incumbent improvements, bound tightness), distinct from the
   timing-oriented span/trace layer.

   Same buffering discipline as {!Trace}: one buffer per domain (the
   owning domain is the only writer, so appends are lock-free), a
   mutex-protected registry of buffers, and a process-wide enabled
   flag so disabled journalling costs one atomic load.  Timestamps
   come from the shared monotonic clock, so each domain's buffer is
   monotone by construction and the merged view sorts consistently.

   When Chrome tracing is also enabled, every journal event is
   mirrored into the trace as an instant event under the "journal"
   category, so Perfetto shows decisions on the same timeline as the
   spans that produced them. *)

type event = {
  ts_ns : int64;
  tid : int;
  kind : string;
  fields : (string * Json.t) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type buffer = { tid : int; mutable items : event list }

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); items = [] } in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let record ~kind fields =
  if enabled () then begin
    let ts_ns = Clock.since_start_ns () in
    let b = Domain.DLS.get buffer_key in
    b.items <- { ts_ns; tid = b.tid; kind; fields } :: b.items;
    if Trace.enabled () then
      Trace.record
        {
          Trace.name = kind;
          cat = "journal";
          ph = Trace.Instant;
          ts_ns;
          dur_ns = 0L;
          tid = b.tid;
          args = fields;
        }
  end

let buffers () =
  Mutex.lock registry_lock;
  let bs = !registry in
  Mutex.unlock registry_lock;
  bs

let events () =
  let all = List.concat_map (fun b -> List.rev b.items) (buffers ()) in
  List.stable_sort (fun a b -> Int64.compare a.ts_ns b.ts_ns) all

let events_by_domain () =
  List.filter_map
    (fun b ->
      match List.rev b.items with [] -> None | evs -> Some (b.tid, evs))
    (buffers ())

let clear () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.items <- []) !registry;
  Mutex.unlock registry_lock

let to_json e =
  Json.Obj
    [
      ("ts_us", Json.Float (Clock.ns_to_us e.ts_ns));
      ("tid", Json.Int e.tid);
      ("kind", Json.String e.kind);
      ("fields", Json.Obj e.fields);
    ]
