let pid = 1

let event_json (e : Trace.event) =
  let common_head =
    [
      ("name", Json.String e.Trace.name);
      ("cat", Json.String e.Trace.cat);
    ]
  in
  let common_tail =
    [
      ("pid", Json.Int pid);
      ("tid", Json.Int e.Trace.tid);
      ("args", Json.Obj e.Trace.args);
    ]
  in
  match e.Trace.ph with
  | Trace.Complete ->
      Json.Obj
        (common_head
        @ [
            ("ph", Json.String "X");
            ("ts", Json.Float (Clock.ns_to_us e.Trace.ts_ns));
            ("dur", Json.Float (Clock.ns_to_us e.Trace.dur_ns));
          ]
        @ common_tail)
  | Trace.Instant ->
      Json.Obj
        (common_head
        @ [
            ("ph", Json.String "i");
            ("ts", Json.Float (Clock.ns_to_us e.Trace.ts_ns));
            ("s", Json.String "t");
          ]
        @ common_tail)
  | Trace.Counter ->
      Json.Obj
        (common_head
        @ [
            ("ph", Json.String "C");
            ("ts", Json.Float (Clock.ns_to_us e.Trace.ts_ns));
          ]
        @ common_tail)

let trace_json () =
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (List.map event_json (Trace.events ())));
    ]

let trace_to_string () = Json.to_string (trace_json ())

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_trace path = write_file path (trace_to_string ())

let metrics_json () = Metrics.to_json (Metrics.snapshot ())

let write_metrics path = write_file path (Json.to_string (metrics_json ()))

let write_profile path = write_file path (Profile.folded ())
