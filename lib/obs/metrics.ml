let nbuckets = 64
let bucket_offset = 32 (* bucket i has upper bound 2^(i - bucket_offset) *)

type hist = { counts : int Atomic.t array; sum_bits : int64 Atomic.t }

type handle =
  | C of int Atomic.t
  | G of float Atomic.t
  | H of hist

let registry : (string, string * handle) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let register ~kind ~help name make check =
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (_, h) -> (
        match check h with
        | Some v -> Ok v
        | None -> Error (name ^ " already registered with another type"))
    | None ->
        let v = make () in
        Hashtbl.replace registry name (help, v);
        Ok (match check v with Some x -> x | None -> assert false)
  in
  Mutex.unlock lock;
  match r with
  | Ok v -> v
  | Error m -> invalid_arg (Printf.sprintf "Obs.Metrics.%s.v: %s" kind m)

module Counter = struct
  type t = int Atomic.t

  let v ?(help = "") name =
    register ~kind:"Counter" ~help name
      (fun () -> C (Atomic.make 0))
      (function C c -> Some c | _ -> None)

  let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t by)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = float Atomic.t

  let v ?(help = "") name =
    register ~kind:"Gauge" ~help name
      (fun () -> G (Atomic.make 0.0))
      (function G g -> Some g | _ -> None)

  let set t x = Atomic.set t x
  let value t = Atomic.get t
end

module Histogram = struct
  type t = hist

  let v ?(help = "") name =
    register ~kind:"Histogram" ~help name
      (fun () ->
        H
          {
            counts = Array.init nbuckets (fun _ -> Atomic.make 0);
            sum_bits = Atomic.make (Int64.bits_of_float 0.0);
          })
      (function H h -> Some h | _ -> None)

  let bucket_index x =
    if x <= 0.0 then 0
    else
      let k = int_of_float (Float.ceil (Float.log2 x)) in
      max 1 (min (nbuckets - 1) (k + bucket_offset))

  let rec atomic_add_float cell x =
    let old = Atomic.get cell in
    let updated = Int64.bits_of_float (Int64.float_of_bits old +. x) in
    if not (Atomic.compare_and_set cell old updated) then atomic_add_float cell x

  let observe t x =
    ignore (Atomic.fetch_and_add t.counts.(bucket_index x) 1);
    atomic_add_float t.sum_bits x

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Int64.float_of_bits (Atomic.get t.sum_bits)
end

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

type snapshot = (string * (string * metric)) list

let bucket_le i = Float.pow 2.0 (float_of_int (i - bucket_offset))

let quantile q = function
  | Histogram { count; buckets; _ } when count > 0 ->
      let threshold = q *. float_of_int count in
      let rec scan cum = function
        | [] -> None
        | [ (le, _) ] -> Some le
        | (le, c) :: rest ->
            let cum = cum +. float_of_int c in
            if cum >= threshold then Some le else scan cum rest
      in
      scan 0.0 buckets
  | _ -> None

let read = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
      let buckets = ref [] in
      for i = nbuckets - 1 downto 0 do
        let c = Atomic.get h.counts.(i) in
        if c > 0 then buckets := (bucket_le i, c) :: !buckets
      done;
      Histogram
        { count = Histogram.count h; sum = Histogram.sum h; buckets = !buckets }

let snapshot () =
  Mutex.lock lock;
  let rows =
    Hashtbl.fold (fun name (help, h) acc -> (name, (help, read h)) :: acc)
      registry []
  in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let to_json snap =
  Json.Obj
    (List.map
       (fun (name, (help, m)) ->
         let fields =
           match m with
           | Counter n -> [ ("type", Json.String "counter"); ("value", Json.Int n) ]
           | Gauge x -> [ ("type", Json.String "gauge"); ("value", Json.Float x) ]
           | Histogram { count; sum; buckets } ->
               let q p =
                 match quantile p m with
                 | Some le -> Json.Float le
                 | None -> Json.Null
               in
               [
                 ("type", Json.String "histogram");
                 ("count", Json.Int count);
                 ("sum", Json.Float sum);
                 ("p50", q 0.5);
                 ("p99", q 0.99);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (le, c) ->
                          Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
                        buckets) );
               ]
         in
         let fields =
           if help = "" then fields else fields @ [ ("help", Json.String help) ]
         in
         (name, Json.Obj fields))
       snap)

let pp ppf snap =
  Format.fprintf ppf "@[<v>%-36s %-10s %s@," "metric" "type" "value";
  List.iter
    (fun (name, (_, m)) ->
      match m with
      | Counter n -> Format.fprintf ppf "%-36s %-10s %d@," name "counter" n
      | Gauge x -> Format.fprintf ppf "%-36s %-10s %g@," name "gauge" x
      | Histogram { count; sum; _ } ->
          Format.fprintf ppf "%-36s %-10s count=%d sum=%g@," name "histogram"
            count sum)
    snap;
  Format.fprintf ppf "@]"

let find snap name = Option.map snd (List.assoc_opt name snap)

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ (_, h) ->
      match h with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.sum_bits (Int64.bits_of_float 0.0))
    registry;
  Mutex.unlock lock
