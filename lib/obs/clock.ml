let now_ns () = Monotonic_clock.now ()

let start = now_ns ()

let since_start_ns () = Int64.sub (now_ns ()) start

let ns_to_us ns = Int64.to_float ns /. 1000.0
