(** Bench history (append-only JSONL) and regression gating.

    Each benchmark run appends one {!entry} per experiment — keyed by
    git revision and target name — to a [BENCH_history.jsonl] file;
    {!check} compares a fresh entry against the median of the last
    [window] historical entries for the same target under per-metric
    relative thresholds, so CI can fail a run that regresses
    wall-clock, node counts or cache effectiveness. *)

type entry = {
  rev : string;  (** git revision the run was built from *)
  target : string;  (** experiment name, e.g. ["fig2"] *)
  time : float;  (** unix epoch seconds (informational) *)
  metrics : (string * float) list;
}

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

val append : string -> entry -> unit
(** Append one JSON line to [path], creating the file if needed. *)

val load : string -> (entry list, string) result
(** All entries in file order; a missing file is [Ok []] (first run);
    a malformed line is an [Error] naming the line. *)

type rule = {
  metric : string;
  max_ratio : float option;
      (** regression when [current/baseline] exceeds this *)
  min_ratio : float option;
      (** regression when [current/baseline] falls below this *)
}

val default_rules : rule list
(** Wall-clock 1.5x (noisy), solver nodes / simulated cycles / builds
    1.05x (deterministic), bounds-pruned and engine hits floored at
    0.95x (pruning power and cache effectiveness must not silently
    erode), simulator and solver throughput ([sim_cycles_per_second],
    [binlp_nodes_per_second]) floored at 0.67x. *)

type regression = {
  metric : string;
  baseline : float;
  current : float;
  ratio : float;
  limit : float;
  above : bool;  (** [true]: exceeded [max_ratio], else below [min_ratio] *)
}

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val check :
  ?window:int -> ?rules:rule list -> history:entry list -> entry -> regression list
(** Baseline = median over the last [window] (default 5) entries with
    the entry's target.  Metrics absent from either side, targets with
    no history, and zero baselines are skipped — a first run never
    regresses. *)

val pp_regression : Format.formatter -> regression -> unit
