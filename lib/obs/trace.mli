(** Trace-event collection with per-domain buffers.

    Recording is off by default; {!Span.with_} degenerates to a plain
    call when disabled, so instrumentation left in hot paths costs one
    atomic load.  Each domain appends to its own buffer (created on
    first use through [Domain.DLS]), so {!Dse.Parallel} workers trace
    without locks on the record path; buffers are registered in a
    global list the exporter merges after the domains have joined. *)

type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64;  (** start time, monotonic, relative to process start *)
  dur_ns : int64;  (** 0 for instant and counter events *)
  tid : int;  (** recording domain's id *)
  args : (string * Json.t) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val record : event -> unit
(** Unconditionally append to the current domain's buffer (callers
    check {!enabled}). *)

val events : unit -> event list
(** Merge every domain's buffer, sorted by [ts_ns] (stable). *)

val clear : unit -> unit
(** Drop all buffered events (for tests). *)
