(** Decision-provenance journal.

    Spans answer "where did the time go"; the journal answers "which
    decisions were made and why": per-candidate engine outcomes
    (hit / built / unfit / bounds-pruned with the violated cutoff),
    solver incumbent improvements, static-bound tightness.  Consumers
    ([reconfigure --explain], the fuzz oracle) aggregate the raw
    stream into reports.

    Off by default; a disabled {!record} is one atomic load.  Each
    domain appends to its own buffer, so recording inside
    {!Dse.Pool} workers needs no locks and each buffer is
    monotonically timestamped by construction.  When {!Trace}
    recording is also enabled, every journal event is mirrored into
    the Chrome trace as an instant event (category ["journal"]). *)

type event = {
  ts_ns : int64;  (** monotonic, relative to process start *)
  tid : int;  (** recording domain's id *)
  kind : string;  (** e.g. ["binlp.incumbent"], ["engine.hit"] *)
  fields : (string * Json.t) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val record : kind:string -> (string * Json.t) list -> unit
(** Append to the current domain's buffer when enabled, else no-op.
    Callers building expensive field lists should guard with
    {!enabled} to avoid the allocation. *)

val events : unit -> event list
(** Merge every domain's buffer, stably sorted by [ts_ns]. *)

val events_by_domain : unit -> (int * event list) list
(** Per-buffer view in append order (oldest first), for invariant
    checks: each domain's list must be monotonically timestamped. *)

val clear : unit -> unit

val to_json : event -> Json.t
(** [{"ts_us": ..., "tid": ..., "kind": ..., "fields": {...}}]. *)
