(* Low-overhead sampling profiler over the span stack.

   Each domain maintains its current stack of span labels in an
   [Atomic] cell (an immutable list, so a concurrent reader always
   sees a consistent stack); {!Span.with_span} pushes/pops when
   profiling is enabled.  A dedicated sampler domain wakes every
   [period] seconds and charges one sample to each domain's current
   stack, so wall-time attribution costs the mutator one [Atomic.set]
   per span boundary and nothing per sample.

   The sampler sleeps in [Unix.sleepf] (a blocking section, so it
   never delays stop-the-world collections) and aggregates into a
   folded-stacks table ("a;b;c <count>") directly consumable by
   flamegraph.pl / speedscope. *)

type dstack = { stack : string list Atomic.t }

let registry : dstack list ref = ref []
let registry_lock = Mutex.create ()

let stack_key =
  Domain.DLS.new_key (fun () ->
      let d = { stack = Atomic.make [] } in
      Mutex.lock registry_lock;
      registry := d :: !registry;
      Mutex.unlock registry_lock;
      d)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Span boundaries observed while enabled; together with the sample
   count this drives the overhead estimate below. *)
let ops = Atomic.make 0

let push label =
  let d = Domain.DLS.get stack_key in
  Atomic.incr ops;
  Atomic.set d.stack (label :: Atomic.get d.stack);
  true

let pop () =
  let d = Domain.DLS.get stack_key in
  match Atomic.get d.stack with
  | [] -> ()
  | _ :: rest -> Atomic.set d.stack rest

(* --- sampler --- *)

let samples : (string, int) Hashtbl.t = Hashtbl.create 64
let samples_lock = Mutex.create ()
let total = Atomic.make 0
let sampler : unit Domain.t option ref = ref None
let sampler_lock = Mutex.create ()
let stop_flag = Atomic.make false

let tick () =
  Mutex.lock registry_lock;
  let ds = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun d ->
      match Atomic.get d.stack with
      | [] -> ()
      | stack ->
          let key = String.concat ";" (List.rev stack) in
          Atomic.incr total;
          Mutex.lock samples_lock;
          Hashtbl.replace samples key
            (1 + Option.value ~default:0 (Hashtbl.find_opt samples key));
          Mutex.unlock samples_lock)
    ds

let start ?(period = 0.001) () =
  Mutex.lock sampler_lock;
  if !sampler = None then begin
    Atomic.set stop_flag false;
    Atomic.set enabled_flag true;
    sampler :=
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_flag) do
               Unix.sleepf period;
               if not (Atomic.get stop_flag) then tick ()
             done))
  end;
  Mutex.unlock sampler_lock

let stop () =
  Mutex.lock sampler_lock;
  let d = !sampler in
  sampler := None;
  Atomic.set enabled_flag false;
  Atomic.set stop_flag true;
  Mutex.unlock sampler_lock;
  Option.iter Domain.join d

let reset () =
  Mutex.lock samples_lock;
  Hashtbl.reset samples;
  Mutex.unlock samples_lock;
  Atomic.set total 0;
  Atomic.set ops 0

let total_samples () = Atomic.get total
let span_ops () = Atomic.get ops

let rows () =
  Mutex.lock samples_lock;
  let r = Hashtbl.fold (fun k c acc -> (k, c) :: acc) samples [] in
  Mutex.unlock samples_lock;
  List.sort compare r

let folded () =
  String.concat ""
    (List.map (fun (k, c) -> Printf.sprintf "%s %d\n" k c) (rows ()))

(* Self-time attribution: each sample is charged to the innermost
   (leaf) span label of its stack. *)
let top ?(n = 10) () =
  let by_leaf = Hashtbl.create 16 in
  List.iter
    (fun (k, c) ->
      let leaf =
        match String.rindex_opt k ';' with
        | Some i -> String.sub k (i + 1) (String.length k - i - 1)
        | None -> k
      in
      Hashtbl.replace by_leaf leaf
        (c + Option.value ~default:0 (Hashtbl.find_opt by_leaf leaf)))
    (rows ());
  let all = Hashtbl.fold (fun k c acc -> (k, c) :: acc) by_leaf [] in
  let sorted =
    List.sort (fun (ka, ca) (kb, cb) -> compare (-ca, ka) (-cb, kb)) all
  in
  List.filteri (fun i _ -> i < n) sorted

(* --- overhead estimate ---

   The profiler's cost to the mutator is [span_ops] atomic stack
   updates plus [total_samples] sampler ticks; both unit costs are
   calibrated once with a quick timing loop over the same operations
   on private cells, so the estimate reflects this machine. *)

let calibrated_op_ns =
  lazy
    (let cell = Atomic.make [] in
     let iters = 50_000 in
     let t0 = Clock.now_ns () in
     for _ = 1 to iters do
       Atomic.set cell ("calibrate" :: Atomic.get cell);
       match Atomic.get cell with
       | [] -> ()
       | _ :: rest -> Atomic.set cell rest
     done;
     let t1 = Clock.now_ns () in
     Int64.to_float (Int64.sub t1 t0) /. float_of_int iters)

let calibrated_sample_ns =
  lazy
    (let tbl = Hashtbl.create 8 in
     let stack = [ "c"; "b"; "a" ] in
     let iters = 20_000 in
     let t0 = Clock.now_ns () in
     for _ = 1 to iters do
       let key = String.concat ";" (List.rev stack) in
       Hashtbl.replace tbl key
         (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
     done;
     let t1 = Clock.now_ns () in
     Int64.to_float (Int64.sub t1 t0) /. float_of_int iters)

let overhead_ns ~ops ~samples =
  (float_of_int ops *. Lazy.force calibrated_op_ns)
  +. (float_of_int samples *. Lazy.force calibrated_sample_ns)

let to_json () =
  let tops = top ~n:10 () in
  let total = total_samples () in
  Json.Obj
    [
      ("samples", Json.Int total);
      ("span_ops", Json.Int (span_ops ()));
      ( "top",
        Json.List
          (List.map
             (fun (label, c) ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ("samples", Json.Int c);
                   ( "fraction",
                     Json.Float
                       (if total = 0 then 0.0
                        else float_of_int c /. float_of_int total) );
                 ])
             tops) );
    ]
