type handle = { mutable extra : (string * Json.t) list }

let disabled_handle = { extra = [] }

let add_attr h k v = if h != disabled_handle then h.extra <- (k, v) :: h.extra

let finish ~cat ~attrs ~name ~t0 h =
  let t1 = Clock.since_start_ns () in
  Trace.record
    {
      Trace.name;
      cat;
      ph = Trace.Complete;
      ts_ns = t0;
      dur_ns = Int64.sub t1 t0;
      tid = (Domain.self () :> int);
      args = attrs @ List.rev h.extra;
    }

let with_span ?(cat = "app") ?(attrs = []) name f =
  if not (Trace.enabled ()) then f disabled_handle
  else begin
    let h = { extra = [] } in
    let t0 = Clock.since_start_ns () in
    Fun.protect ~finally:(fun () -> finish ~cat ~attrs ~name ~t0 h) (fun () -> f h)
  end

let with_ ?cat ?attrs name f = with_span ?cat ?attrs name (fun _ -> f ())

let event ?(cat = "app") ?(attrs = []) name =
  if Trace.enabled () then
    Trace.record
      {
        Trace.name;
        cat;
        ph = Trace.Instant;
        ts_ns = Clock.since_start_ns ();
        dur_ns = 0L;
        tid = (Domain.self () :> int);
        args = attrs;
      }
