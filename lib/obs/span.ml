type handle = { mutable extra : (string * Json.t) list }

let disabled_handle = { extra = [] }

let add_attr h k v = if h != disabled_handle then h.extra <- (k, v) :: h.extra

let finish ~cat ~attrs ~name ~t0 h =
  let t1 = Clock.since_start_ns () in
  Trace.record
    {
      Trace.name;
      cat;
      ph = Trace.Complete;
      ts_ns = t0;
      dur_ns = Int64.sub t1 t0;
      tid = (Domain.self () :> int);
      args = attrs @ List.rev h.extra;
    }

let with_span ?(cat = "app") ?(attrs = []) name f =
  let tracing = Trace.enabled () in
  let profiling = Profile.enabled () in
  if not (tracing || profiling) then f disabled_handle
  else begin
    let pushed = profiling && Profile.push name in
    let h = if tracing then { extra = [] } else disabled_handle in
    let t0 = Clock.since_start_ns () in
    Fun.protect
      ~finally:(fun () ->
        if pushed then Profile.pop ();
        if tracing then finish ~cat ~attrs ~name ~t0 h)
      (fun () -> f h)
  end

let with_ ?cat ?attrs name f = with_span ?cat ?attrs name (fun _ -> f ())

let event ?(cat = "app") ?(attrs = []) name =
  if Trace.enabled () then
    Trace.record
      {
        Trace.name;
        cat;
        ph = Trace.Instant;
        ts_ns = Clock.since_start_ns ();
        dur_ns = 0L;
        tid = (Domain.self () :> int);
        args = attrs;
      }

let counter ?(cat = "app") name values =
  if Trace.enabled () then
    Trace.record
      {
        Trace.name;
        cat;
        ph = Trace.Counter;
        ts_ns = Clock.since_start_ns ();
        dur_ns = 0L;
        tid = (Domain.self () :> int);
        args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }
