type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that parses back to the same float: 15
   significant digits suffice for most values, 17 always do. *)
let shortest_roundtrip f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.16g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let float_to_buf buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (shortest_roundtrip f)

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then float_to_buf buf f
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buf buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parser --- *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* Keep it simple: encode the code point as UTF-8. *)
               (if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end);
               pos := !pos + 5
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
