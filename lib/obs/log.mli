(** [Logs] verbosity wiring shared by the CLIs: 0 = warnings (default),
    1 = [-v] info, 2+ = [-vv] debug. *)

val level_of_verbosity : int -> Logs.level option

val setup : ?verbosity:int -> unit -> unit
(** Install a [Fmt]-based reporter on stderr and set the level. *)

val src : Logs.src
(** The library's own log source ("obs"). *)
