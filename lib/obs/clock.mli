(** Monotonic wall-clock time (CLOCK_MONOTONIC via a noalloc C stub),
    the same source bechamel benchmarks against. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val since_start_ns : unit -> int64
(** Nanoseconds since this process loaded the library (>= 0); all trace
    timestamps are expressed on this axis. *)

val ns_to_us : int64 -> float
(** Microseconds with nanosecond precision, Chrome trace's time unit. *)
