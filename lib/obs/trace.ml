type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * Json.t) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* One buffer per domain.  The owning domain is the only writer, so
   appends need no lock; the global registry of buffers is tiny and
   mutex-protected. *)
type buffer = { tid : int; mutable items : event list }

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); items = [] } in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let record ev =
  let b = Domain.DLS.get buffer_key in
  b.items <- ev :: b.items

let events () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  let all = List.concat_map (fun b -> b.items) buffers in
  List.stable_sort (fun a b -> Int64.compare a.ts_ns b.ts_ns) all

let clear () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.items <- []) !registry;
  Mutex.unlock registry_lock
