open Cmdliner

type t = {
  verbosity : int;
  trace_out : string option;
  metrics_out : string option;
  profile_out : string option;
}

let verbosity_arg =
  let doc =
    "Increase log verbosity: $(b,-v) for informational messages, $(b,-vv) \
     for debug."
  in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let trace_out_arg =
  let doc =
    "Record spans of the pipeline's phases and write a Chrome trace-event \
     JSON file to $(docv) (open in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let metrics_out_arg =
  let doc =
    "Write a JSON snapshot of the metrics registry (simulator event \
     counters, solver node counts, build counts) to $(docv) on exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let profile_out_arg =
  let doc =
    "Enable the sampling profiler and write a folded-stacks table (for \
     flamegraph.pl or speedscope) to $(docv) on exit."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~doc ~docv:"FILE")

let term =
  let make v trace_out metrics_out profile_out =
    { verbosity = List.length v; trace_out; metrics_out; profile_out }
  in
  Term.(
    const make $ verbosity_arg $ trace_out_arg $ metrics_out_arg
    $ profile_out_arg)

let install t =
  Obs.Log.setup ~verbosity:t.verbosity ();
  if t.trace_out <> None then Obs.Trace.set_enabled true;
  if t.profile_out <> None then Obs.Profile.start ()

let finish t =
  (match t.trace_out with
  | None -> ()
  | Some path ->
      Obs.Export.write_trace path;
      Logs.info (fun m -> m "wrote Chrome trace to %s" path));
  (match t.profile_out with
  | None -> ()
  | Some path ->
      Obs.Profile.stop ();
      Obs.Export.write_profile path;
      Logs.info (fun m ->
          m "wrote folded-stacks profile (%d samples) to %s"
            (Obs.Profile.total_samples ()) path));
  match t.metrics_out with
  | None -> ()
  | Some path ->
      Obs.Export.write_metrics path;
      Logs.info (fun m -> m "wrote metrics snapshot to %s" path)

let with_reporting t root f =
  install t;
  Fun.protect
    ~finally:(fun () -> finish t)
    (fun () -> Obs.Span.with_ ~cat:"cli" root f)
