(** The cmdliner term shared by [reconfigure], [mcc], [appinfo], and
    [bench]: [-v]/[-vv] verbosity for [Logs], [--trace-out FILE] for
    the Chrome trace-event export, [--metrics-out FILE] for the
    metrics dump, [--profile-out FILE] for the sampling profiler's
    folded-stacks table. *)

type t = {
  verbosity : int;
  trace_out : string option;
  metrics_out : string option;
  profile_out : string option;
}

val term : t Cmdliner.Term.t

val install : t -> unit
(** Set up the [Logs] reporter/level and enable span recording when a
    trace file was requested. *)

val finish : t -> unit
(** Write the requested export files (logs where they went at info
    level). *)

val with_reporting : t -> string -> (unit -> 'a) -> 'a
(** [install], run the thunk under a root span named after the tool,
    then [finish] (also on exceptions, so a failing run still leaves a
    loadable trace). *)
