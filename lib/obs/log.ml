let src = Logs.Src.create "obs" ~doc:"observability layer"

let level_of_verbosity = function
  | n when n <= 0 -> Some Logs.Warning
  | 1 -> Some Logs.Info
  | _ -> Some Logs.Debug

let setup ?(verbosity = 0) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (level_of_verbosity verbosity)
