(** Structured spans and instant events over {!Trace}.

    [Span.with_ "solve" ~attrs f] times [f] against the monotonic clock
    and records a Chrome "complete" ('X') event when tracing is
    enabled; when {!Profile} sampling is enabled it also maintains the
    per-domain label stack the sampler reads; with both disabled it is
    [f ()] plus two atomic loads.  Spans
    nest naturally: a child's [ts, ts+dur] interval lies inside its
    parent's because the parent's event is recorded after the child
    returns.  Recording happens on the current domain's buffer, so
    spans opened inside {!Dse.Parallel} workers are safe and carry the
    worker's domain id as [tid]. *)

type handle

val with_ :
  ?cat:string -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk under a named span.  The span is recorded even if the
    thunk raises (the exception is re-raised), keeping traces complete. *)

val with_span :
  ?cat:string ->
  ?attrs:(string * Json.t) list ->
  string ->
  (handle -> 'a) ->
  'a
(** Like {!with_} but hands the span to the thunk so attributes only
    known at the end (cycle counts, node counts) can be attached with
    {!add_attr}. *)

val add_attr : handle -> string -> Json.t -> unit
(** No-op when tracing is disabled. *)

val event : ?cat:string -> ?attrs:(string * Json.t) list -> string -> unit
(** Record an instant event (e.g. a solver incumbent update). *)

val counter : ?cat:string -> string -> (string * float) list -> unit
(** Record a Chrome counter-track sample ([ph = "C"]): each [(series,
    value)] pair becomes one series of the named counter track, so
    e.g. the solver's incumbent objective plots over time in
    Perfetto. *)
