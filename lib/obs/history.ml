(* Bench history: an append-only JSONL log of benchmark runs, keyed by
   git revision + target (experiment name), and a relative-threshold
   regression check against the recent history.

   Thresholds are per metric family: wall-clock is noisy (machine
   load, turbo), so it gets a generous ratio; node/build/hit counts
   are deterministic for a fixed seed, so they get tight ones.  The
   baseline is the median of the last [window] entries for the same
   target, which tolerates one bad historical sample. *)

type entry = {
  rev : string;
  target : string;
  time : float; (* unix epoch seconds; informational only *)
  metrics : (string * float) list;
}

let entry_to_json e =
  Json.Obj
    [
      ("rev", Json.String e.rev);
      ("target", Json.String e.target);
      ("time", Json.Float e.time);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.metrics) );
    ]

let entry_of_json j =
  let str k =
    match Json.member k j with Some (Json.String s) -> Some s | _ -> None
  in
  match (str "rev", str "target", Json.member "metrics" j) with
  | Some rev, Some target, Some (Json.Obj fields) ->
      let time =
        Option.value ~default:0.0
          (Option.bind (Json.member "time" j) Json.to_float)
      in
      let metrics =
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          fields
      in
      Ok { rev; target; time; metrics }
  | _ -> Error "history entry: rev, target and metrics object required"

let append path e =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (entry_to_json e) ^ "\n"))

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        let lineno = ref 0 in
        let error = ref None in
        (try
           while !error = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Json.parse line with
               | Error m ->
                   error := Some (Printf.sprintf "%s:%d: %s" path !lineno m)
               | Ok j -> (
                   match entry_of_json j with
                   | Ok e -> entries := e :: !entries
                   | Error m ->
                       error :=
                         Some (Printf.sprintf "%s:%d: %s" path !lineno m))
           done
         with End_of_file -> ());
        match !error with
        | Some m -> Error m
        | None -> Ok (List.rev !entries))

(* --- regression check --- *)

type rule = {
  metric : string;
  max_ratio : float option; (* regression when current/baseline exceeds *)
  min_ratio : float option; (* regression when current/baseline falls below *)
}

let default_rules =
  [
    { metric = "wall_clock_s"; max_ratio = Some 1.50; min_ratio = None };
    { metric = "solver_nodes"; max_ratio = Some 1.05; min_ratio = None };
    { metric = "sim_cycles"; max_ratio = Some 1.05; min_ratio = None };
    { metric = "builds"; max_ratio = Some 1.05; min_ratio = None };
    { metric = "bounds_pruned"; max_ratio = None; min_ratio = Some 0.95 };
    { metric = "engine_hits"; max_ratio = None; min_ratio = Some 0.95 };
    (* simulator throughput: identical work (sim_cycles is pinned
       above) must not get much slower to execute *)
    { metric = "sim_cycles_per_second"; max_ratio = None; min_ratio = Some 0.67 };
    (* solver throughput: same floor as the simulator — solver_nodes
       is pinned above, so nodes/s drift means the B&B loop slowed *)
    { metric = "binlp_nodes_per_second"; max_ratio = None; min_ratio = Some 0.67 };
    (* phase-schedule pipeline: detection and the schedule solve are
       deterministic for a fixed seed, so drift in either direction is
       a behavior change; the verified gain must not erode *)
    { metric = "phases_detected"; max_ratio = Some 1.05; min_ratio = Some 0.95 };
    { metric = "schedule_solver_nodes"; max_ratio = Some 1.05; min_ratio = None };
    { metric = "schedule_gain_pct"; max_ratio = None; min_ratio = Some 0.90 };
  ]

type regression = {
  metric : string;
  baseline : float;
  current : float;
  ratio : float;
  limit : float;
  above : bool; (* true: exceeded max_ratio; false: fell below min_ratio *)
}

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "History.median: empty"
  | sorted ->
      let n = List.length sorted in
      let nth k = List.nth sorted k in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let baseline_for ?(window = 5) history target metric =
  let values =
    List.filter_map
      (fun e ->
        if e.target = target then List.assoc_opt metric e.metrics else None)
      history
  in
  match last_n window values with [] -> None | vs -> Some (median vs)

let check ?(window = 5) ?(rules = default_rules) ~history entry =
  List.filter_map
    (fun (r : rule) ->
      match
        ( baseline_for ~window history entry.target r.metric,
          List.assoc_opt r.metric entry.metrics )
      with
      | Some baseline, Some current when baseline > 0.0 ->
          let ratio = current /. baseline in
          let above_max =
            match r.max_ratio with
            | Some m when ratio > m -> Some (m, true)
            | _ -> None
          in
          let below_min =
            match r.min_ratio with
            | Some m when ratio < m -> Some (m, false)
            | _ -> None
          in
          Option.map
            (fun (limit, above) ->
              { metric = r.metric; baseline; current; ratio; limit; above })
            (match above_max with Some _ -> above_max | None -> below_min)
      | _ -> None)
    rules

let pp_regression ppf r =
  Format.fprintf ppf "%s: %g -> %g (%.2fx, %s %.2fx)" r.metric r.baseline
    r.current r.ratio
    (if r.above then "limit" else "floor")
    r.limit
