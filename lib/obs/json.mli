(** Minimal JSON values: enough to serialize traces and metrics with a
    {e stable} field order (assoc-list order is emission order) and to
    re-parse exported files in tests.  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering; object fields appear in assoc-list order.
    Non-finite floats are rendered as [null] (JSON has no inf/nan). *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Strict-enough recursive-descent parser for round-tripping our own
    exports (and any well-formed JSON document). *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up field [k]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] or integral [Float]. *)

val to_float : t -> float option
