module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

type direction = Forward | Backward

module Make (D : DOMAIN) = struct
  type result = { input : D.t array; output : D.t array }

  let solve ?(widen_after = 8) ?edge ~direction ~init ~bottom ~transfer
      (g : Cfg.t) =
    let n = Array.length g.Cfg.blocks in
    let preds = Cfg.predecessors g in
    let rpo = Cfg.reverse_postorder g in
    (* Priority of each block in the chosen iteration order. *)
    let order =
      match direction with
      | Forward -> rpo
      | Backward ->
          let r = Array.copy rpo in
          let n = Array.length r in
          Array.init n (fun i -> r.(n - 1 - i))
    in
    let priority = Array.make n 0 in
    Array.iteri (fun i id -> priority.(id) <- i) order;
    (* Edges along which facts propagate out of a block. *)
    let out_edges id =
      match direction with
      | Forward -> Cfg.successors g.Cfg.blocks.(id)
      | Backward -> preds.(id)
    in
    let input = Array.make n bottom in
    let output = Array.make n bottom in
    let refinements = Array.make n 0 in
    (match direction with
    | Forward -> input.(g.Cfg.entry) <- init
    | Backward ->
        Array.iter
          (fun blk ->
            match blk.Cfg.term with
            | Cfg.Return _ | Cfg.Exit -> input.(blk.Cfg.id) <- init
            | Cfg.Jump _ | Cfg.Branch _ -> ())
          g.Cfg.blocks);
    (* Worklist keyed by priority; a simple boolean membership set plus
       repeated sweeps in priority order is O(n) per round and fast at
       these sizes. *)
    let pending = Array.make n true in
    let any_pending = ref true in
    while !any_pending do
      any_pending := false;
      Array.iter
        (fun id ->
          if pending.(id) then begin
            pending.(id) <- false;
            let blk = g.Cfg.blocks.(id) in
            let out = transfer blk input.(id) in
            output.(id) <- out;
            List.iter
              (fun dst ->
                let v =
                  match (direction, edge) with
                  | Forward, Some f -> f blk dst out
                  | _ -> out
                in
                let joined = D.join input.(dst) v in
                (* Widen only along retreating edges (loop heads): every
                   cycle contains one, which bounds the iteration, while
                   blocks fed purely by advancing edges keep the precise
                   facts branch refinement gave them. *)
                let joined =
                  if
                    priority.(dst) <= priority.(id)
                    && refinements.(dst) >= widen_after
                  then D.widen input.(dst) joined
                  else joined
                in
                if not (D.equal joined input.(dst)) then begin
                  input.(dst) <- joined;
                  refinements.(dst) <- refinements.(dst) + 1;
                  if not pending.(dst) then begin
                    pending.(dst) <- true;
                    any_pending := true
                  end
                end)
              (out_edges id)
          end)
        order
    done;
    (* Ensure outputs reflect the final inputs even for blocks whose
       input settled after their last transfer. *)
    Array.iter
      (fun id -> output.(id) <- transfer g.Cfg.blocks.(id) input.(id))
      order;
    { input; output }
end
