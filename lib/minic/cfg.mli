(** Per-function control-flow graph over basic blocks of {!Ast.stmt}.

    minic is structured (no goto), so the graph is derived by lowering
    the statement tree: straight-line statements become block
    instructions, [if]/[while]/[return] become block terminators.
    Statements that follow a [return] in the same block list are
    lowered into a fresh block with no predecessors, so plain
    reachability finds them.

    Every straight-line statement and every terminator carries the
    {e source index} ([sid]) of the statement it was lowered from: the
    position of that statement in a pre-order traversal of the
    function body ([If] visits the condition's statement itself, then
    the then-branch, then the else-branch; [While] visits the
    statement, then the body).  A rewrite pass that walks the AST in
    the same pre-order can therefore map analysis results back onto
    the tree without relying on physical or structural equality — see
    {!Optimize}. *)

type instr =
  | Assign of string * Ast.expr  (** [x = e] — [e] may be a call *)
  | Store of string * Ast.expr * Ast.expr  (** [a[e1] = e2] *)
  | Eval of Ast.expr  (** [e;] — an effect call *)

type terminator =
  | Jump of int  (** unconditional edge to a block id *)
  | Branch of Ast.expr * int * int  (** condition, then-block, else-block *)
  | Return of Ast.expr
  | Exit  (** fall off the end of the function: implicit [return 0] *)

type block = {
  id : int;
  instrs : (int * instr) array;  (** (sid, instruction), in order *)
  term : terminator;
  term_sid : int;  (** sid of the branching/returning statement, -1 for none *)
}

type t = {
  func : Ast.func;
  blocks : block array;  (** indexed by block id *)
  entry : int;
  nsids : int;  (** number of statements in the function body *)
}

val build : Ast.func -> t

val successors : block -> int list
val predecessors : t -> int list array
(** Predecessor block ids, indexed by block id. *)

val reverse_postorder : t -> int array
(** Reachable blocks in reverse postorder from the entry.  Unreachable
    blocks are appended after the reachable ones (in id order) so a
    dataflow pass still visits every block. *)

val reachable : t -> bool array
(** Graph reachability from the entry, ignoring branch conditions. *)

val stmt_of_sid : t -> int -> Ast.stmt option
(** The source statement a sid was assigned to. *)

val instr_uses : globals:string list -> instr -> string list
(** Scalar variables read by an instruction.  A call conservatively
    reads every global scalar, so [globals] lists their names. *)

val expr_uses : globals:string list -> Ast.expr -> string list
val instr_defs : instr -> string list

val expr_has_call : Ast.expr -> bool
(** Whether the expression contains a call (and may therefore have
    side effects on global state). *)

val pp : Format.formatter -> t -> unit
