let mask32 = 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let of_signed v = v land mask32
let bool01 b = if b then 1 else 0

let binop op a b =
  let a = a land mask32 and b = b land mask32 in
  match op with
  | Ast.Add -> Some ((a + b) land mask32)
  | Ast.Sub -> Some ((a - b) land mask32)
  | Ast.Mul -> Some (a * b land mask32)
  | Ast.Div ->
      if b = 0 then None else Some (to_signed a / to_signed b land mask32)
  | Ast.Mod ->
      if b = 0 then None
      else
        let q = to_signed a / to_signed b in
        Some ((to_signed a - (q * to_signed b)) land mask32)
  | Ast.And -> Some (a land b)
  | Ast.Or -> Some (a lor b)
  | Ast.Xor -> Some (a lxor b)
  | Ast.Shl -> Some ((a lsl (b land 31)) land mask32)
  | Ast.Shr -> Some (a lsr (b land 31))
  | Ast.Lt -> Some (bool01 (to_signed a < to_signed b))
  | Ast.Le -> Some (bool01 (to_signed a <= to_signed b))
  | Ast.Gt -> Some (bool01 (to_signed a > to_signed b))
  | Ast.Ge -> Some (bool01 (to_signed a >= to_signed b))
  | Ast.Eq -> Some (bool01 (a = b))
  | Ast.Ne -> Some (bool01 (a <> b))

let unop op a =
  let a = a land mask32 in
  match op with
  | Ast.Neg -> (0 - a) land mask32
  | Ast.Not -> bool01 (a = 0)
  | Ast.Bitnot -> a lxor mask32

let invert_cmp = function
  | Ast.Lt -> Some Ast.Ge
  | Ast.Ge -> Some Ast.Lt
  | Ast.Le -> Some Ast.Gt
  | Ast.Gt -> Some Ast.Le
  | Ast.Eq -> Some Ast.Ne
  | Ast.Ne -> Some Ast.Eq
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      None

let swap_cmp = function
  | Ast.Lt -> Some Ast.Gt
  | Ast.Gt -> Some Ast.Lt
  | Ast.Le -> Some Ast.Ge
  | Ast.Ge -> Some Ast.Le
  | Ast.Eq -> Some Ast.Eq
  | Ast.Ne -> Some Ast.Ne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      None

let is_cmp = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      false
