(** Code generator: minic to the {!Isa} instruction set.

    Calling convention (SPARC-style):
    - each function body runs under [save %sp, -96, %sp], so register
      windows hold parameters (%i0-%i5) and locals (%l0-%l7);
    - up to 6 arguments are passed in %o0-%o5; the return value comes
      back in the caller's %o0;
    - expression evaluation uses a register stack %o0-%o5, %g1-%g4,
      with %g5/%g6 as address/modulo scratch — all caller-saved.

    Programs must pass {!Check.check}; [compile] enforces this. *)

exception Error of string

val compile : ?optimize:bool -> ?level:int -> Ast.program -> Isa.Program.t
(** [optimize] (default false) runs {!Optimize.program} at level 1
    first; [level], when given, selects the optimization level
    explicitly (see {!Optimize.program}) and overrides [optimize].
    @raise Error on programs the generator cannot handle (these are
    exactly the {!Check} violations). *)
