(** The single source of truth for minic's 32-bit scalar semantics.

    Values are stored as their unsigned 32-bit representation
    (0..0xFFFFFFFF); comparisons, division, modulo and array indexing
    interpret them as signed two's-complement.  {!Interp},
    {!Optimize} and {!Interval} all evaluate operators through this
    module, so constant folding and abstract interpretation cannot
    drift from the reference interpreter. *)

val mask32 : int
val to_signed : int -> int
(** Signed value of an unsigned 32-bit representation. *)

val of_signed : int -> int

val binop : Ast.binop -> int -> int -> int option
(** [binop op a b] over unsigned representations; [None] exactly when
    the operation traps at runtime (division or modulo by zero). *)

val unop : Ast.unop -> int -> int

val invert_cmp : Ast.binop -> Ast.binop option
(** The comparison computing the logical negation, if [op] is a
    comparison. *)

val swap_cmp : Ast.binop -> Ast.binop option
(** The comparison with operands exchanged: [a op b = b (swap op) a]. *)

val is_cmp : Ast.binop -> bool
