(** Conditional interval analysis (a constant-propagation superset).

    Abstract values are inclusive ranges [{lo; hi}] of the {e signed}
    interpretation of minic's 32-bit scalars; operations that may wrap
    saturate to {!top}.  The per-point state maps scalar variables to
    intervals; a missing binding means {!top}, and an entire program
    point may be {!constructor-Unreachable} when branch refinement
    proves no execution reaches it.

    All operator evaluation goes through {!Sem}, so a singleton result
    here is exactly the value {!Interp} computes.  {!Lint} uses the
    per-sid {!points} to flag definite traps and dead branches;
    {!Optimize} level 2 uses them for conditional constant
    propagation. *)

type itv = { lo : int; hi : int }
(** Invariant: [min32 <= lo <= hi <= max32]. *)

val min32 : int
val max32 : int
val top : itv
val const : int -> itv
(** Singleton of a value given in unsigned 32-bit representation. *)

val to_const : itv -> int option
(** The unsigned 32-bit representation of a singleton interval. *)

val mem : int -> itv -> bool
(** [mem k i]: is signed value [k] inside [i]? *)

val pp_itv : Format.formatter -> itv -> unit

module Smap : Map.S with type key = string

type env = Unreachable | Env of itv Smap.t
(** [Env m]: a reachable state; variables missing from [m] are
    unconstrained ([top]).  Normalized: [m] never binds [top]. *)

type ctx = {
  arrays : (Ast.elem * int) Smap.t;  (** element kind and length *)
  globals : string list;  (** global {e scalar} names *)
}

val ctx_of_program : Ast.program -> ctx

val eval : ctx -> itv Smap.t -> Ast.expr -> itv
(** Abstract evaluation; calls evaluate to {!top}. *)

val cannot_trap : ctx -> itv Smap.t -> Ast.expr -> bool
(** [true] only when evaluating the expression provably never traps:
    every divisor excludes 0, every index is within bounds, and there
    is no call (a callee may itself trap). *)

type result = { env_in : env array; env_out : env array }
(** Per-block states, indexed by block id. *)

val solve : ctx -> Cfg.t -> result
(** Forward fixpoint with branch refinement: along the two edges of a
    [Branch] the condition is asserted true resp. false, narrowing
    variable ranges and killing infeasible edges.  Widening jumps
    unstable bounds to [min32]/[max32], so loops converge. *)

val points : ctx -> Cfg.t -> (int, itv Smap.t) Hashtbl.t
(** The variable state just before each statement, keyed by sid
    (instruction sids and branch/return [term_sid]s).  A sid that is
    absent is unreachable — either structurally or because the
    analysis proved its block's entry state infeasible. *)
