type instr =
  | Assign of string * Ast.expr
  | Store of string * Ast.expr * Ast.expr
  | Eval of Ast.expr

type terminator =
  | Jump of int
  | Branch of Ast.expr * int * int
  | Return of Ast.expr
  | Exit

type block = {
  id : int;
  instrs : (int * instr) array;
  term : terminator;
  term_sid : int;
}

type t = {
  func : Ast.func;
  blocks : block array;
  entry : int;
  nsids : int;
}

(* Mutable builder blocks; frozen into [block] at the end. *)
type bblock = {
  bid : int;
  mutable binstrs : (int * instr) list;  (* reversed *)
  mutable bterm : (terminator * int) option;
}

type builder = {
  mutable blks : bblock list;  (* reversed *)
  mutable nblocks : int;
  mutable sid : int;
}

let new_block b =
  let blk = { bid = b.nblocks; binstrs = []; bterm = None } in
  b.nblocks <- b.nblocks + 1;
  b.blks <- blk :: b.blks;
  blk

let next_sid b =
  let s = b.sid in
  b.sid <- s + 1;
  s

let terminate blk term sid =
  match blk.bterm with
  | Some _ -> invalid_arg "Cfg: block already terminated"
  | None -> blk.bterm <- Some (term, sid)

(* Lower [stmts] into [cur]; return the block where control continues,
   or [None] if every path ended in a return. *)
let rec lower b cur stmts =
  match stmts with
  | [] -> Some cur
  | s :: rest -> (
      let sid = next_sid b in
      match s with
      | Ast.Set (x, e) ->
          cur.binstrs <- (sid, Assign (x, e)) :: cur.binstrs;
          lower b cur rest
      | Ast.Set_idx (a, e1, e2) ->
          cur.binstrs <- (sid, Store (a, e1, e2)) :: cur.binstrs;
          lower b cur rest
      | Ast.Do e ->
          cur.binstrs <- (sid, Eval e) :: cur.binstrs;
          lower b cur rest
      | Ast.Ret e ->
          terminate cur (Return e) sid;
          if rest = [] then None
          else
            (* Dead statements after a return: lower them into a fresh
               block with no predecessors so reachability flags them. *)
            lower b (new_block b) rest
      | Ast.If (c, th, el) ->
          let bt = new_block b in
          let be = new_block b in
          terminate cur (Branch (c, bt.bid, be.bid)) sid;
          let t_end = lower b bt th in
          let e_end = lower b be el in
          (match (t_end, e_end) with
          | None, None -> if rest = [] then None else lower b (new_block b) rest
          | Some blk, None | None, Some blk ->
              let join = new_block b in
              terminate blk (Jump join.bid) (-1);
              lower b join rest
          | Some blk1, Some blk2 ->
              let join = new_block b in
              terminate blk1 (Jump join.bid) (-1);
              terminate blk2 (Jump join.bid) (-1);
              lower b join rest)
      | Ast.While (c, body) ->
          let header = new_block b in
          terminate cur (Jump header.bid) (-1);
          let bbody = new_block b in
          let after = new_block b in
          terminate header (Branch (c, bbody.bid, after.bid)) sid;
          (match lower b bbody body with
          | None -> ()
          | Some blk -> terminate blk (Jump header.bid) (-1));
          lower b after rest)

let build (f : Ast.func) =
  let b = { blks = []; nblocks = 0; sid = 0 } in
  let entry = new_block b in
  (match lower b entry f.Ast.body with
  | None -> ()
  | Some blk -> terminate blk Exit (-1));
  let blocks =
    Array.map
      (fun blk ->
        let term, term_sid =
          match blk.bterm with
          | Some (t, s) -> (t, s)
          | None -> (Exit, -1) (* an unterminated dead block *)
        in
        {
          id = blk.bid;
          instrs = Array.of_list (List.rev blk.binstrs);
          term;
          term_sid;
        })
      (Array.of_list (List.rev b.blks))
  in
  { func = f; blocks; entry = entry.bid; nsids = b.sid }

let successors blk =
  match blk.term with
  | Jump j -> [ j ]
  | Branch (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Return _ | Exit -> []

let predecessors g =
  let preds = Array.make (Array.length g.blocks) [] in
  Array.iter
    (fun blk ->
      List.iter (fun s -> preds.(s) <- blk.id :: preds.(s)) (successors blk))
    g.blocks;
  Array.map List.rev preds

let reachable g =
  let seen = Array.make (Array.length g.blocks) false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter go (successors g.blocks.(id))
    end
  in
  go g.entry;
  seen

let reverse_postorder g =
  let n = Array.length g.blocks in
  let seen = Array.make n false in
  let acc = ref [] in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter go (successors g.blocks.(id));
      acc := id :: !acc
    end
  in
  go g.entry;
  let rpo = !acc in
  let unreachable =
    List.filter (fun id -> not seen.(id)) (List.init n (fun i -> i))
  in
  Array.of_list (rpo @ unreachable)

let stmt_of_sid g sid =
  (* Recover the statement by replaying the same pre-order walk the
     builder used. *)
  let counter = ref 0 in
  let found = ref None in
  let rec walk stmts =
    match stmts with
    | [] -> ()
    | s :: rest ->
        if !found = None then begin
          let here = !counter in
          incr counter;
          if here = sid then found := Some s
          else begin
            (match s with
            | Ast.If (_, th, el) ->
                walk th;
                walk el
            | Ast.While (_, body) -> walk body
            | Ast.Set _ | Ast.Set_idx _ | Ast.Do _ | Ast.Ret _ -> ());
            walk rest
          end
        end
  in
  walk g.func.Ast.body;
  !found

let expr_uses ~globals e =
  let rec go acc = function
    | Ast.Int _ -> acc
    | Ast.Var x -> x :: acc
    | Ast.Idx (_, e) -> go acc e
    | Ast.Un (_, e) -> go acc e
    | Ast.Bin (_, a, b) -> go (go acc a) b
    | Ast.Call (_, args) ->
        (* A callee may read any global scalar. *)
        List.fold_left go (List.rev_append globals acc) args
  in
  go [] e

let rec expr_has_call = function
  | Ast.Call _ -> true
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Idx (_, e) | Ast.Un (_, e) -> expr_has_call e
  | Ast.Bin (_, a, b) -> expr_has_call a || expr_has_call b

let instr_uses ~globals = function
  | Assign (_, e) | Eval e -> expr_uses ~globals e
  | Store (_, e1, e2) -> expr_uses ~globals e1 @ expr_uses ~globals e2

let instr_defs = function
  | Assign (x, _) -> [ x ]
  | Store _ | Eval _ -> []

let pp ppf g =
  Array.iter
    (fun blk ->
      Format.fprintf ppf "@[<v 2>B%d:%s@," blk.id
        (if blk.id = g.entry then " (entry)" else "");
      Array.iter
        (fun (sid, i) ->
          match i with
          | Assign (x, e) ->
              Format.fprintf ppf "[%d] %s = %a@," sid x Ast.pp_expr e
          | Store (a, e1, e2) ->
              Format.fprintf ppf "[%d] %s[%a] = %a@," sid a Ast.pp_expr e1
                Ast.pp_expr e2
          | Eval e -> Format.fprintf ppf "[%d] %a;@," sid Ast.pp_expr e)
        blk.instrs;
      (match blk.term with
      | Jump j -> Format.fprintf ppf "jump B%d" j
      | Branch (c, t, e) ->
          Format.fprintf ppf "[%d] branch %a ? B%d : B%d" blk.term_sid
            Ast.pp_expr c t e
      | Return e -> Format.fprintf ppf "[%d] return %a" blk.term_sid Ast.pp_expr e
      | Exit -> Format.fprintf ppf "exit");
      Format.fprintf ppf "@]@.")
    g.blocks
