module Set = Stdlib.Set.Make (String)

module D = Dataflow.Make (struct
  type t = Set.t

  let equal = Set.equal
  let join = Set.union
  let widen _old next = next (* finite height: plain iteration terminates *)
end)

type result = { live_in : Set.t array; live_out : Set.t array }

let term_uses ~globals blk =
  match blk.Cfg.term with
  | Cfg.Branch (c, _, _) -> Cfg.expr_uses ~globals c
  | Cfg.Return e -> Cfg.expr_uses ~globals e
  | Cfg.Jump _ | Cfg.Exit -> []

(* live-in = uses(term) U fold over instrs in reverse of
   (live \ defs) U uses. *)
let transfer ~globals blk live_out =
  let live =
    List.fold_left (fun s x -> Set.add x s) live_out (term_uses ~globals blk)
  in
  let n = Array.length blk.Cfg.instrs in
  let live = ref live in
  for k = n - 1 downto 0 do
    let _, i = blk.Cfg.instrs.(k) in
    let after_defs =
      List.fold_left (fun s x -> Set.remove x s) !live (Cfg.instr_defs i)
    in
    live :=
      List.fold_left (fun s x -> Set.add x s) after_defs
        (Cfg.instr_uses ~globals i)
  done;
  !live

let solve ~globals g =
  let init = Set.of_list globals in
  let r =
    D.solve ~direction:Dataflow.Backward ~init ~bottom:Set.empty
      ~transfer:(transfer ~globals) g
  in
  { live_in = r.D.output; live_out = r.D.input }

let fold_instrs_rev ~globals blk ~live_out ~f acc =
  let live =
    List.fold_left (fun s x -> Set.add x s) live_out (term_uses ~globals blk)
  in
  let n = Array.length blk.Cfg.instrs in
  let acc = ref acc in
  let live = ref live in
  for k = n - 1 downto 0 do
    let ((_, i) as cell) = blk.Cfg.instrs.(k) in
    acc := f !acc cell ~live_after:!live;
    let after_defs =
      List.fold_left (fun s x -> Set.remove x s) !live (Cfg.instr_defs i)
    in
    live :=
      List.fold_left (fun s x -> Set.add x s) after_defs
        (Cfg.instr_uses ~globals i)
  done;
  !acc
