(** Static diagnostics over a checked program, built on {!Cfg},
    {!Reaching}, {!Liveness} and {!Interval}.

    The linter only reports what the analyses prove, so a clean
    program stays clean: {e errors} are statements that trap on every
    execution reaching them (constant out-of-bounds index, guaranteed
    division by zero); {e warnings} are almost certainly bugs
    (possible use of an uninitialized local, a compile-time-constant
    branch condition, unreachable code); {e notes} are style-level
    observations (a stored value that is never read) and are never
    fatal, even under [--Werror]. *)

type severity = Error | Warning | Note

type finding = {
  severity : severity;
  func : string;  (** enclosing function *)
  sid : int;  (** statement index in pre-order, as in {!Cfg} *)
  message : string;
}

val program : Ast.program -> finding list
(** All findings, ordered by function (program order) then sid.  The
    program must have passed {!Check.check}. *)

val severity_name : severity -> string

val pp_finding : Format.formatter -> finding -> unit
(** One line: [<severity>: <func>:<sid>: <message>]. *)

val fails : werror:bool -> finding list -> bool
(** Whether the finding set should fail the build: any [Error], or —
    under [~werror:true] — any [Warning].  Notes never fail. *)
