(** Source-to-source optimizer.

    Local, semantics-preserving rewrites applied bottom-up:

    - constant folding of operators over literals (division or modulo
      by a literal zero is left in place to preserve the runtime
      error);
    - algebraic identities: [x+0], [x-0], [x*1], [x|0], [x^0], [x&-1],
      [x<<0], [x>>0] drop the operation; [x*0] and [x&0] become [0]
      (expressions are pure in minic, so discarding [x] is safe);
    - strength reduction: multiplication by a power of two becomes a
      shift (division is {e not} reduced: an arithmetic shift disagrees
      with truncating signed division on negative operands);
    - [!(a cmp b)] becomes the inverted comparison; [!!x] becomes
      [x != 0]-normalization only when already boolean-valued — we keep
      it simple and only invert comparisons;
    - [if] with a literal condition selects its branch; [while] with
      literal zero disappears.

    Literals are normalized to their 32-bit unsigned representation.
    The input is assumed to satisfy {!Check.check} (in particular,
    calls appear only in statement position, so discarding a pure
    subexpression never discards an effect).  The rewrite preserves the
    reference-interpreter semantics exactly; the test suite checks this
    on random structured programs. *)

val expr : Ast.expr -> Ast.expr
val stmt : Ast.stmt -> Ast.stmt list
(** A statement can optimize to several (or zero) statements. *)

val program : ?level:int -> Ast.program -> Ast.program
(** [level] selects how much work to do:

    - [0] — identity;
    - [1] (default) — the local rewrites above;
    - [2] — additionally, per-function conditional constant
      propagation and dead-store elimination driven by the {!Interval}
      and {!Liveness} dataflow analyses: provably-constant trap-free
      subexpressions become literals, stores to provably-dead
      variables and unreachable statements disappear, and branches
      with provably-constant conditions are resolved.  Iterated with
      the local rewrites to a fixpoint (at most three rounds).

    Every level preserves the {!Interp}-observable semantics exactly,
    including runtime traps; the test suite checks this on random
    structured programs. *)
