(* Static instruction-mix bounds: a structural mirror of Codegen's
   emission, weighted by loop trip-count intervals.

   The statement walk reproduces exactly what Codegen emits for each
   construct (including set32 materialization lengths, which depend on
   the replayed data-segment layout) and tracks, per cost class, an
   interval of dynamic execution counts.  Control flow joins by hull;
   a may-return tristate keeps lower bounds sound in the presence of
   early returns; loops scale their body by a trip-count interval
   derived from the interval analysis plus induction-pattern
   recognition on the loop condition. *)

(* ------------------------------------------------------------------ *)
(* Saturating count intervals.                                        *)

type cnt = { lo : int; hi : int }

let unbounded = max_int
let cnt_const n = { lo = n; hi = n }
let c0 = cnt_const 0

let sat_add a b = if a = unbounded || b = unbounded then unbounded else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a = unbounded || b = unbounded then unbounded
  else if a > unbounded / b then unbounded
  else a * b

let cadd a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let chull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* The count when the counted code may be skipped entirely. *)
let cmaybe c = { lo = 0; hi = c.hi }

(* Scale a per-iteration count by a trip-count interval. *)
let cscale ~trips c = { lo = sat_mul trips.lo c.lo; hi = sat_mul trips.hi c.hi }

let pp_cnt ppf c =
  if c.hi = unbounded then Format.fprintf ppf "[%d,inf]" c.lo
  else if c.lo = c.hi then Format.fprintf ppf "%d" c.lo
  else Format.fprintf ppf "[%d,%d]" c.lo c.hi

(* ------------------------------------------------------------------ *)
(* Instruction mixes.                                                 *)

type mix = {
  alu : cnt;
  shift : cnt;
  mul : cnt;
  div : cnt;
  load : cnt;
  store : cnt;
  cbr_cmp : cnt;
  cbr_mat : cnt;
  taken : cnt;
  ba : cnt;
  call : cnt;
  jmpl : cnt;
  save : cnt;
  restore : cnt;
  halt : cnt;
}

let mix_map2 f a b =
  {
    alu = f a.alu b.alu;
    shift = f a.shift b.shift;
    mul = f a.mul b.mul;
    div = f a.div b.div;
    load = f a.load b.load;
    store = f a.store b.store;
    cbr_cmp = f a.cbr_cmp b.cbr_cmp;
    cbr_mat = f a.cbr_mat b.cbr_mat;
    taken = f a.taken b.taken;
    ba = f a.ba b.ba;
    call = f a.call b.call;
    jmpl = f a.jmpl b.jmpl;
    save = f a.save b.save;
    restore = f a.restore b.restore;
    halt = f a.halt b.halt;
  }

let mix_map f m = mix_map2 (fun c _ -> f c) m m
let mix_zero = mix_map (fun _ -> c0) { alu = c0; shift = c0; mul = c0; div = c0; load = c0; store = c0; cbr_cmp = c0; cbr_mat = c0; taken = c0; ba = c0; call = c0; jmpl = c0; save = c0; restore = c0; halt = c0 }
let mix_add = mix_map2 cadd
let mix_hull = mix_map2 chull
let mix_maybe = mix_map cmaybe
let mix_scale ~trips = mix_map (cscale ~trips)
let mix_top = mix_map (fun _ -> { lo = 0; hi = unbounded }) mix_zero

let insns m =
  List.fold_left cadd c0
    [
      m.alu; m.shift; m.mul; m.div; m.load; m.store; m.cbr_cmp; m.cbr_mat;
      m.ba; m.call; m.jmpl; m.save; m.restore; m.halt;
    ]

let pp_mix ppf m =
  let field name c =
    if c <> c0 then Format.fprintf ppf "%s=%a@ " name pp_cnt c
  in
  Format.fprintf ppf "@[<hov>";
  field "alu" m.alu;
  field "shift" m.shift;
  field "mul" m.mul;
  field "div" m.div;
  field "load" m.load;
  field "store" m.store;
  field "cbr_cmp" m.cbr_cmp;
  field "cbr_mat" m.cbr_mat;
  field "taken" m.taken;
  field "ba" m.ba;
  field "call" m.call;
  field "jmpl" m.jmpl;
  field "save" m.save;
  field "restore" m.restore;
  field "halt" m.halt;
  Format.fprintf ppf "insns=%a@]" pp_cnt (insns m)

(* Small builders. *)
let malu n = { mix_zero with alu = cnt_const n }
let mshift = { mix_zero with shift = cnt_const 1 }
let mmul = { mix_zero with mul = cnt_const 1 }
let mdiv = { mix_zero with div = cnt_const 1 }
let mload = { mix_zero with load = cnt_const 1 }
let mstore = { mix_zero with store = cnt_const 1 }

(* Or-set-1; bcc; Or-set-0 (skipped when the branch is taken): the
   exact Codegen.materialize_cc sequence, hulled over taken-ness. *)
let m_materialize =
  {
    mix_zero with
    alu = { lo = 1; hi = 2 };
    cbr_mat = cnt_const 1;
    taken = { lo = 0; hi = 1 };
  }

(* ------------------------------------------------------------------ *)
(* May-return tristate and sequencing.                                *)

type ret = Never | Maybe | Always
type summary = { smix : mix; ret : ret }

let s_zero = { smix = mix_zero; ret = Never }
let s_of_mix m = { smix = m; ret = Never }

(* [s] then [rest]: [rest] runs only on the fall-through paths. *)
let s_seq s rest =
  match s.ret with
  | Always -> s
  | Never -> { smix = mix_add s.smix rest.smix; ret = rest.ret }
  | Maybe ->
      let ret =
        match rest.ret with Always -> Always | Never | Maybe -> Maybe
      in
      { smix = mix_add s.smix (mix_maybe rest.smix); ret }

let s_hull a b =
  { smix = mix_hull a.smix b.smix;
    ret = (if a.ret = b.ret then a.ret else Maybe) }

(* ------------------------------------------------------------------ *)
(* Codegen mirroring.                                                 *)

let fits_simm13 v = v >= -4096 && v <= 4095

(* Number of instructions Asm.set32 emits for [v]. *)
let set32_len v =
  if fits_simm13 v then 1
  else if v land 0xFFFFFFFF land 0x7FF <> 0 then 2
  else 1

type genv = {
  ictx : Interval.ctx;
  addr_len : (string, int) Hashtbl.t;  (* set32 length of a global's address *)
  elems : (string, Ast.elem) Hashtbl.t;  (* array element kinds *)
  funcs : (string, Ast.func) Hashtbl.t;
  mixes : (string, mix) Hashtbl.t;  (* memoized per-invocation mixes *)
  depths : (string, int option) Hashtbl.t;
  mutable in_progress : string list;
}

(* Replay Codegen.compile's data-segment layout so that global-address
   set32 lengths are exact. *)
let layout_globals g (p : Ast.program) =
  let pos = ref 0 in
  List.iter
    (fun gl ->
      pos := (!pos + 3) land lnot 3;
      let addr = Isa.Program.data_base + !pos in
      let name = Ast.global_name gl in
      let size =
        match gl with
        | Ast.Scalar _ -> 4
        | Ast.Array (_, Ast.Word, len) -> 4 * len
        | Ast.Array (_, Ast.Byte, len) -> len
        | Ast.Array_init (_, Ast.Word, vs) -> 4 * Array.length vs
        | Ast.Array_init (_, Ast.Byte, vs) -> Array.length vs
      in
      (match gl with
      | Ast.Scalar _ -> ()
      | Ast.Array (_, e, _) | Ast.Array_init (_, e, _) ->
          Hashtbl.replace g.elems name e);
      Hashtbl.replace g.addr_len name (set32_len addr);
      pos := !pos + size)
    p.Ast.globals

let addr_len g name =
  match Hashtbl.find_opt g.addr_len name with Some n -> n | None -> 2

let is_word_array g name =
  match Hashtbl.find_opt g.elems name with
  | Some Ast.Word -> true
  | Some Ast.Byte | None -> false

let is_cmp_op = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      false

(* Mirror of Codegen.eval.  [regs] lists the current function's
   parameters and locals (register-resident scalars); anything else is
   a global.  Register-to-register moves are always emitted: source
   and destination registers live in disjoint namespaces. *)
let rec eval_mix g regs e =
  match e with
  | Ast.Int n -> malu (set32_len n)
  | Ast.Var x ->
      if List.mem x regs then malu 1
      else mix_add (malu (addr_len g x)) mload
  | Ast.Idx (a, e1) ->
      let m = eval_mix g regs e1 in
      let m = if is_word_array g a then mix_add m mshift else m in
      mix_add m (mix_add (malu (addr_len g a)) mload)
  | Ast.Un (op, e1) -> (
      let m = eval_mix g regs e1 in
      match op with
      | Ast.Neg | Ast.Bitnot -> mix_add m (malu 1)
      | Ast.Not -> mix_add m (mix_add (malu 1) m_materialize))
  | Ast.Bin (op, a, b) ->
      let m = eval_mix g regs a in
      let m =
        match b with
        | Ast.Int n when fits_simm13 n -> m
        | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _
        | Ast.Call _ ->
            mix_add m (eval_mix g regs b)
      in
      mix_add m
        (match op with
        | Ast.Add | Ast.Sub | Ast.And | Ast.Or | Ast.Xor -> malu 1
        | Ast.Shl | Ast.Shr -> mshift
        | Ast.Mul -> mmul
        | Ast.Div -> mdiv
        | Ast.Mod -> mix_add mdiv (mix_add mmul (malu 1))
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
            mix_add (malu 1) m_materialize)
  | Ast.Call _ ->
      (* Check rejects calls in expression position. *)
      mix_top

(* Mirror of Codegen.gen_branch_false: the branch-check cost only (the
   taken-ness of the final bcc is accounted by the caller). *)
let branch_false_mix g regs cond =
  match cond with
  | Ast.Bin (op, a, b) when is_cmp_op op ->
      let m = eval_mix g regs a in
      let m =
        match b with
        | Ast.Int n when fits_simm13 n -> m
        | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _
        | Ast.Call _ ->
            mix_add m (eval_mix g regs b)
      in
      mix_add m { mix_zero with alu = cnt_const 1; cbr_cmp = cnt_const 1 }
  | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ ->
      mix_add (eval_mix g regs cond)
        { mix_zero with alu = cnt_const 1; cbr_cmp = cnt_const 1 }
  | Ast.Call _ -> mix_top

let store_mix g regs x =
  if List.mem x regs then malu 1
  else mix_add (malu (addr_len g x)) mstore

(* ------------------------------------------------------------------ *)
(* Trip-count analysis.                                               *)

let trips_top = { lo = 0; hi = unbounded }

(* Signed interpretation of an AST literal (Optimize normalizes
   literals to their unsigned 32-bit representation). *)
let signed32 v =
  let v = v land 0xFFFFFFFF in
  if v >= 0x80000000 then v - 0x100000000 else v

let ceil_div_pos a k = if a <= 0 then 0 else (a + k - 1) / k

(* Scalars assigned (via Set) anywhere in a statement list. *)
let rec assigned_vars acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Ast.Set (x, _) -> x :: acc
      | Ast.Set_idx _ | Ast.Do _ | Ast.Ret _ -> acc
      | Ast.If (_, th, el) -> assigned_vars (assigned_vars acc th) el
      | Ast.While (_, body) -> assigned_vars acc body)
    acc stmts

let rec stmts_have_call stmts =
  List.exists
    (fun s ->
      match s with
      | Ast.Set (_, e) | Ast.Do e | Ast.Ret e -> Cfg.expr_has_call e
      | Ast.Set_idx (_, e1, e2) -> Cfg.expr_has_call e1 || Cfg.expr_has_call e2
      | Ast.If (c, th, el) ->
          Cfg.expr_has_call c || stmts_have_call th || stmts_have_call el
      | Ast.While (c, body) -> Cfg.expr_has_call c || stmts_have_call body)
    stmts

let rec expr_vars acc = function
  | Ast.Int _ -> acc
  | Ast.Var x -> x :: acc
  | Ast.Idx (_, e) | Ast.Un (_, e) -> expr_vars acc e
  | Ast.Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ast.Call (_, args) -> List.fold_left expr_vars acc args

let rec expr_has_idx = function
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Idx _ -> true
  | Ast.Un (_, e) -> expr_has_idx e
  | Ast.Bin (_, a, b) -> expr_has_idx a || expr_has_idx b
  | Ast.Call (_, args) -> List.exists expr_has_idx args

(* The single top-level [x = x +- k] step of the candidate induction
   variable, or None. *)
let induction_step x body =
  let top_level_steps =
    List.filter_map
      (fun s ->
        match s with
        | Ast.Set (y, e) when y = x -> (
            match e with
            | Ast.Bin (Ast.Add, Ast.Var y', Ast.Int k) when y' = x ->
                Some (Some (signed32 k))
            | Ast.Bin (Ast.Add, Ast.Int k, Ast.Var y') when y' = x ->
                Some (Some (signed32 k))
            | Ast.Bin (Ast.Sub, Ast.Var y', Ast.Int k) when y' = x ->
                Some (Some (-signed32 k))
            | _ -> Some None (* an assignment, but not a step *))
        | _ -> None)
      body
  in
  let nested_assigns =
    List.length (List.filter (( = ) x) (assigned_vars [] body))
  in
  match top_level_steps with
  | [ Some k ] when nested_assigns = 1 -> Some k
  | _ -> None

let min32 = Interval.min32
let max32 = Interval.max32

(* Trips of [while (x cmp n)] with step [k], given entry intervals for
   x and n.  The wrap guards reject cases where the counter update
   could overflow 32-bit arithmetic mid-loop. *)
let trips_formula op ~x0 ~n ~k =
  let x0l = x0.Interval.lo and x0h = x0.Interval.hi in
  let nl = n.Interval.lo and nh = n.Interval.hi in
  match op with
  | Ast.Lt when k > 0 ->
      if nh > max32 - k then trips_top
      else
        { lo = ceil_div_pos (nl - x0h) k; hi = ceil_div_pos (nh - x0l) k }
  | Ast.Le when k > 0 ->
      if nh > max32 - k then trips_top
      else
        {
          lo = ceil_div_pos (nl - x0h + 1) k;
          hi = ceil_div_pos (nh - x0l + 1) k;
        }
  | Ast.Gt when k < 0 ->
      let m = -k in
      if nl < min32 + m then trips_top
      else
        { lo = ceil_div_pos (x0l - nh) m; hi = ceil_div_pos (x0h - nl) m }
  | Ast.Ge when k < 0 ->
      let m = -k in
      if nl < min32 + m then trips_top
      else
        {
          lo = ceil_div_pos (x0l - nh + 1) m;
          hi = ceil_div_pos (x0h - nl + 1) m;
        }
  | _ -> trips_top

let flip_cmp = function
  | Ast.Lt -> Some Ast.Gt
  | Ast.Le -> Some Ast.Ge
  | Ast.Gt -> Some Ast.Lt
  | Ast.Ge -> Some Ast.Le
  | Ast.Eq -> Some Ast.Eq
  | Ast.Ne -> Some Ast.Ne
  | _ -> None

(* Attempt the induction pattern for candidate variable [x] compared
   against [e].  [regs] = the function's register-resident scalars. *)
let induction_trips g regs env op x e body =
  let bad = None in
  match induction_step x body with
  | None -> bad
  | Some k ->
      let has_calls = stmts_have_call body in
      (* x itself must not be writable behind our back *)
      if (not (List.mem x regs)) && has_calls then bad
      else if expr_has_idx e || Cfg.expr_has_call e then bad
      else
        let evars = expr_vars [] e in
        let assigned = assigned_vars [] body in
        if List.exists (fun v -> List.mem v assigned) evars then bad
        else if
          has_calls && List.exists (fun v -> not (List.mem v regs)) evars
        then bad
        else
          let x0 =
            match Interval.Smap.find_opt x env with
            | Some i -> i
            | None -> Interval.top
          in
          let n = Interval.eval g.ictx env e in
          let t = trips_formula op ~x0 ~n ~k in
          if t.lo < 0 || t.hi < t.lo then bad else Some t

let join_envs a b =
  Interval.Smap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (i : Interval.itv), Some (j : Interval.itv) ->
          Some { Interval.lo = min i.Interval.lo j.Interval.lo;
                 hi = max i.Interval.hi j.Interval.hi }
      | _ -> None)
    a b

(* Trip-count interval of the loop whose header branch carries [sid]. *)
let loop_trips_at g regs cfg (res : Interval.result) preds sid cond body =
  let header =
    Array.to_seq cfg.Cfg.blocks
    |> Seq.find (fun b ->
           b.Cfg.term_sid = sid
           && match b.Cfg.term with Cfg.Branch _ -> true | _ -> false)
  in
  match header with
  | None -> trips_top
  | Some header -> (
      let body_id =
        match header.Cfg.term with
        | Cfg.Branch (_, t, _) -> t
        | _ -> assert false
      in
      match res.Interval.env_in.(body_id) with
      | Interval.Unreachable -> cnt_const 0
      | Interval.Env _ -> (
          (* Entry-side state: join of the forward predecessors'
             out-states (back edges come from higher block ids). *)
          let entry =
            List.fold_left
              (fun acc p ->
                if p >= header.Cfg.id then acc
                else
                  match (acc, res.Interval.env_out.(p)) with
                  | None, e -> Some e
                  | Some Interval.Unreachable, e | Some e, Interval.Unreachable
                    ->
                      Some e
                  | Some (Interval.Env a), Interval.Env b ->
                      Some (Interval.Env (join_envs a b)))
              None
              preds.(header.Cfg.id)
          in
          match entry with
          | None | Some Interval.Unreachable -> cnt_const 0
          | Some (Interval.Env env) -> (
              let attempt =
                match cond with
                | Ast.Bin (op, Ast.Var x, e) when is_cmp_op op ->
                    induction_trips g regs env op x e body
                | _ -> None
              in
              let attempt =
                match attempt with
                | Some _ -> attempt
                | None -> (
                    match cond with
                    | Ast.Bin (op, e, Ast.Var x) when is_cmp_op op -> (
                        match flip_cmp op with
                        | Some op' -> induction_trips g regs env op' x e body
                        | None -> None)
                    | _ -> None)
              in
              match attempt with Some t -> t | None -> trips_top)))

(* Trip intervals for every While in [f], keyed by pre-order sid. *)
let trips_of_func g (f : Ast.func) =
  let tbl = Hashtbl.create 8 in
  let whiles = ref [] in
  let counter = ref 0 in
  let rec walk stmts =
    List.iter
      (fun s ->
        let sid = !counter in
        incr counter;
        match s with
        | Ast.While (c, body) ->
            whiles := (sid, c, body) :: !whiles;
            walk body
        | Ast.If (_, th, el) ->
            walk th;
            walk el
        | Ast.Set _ | Ast.Set_idx _ | Ast.Do _ | Ast.Ret _ -> ())
      stmts
  in
  walk f.Ast.body;
  (if !whiles <> [] then
     let cfg = Cfg.build f in
     let res = Interval.solve g.ictx cfg in
     let preds = Cfg.predecessors cfg in
     let regs = f.Ast.params @ f.Ast.locals in
     List.iter
       (fun (sid, cond, body) ->
         Hashtbl.replace tbl sid
           (loop_trips_at g regs cfg res preds sid cond body))
       !whiles);
  tbl

(* ------------------------------------------------------------------ *)
(* Statement and function summaries.                                  *)

let m_ret_tail =
  (* mov o0->i0; restore; jmpl *)
  { mix_zero with
    alu = cnt_const 1; restore = cnt_const 1; jmpl = cnt_const 1 }

let add_ba s =
  match s.ret with
  | Always -> s
  | Never -> { s with smix = mix_add s.smix { mix_zero with ba = cnt_const 1 } }
  | Maybe ->
      { s with smix = mix_add s.smix { mix_zero with ba = { lo = 0; hi = 1 } } }

let rec func_mix g name : mix =
  match Hashtbl.find_opt g.mixes name with
  | Some m -> m
  | None ->
      if List.mem name g.in_progress then mix_top
      else (
        match Hashtbl.find_opt g.funcs name with
        | None -> mix_top
        | Some f ->
            g.in_progress <- name :: g.in_progress;
            let trips = trips_of_func g f in
            let regs = f.Ast.params @ f.Ast.locals in
            let counter = ref 0 in
            let body = stmts_summary g trips regs counter f.Ast.body in
            let full =
              s_seq
                (s_of_mix { mix_zero with save = cnt_const 1 })
                (s_seq body (s_of_mix m_ret_tail))
            in
            g.in_progress <- List.tl g.in_progress;
            Hashtbl.replace g.mixes name full.smix;
            full.smix)

and call_mix g regs f args =
  let m =
    List.fold_left (fun acc a -> mix_add acc (eval_mix g regs a)) mix_zero args
  in
  mix_add m (mix_add { mix_zero with call = cnt_const 1 } (func_mix g f))

and stmts_summary g trips regs counter stmts =
  (* Every statement is walked (to keep sid numbering aligned with the
     CFG) even when the accumulated summary already always-returns. *)
  List.fold_left
    (fun acc s -> s_seq acc (stmt_summary g trips regs counter s))
    s_zero stmts

and stmt_summary g trips regs counter s =
  let sid = !counter in
  incr counter;
  match s with
  | Ast.Set (x, Ast.Call (f, args)) ->
      s_of_mix (mix_add (call_mix g regs f args) (store_mix g regs x))
  | Ast.Set (x, e) ->
      s_of_mix (mix_add (eval_mix g regs e) (store_mix g regs x))
  | Ast.Set_idx (a, ei, ev) ->
      let m = mix_add (eval_mix g regs ei) (eval_mix g regs ev) in
      let m = if is_word_array g a then mix_add m mshift else m in
      s_of_mix (mix_add m (mix_add (malu (addr_len g a)) mstore))
  | Ast.Do (Ast.Call (f, args)) -> s_of_mix (call_mix g regs f args)
  | Ast.Do _ -> s_zero (* rejected by Check *)
  | Ast.Ret e ->
      let m =
        match e with
        | Ast.Call (f, args) -> call_mix g regs f args
        | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ ->
            eval_mix g regs e
      in
      { smix = mix_add m m_ret_tail; ret = Always }
  | Ast.If (c, th, []) ->
      let bf = branch_false_mix g regs c in
      let th_s = stmts_summary g trips regs counter th in
      let skip = s_of_mix { mix_zero with taken = cnt_const 1 } in
      let both = s_hull th_s skip in
      { both with smix = mix_add bf both.smix }
  | Ast.If (c, th, el) ->
      let bf = branch_false_mix g regs c in
      let th_s = stmts_summary g trips regs counter th in
      let el_s = stmts_summary g trips regs counter el in
      let th_path = add_ba th_s in
      let el_path =
        { el_s with
          smix = mix_add { mix_zero with taken = cnt_const 1 } el_s.smix }
      in
      let both = s_hull th_path el_path in
      { both with smix = mix_add bf both.smix }
  | Ast.While (c, body) -> (
      let bf = branch_false_mix g regs c in
      let body_s = stmts_summary g trips regs counter body in
      let t =
        match Hashtbl.find_opt trips sid with Some t -> t | None -> trips_top
      in
      let full_run =
        (* n trips: n+1 checks, n bodies and back-branches, one final
           taken exit branch. *)
        let checks = cadd t (cnt_const 1) in
        let per_iter =
          mix_add body_s.smix { mix_zero with ba = cnt_const 1 }
        in
        mix_add
          (mix_scale ~trips:checks bf)
          (mix_add
             (mix_scale ~trips:t per_iter)
             { mix_zero with taken = cnt_const 1 })
      in
      match body_s.ret with
      | Never -> { smix = full_run; ret = Never }
      | Always ->
          if t.lo >= 1 then
            (* definitely entered; the single iteration returns *)
            { smix = mix_add bf body_s.smix; ret = Always }
          else
            s_hull
              (s_of_mix (mix_add bf { mix_zero with taken = cnt_const 1 }))
              { smix = mix_add bf body_s.smix; ret = Always }
      | Maybe ->
          (* Lower bound: one check, plus one body execution when the
             loop is definitely entered.  Upper bound: the full-run
             formula — an early return only removes work (each entered
             iteration's mix is inside body_s, and entries <= t.hi
             because every completed iteration runs the top-level
             counter step). *)
          let low =
            if t.lo >= 1 then mix_add bf body_s.smix else bf
          in
          {
            smix = mix_map2 (fun l f -> { lo = l.lo; hi = f.hi }) low full_run;
            ret = Maybe;
          })

(* Call-graph depth below [name]: 0 for leaves, None on recursion. *)
let rec func_depth g name : int option =
  match Hashtbl.find_opt g.depths name with
  | Some d -> d
  | None ->
      if List.mem name g.in_progress then None
      else (
        match Hashtbl.find_opt g.funcs name with
        | None -> None
        | Some f ->
            g.in_progress <- name :: g.in_progress;
            let callees = ref [] in
            let note e =
              match e with Ast.Call (f, _) -> callees := f :: !callees | _ -> ()
            in
            let rec walk stmts =
              List.iter
                (fun s ->
                  match s with
                  | Ast.Set (_, e) | Ast.Do e | Ast.Ret e -> note e
                  | Ast.Set_idx _ -> ()
                  | Ast.If (_, th, el) ->
                      walk th;
                      walk el
                  | Ast.While (_, body) -> walk body)
                stmts
            in
            walk f.Ast.body;
            let d =
              List.fold_left
                (fun acc callee ->
                  match (acc, func_depth g callee) with
                  | Some a, Some dc -> Some (max a (dc + 1))
                  | _ -> None)
                (Some 0) !callees
            in
            g.in_progress <- List.tl g.in_progress;
            Hashtbl.replace g.depths name d;
            d)

(* ------------------------------------------------------------------ *)
(* Program summaries.                                                 *)

type program_summary = {
  mix : mix;
  call_depth : int option;
  loops : int;
  bounded_loops : int;
}

let genv_of_program p =
  let g =
    {
      ictx = Interval.ctx_of_program p;
      addr_len = Hashtbl.create 16;
      elems = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      mixes = Hashtbl.create 16;
      depths = Hashtbl.create 16;
      in_progress = [];
    }
  in
  layout_globals g p;
  List.iter (fun f -> Hashtbl.replace g.funcs f.Ast.name f) p.Ast.funcs;
  g

let summary ?(level = 0) p =
  let p = Optimize.program ~level p in
  let g = genv_of_program p in
  let main = func_mix g "main" in
  let mix =
    mix_add
      { mix_zero with call = cnt_const 1 }
      (mix_add main { mix_zero with halt = cnt_const 1 })
  in
  let call_depth = func_depth g "main" in
  let loops = ref 0 and bounded = ref 0 in
  List.iter
    (fun f ->
      let tbl = trips_of_func g f in
      Hashtbl.iter
        (fun _ t ->
          incr loops;
          if t.hi <> unbounded then incr bounded)
        tbl)
    p.Ast.funcs;
  { mix; call_depth; loops = !loops; bounded_loops = !bounded }

let loop_trips ?(level = 0) p =
  let p = Optimize.program ~level p in
  let g = genv_of_program p in
  List.concat_map
    (fun f ->
      let tbl = trips_of_func g f in
      Hashtbl.fold (fun sid t acc -> (sid, t) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (_, t) -> (f.Ast.name, t)))
    p.Ast.funcs
