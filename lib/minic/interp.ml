exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt
let mask32 = Sem.mask32
let to_signed = Sem.to_signed

let binop op a b =
  match Sem.binop op a b with
  | Some v -> v
  | None ->
      error "%s by zero" (match op with Ast.Div -> "division" | _ -> "modulo")

let unop = Sem.unop

type array_cell = { elem : Ast.elem; data : int array }

type state = {
  scalars : (string, int ref) Hashtbl.t;
  arrays : (string, array_cell) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable fuel : int;
  mutable depth : int;
}

exception Return of int

let elem_mask = function Ast.Word -> mask32 | Ast.Byte -> 0xFF

let array_get st a i =
  match Hashtbl.find_opt st.arrays a with
  | None -> error "unknown array %S" a
  | Some cell ->
      if i < 0 || i >= Array.length cell.data then
        error "index %d out of bounds for %S (length %d)" i a
          (Array.length cell.data);
      cell.data.(i)

let array_set st a i v =
  match Hashtbl.find_opt st.arrays a with
  | None -> error "unknown array %S" a
  | Some cell ->
      if i < 0 || i >= Array.length cell.data then
        error "index %d out of bounds for %S (length %d)" i a
          (Array.length cell.data);
      cell.data.(i) <- v land elem_mask cell.elem

let rec eval st locals e =
  spend st;
  match e with
  | Ast.Int n -> n land mask32
  | Ast.Var x -> (
      match Hashtbl.find_opt locals x with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt st.scalars x with
          | Some r -> !r
          | None -> error "unknown variable %S" x))
  | Ast.Idx (a, e1) -> array_get st a (to_signed (eval st locals e1))
  | Ast.Bin (op, a, b) ->
      let va = eval st locals a in
      let vb = eval st locals b in
      binop op va vb
  | Ast.Un (op, a) -> unop op (eval st locals a)
  | Ast.Call (f, args) ->
      let vals = List.map (eval st locals) args in
      call st f vals

and call st f args =
  match Hashtbl.find_opt st.funcs f with
  | None -> error "unknown function %S" f
  | Some fn ->
      if st.depth > 4096 then error "call stack overflow in %S" f;
      st.depth <- st.depth + 1;
      let locals = Hashtbl.create 8 in
      List.iter2 (fun p v -> Hashtbl.add locals p (ref v)) fn.Ast.params args;
      List.iter (fun l -> Hashtbl.add locals l (ref 0)) fn.Ast.locals;
      let value =
        try
          exec_block st locals fn.Ast.body;
          0
        with Return v -> v
      in
      st.depth <- st.depth - 1;
      value

and spend st =
  if st.fuel <= 0 then error "fuel exhausted";
  st.fuel <- st.fuel - 1

and exec_block st locals stmts = List.iter (exec st locals) stmts

and exec st locals stmt =
  spend st;
  match stmt with
  | Ast.Set (x, e) -> (
      let v = eval st locals e in
      match Hashtbl.find_opt locals x with
      | Some r -> r := v
      | None -> (
          match Hashtbl.find_opt st.scalars x with
          | Some r -> r := v
          | None -> error "unknown variable %S" x))
  | Ast.Set_idx (a, e1, e2) ->
      let i = to_signed (eval st locals e1) in
      let v = eval st locals e2 in
      array_set st a i v
  | Ast.If (c, th, el) ->
      if eval st locals c <> 0 then exec_block st locals th
      else exec_block st locals el
  | Ast.While (c, body) ->
      while eval st locals c <> 0 do
        exec_block st locals body
      done
  | Ast.Do e -> ignore (eval st locals e)
  | Ast.Ret e -> raise (Return (eval st locals e))

let run ?(fuel = 1_000_000_000) program =
  let st =
    {
      scalars = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      fuel;
      depth = 0;
    }
  in
  let add_global = function
    | Ast.Scalar (n, init) -> Hashtbl.add st.scalars n (ref (init land mask32))
    | Ast.Array (n, elem, len) ->
        Hashtbl.add st.arrays n { elem; data = Array.make len 0 }
    | Ast.Array_init (n, elem, values) ->
        let m = elem_mask elem in
        Hashtbl.add st.arrays n
          { elem; data = Array.map (fun v -> v land m) values }
  in
  List.iter add_global program.Ast.globals;
  List.iter (fun f -> Hashtbl.add st.funcs f.Ast.name f) program.Ast.funcs;
  call st "main" []
