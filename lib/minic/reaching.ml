let uninit_sid = -1

module Set = Stdlib.Set.Make (struct
  type t = string * int

  let compare = compare
end)

module D = Dataflow.Make (struct
  type t = Set.t

  let equal = Set.equal
  let join = Set.union
  let widen _old next = next
end)

type result = { reach_in : Set.t array; reach_out : Set.t array }

let transfer blk facts =
  Array.fold_left
    (fun facts (sid, i) ->
      match i with
      | Cfg.Assign (x, _) ->
          Set.add (x, sid) (Set.filter (fun (y, _) -> y <> x) facts)
      | Cfg.Store _ | Cfg.Eval _ -> facts)
    facts blk.Cfg.instrs

let solve g =
  let init =
    Set.of_list
      (List.map (fun x -> (x, uninit_sid)) g.Cfg.func.Ast.locals)
  in
  let r =
    D.solve ~direction:Dataflow.Forward ~init ~bottom:Set.empty ~transfer g
  in
  { reach_in = r.D.input; reach_out = r.D.output }

let uninitialized_uses g =
  let locals =
    List.fold_left
      (fun s x -> Liveness.Set.add x s)
      Liveness.Set.empty g.Cfg.func.Ast.locals
  in
  let r = solve g in
  let reachable = Cfg.reachable g in
  let found = Hashtbl.create 8 in
  let note facts sid x =
    if
      Liveness.Set.mem x locals
      && Set.mem (x, uninit_sid) facts
      && not (Hashtbl.mem found x)
    then Hashtbl.add found x sid
  in
  (* No global scalars in [uses]: a call cannot read our locals. *)
  let uses e = Cfg.expr_uses ~globals:[] e in
  Array.iter
    (fun blk ->
      if reachable.(blk.Cfg.id) then begin
        let facts = ref r.reach_in.(blk.Cfg.id) in
        Array.iter
          (fun (sid, i) ->
            List.iter (note !facts sid)
              (Cfg.instr_uses ~globals:[] i);
            match i with
            | Cfg.Assign (x, _) ->
                facts :=
                  Set.add (x, sid) (Set.filter (fun (y, _) -> y <> x) !facts)
            | Cfg.Store _ | Cfg.Eval _ -> ())
          blk.Cfg.instrs;
        match blk.Cfg.term with
        | Cfg.Branch (c, _, _) ->
            List.iter (note !facts blk.Cfg.term_sid) (uses c)
        | Cfg.Return e -> List.iter (note !facts blk.Cfg.term_sid) (uses e)
        | Cfg.Jump _ | Cfg.Exit -> ()
      end)
    g.Cfg.blocks;
  Hashtbl.fold (fun x sid acc -> (x, sid) :: acc) found []
  |> List.sort (fun (_, a) (_, b) -> compare a b)
