type itv = { lo : int; hi : int }

let min32 = -0x8000_0000
let max32 = 0x7FFF_FFFF
let top = { lo = min32; hi = max32 }
let is_top i = i.lo = min32 && i.hi = max32
let const n = { lo = Sem.to_signed (n land Sem.mask32); hi = Sem.to_signed (n land Sem.mask32) }
let to_const i = if i.lo = i.hi then Some (Sem.of_signed i.lo) else None
let mem k i = i.lo <= k && k <= i.hi
let itv_equal a b = a.lo = b.lo && a.hi = b.hi

let pp_itv ppf i =
  if is_top i then Format.fprintf ppf "T"
  else if i.lo = i.hi then Format.fprintf ppf "%d" i.lo
  else Format.fprintf ppf "[%d,%d]" i.lo i.hi

(* Saturate out-of-range bounds (computed in 63-bit or Int64) to top:
   the concrete operation wraps, so the precise result set is not an
   interval anyway. *)
let sat lo hi = if lo < min32 || hi > max32 then top else { lo; hi }

let sat64 lo hi =
  if Int64.compare lo (Int64.of_int min32) < 0
     || Int64.compare hi (Int64.of_int max32) > 0
  then top
  else { lo = Int64.to_int lo; hi = Int64.to_int hi }

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

module Smap = Map.Make (String)

type env = Unreachable | Env of itv Smap.t

type ctx = { arrays : (Ast.elem * int) Smap.t; globals : string list }

let ctx_of_program (p : Ast.program) =
  let arrays =
    List.fold_left
      (fun m -> function
        | Ast.Scalar _ -> m
        | Ast.Array (n, e, len) -> Smap.add n (e, len) m
        | Ast.Array_init (n, e, vals) -> Smap.add n (e, Array.length vals) m)
      Smap.empty p.Ast.globals
  in
  let globals =
    List.filter_map
      (function Ast.Scalar (n, _) -> Some n | _ -> None)
      p.Ast.globals
  in
  { arrays; globals }

let lookup m x = match Smap.find_opt x m with Some i -> i | None -> top
let set x i m = if is_top i then Smap.remove x m else Smap.add x i m

let bin op a b =
  (* Singleton operands fold exactly through the shared semantics. *)
  match (to_const a, to_const b) with
  | Some x, Some y -> (
      match Sem.binop op x y with Some v -> const v | None -> top)
  | _ -> (
      match op with
      | Ast.Add ->
          sat64
            (Int64.add (Int64.of_int a.lo) (Int64.of_int b.lo))
            (Int64.add (Int64.of_int a.hi) (Int64.of_int b.hi))
      | Ast.Sub ->
          sat64
            (Int64.sub (Int64.of_int a.lo) (Int64.of_int b.hi))
            (Int64.sub (Int64.of_int a.hi) (Int64.of_int b.lo))
      | Ast.Mul ->
          (* (-2^31) * (-2^31) = 2^62 overflows 63-bit native ints. *)
          let p x y = Int64.mul (Int64.of_int x) (Int64.of_int y) in
          let c1 = p a.lo b.lo
          and c2 = p a.lo b.hi
          and c3 = p a.hi b.lo
          and c4 = p a.hi b.hi in
          let mn = min (min c1 c2) (min c3 c4)
          and mx = max (max c1 c2) (max c3 c4) in
          sat64 mn mx
      | Ast.Div ->
          if mem 0 b then top
          else if a.lo = min32 && mem (-1) b then top (* min32 / -1 wraps *)
          else
            let c1 = a.lo / b.lo
            and c2 = a.lo / b.hi
            and c3 = a.hi / b.lo
            and c4 = a.hi / b.hi in
            sat (min (min c1 c2) (min c3 c4)) (max (max c1 c2) (max c3 c4))
      | Ast.Mod ->
          if mem 0 b then top
          else
            let m = max (abs b.lo) (abs b.hi) - 1 in
            if a.lo >= 0 then { lo = 0; hi = min m a.hi }
            else if a.hi <= 0 then { lo = max (-m) a.lo; hi = 0 }
            else { lo = -m; hi = m }
      | Ast.And ->
          (* A non-negative operand bounds the result from above. *)
          if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = min a.hi b.hi }
          else if a.lo >= 0 then { lo = 0; hi = a.hi }
          else if b.lo >= 0 then { lo = 0; hi = b.hi }
          else top
      | Ast.Or | Ast.Xor ->
          (* For non-negative x, y: x|y <= x+y and x^y <= x+y. *)
          if a.lo >= 0 && b.lo >= 0 then
            { lo = 0; hi = min max32 (a.hi + b.hi) }
          else top
      | Ast.Shl ->
          if a.lo >= 0 && b.lo >= 0 && b.hi <= 31 then
            sat64
              (Int64.shift_left (Int64.of_int a.lo) b.lo)
              (Int64.shift_left (Int64.of_int a.hi) b.hi)
          else top
      | Ast.Shr ->
          if a.lo >= 0 && b.lo >= 0 && b.hi <= 31 then
            { lo = a.lo lsr b.hi; hi = a.hi lsr b.lo }
          else top
      | Ast.Lt ->
          if a.hi < b.lo then const 1
          else if a.lo >= b.hi then const 0
          else { lo = 0; hi = 1 }
      | Ast.Le ->
          if a.hi <= b.lo then const 1
          else if a.lo > b.hi then const 0
          else { lo = 0; hi = 1 }
      | Ast.Gt ->
          if a.lo > b.hi then const 1
          else if a.hi <= b.lo then const 0
          else { lo = 0; hi = 1 }
      | Ast.Ge ->
          if a.lo >= b.hi then const 1
          else if a.hi < b.lo then const 0
          else { lo = 0; hi = 1 }
      | Ast.Eq ->
          if a.hi < b.lo || b.hi < a.lo then const 0 else { lo = 0; hi = 1 }
      | Ast.Ne ->
          if a.hi < b.lo || b.hi < a.lo then const 1 else { lo = 0; hi = 1 })

let un op a =
  match op with
  | Ast.Neg -> if a.lo = min32 then top else { lo = -a.hi; hi = -a.lo }
  | Ast.Not ->
      if a.lo = 0 && a.hi = 0 then const 1
      else if not (mem 0 a) then const 0
      else { lo = 0; hi = 1 }
  | Ast.Bitnot -> { lo = -a.hi - 1; hi = -a.lo - 1 }

let rec eval ctx m e =
  match e with
  | Ast.Int n -> const n
  | Ast.Var x -> lookup m x
  | Ast.Idx (a, _) -> (
      match Smap.find_opt a ctx.arrays with
      | Some (Ast.Byte, _) -> { lo = 0; hi = 255 }
      | Some (Ast.Word, _) | None -> top)
  | Ast.Un (op, e1) -> un op (eval ctx m e1)
  | Ast.Bin (op, e1, e2) -> bin op (eval ctx m e1) (eval ctx m e2)
  | Ast.Call _ -> top

let rec cannot_trap ctx m e =
  match e with
  | Ast.Int _ | Ast.Var _ -> true
  | Ast.Idx (a, ix) -> (
      cannot_trap ctx m ix
      &&
      match Smap.find_opt a ctx.arrays with
      | Some (_, len) ->
          let i = eval ctx m ix in
          i.lo >= 0 && i.hi < len
      | None -> false)
  | Ast.Bin ((Ast.Div | Ast.Mod), a, b) ->
      cannot_trap ctx m a && cannot_trap ctx m b && not (mem 0 (eval ctx m b))
  | Ast.Bin (_, a, b) -> cannot_trap ctx m a && cannot_trap ctx m b
  | Ast.Un (_, a) -> cannot_trap ctx m a
  | Ast.Call _ -> false

(* A call may write any global scalar. *)
let clobber ctx m = List.fold_left (fun m g -> Smap.remove g m) m ctx.globals

let step ctx m = function
  | Cfg.Assign (x, e) ->
      (* Globals an embedded call clobbers may feed the value, so
         evaluate against the clobbered (weaker) state — sound for any
         evaluation order. *)
      let m = if Cfg.expr_has_call e then clobber ctx m else m in
      set x (eval ctx m e) m
  | Cfg.Store (_, ix, e) ->
      if Cfg.expr_has_call ix || Cfg.expr_has_call e then clobber ctx m else m
  | Cfg.Eval e -> if Cfg.expr_has_call e then clobber ctx m else m

(* Assert [cond = truth] over [m]; [Unreachable] when infeasible. *)
let rec refine ctx m cond truth =
  let ci = eval ctx m cond in
  if truth && ci.lo = 0 && ci.hi = 0 then Unreachable
  else if (not truth) && not (mem 0 ci) then Unreachable
  else
    match cond with
    | Ast.Un (Ast.Not, c) -> refine ctx m c (not truth)
    | Ast.Var x when not truth -> (
        (* x is false: x = 0. *)
        match meet (lookup m x) (const 0) with
        | Some i -> Env (set x i m)
        | None -> Unreachable)
    | Ast.Bin (op, a, b) when Sem.is_cmp op -> (
        match
          if truth then Some op else Sem.invert_cmp op
        with
        | None -> Env m
        | Some op ->
            let narrow x op other m =
              let oi = eval ctx m other in
              let xi = lookup m x in
              let res =
                match op with
                | Ast.Lt -> meet xi { lo = min32; hi = oi.hi - 1 }
                | Ast.Le -> meet xi { lo = min32; hi = oi.hi }
                | Ast.Gt -> meet xi { lo = oi.lo + 1; hi = max32 }
                | Ast.Ge -> meet xi { lo = oi.lo; hi = max32 }
                | Ast.Eq -> meet xi oi
                | Ast.Ne ->
                    if itv_equal xi oi && xi.lo = xi.hi then None else Some xi
                | _ -> Some xi
              in
              match res with
              | Some i -> Some (set x i m)
              | None -> None
            in
            let after_a =
              match a with
              | Ast.Var x -> narrow x op b m
              | _ -> Some m
            in
            let after_b m =
              match (b, Sem.swap_cmp op) with
              | Ast.Var y, Some op' -> narrow y op' a m
              | _ -> Some m
            in
            (match after_a with
            | None -> Unreachable
            | Some m -> (
                match after_b m with
                | None -> Unreachable
                | Some m -> Env m)))
    | _ -> Env m

module D = Dataflow.Make (struct
  type t = env

  let equal a b =
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Env x, Env y -> Smap.equal itv_equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreachable, x | x, Unreachable -> x
    | Env x, Env y ->
        Env
          (Smap.merge
             (fun _ a b ->
               match (a, b) with
               | Some a, Some b ->
                   let j = { lo = min a.lo b.lo; hi = max a.hi b.hi } in
                   if is_top j then None else Some j
               | _ -> None (* one side is top *))
             x y)

  (* Jump each unstable bound to its extreme so loops converge. *)
  let widen old next =
    match (old, next) with
    | Unreachable, _ | _, Unreachable -> next
    | Env o, Env n ->
        Env
          (Smap.filter_map
             (fun x i ->
               match Smap.find_opt x o with
               | None -> None
               | Some oi ->
                   let lo = if i.lo < oi.lo then min32 else i.lo in
                   let hi = if i.hi > oi.hi then max32 else i.hi in
                   let w = { lo; hi } in
                   if is_top w then None else Some w)
             n)
end)

type result = { env_in : env array; env_out : env array }

let transfer ctx blk envv =
  match envv with
  | Unreachable -> Unreachable
  | Env m ->
      Env (Array.fold_left (fun m (_sid, i) -> step ctx m i) m blk.Cfg.instrs)

let solve ctx g =
  let edge blk dst envv =
    match (blk.Cfg.term, envv) with
    | Cfg.Branch (c, t, e), Env m
      when t <> e && not (Cfg.expr_has_call c) ->
        refine ctx m c (dst = t)
    | _ -> envv
  in
  let r =
    D.solve ~edge ~direction:Dataflow.Forward ~init:(Env Smap.empty)
      ~bottom:Unreachable ~transfer:(transfer ctx) g
  in
  { env_in = r.D.input; env_out = r.D.output }

let points ctx g =
  let r = solve ctx g in
  let reachable = Cfg.reachable g in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
      if reachable.(blk.Cfg.id) then
        match r.env_in.(blk.Cfg.id) with
        | Unreachable -> ()
        | Env m0 ->
            let m = ref m0 in
            Array.iter
              (fun (sid, i) ->
                Hashtbl.replace tbl sid !m;
                m := step ctx !m i)
              blk.Cfg.instrs;
            if blk.Cfg.term_sid >= 0 then
              Hashtbl.replace tbl blk.Cfg.term_sid !m)
    g.Cfg.blocks;
  tbl
