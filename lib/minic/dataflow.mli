(** Generic forward/backward worklist fixpoint solver over {!Cfg}.

    An analysis supplies a join-semilattice of facts ({!DOMAIN}) and a
    per-block transfer function; the solver iterates to a fixpoint in
    round-robin priority order (reverse postorder for forward
    analyses, postorder for backward ones).  Termination is guaranteed
    either by finite lattice height (set-based domains can make
    [widen] equal to [join]) or by a widening operator: after a block
    has been refined {!val-solve}[ ~widen_after] times, the new input
    fact is [widen old joined] instead of [joined], and [widen] must
    reach a stationary point in finitely many steps (e.g. by jumping
    to the top element, as the interval domain does). *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound. Must be monotone w.r.t. the implied order. *)

  val widen : t -> t -> t
  (** [widen old next] with [old <= next]; must stabilize in finitely
      many applications.  Finite-height domains use [fun _ next ->
      next] (plain join iteration already terminates). *)
end

type direction = Forward | Backward

module Make (D : DOMAIN) : sig
  type result = {
    input : D.t array;
    (** fact {e entering} each block's transfer: the in-fact for
        forward analyses, the out-fact (e.g. live-out) for backward
        ones; indexed by block id *)
    output : D.t array;
    (** fact after the transfer function *)
  }

  val solve :
    ?widen_after:int ->
    ?edge:(Cfg.block -> int -> D.t -> D.t) ->
    direction:direction ->
    init:D.t ->
    bottom:D.t ->
    transfer:(Cfg.block -> D.t -> D.t) ->
    Cfg.t ->
    result
  (** [solve ~direction ~init ~bottom ~transfer cfg].

      [init] is the boundary fact: seeded at the entry block for
      forward analyses and at every exiting block ([Return]/[Exit]
      terminators) for backward ones.  All other inputs start at
      [bottom].

      [edge blk succ fact] (forward only) refines the fact flowing
      along the edge [blk -> succ] before it is joined into [succ] —
      conditional analyses use it to narrow branch conditions or kill
      infeasible edges by returning [bottom].  Default: identity.

      [widen_after] (default 8) is the per-block refinement count
      after which widening kicks in.  Widening is only applied along
      retreating edges (edges into a block no later in the iteration
      order, i.e. loop heads): every cycle contains one, which is
      enough for termination, and blocks reached purely by advancing
      edges keep the precise facts edge refinement gave them. *)
end
