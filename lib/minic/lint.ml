type severity = Error | Warning | Note

type finding = {
  severity : severity;
  func : string;
  sid : int;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp_finding ppf f =
  Format.fprintf ppf "%s: %s:%d: %s" (severity_name f.severity) f.func f.sid
    f.message

let fails ~werror findings =
  List.exists
    (fun f ->
      match f.severity with
      | Error -> true
      | Warning -> werror
      | Note -> false)
    findings

let estr e = Format.asprintf "%a" Ast.pp_expr e

(* Definite traps inside one expression, given the variable state [m]
   at its program point.  Only impossibilities are reported: an index
   interval disjoint from the valid range, a divisor interval equal to
   [0,0].  Anything merely possible stays silent. *)
let rec trap_findings ctx m e k =
  match e with
  | Ast.Int _ | Ast.Var _ -> ()
  | Ast.Idx (a, ix) ->
      trap_findings ctx m ix k;
      index_finding ctx m a ix k
  | Ast.Un (_, e1) -> trap_findings ctx m e1 k
  | Ast.Bin (op, e1, e2) ->
      trap_findings ctx m e1 k;
      trap_findings ctx m e2 k;
      (match op with
      | Ast.Div | Ast.Mod ->
          let bi = Interval.eval ctx m e2 in
          if bi.Interval.lo = 0 && bi.Interval.hi = 0 then
            k Error
              (Format.asprintf "%s by zero: %s is always 0 in %s"
                 (match op with Ast.Div -> "division" | _ -> "modulo")
                 (estr e2) (estr e))
      | _ -> ())
  | Ast.Call (_, args) -> List.iter (fun a -> trap_findings ctx m a k) args

and index_finding ctx m a ix k =
  match Interval.Smap.find_opt a ctx.Interval.arrays with
  | None -> ()
  | Some (_, len) ->
      let i = Interval.eval ctx m ix in
      if i.Interval.hi < 0 || i.Interval.lo >= len then
        k Error
          (Format.asprintf
             "index %s = %a is always out of bounds for %s (length %d)"
             (estr ix) Interval.pp_itv i a len)

let stmt_head = function
  | Ast.Set (x, e) -> Format.asprintf "%s = %s;" x (estr e)
  | Ast.Set_idx (a, ix, e) -> Format.asprintf "%s[%s] = %s;" a (estr ix) (estr e)
  | Ast.If (c, _, _) -> Format.asprintf "if (%s)" (estr c)
  | Ast.While (c, _) -> Format.asprintf "while (%s)" (estr c)
  | Ast.Do e -> Format.asprintf "%s;" (estr e)
  | Ast.Ret e -> Format.asprintf "return %s;" (estr e)

(* Report the first statement of every maximal unreachable region,
   replaying the builder's pre-order sid walk.  A region that starts
   right after a [return] in the same block gets its own message: the
   return makes everything below it dead, which is the common
   copy-paste accident. *)
let unreachable_findings (f : Ast.func) ~reachable_sid ~report =
  let counter = ref 0 in
  let rec walk ~suppress stmts =
    ignore
      (List.fold_left
         (fun (prev_dead, after_ret) s ->
           let sid = !counter in
           incr counter;
           let dead = not (reachable_sid sid) in
           if dead && (not suppress) && not prev_dead then
             report sid
               (Format.asprintf "unreachable code%s: %s"
                  (if after_ret then " after return" else "")
                  (stmt_head s));
           (match s with
           | Ast.If (_, th, el) ->
               walk ~suppress:(suppress || dead) th;
               walk ~suppress:(suppress || dead) el
           | Ast.While (_, body) -> walk ~suppress:(suppress || dead) body
           | Ast.Set _ | Ast.Set_idx _ | Ast.Do _ | Ast.Ret _ -> ());
           (dead, match s with Ast.Ret _ -> true | _ -> false))
         (false, false) stmts)
  in
  walk ~suppress:false f.Ast.body

let func ctx (f : Ast.func) =
  let g = Cfg.build f in
  let pts = Interval.points ctx g in
  let findings = ref [] in
  let report severity sid message =
    findings := { severity; func = f.Ast.name; sid; message } :: !findings
  in
  (* Unreachable code: a sid with no interval point is structurally or
     semantically unreachable. *)
  unreachable_findings f
    ~reachable_sid:(fun sid -> Hashtbl.mem pts sid)
    ~report:(fun sid msg -> report Warning sid msg);
  (* Possible use of an uninitialized local (reachable uses only). *)
  List.iter
    (fun (x, sid) ->
      if Hashtbl.mem pts sid then
        report Warning sid
          (Format.asprintf "local %s may be used before initialization" x))
    (Reaching.uninitialized_uses g);
  (* Definite traps and constant branch conditions, per program point. *)
  Array.iter
    (fun blk ->
      Array.iter
        (fun (sid, i) ->
          match Hashtbl.find_opt pts sid with
          | None -> ()
          | Some m -> (
              let k sev msg = report sev sid msg in
              match i with
              | Cfg.Assign (_, e) | Cfg.Eval e -> trap_findings ctx m e k
              | Cfg.Store (a, ix, e) ->
                  trap_findings ctx m ix k;
                  trap_findings ctx m e k;
                  index_finding ctx m a ix k))
        blk.Cfg.instrs;
      match blk.Cfg.term with
      | Cfg.Branch (c, _, _) when blk.Cfg.term_sid >= 0 -> (
          match Hashtbl.find_opt pts blk.Cfg.term_sid with
          | None -> ()
          | Some m -> (
              let k sev msg = report sev blk.Cfg.term_sid msg in
              trap_findings ctx m c k;
              let ci = Interval.eval ctx m c in
              let always_false =
                ci.Interval.lo = 0 && ci.Interval.hi = 0
              in
              let always_true = not (Interval.mem 0 ci) in
              match Cfg.stmt_of_sid g blk.Cfg.term_sid with
              | Some (Ast.If _) ->
                  if always_false then
                    k Warning
                      (Format.asprintf "condition %s is always false" (estr c))
                  else if always_true then
                    k Warning
                      (Format.asprintf "condition %s is always true" (estr c))
              | Some (Ast.While _) ->
                  (* An intentional literal [while (1)] is idiomatic
                     and stays exempt; a {e computed} condition the
                     interval analysis proves always true means the
                     loop can only exit through a return — usually an
                     inverted or off-by-one exit test. *)
                  if always_false then
                    k Warning
                      (Format.asprintf
                         "loop condition %s is always false; the body never \
                          runs"
                         (estr c))
                  else if
                    always_true
                    && match c with Ast.Int _ -> false | _ -> true
                  then
                    k Warning
                      (Format.asprintf
                         "loop condition %s is always true; the loop only \
                          exits through return"
                         (estr c))
              | _ -> ()))
      | Cfg.Return e when blk.Cfg.term_sid >= 0 -> (
          match Hashtbl.find_opt pts blk.Cfg.term_sid with
          | None -> ()
          | Some m ->
              trap_findings ctx m e
                (fun sev msg -> report sev blk.Cfg.term_sid msg))
      | _ -> ())
    g.Cfg.blocks;
  (* Dead stores: the assigned value is provably never read.  Stores
     whose right-hand side calls a function are exempt (assigning an
     ignored call result is idiomatic), and so are unreachable ones
     (already reported above). *)
  let live = Liveness.solve ~globals:ctx.Interval.globals g in
  Array.iter
    (fun blk ->
      ignore
        (Liveness.fold_instrs_rev ~globals:ctx.Interval.globals blk
           ~live_out:live.Liveness.live_out.(blk.Cfg.id)
           ~f:(fun () (sid, i) ~live_after ->
             match i with
             | Cfg.Assign (x, e)
               when Hashtbl.mem pts sid
                    && (not (Liveness.Set.mem x live_after))
                    && not (Cfg.expr_has_call e) ->
                 report Note sid
                   (Format.asprintf "value assigned to %s is never used" x)
             | _ -> ())
           ()))
    g.Cfg.blocks;
  !findings

let program (p : Ast.program) =
  let ctx = Interval.ctx_of_program p in
  let order = Hashtbl.create 16 in
  List.iteri (fun i (f : Ast.func) -> Hashtbl.add order f.Ast.name i) p.Ast.funcs;
  let rank f = try Hashtbl.find order f with Not_found -> max_int in
  List.concat_map (func ctx) p.Ast.funcs
  |> List.sort (fun a b ->
         match compare (rank a.func) (rank b.func) with
         | 0 -> compare (a.sid, a.message) (b.sid, b.message)
         | c -> c)
