(** Live-variable analysis (backward may-analysis over scalar names),
    instantiating the generic {!Dataflow} solver.

    Global scalars are treated as live at function exit (the caller
    can observe them) and as both read and clobbered by calls, so the
    analysis is sound interprocedurally without a call graph.  Local
    variables and parameters die at function exit. *)

module Set : Stdlib.Set.S with type elt = string

type result = {
  live_in : Set.t array;  (** live variables at block entry, by block id *)
  live_out : Set.t array;  (** live variables at block exit, by block id *)
}

val solve : globals:string list -> Cfg.t -> result
(** [globals] must list every global scalar of the program. *)

val fold_instrs_rev :
  globals:string list ->
  Cfg.block ->
  live_out:Set.t ->
  f:('a -> int * Cfg.instr -> live_after:Set.t -> 'a) ->
  'a ->
  'a
(** Fold over a block's instructions in reverse execution order,
    supplying the live-after set at each instruction — the primitive
    dead-store elimination builds on.  [live_out] must be the solved
    live-out of the block (the terminator's uses are added first). *)
