let mask32 = Sem.mask32

(* Pure evaluation of an operator over literals; [None] when folding
   must not happen (division by zero stays a runtime event). *)
let fold_binop = Sem.binop
let fold_unop = Sem.unop
let invert_cmp = Sem.invert_cmp

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go k = if 1 lsl k = v then k else go (k + 1) in
  go 0

(* Algebraic identities on an already-optimized node. *)
let simplify = function
  | Ast.Bin (op, a, b) as e -> (
      match (op, a, b) with
      | (Ast.Add | Ast.Or | Ast.Xor | Ast.Sub | Ast.Shl | Ast.Shr), x, Ast.Int 0 -> x
      | (Ast.Add | Ast.Or | Ast.Xor), Ast.Int 0, x -> x
      | (Ast.Mul | Ast.And), _, Ast.Int 0 -> Ast.Int 0
      | (Ast.Mul | Ast.And), Ast.Int 0, _ -> Ast.Int 0
      | (Ast.Mul | Ast.Div), x, Ast.Int 1 -> x
      | Ast.Mul, Ast.Int 1, x -> x
      | Ast.And, x, Ast.Int 0xFFFFFFFF -> x
      | Ast.And, Ast.Int 0xFFFFFFFF, x -> x
      | Ast.Mul, x, Ast.Int n when is_pow2 n -> Ast.Bin (Ast.Shl, x, Ast.Int (log2 n))
      | Ast.Mul, Ast.Int n, x when is_pow2 n -> Ast.Bin (Ast.Shl, x, Ast.Int (log2 n))
      | _ -> e)
  | Ast.Un (Ast.Not, Ast.Bin (op, a, b)) as e -> (
      match invert_cmp op with
      | Some op' -> Ast.Bin (op', a, b)
      | None -> e)
  | Ast.Un (Ast.Neg, Ast.Un (Ast.Neg, x)) -> x
  | Ast.Un (Ast.Bitnot, Ast.Un (Ast.Bitnot, x)) -> x
  | e -> e

let rec expr e =
  match e with
  | Ast.Int n -> Ast.Int (n land mask32)
  | Ast.Var _ -> e
  | Ast.Idx (a, ix) -> Ast.Idx (a, expr ix)
  | Ast.Un (op, a) -> (
      match expr a with
      | Ast.Int n -> Ast.Int (fold_unop op n)
      | a' -> simplify (Ast.Un (op, a')))
  | Ast.Bin (op, a, b) -> (
      let a' = expr a and b' = expr b in
      match (a', b') with
      | Ast.Int x, Ast.Int y -> (
          match fold_binop op x y with
          | Some v -> Ast.Int v
          | None -> Ast.Bin (op, a', b'))
      | _ -> simplify (Ast.Bin (op, a', b')))
  | Ast.Call (f, args) -> Ast.Call (f, List.map expr args)

let rec stmt s =
  match s with
  | Ast.Set (x, e) -> (
      match expr e with
      (* A self-assignment of a pure expression is dead. *)
      | Ast.Var y when String.equal x y -> []
      | e' -> [ Ast.Set (x, e') ])
  | Ast.Set_idx (a, ix, e) -> [ Ast.Set_idx (a, expr ix, expr e) ]
  | Ast.Do e -> [ Ast.Do (expr e) ]
  | Ast.Ret e -> [ Ast.Ret (expr e) ]
  | Ast.If (c, th, el) -> (
      match expr c with
      | Ast.Int 0 -> block el
      | Ast.Int _ -> block th
      | c' -> [ Ast.If (c', block th, block el) ])
  | Ast.While (c, body) -> (
      match expr c with
      | Ast.Int 0 -> []
      | c' -> [ Ast.While (c', block body) ])

and block stmts = List.concat_map stmt stmts

let func (f : Ast.func) = { f with Ast.body = block f.Ast.body }

(* ---- Level 2: conditional constant propagation and dead-store
   elimination driven by the {!Interval} and {!Liveness} analyses.

   The rewrite walks the function body in the same pre-order as
   {!Cfg.build} assigns sids, so each statement can look up its
   analysis facts directly.  Safety rules:

   - a subexpression is replaced by its constant only when its
     interval is a singleton, it contains no call, and it provably
     cannot trap ([Interval.cannot_trap]) — so a trapping or effectful
     computation is never deleted;
   - a store is dropped only when the target is dead after it and the
     right-hand side is call-free and trap-free;
   - a statement whose program point is unreachable (no interval
     fact) never executes and is dropped;
   - an [if]/[while] with a provably constant, trap-free, call-free
     condition selects its branch / disappears. *)

let live_after_table ~globals g live =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
      Liveness.fold_instrs_rev ~globals blk
        ~live_out:live.Liveness.live_out.(blk.Cfg.id)
        ~f:(fun () (sid, _) ~live_after -> Hashtbl.replace tbl sid live_after)
        ())
    g.Cfg.blocks;
  tbl

let rec ccp_expr ctx m e =
  let const_here =
    match e with
    | Ast.Int _ -> None (* already a literal *)
    | _ -> (
        match Interval.to_const (Interval.eval ctx m e) with
        | Some v
          when (not (Cfg.expr_has_call e)) && Interval.cannot_trap ctx m e ->
            Some v
        | _ -> None)
  in
  match const_here with
  | Some v -> Ast.Int v
  | None -> (
      match e with
      | Ast.Int _ | Ast.Var _ -> e
      | Ast.Idx (a, ix) -> Ast.Idx (a, ccp_expr ctx m ix)
      | Ast.Un (op, e1) -> Ast.Un (op, ccp_expr ctx m e1)
      | Ast.Bin (op, a, b) -> Ast.Bin (op, ccp_expr ctx m a, ccp_expr ctx m b)
      | Ast.Call (f, args) -> Ast.Call (f, List.map (ccp_expr ctx m) args))

let dataflow_round ctx (f : Ast.func) =
  let g = Cfg.build f in
  let pts = Interval.points ctx g in
  let globals = ctx.Interval.globals in
  let live = Liveness.solve ~globals g in
  let live_after = live_after_table ~globals g live in
  let counter = ref 0 in
  (* Children are walked even when the result is discarded: the sid
     counter must advance through every original statement. *)
  let rec walk_stmt s =
    let sid = !counter in
    incr counter;
    let pt = Hashtbl.find_opt pts sid in
    match s with
    | Ast.Set (x, e) -> (
        match pt with
        | None -> []
        | Some m ->
            let dead =
              (match Hashtbl.find_opt live_after sid with
              | Some la -> not (Liveness.Set.mem x la)
              | None -> false)
              && (not (Cfg.expr_has_call e))
              && Interval.cannot_trap ctx m e
            in
            if dead then [] else [ Ast.Set (x, ccp_expr ctx m e) ])
    | Ast.Set_idx (a, ix, e) -> (
        match pt with
        | None -> []
        | Some m -> [ Ast.Set_idx (a, ccp_expr ctx m ix, ccp_expr ctx m e) ])
    | Ast.Do e -> (
        (* [e] is a call (Check), so [ccp_expr] only folds arguments. *)
        match pt with
        | None -> []
        | Some m -> [ Ast.Do (ccp_expr ctx m e) ])
    | Ast.Ret e -> (
        match pt with None -> [] | Some m -> [ Ast.Ret (ccp_expr ctx m e) ])
    | Ast.If (c, th, el) -> (
        let th' = walk th in
        let el' = walk el in
        match pt with
        | None -> []
        | Some m -> (
            let safe =
              (not (Cfg.expr_has_call c)) && Interval.cannot_trap ctx m c
            in
            match Interval.to_const (Interval.eval ctx m c) with
            | Some 0 when safe -> el'
            | Some _ when safe -> th'
            | _ -> [ Ast.If (ccp_expr ctx m c, th', el') ]))
    | Ast.While (c, body) -> (
        let body' = walk body in
        match pt with
        | None -> []
        | Some m -> (
            let safe =
              (not (Cfg.expr_has_call c)) && Interval.cannot_trap ctx m c
            in
            match Interval.to_const (Interval.eval ctx m c) with
            | Some 0 when safe -> []
            | _ -> [ Ast.While (ccp_expr ctx m c, body') ]))
  and walk stmts = List.concat_map walk_stmt stmts in
  { f with Ast.body = walk f.Ast.body }

let func_level2 ctx f =
  (* Each dataflow round can expose more local folds and vice versa;
     in practice this converges in one or two rounds, three is a
     hard cap. *)
  let rec go round f =
    let f' = func (dataflow_round ctx f) in
    if f' = f || round >= 2 then f' else go (round + 1) f'
  in
  go 0 f

let program ?(level = 1) (p : Ast.program) =
  if level <= 0 then p
  else
    let p1 = { p with Ast.funcs = List.map func p.Ast.funcs } in
    if level = 1 then p1
    else
      let ctx = Interval.ctx_of_program p1 in
      { p1 with Ast.funcs = List.map (func_level2 ctx) p1.Ast.funcs }
