let max_params = 6
let max_locals = 8
let max_expr_depth = 10

let rec expr_depth = function
  | Ast.Int _ | Ast.Var _ -> 1
  (* An index load needs no extra slot: codegen materializes the array
     base address in a dedicated scratch register (g5) and loads into
     the index's own temporary. *)
  | Ast.Idx (_, e) -> expr_depth e
  | Ast.Un (_, e) -> expr_depth e
  | Ast.Bin (_, a, b) -> max (expr_depth a) (expr_depth b + 1)
  | Ast.Call (_, args) ->
      (* Call arguments are evaluated at increasing stack positions. *)
      List.fold_left
        (fun acc (k, d) -> max acc (k + d))
        1
        (List.mapi (fun k a -> (k, expr_depth a)) args)

type env = {
  scalars : (string, unit) Hashtbl.t;   (* global scalars *)
  arrays : (string, unit) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;      (* arity *)
}

let rec has_call = function
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Idx (_, e) | Ast.Un (_, e) -> has_call e
  | Ast.Bin (_, a, b) -> has_call a || has_call b
  | Ast.Call _ -> true

let check program =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let env =
    {
      scalars = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
    }
  in
  let seen = Hashtbl.create 16 in
  let declare_global g =
    let name = Ast.global_name g in
    if Hashtbl.mem seen name then err "duplicate global %S" name
    else begin
      Hashtbl.add seen name ();
      match g with
      | Ast.Scalar _ -> Hashtbl.add env.scalars name ()
      | Ast.Array _ | Ast.Array_init _ -> Hashtbl.add env.arrays name ()
    end
  in
  List.iter declare_global program.Ast.globals;
  let declare_func (f : Ast.func) =
    if Hashtbl.mem env.funcs f.name then err "duplicate function %S" f.name
    else Hashtbl.add env.funcs f.name (List.length f.params)
  in
  List.iter declare_func program.Ast.funcs;
  let check_func (f : Ast.func) =
    let where fmt = Printf.ksprintf (fun s -> f.name ^ ": " ^ s) fmt in
    if List.length f.params > max_params then
      err "%s" (where "more than %d parameters" max_params);
    if List.length f.locals > max_locals then
      err "%s" (where "more than %d locals" max_locals);
    let vars = Hashtbl.create 16 in
    let declare_var x =
      if Hashtbl.mem vars x then err "%s" (where "duplicate variable %S" x)
      else if Hashtbl.mem env.arrays x then
        err "%s" (where "variable %S shadows a global array" x)
      else Hashtbl.add vars x ()
    in
    List.iter declare_var f.params;
    List.iter declare_var f.locals;
    let scalar_ok x = Hashtbl.mem vars x || Hashtbl.mem env.scalars x in
    let rec check_expr e =
      (match e with
      | Ast.Int _ -> ()
      | Ast.Var x ->
          if not (scalar_ok x) then
            if Hashtbl.mem env.arrays x then
              err "%s" (where "array %S used as a scalar" x)
            else err "%s" (where "unknown variable %S" x)
      | Ast.Idx (a, e1) ->
          if not (Hashtbl.mem env.arrays a) then
            err "%s" (where "unknown array %S" a);
          if has_call e1 then err "%s" (where "call inside index of %S" a);
          check_expr e1
      | Ast.Un (_, e1) -> check_expr e1
      | Ast.Bin (_, a, b) ->
          if has_call a || has_call b then
            err "%s" (where "call nested inside an operator expression");
          check_expr a;
          check_expr b
      | Ast.Call (g, args) ->
          (match Hashtbl.find_opt env.funcs g with
          | None -> err "%s" (where "unknown function %S" g)
          | Some arity ->
              if arity <> List.length args then
                err "%s"
                  (where "call to %S with %d arguments, expected %d" g
                     (List.length args) arity));
          List.iter
            (fun a ->
              if has_call a then
                err "%s" (where "call nested inside an argument of %S" g);
              check_expr a)
            args);
      if expr_depth e > max_expr_depth then
        err "%s"
          (where "expression needs %d temporaries, limit is %d" (expr_depth e)
             max_expr_depth)
    in
    let check_assign_target x =
      if not (scalar_ok x) then err "%s" (where "unknown variable %S" x)
    in
    let rec check_stmt = function
      | Ast.Set (x, e) ->
          check_assign_target x;
          check_expr e
      | Ast.Set_idx (a, e1, e2) ->
          if not (Hashtbl.mem env.arrays a) then
            err "%s" (where "unknown array %S" a);
          if has_call e1 || has_call e2 then
            err "%s" (where "call inside array store to %S" a);
          check_expr e1;
          check_expr e2;
          (* Codegen keeps the index in temporary 0 and evaluates the
             stored value starting at temporary 1, so the value's
             depth budget is one less than a bare expression's. *)
          if expr_depth e2 + 1 > max_expr_depth then
            err "%s"
              (where "array-store value needs %d temporaries, limit is %d"
                 (expr_depth e2 + 1) max_expr_depth)
      | Ast.If (c, th, el) ->
          if has_call c then err "%s" (where "call inside a condition");
          check_expr c;
          List.iter check_stmt th;
          List.iter check_stmt el
      | Ast.While (c, body) ->
          if has_call c then err "%s" (where "call inside a loop condition");
          check_expr c;
          List.iter check_stmt body
      | Ast.Do e ->
          (match e with
          | Ast.Call _ -> ()
          | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ ->
              err "%s" (where "effect statement must be a call"));
          check_expr e
      | Ast.Ret e -> check_expr e
    in
    List.iter check_stmt f.body
  in
  List.iter check_func program.Ast.funcs;
  (match Hashtbl.find_opt env.funcs "main" with
  | None -> err "no main function"
  | Some 0 -> ()
  | Some n -> err "main must take no parameters, has %d" n);
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn program =
  match check program with
  | Ok () -> ()
  | Error es -> failwith ("minic check failed:\n  " ^ String.concat "\n  " es)
