(** Reaching definitions over the {!Dataflow} solver, specialized to
    what the front-end needs: may-uninitialized uses of locals.

    A definition site is the sid of an [Assign]; every local variable
    additionally receives the pseudo-definition {!uninit_sid} at
    function entry (parameters are defined by the caller, globals by
    their initializers).  A use of a local reached by its
    pseudo-definition may read the variable before any assignment —
    the reference interpreter zero-initializes locals, but compiled
    code inherits whatever the register window holds, so such reads
    are a portability hazard. *)

val uninit_sid : int
(** The pseudo-definition sid representing "uninitialized at entry". *)

module Set : Stdlib.Set.S with type elt = string * int
(** Elements are [(variable, definition sid)]. *)

type result = {
  reach_in : Set.t array;  (** definitions reaching block entry *)
  reach_out : Set.t array;
}

val solve : Cfg.t -> result

val uninitialized_uses : Cfg.t -> (string * int) list
(** [(variable, use sid)] for every use of a local that the
    entry pseudo-definition may reach, deduplicated per variable
    (first use in sid order), sorted by sid.  Uses in terminators
    report the terminator's sid. *)
