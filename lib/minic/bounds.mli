(** Static instruction-mix bounds.

    For a checked program, derives sound per-class {e dynamic
    instruction count} intervals for one complete run: a lower and an
    upper bound on how many instructions of each cost class
    (plain ALU, shift, multiply, load, taken branch, ...) any
    execution can retire.  The walk mirrors {!Codegen}'s emission
    exactly — same [set32] lengths, same compare-and-branch shapes,
    same prologue/epilogue — so on straight-line code the counts are
    exact; control flow joins by interval hull, and loops are scaled
    by trip-count intervals derived from {!Interval} plus
    induction-pattern recognition on the loop condition
    ([x < N] with [x += k] and friends).  Loops the analysis cannot
    bound get an infinite upper count ({!unbounded}).

    The result is target-agnostic: {b counts}, not cycles.
    [Dse.Bounds] prices each class for a concrete microarchitecture
    configuration, giving sound [best-case, worst-case] cycle bounds.

    Soundness caveat: bounds describe {e trap-free} runs.  A run that
    traps (division by zero, bad memory access) stops early and may
    retire fewer instructions than the lower bound. *)

type cnt = { lo : int; hi : int }
(** A saturating count interval; [hi = unbounded] means no upper
    bound.  Invariant: [0 <= lo], [lo <= hi]. *)

val unbounded : int
(** [max_int], the saturated upper count. *)

val cnt_const : int -> cnt

val pp_cnt : Format.formatter -> cnt -> unit

type mix = {
  alu : cnt;  (** single-cycle ALU ops: add/sub/logic, sethi, cmp, mov *)
  shift : cnt;  (** shift ALU ops (may stall without a barrel shifter) *)
  mul : cnt;
  div : cnt;
  load : cnt;
  store : cnt;
  cbr_cmp : cnt;
      (** conditional branches immediately preceded by their cmp
          (these pay the icc-interlock stall when the target has one) *)
  cbr_mat : cnt;
      (** conditional branches inside a compare-materialization
          sequence (never icc-stalled: the preceding mov clears it) *)
  taken : cnt;
      (** taken {e conditional} branches — a pseudo-class costing one
          cycle each, not an instruction *)
  ba : cnt;  (** unconditional branches (always taken) *)
  call : cnt;
  jmpl : cnt;  (** returns *)
  save : cnt;
  restore : cnt;
  halt : cnt;
}
(** Per-class dynamic instruction count intervals. *)

val mix_zero : mix
val mix_add : mix -> mix -> mix

val insns : mix -> cnt
(** Total instructions retired ([taken] excluded — it is not an
    instruction). *)

val pp_mix : Format.formatter -> mix -> unit

type program_summary = {
  mix : mix;  (** whole-program bounds for one run (startup included) *)
  call_depth : int option;
      (** maximum call nesting below [main] ([main] = 0); [None] when
          the call graph is recursive *)
  loops : int;  (** static loop count, after optimization *)
  bounded_loops : int;  (** loops with a finite worst-case trip bound *)
}

val summary : ?level:int -> Ast.program -> program_summary
(** [summary ~level p] analyses [p] after [Optimize.program ~level]
    (default level 0), mirroring [Codegen.compile]'s pipeline.  The
    program must satisfy {!Check.check}. *)

val loop_trips : ?level:int -> Ast.program -> (string * cnt) list
(** Trip-count interval of every loop, paired with its enclosing
    function's name, in pre-order.  Exposed for tests and
    diagnostics. *)
