exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let scratch = Isa.Reg.g 5
let scratch2 = Isa.Reg.g 6

(* Expression-stack temporary for a given depth. *)
let treg depth =
  if depth < 0 then error "negative expression depth"
  else if depth < 6 then Isa.Reg.o depth
  else if depth < Check.max_expr_depth then Isa.Reg.g (depth - 5)
  else error "expression too deep (depth %d)" depth

type genv = {
  asm : Isa.Asm.t;
  globals : (string, int * Ast.elem option) Hashtbl.t;
      (* address, Some elem for arrays, None for scalars *)
  mutable next_label : int;
}

type fenv = { regs : (string, Isa.Reg.t) Hashtbl.t }

let fresh_label g prefix =
  let n = g.next_label in
  g.next_label <- n + 1;
  Printf.sprintf ".L%s%d" prefix n

let emit g insn = Isa.Asm.emit g.asm insn

let mov g src dst =
  if src <> dst then
    emit g (Isa.Insn.Alu { op = Isa.Insn.Or; cc = false; rd = dst; rs1 = Isa.Reg.g0; op2 = Isa.Insn.Reg src })

let alu g op rd rs1 op2 = emit g (Isa.Insn.Alu { op; cc = false; rd; rs1; op2 })

let cmp g rs1 op2 =
  emit g (Isa.Insn.Alu { op = Isa.Insn.Sub; cc = true; rd = Isa.Reg.g0; rs1; op2 })

let fits_simm13 v = v >= -4096 && v <= 4095

let global_addr g name =
  match Hashtbl.find_opt g.globals name with
  | Some (addr, _) -> addr
  | None -> error "unknown global %S" name

let array_elem g name =
  match Hashtbl.find_opt g.globals name with
  | Some (_, Some elem) -> elem
  | Some (_, None) -> error "%S is a scalar, not an array" name
  | None -> error "unknown array %S" name

let cond_of_cmp = function
  | Ast.Lt -> Isa.Insn.Lt
  | Ast.Le -> Isa.Insn.Le
  | Ast.Gt -> Isa.Insn.Gt
  | Ast.Ge -> Isa.Insn.Ge
  | Ast.Eq -> Isa.Insn.Eq
  | Ast.Ne -> Isa.Insn.Ne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      error "not a comparison"

let negate_cond = function
  | Isa.Insn.Lt -> Isa.Insn.Ge
  | Isa.Insn.Ge -> Isa.Insn.Lt
  | Isa.Insn.Le -> Isa.Insn.Gt
  | Isa.Insn.Gt -> Isa.Insn.Le
  | Isa.Insn.Eq -> Isa.Insn.Ne
  | Isa.Insn.Ne -> Isa.Insn.Eq
  | Isa.Insn.Always | Isa.Insn.Gu | Isa.Insn.Leu ->
      error "cannot negate condition"

let is_cmp = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      false

let rec eval g fe depth e =
  let t = treg depth in
  match e with
  | Ast.Int n -> Isa.Asm.set32 g.asm n t
  | Ast.Var x -> (
      match Hashtbl.find_opt fe.regs x with
      | Some r -> mov g r t
      | None ->
          Isa.Asm.set32 g.asm (global_addr g x) t;
          emit g
            (Isa.Insn.Load
               { width = Isa.Insn.Word; signed = false; rd = t; rs1 = t; op2 = Isa.Insn.Imm 0 }))
  | Ast.Idx (a, e1) ->
      eval g fe depth e1;
      let elem = array_elem g a in
      let width =
        match elem with Ast.Word -> Isa.Insn.Word | Ast.Byte -> Isa.Insn.Byte
      in
      if elem = Ast.Word then alu g Isa.Insn.Sll t t (Isa.Insn.Imm 2);
      Isa.Asm.set32 g.asm (global_addr g a) scratch;
      emit g
        (Isa.Insn.Load { width; signed = false; rd = t; rs1 = scratch; op2 = Isa.Insn.Reg t })
  | Ast.Un (op, e1) -> (
      eval g fe depth e1;
      match op with
      | Ast.Neg -> alu g Isa.Insn.Sub t Isa.Reg.g0 (Isa.Insn.Reg t)
      | Ast.Bitnot -> alu g Isa.Insn.Xor t t (Isa.Insn.Imm (-1))
      | Ast.Not ->
          cmp g t (Isa.Insn.Imm 0);
          materialize_cc g t Isa.Insn.Eq)
  | Ast.Bin (op, a, b) -> (
      (* Small-constant right operands become immediates. *)
      let rhs =
        match b with
        | Ast.Int n when fits_simm13 n -> `Imm n
        | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ | Ast.Call _
          ->
            `Reg
      in
      eval g fe depth a;
      let op2 =
        match rhs with
        | `Imm n -> Isa.Insn.Imm n
        | `Reg ->
            eval g fe (depth + 1) b;
            Isa.Insn.Reg (treg (depth + 1))
      in
      match op with
      | Ast.Add -> alu g Isa.Insn.Add t t op2
      | Ast.Sub -> alu g Isa.Insn.Sub t t op2
      | Ast.And -> alu g Isa.Insn.And t t op2
      | Ast.Or -> alu g Isa.Insn.Or t t op2
      | Ast.Xor -> alu g Isa.Insn.Xor t t op2
      | Ast.Shl -> alu g Isa.Insn.Sll t t op2
      | Ast.Shr -> alu g Isa.Insn.Srl t t op2
      | Ast.Mul ->
          emit g (Isa.Insn.Mul { signed = true; cc = false; rd = t; rs1 = t; op2 })
      | Ast.Div ->
          emit g (Isa.Insn.Div { signed = true; rd = t; rs1 = t; op2 })
      | Ast.Mod ->
          (* r = a - (a / b) * b, matching the interpreter. *)
          emit g (Isa.Insn.Div { signed = true; rd = scratch2; rs1 = t; op2 });
          emit g (Isa.Insn.Mul { signed = true; cc = false; rd = scratch2; rs1 = scratch2; op2 });
          alu g Isa.Insn.Sub t t (Isa.Insn.Reg scratch2)
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
          cmp g t op2;
          materialize_cc g t (cond_of_cmp op))
  | Ast.Call _ -> error "call outside statement position"

(* Set [t] to 1 if [cond] holds, else 0 (consumes the current icc). *)
and materialize_cc g t cond =
  let l = fresh_label g "cc" in
  alu g Isa.Insn.Or t Isa.Reg.g0 (Isa.Insn.Imm 1);
  Isa.Asm.bcc g.asm cond l;
  alu g Isa.Insn.Or t Isa.Reg.g0 (Isa.Insn.Imm 0);
  Isa.Asm.label g.asm l

let gen_call g fe f args =
  List.iteri (fun k a -> eval g fe k a) args;
  Isa.Asm.call g.asm ("fn_" ^ f)

(* Branch to [label] when [cond] is false. *)
let gen_branch_false g fe cond label =
  match cond with
  | Ast.Bin (op, a, b) when is_cmp op ->
      let op2 =
        match b with
        | Ast.Int n when fits_simm13 n ->
            eval g fe 0 a;
            Isa.Insn.Imm n
        | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ | Ast.Call _
          ->
            eval g fe 0 a;
            eval g fe 1 b;
            Isa.Insn.Reg (treg 1)
      in
      cmp g (treg 0) op2;
      Isa.Asm.bcc g.asm (negate_cond (cond_of_cmp op)) label
  | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ ->
      eval g fe 0 cond;
      cmp g (treg 0) (Isa.Insn.Imm 0);
      Isa.Asm.bcc g.asm Isa.Insn.Eq label
  | Ast.Call _ -> error "call inside a condition"

let store_scalar g fe x src =
  match Hashtbl.find_opt fe.regs x with
  | Some r -> mov g src r
  | None ->
      Isa.Asm.set32 g.asm (global_addr g x) scratch;
      emit g
        (Isa.Insn.Store
           { width = Isa.Insn.Word; rs = src; rs1 = scratch; op2 = Isa.Insn.Imm 0 })

let rec gen_stmt g fe = function
  | Ast.Set (x, Ast.Call (f, args)) ->
      gen_call g fe f args;
      store_scalar g fe x (Isa.Reg.o 0)
  | Ast.Set (x, e) ->
      eval g fe 0 e;
      store_scalar g fe x (treg 0)
  | Ast.Set_idx (a, ei, ev) ->
      eval g fe 0 ei;
      eval g fe 1 ev;
      let elem = array_elem g a in
      if elem = Ast.Word then alu g Isa.Insn.Sll (treg 0) (treg 0) (Isa.Insn.Imm 2);
      Isa.Asm.set32 g.asm (global_addr g a) scratch;
      let width =
        match elem with Ast.Word -> Isa.Insn.Word | Ast.Byte -> Isa.Insn.Byte
      in
      emit g
        (Isa.Insn.Store { width; rs = treg 1; rs1 = scratch; op2 = Isa.Insn.Reg (treg 0) })
  | Ast.Do (Ast.Call (f, args)) -> gen_call g fe f args
  | Ast.Do _ -> error "effect statement must be a call"
  | Ast.Ret e ->
      (match e with
      | Ast.Call (f, args) -> gen_call g fe f args
      | Ast.Int _ | Ast.Var _ | Ast.Idx _ | Ast.Bin _ | Ast.Un _ ->
          eval g fe 0 e);
      mov g (Isa.Reg.o 0) (Isa.Reg.i 0);
      emit g
        (Isa.Insn.Restore { rd = Isa.Reg.g0; rs1 = Isa.Reg.g0; op2 = Isa.Insn.Reg Isa.Reg.g0 });
      Isa.Asm.ret g.asm
  | Ast.If (c, th, []) ->
      let l_end = fresh_label g "if" in
      gen_branch_false g fe c l_end;
      List.iter (gen_stmt g fe) th;
      Isa.Asm.label g.asm l_end
  | Ast.If (c, th, el) ->
      let l_else = fresh_label g "else" in
      let l_end = fresh_label g "endif" in
      gen_branch_false g fe c l_else;
      List.iter (gen_stmt g fe) th;
      Isa.Asm.ba g.asm l_end;
      Isa.Asm.label g.asm l_else;
      List.iter (gen_stmt g fe) el;
      Isa.Asm.label g.asm l_end
  | Ast.While (c, body) ->
      let l_cond = fresh_label g "while" in
      let l_end = fresh_label g "wend" in
      Isa.Asm.label g.asm l_cond;
      gen_branch_false g fe c l_end;
      List.iter (gen_stmt g fe) body;
      Isa.Asm.ba g.asm l_cond;
      Isa.Asm.label g.asm l_end

let gen_func g (f : Ast.func) =
  Isa.Asm.label g.asm ("fn_" ^ f.name);
  emit g
    (Isa.Insn.Save { rd = Isa.Reg.sp; rs1 = Isa.Reg.sp; op2 = Isa.Insn.Imm (-96) });
  let fe = { regs = Hashtbl.create 8 } in
  List.iteri (fun k p -> Hashtbl.add fe.regs p (Isa.Reg.i k)) f.params;
  List.iteri (fun k l -> Hashtbl.add fe.regs l (Isa.Reg.l k)) f.locals;
  List.iter (gen_stmt g fe) f.body;
  (* Fall-through epilogue: return 0. *)
  alu g Isa.Insn.Or (Isa.Reg.i 0) Isa.Reg.g0 (Isa.Insn.Imm 0);
  emit g
    (Isa.Insn.Restore { rd = Isa.Reg.g0; rs1 = Isa.Reg.g0; op2 = Isa.Insn.Reg Isa.Reg.g0 });
  Isa.Asm.ret g.asm

let bytes_of_words values =
  let b = Bytes.create (4 * Array.length values) in
  Array.iteri
    (fun k v ->
      let v = v land 0xFFFFFFFF in
      Bytes.set_uint16_le b (4 * k) (v land 0xFFFF);
      Bytes.set_uint16_le b ((4 * k) + 2) (v lsr 16))
    values;
  b

let bytes_of_bytes values =
  let b = Bytes.create (Array.length values) in
  Array.iteri (fun k v -> Bytes.set b k (Char.chr (v land 0xFF))) values;
  b

let compile ?(optimize = false) ?level program =
  (match Check.check program with
  | Ok () -> ()
  | Error es -> error "invalid program:\n  %s" (String.concat "\n  " es));
  let level =
    match level with Some l -> l | None -> if optimize then 1 else 0
  in
  let program = Optimize.program ~level program in
  let g =
    { asm = Isa.Asm.create (); globals = Hashtbl.create 16; next_label = 0 }
  in
  let add_global gl =
    let name = Ast.global_name gl in
    let addr, elem =
      match gl with
      | Ast.Scalar (_, init) ->
          (Isa.Asm.data_words g.asm ~name [| init |], None)
      | Ast.Array (_, Ast.Word, len) ->
          (Isa.Asm.data_zero g.asm ~name (4 * len), Some Ast.Word)
      | Ast.Array (_, Ast.Byte, len) ->
          (Isa.Asm.data_zero g.asm ~name len, Some Ast.Byte)
      | Ast.Array_init (_, Ast.Word, values) ->
          (Isa.Asm.data_bytes g.asm ~name (bytes_of_words values), Some Ast.Word)
      | Ast.Array_init (_, Ast.Byte, values) ->
          (Isa.Asm.data_bytes g.asm ~name (bytes_of_bytes values), Some Ast.Byte)
    in
    Hashtbl.add g.globals name (addr, elem)
  in
  List.iter add_global program.Ast.globals;
  (* Startup stub. *)
  Isa.Asm.call g.asm "fn_main";
  emit g Isa.Insn.Halt;
  List.iter (gen_func g) program.Ast.funcs;
  Isa.Asm.finish g.asm ~entry:0
