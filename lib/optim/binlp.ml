type rel = Le | Ge

type lin = { coeffs : (int * float) list; const : float }

type term = Lin of lin | Prod of lin * lin

type constr = { terms : term list; rel : rel; bound : float }

let linear l rel bound = { terms = [ Lin l ]; rel; bound }
let product l1 l2 rel bound = { terms = [ Prod (l1, l2) ]; rel; bound }

type problem = {
  nvars : int;
  objective : float array;
  groups : int list list;
  constraints : constr list;
}

type solution = { x : bool array; objective : float }

exception Node_limit

let eval_lin l x =
  List.fold_left
    (fun acc (j, a) -> if x.(j) then acc +. a else acc)
    l.const l.coeffs

let eval_term x = function
  | Lin l -> eval_lin l x
  | Prod (l1, l2) -> eval_lin l1 x *. eval_lin l2 x

let eval_constr_lhs c x =
  List.fold_left (fun acc t -> acc +. eval_term x t) 0.0 c.terms

let check_constr x c =
  let lhs = eval_constr_lhs c x in
  match c.rel with Le -> lhs <= c.bound +. 1e-9 | Ge -> lhs >= c.bound -. 1e-9

let sos1_ok groups x =
  List.for_all
    (fun g -> List.length (List.filter (fun j -> x.(j)) g) <= 1)
    groups

let check p x = sos1_ok p.groups x && List.for_all (check_constr x) p.constraints

let validate p =
  let seen = Array.make p.nvars false in
  List.iter
    (fun g ->
      List.iter
        (fun j ->
          if j < 0 || j >= p.nvars then invalid_arg "Binlp: index out of range";
          if seen.(j) then invalid_arg "Binlp: overlapping groups";
          seen.(j) <- true)
        g)
    p.groups;
  if Array.length p.objective <> p.nvars then
    invalid_arg "Binlp: objective length mismatch";
  let check_lin l =
    List.iter
      (fun (j, _) ->
        if j < 0 || j >= p.nvars then
          invalid_arg "Binlp: constraint index out of range")
      l.coeffs
  in
  List.iter
    (fun c ->
      List.iter
        (function
          | Lin l -> check_lin l
          | Prod (l1, l2) ->
              check_lin l1;
              check_lin l2)
        c.terms)
    p.constraints;
  seen

(* The effective group list: declared groups plus a singleton group for
   every uncovered variable.  Each group's options are "none" or exactly
   one member. *)
let effective_groups p =
  let covered = validate p in
  let singles = ref [] in
  for j = p.nvars - 1 downto 0 do
    if not covered.(j) then singles := [ j ] :: !singles
  done;
  List.filter (fun g -> g <> []) p.groups @ !singles

let lin_coeff l j =
  List.fold_left (fun acc (k, a) -> if k = j then acc +. a else acc) 0.0 l.coeffs

let interval_min_product (l1, u1) (l2, u2) =
  min (min (l1 *. l2) (l1 *. u2)) (min (u1 *. l2) (u1 *. u2))

let interval_max_product (l1, u1) (l2, u2) =
  max (max (l1 *. l2) (l1 *. u2)) (max (u1 *. l2) (u1 *. u2))

(* One linear factor tracked during search: its current partial value
   and, per depth, the min/max contribution still achievable from the
   remaining groups. *)
type factor = {
  lin : lin;
  mutable value : float;
  smin : float array; (* suffix over groups, length ngroups+1 *)
  smax : float array;
}

type tracked = TLin of factor | TProd of factor * factor

(* Search statistics land in the metrics registry (one flush per solve,
   so the per-node cost of accounting is a plain [incr]); incumbent
   improvements additionally become instant trace events so a Perfetto
   timeline shows when the search last made progress. *)
let m_solves = Obs.Metrics.Counter.v "binlp.solves" ~help:"solver invocations"

let m_nodes =
  Obs.Metrics.Counter.v "binlp.nodes" ~help:"branch-and-bound nodes explored"

let m_pruned_bound =
  Obs.Metrics.Counter.v "binlp.pruned_bound"
    ~help:"subtrees cut by the objective bound"

let m_pruned_validity =
  Obs.Metrics.Counter.v "binlp.pruned_validity"
    ~help:"subtrees cut by constraint interval propagation"

let m_incumbents =
  Obs.Metrics.Counter.v "binlp.incumbents" ~help:"incumbent improvements"

let solve ?(node_limit = 20_000_000) p =
  Obs.Span.with_span ~cat:"optim" "binlp.solve" @@ fun span ->
  let pruned_bound = ref 0 in
  let pruned_validity = ref 0 in
  let incumbents = ref 0 in
  let groups = effective_groups p in
  let ngroups = List.length groups in
  let garr = Array.of_list groups in
  (* Order groups by their best (most negative) objective option so the
     DFS reaches good incumbents early. *)
  let gmin_obj g = List.fold_left (fun acc j -> min acc p.objective.(j)) 0.0 g in
  Array.sort (fun a b -> compare (gmin_obj a) (gmin_obj b)) garr;
  let groups = Array.to_list garr in
  let gmin = Array.map gmin_obj garr in
  let suffix_obj = Array.make (ngroups + 1) 0.0 in
  for i = ngroups - 1 downto 0 do
    suffix_obj.(i) <- suffix_obj.(i + 1) +. gmin.(i)
  done;
  let make_factor l =
    let mins = Array.make ngroups 0.0 and maxs = Array.make ngroups 0.0 in
    List.iteri
      (fun gi g ->
        let contribs = 0.0 :: List.map (fun j -> lin_coeff l j) g in
        mins.(gi) <- List.fold_left min infinity contribs;
        maxs.(gi) <- List.fold_left max neg_infinity contribs)
      groups;
    let smin = Array.make (ngroups + 1) 0.0 in
    let smax = Array.make (ngroups + 1) 0.0 in
    for i = ngroups - 1 downto 0 do
      smin.(i) <- smin.(i + 1) +. mins.(i);
      smax.(i) <- smax.(i + 1) +. maxs.(i)
    done;
    { lin = l; value = l.const; smin; smax }
  in
  let tracked =
    Array.of_list
      (List.map
         (fun c ->
           ( c,
             List.map
               (function
                 | Lin l -> TLin (make_factor l)
                 | Prod (l1, l2) -> TProd (make_factor l1, make_factor l2))
               c.terms ))
         p.constraints)
  in
  let factors =
    Array.of_list
      (List.concat_map
         (fun (_, ts) ->
           List.concat_map
             (function TLin f -> [ f ] | TProd (f1, f2) -> [ f1; f2 ])
             ts)
         (Array.to_list tracked))
  in
  let feasible_possible depth =
    Array.for_all
      (fun (c, ts) ->
        let lo = ref 0.0 and hi = ref 0.0 in
        List.iter
          (fun t ->
            match t with
            | TLin f ->
                lo := !lo +. f.value +. f.smin.(depth);
                hi := !hi +. f.value +. f.smax.(depth)
            | TProd (f1, f2) ->
                let i1 = (f1.value +. f1.smin.(depth), f1.value +. f1.smax.(depth)) in
                let i2 = (f2.value +. f2.smin.(depth), f2.value +. f2.smax.(depth)) in
                lo := !lo +. interval_min_product i1 i2;
                hi := !hi +. interval_max_product i1 i2)
          ts;
        match c.rel with
        | Le -> !lo <= c.bound +. 1e-9
        | Ge -> !hi >= c.bound -. 1e-9)
      tracked
  in
  let apply_choice j sign =
    Array.iter
      (fun f ->
        let c = lin_coeff f.lin j in
        if c <> 0.0 then f.value <- f.value +. (sign *. c))
      factors
  in
  let x = Array.make p.nvars false in
  let best = ref None in
  let best_obj = ref infinity in
  let nodes = ref 0 in
  let rec dfs depth obj =
    incr nodes;
    if !nodes > node_limit then raise Node_limit;
    if obj +. suffix_obj.(depth) >= !best_obj -. 1e-12 then incr pruned_bound
    else if not (feasible_possible depth) then incr pruned_validity
    else if depth = ngroups then begin
      if List.for_all (check_constr x) p.constraints then begin
        let prev_best = !best_obj in
        best_obj := obj;
        best := Some { x = Array.copy x; objective = obj };
        incr incumbents;
        Obs.Span.event ~cat:"optim" "binlp.incumbent"
          ~attrs:
            [
              ("objective", Obs.Json.Float obj);
              ("node", Obs.Json.Int !nodes);
            ];
        Obs.Span.counter ~cat:"optim" "binlp.objective"
          [ ("objective", obj) ];
        if Obs.Journal.enabled () then
          Obs.Journal.record ~kind:"binlp.incumbent"
            [
              ("node", Obs.Json.Int !nodes);
              ("objective", Obs.Json.Float obj);
              ( "bound",
                if Float.is_finite prev_best then Obs.Json.Float prev_best
                else Obs.Json.Null );
            ]
      end
    end
    else begin
      let options =
        List.sort (fun a b -> compare p.objective.(a) p.objective.(b)) garr.(depth)
      in
      let try_member j =
        x.(j) <- true;
        apply_choice j 1.0;
        dfs (depth + 1) (obj +. p.objective.(j));
        apply_choice j (-1.0);
        x.(j) <- false
      in
      let negative, rest = List.partition (fun j -> p.objective.(j) < 0.0) options in
      List.iter try_member negative;
      dfs (depth + 1) obj;
      List.iter try_member rest
    end
  in
  let flush () =
    Obs.Metrics.Counter.incr m_solves;
    Obs.Metrics.Counter.incr ~by:!nodes m_nodes;
    Obs.Metrics.Counter.incr ~by:!pruned_bound m_pruned_bound;
    Obs.Metrics.Counter.incr ~by:!pruned_validity m_pruned_validity;
    Obs.Metrics.Counter.incr ~by:!incumbents m_incumbents;
    Obs.Span.add_attr span "nodes" (Obs.Json.Int !nodes);
    Obs.Span.add_attr span "pruned_bound" (Obs.Json.Int !pruned_bound);
    Obs.Span.add_attr span "pruned_validity" (Obs.Json.Int !pruned_validity);
    Obs.Span.add_attr span "incumbents" (Obs.Json.Int !incumbents);
    if Obs.Journal.enabled () then
      Obs.Journal.record ~kind:"binlp.solve"
        [
          ("nodes", Obs.Json.Int !nodes);
          ("pruned_bound", Obs.Json.Int !pruned_bound);
          ("pruned_validity", Obs.Json.Int !pruned_validity);
          ("incumbents", Obs.Json.Int !incumbents);
          ( "objective",
            match !best with
            | Some s -> Obs.Json.Float s.objective
            | None -> Obs.Json.Null );
        ];
    match !best with
    | Some s -> Obs.Span.add_attr span "objective" (Obs.Json.Float s.objective)
    | None -> ()
  in
  Fun.protect ~finally:flush (fun () -> dfs 0 0.0);
  !best

let brute_force p =
  let groups = effective_groups p in
  let x = Array.make p.nvars false in
  let best = ref None in
  let rec go gs =
    match gs with
    | [] ->
        if List.for_all (check_constr x) p.constraints then begin
          let obj = ref 0.0 in
          Array.iteri (fun j b -> if b then obj := !obj +. p.objective.(j)) x;
          match !best with
          | Some { objective; _ } when objective <= !obj -> ()
          | Some _ | None -> best := Some { x = Array.copy x; objective = !obj }
        end
    | g :: rest ->
        go rest;
        List.iter
          (fun j ->
            x.(j) <- true;
            go rest;
            x.(j) <- false)
          g
  in
  go groups;
  !best
