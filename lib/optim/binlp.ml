type rel = Le | Ge

type lin = { coeffs : (int * float) list; const : float }

type term = Lin of lin | Prod of lin * lin

type constr = { terms : term list; rel : rel; bound : float }

let linear l rel bound = { terms = [ Lin l ]; rel; bound }
let product l1 l2 rel bound = { terms = [ Prod (l1, l2) ]; rel; bound }

type problem = {
  nvars : int;
  objective : float array;
  groups : int list list;
  constraints : constr list;
}

type solution = { x : bool array; objective : float }

type status = Optimal | Node_limit_reached

type outcome = { best : solution option; status : status; nodes : int }

type runner = { workers : int; run_batch : (unit -> unit) list -> unit }

let inline_runner = { workers = 1; run_batch = List.iter (fun f -> f ()) }

let eval_lin l x =
  List.fold_left
    (fun acc (j, a) -> if x.(j) then acc +. a else acc)
    l.const l.coeffs

let eval_term x = function
  | Lin l -> eval_lin l x
  | Prod (l1, l2) -> eval_lin l1 x *. eval_lin l2 x

let eval_constr_lhs c x =
  List.fold_left (fun acc t -> acc +. eval_term x t) 0.0 c.terms

let check_constr x c =
  let lhs = eval_constr_lhs c x in
  match c.rel with Le -> lhs <= c.bound +. 1e-9 | Ge -> lhs >= c.bound -. 1e-9

let sos1_ok groups x =
  List.for_all
    (fun g -> List.length (List.filter (fun j -> x.(j)) g) <= 1)
    groups

let check p x = sos1_ok p.groups x && List.for_all (check_constr x) p.constraints

let validate p =
  let seen = Array.make p.nvars false in
  List.iter
    (fun g ->
      List.iter
        (fun j ->
          if j < 0 || j >= p.nvars then invalid_arg "Binlp: index out of range";
          if seen.(j) then invalid_arg "Binlp: overlapping groups";
          seen.(j) <- true)
        g)
    p.groups;
  if Array.length p.objective <> p.nvars then
    invalid_arg "Binlp: objective length mismatch";
  let check_lin l =
    List.iter
      (fun (j, _) ->
        if j < 0 || j >= p.nvars then
          invalid_arg "Binlp: constraint index out of range")
      l.coeffs
  in
  List.iter
    (fun c ->
      List.iter
        (function
          | Lin l -> check_lin l
          | Prod (l1, l2) ->
              check_lin l1;
              check_lin l2)
        c.terms)
    p.constraints;
  seen

(* The effective group list: declared groups plus a singleton group for
   every uncovered variable.  Each group's options are "none" or exactly
   one member. *)
let effective_groups p =
  let covered = validate p in
  let singles = ref [] in
  for j = p.nvars - 1 downto 0 do
    if not covered.(j) then singles := [ j ] :: !singles
  done;
  List.filter (fun g -> g <> []) p.groups @ !singles

let lin_coeff l j =
  List.fold_left (fun acc (k, a) -> if k = j then acc +. a else acc) 0.0 l.coeffs

let interval_min_product (l1, u1) (l2, u2) =
  min (min (l1 *. l2) (l1 *. u2)) (min (u1 *. l2) (u1 *. u2))

let interval_max_product (l1, u1) (l2, u2) =
  max (max (l1 *. l2) (l1 *. u2)) (max (u1 *. l2) (u1 *. u2))

(* The pinned tie-break: first differing index decides, an unselected
   variable beats a selected one.  Together with the canonical leaf
   objective this gives solve, brute_force and every worker count the
   same winner on equally-optimal problems. *)
let lex_lt a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then false else if a.(i) = b.(i) then go (i + 1) else not a.(i)
  in
  go 0

(* The incumbent objective is always recomputed from the assignment in
   index order — the same summation brute_force uses — so equal optima
   compare bit-exactly regardless of the float-addition order the DFS
   happened to accumulate along its path. *)
let canonical_objective objective x =
  let obj = ref 0.0 in
  Array.iteri (fun j b -> if b then obj := !obj +. objective.(j)) x;
  !obj

let better_solution a b =
  a.objective < b.objective
  || (a.objective = b.objective && lex_lt a.x b.x)

(* One linear factor tracked during search: its current partial value
   and, per depth, the min/max contribution still achievable from the
   remaining groups. *)
type factor = {
  lin : lin;
  mutable value : float;
  smin : float array; (* suffix over groups, length ngroups+1 *)
  smax : float array;
}

type tracked = TLin of factor | TProd of factor * factor

(* Per-task search state.  Every subtree task owns a private copy of
   the assignment and the tracked constraint factors (they are mutated
   in place along the DFS), plus local statistics that are folded into
   the shared totals when the task finishes. *)
type state = {
  x : bool array;
  tracked : (constr * tracked list) array;
  oterms : tracked list;  (* extra objective terms, also in [factors] *)
  factors : factor array;
  mutable snodes : int;
  mutable sflushed : int; (* nodes already reported to the shared total *)
  mutable spruned_bound : int;
  mutable spruned_validity : int;
  mutable sincumbents : int;
}

(* Search statistics land in the metrics registry (one flush per solve,
   so the per-node cost of accounting is a plain increment); incumbent
   improvements additionally become instant trace events so a Perfetto
   timeline shows when the search last made progress. *)
let m_solves = Obs.Metrics.Counter.v "binlp.solves" ~help:"solver invocations"

let m_nodes =
  Obs.Metrics.Counter.v "binlp.nodes" ~help:"branch-and-bound nodes explored"

let m_pruned_bound =
  Obs.Metrics.Counter.v "binlp.pruned_bound"
    ~help:"subtrees cut by the objective bound"

let m_pruned_validity =
  Obs.Metrics.Counter.v "binlp.pruned_validity"
    ~help:"subtrees cut by constraint interval propagation"

let m_incumbents =
  Obs.Metrics.Counter.v "binlp.incumbents" ~help:"incumbent improvements"

let m_tasks =
  Obs.Metrics.Counter.v "binlp.tasks" ~help:"subtree tasks explored"

exception Cancelled

let validate_terms p terms =
  let check_lin l =
    List.iter
      (fun (j, _) ->
        if j < 0 || j >= p.nvars then
          invalid_arg "Binlp: objective term index out of range")
      l.coeffs
  in
  List.iter
    (function
      | Lin l -> check_lin l
      | Prod (l1, l2) ->
          check_lin l1;
          check_lin l2)
    terms

(* The canonical leaf objective: the separable part summed in index
   order plus the extra terms in declaration order — the same
   summation everywhere, so equal optima compare bit-exactly. *)
let leaf_objective objective objective_terms x =
  match objective_terms with
  | [] -> canonical_objective objective x
  | ts ->
      canonical_objective objective x
      +. List.fold_left (fun acc t -> acc +. eval_term x t) 0.0 ts

let solve ?(node_limit = 20_000_000) ?(runner = inline_runner)
    ?(objective_terms = []) p =
  Obs.Span.with_span ~cat:"optim" "binlp.solve" @@ fun span ->
  validate_terms p objective_terms;
  let groups = effective_groups p in
  let ngroups = List.length groups in
  let garr = Array.of_list groups in
  (* Order groups by their best (most negative) objective option so the
     DFS reaches good incumbents early; ties broken by smallest member
     index so the order — and hence the frontier split — is fully
     deterministic. *)
  let gmin_obj g = List.fold_left (fun acc j -> min acc p.objective.(j)) 0.0 g in
  let gkey g = (gmin_obj g, List.fold_left min max_int g) in
  Array.sort (fun a b -> compare (gkey a) (gkey b)) garr;
  let groups = Array.to_list garr in
  let gmin = Array.map gmin_obj garr in
  let suffix_obj = Array.make (ngroups + 1) 0.0 in
  for i = ngroups - 1 downto 0 do
    suffix_obj.(i) <- suffix_obj.(i + 1) +. gmin.(i)
  done;
  (* Branch order inside a group — improving options cheapest-first,
     then "none", then the rest — computed once per solve instead of
     sorting (and allocating) at every node of the hot DFS loop. *)
  let opt_cmp a b =
    let c = compare p.objective.(a) p.objective.(b) in
    if c <> 0 then c else compare a b
  in
  let part sel =
    Array.map
      (fun g ->
        Array.of_list (List.sort opt_cmp (List.filter sel g)))
      garr
  in
  let neg_opts = part (fun j -> p.objective.(j) < 0.0) in
  let rest_opts = part (fun j -> p.objective.(j) >= 0.0) in
  let make_factor l =
    let mins = Array.make ngroups 0.0 and maxs = Array.make ngroups 0.0 in
    List.iteri
      (fun gi g ->
        let contribs = 0.0 :: List.map (fun j -> lin_coeff l j) g in
        mins.(gi) <- List.fold_left min infinity contribs;
        maxs.(gi) <- List.fold_left max neg_infinity contribs)
      groups;
    let smin = Array.make (ngroups + 1) 0.0 in
    let smax = Array.make (ngroups + 1) 0.0 in
    for i = ngroups - 1 downto 0 do
      smin.(i) <- smin.(i + 1) +. mins.(i);
      smax.(i) <- smax.(i + 1) +. maxs.(i)
    done;
    { lin = l; value = l.const; smin; smax }
  in
  let make_state () =
    let mk_tracked = function
      | Lin l -> TLin (make_factor l)
      | Prod (l1, l2) -> TProd (make_factor l1, make_factor l2)
    in
    let tracked =
      Array.of_list
        (List.map (fun c -> (c, List.map mk_tracked c.terms)) p.constraints)
    in
    let oterms = List.map mk_tracked objective_terms in
    let factors_of =
      List.concat_map (function
        | TLin f -> [ f ]
        | TProd (f1, f2) -> [ f1; f2 ])
    in
    let factors =
      Array.of_list
        (List.concat_map (fun (_, ts) -> factors_of ts) (Array.to_list tracked)
        @ factors_of oterms)
    in
    {
      x = Array.make p.nvars false;
      tracked;
      oterms;
      factors;
      snodes = 0;
      sflushed = 0;
      spruned_bound = 0;
      spruned_validity = 0;
      sincumbents = 0;
    }
  in
  let feasible_possible st depth =
    Array.for_all
      (fun (c, ts) ->
        let lo = ref 0.0 and hi = ref 0.0 in
        List.iter
          (fun t ->
            match t with
            | TLin f ->
                lo := !lo +. f.value +. f.smin.(depth);
                hi := !hi +. f.value +. f.smax.(depth)
            | TProd (f1, f2) ->
                let i1 = (f1.value +. f1.smin.(depth), f1.value +. f1.smax.(depth)) in
                let i2 = (f2.value +. f2.smin.(depth), f2.value +. f2.smax.(depth)) in
                lo := !lo +. interval_min_product i1 i2;
                hi := !hi +. interval_max_product i1 i2)
          ts;
        match c.rel with
        | Le -> !lo <= c.bound +. 1e-9
        | Ge -> !hi >= c.bound -. 1e-9)
      st.tracked
  in
  let apply_choice st j sign =
    Array.iter
      (fun f ->
        let c = lin_coeff f.lin j in
        if c <> 0.0 then f.value <- f.value +. (sign *. c))
      st.factors
  in
  (* Shared solver state: the atomic incumbent (CAS below), a cached
     copy of its objective for the per-node bound read, the cooperative
     cancellation flag, and the node/prune totals the tasks fold into. *)
  let incumbent : solution option Atomic.t = Atomic.make None in
  let best_obj = Atomic.make infinity in
  let cancelled = Atomic.make false in
  let limit_hit = Atomic.make false in
  let total_nodes = Atomic.make 0 in
  let total_pruned_bound = Atomic.make 0 in
  let total_pruned_validity = Atomic.make 0 in
  let total_incumbents = Atomic.make 0 in
  let parallel = runner.workers >= 2 && ngroups >= 2 in
  (* Node accounting is chunked under parallel execution (the limit is
     then approximate by at most workers * chunk nodes).  The inline
     path has exactly one task, so its node count IS the total: the
     limit check stays exact without touching an atomic in the hot
     loop. *)
  let chunk = 128 in
  let note_node st =
    st.snodes <- st.snodes + 1;
    if parallel then begin
      if st.snodes - st.sflushed = chunk then begin
        st.sflushed <- st.snodes;
        if Atomic.fetch_and_add total_nodes chunk + chunk > node_limit then begin
          Atomic.set limit_hit true;
          Atomic.set cancelled true
        end
      end;
      if Atomic.get cancelled then raise Cancelled
    end
    else if st.snodes > node_limit then begin
      Atomic.set limit_hit true;
      raise Cancelled
    end
  in
  (* Lower bound on the extra objective terms over all completions of
     the groups at [depth..] — same interval arithmetic as constraint
     propagation, so the prune stays admissible. *)
  let oterm_lb st depth =
    List.fold_left
      (fun acc t ->
        match t with
        | TLin f -> acc +. f.value +. f.smin.(depth)
        | TProd (f1, f2) ->
            let i1 =
              (f1.value +. f1.smin.(depth), f1.value +. f1.smax.(depth))
            in
            let i2 =
              (f2.value +. f2.smin.(depth), f2.value +. f2.smax.(depth))
            in
            acc +. interval_min_product i1 i2)
      0.0 st.oterms
  in
  let offer st =
    let obj = leaf_objective p.objective objective_terms st.x in
    let cand = { x = Array.copy st.x; objective = obj } in
    let rec attempt () =
      let cur = Atomic.get incumbent in
      let improves =
        match cur with None -> true | Some b -> better_solution cand b
      in
      if improves then
        if Atomic.compare_and_set incumbent cur (Some cand) then begin
          (* A racing reader may briefly see the previous (never
             smaller) objective: that only weakens pruning, it cannot
             cut an optimum. *)
          Atomic.set best_obj obj;
          st.sincumbents <- st.sincumbents + 1;
          Obs.Span.event ~cat:"optim" "binlp.incumbent"
            ~attrs:
              [
                ("objective", Obs.Json.Float obj);
                ("node", Obs.Json.Int st.snodes);
              ];
          Obs.Span.counter ~cat:"optim" "binlp.objective"
            [ ("objective", obj) ];
          if Obs.Journal.enabled () then
            Obs.Journal.record ~kind:"binlp.incumbent"
              [
                ("node", Obs.Json.Int st.snodes);
                ("objective", Obs.Json.Float obj);
                ( "bound",
                  match cur with
                  | Some b when Float.is_finite b.objective ->
                      Obs.Json.Float b.objective
                  | Some _ | None -> Obs.Json.Null );
              ]
        end
        else attempt ()
    in
    attempt ()
  in
  let rec dfs st depth obj =
    note_node st;
    (* Strictly-worse prune only: a subtree whose bound ties the
       incumbent may still hold an equal-objective, lexicographically
       smaller assignment, and the tie-break must find it. *)
    let lb =
      match st.oterms with
      | [] -> obj +. suffix_obj.(depth)
      | _ -> obj +. suffix_obj.(depth) +. oterm_lb st depth
    in
    if lb > Atomic.get best_obj +. 1e-12 then
      st.spruned_bound <- st.spruned_bound + 1
    else if not (feasible_possible st depth) then
      st.spruned_validity <- st.spruned_validity + 1
    else if depth = ngroups then begin
      if List.for_all (check_constr st.x) p.constraints then offer st
    end
    else begin
      let try_member j =
        st.x.(j) <- true;
        apply_choice st j 1.0;
        dfs st (depth + 1) (obj +. p.objective.(j));
        apply_choice st j (-1.0);
        st.x.(j) <- false
      in
      Array.iter try_member neg_opts.(depth);
      dfs st (depth + 1) obj;
      Array.iter try_member rest_opts.(depth)
    end
  in
  (* Frontier split: peel off the shallowest prefix of groups whose
     option cross-product yields enough independent subtree tasks to
     feed the workers (capped at depth 3).  Each task replays its
     prefix into a private state and explores the remaining groups,
     pruning against the shared incumbent — so late tasks inherit the
     cuts of whichever task improved it first. *)
  let frontier_depth =
    if not parallel then 0
    else begin
      let d = ref 0 and t = ref 1 in
      while !d < ngroups - 1 && !d < 3 && !t < 8 * runner.workers do
        t :=
          !t
          * (Array.length neg_opts.(!d) + Array.length rest_opts.(!d) + 1);
        incr d
      done;
      !d
    end
  in
  let prefixes =
    if frontier_depth = 0 then [ [] ]
    else begin
      (* -1 encodes "no option of this group"; canonical branch order
         (improving, none, rest) so task 0 is the sequential DFS's
         first dive. *)
      let acc = ref [] in
      let rec enum d prefix =
        if d = frontier_depth then acc := List.rev prefix :: !acc
        else begin
          Array.iter (fun j -> enum (d + 1) (j :: prefix)) neg_opts.(d);
          enum (d + 1) (-1 :: prefix);
          Array.iter (fun j -> enum (d + 1) (j :: prefix)) rest_opts.(d)
        end
      in
      enum 0 [];
      List.rev !acc
    end
  in
  let commit st =
    ignore (Atomic.fetch_and_add total_nodes (st.snodes - st.sflushed));
    ignore (Atomic.fetch_and_add total_pruned_bound st.spruned_bound);
    ignore (Atomic.fetch_and_add total_pruned_validity st.spruned_validity);
    ignore (Atomic.fetch_and_add total_incumbents st.sincumbents)
  in
  let run_prefix prefix () =
    let st = make_state () in
    let obj =
      List.fold_left
        (fun acc j ->
          if j < 0 then acc
          else begin
            st.x.(j) <- true;
            apply_choice st j 1.0;
            acc +. p.objective.(j)
          end)
        0.0 prefix
    in
    (try dfs st frontier_depth obj with Cancelled -> ());
    commit st
  in
  let status () =
    if Atomic.get limit_hit then Node_limit_reached else Optimal
  in
  let flush () =
    let nodes = Atomic.get total_nodes in
    let pruned_bound = Atomic.get total_pruned_bound in
    let pruned_validity = Atomic.get total_pruned_validity in
    let incumbents = Atomic.get total_incumbents in
    Obs.Metrics.Counter.incr m_solves;
    Obs.Metrics.Counter.incr ~by:nodes m_nodes;
    Obs.Metrics.Counter.incr ~by:pruned_bound m_pruned_bound;
    Obs.Metrics.Counter.incr ~by:pruned_validity m_pruned_validity;
    Obs.Metrics.Counter.incr ~by:incumbents m_incumbents;
    Obs.Metrics.Counter.incr ~by:(List.length prefixes) m_tasks;
    Obs.Span.add_attr span "nodes" (Obs.Json.Int nodes);
    Obs.Span.add_attr span "pruned_bound" (Obs.Json.Int pruned_bound);
    Obs.Span.add_attr span "pruned_validity" (Obs.Json.Int pruned_validity);
    Obs.Span.add_attr span "incumbents" (Obs.Json.Int incumbents);
    Obs.Span.add_attr span "workers" (Obs.Json.Int runner.workers);
    Obs.Span.add_attr span "tasks" (Obs.Json.Int (List.length prefixes));
    if Obs.Journal.enabled () then
      Obs.Journal.record ~kind:"binlp.solve"
        [
          ("nodes", Obs.Json.Int nodes);
          ("pruned_bound", Obs.Json.Int pruned_bound);
          ("pruned_validity", Obs.Json.Int pruned_validity);
          ("incumbents", Obs.Json.Int incumbents);
          ( "objective",
            match Atomic.get incumbent with
            | Some s -> Obs.Json.Float s.objective
            | None -> Obs.Json.Null );
          ("workers", Obs.Json.Int runner.workers);
          ("tasks", Obs.Json.Int (List.length prefixes));
          ( "status",
            Obs.Json.String
              (match status () with
              | Optimal -> "optimal"
              | Node_limit_reached -> "node_limit_reached") );
        ];
    match Atomic.get incumbent with
    | Some s -> Obs.Span.add_attr span "objective" (Obs.Json.Float s.objective)
    | None -> ()
  in
  Fun.protect ~finally:flush (fun () ->
      runner.run_batch (List.map run_prefix prefixes));
  {
    best = Atomic.get incumbent;
    status = status ();
    nodes = Atomic.get total_nodes;
  }

let brute_force ?(objective_terms = []) p =
  validate_terms p objective_terms;
  let groups = effective_groups p in
  let x = Array.make p.nvars false in
  let best = ref None in
  let rec go gs =
    match gs with
    | [] ->
        if List.for_all (check_constr x) p.constraints then begin
          let cand =
            {
              x = Array.copy x;
              objective = leaf_objective p.objective objective_terms x;
            }
          in
          match !best with
          | Some b when not (better_solution cand b) -> ()
          | Some _ | None -> best := Some cand
        end
    | g :: rest ->
        go rest;
        List.iter
          (fun j ->
            x.(j) <- true;
            go rest;
            x.(j) <- false)
          g
  in
  go groups;
  !best
