(** Exact branch-and-bound solver for SOS1-structured binary integer
    (non)linear programs — the role TOMLAB /MINLP plays in the paper.

    The problem shape is the paper's Section 4 formulation:

    - binary decision variables [x_0 .. x_{nvars-1}];
    - disjoint SOS1 groups: at most one variable of each group may be 1
      (variables in no group are free binaries);
    - a linear objective to minimize;
    - constraints that are sums of {e terms} compared to a bound, where
      each term is linear ([a.x + a0]) or a {e product} of two linear
      forms — the paper's cache-resource constraint
      [(1 + x1 + 2 x2 + 3 x3) * (sum lambda_i x_i) + ... <= L] needs one
      product term per cache plus linear remainder terms.

    The search enumerates one option per group (including "none"),
    pruning with an admissible objective bound and per-constraint
    interval bounds; leaves are checked exactly, so the returned
    solution is a true optimum.

    {2 Tie-break rule}

    Equally-optimal assignments are ordered by the {e pinned
    tie-break}: the winner is the lexicographically-smallest
    assignment — comparing [x.(0), x.(1), ...] with [false < true] —
    among those with the (bit-exactly) minimal objective, where every
    candidate's objective is recomputed in variable-index order at the
    leaf.  {!solve}, {!brute_force} and the parallel search all apply
    the same rule, so the winner is independent of exploration order
    and worker count, and differential tests may compare assignments,
    not just objectives.

    {2 Parallel search}

    [solve ~runner] splits the group tree at a shallow frontier
    (depth <= 3) into independent subtree tasks and executes them on
    [runner] (in practice [Dse.Pool.solver_runner], a work-stealing
    domain pool).  All tasks share one atomic incumbent: a feasible
    leaf is installed by compare-and-swap under the tie-break order
    above, and every node reads the incumbent objective for bound
    pruning, so late tasks inherit the cuts of early ones.  With
    [runner.workers <= 1] (a single-core host, or no runner) the solve
    runs inline on the calling domain as a single task — the exact
    sequential algorithm.  The returned winner is deterministic and
    identical for every worker count; node/prune {e counts} are
    scheduling-dependent under real parallelism. *)

type rel = Le | Ge

type lin = { coeffs : (int * float) list; const : float }
(** [a.x + const] with sparse coefficients. *)

type term = Lin of lin | Prod of lin * lin

type constr = { terms : term list; rel : rel; bound : float }

val linear : lin -> rel -> float -> constr
val product : lin -> lin -> rel -> float -> constr

type problem = {
  nvars : int;
  objective : float array;
  groups : int list list;   (** disjoint variable index lists *)
  constraints : constr list;
}

type solution = { x : bool array; objective : float }

type status =
  | Optimal  (** the search ran to completion; [best] is a true optimum *)
  | Node_limit_reached
      (** the node budget ran out; [best] is the incumbent found so
          far (graceful degradation), or [None] if no feasible point
          was reached in budget *)

type outcome = {
  best : solution option;  (** [None] iff no feasible point was found *)
  status : status;
  nodes : int;  (** branch-and-bound nodes explored (all tasks) *)
}

type runner = {
  workers : int;
      (** parallelism to split the search for; [<= 1] solves inline *)
  run_batch : (unit -> unit) list -> unit;
      (** execute every task to completion (the calling domain may
          participate); tasks never raise *)
}
(** Execution backend for the parallel search, injected so [optim]
    stays independent of the domain-pool layer.
    [Dse.Pool.solver_runner] adapts a {!Dse.Pool.t}. *)

val inline_runner : runner
(** The default: a single task on the calling domain. *)

val solve :
  ?node_limit:int ->
  ?runner:runner ->
  ?objective_terms:term list ->
  problem ->
  outcome
(** Minimize.  [outcome.best = None] means no assignment satisfies the
    constraints.  When the search exceeds [node_limit] nodes (default
    20 million — far beyond the paper's 52-variable model) it stops
    cooperatively — under parallel execution the limit is approximate
    by at most [workers * 128] nodes — and returns the incumbent with
    [Node_limit_reached] instead of discarding it.

    [objective_terms] (default empty) adds non-separable terms to the
    minimized objective: the objective becomes
    [objective . x + sum_t eval t x], with each term linear or a
    product of two linear forms — the shape the schedule formulation's
    pairwise switch costs need.  Terms are bounded during search by
    the same interval arithmetic as product constraints, so pruning
    stays admissible; with an empty list the search (including node
    counts and the tie-break) is bit-identical to the plain linear
    solve.  The reported [solution.objective] includes the terms.
    @raise Invalid_argument on malformed input (overlapping groups,
    indices out of range). *)

val brute_force : ?objective_terms:term list -> problem -> solution option
(** Reference implementation enumerating every SOS1-respecting
    assignment, applying the same tie-break rule (and the same
    [objective_terms] semantics) as {!solve}; for testing on small
    instances. *)

val eval_lin : lin -> bool array -> float
val eval_constr_lhs : constr -> bool array -> float
val check : problem -> bool array -> bool
(** Do the SOS1 groups and all constraints hold at a point? *)
