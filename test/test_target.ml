(* Target-abstraction laws, checked uniformly over every registered
   backend, plus two regressions the refactor must hold: the engine's
   memo cache keys on target identity (two targets sharing an encoding
   never collide), and the MicroBlaze backend runs the full measure ->
   formulate -> solve -> verify pipeline through the shared
   functorized stack. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- generic laws, one instance per registered target --- *)

let test_codec_roundtrip (module T : Dse.Target.S) () =
  (* A representative slice of the space: the canonical base, the
     exhaustive-sweep geometries, every one-at-a-time perturbation
     that is valid on its own, and a seeded random sample. *)
  let one_at_a_time = List.map (fun v -> v.T.apply T.base) T.vars in
  let rng = Sim.Rng.create ~seed:0x7A46E7 in
  let random = List.init 32 (fun _ -> T.random_config rng) in
  let configs =
    List.filter T.is_valid
      ((T.base :: T.sweep_configs) @ one_at_a_time @ random)
  in
  check_bool "slice is non-trivial" true (List.length configs > 10);
  List.iter
    (fun c ->
      let s = T.to_string c in
      match T.of_string s with
      | Error m -> Alcotest.failf "%s: of_string rejected %S: %s" T.name s m
      | Ok c' ->
          check_bool (Printf.sprintf "%s round-trip of %s" T.name s) true
            (T.equal c c');
          check_string
            (Printf.sprintf "%s digest stable across round-trip of %s" T.name s)
            (Digest.to_hex (T.digest c))
            (Digest.to_hex (T.digest c')))
    configs

let test_couplings (module T : Dse.Target.S) () =
  check_bool (T.name ^ " declares couplings") true (T.couplings <> []);
  List.iter
    (fun (antecedent, consequents) ->
      let a = T.var antecedent in
      check_bool
        (Printf.sprintf "%s: x%d alone on base is invalid" T.name antecedent)
        false
        (T.is_valid (a.T.apply T.base));
      let c = T.var (List.hd consequents) in
      check_bool
        (Printf.sprintf "%s: x%d with x%d is valid" T.name antecedent
           c.T.index)
        true
        (T.is_valid (T.apply_all T.base [ c; a ])))
    T.couplings

let test_base_laws (module T : Dse.Target.S) () =
  check_bool (T.name ^ " base is valid") true (T.is_valid T.base);
  check_bool (T.name ^ " base fits the device") true (T.feasible T.base);
  check_int
    (T.name ^ " var covers 1..var_count")
    T.var_count
    (List.length T.vars);
  List.iteri
    (fun i v -> check_int (T.name ^ " vars are 1-based, ordered") (i + 1) v.T.index)
    T.vars

(* The content address of the canonical base encoding, pinned: a codec
   or default change that silently shifts it would invalidate every
   persisted engine key for the target. *)
let test_digest_pinned () =
  let pinned =
    [
      ("leon2", "f9126793df8d7adf95047e28d3299d46");
      ("microblaze", "41fa7f045d0497e8b50fad6edb04f500");
    ]
  in
  List.iter
    (fun (module T : Dse.Target.S) ->
      match List.assoc_opt T.name pinned with
      | None -> Alcotest.failf "no pinned base digest for target %s" T.name
      | Some hex ->
          check_string
            (T.name ^ " base digest")
            hex
            (Digest.to_hex (T.digest T.base)))
    Dse.Targets.all

(* --- registry --- *)

let test_registry () =
  check_bool "leon2 registered" true (Dse.Targets.find "leon2" <> None);
  check_bool "microblaze registered" true
    (Dse.Targets.find "microblaze" <> None);
  check_bool "unknown target rejected" true (Dse.Targets.find "mips" = None);
  let names = Dse.Targets.names in
  check_int "names match registry" (List.length Dse.Targets.all)
    (List.length names);
  check_bool "names are distinct" true
    (List.length (List.sort_uniq compare names) = List.length names)

(* --- engine memo keys include target identity --- *)

(* Two probes over the same configuration type and the same encoding,
   differing only in the target name: the second must MISS (compute),
   not reuse the first's entry, while a repeat under either name hits. *)
let test_engine_target_collision () =
  let engine = Dse.Engine.create () in
  let app = Apps.Registry.arith in
  let config = Arch.Config.base in
  let counting name counter =
    let p = Dse.Target_leon2.probe in
    {
      p with
      Dse.Target.target = name;
      simulate =
        (fun app c ->
          incr counter;
          p.Dse.Target.simulate app c);
    }
  in
  let na = ref 0 and nb = ref 0 in
  let pa = counting "alpha" na and pb = counting "beta" nb in
  let cost_a = Dse.Engine.eval_on engine pa app config in
  let cost_b = Dse.Engine.eval_on engine pb app config in
  check_int "alpha computed once" 1 !na;
  check_int "beta computed despite identical digest" 1 !nb;
  check_bool "same simulation, same cost" true (cost_a = cost_b);
  ignore (Dse.Engine.eval_on engine pa app config);
  ignore (Dse.Engine.eval_on engine pb app config);
  check_int "alpha repeat is a hit" 1 !na;
  check_int "beta repeat is a hit" 1 !nb

(* --- the second backend runs the full shared pipeline --- *)

module MB = Dse.Stack.Make (Dse.Target_microblaze)

let test_microblaze_pipeline () =
  let module T = Dse.Target_microblaze in
  let model = MB.Measure.build ~dims:T.quick_dims Apps.Registry.arith in
  check_bool "model has one row per quick-dim member" true
    (List.length model.MB.Measure.rows > 0);
  let o = MB.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights model in
  check_bool "recommended configuration is valid" true
    (T.is_valid o.MB.Optimizer.config);
  check_bool "recommended configuration fits the device" true
    (T.feasible o.MB.Optimizer.config);
  check_bool "actually-measured runtime is positive" true
    (o.MB.Optimizer.actual.Dse.Cost.seconds > 0.0);
  check_bool "runtime objective never recommends a slowdown" true
    (o.MB.Optimizer.actual.Dse.Cost.seconds
    <= model.MB.Measure.base.Dse.Cost.seconds +. 1e-9)

let test_microblaze_sweep () =
  let points = MB.Exhaustive.geometry_sweep Apps.Registry.arith in
  check_int "18 dcache geometries" 18 (List.length points);
  let feasible = MB.Exhaustive.feasible_points points in
  check_bool "some geometries fit the small device" true (feasible <> []);
  check_bool "some geometries exceed the small device" true
    (List.length feasible < List.length points);
  let best = MB.Exhaustive.best_runtime points in
  match best.MB.Exhaustive.cost with
  | None -> Alcotest.fail "best point has no cost"
  | Some c -> check_bool "best runtime positive" true (c.Dse.Cost.seconds > 0.0)

(* --- suite --- *)

let per_target (module T : Dse.Target.S) =
  ( "laws:" ^ T.name,
    [
      Alcotest.test_case "codec round-trip + digest" `Quick
        (test_codec_roundtrip (module T));
      Alcotest.test_case "coupling rejection" `Quick
        (test_couplings (module T));
      Alcotest.test_case "base + parameter space" `Quick
        (test_base_laws (module T));
    ] )

let () =
  Alcotest.run "target"
    (List.map per_target Dse.Targets.all
    @ [
        ( "registry",
          [
            Alcotest.test_case "lookup" `Quick test_registry;
            Alcotest.test_case "pinned base digests" `Quick test_digest_pinned;
          ] );
        ( "engine",
          [
            Alcotest.test_case "memo keys include target" `Quick
              test_engine_target_collision;
          ] );
        ( "microblaze",
          [
            Alcotest.test_case "full pipeline on shared stack" `Quick
              test_microblaze_pipeline;
            Alcotest.test_case "geometry sweep" `Quick test_microblaze_sweep;
          ] );
      ])
