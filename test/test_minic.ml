(* minic tests: checker, interpreter semantics, and differential tests
   interpreter vs compiled code on the simulator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let main_of ?(globals = []) ?(funcs = []) ?(locals = []) body =
  {
    Minic.Ast.globals;
    funcs = funcs @ [ { Minic.Ast.name = "main"; params = []; locals; body } ];
  }

let interp p = Minic.Interp.run p

let simulate ?(config = Arch.Config.base) p =
  let prog = Minic.Codegen.compile p in
  let cpu = Sim.Cpu.create config prog ~mem_size:(1 lsl 20) in
  Sim.Cpu.run cpu;
  Sim.Cpu.result cpu

let both ?config p =
  let i = interp p in
  let s = simulate ?config p in
  check_int "interpreter and simulator agree" i s;
  i

(* --- Check --- *)

let test_check_ok () =
  let p = main_of [ Minic.Ast.Ret (Minic.Ast.Int 0) ] in
  check_bool "valid program" true (Result.is_ok (Minic.Check.check p))

let expect_errors p =
  match Minic.Check.check p with
  | Ok () -> Alcotest.fail "expected check errors"
  | Error es -> check_bool "has errors" true (List.length es > 0)

let test_check_no_main () =
  expect_errors { Minic.Ast.globals = []; funcs = [] }

let test_check_unknown_var () =
  expect_errors (main_of [ Minic.Ast.Ret (Minic.Ast.Var "ghost") ])

let test_check_bad_arity () =
  let f = { Minic.Ast.name = "f"; params = [ "x" ]; locals = []; body = [ Minic.Ast.Ret (Minic.Ast.Var "x") ] } in
  expect_errors
    (main_of ~funcs:[ f ] [ Minic.Ast.Ret (Minic.Ast.Call ("f", [])) ])

let test_check_nested_call () =
  let f = { Minic.Ast.name = "f"; params = []; locals = []; body = [ Minic.Ast.Ret (Minic.Ast.Int 1) ] } in
  expect_errors
    (main_of ~funcs:[ f ]
       [ Minic.Ast.Ret (Minic.Ast.Bin (Minic.Ast.Add, Minic.Ast.Call ("f", []), Minic.Ast.Int 1)) ])

let test_check_too_many_locals () =
  expect_errors
    (main_of
       ~locals:[ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i" ]
       [ Minic.Ast.Ret (Minic.Ast.Int 0) ])

let test_check_array_as_scalar () =
  expect_errors
    (main_of
       ~globals:[ Minic.Ast.Array ("arr", Minic.Ast.Word, 4) ]
       [ Minic.Ast.Ret (Minic.Ast.Var "arr") ])

let test_check_depth_limit () =
  (* A right-leaning comb of non-constant operands needs one temp per
     level. *)
  let rec deep n =
    if n = 0 then Minic.Ast.Var "x"
    else Minic.Ast.Bin (Minic.Ast.Add, Minic.Ast.Var "x", deep (n - 1))
  in
  let mk n = main_of ~locals:[ "x" ] [ Minic.Ast.Ret (deep n) ] in
  check_bool "depth 8 ok" true (Result.is_ok (Minic.Check.check (mk 8)));
  expect_errors (mk 12)

let test_check_store_value_depth () =
  (* An array store holds its index in a temporary while the value is
     evaluated, so the value's depth budget is one less than a bare
     expression's. *)
  let rec deep n =
    if n = 0 then Minic.Ast.Var "x"
    else Minic.Ast.Bin (Minic.Ast.Add, Minic.Ast.Var "x", deep (n - 1))
  in
  let mk n =
    main_of
      ~globals:[ Minic.Ast.Array ("a", Minic.Ast.Word, 4) ]
      ~locals:[ "x" ]
      [
        Minic.Ast.Set ("x", Minic.Ast.Int 1);
        Minic.Ast.Set_idx ("a", Minic.Ast.Int 0, deep n);
        Minic.Ast.Ret (Minic.Ast.Int 0);
      ]
  in
  check_bool "store value of depth 9 ok" true
    (Result.is_ok (Minic.Check.check (mk 8)));
  (* one level deeper is fine as a bare expression but not as a store
     value *)
  check_bool "depth 10 ok as a bare expression" true
    (Result.is_ok
       (Minic.Check.check (main_of ~locals:[ "x" ] [ Minic.Ast.Ret (deep 9) ])));
  expect_errors (mk 9)

(* --- Interpreter semantics --- *)

let ret e = main_of [ Minic.Ast.Ret e ]

let test_interp_arith () =
  let open Minic.Ast in
  check_int "add" 7 (interp (ret (i 3 + i 4)));
  check_int "wrap" 0x80000000 (interp (ret (i 0x7FFFFFFF + i 1)));
  check_int "sub wrap" 0xFFFFFFFF (interp (ret (i 0 - i 1)));
  check_int "mul" 42 (interp (ret (i 6 * i 7)));
  check_int "div trunc" ((-3) land 0xFFFFFFFF) (interp (ret (i (-7) / i 2)));
  check_int "mod sign" ((-1) land 0xFFFFFFFF) (interp (ret (i (-7) % i 2)));
  check_int "shl" 40 (interp (ret (i 5 <<< i 3)));
  check_int "shr logical" 1 (interp (ret (i 0x80000000 >>> i 31)));
  check_int "cmp true" 1 (interp (ret (i (-1) < i 0)));
  check_int "cmp false" 0 (interp (ret (i 1 < i 0)))

let test_interp_div_zero () =
  match interp (ret Minic.Ast.(i 1 / i 0)) with
  | exception Minic.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error"

let test_interp_oob () =
  let p =
    main_of
      ~globals:[ Minic.Ast.Array ("a", Minic.Ast.Word, 4) ]
      [ Minic.Ast.Ret (Minic.Ast.idx "a" (Minic.Ast.i 4)) ]
  in
  match interp p with
  | exception Minic.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let test_interp_fuel () =
  let p = main_of [ Minic.Ast.While (Minic.Ast.i 1, []) ] in
  match Minic.Interp.run ~fuel:1000 p with
  | exception Minic.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* --- Differential: hand-written programs --- *)

let test_diff_gcd () =
  let open Minic.Ast in
  let gcd =
    {
      name = "gcd";
      params = [ "a"; "b" ];
      locals = [ "t" ];
      body =
        [
          While
            ( v "b" <> i 0,
              [ Set ("t", v "b"); Set ("b", v "a" % v "b"); Set ("a", v "t") ] );
          Ret (v "a");
        ];
    }
  in
  let p = main_of ~funcs:[ gcd ] [ Ret (Call ("gcd", [ i 252; i 105 ])) ] in
  check_int "gcd result" 21 (both p)

let test_diff_fib_iterative () =
  let open Minic.Ast in
  let p =
    main_of ~locals:[ "a"; "b"; "t"; "n" ]
      [
        Set ("a", i 0);
        Set ("b", i 1);
        Set ("n", i 30);
        While
          ( v "n" > i 0,
            [
              Set ("t", v "a" + v "b");
              Set ("a", v "b");
              Set ("b", v "t");
              Set ("n", v "n" - i 1);
            ] );
        Ret (v "a");
      ]
  in
  check_int "fib 30" 832040 (both p)

let test_diff_recursion_traps () =
  (* Recursive fib to depth > 8 windows: exercises overflow/underflow
     traps; the result must still match the interpreter. *)
  let open Minic.Ast in
  let fib =
    {
      name = "fib";
      params = [ "n" ];
      locals = [ "x" ];
      body =
        [
          If (v "n" < i 2, [ Ret (v "n") ], []);
          Set ("x", Call ("fib", [ v "n" - i 1 ]));
          Set ("x", v "x" + Var "y_tmp");
          Ret (v "x");
        ];
    }
  in
  (* fib needs the second recursive call's value; use a global scalar
     as the carrier since expressions cannot contain calls. *)
  let fib =
    {
      fib with
      body =
        [
          If (v "n" < i 2, [ Ret (v "n") ], []);
          Set ("x", Call ("fib", [ v "n" - i 1 ]));
          Set ("y_tmp", Call ("fib", [ v "n" - i 2 ]));
          Ret (v "x" + v "y_tmp");
        ];
    }
  in
  let p =
    {
      Minic.Ast.globals = [ Scalar ("y_tmp", 0) ];
      funcs =
        [ fib; { name = "main"; params = []; locals = []; body = [ Ret (Call ("fib", [ i 15 ])) ] } ];
    }
  in
  check_int "fib 15" 610 (both p)

let test_diff_arrays () =
  let open Minic.Ast in
  let p =
    main_of
      ~globals:[ Array ("a", Word, 64) ]
      ~locals:[ "k"; "s" ]
      [
        Set ("k", i 0);
        While
          (v "k" < i 64, [ Set_idx ("a", v "k", v "k" * v "k"); Set ("k", v "k" + i 1) ]);
        Set ("s", i 0);
        Set ("k", i 0);
        While
          (v "k" < i 64, [ Set ("s", v "s" + idx "a" (v "k")); Set ("k", v "k" + i 1) ]);
        Ret (v "s");
      ]
  in
  (* sum of squares 0..63 *)
  check_int "sum of squares" 85344 (both p)

let test_diff_byte_arrays () =
  let open Minic.Ast in
  let p =
    main_of
      ~globals:[ Array_init ("b", Byte, [| 1; 250; 7; 255; 128 |]) ]
      ~locals:[ "k"; "s" ]
      [
        Set ("s", i 0);
        Set ("k", i 0);
        While
          (v "k" < i 5, [ Set ("s", v "s" + idx "b" (v "k")); Set ("k", v "k" + i 1) ]);
        Ret (v "s");
      ]
  in
  check_int "byte array sum (unsigned)" 641 (both p)

let test_diff_word_init () =
  let open Minic.Ast in
  let p =
    main_of
      ~globals:[ Array_init ("w", Word, [| -1; 2; 0x7FFFFFFF |]) ]
      [ Ret (idx "w" (i 0) + idx "w" (i 1) + idx "w" (i 2)) ]
  in
  check_int "word init wrap" 0x80000000 (both p)

let test_diff_unops () =
  let p =
    let open Minic.Ast in
    main_of ~locals:[ "x" ]
      [
        Set ("x", i 5);
        Ret
          (Un (Neg, v "x")
          + (Un (Bitnot, v "x") &&& i 0xFF)
          + (Un (Not, v "x") <<< i 16)
          + (Un (Not, i 0) <<< i 8));
      ]
  in
  check_int "unops" (Stdlib.( land ) (Stdlib.( + ) (Stdlib.( + ) (-5) 0xFA) 256) 0xFFFFFFFF) (both p)

let test_diff_conditionals () =
  let open Minic.Ast in
  let p =
    main_of ~locals:[ "x"; "r" ]
      [
        Set ("x", i (-3));
        If (v "x" < i 0, [ Set ("r", i 1) ], [ Set ("r", i 2) ]);
        If (v "x" = i (-3), [ Set ("r", v "r" + i 10) ], []);
        If (v "x" > i 100, [ Set ("r", i 999) ], []);
        Ret (v "r");
      ]
  in
  check_int "conditionals" 11 (both p)

let test_diff_global_scalars () =
  let open Minic.Ast in
  let bump =
    { name = "bump"; params = []; locals = []; body = [ Set ("g", v "g" + i 7); Ret (i 0) ] }
  in
  let p =
    {
      Minic.Ast.globals = [ Scalar ("g", 100) ];
      funcs =
        [
          bump;
          {
            name = "main";
            params = [];
            locals = [];
            body = [ Do (Call ("bump", [])); Do (Call ("bump", [])); Ret (v "g") ];
          };
        ];
    }
  in
  check_int "global scalar updates" 114 (both p)

let test_diff_six_params () =
  let open Minic.Ast in
  let f =
    {
      name = "f";
      params = [ "a"; "b"; "c"; "d"; "e"; "g" ];
      locals = [];
      body = [ Ret (v "a" + (v "b" * i 2) + (v "c" * i 3) + (v "d" * i 4) + (v "e" * i 5) + (v "g" * i 6)) ];
    }
  in
  let p = main_of ~funcs:[ f ] [ Ret (Call ("f", [ i 1; i 2; i 3; i 4; i 5; i 6 ])) ] in
  check_int "six parameters" 91 (both p)

let test_diff_fallthrough_returns_zero () =
  let p = main_of [ Minic.Ast.Set ("x", Minic.Ast.i 5) ] in
  let p = { p with Minic.Ast.globals = [ Minic.Ast.Scalar ("x", 0) ] } in
  check_int "implicit return 0" 0 (both p)

(* --- Differential: random expressions (qcheck) --- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Minic.Ast.Int n) (int_range (-1000) 1000);
        map (fun n -> Minic.Ast.Int n) (int_range (-0x40000000) 0x3FFFFFFF);
        oneofl [ Minic.Ast.Var "a"; Minic.Ast.Var "b"; Minic.Ast.Var "c" ];
      ]
  in
  let safe_ops =
    [ Minic.Ast.Add; Minic.Ast.Sub; Minic.Ast.Mul; Minic.Ast.And; Minic.Ast.Or;
      Minic.Ast.Xor; Minic.Ast.Shl; Minic.Ast.Shr; Minic.Ast.Lt; Minic.Ast.Le;
      Minic.Ast.Gt; Minic.Ast.Ge; Minic.Ast.Eq; Minic.Ast.Ne ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 4,
            oneofl safe_ops >>= fun op ->
            expr (n - 1) >>= fun a ->
            expr (n - 1) >>= fun b -> return (Minic.Ast.Bin (op, a, b)) );
          ( 1,
            (* Division by a nonzero constant is always safe. *)
            expr (n - 1) >>= fun a ->
            oneofl [ Minic.Ast.Div; Minic.Ast.Mod ] >>= fun op ->
            int_range 1 999 >>= fun d ->
            oneofl [ d; -d ] >>= fun d ->
            return (Minic.Ast.Bin (op, a, Minic.Ast.Int d)) );
          ( 1,
            oneofl [ Minic.Ast.Neg; Minic.Ast.Not; Minic.Ast.Bitnot ] >>= fun op ->
            expr (n - 1) >>= fun a -> return (Minic.Ast.Un (op, a)) );
        ]
  in
  expr 3

let test_diff_random_exprs () =
  let arb = QCheck.make ~print:(Fmt.to_to_string Minic.Ast.pp_expr) gen_expr in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"interp = compiled for random expressions"
       arb
       (fun e ->
         let p =
           let open Minic.Ast in
           main_of ~locals:[ "a"; "b"; "c" ]
             [
               Set ("a", i 12345);
               Set ("b", i (-777));
               Set ("c", i 0x0F0F0F0F);
               Ret e;
             ]
         in
         match Minic.Check.check p with
         | Error _ -> QCheck.assume_fail ()
         | Ok () -> interp p = simulate p))

let test_diff_random_exprs_as_conditions () =
  let arb = QCheck.make ~print:(Fmt.to_to_string Minic.Ast.pp_expr) gen_expr in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:150 ~name:"random expression as branch condition"
       arb
       (fun e ->
         let p =
           let open Minic.Ast in
           main_of ~locals:[ "a"; "b"; "c" ]
             [
               Set ("a", i 99);
               Set ("b", i 3);
               Set ("c", i (-1));
               If (e, [ Ret (i 111) ], [ Ret (i 222) ]);
             ]
         in
         match Minic.Check.check p with
         | Error _ -> QCheck.assume_fail ()
         | Ok () -> interp p = simulate p))

(* --- Differential: random structured programs (semantic fuzzing) ---

   Programs are generated to be safe by construction: loops are bounded
   counters, array indices are masked to the array size, divisions use
   nonzero constants.  The interpreter result must match the compiled,
   simulated result on every one. *)

let gen_structured_program =
  let open QCheck.Gen in
  let scalars = [ "a"; "b"; "c"; "s" ] in
  let value = int_range (-10000) 10000 in
  let leaf =
    oneof
      [
        map (fun v -> Minic.Ast.Int v) value;
        oneofl (List.map (fun x -> Minic.Ast.Var x) scalars);
        (* masked array read: always in bounds *)
        ( oneofl (List.map (fun x -> Minic.Ast.Var x) scalars) >>= fun ix ->
          return (Minic.Ast.Idx ("arr", Minic.Ast.Bin (Minic.Ast.And, ix, Minic.Ast.Int 15))) );
      ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 4,
            oneofl
              [ Minic.Ast.Add; Minic.Ast.Sub; Minic.Ast.Mul; Minic.Ast.And;
                Minic.Ast.Or; Minic.Ast.Xor; Minic.Ast.Shl; Minic.Ast.Shr;
                Minic.Ast.Lt; Minic.Ast.Le; Minic.Ast.Gt; Minic.Ast.Ge;
                Minic.Ast.Eq; Minic.Ast.Ne ]
            >>= fun op ->
            expr (n - 1) >>= fun x ->
            expr (n - 1) >>= fun y -> return (Minic.Ast.Bin (op, x, y)) );
          ( 1,
            expr (n - 1) >>= fun x ->
            oneofl [ Minic.Ast.Div; Minic.Ast.Mod ] >>= fun op ->
            int_range 1 500 >>= fun d ->
            return (Minic.Ast.Bin (op, x, Minic.Ast.Int d)) );
        ]
  in
  let assign =
    oneof
      [
        ( oneofl scalars >>= fun x ->
          expr 2 >>= fun e -> return (Minic.Ast.Set (x, e)) );
        ( oneofl (List.map (fun x -> Minic.Ast.Var x) scalars) >>= fun ix ->
          expr 2 >>= fun e ->
          return
            (Minic.Ast.Set_idx
               ("arr", Minic.Ast.Bin (Minic.Ast.And, ix, Minic.Ast.Int 15), e)) );
      ]
  in
  let rec stmts depth n =
    if n = 0 then return []
    else
      let simple = assign in
      let compound =
        if depth = 0 then assign
        else
          frequency
            [
              (2, assign);
              ( 1,
                expr 1 >>= fun c ->
                stmts (depth - 1) 2 >>= fun th ->
                stmts (depth - 1) 2 >>= fun el ->
                return (Minic.Ast.If (c, th, el)) );
              ( 1,
                (* bounded loop on a dedicated counter *)
                int_range 1 8 >>= fun bound ->
                oneofl [ "k1"; "k2" ] >>= fun k ->
                stmts (depth - 1) 2 >>= fun body ->
                return
                  (Minic.Ast.While
                     ( Minic.Ast.Bin (Minic.Ast.Lt, Minic.Ast.Var k, Minic.Ast.Int bound),
                       body @ [ Minic.Ast.Set (k, Minic.Ast.Bin (Minic.Ast.Add, Minic.Ast.Var k, Minic.Ast.Int 1)) ] )) );
            ]
      in
      (if depth = 0 then simple else compound) >>= fun st ->
      stmts depth (n - 1) >>= fun rest -> return (st :: rest)
  in
  list_size (return 16) value >>= fun init ->
  value >>= fun a0 ->
  value >>= fun b0 ->
  stmts 2 6 >>= fun body ->
  let prologue =
    [
      Minic.Ast.Set ("a", Minic.Ast.Int a0);
      Minic.Ast.Set ("b", Minic.Ast.Int b0);
      Minic.Ast.Set ("c", Minic.Ast.Int 7);
      Minic.Ast.Set ("s", Minic.Ast.Int 0);
      Minic.Ast.Set ("k1", Minic.Ast.Int 0);
      Minic.Ast.Set ("k2", Minic.Ast.Int 0);
    ]
  in
  let epilogue =
    [
      Minic.Ast.Ret
        Minic.Ast.(
          v "a" + v "b" + v "c" + v "s"
          + idx "arr" (v "a" &&& i 15)
          + idx "arr" (i 3));
    ]
  in
  return
    {
      Minic.Ast.globals = [ Minic.Ast.Array_init ("arr", Minic.Ast.Word, Array.of_list init) ];
      funcs =
        [
          {
            Minic.Ast.name = "main";
            params = [];
            locals = [ "a"; "b"; "c"; "s"; "k1"; "k2" ];
            body = prologue @ body @ epilogue;
          };
        ];
    }

let structured_diff_qtest =
  QCheck.Test.make ~count:250
    ~name:"interp = compiled for random structured programs"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_structured_program)
    (fun p ->
      match Minic.Check.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          match Minic.Interp.run ~fuel:10_000_000 p with
          | exception Minic.Interp.Runtime_error _ -> QCheck.assume_fail ()
          | expected -> expected = simulate p))

(* --- Optimizer --- *)

let test_opt_folding () =
  let eq = Stdlib.( = ) in
  let check_rw name got want = check_bool name true (eq got want) in
  let open Minic.Ast in
  let o = Minic.Optimize.expr in
  check_rw "constant add" (o (i 2 + i 3)) (Int 5);
  check_rw "nested" (o ((i 2 + i 3) * (i 4 - i 1))) (Int 15);
  check_bool "div by zero not folded" false (eq (o (i 1 / i 0)) (Int 0));
  check_rw "x + 0" (o (v "x" + i 0)) (Var "x");
  check_rw "0 + x" (o (i 0 + v "x")) (Var "x");
  check_rw "x * 0" (o (v "x" * i 0)) (Int 0);
  check_rw "x * 1" (o (v "x" * i 1)) (Var "x");
  check_rw "x * 8 -> shl" (o (v "x" * i 8)) (Bin (Shl, Var "x", Int 3));
  check_rw "x & -1" (o (v "x" &&& i (-1))) (Var "x");
  check_rw "not of cmp inverted" (o (Un (Not, v "x" < i 5))) (Bin (Ge, Var "x", Int 5));
  check_rw "comparison folds" (o (i 3 < i 5)) (Int 1);
  check_rw "double negation" (o (Un (Neg, Un (Neg, v "x")))) (Var "x")

let test_opt_statements () =
  let eq = Stdlib.( = ) in
  let check_rw name got want = check_bool name true (eq got want) in
  let open Minic.Ast in
  check_rw "dead self-assign" (Minic.Optimize.stmt (Set ("x", v "x"))) [];
  check_rw "if true takes then"
    (Minic.Optimize.stmt (If (i 1, [ Set ("a", i 1) ], [ Set ("a", i 2) ])))
    [ Set ("a", Int 1) ];
  check_rw "if false takes else"
    (Minic.Optimize.stmt (If (i 0, [ Set ("a", i 1) ], [ Set ("a", i 2) ])))
    [ Set ("a", Int 2) ];
  check_rw "while false vanishes"
    (Minic.Optimize.stmt (While (i 0, [ Set ("a", i 1) ])))
    []

let test_opt_preserves_benchmarks () =
  (* Semantics preserved on the real applications. *)
  List.iter
    (fun app ->
      let src = app.Apps.Registry.source in
      check_int
        (app.Apps.Registry.name ^ " optimized semantics")
        (Minic.Interp.run src)
        (Minic.Interp.run (Minic.Optimize.program src)))
    (Apps.Registry.all @ Apps.Extra.all)

let test_opt_reduces_cycles () =
  (* A program full of foldable arithmetic must get faster. *)
  let p =
    let open Minic.Ast in
    main_of ~locals:[ "s"; "k" ]
      [
        Set ("s", i 0);
        Set ("k", i 0);
        While
          ( v "k" < i 1000,
            [
              Set ("s", v "s" + (v "k" * (i 2 + i 2)) + (i 10 - i 10));
              Set ("k", v "k" + (i 3 - i 2));
            ] );
        Ret (v "s");
      ]
  in
  let cycles optimize =
    let prog = Minic.Codegen.compile ~optimize p in
    let cpu = Sim.Cpu.create Arch.Config.base prog ~mem_size:(1 lsl 20) in
    Sim.Cpu.run cpu;
    ((Sim.Cpu.profile cpu).Sim.Profiler.cycles, Sim.Cpu.result cpu)
  in
  let c0, r0 = cycles false and c1, r1 = cycles true in
  check_int "same result" r0 r1;
  check_bool
    (Printf.sprintf "fewer cycles (%d -> %d)" c0 c1)
    true (c1 < c0);
  (* the k*4 multiply became a shift: no Mul should survive in main *)
  let prog = Minic.Codegen.compile ~optimize:true p in
  Array.iter
    (fun insn ->
      match insn with
      | Isa.Insn.Mul _ -> Alcotest.fail "multiply not strength-reduced"
      | _ -> ())
    prog.Isa.Program.code

let opt_idempotent_qtest =
  QCheck.Test.make ~count:200 ~name:"optimizer is idempotent"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_structured_program)
    (fun p ->
      let q = Minic.Optimize.program p in
      Minic.Optimize.program q = q)

let opt_diff_qtest =
  QCheck.Test.make ~count:250
    ~name:"optimizer preserves semantics on random structured programs"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_structured_program)
    (fun p ->
      match Minic.Check.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          match Minic.Interp.run ~fuel:10_000_000 p with
          | exception Minic.Interp.Runtime_error _ -> QCheck.assume_fail ()
          | expected ->
              let q = Minic.Optimize.program p in
              Minic.Interp.run ~fuel:10_000_000 q = expected
              && simulate q = expected))

(* --- Level-2 (dataflow) optimization --- *)

let main_body p =
  let f =
    List.find (fun f -> String.equal f.Minic.Ast.name "main") p.Minic.Ast.funcs
  in
  f.Minic.Ast.body

let rec count_stmts ss =
  List.fold_left
    (fun n s ->
      n + 1
      +
      match s with
      | Minic.Ast.If (_, th, el) -> count_stmts th + count_stmts el
      | Minic.Ast.While (_, body) -> count_stmts body
      | _ -> 0)
    0 ss

let test_opt2_dce_and_branch_folding () =
  let p =
    let open Minic.Ast in
    main_of ~locals:[ "a"; "b" ]
      [
        Set ("a", i 5);
        Set ("b", v "a" + i 1);
        (* dead: b is never read *)
        If (v "a" < i 3, [ Set ("a", i 100) ], [ Set ("a", v "a" + i 1) ]);
        Ret (v "a");
      ]
  in
  let q = Minic.Optimize.program ~level:2 p in
  check_int "semantics preserved" (interp p) (interp q);
  check_int "simulator agrees" (interp p) (simulate q);
  check_bool "statements removed" true
    (count_stmts (main_body q) < count_stmts (main_body p));
  check_bool "constant branch folded away" true
    (not
       (List.exists
          (function Minic.Ast.If _ -> true | _ -> false)
          (main_body q)))

let test_opt2_unreachable_loop_removed () =
  let p =
    let open Minic.Ast in
    main_of ~locals:[ "k"; "s" ]
      [
        Set ("s", i 7);
        Set ("k", i 1);
        While (v "k" < i 0, [ Set ("s", v "s" + i 1) ]);
        (* never runs *)
        Ret (v "s");
      ]
  in
  let q = Minic.Optimize.program ~level:2 p in
  check_int "semantics preserved" (interp p) (interp q);
  check_bool "dead loop removed" true
    (not
       (List.exists
          (function Minic.Ast.While _ -> true | _ -> false)
          (main_body q)))

let test_opt2_keeps_trapping_store () =
  (* x is dead, but its right-hand side may divide by zero: removing
     the store would turn a trapping program into a returning one. *)
  let p =
    let open Minic.Ast in
    main_of
      ~globals:[ Array_init ("arr", Word, [| 0 |]) ]
      ~locals:[ "b"; "x" ]
      [
        Set ("b", idx "arr" (i 0));
        Set ("x", i 7 / v "b");
        Ret (i 1);
      ]
  in
  let q = Minic.Optimize.program ~level:2 p in
  let traps p =
    match Minic.Interp.run p with
    | exception Minic.Interp.Runtime_error _ -> true
    | _ -> false
  in
  check_bool "original traps" true (traps p);
  check_bool "optimized still traps" true (traps q)

let opt2_idempotent_qtest =
  QCheck.Test.make ~count:100 ~name:"level-2 optimizer is idempotent"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_structured_program)
    (fun p ->
      let q = Minic.Optimize.program ~level:2 p in
      Minic.Optimize.program ~level:2 q = q)

let opt2_diff_qtest =
  QCheck.Test.make ~count:250
    ~name:"level-2 optimizer preserves semantics on random structured programs"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_structured_program)
    (fun p ->
      match Minic.Check.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          match Minic.Interp.run ~fuel:10_000_000 p with
          | exception Minic.Interp.Runtime_error _ -> QCheck.assume_fail ()
          | expected ->
              let q = Minic.Optimize.program ~level:2 p in
              Minic.Interp.run ~fuel:10_000_000 q = expected
              && simulate q = expected))

let test_opt2_preserves_benchmarks () =
  List.iter
    (fun app ->
      let src = app.Apps.Registry.source in
      check_int
        (app.Apps.Registry.name ^ " level-2 semantics")
        (Minic.Interp.run src)
        (Minic.Interp.run (Minic.Optimize.program ~level:2 src)))
    (Apps.Registry.all @ Apps.Extra.all)

(* Compiled code must be identical in *result* across configurations. *)
let test_config_invariance () =
  let open Minic.Ast in
  let p =
    main_of
      ~globals:[ Array ("a", Word, 256) ]
      ~locals:[ "k"; "s" ]
      [
        Set ("k", i 0);
        While
          ( v "k" < i 256,
            [ Set_idx ("a", v "k", (v "k" * i 2654435761) ^^^ i 0x5A5A); Set ("k", v "k" + i 1) ] );
        Set ("s", i 0);
        Set ("k", i 0);
        While
          ( v "k" < i 256,
            [ Set ("s", v "s" + idx "a" (v "k" ^^^ i 85)); Set ("k", v "k" + i 1) ] );
        Ret (v "s");
      ]
  in
  let expected = interp p in
  let configs =
    Arch.Config.base
    :: List.filter_map
         (fun v ->
           let c = v.Arch.Param.apply Arch.Config.base in
           if Arch.Config.is_valid c then Some c else None)
         Arch.Param.all
  in
  List.iter
    (fun c -> check_int "result independent of configuration" expected (simulate ~config:c p))
    configs

let () =
  Alcotest.run "minic"
    [
      ( "check",
        [
          Alcotest.test_case "valid program" `Quick test_check_ok;
          Alcotest.test_case "no main" `Quick test_check_no_main;
          Alcotest.test_case "unknown var" `Quick test_check_unknown_var;
          Alcotest.test_case "bad arity" `Quick test_check_bad_arity;
          Alcotest.test_case "nested call" `Quick test_check_nested_call;
          Alcotest.test_case "too many locals" `Quick test_check_too_many_locals;
          Alcotest.test_case "array as scalar" `Quick test_check_array_as_scalar;
          Alcotest.test_case "depth limit" `Quick test_check_depth_limit;
          Alcotest.test_case "store value depth" `Quick
            test_check_store_value_depth;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "div by zero" `Quick test_interp_div_zero;
          Alcotest.test_case "bounds" `Quick test_interp_oob;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "folding" `Quick test_opt_folding;
          Alcotest.test_case "statements" `Quick test_opt_statements;
          Alcotest.test_case "benchmarks preserved" `Quick test_opt_preserves_benchmarks;
          Alcotest.test_case "reduces cycles" `Quick test_opt_reduces_cycles;
          Alcotest.test_case "level-2 DCE and branch folding" `Quick
            test_opt2_dce_and_branch_folding;
          Alcotest.test_case "level-2 dead loop" `Quick
            test_opt2_unreachable_loop_removed;
          Alcotest.test_case "level-2 keeps trapping store" `Quick
            test_opt2_keeps_trapping_store;
          Alcotest.test_case "level-2 benchmarks preserved" `Quick
            test_opt2_preserves_benchmarks;
        ] );
      ( "differential",
        [
          Alcotest.test_case "gcd" `Quick test_diff_gcd;
          Alcotest.test_case "fib iterative" `Quick test_diff_fib_iterative;
          Alcotest.test_case "fib recursive traps" `Quick test_diff_recursion_traps;
          Alcotest.test_case "arrays" `Quick test_diff_arrays;
          Alcotest.test_case "byte arrays" `Quick test_diff_byte_arrays;
          Alcotest.test_case "word init" `Quick test_diff_word_init;
          Alcotest.test_case "unary ops" `Quick test_diff_unops;
          Alcotest.test_case "conditionals" `Quick test_diff_conditionals;
          Alcotest.test_case "global scalars" `Quick test_diff_global_scalars;
          Alcotest.test_case "six parameters" `Quick test_diff_six_params;
          Alcotest.test_case "fallthrough" `Quick test_diff_fallthrough_returns_zero;
          Alcotest.test_case "random exprs" `Quick test_diff_random_exprs;
          QCheck_alcotest.to_alcotest structured_diff_qtest;
          QCheck_alcotest.to_alcotest opt_diff_qtest;
          QCheck_alcotest.to_alcotest opt_idempotent_qtest;
          QCheck_alcotest.to_alcotest opt2_diff_qtest;
          QCheck_alcotest.to_alcotest opt2_idempotent_qtest;
          Alcotest.test_case "random conditions" `Quick test_diff_random_exprs_as_conditions;
          Alcotest.test_case "config invariance" `Quick test_config_invariance;
        ] );
    ]
