(* Tests for the optimization substrate: simplex LP and the exact
   branch-and-bound BINLP solver. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* --- Simplex --- *)

let lp objective constraints = { Optim.Simplex.objective; constraints }

type opt = { objective : float; x : float array }

let expect_optimal outcome =
  match outcome with
  | Optim.Simplex.Optimal { objective; x } -> { objective; x }
  | Optim.Simplex.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Optim.Simplex.Unbounded -> Alcotest.fail "unexpectedly unbounded"

let test_simplex_basic () =
  (* max x + y st x <= 3, y <= 2  ==  min -x - y *)
  let p =
    lp [| -1.0; -1.0 |]
      [
        ([| 1.0; 0.0 |], Optim.Simplex.Le, 3.0);
        ([| 0.0; 1.0 |], Optim.Simplex.Le, 2.0);
      ]
  in
  let o = expect_optimal (Optim.Simplex.solve p) in
  check_float "objective" (-5.0) o.objective;
  check_float "x" 3.0 o.x.(0);
  check_float "y" 2.0 o.x.(1)

let test_simplex_textbook () =
  (* Classic: max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6). *)
  let p =
    lp [| -3.0; -5.0 |]
      [
        ([| 1.0; 0.0 |], Optim.Simplex.Le, 4.0);
        ([| 0.0; 2.0 |], Optim.Simplex.Le, 12.0);
        ([| 3.0; 2.0 |], Optim.Simplex.Le, 18.0);
      ]
  in
  let o = expect_optimal (Optim.Simplex.solve p) in
  check_float "objective" (-36.0) o.objective;
  check_float "x" 2.0 o.x.(0);
  check_float "y" 6.0 o.x.(1)

let test_simplex_ge_eq () =
  (* min 2x + 3y st x + y >= 4, x - y = 1  -> x=2.5, y=1.5, obj 9.5 *)
  let p =
    lp [| 2.0; 3.0 |]
      [
        ([| 1.0; 1.0 |], Optim.Simplex.Ge, 4.0);
        ([| 1.0; -1.0 |], Optim.Simplex.Eq, 1.0);
      ]
  in
  let o = expect_optimal (Optim.Simplex.solve p) in
  check_float "objective" 9.5 o.objective;
  check_float "x" 2.5 o.x.(0);
  check_float "y" 1.5 o.x.(1)

let test_simplex_infeasible () =
  let p =
    lp [| 1.0 |]
      [
        ([| 1.0 |], Optim.Simplex.Ge, 5.0);
        ([| 1.0 |], Optim.Simplex.Le, 3.0);
      ]
  in
  match Optim.Simplex.solve p with
  | Optim.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p = lp [| -1.0 |] [ ([| 1.0 |], Optim.Simplex.Ge, 1.0) ] in
  match Optim.Simplex.solve p with
  | Optim.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_degenerate () =
  (* Degenerate vertex; Bland's rule must still terminate. *)
  let p =
    lp [| -1.0; -1.0; -1.0 |]
      [
        ([| 1.0; 1.0; 0.0 |], Optim.Simplex.Le, 1.0);
        ([| 1.0; 0.0; 1.0 |], Optim.Simplex.Le, 1.0);
        ([| 0.0; 1.0; 1.0 |], Optim.Simplex.Le, 1.0);
        ([| 1.0; 1.0; 1.0 |], Optim.Simplex.Le, 1.5);
      ]
  in
  let o = expect_optimal (Optim.Simplex.solve p) in
  check_float "objective" (-1.5) o.objective

let test_simplex_negative_rhs () =
  (* min x st -x <= -3 (i.e. x >= 3). *)
  let p = lp [| 1.0 |] [ ([| -1.0 |], Optim.Simplex.Le, -3.0) ] in
  let o = expect_optimal (Optim.Simplex.solve p) in
  check_float "x" 3.0 o.x.(0)

let test_simplex_solution_feasible_qcheck () =
  (* Random LPs with x bounded by a box so they are never unbounded;
     whenever the solver returns Optimal, the point must be feasible and
     at least as good as a sample of random feasible box points. *)
  let gen =
    QCheck.Gen.(
      pair (int_range 1 4) (int_range 0 4) >>= fun (n, m) ->
      let coef = map (fun k -> float_of_int (k - 5)) (int_range 0 10) in
      let row = array_size (return n) coef in
      pair (array_size (return n) coef)
        (list_size (return m) (pair row (map (fun k -> float_of_int k) (int_range 1 20)))))
  in
  let arb = QCheck.make gen in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"simplex optimal is feasible and minimal-ish" arb
       (fun (c, rows) ->
         let n = Array.length c in
         let box = Array.to_list (Array.init n (fun j ->
             (Array.init n (fun k -> if k = j then 1.0 else 0.0), Optim.Simplex.Le, 5.0)))
         in
         let cons = List.map (fun (r, b) -> (r, Optim.Simplex.Le, b)) rows @ box in
         let p = lp c cons in
         match Optim.Simplex.solve p with
         | Optim.Simplex.Unbounded -> false (* impossible inside a box *)
         | Optim.Simplex.Infeasible ->
             (* 0 is feasible for Le rows with b >= 1 and the box. *)
             false
         | Optim.Simplex.Optimal { objective; x } ->
             Optim.Simplex.feasible p x
             && objective <= 0.0 +. 1e-6 (* x=0 is feasible, obj 0 *)))

(* --- BINLP --- *)

let blp ?(groups = []) nvars objective constraints =
  { Optim.Binlp.nvars; objective; groups; constraints }

(* Most tests only care about the winning point; the outcome record's
   status/nodes fields get their own tests below. *)
let solve ?node_limit p = (Optim.Binlp.solve ?node_limit p).Optim.Binlp.best

let test_binlp_unconstrained () =
  (* Free binaries: pick exactly the negative-cost ones. *)
  let p = blp 4 [| -2.0; 3.0; -1.0; 0.0 |] [] in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_float "objective" (-3.0) s.objective;
      check_bool "x0" true s.x.(0);
      check_bool "x1" false s.x.(1);
      check_bool "x2" true s.x.(2)

let test_binlp_sos1 () =
  (* One group with two attractive options: only one may be chosen. *)
  let p = blp ~groups:[ [ 0; 1 ] ] 2 [| -5.0; -4.0 |] [] in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_float "objective" (-5.0) s.objective;
      check_bool "picked the better" true s.x.(0);
      check_bool "not both" false s.x.(1)

let test_binlp_linear_constraint () =
  (* Knapsack-flavoured: min -sum x st weights <= cap. *)
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let p =
    blp 3 [| -6.0; -5.0; -4.0 |]
      [ Optim.Binlp.linear (lin [ (0, 5.0); (1, 4.0); (2, 3.0) ] 0.0) Optim.Binlp.Le 8.0 ]
  in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      (* best: x1 + x2 (weight 7, value 9) vs x0 + x2 (8, 10): latter. *)
      check_float "objective" (-10.0) s.objective

let test_binlp_implication () =
  (* x0 <= x1 (paper's LRR coupling): choosing x0 forces x1. *)
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let p =
    blp 2 [| -10.0; 4.0 |]
      [ Optim.Binlp.linear (lin [ (0, 1.0); (1, -1.0) ] 0.0) Optim.Binlp.Le 0.0 ]
  in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_float "objective" (-6.0) s.objective;
      check_bool "x0" true s.x.(0);
      check_bool "x1 forced" true s.x.(1)

let test_binlp_product_constraint () =
  (* (1 + x0) * (2 x1 + 3 x2) <= 4: x1,x2 free goodies but the product
     caps what can combine with x0. *)
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let p =
    blp 3 [| -3.0; -2.0; -2.5 |]
      [
        Optim.Binlp.product
          (lin [ (0, 1.0) ] 1.0)
          (lin [ (1, 2.0); (2, 3.0) ] 0.0)
          Optim.Binlp.Le 4.0;
      ]
  in
  (match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      (* candidates: x0+x1 -> product 4 ok, obj -5; x0+x2 -> 6 infeasible;
         x1+x2 -> 5 infeasible with x0? (1)*(5)=5 > 4 infeasible;
         x0 alone -3; x1+x2 without x0: (1)(5)=5 > 4 no. So -5. *)
      check_float "objective" (-5.0) s.objective);
  (* And brute force agrees. *)
  match (solve p, Optim.Binlp.brute_force p) with
  | Some a, Some b -> check_float "matches brute force" b.objective a.objective
  | _ -> Alcotest.fail "both should solve"

let test_binlp_infeasible () =
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let p =
    blp 2 [| 0.0; 0.0 |]
      [ Optim.Binlp.linear (lin [ (0, 1.0); (1, 1.0) ] 0.0) Optim.Binlp.Ge 3.0 ]
  in
  check_bool "infeasible" true (solve p = None)

let test_binlp_forced_positive_cost () =
  (* A Ge constraint can force paying a positive cost. *)
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let p =
    blp 2 [| 5.0; 7.0 |]
      [ Optim.Binlp.linear (lin [ (0, 1.0); (1, 1.0) ] 0.0) Optim.Binlp.Ge 1.0 ]
  in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s -> check_float "cheapest forced var" 5.0 s.objective

let test_binlp_overlapping_groups_rejected () =
  let p = blp ~groups:[ [ 0; 1 ]; [ 1 ] ] 2 [| 0.0; 0.0 |] [] in
  match solve p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* Random differential test against brute force. *)
let gen_problem =
  let open QCheck.Gen in
  int_range 2 8 >>= fun nvars ->
  let coef = map (fun k -> float_of_int (k - 6)) (int_range 0 12) in
  array_size (return nvars) coef >>= fun objective ->
  (* groups: split a prefix of variables into up to 2 groups *)
  int_range 0 (min 2 (nvars / 2)) >>= fun ngroups ->
  let groups =
    if ngroups = 0 then []
    else if ngroups = 1 then [ List.init (nvars / 2) (fun i -> i) ]
    else
      [
        List.init (nvars / 4 + 1) (fun i -> i);
        List.init (nvars / 4) (fun i -> (nvars / 4) + 1 + i);
      ]
  in
  let lin_gen =
    list_size (int_range 1 nvars)
      (pair (int_range 0 (nvars - 1)) coef)
    >>= fun coeffs ->
    coef >>= fun const -> return { Optim.Binlp.coeffs; const }
  in
  let constr_gen =
    frequency
      [
        ( 3,
          lin_gen >>= fun l ->
          oneofl [ Optim.Binlp.Le; Optim.Binlp.Ge ] >>= fun rel ->
          map (fun k -> Optim.Binlp.linear l rel (float_of_int (k - 3))) (int_range 0 12) );
        ( 1,
          lin_gen >>= fun l1 ->
          lin_gen >>= fun l2 ->
          oneofl [ Optim.Binlp.Le; Optim.Binlp.Ge ] >>= fun rel ->
          map (fun k -> Optim.Binlp.product l1 l2 rel (float_of_int (k - 5))) (int_range 0 30) );
      ]
  in
  list_size (int_range 0 3) constr_gen >>= fun constraints ->
  return { Optim.Binlp.nvars; objective; groups; constraints }

let test_binlp_vs_brute_force () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"B&B = brute force" (QCheck.make gen_problem)
       (fun p ->
         let a = solve p in
         let b = Optim.Binlp.brute_force p in
         match (a, b) with
         | None, None -> true
         | Some sa, Some sb ->
             (* Exact assignment equality: the generator emits integer
                coefficients and both sides pin the same tie-break, so
                even the winning point must be identical. *)
             Float.abs (sa.objective -. sb.objective) < 1e-9
             && sa.x = sb.x
             && Optim.Binlp.check p sa.x
         | Some _, None | None, Some _ -> false))

let test_binlp_52var_scale () =
  (* A synthetic problem with the paper's structure and size solves
     quickly and exactly. *)
  let nvars = 52 in
  let objective =
    Array.init nvars (fun j -> Float.of_int ((j * 7 mod 13) - 6) /. 3.0)
  in
  let groups =
    [
      [ 0; 1; 2 ];
      [ 3; 4; 5; 6; 7 ];
      [ 9; 10 ];
      [ 11; 12; 13 ];
      [ 14; 15; 16; 17; 18 ];
      [ 20; 21 ];
      List.init 17 (fun i -> 29 + i);
      List.init 5 (fun i -> 46 + i);
    ]
  in
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let beta = List.init nvars (fun j -> (j, Float.of_int (j mod 5) /. 2.0)) in
  let p =
    {
      Optim.Binlp.nvars;
      objective;
      groups;
      constraints =
        [
          Optim.Binlp.product
            (lin [ (11, 1.0); (12, 2.0); (13, 3.0) ] 1.0)
            (lin beta 0.0) Optim.Binlp.Le 30.0;
          Optim.Binlp.linear (lin beta 0.0) Optim.Binlp.Le 40.0;
        ];
    }
  in
  match solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_bool "feasible" true (Optim.Binlp.check p s.x);
      check_bool "negative objective" true (s.objective < 0.0)

let test_binlp_tiebreak_lex () =
  (* Two equally-good options: the pinned tie-break picks the
     lexicographically-smallest assignment (false < true at the first
     differing index) in both the B&B and the brute-force reference. *)
  let p = blp ~groups:[ [ 0; 1 ] ] 2 [| -1.0; -1.0 |] [] in
  let expect label = function
    | None -> Alcotest.fail (label ^ ": expected solution")
    | Some (s : Optim.Binlp.solution) ->
        check_float (label ^ " objective") (-1.0) s.objective;
        check_bool (label ^ " x0") false s.x.(0);
        check_bool (label ^ " x1") true s.x.(1)
  in
  expect "solve" (solve p);
  expect "brute" (Optim.Binlp.brute_force p)

let test_binlp_node_limit_incumbent () =
  (* 16 negative free binaries: the first dive reaches the all-selected
     (optimal) leaf within ~17 nodes, while the full search needs ~33;
     a 20-node budget must keep that incumbent and report the
     truncation instead of discarding the work. *)
  let p = blp 16 (Array.make 16 (-1.0)) [] in
  let o = Optim.Binlp.solve ~node_limit:20 p in
  (match o.Optim.Binlp.status with
  | Optim.Binlp.Node_limit_reached -> ()
  | Optim.Binlp.Optimal ->
      Alcotest.failf "expected node-limit status (nodes=%d)" o.Optim.Binlp.nodes);
  match o.Optim.Binlp.best with
  | None -> Alcotest.fail "expected a preserved incumbent"
  | Some s ->
      check_bool "feasible" true (Optim.Binlp.check p s.x);
      check_float "incumbent objective" (-16.0) s.objective

let test_binlp_parallel_identity () =
  (* The frontier-split search with a shared atomic incumbent must be
     bit-identical to the inline solve for every worker count: same
     status, same objective bits, same assignment. *)
  let pool2 = Dse.Pool.create ~workers:2 () in
  let pool4 = Dse.Pool.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () ->
      Dse.Pool.shutdown pool2;
      Dse.Pool.shutdown pool4)
    (fun () ->
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:120 ~name:"parallel = sequential"
           (QCheck.make gen_problem) (fun p ->
             let seq = Optim.Binlp.solve p in
             List.for_all
               (fun pool ->
                 let par =
                   Optim.Binlp.solve ~runner:(Dse.Pool.solver_runner pool) p
                 in
                 par.Optim.Binlp.status = seq.Optim.Binlp.status
                 &&
                 match (seq.Optim.Binlp.best, par.Optim.Binlp.best) with
                 | None, None -> true
                 | Some a, Some b ->
                     Int64.bits_of_float a.Optim.Binlp.objective
                     = Int64.bits_of_float b.Optim.Binlp.objective
                     && a.Optim.Binlp.x = b.Optim.Binlp.x
                 | Some _, None | None, Some _ -> false)
               [ pool2; pool4 ])))

let () =
  Alcotest.run "optim"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "textbook" `Quick test_simplex_textbook;
          Alcotest.test_case "ge and eq" `Quick test_simplex_ge_eq;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "random feasibility" `Quick test_simplex_solution_feasible_qcheck;
        ] );
      ( "binlp",
        [
          Alcotest.test_case "unconstrained" `Quick test_binlp_unconstrained;
          Alcotest.test_case "sos1" `Quick test_binlp_sos1;
          Alcotest.test_case "linear constraint" `Quick test_binlp_linear_constraint;
          Alcotest.test_case "implication" `Quick test_binlp_implication;
          Alcotest.test_case "product constraint" `Quick test_binlp_product_constraint;
          Alcotest.test_case "infeasible" `Quick test_binlp_infeasible;
          Alcotest.test_case "forced cost" `Quick test_binlp_forced_positive_cost;
          Alcotest.test_case "overlap rejected" `Quick test_binlp_overlapping_groups_rejected;
          Alcotest.test_case "vs brute force (qcheck)" `Quick test_binlp_vs_brute_force;
          Alcotest.test_case "52-variable scale" `Quick test_binlp_52var_scale;
          Alcotest.test_case "lex tie-break" `Quick test_binlp_tiebreak_lex;
          Alcotest.test_case "node limit keeps incumbent" `Quick
            test_binlp_node_limit_incumbent;
          Alcotest.test_case "parallel identity (qcheck)" `Quick
            test_binlp_parallel_identity;
        ] );
    ]
