(* Tests for the dataflow framework: CFG construction, the generic
   worklist solver on a hand-built graph, and the three concrete
   analyses (liveness, reaching definitions, intervals). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Ast = Minic.Ast
module Cfg = Minic.Cfg
module Dataflow = Minic.Dataflow
module Liveness = Minic.Liveness
module Reaching = Minic.Reaching
module Interval = Minic.Interval

let func ?(name = "main") ?(params = []) ?(locals = []) body =
  { Ast.name; params; locals; body }

(* --- CFG construction --- *)

let test_cfg_linear () =
  let open Ast in
  let g =
    Cfg.build
      (func ~locals:[ "a" ]
         [ Set ("a", i 1); Do (Call ("f", [])); Ret (v "a") ])
  in
  check_int "one block" 1 (Array.length g.Cfg.blocks);
  check_int "three sids" 3 g.Cfg.nsids;
  let b = g.Cfg.blocks.(g.Cfg.entry) in
  check_int "two instructions" 2 (Array.length b.Cfg.instrs);
  (match b.Cfg.instrs.(0) with
  | 0, Cfg.Assign ("a", _) -> ()
  | _ -> Alcotest.fail "first instruction should be [0] a = 1");
  (match b.Cfg.instrs.(1) with
  | 1, Cfg.Eval (Call ("f", [])) -> ()
  | _ -> Alcotest.fail "second instruction should be [1] f()");
  match b.Cfg.term with
  | Cfg.Return _ -> check_int "return sid" 2 b.Cfg.term_sid
  | _ -> Alcotest.fail "terminator should be a return"

let test_cfg_if () =
  let g =
    let open Ast in
    Cfg.build
      (func ~params:[ "p" ] ~locals:[ "x" ]
         [
           If (v "p" < i 1, [ Set ("x", i 1) ], [ Set ("x", i 2) ]);
           Ret (v "x");
         ])
  in
  (* entry, then, else, join *)
  check_int "four blocks" 4 (Array.length g.Cfg.blocks);
  let entry = g.Cfg.blocks.(g.Cfg.entry) in
  let bt, be =
    match entry.Cfg.term with
    | Cfg.Branch (_, t, e) ->
        check_bool "distinct branch targets" true (t <> e);
        Alcotest.(check (list int)) "successors" [ t; e ]
          (Cfg.successors entry);
        (t, e)
    | _ -> Alcotest.fail "entry should end in a branch"
  in
  let preds = Cfg.predecessors g in
  let join =
    match g.Cfg.blocks.(bt).Cfg.term with
    | Cfg.Jump j -> j
    | _ -> Alcotest.fail "then-arm should jump to the join"
  in
  Alcotest.(check (list int)) "join predecessors" [ bt; be ] preds.(join);
  (match g.Cfg.blocks.(join).Cfg.term with
  | Cfg.Return _ -> ()
  | _ -> Alcotest.fail "join should return");
  let rpo = Cfg.reverse_postorder g in
  check_int "rpo starts at the entry" g.Cfg.entry rpo.(0);
  check_int "rpo covers every block" 4 (Array.length rpo);
  check_bool "everything reachable" true
    (Array.for_all (fun r -> r) (Cfg.reachable g))

let test_cfg_while () =
  let g =
    let open Ast in
    Cfg.build
      (func ~params:[ "n" ] ~locals:[ "k" ]
         [
           Set ("k", i 0);
           While (v "k" < v "n", [ Set ("k", v "k" + i 1) ]);
           Ret (v "k");
         ])
  in
  (* entry, header, body, after *)
  check_int "four blocks" 4 (Array.length g.Cfg.blocks);
  let header =
    match g.Cfg.blocks.(g.Cfg.entry).Cfg.term with
    | Cfg.Jump h -> h
    | _ -> Alcotest.fail "entry should jump to the loop header"
  in
  let body, after =
    match g.Cfg.blocks.(header).Cfg.term with
    | Cfg.Branch (_, b, a) -> (b, a)
    | _ -> Alcotest.fail "header should branch"
  in
  (* back edge: the body jumps to the header *)
  (match g.Cfg.blocks.(body).Cfg.term with
  | Cfg.Jump h -> check_int "back edge target" header h
  | _ -> Alcotest.fail "body should jump back");
  let preds = Cfg.predecessors g in
  check_int "header has two predecessors" 2 (List.length preds.(header));
  (* reverse postorder visits the header before the body *)
  let rpo = Array.to_list (Cfg.reverse_postorder g) in
  let pos id =
    let rec go k = function
      | [] -> Alcotest.fail "block missing from rpo"
      | x :: _ when x = id -> k
      | _ :: tl -> go (k + 1) tl
    in
    go 0 rpo
  in
  check_bool "header before body in rpo" true (pos header < pos body);
  check_bool "header before exit block in rpo" true (pos header < pos after)

let test_cfg_dead_after_return () =
  let open Ast in
  let g =
    Cfg.build (func ~locals:[ "x" ] [ Ret (i 0); Set ("x", i 1) ])
  in
  let r = Cfg.reachable g in
  let dead = ref [] in
  Array.iteri (fun id ok -> if not ok then dead := id :: !dead) r;
  (match !dead with
  | [ id ] ->
      let blk = g.Cfg.blocks.(id) in
      check_int "dead block holds the dead store" 1
        (Array.length blk.Cfg.instrs);
      let preds = Cfg.predecessors g in
      Alcotest.(check (list int)) "no predecessors" [] preds.(id)
  | _ -> Alcotest.fail "expected exactly one unreachable block");
  check_int "rpo still visits every block"
    (Array.length g.Cfg.blocks)
    (Array.length (Cfg.reverse_postorder g))

let test_cfg_stmt_of_sid () =
  let g =
    let open Ast in
    Cfg.build
      (func ~locals:[ "a" ]
         [
           Set ("a", i 0);
           (* sid 0 *)
           If
             ( v "a" < i 1,
               (* sid 1 *)
               [ Set ("a", i 1) ],
               (* sid 2 *)
               [ While (v "a" < i 3, (* sid 3 *) [ Set ("a", v "a" + i 1) ]) ]
               (* sid 4 *) );
           Ret (v "a") (* sid 5 *);
         ])
  in
  check_int "six sids" 6 g.Cfg.nsids;
  let expect sid name pred =
    match Cfg.stmt_of_sid g sid with
    | Some s -> check_bool name true (pred s)
    | None -> Alcotest.failf "%s: sid %d not found" name sid
  in
  expect 0 "sid 0 is a = 0" (function
    | Ast.Set ("a", Ast.Int 0) -> true
    | _ -> false);
  expect 1 "sid 1 is the if" (function Ast.If _ -> true | _ -> false);
  expect 2 "sid 2 is a = 1" (function
    | Ast.Set ("a", Ast.Int 1) -> true
    | _ -> false);
  expect 3 "sid 3 is the while" (function Ast.While _ -> true | _ -> false);
  expect 4 "sid 4 is the increment" (function
    | Ast.Set ("a", Ast.Bin (Ast.Add, _, _)) -> true
    | _ -> false);
  expect 5 "sid 5 is the return" (function Ast.Ret _ -> true | _ -> false);
  check_bool "sid past the end resolves to nothing" true
    (Cfg.stmt_of_sid g 6 = None);
  (* every sid the lowering assigned maps back to a statement *)
  Array.iter
    (fun blk ->
      Array.iter
        (fun (sid, _) ->
          check_bool "instruction sid resolves" true
            (Cfg.stmt_of_sid g sid <> None))
        blk.Cfg.instrs;
      if blk.Cfg.term_sid >= 0 then
        check_bool "terminator sid resolves" true
          (Cfg.stmt_of_sid g blk.Cfg.term_sid <> None))
    g.Cfg.blocks

(* --- Generic solver on a hand-built CFG --- *)

(* A path-set domain: which block ids can lie on a path to this
   point.  Finite (subsets of the block set), so widening is just the
   new fact. *)
module Iset = Set.Make (Int)

module Path = Dataflow.Make (struct
  type t = Iset.t

  let equal = Iset.equal
  let join = Iset.union
  let widen _ next = next
end)

(* A diamond built directly from the record type, bypassing [build]:
   B0 -> B1/B2 -> B3. *)
let diamond =
  let blk id term = { Cfg.id; instrs = [||]; term; term_sid = -1 } in
  {
    Cfg.func = { Ast.name = "synthetic"; params = []; locals = []; body = [] };
    blocks =
      [|
        blk 0 (Cfg.Branch (Ast.Var "p", 1, 2));
        blk 1 (Cfg.Jump 3);
        blk 2 (Cfg.Jump 3);
        blk 3 Cfg.Exit;
      |];
    entry = 0;
    nsids = 0;
  }

let test_solver_forward_join () =
  let r =
    Path.solve ~direction:Dataflow.Forward ~init:Iset.empty ~bottom:Iset.empty
      ~transfer:(fun blk s -> Iset.add blk.Cfg.id s)
      diamond
  in
  Alcotest.(check (list int)) "join block sees both arms" [ 0; 1; 2 ]
    (Iset.elements r.Path.input.(3));
  Alcotest.(check (list int)) "exit output" [ 0; 1; 2; 3 ]
    (Iset.elements r.Path.output.(3));
  Alcotest.(check (list int)) "then arm" [ 0; 1 ]
    (Iset.elements r.Path.output.(1));
  Alcotest.(check (list int)) "else arm" [ 0; 2 ]
    (Iset.elements r.Path.output.(2))

let test_solver_edge_hook () =
  (* Kill the edge into B2: its input stays bottom. *)
  let r =
    Path.solve ~direction:Dataflow.Forward ~init:(Iset.singleton 100)
      ~bottom:Iset.empty
      ~edge:(fun _blk succ fact -> if succ = 2 then Iset.empty else fact)
      ~transfer:(fun blk s -> Iset.add blk.Cfg.id s)
      diamond
  in
  Alcotest.(check (list int)) "boundary fact reaches the then arm"
    [ 0; 100 ]
    (Iset.elements r.Path.input.(1));
  Alcotest.(check (list int)) "killed edge leaves B2 at bottom" []
    (Iset.elements r.Path.input.(2))

let test_solver_backward () =
  (* Backward over the same diamond: which block ids lie on a path to
     an exit.  B0's out-fact joins both arms. *)
  let r =
    Path.solve ~direction:Dataflow.Backward ~init:Iset.empty
      ~bottom:Iset.empty
      ~transfer:(fun blk s -> Iset.add blk.Cfg.id s)
      diamond
  in
  Alcotest.(check (list int)) "entry out-fact joins both arms" [ 1; 2; 3 ]
    (Iset.elements r.Path.input.(0));
  Alcotest.(check (list int)) "entry in-fact" [ 0; 1; 2; 3 ]
    (Iset.elements r.Path.output.(0))

(* --- Liveness --- *)

let live_after_table ~globals g live =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun blk ->
      ignore
        (Liveness.fold_instrs_rev ~globals blk
           ~live_out:live.Liveness.live_out.(blk.Cfg.id)
           ~f:(fun () (sid, _) ~live_after ->
             Hashtbl.replace tbl sid live_after)
           ()))
    g.Cfg.blocks;
  tbl

let test_liveness_loop () =
  let open Ast in
  let g =
    Cfg.build
      (func ~params:[ "n" ] ~locals:[ "s"; "k"; "dead" ]
         [
           Set ("s", i 0);
           (* 0 *)
           Set ("k", i 0);
           (* 1 *)
           While
             ( v "k" < v "n",
               (* 2 *)
               [
                 Set ("s", v "s" + v "k");
                 (* 3 *)
                 Set ("k", v "k" + i 1);
                 (* 4 *)
                 Set ("dead", i 7) (* 5 *);
               ] );
           Ret (v "s") (* 6 *);
         ])
  in
  let live = Liveness.solve ~globals:[] g in
  let tbl = live_after_table ~globals:[] g live in
  let after sid x = Liveness.Set.mem x (Hashtbl.find tbl sid) in
  check_bool "s live across the loop" true (after 0 "s");
  check_bool "k live across the loop" true (after 1 "k");
  check_bool "k still live after the increment" true (after 4 "k");
  check_bool "dead is dead after its store" false (after 5 "dead");
  check_bool "s live after the accumulation" true (after 3 "s")

let test_liveness_globals_at_exit () =
  let open Ast in
  (* A store to a global scalar is observable by the caller, so it is
     never dead; the same store to a local is. *)
  let g =
    Cfg.build (func [ Set ("gg", i 5); Ret (i 0) ])
  in
  let as_global = live_after_table ~globals:[ "gg" ] g
      (Liveness.solve ~globals:[ "gg" ] g)
  and as_local = live_after_table ~globals:[] g
      (Liveness.solve ~globals:[] g)
  in
  check_bool "global store live at exit" true
    (Liveness.Set.mem "gg" (Hashtbl.find as_global 0));
  check_bool "local store dead at exit" false
    (Liveness.Set.mem "gg" (Hashtbl.find as_local 0))

let test_liveness_call_reads_globals () =
  let open Ast in
  let g =
    Cfg.build
      (func ~locals:[ "x" ]
         [ Set ("gg", i 1); (* 0 *) Do (Call ("f", [])); (* 1 *) Ret (i 0) ])
  in
  let tbl =
    live_after_table ~globals:[ "gg" ] g (Liveness.solve ~globals:[ "gg" ] g)
  in
  (* the call may read gg, so the store at sid 0 is live *)
  check_bool "call keeps the global store live" true
    (Liveness.Set.mem "gg" (Hashtbl.find tbl 0))

(* --- Reaching definitions / use-before-init --- *)

let test_reaching_uninit_on_one_path () =
  let open Ast in
  let g =
    Cfg.build
      (func ~params:[ "p" ] ~locals:[ "x"; "y" ]
         [
           If (v "p" < i 1, [ Set ("x", i 1) ], []);
           (* 0, 1 *)
           Set ("y", v "x");
           (* 2: x uninitialized when p >= 1 *)
           Ret (v "y") (* 3 *);
         ])
  in
  Alcotest.(check (list (pair string int)))
    "x flagged at its first use"
    [ ("x", 2) ]
    (Reaching.uninitialized_uses g)

let test_reaching_initialized_on_all_paths () =
  let open Ast in
  let g =
    Cfg.build
      (func ~params:[ "p" ] ~locals:[ "x" ]
         [
           If (v "p" < i 1, [ Set ("x", i 1) ], [ Set ("x", i 2) ]);
           Ret (v "x");
         ])
  in
  Alcotest.(check (list (pair string int)))
    "both arms define x" [] (Reaching.uninitialized_uses g);
  (* parameters are defined by the caller *)
  let g2 = Cfg.build (func ~params:[ "p" ] [ Ret (v "p") ]) in
  Alcotest.(check (list (pair string int)))
    "parameters are initialized" [] (Reaching.uninitialized_uses g2)

let test_reaching_loop_carried () =
  let open Ast in
  (* k is read by its own increment before any store on the path that
     enters the loop straight away. *)
  let g =
    Cfg.build
      (func ~params:[ "p" ] ~locals:[ "k" ]
         [ While (v "p" < i 1, [ Set ("k", v "k" + i 1) ]); Ret (i 0) ])
  in
  Alcotest.(check (list (pair string int)))
    "loop-carried uninitialized read"
    [ ("k", 1) ]
    (Reaching.uninitialized_uses g)

let test_reaching_ignores_unreachable () =
  let open Ast in
  let g =
    Cfg.build
      (func ~locals:[ "x" ] [ Ret (i 0); Set ("x", v "x" + i 1) ])
  in
  Alcotest.(check (list (pair string int)))
    "uses after return are not reported" []
    (Reaching.uninitialized_uses g)

(* --- Interval analysis --- *)

let no_ctx = Interval.ctx_of_program { Ast.globals = []; funcs = [] }
let is_top r = Stdlib.( = ) r Interval.top
let ev ?(ctx = no_ctx) m e = Interval.eval ctx m e
let bind x itv m = Interval.Smap.add x itv m
let empty = Interval.Smap.empty

let test_interval_eval_folds_constants () =
  let open Ast in
  let c e = Interval.to_const (ev empty e) in
  Alcotest.(check (option int)) "2 + 3" (Some 5) (c (i 2 + i 3));
  Alcotest.(check (option int)) "7 / 2" (Some 3) (c (i 7 / i 2));
  Alcotest.(check (option int))
    "0 - 1 wraps to the unsigned representation" (Some 0xFFFFFFFF)
    (c (i 0 - i 1));
  Alcotest.(check (option int)) "comparison decides" (Some 0) (c (i 3 > i 4));
  check_bool "unknown variable is top" true (is_top (ev empty (v "x")));
  check_bool "a call is top" true (is_top (ev empty (Call ("f", []))))

let test_interval_mul_bounds () =
  let open Ast in
  let m = bind "x" { Interval.lo = 0; hi = 10 } (bind "y" { Interval.lo = -3; hi = 3 } empty) in
  let r = ev m (v "x" * v "y") in
  check_int "product lo" (-30) r.Interval.lo;
  check_int "product hi" 30 r.Interval.hi;
  (* 65536 * 65536 overflows 32 bits: the bound must saturate *)
  let m2 = bind "x" { Interval.lo = 0; hi = 65536 } empty in
  check_bool "overflowing product saturates to top" true
    (is_top (ev m2 (v "x" * v "x")))

let test_interval_div_corners () =
  let open Ast in
  (* divisor straddling zero gives no information *)
  let m = bind "y" { Interval.lo = -1; hi = 1 } empty in
  check_bool "divisor may be zero" true (is_top (ev m (i 100 / v "y")));
  (* nonzero divisor: plain corner evaluation *)
  let m2 =
    bind "x" { Interval.lo = Interval.min32; hi = Interval.min32 }
      (bind "y" { Interval.lo = 1; hi = 2 } empty)
  in
  let r = ev m2 (v "x" / v "y") in
  check_int "most negative quotient" Interval.min32 r.Interval.lo;
  (* min32 / -1 wraps back to min32: the result must cover the wrap *)
  let m3 =
    bind "x" { Interval.lo = Interval.min32; hi = Stdlib.( + ) Interval.min32 1 }
      (bind "y" { Interval.lo = -1; hi = -1 } empty)
  in
  let r3 = ev m3 (v "x" / v "y") in
  check_bool "wrap covered" true (Interval.mem Interval.min32 r3);
  check_bool "ordinary quotient covered" true (Interval.mem Interval.max32 r3)

let test_interval_byte_loads () =
  let open Ast in
  let ctx =
    Interval.ctx_of_program
      {
        Ast.globals = [ Array ("b", Byte, 4); Array ("w", Word, 4) ];
        funcs = [];
      }
  in
  let r = ev ~ctx empty (idx "b" (i 0)) in
  check_int "byte load lo" 0 r.Interval.lo;
  check_int "byte load hi" 255 r.Interval.hi;
  check_bool "word load is top" true (is_top (ev ~ctx empty (idx "w" (i 0))))

let test_interval_cannot_trap () =
  let open Ast in
  let ctx =
    Interval.ctx_of_program
      { Ast.globals = [ Array ("arr", Word, 16) ]; funcs = [] }
  in
  let ct e = Interval.cannot_trap ctx empty e in
  check_bool "masked index fits" true (ct (idx "arr" (v "k" &&& i 15)));
  check_bool "wider mask may overrun" false (ct (idx "arr" (v "k" &&& i 31)));
  check_bool "constant division" true (ct (i 4 / i 2));
  check_bool "unknown divisor may trap" false (ct (v "x" / v "y"));
  check_bool "calls may trap" false (ct (Call ("f", [])))

let points_of f =
  let p = { Ast.globals = []; funcs = [ f ] } in
  let ctx = Interval.ctx_of_program p in
  (ctx, Interval.points ctx (Cfg.build f))

let test_interval_branch_refinement () =
  let open Ast in
  let f =
    func ~params:[ "p" ] ~locals:[ "x" ]
      [
        If (v "p" < i 10, [ Set ("x", v "p") ], [ Set ("x", i 0) ]);
        (* 0,1,2 *)
        Ret (v "x") (* 3 *);
      ]
  in
  let ctx, pts = points_of f in
  let pi = Interval.eval ctx (Hashtbl.find pts 1) (v "p") in
  check_int "p narrowed below 10 in the then arm" 9 pi.Interval.hi;
  let pe = Interval.eval ctx (Hashtbl.find pts 2) (v "p") in
  check_int "p at least 10 in the else arm" 10 pe.Interval.lo;
  let xi = Interval.eval ctx (Hashtbl.find pts 3) (v "x") in
  check_int "x join keeps the refined bound" 9 xi.Interval.hi

let test_interval_loop_widening () =
  let open Ast in
  let f =
    func ~locals:[ "k" ]
      [
        Set ("k", i 0);
        (* 0 *)
        While (v "k" < i 100, (* 1 *) [ Set ("k", v "k" + i 1) ]);
        (* 2 *)
        Ret (v "k") (* 3 *);
      ]
  in
  let ctx, pts = points_of f in
  (* the loop runs 100 > widen_after times: widening must still leave
     the refined facts intact *)
  let kb = Interval.eval ctx (Hashtbl.find pts 2) (v "k") in
  check_int "k lower bound in the body" 0 kb.Interval.lo;
  check_int "k upper bound in the body" 99 kb.Interval.hi;
  let ka = Interval.eval ctx (Hashtbl.find pts 3) (v "k") in
  check_int "k at least 100 after the loop" 100 ka.Interval.lo

let test_interval_widening_nested_loops () =
  let open Ast in
  (* Two nested counted loops: both headers widen (each runs past
     widen_after), yet the branch refinements must keep every counter
     interval exact inside the bodies. *)
  let f =
    func ~locals:[ "i"; "j"; "s" ]
      [
        Set ("s", i 0);
        (* 0 *)
        Set ("i", i 0);
        (* 1 *)
        While
          ( v "i" < i 10,
            (* 2 *)
            [
              Set ("j", i 0);
              (* 3 *)
              While
                ( v "j" < i 8,
                  (* 4 *)
                  [ Set ("s", v "s" + i 1) (* 5 *); Set ("j", v "j" + i 1) (* 6 *) ] );
              Set ("i", v "i" + i 1) (* 7 *);
            ] );
        Ret (v "s") (* 8 *);
      ]
  in
  let ctx, pts = points_of f in
  let at sid x = Interval.eval ctx (Hashtbl.find pts sid) (v x) in
  let ji = at 5 "j" in
  check_int "inner counter lo in inner body" 0 ji.Interval.lo;
  check_int "inner counter hi in inner body" 7 ji.Interval.hi;
  let ii = at 5 "i" in
  check_int "outer counter lo in inner body" 0 ii.Interval.lo;
  check_int "outer counter hi in inner body" 9 ii.Interval.hi;
  let ia = at 8 "i" in
  check_int "outer counter at least 10 after both loops" 10 ia.Interval.lo

let test_interval_widening_decrement () =
  let open Ast in
  (* A decrementing counter makes the {e lower} bound the unstable
     one: after widen_after refinements it jumps to min32, while the
     guard keeps the body interval exact. *)
  let f =
    func ~locals:[ "k" ]
      [
        Set ("k", i 50);
        (* 0 *)
        While (v "k" > i 0, (* 1 *) [ Set ("k", v "k" - i 1) (* 2 *) ]);
        Ret (v "k") (* 3 *);
      ]
  in
  let ctx, pts = points_of f in
  let kb = Interval.eval ctx (Hashtbl.find pts 2) (v "k") in
  check_int "k stays positive in the body" 1 kb.Interval.lo;
  check_int "k at most its start in the body" 50 kb.Interval.hi;
  let ka = Interval.eval ctx (Hashtbl.find pts 3) (v "k") in
  check_int "k at most 0 after the loop" 0 ka.Interval.hi;
  check_int "widening took the lower bound to min32" Interval.min32
    ka.Interval.lo

let test_interval_widening_int_endpoints () =
  let open Ast in
  (* Climbing to max32 exactly: the widened upper bound coincides with
     the 32-bit endpoint, the increment never overflows, and the exit
     refinement pins the counter to the single value max32. *)
  let f =
    func ~locals:[ "k" ]
      [
        Set ("k", i (Stdlib.( - ) Interval.max32 20));
        (* 0 *)
        While (v "k" < i Interval.max32, (* 1 *) [ Set ("k", v "k" + i 1) (* 2 *) ]);
        Ret (v "k") (* 3 *);
      ]
  in
  let ctx, pts = points_of f in
  let kb = Interval.eval ctx (Hashtbl.find pts 2) (v "k") in
  check_int "body bound stops below max32" (Stdlib.( - ) Interval.max32 1)
    kb.Interval.hi;
  Alcotest.(check (option int))
    "k is exactly max32 after the loop" (Some Interval.max32)
    (Interval.to_const (Interval.eval ctx (Hashtbl.find pts 3) (v "k")));
  (* An increment the guard does not cap wraps at max32, so the
     widened fact must degrade soundly to top, not stop at max32. *)
  let g =
    func ~params:[ "n" ] ~locals:[ "k" ]
      [
        Set ("k", i 0);
        (* 0 *)
        While
          ( v "n" > i 0,
            (* 1 *)
            [ Set ("k", v "k" + i 1) (* 2 *); Set ("n", v "n" - i 1) (* 3 *) ] );
        Ret (v "k") (* 4 *);
      ]
  in
  let ctx2, pts2 = points_of g in
  check_bool "uncapped counter widens to top" true
    (is_top (Interval.eval ctx2 (Hashtbl.find pts2 4) (v "k")))

let test_interval_unreachable_point () =
  let open Ast in
  let f =
    func ~locals:[ "x" ]
      [
        Set ("x", i 0);
        (* 0 *)
        If (i 3 > i 4, (* 1 *) [ Set ("x", i 1) ] (* 2 *), []);
        Ret (v "x") (* 3 *);
      ]
  in
  let ctx, pts = points_of f in
  check_bool "dead then-arm has no program point" false (Hashtbl.mem pts 2);
  Alcotest.(check (option int))
    "x constant at the return" (Some 0)
    (Interval.to_const (Interval.eval ctx (Hashtbl.find pts 3) (v "x")))

let test_interval_call_clobbers_globals () =
  let open Ast in
  let f =
    func ~locals:[ "x" ]
      [
        Set ("gg", i 5);
        (* 0 *)
        Do (Call ("f", []));
        (* 1: may rewrite gg *)
        Set ("x", v "gg");
        (* 2 *)
        Ret (v "x") (* 3 *);
      ]
  in
  let p = { Ast.globals = [ Scalar ("gg", 0) ]; funcs = [ f ] } in
  let ctx = Interval.ctx_of_program p in
  let pts = Interval.points ctx (Cfg.build f) in
  Alcotest.(check (option int))
    "gg known before the call" (Some 5)
    (Interval.to_const (Interval.eval ctx (Hashtbl.find pts 1) (v "gg")));
  check_bool "gg clobbered after the call" true
    (is_top (Interval.eval ctx (Hashtbl.find pts 2) (v "gg")))

let () =
  Alcotest.run "dataflow"
    [
      ( "cfg",
        [
          Alcotest.test_case "linear" `Quick test_cfg_linear;
          Alcotest.test_case "if diamond" `Quick test_cfg_if;
          Alcotest.test_case "while loop" `Quick test_cfg_while;
          Alcotest.test_case "dead code after return" `Quick
            test_cfg_dead_after_return;
          Alcotest.test_case "stmt_of_sid" `Quick test_cfg_stmt_of_sid;
        ] );
      ( "solver",
        [
          Alcotest.test_case "forward join" `Quick test_solver_forward_join;
          Alcotest.test_case "edge hook" `Quick test_solver_edge_hook;
          Alcotest.test_case "backward" `Quick test_solver_backward;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "loop" `Quick test_liveness_loop;
          Alcotest.test_case "globals live at exit" `Quick
            test_liveness_globals_at_exit;
          Alcotest.test_case "call reads globals" `Quick
            test_liveness_call_reads_globals;
        ] );
      ( "reaching",
        [
          Alcotest.test_case "uninit on one path" `Quick
            test_reaching_uninit_on_one_path;
          Alcotest.test_case "initialized on all paths" `Quick
            test_reaching_initialized_on_all_paths;
          Alcotest.test_case "loop-carried" `Quick test_reaching_loop_carried;
          Alcotest.test_case "ignores unreachable" `Quick
            test_reaching_ignores_unreachable;
        ] );
      ( "interval",
        [
          Alcotest.test_case "constant folding" `Quick
            test_interval_eval_folds_constants;
          Alcotest.test_case "multiplication bounds" `Quick
            test_interval_mul_bounds;
          Alcotest.test_case "division corners" `Quick
            test_interval_div_corners;
          Alcotest.test_case "byte loads" `Quick test_interval_byte_loads;
          Alcotest.test_case "cannot_trap" `Quick test_interval_cannot_trap;
          Alcotest.test_case "branch refinement" `Quick
            test_interval_branch_refinement;
          Alcotest.test_case "loop widening" `Quick
            test_interval_loop_widening;
          Alcotest.test_case "widening: nested loops" `Quick
            test_interval_widening_nested_loops;
          Alcotest.test_case "widening: decrementing counter" `Quick
            test_interval_widening_decrement;
          Alcotest.test_case "widening: int endpoints" `Quick
            test_interval_widening_int_endpoints;
          Alcotest.test_case "unreachable point" `Quick
            test_interval_unreachable_point;
          Alcotest.test_case "call clobbers globals" `Quick
            test_interval_call_clobbers_globals;
        ] );
    ]
