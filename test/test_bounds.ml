(* Tests for the static cycle-bound analysis: instruction-mix
   exactness on straight-line code, trip-count formulas, pricing
   sanity, and the bounds-gated exhaustive search returning exactly
   what a full sweep returns while simulating less. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Ast = Minic.Ast
module B = Minic.Bounds

let program ?(globals = []) ?(locals = []) body =
  { Ast.globals; funcs = [ { Ast.name = "main"; params = []; locals; body } ] }

let checked p =
  match Minic.Check.check p with
  | Ok () -> p
  | Error es -> Alcotest.failf "check: %s" (String.concat "; " es)

(* --- instruction-mix exactness --- *)

let test_straight_line_exact () =
  let open Ast in
  let p =
    checked
      (program ~locals:[ "a"; "b" ]
         [
           Set ("a", i 5);
           Set ("b", (v "a" * i 3) + (v "a" <<< i 2));
           Set ("b", v "b" / i 2);
           Ret (v "a" + v "b");
         ])
  in
  let s = B.summary p in
  let n = B.insns s.B.mix in
  check_bool "loop-free counts are exact" true (Stdlib.( = ) n.B.lo n.B.hi);
  check_int "one multiply" 1 s.B.mix.B.mul.B.hi;
  check_int "one divide" 1 s.B.mix.B.div.B.hi;
  check_int "one shift" 1 s.B.mix.B.shift.B.hi;
  check_int "no loops" 0 s.B.loops;
  (* the simulator retires exactly the predicted instruction count *)
  let r =
    Dse.Target_leon2.run_program Arch.Config.base (Minic.Codegen.compile p)
  in
  check_int "retired instructions match the static count" n.B.lo
    r.Sim.Machine.profile.Sim.Profiler.instructions;
  let lo, hi =
    Dse.Bounds.cycles
      (Dse.Target_leon2.cycle_model Arch.Config.base)
      s
  in
  let cyc = float_of_int r.Sim.Machine.profile.Sim.Profiler.cycles in
  check_bool "cycles within the static bounds" true
    (Stdlib.( <= ) lo cyc && Stdlib.( <= ) cyc hi)

(* --- trip-count formulas --- *)

let trips body =
  match B.loop_trips (checked (program ~locals:[ "k"; "s" ] body)) with
  | [ ("main", c) ] -> c
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

let test_trips_increment () =
  let open Ast in
  let c =
    trips
      [
        Set ("k", i 0);
        While (v "k" < i 10, [ Set ("k", v "k" + i 1) ]);
        Ret (v "k");
      ]
  in
  check_int "k<10 step 1: lo" 10 c.B.lo;
  check_int "k<10 step 1: hi" 10 c.B.hi

let test_trips_stride () =
  let open Ast in
  let c =
    trips
      [
        Set ("k", i 0);
        While (v "k" < i 10, [ Set ("k", v "k" + i 3) ]);
        Ret (v "k");
      ]
  in
  (* ceil(10/3) = 4 iterations: k = 0, 3, 6, 9 *)
  check_int "k<10 step 3: lo" 4 c.B.lo;
  check_int "k<10 step 3: hi" 4 c.B.hi

let test_trips_le () =
  let open Ast in
  let c =
    trips
      [
        Set ("k", i 1);
        While (v "k" <= i 10, [ Set ("k", v "k" + i 2) ]);
        Ret (v "k");
      ]
  in
  (* k = 1, 3, 5, 7, 9: five iterations *)
  check_int "k<=10 step 2: lo" 5 c.B.lo;
  check_int "k<=10 step 2: hi" 5 c.B.hi

let test_trips_decrement () =
  let open Ast in
  let c =
    trips
      [
        Set ("k", i 8);
        While (v "k" > i 0, [ Set ("k", v "k" - i 1) ]);
        Ret (v "k");
      ]
  in
  check_int "k>0 step -1: lo" 8 c.B.lo;
  check_int "k>0 step -1: hi" 8 c.B.hi

let test_trips_unbounded () =
  let open Ast in
  (* the condition variable is not an induction variable the analysis
     recognizes (conditional update), so the loop must get top *)
  let c =
    trips
      [
        Set ("k", i 0);
        Set ("s", i 0);
        While
          ( v "k" < i 10,
            [ If (v "s" < i 5, [ Set ("k", v "k" + i 1) ], []) ] );
        Ret (v "k");
      ]
  in
  check_int "conditional step: lo is 0" 0 c.B.lo;
  check_bool "conditional step: hi is unbounded" true
    (Stdlib.( = ) c.B.hi B.unbounded)

(* --- pricing: slower functional units can only raise the bounds --- *)

let test_pricing_monotone () =
  let with_mul m =
    { Arch.Config.base with
      Arch.Config.iu =
        { Arch.Config.base.Arch.Config.iu with Arch.Config.multiplier = m }
    }
  in
  let bounds m =
    Dse.Bounds.app_bounds
      (Dse.Target_leon2.cycle_model (with_mul m))
      Apps.Registry.arith
  in
  let lo_fast, hi_fast = bounds Arch.Config.Mul_32x32 in
  let lo_slow, hi_slow = bounds Arch.Config.Mul_none in
  check_bool "slower multiplier raises the lower bound" true
    (lo_slow > lo_fast);
  check_bool "slower multiplier raises the upper bound" true
    (hi_slow > hi_fast)

let test_tightness () =
  Alcotest.(check (option (float 1e-9)))
    "ratio" (Some 2.0)
    (Dse.Bounds.tightness ~lo:3.0 ~hi:6.0);
  Alcotest.(check (option (float 1e-9)))
    "zero lower bound" None
    (Dse.Bounds.tightness ~lo:0.0 ~hi:6.0);
  Alcotest.(check (option (float 1e-9)))
    "unbounded" None
    (Dse.Bounds.tightness ~lo:3.0 ~hi:infinity)

(* --- bounds-gated exhaustive search --- *)

let test_best_runtime_search_identity () =
  let app = Apps.Registry.arith in
  let with_mul m =
    { Arch.Config.base with
      Arch.Config.iu =
        { Arch.Config.base.Arch.Config.iu with Arch.Config.multiplier = m }
    }
  in
  let configs =
    List.map with_mul
      [
        Arch.Config.Mul_none;
        Arch.Config.Mul_iterative;
        Arch.Config.Mul_16x16;
        Arch.Config.Mul_32x16;
        Arch.Config.Mul_32x32;
      ]
  in
  let plain = Dse.Exhaustive.best_runtime (Dse.Exhaustive.sweep app configs) in
  let before = Obs.Metrics.Counter.value Dse.Bounds.m_pruned in
  let searched = Dse.Exhaustive.best_runtime_search app configs in
  let after = Obs.Metrics.Counter.value Dse.Bounds.m_pruned in
  check_bool "same winning configuration" true
    (Dse.Target_leon2.to_string plain.Dse.Exhaustive.config
    = Dse.Target_leon2.to_string searched.Dse.Exhaustive.config);
  (match (plain.Dse.Exhaustive.cost, searched.Dse.Exhaustive.cost) with
  | Some a, Some b ->
      Alcotest.(check (float 0.0))
        "same runtime" a.Dse.Cost.seconds b.Dse.Cost.seconds
  | _ -> Alcotest.fail "both searches must cost the winner");
  check_bool "the gated search pruned dominated candidates" true
    (after > before)

let () =
  Alcotest.run "bounds"
    [
      ( "mix",
        [
          Alcotest.test_case "straight-line exactness" `Quick
            test_straight_line_exact;
        ] );
      ( "trips",
        [
          Alcotest.test_case "unit stride" `Quick test_trips_increment;
          Alcotest.test_case "stride 3" `Quick test_trips_stride;
          Alcotest.test_case "inclusive bound" `Quick test_trips_le;
          Alcotest.test_case "decrement" `Quick test_trips_decrement;
          Alcotest.test_case "unbounded" `Quick test_trips_unbounded;
        ] );
      ( "pricing",
        [
          Alcotest.test_case "monotone in stalls" `Quick test_pricing_monotone;
          Alcotest.test_case "tightness" `Quick test_tightness;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "gated search identity" `Quick
            test_best_runtime_search_identity;
        ] );
    ]
