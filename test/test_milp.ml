(* Tests for the LP-based branch-and-bound MILP solver and the
   McCormick linearization (the paper's "convex recast" future work). *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let row = Array.of_list

let milp ?(upper = []) objective binary constraints =
  let n = Array.length objective in
  {
    Optim.Milp.objective;
    constraints;
    binary = Array.of_list binary;
    upper =
      (if upper = [] then Array.make n infinity else Array.of_list upper);
  }

let test_milp_knapsack () =
  (* max 6a + 5b + 4c st 5a + 4b + 3c <= 8 -> a + c, value 10. *)
  let p =
    milp
      [| -6.0; -5.0; -4.0 |]
      [ true; true; true ]
      [ (row [ 5.0; 4.0; 3.0 ], Optim.Simplex.Le, 8.0) ]
  in
  match Optim.Milp.solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_float "objective" (-10.0) s.objective;
      check_float "a" 1.0 s.x.(0);
      check_float "b" 0.0 s.x.(1);
      check_float "c" 1.0 s.x.(2)

let test_milp_pure_lp () =
  (* No binaries: must match simplex exactly. *)
  let p =
    milp ~upper:[ 10.0; 10.0 ]
      [| -3.0; -5.0 |]
      [ false; false ]
      [
        (row [ 1.0; 0.0 ], Optim.Simplex.Le, 4.0);
        (row [ 0.0; 2.0 ], Optim.Simplex.Le, 12.0);
        (row [ 3.0; 2.0 ], Optim.Simplex.Le, 18.0);
      ]
  in
  match Optim.Milp.solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s -> check_float "lp objective" (-36.0) s.objective

let test_milp_mixed () =
  (* Binary gate y opens capacity for continuous x:
     min -x st x <= 5y, y binary -> y=1, x=5 unless y is costly. *)
  let p =
    milp ~upper:[ 100.0; 1.0 ]
      [| -1.0; 3.0 |]
      [ false; true ]
      [ (row [ 1.0; -5.0 ], Optim.Simplex.Le, 0.0) ]
  in
  match Optim.Milp.solve p with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
      check_float "objective" (-2.0) s.objective;
      check_float "y" 1.0 s.x.(1);
      check_float "x" 5.0 s.x.(0)

let test_milp_infeasible () =
  let p =
    milp [| 1.0 |] [ true ]
      [
        (row [ 1.0 ], Optim.Simplex.Ge, 0.4);
        (row [ 1.0 ], Optim.Simplex.Le, 0.6);
      ]
  in
  check_bool "no integral point in [0.4, 0.6]" true (Optim.Milp.solve p = None)

let test_milp_node_limit () =
  let n = 14 in
  let objective = Array.init n (fun j -> -.(1.0 +. float_of_int (j mod 3))) in
  let weights = Array.init n (fun j -> 2.0 +. float_of_int ((j * 5) mod 7)) in
  let p =
    milp objective
      (List.init n (fun _ -> true))
      [ (weights, Optim.Simplex.Le, 20.0) ]
  in
  match Optim.Milp.solve ~node_limit:3 p with
  | exception Optim.Milp.Node_limit -> ()
  | _ -> Alcotest.fail "expected node limit"

(* Differential: on purely linear problems, LP-based B&B and the
   combinatorial Binlp solver agree. *)
let gen_linear_binlp =
  let open QCheck.Gen in
  int_range 2 7 >>= fun nvars ->
  let coef = map (fun k -> float_of_int (k - 6)) (int_range 0 12) in
  array_size (return nvars) coef >>= fun objective ->
  let lin_gen =
    list_size (int_range 1 nvars) (pair (int_range 0 (nvars - 1)) coef)
    >>= fun coeffs ->
    coef >>= fun const -> return { Optim.Binlp.coeffs; const }
  in
  list_size (int_range 0 3)
    ( lin_gen >>= fun l ->
      oneofl [ Optim.Binlp.Le; Optim.Binlp.Ge ] >>= fun rel ->
      map (fun k -> Optim.Binlp.linear l rel (float_of_int (k - 3))) (int_range 0 14) )
  >>= fun constraints ->
  return { Optim.Binlp.nvars; objective; groups = []; constraints }

let to_milp (p : Optim.Binlp.problem) =
  let dense (l : Optim.Binlp.lin) =
    let r = Array.make p.nvars 0.0 in
    List.iter (fun (j, a) -> r.(j) <- r.(j) +. a) l.Optim.Binlp.coeffs;
    r
  in
  {
    Optim.Milp.objective = p.objective;
    constraints =
      List.map
        (fun (c : Optim.Binlp.constr) ->
          match c.Optim.Binlp.terms with
          | [ Optim.Binlp.Lin l ] ->
              ( dense l,
                (match c.Optim.Binlp.rel with
                | Optim.Binlp.Le -> Optim.Simplex.Le
                | Optim.Binlp.Ge -> Optim.Simplex.Ge),
                c.Optim.Binlp.bound -. l.Optim.Binlp.const )
          | _ -> assert false)
        p.constraints;
    binary = Array.make p.nvars true;
    upper = Array.make p.nvars 1.0;
  }

let milp_vs_binlp_qtest =
  QCheck.Test.make ~count:200 ~name:"LP-based B&B = combinatorial B&B (linear)"
    (QCheck.make gen_linear_binlp)
    (fun p ->
      let a = Optim.Milp.solve (to_milp p) in
      let b = (Optim.Binlp.solve p).Optim.Binlp.best in
      match (a, b) with
      | None, None -> true
      | Some sa, Some sb -> Float.abs (sa.objective -. sb.objective) < 1e-6
      | Some _, None | None, Some _ -> false)

(* --- McCormick --- *)

let lin coeffs const = { Optim.Binlp.coeffs; const }

let product_problem =
  {
    Optim.Binlp.nvars = 3;
    objective = [| -3.0; -2.0; -2.5 |];
    groups = [];
    constraints =
      [
        Optim.Binlp.product
          (lin [ (0, 1.0) ] 1.0)
          (lin [ (1, 2.0); (2, 3.0) ] 0.0)
          Optim.Binlp.Le 4.0;
      ];
  }

let test_mccormick_relaxation_bound () =
  (* The linearization relaxes the feasible set, so its optimum cannot
     be worse (higher) than the true optimum. *)
  let exact = (Optim.Binlp.solve product_problem).Optim.Binlp.best in
  let relaxed = Optim.Mccormick.solve product_problem in
  match (exact, relaxed) with
  | Some e, Some r ->
      check_bool "relaxed optimum <= exact optimum" true
        (r.objective <= e.objective +. 1e-9)
  | _ -> Alcotest.fail "both must solve"

let test_mccormick_exact_when_linear () =
  let p =
    {
      Optim.Binlp.nvars = 4;
      objective = [| -2.0; -1.0; 3.0; -4.0 |];
      groups = [ [ 0; 1 ] ];
      constraints =
        [
          Optim.Binlp.linear
            (lin [ (0, 2.0); (3, 2.0) ] 0.0)
            Optim.Binlp.Le 3.0;
        ];
    }
  in
  match ((Optim.Binlp.solve p).Optim.Binlp.best, Optim.Mccormick.solve p) with
  | Some a, Some b -> check_float "identical on linear problems" a.objective b.objective
  | _ -> Alcotest.fail "both must solve"

let gen_product_problem =
  let open QCheck.Gen in
  int_range 2 6 >>= fun nvars ->
  let coef = map (fun k -> float_of_int (k - 4)) (int_range 0 8) in
  array_size (return nvars) coef >>= fun objective ->
  let lin_gen =
    list_size (int_range 1 3) (pair (int_range 0 (nvars - 1)) coef)
    >>= fun coeffs ->
    map (fun k -> lin coeffs (float_of_int k)) (int_range 0 2)
  in
  lin_gen >>= fun f1 ->
  lin_gen >>= fun f2 ->
  int_range (-5) 25 >>= fun bound ->
  return
    {
      Optim.Binlp.nvars;
      objective;
      groups = [];
      constraints =
        [ Optim.Binlp.product f1 f2 Optim.Binlp.Le (float_of_int bound) ];
    }

let mccormick_bound_qtest =
  QCheck.Test.make ~count:200
    ~name:"McCormick optimum bounds the exact optimum from below"
    (QCheck.make gen_product_problem)
    (fun p ->
      match ((Optim.Binlp.solve p).Optim.Binlp.best, Optim.Mccormick.solve p) with
      | None, None -> true
      | None, Some _ -> true (* relaxation may be feasible when truth is not *)
      | Some _, None -> false (* ...but never the other way around *)
      | Some e, Some r -> r.objective <= e.objective +. 1e-6)

let () =
  Alcotest.run "milp"
    [
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "pure LP" `Quick test_milp_pure_lp;
          Alcotest.test_case "mixed" `Quick test_milp_mixed;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "node limit" `Quick test_milp_node_limit;
          QCheck_alcotest.to_alcotest milp_vs_binlp_qtest;
        ] );
      ( "mccormick",
        [
          Alcotest.test_case "relaxation bound" `Quick test_mccormick_relaxation_bound;
          Alcotest.test_case "exact when linear" `Quick test_mccormick_exact_when_linear;
          QCheck_alcotest.to_alcotest mccormick_bound_qtest;
        ] );
    ]
