(* Golden decision-provenance report: a pinned dcache-subspace run on
   LEON2/arith with the journal enabled must render byte-identical
   JSON and markdown reports.  Timings are omitted ([~timings:false])
   so the capture is wall-clock free; every remaining field — solver
   incumbent timeline, per-candidate accounting, bound tightness — is
   deterministic for this pipeline.  `dune promote` updates the
   .expected files on an intentional change. *)

module S = Dse.Stack.Make (Dse.Target_leon2)

let () =
  Obs.Journal.set_enabled true;
  Obs.Journal.record ~kind:"run.meta"
    [
      ("tool", Obs.Json.String "explain_golden");
      ("target", Obs.Json.String Dse.Target_leon2.name);
      ("app", Obs.Json.String "arith");
      ("dims", Obs.Json.String "dcache");
    ];
  let model =
    S.Measure.build ~dims:Dse.Target_leon2.quick_dims Apps.Registry.arith
  in
  let _outcome =
    S.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights model
  in
  let report = Dse.Explain.of_journal () in
  print_string (Obs.Json.to_string (Dse.Explain.to_json ~timings:false report));
  print_newline ();
  print_string (Dse.Explain.to_markdown ~timings:false report)
