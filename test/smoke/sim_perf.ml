(* Simulator-throughput smoke test (@sim-perf): run a fixed
   ~100M-cycle workload through the decoded direct-threaded core
   twice in one process, record simulated-cycles-per-second for each
   run, and gate the second run against the first with the standard
   bench-history rules — sim_cycles pinned at 1.05x (the workload is
   deterministic, so any drift is a bug) and throughput floored at
   0.67x.  The bench binary applies the same rules across processes
   via BENCH_history.jsonl; this rule makes the gate self-testing in a
   sandboxed build. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let iterations = 10_000_000

(* Six-instruction loop, ~10 cycles per iteration on the base config:
   a load/increment/store chain (with one deliberate load-use
   interlock), a flag-setting decrement and a taken backward branch
   with its ICC hold — exercising every hot handler class. *)
let program () =
  let o0 = Isa.Reg.o 0 and o1 = Isa.Reg.o 1 and o2 = Isa.Reg.o 2 in
  let a = Isa.Asm.create () in
  let buf = Isa.Asm.data_zero a ~name:"acc" 16 in
  Isa.Asm.set32 a buf o1;
  Isa.Asm.set32 a iterations o0;
  Isa.Asm.label a "top";
  Isa.Asm.emit a
    (Isa.Insn.Load
       { width = Isa.Insn.Word; signed = false; rd = o2; rs1 = o1;
         op2 = Isa.Insn.Imm 0 });
  Isa.Asm.emit a
    (Isa.Insn.Alu
       { op = Isa.Insn.Add; cc = false; rd = o2; rs1 = o2;
         op2 = Isa.Insn.Imm 1 });
  Isa.Asm.emit a
    (Isa.Insn.Store
       { width = Isa.Insn.Word; rs = o2; rs1 = o1; op2 = Isa.Insn.Imm 0 });
  Isa.Asm.emit a
    (Isa.Insn.Alu
       { op = Isa.Insn.Sub; cc = true; rd = o0; rs1 = o0;
         op2 = Isa.Insn.Imm 1 });
  Isa.Asm.bcc a Isa.Insn.Ne "top";
  Isa.Asm.emit a Isa.Insn.Halt;
  Isa.Asm.finish a ~entry:0

let run_once prog =
  let t0 = Obs.Clock.now_ns () in
  let r = Sim.Machine.run ~reps:1 Arch.Config.base prog in
  let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
  let cycles = r.Sim.Machine.profile.Sim.Profiler.cycles in
  (cycles, Int64.to_float wall_ns /. 1e9)

let entry cycles wall_s =
  let wall_s = if wall_s > 0.0 then wall_s else 1e-9 in
  {
    Obs.History.rev = "sim-perf-smoke";
    target = "sim-perf";
    time = 0.0;
    metrics =
      [
        ("sim_cycles", float_of_int cycles);
        ("sim_cycles_per_second", float_of_int cycles /. wall_s);
        ("wall_clock_s", wall_s);
      ];
  }

let () =
  let path = "sim_perf.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let prog = program () in
  let c1, w1 = run_once prog in
  if c1 < 50_000_000 then
    fail "workload too small to measure: %d cycles" c1;
  Obs.History.append path (entry c1 w1);
  let c2, w2 = run_once prog in
  if c2 <> c1 then fail "nondeterministic cycle count: %d vs %d" c1 c2;
  let history =
    match Obs.History.load path with
    | Ok h -> h
    | Error m -> fail "history did not round-trip: %s" m
  in
  (match Obs.History.check ~history (entry c2 w2) with
  | [] -> ()
  | regs ->
      List.iter
        (fun r -> Format.eprintf "sim-perf: REGRESSION %a@." Obs.History.pp_regression r)
        regs;
      exit 1);
  Obs.History.append path (entry c2 w2);
  Printf.printf "sim-perf: %d cycles, %.1f / %.1f Mcycles/s (cold/warm): ok\n"
    c1
    (float_of_int c1 /. w1 /. 1e6)
    (float_of_int c2 /. w2 /. 1e6)
