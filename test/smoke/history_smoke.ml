(* Bench-history regression-gate self-test (@bench-check): record a
   small clean history, verify a clean re-run passes the gate, verify
   a synthetically perturbed run is detected, and verify the detection
   names the right metrics with the right direction. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let clean_metrics =
  [ ("wall_clock_s", 1.0); ("builds", 100.0); ("bounds_pruned", 40.0) ]

let entry ~rev metrics =
  { Obs.History.rev; target = "smoke"; time = 0.0; metrics }

let () =
  let path = "history_smoke.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (* record *)
  Obs.History.append path (entry ~rev:"r0" clean_metrics);
  Obs.History.append path (entry ~rev:"r1" clean_metrics);
  let history =
    match Obs.History.load path with
    | Ok h -> h
    | Error m -> fail "history did not round-trip: %s" m
  in
  if List.length history <> 2 then
    fail "expected 2 entries, loaded %d" (List.length history);
  (* clean re-run passes *)
  (match Obs.History.check ~history (entry ~rev:"r2" clean_metrics) with
  | [] -> ()
  | regs -> fail "clean re-run flagged %d regression(s)" (List.length regs));
  (* perturb: wall clock doubles (above its 1.50x limit), pruning
     halves (below its 0.95x floor) *)
  let perturbed =
    entry ~rev:"r2"
      [ ("wall_clock_s", 2.0); ("builds", 100.0); ("bounds_pruned", 20.0) ]
  in
  (* detect *)
  (match Obs.History.check ~history perturbed with
  | [] -> fail "perturbed run passed the gate"
  | regs ->
      let metric_of (r : Obs.History.regression) = r.Obs.History.metric in
      if not (List.mem "wall_clock_s" (List.map metric_of regs)) then
        fail "wall-clock regression not detected";
      if not (List.mem "bounds_pruned" (List.map metric_of regs)) then
        fail "pruning-floor regression not detected";
      List.iter
        (fun (r : Obs.History.regression) ->
          Format.printf "detected: %a@." Obs.History.pp_regression r)
        regs);
  print_endline "history smoke: ok"
