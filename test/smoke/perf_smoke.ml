(* Perf smoke (@perf-smoke): run the dcache-subspace pipeline twice in
   one process and assert the second pass is served almost entirely
   (>= 90 %) from the evaluation engine's memo cache, judged from the
   exported metrics JSON — the same artifact users get from
   --metrics-out.  A regression that silently stops memoizing (a key
   scheme change, a cache bypass) fails this without waiting for the
   full benchmarks. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let counter json path name =
  match Option.bind (Obs.Json.member name json) (Obs.Json.member "value") with
  | Some v -> (
      match Obs.Json.to_int v with
      | Some n -> n
      | None -> fail "%s: %s.value is not an integer" path name)
  | None -> fail "%s: no %s counter in metrics dump" path name

let pipeline () =
  ignore
    (Dse.Optimizer.run ~dims:Arch.Param.dcache_size_dims
       ~weights:Dse.Cost.runtime_only Apps.Registry.arith)

let () =
  match Array.to_list Sys.argv with
  | [ _; pass1_path; pass2_path ] ->
      pipeline ();
      Obs.Export.write_metrics pass1_path;
      pipeline ();
      Obs.Export.write_metrics pass2_path;
      let parse path =
        match Obs.Json.parse (read_file path) with
        | Ok json -> json
        | Error m -> fail "%s: invalid JSON: %s" path m
      in
      let m1 = parse pass1_path and m2 = parse pass2_path in
      let hits = counter m2 pass2_path "dse.engine.hits" - counter m1 pass1_path "dse.engine.hits" in
      let misses =
        counter m2 pass2_path "dse.engine.misses"
        - counter m1 pass1_path "dse.engine.misses"
      in
      let total = hits + misses in
      if total = 0 then fail "second pass performed no evaluations";
      let ratio = float_of_int hits /. float_of_int total in
      Printf.printf "second pass: %d hits / %d evaluations (%.0f%% cached)\n"
        hits total (100.0 *. ratio);
      if ratio < 0.9 then
        fail "second pass only %.0f%% cache hits (want >= 90%%)"
          (100.0 *. ratio)
  | _ -> fail "usage: perf_smoke PASS1.json PASS2.json"
