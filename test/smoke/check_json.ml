(* Validate exporter output: each argument must parse as JSON; a file
   containing a trace must carry a non-empty traceEvents list whose
   events all have non-negative timestamps.  Exit 0 iff every file
   passes — the @obs smoke alias runs this over a real reconfigure
   invocation with both exporters enabled. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_trace path json =
  match Obs.Json.member "traceEvents" json with
  | None -> ()
  | Some (Obs.Json.List []) -> fail "%s: traceEvents is empty" path
  | Some (Obs.Json.List evs) ->
      List.iter
        (fun ev ->
          match Option.bind (Obs.Json.member "ts" ev) Obs.Json.to_float with
          | Some ts when ts >= 0.0 -> ()
          | Some ts -> fail "%s: negative timestamp %f" path ts
          | None -> fail "%s: event without numeric ts" path)
        evs
  | Some _ -> fail "%s: traceEvents is not a list" path

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then fail "usage: check_json FILE...";
  List.iter
    (fun path ->
      match Obs.Json.parse (read_file path) with
      | Error m -> fail "%s: invalid JSON: %s" path m
      | Ok json ->
          check_trace path json;
          Printf.printf "%s: ok\n" path)
    files
