(* Validate exporter output: each argument must parse as JSON; a file
   containing a trace must carry a non-empty traceEvents list whose
   events all have non-negative timestamps.  Files ending in [.folded]
   are validated as folded-stacks profiles instead (lines of
   ["frame;frame;... count"], positive counts, non-empty frames; an
   empty profile is fine — a fast run may take no samples).  Exit 0
   iff every file passes — the @obs smoke alias runs this over a real
   reconfigure invocation with all exporters enabled. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_trace path json =
  match Obs.Json.member "traceEvents" json with
  | None -> ()
  | Some (Obs.Json.List []) -> fail "%s: traceEvents is empty" path
  | Some (Obs.Json.List evs) ->
      List.iter
        (fun ev ->
          match Option.bind (Obs.Json.member "ts" ev) Obs.Json.to_float with
          | Some ts when ts >= 0.0 -> ()
          | Some ts -> fail "%s: negative timestamp %f" path ts
          | None -> fail "%s: event without numeric ts" path)
        evs
  | Some _ -> fail "%s: traceEvents is not a list" path

let check_folded path contents =
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> fail "%s: folded line without a count: %S" path line
        | Some i ->
            let stack = String.sub line 0 i in
            let count = String.sub line (i + 1) (String.length line - i - 1) in
            (match int_of_string_opt count with
            | Some c when c > 0 -> ()
            | Some c -> fail "%s: non-positive sample count %d" path c
            | None -> fail "%s: non-integer sample count %S" path count);
            if stack = "" then fail "%s: empty stack" path;
            List.iter
              (fun frame ->
                if frame = "" then fail "%s: empty frame in %S" path stack)
              (String.split_on_char ';' stack))
    (String.split_on_char '\n' contents)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then fail "usage: check_json FILE...";
  List.iter
    (fun path ->
      if Filename.check_suffix path ".folded" then begin
        check_folded path (read_file path);
        Printf.printf "%s: ok\n" path
      end
      else
        match Obs.Json.parse (read_file path) with
        | Error m -> fail "%s: invalid JSON: %s" path m
        | Ok json ->
            check_trace path json;
            Printf.printf "%s: ok\n" path)
    files
