(* @bounds-smoke: every registry application, on every registered
   target, must simulate within its static [best, worst] runtime
   bounds on the target's base configuration.  A violation means the
   bounds analysis (Minic.Bounds / Dse.Bounds) and the simulator
   disagree — the same invariant the fuzz bounds oracles check on
   random programs, here pinned on the real workloads. *)

let () =
  let failures = ref 0 in
  List.iter
    (fun (module T : Dse.Target.S) ->
      List.iter
        (fun app ->
          let lo, hi = Dse.Bounds.app_bounds (T.cycle_model T.base) app in
          let s = Sim.Machine.seconds (T.run_app app) in
          let ok = lo <= s && s <= hi in
          if not ok then incr failures;
          let tight =
            match Dse.Bounds.tightness ~lo ~hi with
            | Some r -> Printf.sprintf "x%.2f" r
            | None -> "unbounded"
          in
          Printf.printf "%-12s %-8s %s  lo=%.6f sim=%.6f hi=%.6f  (%s)\n"
            T.name app.Apps.Registry.name
            (if ok then "ok" else "VIOLATION")
            lo s hi tight)
        Apps.Registry.all)
    Dse.Targets.all;
  if !failures > 0 then begin
    Printf.printf "%d bound violation(s)\n" !failures;
    exit 1
  end
