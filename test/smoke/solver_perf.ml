(* Solver-throughput smoke test (@solver-perf): solve a fixed
   ablation-class BINLP formulation — the paper's 52-variable shape
   with a product (cache-resource) constraint, sized to explore a few
   hundred thousand branch-and-bound nodes — twice in one process,
   record nodes-per-second for each run, and gate the second run
   against the first with the standard bench-history rules:
   solver_nodes pinned at 1.05x (the formulation is deterministic, so
   any drift is a bug) and binlp_nodes_per_second floored at 0.67x.
   The bench binary applies the same rules across processes via
   BENCH_history.jsonl; this rule makes the gate self-testing in a
   sandboxed build. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* Deterministic ablation-class instance: the paper's shape (SOS1
   option groups, a multiplicative cache-resource coupling, a linear
   budget) sized so the budget binds at roughly a third of the
   variables — the knapsack-like regime where the objective bound
   prunes weakly and the tree genuinely explores a few hundred
   thousand nodes.  All coefficients are exact dyadic rationals, so
   the node count and winner are bit-deterministic. *)
let problem () =
  let nvars = 30 in
  let objective =
    Array.init nvars (fun j -> -.float_of_int ((j * 7 mod 13) + 1) /. 4.0)
  in
  let groups = [ [ 0; 1; 2 ]; [ 3; 4; 5; 6 ] ] in
  let lin coeffs const = { Optim.Binlp.coeffs; const } in
  let w =
    List.init nvars (fun j -> (j, float_of_int ((j * 5 mod 11) + 3) /. 2.0))
  in
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 w in
  {
    Optim.Binlp.nvars;
    objective;
    groups;
    constraints =
      [
        Optim.Binlp.linear (lin w 0.0) Optim.Binlp.Le (0.3 *. total);
        Optim.Binlp.product
          (lin [ (3, 1.0); (4, 2.0); (5, 3.0) ] 1.0)
          (lin w 0.0) Optim.Binlp.Le (0.9 *. total);
      ];
  }

let run_once p =
  let t0 = Obs.Clock.now_ns () in
  let o = Optim.Binlp.solve p in
  let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
  (o, Int64.to_float wall_ns /. 1e9)

let entry nodes wall_s =
  let wall_s = if wall_s > 0.0 then wall_s else 1e-9 in
  {
    Obs.History.rev = "solver-perf-smoke";
    target = "solver-perf";
    time = 0.0;
    metrics =
      [
        ("solver_nodes", float_of_int nodes);
        ("binlp_nodes_per_second", float_of_int nodes /. wall_s);
        ("wall_clock_s", wall_s);
      ];
  }

let () =
  let path = "solver_perf.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let p = problem () in
  let o1, w1 = run_once p in
  if o1.Optim.Binlp.status <> Optim.Binlp.Optimal then
    fail "solver hit the node limit on the fixed instance";
  if o1.Optim.Binlp.nodes < 50_000 then
    fail "workload too small to measure: %d nodes" o1.Optim.Binlp.nodes;
  Obs.History.append path (entry o1.Optim.Binlp.nodes w1);
  let o2, w2 = run_once p in
  if o2.Optim.Binlp.nodes <> o1.Optim.Binlp.nodes then
    fail "nondeterministic node count: %d vs %d" o1.Optim.Binlp.nodes
      o2.Optim.Binlp.nodes;
  (match (o1.Optim.Binlp.best, o2.Optim.Binlp.best) with
  | Some a, Some b when a.Optim.Binlp.x = b.Optim.Binlp.x -> ()
  | _ -> fail "nondeterministic winner across identical solves");
  let history =
    match Obs.History.load path with
    | Ok h -> h
    | Error m -> fail "history did not round-trip: %s" m
  in
  (match Obs.History.check ~history (entry o2.Optim.Binlp.nodes w2) with
  | [] -> ()
  | regs ->
      List.iter
        (fun r ->
          Format.eprintf "solver-perf: REGRESSION %a@." Obs.History.pp_regression
            r)
        regs;
      exit 1);
  Obs.History.append path (entry o2.Optim.Binlp.nodes w2);
  Printf.printf
    "solver-perf: %d nodes, %.2f / %.2f Mnodes/s (cold/warm): ok\n"
    o1.Optim.Binlp.nodes
    (float_of_int o1.Optim.Binlp.nodes /. w1 /. 1e6)
    (float_of_int o2.Optim.Binlp.nodes /. w2 /. 1e6)
