(* @phase-smoke alias: the whole phase-aware pipeline — detect, per-
   phase measurement, schedule solve, phased verification — on every
   registered target, using the deliberately bi-modal [phases] kernel.
   Checks, per target: at least two phases are detected, every
   per-phase configuration is valid and fits the device, the 1-phase
   degenerate path agrees bit-exactly with the static optimizer, and
   the schedule's verified runtime does not lose to the verified
   static pick (the dominance the formulation is built around). *)

let () =
  let app = Apps.Extra.phases in
  List.iter
    (fun (module T : Dse.Target.S) ->
      let module S = Dse.Stack.Make (T) in
      let weights = Dse.Cost.runtime_weights in
      let o = S.Schedule.run ~weights app in
      let n = Sim.Phase.count o.S.Schedule.phases in
      if n < 2 then (
        Printf.eprintf "%s: expected >= 2 phases on %s, detected %d\n" T.name
          app.Apps.Registry.name n;
        exit 1);
      (match o.S.Schedule.plan with
      | S.Schedule.Static c ->
          if not (T.feasible c) then (
            Printf.eprintf "%s: static plan does not fit the device\n" T.name;
            exit 1)
      | S.Schedule.Phased schedule ->
          List.iter
            (fun (_, c) ->
              if not (T.feasible c) then (
                Printf.eprintf "%s: phase configuration does not fit\n" T.name;
                exit 1))
            schedule);
      if o.S.Schedule.scheduled_seconds > o.S.Schedule.static_seconds *. (1.0 +. 1e-9)
      then (
        Printf.eprintf "%s: schedule (%.9fs) lost to static (%.9fs)\n" T.name
          o.S.Schedule.scheduled_seconds o.S.Schedule.static_seconds;
        exit 1);
      Printf.printf
        "%-12s %s: %d phases, static %.6fs -> scheduled %.6fs (%+.2f%%, %d \
         switch cycles, %d nodes)\n"
        T.name app.Apps.Registry.name n o.S.Schedule.static_seconds
        o.S.Schedule.scheduled_seconds o.S.Schedule.gain_percent
        o.S.Schedule.switch_cycles o.S.Schedule.solve_nodes;
      (* The one-phase degenerate path must reproduce the static
         optimizer exactly: force a segmentation with no interior
         boundaries by raising the window past the whole run. *)
      let coarse =
        {
          Sim.Phase.default_options with
          Sim.Phase.window = max 1 o.S.Schedule.phases.Sim.Phase.total_insns;
        }
      in
      let one = S.Schedule.run ~options:coarse ~weights app in
      if Sim.Phase.count one.S.Schedule.phases <> 1 then (
        Printf.eprintf "%s: coarse segmentation still found %d phases\n" T.name
          (Sim.Phase.count one.S.Schedule.phases);
        exit 1);
      let static_config =
        match one.S.Schedule.plan with
        | S.Schedule.Static c -> c
        | S.Schedule.Phased _ ->
            Printf.eprintf "%s: one-phase run produced a phased plan\n" T.name;
            exit 1
      in
      let reference =
        S.Optimizer.run ~dims:T.schedule_dims ~weights app
      in
      if not (T.equal static_config reference.S.Optimizer.config) then (
        Printf.eprintf "%s: one-phase schedule disagrees with the static \
                        optimizer (%s vs %s)\n"
          T.name
          (T.to_string static_config)
          (T.to_string reference.S.Optimizer.config);
        exit 1))
    Dse.Targets.all;
  print_endline "phase smoke: ok"
