(* @targets alias: run a fig-2-style study — quick-dims one-at-a-time
   model, BINLP solve, verification build, exhaustive geometry sweep —
   on EVERY registered target at a tiny budget, all through the shared
   functorized stack.  A backend that registers but cannot complete
   the paper's pipeline fails here, not in a user's hands. *)

let () =
  let app = Apps.Registry.arith in
  List.iter
    (fun (module T : Dse.Target.S) ->
      let module S = Dse.Stack.Make (T) in
      let outcome =
        S.Optimizer.run ~dims:T.quick_dims ~weights:Dse.Cost.runtime_weights
          app
      in
      if not (T.is_valid outcome.S.Optimizer.config) then (
        Printf.eprintf "%s: optimizer recommended an invalid configuration\n"
          T.name;
        exit 1);
      if not (T.feasible outcome.S.Optimizer.config) then (
        Printf.eprintf "%s: optimizer recommended an unfit configuration\n"
          T.name;
        exit 1);
      let actual = outcome.S.Optimizer.actual.Dse.Cost.seconds in
      if not (actual > 0.0) then (
        Printf.eprintf "%s: non-positive measured runtime\n" T.name;
        exit 1);
      let points = S.Exhaustive.geometry_sweep app in
      let feasible = S.Exhaustive.feasible_points points in
      if feasible = [] then (
        Printf.eprintf "%s: no feasible sweep geometry\n" T.name;
        exit 1);
      let best = S.Exhaustive.best_runtime points in
      Printf.printf "%-12s %s -> %s, %.3fs (sweep best %s, %d/%d feasible)\n"
        T.name app.Apps.Registry.name
        (T.to_string outcome.S.Optimizer.config)
        actual
        (T.describe_sweep_point best.S.Exhaustive.config)
        (List.length feasible) (List.length points))
    Dse.Targets.all;
  print_endline "targets smoke: ok"
