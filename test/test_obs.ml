(* Observability layer: JSON round-trips, the metrics registry under
   domain contention, the Chrome trace-event export format (golden
   structure: stable field order, non-negative monotonic timestamps,
   properly nested complete events), and the simulator profiler's
   structural invariants. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Json --- *)

let sample =
  Obs.Json.(
    Obj
      [
        ("name", String "solve \"quoted\"\n");
        ("count", Int 42);
        ("ratio", Float 0.125);
        ("flag", Bool true);
        ("nothing", Null);
        ("xs", List [ Int 1; Int 2; Int 3 ]);
        ("nested", Obj [ ("k", String "v") ]);
      ])

let test_json_roundtrip () =
  match Obs.Json.parse (Obs.Json.to_string sample) with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok v ->
      Alcotest.(check string)
        "round-trip" (Obs.Json.to_string sample) (Obs.Json.to_string v)

let test_json_field_order_preserved () =
  (* The parser keeps object field order, which is what lets the golden
     trace test below assert the exporter's field order. *)
  match Obs.Json.parse {|{"b":1,"a":2,"c":3}|} with
  | Ok (Obs.Json.Obj fields) ->
      Alcotest.(check (list string)) "order" [ "b"; "a"; "c" ]
        (List.map fst fields)
  | Ok _ | Error _ -> Alcotest.fail "expected object"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

let test_json_float_precision () =
  (* Floats must round-trip exactly: the old %.12g emission dropped
     precision on re-parsed metrics/trace values (0.1 +. 0.2 came back
     as 0.3).  Values with short decimal forms keep them. *)
  let roundtrip f =
    match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Float f)) with
    | Ok (Obs.Json.Float f') -> f'
    | Ok _ -> Alcotest.failf "%h did not parse back as a float" f
    | Error m -> Alcotest.failf "%h: parse failed: %s" f m
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%h round-trips" f)
        true
        (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float (roundtrip f))))
    [
      0.1 +. 0.2;
      1.0 /. 3.0;
      Float.pi;
      1.000000000001234;
      2.5e-12;
      1.7976931348623157e308;
      5e-324;
      -4.9406564584124654e-324;
      123456789.123456789;
    ];
  (* The integral fast path survives. *)
  Alcotest.(check string) "integral float" "42.0"
    (Obs.Json.to_string (Obs.Json.Float 42.0));
  Alcotest.(check string) "short decimal stays short" "0.5"
    (Obs.Json.to_string (Obs.Json.Float 0.5))

let test_json_escapes () =
  let v = Obs.Json.String "tab\there \"q\" back\\slash" in
  match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check string) "escapes" (Obs.Json.to_string v) (Obs.Json.to_string v')
  | Error m -> Alcotest.failf "parse failed: %s" m

(* --- Metrics --- *)

let test_counter_across_domains () =
  let c = Obs.Metrics.Counter.v "test.contended" in
  let before = Obs.Metrics.Counter.value c in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost increments" (before + 40_000) (Obs.Metrics.Counter.value c)

let test_gauge_and_histogram () =
  let g = Obs.Metrics.Gauge.v "test.gauge" in
  Obs.Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Obs.Metrics.Gauge.value g);
  let h = Obs.Metrics.Histogram.v "test.hist" in
  let observations = [ 0.0; 0.001; 0.5; 1.0; 3.0; 1024.0; 1e9 ] in
  List.iter (Obs.Metrics.Histogram.observe h) observations;
  check_int "count" (List.length observations) (Obs.Metrics.Histogram.count h);
  Alcotest.(check (float 1e-3))
    "sum"
    (List.fold_left ( +. ) 0.0 observations)
    (Obs.Metrics.Histogram.sum h);
  match Obs.Metrics.find (Obs.Metrics.snapshot ()) "test.hist" with
  | Some (Obs.Metrics.Histogram { count; buckets; _ }) ->
      check_int "snapshot count" (List.length observations) count;
      check_int "buckets partition the observations" count
        (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
      check_bool "bucket bounds ascend" true
        (let les = List.map fst buckets in
         List.sort compare les = les)
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_type_clash_rejected () =
  ignore (Obs.Metrics.Counter.v "test.clash");
  check_bool "re-register same type ok" true
    (ignore (Obs.Metrics.Counter.v "test.clash");
     true);
  match Obs.Metrics.Gauge.v "test.clash" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_metrics_json_parses () =
  let json = Obs.Json.to_string (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) in
  match Obs.Json.parse json with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "metrics dump does not parse: %s" m

(* --- Chrome trace export (golden format) --- *)

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false) f

let record_sample_spans () =
  Obs.Span.with_ ~cat:"test" "root" (fun () ->
      Obs.Span.with_ ~cat:"test" "child"
        ~attrs:[ ("k", Obs.Json.String "v") ]
        (fun () -> Obs.Span.event ~cat:"test" "instant");
      Obs.Span.with_ ~cat:"test" "sibling" (fun () -> ()))

let exported_events () =
  match Obs.Json.parse (Obs.Export.trace_to_string ()) with
  | Error m -> Alcotest.failf "trace does not parse: %s" m
  | Ok json -> (
      check_bool "displayTimeUnit present" true
        (Obs.Json.member "displayTimeUnit" json = Some (Obs.Json.String "ms"));
      match Obs.Json.member "traceEvents" json with
      | Some (Obs.Json.List evs) -> evs
      | _ -> Alcotest.fail "traceEvents missing")

let fields_of ev =
  match ev with
  | Obs.Json.Obj fields -> fields
  | _ -> Alcotest.fail "event is not an object"

let num field ev =
  match Obs.Json.member field ev with
  | Some v -> (
      match Obs.Json.to_float v with
      | Some f -> f
      | None -> Alcotest.failf "field %s is not a number" field)
  | None -> Alcotest.failf "field %s missing" field

let test_trace_golden_format () =
  with_tracing (fun () ->
      record_sample_spans ();
      let evs = exported_events () in
      check_int "event count" 4 (List.length evs);
      List.iter
        (fun ev ->
          let keys = List.map fst (fields_of ev) in
          match Obs.Json.member "ph" ev with
          | Some (Obs.Json.String "X") ->
              Alcotest.(check (list string))
                "complete-event field order"
                [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ]
                keys;
              check_bool "ts >= 0" true (num "ts" ev >= 0.0);
              check_bool "dur >= 0" true (num "dur" ev >= 0.0)
          | Some (Obs.Json.String "i") ->
              Alcotest.(check (list string))
                "instant-event field order"
                [ "name"; "cat"; "ph"; "ts"; "s"; "pid"; "tid"; "args" ]
                keys;
              check_bool "ts >= 0" true (num "ts" ev >= 0.0)
          | _ -> Alcotest.fail "unexpected phase (only X and i are emitted)")
        evs;
      let ts = List.map (num "ts") evs in
      check_bool "timestamps monotonic" true (List.sort compare ts = ts))

let test_trace_nesting () =
  with_tracing (fun () ->
      record_sample_spans ();
      let evs = exported_events () in
      let find name =
        List.find
          (fun ev -> Obs.Json.member "name" ev = Some (Obs.Json.String name))
          evs
      in
      let interval name =
        let ev = find name in
        let ts = num "ts" ev in
        (ts, ts +. num "dur" ev)
      in
      let r0, r1 = interval "root" in
      let c0, c1 = interval "child" in
      let s0, s1 = interval "sibling" in
      check_bool "child inside root" true (r0 <= c0 && c1 <= r1);
      check_bool "sibling inside root" true (r0 <= s0 && s1 <= r1);
      check_bool "child and sibling disjoint" true (c1 <= s0 || s1 <= c0);
      let i = num "ts" (find "instant") in
      check_bool "instant inside child" true (c0 <= i && i <= c1))

let test_trace_disabled_records_nothing () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled false;
  Obs.Span.with_ "invisible" (fun () -> ());
  Obs.Span.event "invisible-too";
  check_int "no events" 0 (List.length (Obs.Trace.events ()))

let test_trace_across_domains () =
  (* Each task spins a couple of milliseconds: the pool's submitting
     caller also executes tasks, and instant tasks could all drain on
     one domain before the workers wake, voiding the multi-tid
     assertion below. *)
  let spin () =
    let rec go n acc = if n = 0 then acc else go (n - 1) (acc + 1) in
    ignore (Sys.opaque_identity (go 2_000_000 0))
  in
  with_tracing (fun () ->
      let results =
        Dse.Parallel.map ~jobs:4
          (fun i ->
            Obs.Span.with_ ~cat:"test" "worker-span" (fun () ->
                spin ();
                i * 2))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      check_bool "map result intact" true
        (results = [ 2; 4; 6; 8; 10; 12; 14; 16 ]);
      let spans =
        List.filter
          (fun (e : Obs.Trace.event) -> e.Obs.Trace.name = "worker-span")
          (Obs.Trace.events ())
      in
      (* parallel.map itself adds one span on the caller's domain *)
      check_int "every worker span captured" 8 (List.length spans);
      check_bool "workers recorded under their own domain ids" true
        (List.length
           (List.sort_uniq compare
              (List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.tid) spans))
        > 1))

(* --- Profiler invariants --- *)

let test_profiler_invariants () =
  let r = Apps.Registry.run Apps.Registry.arith in
  (match Sim.Profiler.check r.Sim.Machine.profile with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants violated: %s" m);
  let assoc = Sim.Profiler.to_assoc r.Sim.Machine.profile in
  check_int "all 15 counters exported" 15 (List.length assoc);
  check_int "cycles row matches" r.Sim.Machine.profile.Sim.Profiler.cycles
    (List.assoc "cycles" assoc)

let test_profiler_invariants_all_apps () =
  List.iter
    (fun app ->
      let r = Apps.Registry.run app in
      match Sim.Profiler.check r.Sim.Machine.profile with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s: invariants violated: %s" app.Apps.Registry.name m)
    [ Apps.Registry.arith; Apps.Registry.frag ]

let test_profiler_json () =
  let r = Apps.Registry.run Apps.Registry.arith in
  match
    Obs.Json.parse (Obs.Json.to_string (Sim.Profiler.to_json r.Sim.Machine.profile))
  with
  | Ok (Obs.Json.Obj fields) -> check_int "profile fields" 15 (List.length fields)
  | Ok _ -> Alcotest.fail "expected object"
  | Error m -> Alcotest.failf "profile json does not parse: %s" m

let test_check_catches_violation () =
  let p = Sim.Profiler.create () in
  p.Sim.Profiler.cycles <- 10;
  p.Sim.Profiler.instructions <- 20;
  match Sim.Profiler.check p with
  | Ok () -> Alcotest.fail "expected instructions <= cycles violation"
  | Error m ->
      check_bool "names the broken invariant" true
        (String.length m > 0
        && Str.string_match (Str.regexp ".*instructions <= cycles.*") m 0)

(* --- Journal --- *)

let test_journal_disabled_records_nothing () =
  Obs.Journal.clear ();
  Obs.Journal.set_enabled false;
  Obs.Journal.record ~kind:"test.invisible" [];
  check_int "no events" 0 (List.length (Obs.Journal.events ()))

let with_journal f =
  Obs.Journal.clear ();
  Obs.Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.set_enabled false;
      Obs.Journal.clear ())
    f

let test_journal_records_fields () =
  with_journal (fun () ->
      Obs.Journal.record ~kind:"test.first" [ ("n", Obs.Json.Int 1) ];
      Obs.Journal.record ~kind:"test.second" [ ("s", Obs.Json.String "x") ];
      match Obs.Journal.events () with
      | [ a; b ] ->
          Alcotest.(check string) "kind" "test.first" a.Obs.Journal.kind;
          check_bool "field kept" true
            (a.Obs.Journal.fields = [ ("n", Obs.Json.Int 1) ]);
          check_bool "merged order monotone" true
            (Int64.compare a.Obs.Journal.ts_ns b.Obs.Journal.ts_ns <= 0);
          check_bool "to_json parses" true
            (match
               Obs.Json.parse (Obs.Json.to_string (Obs.Journal.to_json b))
             with
            | Ok _ -> true
            | Error _ -> false)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_journal_mirrors_into_trace () =
  with_journal (fun () ->
      with_tracing (fun () ->
          Obs.Journal.record ~kind:"test.mirrored" [ ("n", Obs.Json.Int 7) ];
          let mirrored =
            List.filter
              (fun (e : Obs.Trace.event) ->
                e.Obs.Trace.name = "test.mirrored"
                && e.Obs.Trace.cat = "journal"
                && e.Obs.Trace.ph = Obs.Trace.Instant)
              (Obs.Trace.events ())
          in
          check_int "one instant mirror" 1 (List.length mirrored)))

let test_journal_per_domain_monotone () =
  with_journal (fun () ->
      let results =
        Dse.Pool.map (Dse.Pool.default ())
          (fun i ->
            Obs.Journal.record ~kind:"test.tick" [ ("i", Obs.Json.Int i) ];
            i)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      check_bool "map intact" true (results = [ 1; 2; 3; 4; 5; 6 ]);
      let ticks =
        List.filter
          (fun (e : Obs.Journal.event) -> e.Obs.Journal.kind = "test.tick")
          (Obs.Journal.events ())
      in
      check_int "no event lost" 6 (List.length ticks);
      List.iter
        (fun (_, evs) ->
          let ts = List.map (fun (e : Obs.Journal.event) -> e.Obs.Journal.ts_ns) evs in
          check_bool "domain buffer monotone" true
            (List.sort Int64.compare ts = ts))
        (Obs.Journal.events_by_domain ()))

(* --- Sampling profiler --- *)

let spin_for seconds =
  let t0 = Obs.Clock.since_start_ns () in
  let budget = Int64.of_float (seconds *. 1e9) in
  let rec go acc =
    if Int64.sub (Obs.Clock.since_start_ns ()) t0 < budget then
      go (Sys.opaque_identity (acc + 1))
    else acc
  in
  ignore (go 0)

let test_sampling_profiler_captures_spans () =
  Obs.Profile.reset ();
  Obs.Profile.start ~period:0.001 ();
  Fun.protect ~finally:Obs.Profile.stop (fun () ->
      Obs.Span.with_ ~cat:"test" "hot-outer" (fun () ->
          Obs.Span.with_ ~cat:"test" "hot-inner" (fun () -> spin_for 0.15)));
  Obs.Profile.stop ();
  check_bool "samples taken" true (Obs.Profile.total_samples () > 0);
  check_bool "span ops counted" true (Obs.Profile.span_ops () >= 2);
  let folded = Obs.Profile.folded () in
  check_bool "hot stack present" true
    (let needle = "hot-outer;hot-inner" in
     let n = String.length needle and m = String.length folded in
     let rec scan i =
       i + n <= m && (String.sub folded i n = needle || scan (i + 1))
     in
     scan 0);
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "folded line without count: %S" line
        | Some i -> (
            match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
            | Some c when c > 0 -> ()
            | _ -> Alcotest.failf "bad folded count: %S" line))
    (String.split_on_char '\n' folded);
  (match Obs.Json.parse (Obs.Json.to_string (Obs.Profile.to_json ())) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "profile json does not parse: %s" m);
  let overhead =
    Obs.Profile.overhead_ns ~ops:(Obs.Profile.span_ops ())
      ~samples:(Obs.Profile.total_samples ())
  in
  check_bool "overhead finite and non-negative" true
    (Float.is_finite overhead && overhead >= 0.0);
  Obs.Profile.reset ();
  check_int "reset clears samples" 0 (Obs.Profile.total_samples ())

let test_profiler_disabled_costs_nothing () =
  check_bool "disabled" true (not (Obs.Profile.enabled ()));
  Obs.Span.with_ "unprofiled" (fun () -> ());
  check_int "no samples while disabled" 0 (Obs.Profile.total_samples ())

(* --- Histogram quantiles --- *)

let test_histogram_quantiles () =
  let h = Obs.Metrics.Histogram.v "test.quantiles" in
  for _ = 1 to 50 do
    Obs.Metrics.Histogram.observe h 1.0
  done;
  for _ = 1 to 50 do
    Obs.Metrics.Histogram.observe h 100.0
  done;
  match Obs.Metrics.find (Obs.Metrics.snapshot ()) "test.quantiles" with
  | Some (Obs.Metrics.Histogram _ as m) ->
      Alcotest.(check (float 1e-9))
        "p50" 1.0
        (Option.get (Obs.Metrics.quantile 0.5 m));
      Alcotest.(check (float 1e-9))
        "p99" 128.0
        (Option.get (Obs.Metrics.quantile 0.99 m));
      check_bool "non-histogram is None" true
        (Obs.Metrics.quantile 0.5 (Obs.Metrics.Counter 3) = None)
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* --- Bench history --- *)

let entry ?(rev = "r0") ?(target = "fig2") metrics =
  { Obs.History.rev; target; time = 0.0; metrics }

let base_metrics =
  [ ("wall_clock_s", 1.0); ("builds", 100.0); ("bounds_pruned", 40.0) ]

let with_temp_history f =
  let path = Filename.temp_file "bench_history" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_history_roundtrip () =
  with_temp_history (fun path ->
      Obs.History.append path (entry base_metrics);
      Obs.History.append path (entry ~rev:"r1" base_metrics);
      match Obs.History.load path with
      | Error m -> Alcotest.failf "load failed: %s" m
      | Ok [ a; b ] ->
          Alcotest.(check string) "rev" "r0" a.Obs.History.rev;
          Alcotest.(check string) "rev" "r1" b.Obs.History.rev;
          Alcotest.(check (float 1e-9))
            "metric" 100.0
            (List.assoc "builds" a.Obs.History.metrics)
      | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_history_malformed_rejected () =
  with_temp_history (fun path ->
      let oc = open_out path in
      output_string oc "{\"rev\":\"r0\"\n";
      close_out oc;
      match Obs.History.load path with
      | Error m -> check_bool "error names the line" true (String.length m > 0)
      | Ok _ -> Alcotest.fail "malformed history accepted")

let test_history_clean_run_passes () =
  let history = List.init 5 (fun _ -> entry base_metrics) in
  check_int "no regressions" 0
    (List.length (Obs.History.check ~history (entry base_metrics)))

let test_history_detects_regressions () =
  let history = List.init 5 (fun _ -> entry base_metrics) in
  let regressed =
    entry
      [ ("wall_clock_s", 2.0); ("builds", 120.0); ("bounds_pruned", 10.0) ]
  in
  let regs = Obs.History.check ~history regressed in
  let names = List.map (fun r -> r.Obs.History.metric) regs in
  check_bool "wall clock flagged" true (List.mem "wall_clock_s" names);
  check_bool "builds flagged" true (List.mem "builds" names);
  check_bool "pruned floor flagged" true (List.mem "bounds_pruned" names);
  (* Noise within threshold passes: +20% wall clock, +2% builds. *)
  let noisy =
    entry
      [ ("wall_clock_s", 1.2); ("builds", 102.0); ("bounds_pruned", 40.0) ]
  in
  check_int "noise tolerated" 0
    (List.length (Obs.History.check ~history noisy))

let test_history_baseline_is_median () =
  (* One bad historical sample must not poison the baseline. *)
  let history =
    List.map
      (fun w -> entry [ ("wall_clock_s", w) ])
      [ 1.0; 1.0; 50.0; 1.0; 1.0 ]
  in
  check_int "median absorbs the outlier" 0
    (List.length (Obs.History.check ~history (entry [ ("wall_clock_s", 1.1) ])));
  (* Different targets never share baselines. *)
  let other = entry ~target:"fig4" [ ("wall_clock_s", 100.0) ] in
  check_int "foreign target ignored" 0
    (List.length (Obs.History.check ~history:[ other ] (entry [ ("wall_clock_s", 1.0) ])))

(* --- Machine run feeds the registry --- *)

let test_machine_flushes_registry () =
  let before =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "sim.cycles"
  in
  let r = Apps.Registry.run Apps.Registry.arith in
  let after =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "sim.cycles"
  in
  check_int "cycle delta equals the run's profile"
    r.Sim.Machine.profile.Sim.Profiler.cycles (after - before)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "field order preserved" `Quick
            test_json_field_order_preserved;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "float precision" `Quick test_json_float_precision;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter across domains" `Quick
            test_counter_across_domains;
          Alcotest.test_case "gauge and histogram" `Quick
            test_gauge_and_histogram;
          Alcotest.test_case "type clash rejected" `Quick
            test_type_clash_rejected;
          Alcotest.test_case "metrics json parses" `Quick
            test_metrics_json_parses;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden chrome format" `Quick
            test_trace_golden_format;
          Alcotest.test_case "span nesting" `Quick test_trace_nesting;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "spans across domains" `Quick
            test_trace_across_domains;
        ] );
      ( "journal",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_journal_disabled_records_nothing;
          Alcotest.test_case "records fields" `Quick test_journal_records_fields;
          Alcotest.test_case "mirrors into trace" `Quick
            test_journal_mirrors_into_trace;
          Alcotest.test_case "per-domain monotone under pool" `Quick
            test_journal_per_domain_monotone;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "captures spans" `Quick
            test_sampling_profiler_captures_spans;
          Alcotest.test_case "disabled costs nothing" `Quick
            test_profiler_disabled_costs_nothing;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
        ] );
      ( "history",
        [
          Alcotest.test_case "roundtrip" `Quick test_history_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick
            test_history_malformed_rejected;
          Alcotest.test_case "clean run passes" `Quick
            test_history_clean_run_passes;
          Alcotest.test_case "detects regressions" `Quick
            test_history_detects_regressions;
          Alcotest.test_case "baseline is median" `Quick
            test_history_baseline_is_median;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "invariants on arith" `Quick
            test_profiler_invariants;
          Alcotest.test_case "invariants on more apps" `Slow
            test_profiler_invariants_all_apps;
          Alcotest.test_case "profile json" `Quick test_profiler_json;
          Alcotest.test_case "check catches violation" `Quick
            test_check_catches_violation;
          Alcotest.test_case "machine flushes registry" `Quick
            test_machine_flushes_registry;
        ] );
    ]
