(* The shared evaluation engine: memoization bit-identity, batch
   evaluation vs the serial reference, in-flight/batch deduplication
   accounting, and the persistent work-stealing pool. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config_of_seed seed = Dse.Heuristic.random_config (Sim.Rng.create ~seed)

let delta before after name =
  Obs.Metrics.counter_value after name - Obs.Metrics.counter_value before name

(* --- Memoization --- *)

(* A warm evaluation must be bit-identical to its own cold run and to a
   cold run on an independent engine — with and without the
   deterministic measurement noise. *)
let memo_bit_identical_qtest =
  QCheck.Test.make ~count:20 ~name:"memoized eval bit-identical to cold run"
    QCheck.(make Gen.int)
    (fun seed ->
      let config = config_of_seed seed in
      let app = Apps.Registry.arith in
      List.for_all
        (fun noise ->
          let e1 = Dse.Engine.create () in
          let cold = Dse.Engine.eval ?noise e1 app config in
          let warm = Dse.Engine.eval ?noise e1 app config in
          let e2 = Dse.Engine.create () in
          let cold2 = Dse.Engine.eval ?noise e2 app config in
          compare cold warm = 0 && compare cold cold2 = 0)
        [ None; Some 0.005 ])

let test_memo_counts () =
  let app = Apps.Registry.arith in
  let config = config_of_seed 42 in
  let e = Dse.Engine.create () in
  let before = Obs.Metrics.snapshot () in
  let c1 = Dse.Engine.eval e app config in
  let mid = Obs.Metrics.snapshot () in
  let c2 = Dse.Engine.eval e app config in
  let after = Obs.Metrics.snapshot () in
  check_bool "identical cost" true (compare c1 c2 = 0);
  check_int "first eval misses" 1 (delta before mid "dse.engine.misses");
  check_int "first eval builds" 1 (delta before mid "dse.builds");
  check_int "second eval hits" 1 (delta mid after "dse.engine.hits");
  check_int "second eval builds nothing" 0 (delta mid after "dse.builds")

let test_noise_amplitudes_distinct_keys () =
  (* Differing amplitudes must not observe each other's measurements:
     noise-free LUTs differ from noised LUTs for this config. *)
  let app = Apps.Registry.arith in
  let e = Dse.Engine.create () in
  (* Find a seed whose config actually gets a non-zero perturbation. *)
  let rec find seed =
    if seed > 200 then Alcotest.fail "no noised config found"
    else
      let config = config_of_seed seed in
      let plain = Dse.Engine.eval e app config in
      let noised = Dse.Engine.eval ~noise:0.01 e app config in
      if
        plain.Dse.Cost.resources.Synth.Resource.luts
        <> noised.Dse.Cost.resources.Synth.Resource.luts
      then (plain, noised)
      else find (seed + 1)
  in
  let plain, noised = find 0 in
  check_bool "seconds agree (noise is resource-only)" true
    (plain.Dse.Cost.seconds = noised.Dse.Cost.seconds);
  check_bool "luts differ across amplitudes" true
    (plain.Dse.Cost.resources.Synth.Resource.luts
    <> noised.Dse.Cost.resources.Synth.Resource.luts)

let test_noise_magnitude_pinned () =
  (* Regression for the unit of [noise]: a fraction of the device
     (0.005 = ±0.5 % of its LUTs), as documented in engine.mli and
     measure.mli.  The old code converted fraction → percent at the
     call site and percent → fraction inside [lut_noise]; the two
     conversions cancelled, so this pins the (unchanged) magnitude
     against the documented formula — any future one-sided edit that
     skews the unit by 100x fails here. *)
  let app = Apps.Registry.arith in
  let amplitude = 0.01 in
  let bound =
    int_of_float (amplitude *. float_of_int Synth.Device.luts) + 1
  in
  let expected_delta config =
    let h = Hashtbl.hash (config : Arch.Config.t) in
    let u = float_of_int (h land 0xFFFF) /. 65535.0 in
    int_of_float (amplitude *. ((2.0 *. u) -. 1.0) *. float_of_int Synth.Device.luts)
  in
  for seed = 0 to 20 do
    let config = config_of_seed seed in
    let e = Dse.Engine.create () in
    let plain = Dse.Engine.eval e app config in
    let noised = Dse.Engine.eval ~noise:amplitude e app config in
    let delta =
      noised.Dse.Cost.resources.Synth.Resource.luts
      - plain.Dse.Cost.resources.Synth.Resource.luts
    in
    check_int "noise delta matches documented fraction-of-device formula"
      (expected_delta config) delta;
    check_bool "noise delta within amplitude * device LUTs" true
      (abs delta <= bound)
  done

(* --- Feasibility path --- *)

let test_eval_feasible_matches_reference () =
  let app = Apps.Registry.arith in
  let e = Dse.Engine.create () in
  List.iter
    (fun config ->
      let got = Dse.Engine.eval_feasible e app config in
      if Synth.Estimate.feasible config then (
        let reference = Dse.Engine.eval (Dse.Engine.create ()) app config in
        match got with
        | Some c -> check_bool "feasible cost matches eval" true (compare c reference = 0)
        | None -> Alcotest.fail "feasible config reported infeasible")
      else check_bool "infeasible is None" true (got = None))
    (Arch.Space.dcache_geometry ())

let test_unfit_upgrade () =
  (* A cached over-capacity entry must upgrade to a full (simulated)
     entry when forcibly evaluated, without re-elaborating. *)
  let app = Apps.Registry.arith in
  let unfit =
    match
      List.find_opt
        (fun c -> Arch.Config.is_valid c && not (Synth.Estimate.feasible c))
        (Arch.Space.dcache_geometry ())
    with
    | Some c -> c
    | None -> Alcotest.fail "dcache geometry has no over-capacity point"
  in
  let e = Dse.Engine.create () in
  let before = Obs.Metrics.snapshot () in
  check_bool "feasible query is None" true
    (Dse.Engine.eval_feasible e app unfit = None);
  let mid = Obs.Metrics.snapshot () in
  check_int "no simulation for the unfit query" 0 (delta before mid "dse.builds");
  check_int "resource-only compute is a miss" 1
    (delta before mid "dse.engine.misses");
  let cost = Dse.Engine.eval e app unfit in
  let after = Obs.Metrics.snapshot () in
  check_int "forced eval simulates once" 1 (delta mid after "dse.builds");
  check_bool "over-capacity resources preserved" true
    (not (Synth.Resource.fits cost.Dse.Cost.resources));
  check_bool "now cached as infeasible-but-built" true
    (Dse.Engine.eval_feasible e app unfit = None);
  let last = Obs.Metrics.snapshot () in
  check_int "and that query was a hit" 1 (delta after last "dse.engine.hits")

(* --- Batch evaluation --- *)

let test_eval_all_matches_serial () =
  let app = Apps.Registry.arith in
  let configs = List.init 12 config_of_seed in
  let pairs = List.map (fun c -> (app, c)) (configs @ List.rev configs) in
  let pool = Dse.Pool.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      let pooled = Dse.Engine.create ~pool () in
      let batch = Dse.Engine.eval_all pooled pairs in
      let serial_engine = Dse.Engine.create () in
      let serial =
        List.map (fun (a, c) -> Dse.Engine.eval serial_engine a c) pairs
      in
      check_int "lengths agree" (List.length serial) (List.length batch);
      List.iteri
        (fun i (b, s) ->
          check_bool (Printf.sprintf "batch item %d bit-identical" i) true
            (compare b s = 0))
        (List.combine batch serial))

let test_eval_all_dedups_batch () =
  let app = Apps.Registry.arith in
  let config = config_of_seed 7 in
  let e = Dse.Engine.create () in
  let before = Obs.Metrics.snapshot () in
  let costs = Dse.Engine.eval_all e (List.init 5 (fun _ -> (app, config))) in
  let after = Obs.Metrics.snapshot () in
  check_int "five results" 5 (List.length costs);
  check_bool "all identical" true
    (List.for_all (fun c -> compare c (List.hd costs) = 0) costs);
  check_int "one build" 1 (delta before after "dse.builds");
  check_int "four deduplicated" 4
    (delta before after "dse.engine.inflight_dedup")

(* --- The fig2 sweep accounting (ISSUE: exactly the deduplicated
   number of builds) --- *)

let test_fig2_sweep_build_count () =
  let app = Apps.Registry.blastn in
  let engine = Dse.Engine.default () in
  Dse.Engine.clear engine;
  let before = Obs.Metrics.snapshot () in
  let points = Dse.Exhaustive.dcache_sweep app in
  let mid = Obs.Metrics.snapshot () in
  let feasible =
    List.length (List.filter (fun p -> p.Dse.Exhaustive.cost <> None) points)
  in
  check_int "28 geometry points" 28 (List.length points);
  check_int "19 feasible points" 19 feasible;
  check_int "builds = feasible points exactly" feasible
    (delta before mid "dse.builds");
  check_int "every point computed once" 28 (delta before mid "dse.engine.misses");
  (* The same sweep again is pure cache. *)
  let again = Dse.Exhaustive.dcache_sweep app in
  let after = Obs.Metrics.snapshot () in
  check_bool "identical points" true (compare points again = 0);
  check_int "no new builds" 0 (delta mid after "dse.builds");
  check_int "28 hits" 28 (delta mid after "dse.engine.hits")

(* --- Pool --- *)

let test_pool_map_order () =
  let pool = Dse.Pool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      let xs = List.init 100 Fun.id in
      check_bool "order preserved" true
        (Dse.Pool.map pool (fun x -> x * x) xs = List.map (fun x -> x * x) xs))

let test_pool_exception_propagates () =
  let pool = Dse.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      match
        Dse.Pool.map pool
          (fun i -> if i = 13 then failwith "boom" else i)
          (List.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> check_bool "original exception" true (m = "boom"))

let test_pool_nested_batches () =
  (* A task that itself submits a batch to the same pool must not
     deadlock: the submitter helps drain the queue. *)
  let pool = Dse.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      let rows =
        Dse.Pool.map pool
          (fun i ->
            List.fold_left ( + ) 0
              (Dse.Pool.map pool (fun j -> (10 * i) + j) [ 1; 2; 3; 4; 5 ]))
          [ 0; 1; 2; 3 ]
      in
      check_bool "nested results" true
        (rows = List.map (fun i -> (50 * i) + 15) [ 0; 1; 2; 3 ]))

let test_pool_nested_solver () =
  (* Deadlock regression for the parallel BINLP solver running inside
     a pool batch (an Engine evaluation that solves a subproblem): the
     worker's nested run_batch must help from its own deque instead of
     parking while its subtree tasks sit unstolen. *)
  let pool = Dse.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      let problem i =
        {
          Optim.Binlp.nvars = 6;
          objective =
            Array.init 6 (fun j -> float_of_int (((i + j) mod 5) - 3));
          groups = [ [ 0; 1; 2 ]; [ 3; 4 ] ];
          constraints = [];
        }
      in
      let solved =
        Dse.Pool.map pool
          (fun i ->
            let p = problem i in
            let o =
              Optim.Binlp.solve ~runner:(Dse.Pool.solver_runner pool) p
            in
            (i, o.Optim.Binlp.best))
          [ 0; 1; 2; 3; 4; 5 ]
      in
      List.iter
        (fun (i, best) ->
          match (best, Optim.Binlp.brute_force (problem i)) with
          | Some s, Some b ->
              check_bool "nested solve matches brute force" true
                (s.Optim.Binlp.x = b.Optim.Binlp.x)
          | _ -> Alcotest.fail "nested solve missing a solution")
        solved)

let test_pool_metrics_nonzero () =
  (* Regression: pool task/worker metrics used to stay 0 on runs whose
     work never crossed a deque (singleton batches, the single-core
     inline fallback), reporting an idle pool under a thousand builds. *)
  let tasks () =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "dse.pool.tasks"
  in
  let pool = Dse.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Dse.Pool.shutdown pool)
    (fun () ->
      let before = tasks () in
      let r = Dse.Pool.map pool (fun x -> x + 1) [ 1; 2; 3; 4; 5 ] in
      check_bool "map result" true (r = [ 2; 3; 4; 5; 6 ]);
      Alcotest.(check int) "five pooled tasks counted" (before + 5) (tasks ());
      let before = tasks () in
      check_bool "singleton map" true (Dse.Pool.map pool (fun x -> x * 2) [ 21 ] = [ 42 ]);
      Alcotest.(check int) "inline singleton counted" (before + 1) (tasks ());
      let before = tasks () in
      Alcotest.(check int) "run_inline result" 7 (Dse.Pool.run_inline (fun () -> 7));
      Alcotest.(check int) "run_inline counted" (before + 1) (tasks ());
      match
        Obs.Metrics.find (Obs.Metrics.snapshot ()) "dse.pool.workers"
      with
      | Some (Obs.Metrics.Gauge w) ->
          check_bool "worker gauge nonzero" true (w >= 1.0)
      | _ -> Alcotest.fail "worker gauge missing")

let () =
  Alcotest.run "engine"
    [
      ( "memo",
        [
          QCheck_alcotest.to_alcotest memo_bit_identical_qtest;
          Alcotest.test_case "hit/miss/build counts" `Quick test_memo_counts;
          Alcotest.test_case "noise keys distinct" `Quick
            test_noise_amplitudes_distinct_keys;
          Alcotest.test_case "noise magnitude pinned" `Quick
            test_noise_magnitude_pinned;
        ] );
      ( "feasible",
        [
          Alcotest.test_case "matches reference" `Quick
            test_eval_feasible_matches_reference;
          Alcotest.test_case "unfit upgrade" `Quick test_unfit_upgrade;
        ] );
      ( "batch",
        [
          Alcotest.test_case "eval_all = serial (4 domains)" `Quick
            test_eval_all_matches_serial;
          Alcotest.test_case "in-batch dedup" `Quick test_eval_all_dedups_batch;
          Alcotest.test_case "fig2 sweep build count" `Quick
            test_fig2_sweep_build_count;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "nested batches" `Quick test_pool_nested_batches;
          Alcotest.test_case "nested solver batch" `Quick
            test_pool_nested_solver;
          Alcotest.test_case "task/worker metrics nonzero" `Quick
            test_pool_metrics_nonzero;
        ] );
    ]
