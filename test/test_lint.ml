(* Golden tests for the linter over the corpus in test/lint/: each
   buggy source produces exactly the expected findings, the clean one
   produces none, and neither do the registered applications (the
   zero-false-positive contract). *)

let check_bool = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load name =
  let src = read_file (Filename.concat "lint" name) in
  match Minic.Parser.parse src with
  | Error msg -> Alcotest.failf "%s: parse error: %s" name msg
  | Ok p -> (
      match Minic.Check.check p with
      | Error msgs ->
          Alcotest.failf "%s: check error: %s" name (String.concat "; " msgs)
      | Ok () -> p)

let findings name = Minic.Lint.program (load name)

let rendered name =
  List.map
    (fun f -> Format.asprintf "%a" Minic.Lint.pp_finding f)
    (findings name)

let golden name expected =
  Alcotest.(check (list string)) name expected (rendered name)

let test_divzero () =
  golden "divzero.mc"
    [ "error: main:1: division by zero: z is always 0 in (10 / z)" ]

let test_oob () =
  golden "oob.mc"
    [ "error: main:4: index 8 = 8 is always out of bounds for table (length 8)" ]

let test_uninit () =
  golden "uninit.mc"
    [ "warning: main:0: local y may be used before initialization" ]

let test_unreachable () =
  golden "unreachable.mc"
    [
      "warning: main:2: condition (k > 0) is always false";
      "warning: main:3: unreachable code: s = 99;";
    ]

let test_deadstore () =
  golden "deadstore.mc" [ "note: main:1: value assigned to b is never used" ]

let test_after_ret () =
  golden "after_ret.mc"
    [ "warning: main:2: unreachable code after return: x = 99;" ]

let test_const_loop () =
  golden "const_loop.mc"
    [
      "warning: main:2: loop condition (k > 0) is always true; the loop \
       only exits through return";
      "warning: main:4: unreachable code: return s;";
    ]

let test_clean () = golden "clean.mc" []

let test_fails () =
  let open Minic.Lint in
  (* errors always fail, warnings only under -Werror, notes never *)
  check_bool "divzero fails" true (fails ~werror:false (findings "divzero.mc"));
  check_bool "uninit passes by default" false
    (fails ~werror:false (findings "uninit.mc"));
  check_bool "uninit fails under werror" true
    (fails ~werror:true (findings "uninit.mc"));
  check_bool "deadstore never fails" false
    (fails ~werror:true (findings "deadstore.mc"))

let test_registry_clean () =
  List.iter
    (fun app ->
      match Minic.Lint.program app.Apps.Registry.source with
      | [] -> ()
      | fs ->
          Alcotest.failf "%s: unexpected findings:@.%s" app.Apps.Registry.name
            (String.concat "\n"
               (List.map
                  (fun f -> Format.asprintf "%a" Minic.Lint.pp_finding f)
                  fs)))
    (Apps.Registry.all @ Apps.Extra.all)

let () =
  Alcotest.run "lint"
    [
      ( "golden",
        [
          Alcotest.test_case "division by zero" `Quick test_divzero;
          Alcotest.test_case "out of bounds" `Quick test_oob;
          Alcotest.test_case "use before init" `Quick test_uninit;
          Alcotest.test_case "unreachable code" `Quick test_unreachable;
          Alcotest.test_case "dead store" `Quick test_deadstore;
          Alcotest.test_case "code after return" `Quick test_after_ret;
          Alcotest.test_case "constant loop condition" `Quick test_const_loop;
          Alcotest.test_case "clean program" `Quick test_clean;
        ] );
      ( "policy",
        [
          Alcotest.test_case "severity gating" `Quick test_fails;
          Alcotest.test_case "no false positives on the apps" `Quick
            test_registry_clean;
        ] );
    ]
