(* Tests for program-phase detection and phased execution: a pinned
   change-point golden on a two-phase microprogram, 1-phase/static
   bit-identity, segmented telescoping, and the cache-retention policy
   across a reconfiguration switch. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let base = Arch.Config.base

let with_iu f = { base with Arch.Config.iu = f base.Arch.Config.iu }

let compile source =
  let ast =
    match Minic.Parser.parse source with
    | Ok p -> p
    | Error m -> failwith m
  in
  Minic.Check.check_exn ast;
  Minic.Codegen.compile ast

(* Change-point microprogram: an initialization loop, then repeated
   streaming passes over three arrays (6 KB working set, thrashing the
   base 4 KB dcache), then a multiply-heavy reduction — three regimes
   with crisply different feature vectors, so the detected boundaries
   are identical across a wide threshold range. *)
let three_phase_source =
  {|
int a[512];
int b[512];
int c[512];

int main() {
  int i, pass, acc;
  acc = 0;
  i = 0;
  while (i < 512) { a[i] = i; b[i] = i + i; c[i] = i ^ 5; i = i + 1; }
  pass = 0;
  while (pass < 24) {
    i = 0;
    while (i < 512) { acc = acc + a[i] + b[i] + c[i]; i = i + 1; }
    pass = pass + 1;
  }
  i = 0;
  while (i < 12000) { acc = acc + i * i * i * 17; i = i + 1; }
  return acc & 0x7FFFFFFF;
}
|}

(* Machine-test microprogram: streaming passes over a single 2 KB
   array that fits the base 4 KB dcache, so cache retention across a
   reconfiguration switch is observable. *)
let stream_source =
  {|
int a[512];

int main() {
  int i, pass, acc;
  acc = 0;
  i = 0;
  while (i < 512) { a[i] = i; i = i + 1; }
  pass = 0;
  while (pass < 24) {
    i = 0;
    while (i < 512) { acc = acc + a[i]; i = i + 1; }
    pass = pass + 1;
  }
  i = 0;
  while (i < 12000) { acc = acc + i * i * i * 17; i = i + 1; }
  return acc & 0x7FFFFFFF;
}
|}

let three_phase_prog = lazy (compile three_phase_source)
let two_phase_prog = lazy (compile stream_source)

(* Tighter windows than the schedule pipeline's defaults: the
   microprograms retire a few hundred thousand instructions, so
   1024-instruction windows give the detector enough samples per
   regime. *)
let micro_options =
  {
    Sim.Phase.default_options with
    Sim.Phase.window = 1024;
    min_windows = 2;
    max_phases = 8;
  }

(* --- pinned change-point golden --- *)

let test_three_phase_pinned () =
  let prog = Lazy.force three_phase_prog in
  let t = Sim.Phase.detect ~options:micro_options base prog in
  check_int "three phases" 3 (Sim.Phase.count t);
  Alcotest.(check (list int))
    "pinned boundaries" [ 12288; 308224 ] (Sim.Phase.boundaries t);
  check_int "total instructions" 524029 t.Sim.Phase.total_insns;
  match t.Sim.Phase.phases with
  | [ p1; p2; p3 ] ->
      Alcotest.(check string)
        "init class" "compute"
        (Sim.Phase.dominant p1.Sim.Phase.profile);
      Alcotest.(check string)
        "stream class" "memory"
        (Sim.Phase.dominant p2.Sim.Phase.profile);
      Alcotest.(check string)
        "reduction class" "arith"
        (Sim.Phase.dominant p3.Sim.Phase.profile);
      check_bool "reduction carries the multiplies" true
        (p3.Sim.Phase.profile.Sim.Profiler.mults
        > p2.Sim.Phase.profile.Sim.Profiler.mults)
  | _ -> Alcotest.fail "expected exactly three phases"

(* The boundaries must not move with the threshold: the regime changes
   are far above any reasonable sensitivity, which is what makes the
   pinned golden robust. *)
let test_pinning_threshold_stable () =
  let prog = Lazy.force three_phase_prog in
  List.iter
    (fun threshold ->
      let t =
        Sim.Phase.detect
          ~options:{ micro_options with Sim.Phase.threshold }
          base prog
      in
      Alcotest.(check (list int))
        (Printf.sprintf "boundaries at threshold %.2f" threshold)
        [ 12288; 308224 ] (Sim.Phase.boundaries t))
    [ 0.15; 0.25; 0.35 ]

let test_detection_deterministic () =
  let prog = Lazy.force three_phase_prog in
  let d () =
    Sim.Phase.digest (Sim.Phase.detect ~options:micro_options base prog)
  in
  Alcotest.(check string) "digest stable" (d ()) (d ())

(* --- 1-phase schedule = static bit-identity --- *)

let test_one_phase_bit_identity () =
  let prog = Lazy.force two_phase_prog in
  let r = Sim.Machine.run ~reps:3 base prog in
  let empty = Sim.Machine.run_phased ~reps:3 ~switches:[] base prog in
  let self_switch =
    (* A switch to the already-installed configuration is skipped, so
       the uniform schedule must stay bit-identical even with a
       nominal switch cost attached. *)
    Sim.Machine.run_phased ~reps:3
      ~switches:
        [
          {
            Sim.Machine.at_insn = 50_000;
            config = base;
            shift_stall = 0;
            cycles = 4000;
          };
        ]
      base prog
  in
  List.iter
    (fun (label, (ph : Sim.Machine.phased)) ->
      check_bool (label ^ ": profile identical") true
        (ph.Sim.Machine.result.Sim.Machine.profile = r.Sim.Machine.profile);
      check_int (label ^ ": cold cycles") r.Sim.Machine.cold_cycles
        ph.Sim.Machine.result.Sim.Machine.cold_cycles;
      check_int (label ^ ": warm cycles") r.Sim.Machine.warm_cycles
        ph.Sim.Machine.result.Sim.Machine.warm_cycles;
      check_int (label ^ ": checksum") r.Sim.Machine.checksum
        ph.Sim.Machine.result.Sim.Machine.checksum;
      check_int (label ^ ": no switch cycles") 0 ph.Sim.Machine.switch_cycles)
    [ ("empty", empty); ("self-switch", self_switch) ]

(* --- segmented telescoping --- *)

let test_segmented_telescoping () =
  let prog = Lazy.force two_phase_prog in
  let r = Sim.Machine.run ~reps:2 base prog in
  let t = Sim.Phase.detect ~options:micro_options base prog in
  let seg =
    Sim.Machine.run_segmented ~reps:2
      ~boundaries:(Sim.Phase.boundaries t)
      base prog
  in
  check_bool "result bit-identical to run" true
    (seg.Sim.Machine.result = r);
  check_int "one profile per phase" (Sim.Phase.count t)
    (List.length seg.Sim.Machine.phase_profiles);
  let total f =
    List.fold_left (fun acc p -> acc + f p) 0 seg.Sim.Machine.phase_profiles
  in
  List.iter
    (fun (label, f) ->
      check_int ("phase profiles telescope: " ^ label)
        (f r.Sim.Machine.profile) (total f))
    [
      ("cycles", fun p -> p.Sim.Profiler.cycles);
      ("instructions", fun p -> p.Sim.Profiler.instructions);
      ("dcache reads", fun p -> p.Sim.Profiler.dcache_reads);
      ("dcache read misses", fun p -> p.Sim.Profiler.dcache_read_misses);
      ("dcache writes", fun p -> p.Sim.Profiler.dcache_writes);
      ("branches", fun p -> p.Sim.Profiler.branches);
      ("mults", fun p -> p.Sim.Profiler.mults);
      ("icache misses", fun p -> p.Sim.Profiler.icache_misses);
    ]

(* --- cache retention across a switch --- *)

let test_keep_caches_policy () =
  let prog = Lazy.force two_phase_prog in
  (* Switch mid-way through the streaming passes, when the array is
     resident, to a configuration whose caches are untouched (only the
     multiplier changes).  Kept caches stay warm; the flush policy
     restarts them cold and must re-fill the array's lines. *)
  let switch =
    {
      Sim.Machine.at_insn = 50_000;
      config =
        with_iu (fun u ->
            { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 });
      shift_stall = 0;
      cycles = 0;
    }
  in
  let run ~keep_caches =
    Sim.Machine.run_phased ~reps:1 ~keep_caches ~switches:[ switch ] base prog
  in
  let kept = run ~keep_caches:true in
  let flushed = run ~keep_caches:false in
  let misses (ph : Sim.Machine.phased) =
    ph.Sim.Machine.result.Sim.Machine.profile.Sim.Profiler.dcache_read_misses
  in
  let cycles (ph : Sim.Machine.phased) =
    ph.Sim.Machine.result.Sim.Machine.profile.Sim.Profiler.cycles
  in
  check_int "same checksum either way"
    kept.Sim.Machine.result.Sim.Machine.checksum
    flushed.Sim.Machine.result.Sim.Machine.checksum;
  check_bool "kept caches miss less" true (misses kept < misses flushed);
  check_bool "kept caches run faster" true (cycles kept < cycles flushed)

let () =
  Alcotest.run "phase"
    [
      ( "detect",
        [
          Alcotest.test_case "pinned three-phase golden" `Quick
            test_three_phase_pinned;
          Alcotest.test_case "threshold stability" `Quick
            test_pinning_threshold_stable;
          Alcotest.test_case "deterministic digest" `Quick
            test_detection_deterministic;
        ] );
      ( "phased",
        [
          Alcotest.test_case "1-phase bit identity" `Quick
            test_one_phase_bit_identity;
          Alcotest.test_case "segmented telescoping" `Quick
            test_segmented_telescoping;
          Alcotest.test_case "keep-caches policy" `Quick
            test_keep_caches_policy;
        ] );
    ]
