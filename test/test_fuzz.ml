(* Fuzz subsystem smoke tests: every oracle under fixed seeds and a
   small budget, generator well-formedness, and the corpus format.
   The CLI-level smoke run (and corpus replay) lives in the
   @fuzz-smoke alias; these tests pin the library behavior. *)

let check = Alcotest.(check bool)

(* --- generators ------------------------------------------------- *)

let gen_values gen ~seed ~n =
  let rand = Random.State.make [| seed |] in
  List.init n (fun _ -> QCheck2.Gen.generate1 ~rand gen)

let test_generated_programs_well_formed () =
  List.iter
    (fun profile ->
      let programs =
        gen_values (Fuzz.Gen.program_of_profile profile) ~seed:7 ~n:25
      in
      List.iter
        (fun p ->
          (match Minic.Check.check p with
          | Ok () -> ()
          | Error errs ->
              Alcotest.failf "%s: generated program fails Check: %s"
                (Fuzz.Gen.profile_name profile)
                (String.concat "; " errs));
          match Minic.Interp.run ~fuel:2_000_000 p with
          | (_ : int) -> ()
          | exception Minic.Interp.Runtime_error m ->
              Alcotest.failf "%s: generated program traps: %s\n%s"
                (Fuzz.Gen.profile_name profile)
                m (Fuzz.Gen.print_program p))
        programs)
    Fuzz.Gen.all_profiles

let test_generated_configs_valid () =
  List.iter
    (fun c -> check "config valid" true (Arch.Config.is_valid c))
    (gen_values Fuzz.Gen.config ~seed:11 ~n:200)

let test_profiles_differ () =
  (* The profiles must actually skew the statement mix: straightline
     programs never loop, looping programs (eventually) do. *)
  let has_while p =
    let rec stmt = function
      | Minic.Ast.While _ -> true
      | Minic.Ast.If (_, a, b) -> List.exists stmt a || List.exists stmt b
      | _ -> false
    in
    List.exists
      (fun (f : Minic.Ast.func) -> List.exists stmt f.body)
      p.Minic.Ast.funcs
  in
  let straight =
    gen_values (Fuzz.Gen.program_of_profile Fuzz.Gen.Straightline) ~seed:3 ~n:20
  in
  check "straightline never loops" false (List.exists has_while straight);
  let looping =
    gen_values (Fuzz.Gen.program_of_profile Fuzz.Gen.Looping) ~seed:3 ~n:20
  in
  check "looping profile loops" true (List.exists has_while looping)

(* --- oracles ---------------------------------------------------- *)

let test_oracles_pass () =
  List.iter
    (fun oracle ->
      List.iter
        (fun seed ->
          match Fuzz.Oracle.run ~seed ~count:40 oracle with
          | Fuzz.Oracle.Pass _ -> ()
          | Fuzz.Oracle.Fail { counterexample; messages; _ } ->
              Alcotest.failf "oracle %s failed (seed %d): %s\n%s"
                (Fuzz.Oracle.name oracle)
                seed
                (String.concat "; " messages)
                counterexample
          | Fuzz.Oracle.Crash { counterexample; message } ->
              Alcotest.failf "oracle %s crashed (seed %d): %s\n%s"
                (Fuzz.Oracle.name oracle)
                seed message counterexample)
        [ 1; 42; 9001 ])
    Fuzz.Oracle.all

let test_oracle_catches_failure () =
  (* The harness must surface failures, not just successes: an oracle
     whose property always fail_reportf's produces a Fail outcome
     carrying the printed counterexample and the message. *)
  let oracle =
    Fuzz.Oracle.T
      {
        name = "always-fails";
        doc = "";
        gen = QCheck2.Gen.int_range 0 100;
        print = string_of_int;
        prop = (fun _ -> QCheck2.Test.fail_reportf "synthetic failure");
      }
  in
  match Fuzz.Oracle.run ~seed:1 ~count:5 oracle with
  | Fuzz.Oracle.Fail { messages; _ } ->
      check "message captured" true
        (List.exists
           (fun m ->
             String.length m >= 9 && String.sub m 0 9 = "synthetic")
           messages)
  | _ -> Alcotest.fail "failing property did not produce Fail"

let test_run_deterministic () =
  let outcome_repr o =
    match (o : Fuzz.Oracle.outcome) with
    | Pass { trials } -> Printf.sprintf "pass:%d" trials
    | Fail { counterexample; messages; _ } ->
        Printf.sprintf "fail:%s:%s" counterexample (String.concat "," messages)
    | Crash { counterexample; message } ->
        Printf.sprintf "crash:%s:%s" counterexample message
  in
  List.iter
    (fun oracle ->
      let a = Fuzz.Oracle.run ~seed:123 ~count:25 oracle in
      let b = Fuzz.Oracle.run ~seed:123 ~count:25 oracle in
      Alcotest.(check string)
        (Fuzz.Oracle.name oracle)
        (outcome_repr a) (outcome_repr b))
    Fuzz.Oracle.all

(* --- corpus ----------------------------------------------------- *)

let test_corpus_roundtrip () =
  let entry =
    {
      Fuzz.Corpus.oracle = "interp-vs-sim";
      seed = 98765;
      count = 321;
      status = Fuzz.Corpus.Known_issue "dcache model under review";
      counterexample = "// config: ...\nint main() { return 0; }\n";
    }
  in
  match Fuzz.Corpus.of_string (Fuzz.Corpus.to_string entry) with
  | Error m -> Alcotest.failf "corpus round-trip failed: %s" m
  | Ok e ->
      Alcotest.(check string) "oracle" entry.oracle e.oracle;
      Alcotest.(check int) "seed" entry.seed e.seed;
      Alcotest.(check int) "count" entry.count e.count;
      check "status" true (e.status = entry.status);
      Alcotest.(check string)
        "counterexample" (String.trim entry.counterexample)
        (String.trim e.counterexample)

let test_corpus_rejects_malformed () =
  let cases =
    [
      "seed: 1\ncount: 2\nstatus: open\n---\nx";  (* missing oracle *)
      "oracle: o\nseed: x\ncount: 2\nstatus: open\n---\n";  (* bad seed *)
      "oracle: o\nseed: 1\ncount: 2\nstatus: open\nno separator";
      "oracle: o\nseed: 1\ncount: 2\nstatus: maybe\n---\n";  (* bad status *)
    ]
  in
  List.iter
    (fun text ->
      match Fuzz.Corpus.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed entry accepted: %S" text)
    cases

let test_derive_seed_stable () =
  (* Derived seeds are per-oracle and non-negative; same inputs, same
     stream. *)
  let s1 = Fuzz.Runner.derive_seed 42 "interp-vs-sim" in
  let s2 = Fuzz.Runner.derive_seed 42 "interp-vs-sim" in
  Alcotest.(check int) "stable" s1 s2;
  check "non-negative" true (s1 >= 0);
  check "oracle-dependent" true
    (Fuzz.Runner.derive_seed 42 "json-roundtrip" <> s1
    || Fuzz.Runner.derive_seed 42 "binlp-exact" <> s1)

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "programs well-formed" `Quick
            test_generated_programs_well_formed;
          Alcotest.test_case "configs valid" `Quick test_generated_configs_valid;
          Alcotest.test_case "profiles differ" `Quick test_profiles_differ;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "all pass at small budget" `Quick test_oracles_pass;
          Alcotest.test_case "failure is reported" `Quick
            test_oracle_catches_failure;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick
            test_corpus_rejects_malformed;
          Alcotest.test_case "derived seeds stable" `Quick
            test_derive_seed_stable;
        ] );
    ]
