(* Tests for the LEON parameter space (lib/arch). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_base_valid () =
  check_bool "base configuration is valid" true (Arch.Config.is_valid Arch.Config.base)

let test_base_values () =
  let b = Arch.Config.base in
  check_int "icache ways" 1 b.icache.ways;
  check_int "icache way KB" 4 b.icache.way_kb;
  check_int "icache line words" 8 b.icache.line_words;
  check_int "dcache ways" 1 b.dcache.ways;
  check_int "dcache way KB" 4 b.dcache.way_kb;
  check_bool "fast read off" false b.dcache_fast_read;
  check_bool "fast write off" false b.dcache_fast_write;
  check_bool "fast jump on" true b.iu.fast_jump;
  check_bool "icc hold on" true b.iu.icc_hold;
  check_bool "fast decode on" true b.iu.fast_decode;
  check_int "load delay" 1 b.iu.load_delay;
  check_int "register windows" 8 b.iu.reg_windows;
  check_bool "divider radix2" true (b.iu.divider = Arch.Config.Div_radix2);
  check_bool "multiplier 16x16" true (b.iu.multiplier = Arch.Config.Mul_16x16)

let test_lrr_needs_2way () =
  let c2 =
    { Arch.Config.base with
      dcache = { Arch.Config.base.dcache with ways = 2; replacement = Arch.Config.Lrr } }
  in
  check_bool "LRR with 2 ways valid" true (Arch.Config.is_valid c2);
  let c3 = { c2 with dcache = { c2.dcache with ways = 3 } } in
  check_bool "LRR with 3 ways invalid" false (Arch.Config.is_valid c3);
  let c1 = { c2 with dcache = { c2.dcache with ways = 1 } } in
  check_bool "LRR with 1 way invalid" false (Arch.Config.is_valid c1)

let test_lru_needs_multiway () =
  let mk ways =
    { Arch.Config.base with
      icache = { Arch.Config.base.icache with ways; replacement = Arch.Config.Lru } }
  in
  check_bool "LRU direct-mapped invalid" false (Arch.Config.is_valid (mk 1));
  check_bool "LRU 2-way valid" true (Arch.Config.is_valid (mk 2));
  check_bool "LRU 3-way valid" true (Arch.Config.is_valid (mk 3));
  check_bool "LRU 4-way valid" true (Arch.Config.is_valid (mk 4))

let test_bad_ranges () =
  let bad_kb =
    { Arch.Config.base with icache = { Arch.Config.base.icache with way_kb = 3 } }
  in
  check_bool "way size 3KB invalid" false (Arch.Config.is_valid bad_kb);
  let bad_line =
    { Arch.Config.base with dcache = { Arch.Config.base.dcache with line_words = 16 } }
  in
  check_bool "line 16 words invalid" false (Arch.Config.is_valid bad_line);
  let bad_win =
    { Arch.Config.base with iu = { Arch.Config.base.iu with reg_windows = 12 } }
  in
  check_bool "12 windows invalid" false (Arch.Config.is_valid bad_win);
  let bad_delay =
    { Arch.Config.base with iu = { Arch.Config.base.iu with load_delay = 3 } }
  in
  check_bool "load delay 3 invalid" false (Arch.Config.is_valid bad_delay)

(* --- Param: the 52 decision variables --- *)

let test_var_count () =
  check_int "52 variables" 52 Arch.Param.count;
  check_int "all list length" 52 (List.length Arch.Param.all)

let test_var_indices () =
  List.iteri
    (fun k v -> check_int "index order" (k + 1) v.Arch.Param.index)
    Arch.Param.all

let test_paper_numbering () =
  (* Spot-check the x_i assignments quoted in the paper's Section 4. *)
  let label i = (Arch.Param.var i).Arch.Param.label in
  Alcotest.(check string) "x9" "icachelinesz4" (label 9);
  Alcotest.(check string) "x20" "dcachelinesz4" (label 20);
  Alcotest.(check string) "x23" "nofastjump" (label 23);
  Alcotest.(check string) "x24" "noicchold" (label 24);
  Alcotest.(check string) "x25" "nofastdecode" (label 25);
  Alcotest.(check string) "x26" "loaddelay2" (label 26);
  Alcotest.(check string) "x27" "dcachefastread" (label 27);
  Alcotest.(check string) "x28" "nodivider" (label 28);
  Alcotest.(check string) "x29" "noinfermuldiv" (label 29);
  Alcotest.(check string) "x30" "regwindows16" (label 30);
  Alcotest.(check string) "x46" "regwindows32" (label 46);
  Alcotest.(check string) "x52" "dcachefastwrite" (label 52)

let test_all_perturbations_valid () =
  List.iter
    (fun v ->
      let c = v.Arch.Param.apply Arch.Config.base in
      match Arch.Config.validate c with
      | Ok () -> ()
      | Error m ->
          (* LRR/LRU perturbations of a direct-mapped base cache are
             structurally invalid on their own; the optimizer's coupling
             constraints handle them.  Everything else must be valid. *)
          (match v.Arch.Param.group with
          | Arch.Param.Icache_repl | Arch.Param.Dcache_repl -> ()
          | _ -> Alcotest.failf "%s: %s" v.Arch.Param.label m))
    Arch.Param.all

let test_all_perturbations_differ () =
  List.iter
    (fun v ->
      let c = v.Arch.Param.apply Arch.Config.base in
      check_bool
        (Printf.sprintf "%s changes the base config" v.Arch.Param.label)
        false
        (Arch.Config.equal c Arch.Config.base))
    Arch.Param.all

let test_groups_partition () =
  let sum =
    List.fold_left
      (fun acc g -> acc + List.length (Arch.Param.group_members g))
      0 Arch.Param.groups
  in
  check_int "groups partition the 52 variables" 52 sum

let test_group_sizes () =
  let size g = List.length (Arch.Param.group_members g) in
  check_int "icache ways" 3 (size Arch.Param.Icache_ways);
  check_int "icache way size" 5 (size Arch.Param.Icache_way_kb);
  check_int "icache repl" 2 (size Arch.Param.Icache_repl);
  check_int "dcache ways" 3 (size Arch.Param.Dcache_ways);
  check_int "dcache way size" 5 (size Arch.Param.Dcache_way_kb);
  check_int "dcache repl" 2 (size Arch.Param.Dcache_repl);
  check_int "windows" 17 (size Arch.Param.Reg_windows);
  check_int "multiplier" 5 (size Arch.Param.Multiplier);
  check_int "fast jump" 1 (size Arch.Param.Fast_jump)

let test_apply_all_composes () =
  let vars = [ Arch.Param.var 1; Arch.Param.var 8; Arch.Param.var 23 ] in
  let c = Arch.Param.apply_all Arch.Config.base vars in
  check_int "icache ways applied" 2 c.Arch.Config.icache.ways;
  check_int "icache 32KB applied" 32 c.Arch.Config.icache.way_kb;
  check_bool "fast jump disabled" false c.Arch.Config.iu.fast_jump

(* --- Space --- *)

let test_space_counts () =
  check_int "one-at-a-time = 52" 52 Arch.Space.one_at_a_time_count;
  check_int "parameter values" 73 Arch.Space.parameter_value_count;
  check_int "exhaustive product" 910_393_344 Arch.Space.exhaustive_count;
  check_bool "valid count below raw count" true
    (Arch.Space.exhaustive_valid_count < Arch.Space.exhaustive_count);
  check_int "paper's dcache subspace" 2688 Arch.Space.dcache_exhaustive_full_count

let test_perturbation_list () =
  let ps = Arch.Space.perturbations () in
  check_int "52 perturbed configs" 52 (List.length ps);
  List.iter
    (fun (v, c) ->
      check_bool v.Arch.Param.label true
        (Arch.Config.equal c (v.Arch.Param.apply Arch.Config.base)))
    ps

let test_dcache_geometry () =
  let cs = Arch.Space.dcache_geometry () in
  check_int "28 geometry points" 28 (List.length cs);
  List.iter
    (fun c ->
      check_bool "only dcache differs" true
        (Arch.Config.equal
           { c with Arch.Config.dcache = Arch.Config.base.dcache }
           Arch.Config.base))
    cs

let test_subspace () =
  let cs = Arch.Space.subspace Arch.Param.dcache_size_dims in
  (* 4 ways x 6 sizes (base + 5 perturbations; 64 KB not offered). *)
  check_int "ways x sizes" 24 (List.length cs);
  List.iter (fun c -> check_bool "valid" true (Arch.Config.is_valid c)) cs

(* --- Codec --- *)

let test_codec_base_roundtrip () =
  let s = Arch.Codec.to_string Arch.Config.base in
  match Arch.Codec.of_string s with
  | Ok c -> check_bool "roundtrip" true (Arch.Config.equal c Arch.Config.base)
  | Error m -> Alcotest.failf "decode failed: %s" m

let test_codec_all_perturbations_roundtrip () =
  List.iter
    (fun (v, c) ->
      if Arch.Config.is_valid c then
        match Arch.Codec.of_string (Arch.Codec.to_string c) with
        | Ok c' ->
            check_bool v.Arch.Param.label true (Arch.Config.equal c c')
        | Error m -> Alcotest.failf "%s: %s" v.Arch.Param.label m)
    (Arch.Space.perturbations ())

let test_codec_delta () =
  match Arch.Codec.of_string "dc=1x32x4xrnd,mul=m32x32" with
  | Error m -> Alcotest.failf "delta decode failed: %s" m
  | Ok c ->
      check_int "dcache grown" 32 c.Arch.Config.dcache.Arch.Config.way_kb;
      check_int "line shrunk" 4 c.Arch.Config.dcache.Arch.Config.line_words;
      check_bool "multiplier upgraded" true
        (c.Arch.Config.iu.Arch.Config.multiplier = Arch.Config.Mul_32x32);
      check_int "icache untouched" 4 c.Arch.Config.icache.Arch.Config.way_kb

let test_codec_errors () =
  let expect_error s =
    match Arch.Codec.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected decode error for %S" s
  in
  expect_error "dc=1x3x8xrnd";        (* invalid way size *)
  expect_error "dc=1x4x8xlru";        (* LRU needs multiway *)
  expect_error "win=12";              (* invalid window count *)
  expect_error "zz=1";                (* unknown field *)
  expect_error "dc=oops";
  expect_error "mul=m64x64";
  expect_error "noequals"

let test_codec_rejects_duplicates_and_empties () =
  let expect_error s =
    match Arch.Codec.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected decode error for %S" s
  in
  (* Duplicate keys must not silently last-win. *)
  expect_error "ld=1,ld=2";
  expect_error "mul=m16x16,win=8,mul=m32x32";
  (* Empty fields (stray commas) must not be silently dropped. *)
  expect_error "ic=1x4x8xrnd,,,";
  expect_error ",dc=1x4x8xrnd";
  expect_error "fr=1,,fw=1";
  (* A single trailing comma stays tolerated. *)
  (match Arch.Codec.of_string "dc=1x32x4xrnd,mul=m32x32," with
  | Ok c -> Alcotest.(check int) "trailing comma ok" 32 c.Arch.Config.dcache.Arch.Config.way_kb
  | Error m -> Alcotest.failf "trailing comma rejected: %s" m);
  match Arch.Codec.of_string (Arch.Codec.to_string Arch.Config.base ^ ",") with
  | Ok c -> Alcotest.(check bool) "full encoding + trailing comma" true
              (Arch.Config.equal c Arch.Config.base)
  | Error m -> Alcotest.failf "trailing comma rejected: %s" m

let test_codec_digest () =
  (* Content addressing: equal configurations digest identically
     however they were constructed, distinct ones distinctly. *)
  let rebuilt =
    Arch.Codec.of_string_exn (Arch.Codec.to_string Arch.Config.base)
  in
  Alcotest.(check string)
    "same config, same digest"
    (Arch.Codec.digest Arch.Config.base)
    (Arch.Codec.digest rebuilt);
  let points = Arch.Space.dcache_geometry () in
  Alcotest.(check int)
    "all dcache geometry points digest distinctly"
    (List.length points)
    (List.length (List.sort_uniq compare (List.map Arch.Codec.digest points)))

let () =
  Alcotest.run "arch"
    [
      ( "config",
        [
          Alcotest.test_case "base valid" `Quick test_base_valid;
          Alcotest.test_case "base values" `Quick test_base_values;
          Alcotest.test_case "LRR 2-way rule" `Quick test_lrr_needs_2way;
          Alcotest.test_case "LRU multiway rule" `Quick test_lru_needs_multiway;
          Alcotest.test_case "bad ranges" `Quick test_bad_ranges;
        ] );
      ( "param",
        [
          Alcotest.test_case "variable count" `Quick test_var_count;
          Alcotest.test_case "index order" `Quick test_var_indices;
          Alcotest.test_case "paper numbering" `Quick test_paper_numbering;
          Alcotest.test_case "perturbations valid" `Quick test_all_perturbations_valid;
          Alcotest.test_case "perturbations differ" `Quick test_all_perturbations_differ;
          Alcotest.test_case "groups partition" `Quick test_groups_partition;
          Alcotest.test_case "group sizes" `Quick test_group_sizes;
          Alcotest.test_case "apply_all composes" `Quick test_apply_all_composes;
        ] );
      ( "codec",
        [
          Alcotest.test_case "base roundtrip" `Quick test_codec_base_roundtrip;
          Alcotest.test_case "perturbation roundtrips" `Quick test_codec_all_perturbations_roundtrip;
          Alcotest.test_case "delta decode" `Quick test_codec_delta;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "duplicates and empties" `Quick
            test_codec_rejects_duplicates_and_empties;
          Alcotest.test_case "digest" `Quick test_codec_digest;
        ] );
      ( "space",
        [
          Alcotest.test_case "cardinalities" `Quick test_space_counts;
          Alcotest.test_case "perturbation list" `Quick test_perturbation_list;
          Alcotest.test_case "dcache geometry" `Quick test_dcache_geometry;
          Alcotest.test_case "subspace" `Quick test_subspace;
        ] );
    ]
