(* Tests for the processor simulator: caches, memory, CPU semantics and
   cycle accounting. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let base = Arch.Config.base

let with_iu f = { base with Arch.Config.iu = f base.Arch.Config.iu }

(* --- Memory --- *)

let test_memory_rw () =
  let m = Sim.Memory.create ~size:4096 in
  Sim.Memory.write_u32 m 0 0xDEADBEEF;
  check_int "u32 roundtrip" 0xDEADBEEF (Sim.Memory.read_u32 m 0);
  check_int "little endian byte 0" 0xEF (Sim.Memory.read_u8 m 0);
  check_int "little endian byte 3" 0xDE (Sim.Memory.read_u8 m 3);
  check_int "halfword low" 0xBEEF (Sim.Memory.read_u16 m 0);
  Sim.Memory.write_u8 m 10 0x7F;
  check_int "u8 roundtrip" 0x7F (Sim.Memory.read_u8 m 10);
  Sim.Memory.write_u16 m 12 0xABCD;
  check_int "u16 roundtrip" 0xABCD (Sim.Memory.read_u16 m 12)

let test_memory_faults () =
  let m = Sim.Memory.create ~size:64 in
  let expect_fault f =
    match f () with
    | exception Sim.Memory.Fault _ -> ()
    | _ -> Alcotest.fail "expected fault"
  in
  expect_fault (fun () -> Sim.Memory.read_u32 m 62);
  expect_fault (fun () -> Sim.Memory.read_u32 m 2);
  expect_fault (fun () -> Sim.Memory.read_u16 m 1);
  expect_fault (fun () -> Sim.Memory.read_u8 m 64);
  expect_fault (fun () -> Sim.Memory.read_u8 m (-1))

let test_line_fill_cycles () =
  check_int "8-word fill" 13 (Sim.Memory.line_fill_cycles ~line_words:8);
  check_int "4-word fill" 9 (Sim.Memory.line_fill_cycles ~line_words:4)

(* --- Cache --- *)

let mk_cache ?(ways = 1) ?(way_kb = 1) ?(line_words = 4) ?(repl = Arch.Config.Random) () =
  Sim.Cache.create ~ways ~way_kb ~line_words ~replacement:repl
    ~rng:(Sim.Rng.create ~seed:7)

let test_cache_geometry () =
  let c = mk_cache ~way_kb:4 ~line_words:8 () in
  check_int "line bytes" 32 (Sim.Cache.line_bytes c);
  check_int "sets" 128 (Sim.Cache.sets c)

let test_cold_miss_then_hit () =
  let c = mk_cache () in
  check_bool "first access misses" false (Sim.Cache.read c 0x100);
  check_bool "second access hits" true (Sim.Cache.read c 0x100);
  check_bool "same line hits" true (Sim.Cache.read c 0x10C);
  check_bool "next line misses" false (Sim.Cache.read c 0x110);
  let s = Sim.Cache.stats c in
  check_int "reads" 4 s.Sim.Cache.reads;
  check_int "read misses" 2 s.Sim.Cache.read_misses

let test_direct_mapped_conflict () =
  (* 1 KB direct-mapped, 16-byte lines: addresses 1 KB apart conflict. *)
  let c = mk_cache () in
  ignore (Sim.Cache.read c 0);
  ignore (Sim.Cache.read c 1024);
  check_bool "conflict evicted the first line" false (Sim.Cache.read c 0)

let test_two_way_no_conflict () =
  let c = mk_cache ~ways:2 ~repl:Arch.Config.Lru () in
  ignore (Sim.Cache.read c 0);
  ignore (Sim.Cache.read c 1024);
  check_bool "2-way holds both lines" true (Sim.Cache.read c 0);
  check_bool "and the second too" true (Sim.Cache.read c 1024)

let test_lru_eviction_order () =
  let c = mk_cache ~ways:2 ~repl:Arch.Config.Lru () in
  ignore (Sim.Cache.read c 0);      (* A *)
  ignore (Sim.Cache.read c 1024);   (* B *)
  ignore (Sim.Cache.read c 0);      (* touch A: B is now LRU *)
  ignore (Sim.Cache.read c 2048);   (* C evicts B *)
  check_bool "A survives" true (Sim.Cache.read c 0);
  check_bool "B was evicted" false (Sim.Cache.read c 1024)

let test_lrr_round_robin () =
  (* LRR (FIFO) ignores recency: the oldest *fill* is replaced. *)
  let c = mk_cache ~ways:2 ~repl:Arch.Config.Lrr () in
  ignore (Sim.Cache.read c 0);      (* A -> way 0 *)
  ignore (Sim.Cache.read c 1024);   (* B -> way 1 *)
  ignore (Sim.Cache.read c 0);      (* touch A; irrelevant to LRR *)
  ignore (Sim.Cache.read c 2048);   (* C replaces A (oldest fill) *)
  check_bool "A was evicted despite recent use" false (Sim.Cache.read c 0)

let test_write_no_allocate () =
  let c = mk_cache () in
  check_bool "write miss" false (Sim.Cache.write c 0x200);
  check_bool "read still misses (no allocate)" false (Sim.Cache.read c 0x200);
  check_bool "write after fill hits" true (Sim.Cache.write c 0x200);
  let s = Sim.Cache.stats c in
  check_int "writes" 2 s.Sim.Cache.writes;
  check_int "write misses" 1 s.Sim.Cache.write_misses

let test_fills_equal_misses_qcheck () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"read misses never exceed reads"
       QCheck.(pair (int_bound 3) (list (int_bound 0xFFFF)))
       (fun (geom, addrs) ->
         let ways = 1 + geom in
         let c = mk_cache ~ways ~repl:Arch.Config.Lru () in
         List.iter (fun a -> ignore (Sim.Cache.read c (a land lnot 3))) addrs;
         let s = Sim.Cache.stats c in
         s.Sim.Cache.read_misses <= s.Sim.Cache.reads
         && s.Sim.Cache.reads = List.length addrs))

let test_lru_capacity_property () =
  (* With LRU, re-reading a working set no larger than one way of the
     cache yields no further misses after the first pass. *)
  let c = mk_cache ~way_kb:1 ~line_words:4 ~repl:Arch.Config.Random () in
  for pass = 1 to 3 do
    for a = 0 to 63 do
      ignore (Sim.Cache.read c (a * 16))
    done;
    if pass > 1 then
      check_int "steady state: only cold misses" 64
        (Sim.Cache.stats c).Sim.Cache.read_misses
  done

let test_single_set_fully_assoc () =
  (* way_kb 1 with 256-word (1 KB) lines collapses to a single set:
     the cache is fully associative and every address contends for the
     same [ways] lines. *)
  let c = mk_cache ~ways:2 ~way_kb:1 ~line_words:256 ~repl:Arch.Config.Lru () in
  check_int "single set" 1 (Sim.Cache.sets c);
  ignore (Sim.Cache.read c 0);      (* A *)
  ignore (Sim.Cache.read c 1024);   (* B: different line, same set *)
  check_bool "both lines co-resident" true (Sim.Cache.read c 0);
  ignore (Sim.Cache.read c 2048);   (* C evicts LRU = B *)
  check_bool "A survives" true (Sim.Cache.read c 0);
  check_bool "B was evicted" false (Sim.Cache.read c 1024)

let test_single_set_lru_is_stackdist () =
  (* A single-set LRU cache of W ways is exactly the fully-associative
     LRU model that stack-distance analysis computes. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"single-set LRU = stack distance"
       QCheck.(pair (int_range 1 4) (list (int_bound 0x3FFF)))
       (fun (ways, addrs) ->
         let c = mk_cache ~ways ~way_kb:1 ~line_words:256 ~repl:Arch.Config.Lru () in
         List.iter (fun a -> ignore (Sim.Cache.read c a)) addrs;
         let trace = Array.of_list addrs in
         let sd = Sim.Stackdist.analyze ~line_bytes:1024 trace in
         (Sim.Cache.stats c).Sim.Cache.read_misses
         = Sim.Stackdist.misses sd ~lines:ways))

let test_direct_mapped_policy_irrelevant () =
  (* With one way the victim is forced, so every replacement policy
     must produce an identical miss stream. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"direct-mapped ignores policy"
       QCheck.(list (int_bound 0xFFFF))
       (fun addrs ->
         let misses repl =
           let c = mk_cache ~ways:1 ~repl () in
           List.iter (fun a -> ignore (Sim.Cache.read c a)) addrs;
           (Sim.Cache.stats c).Sim.Cache.read_misses
         in
         let lru = misses Arch.Config.Lru in
         lru = misses Arch.Config.Lrr && lru = misses Arch.Config.Random))

let test_associativity_vs_capacity () =
  (* Same 2 KB capacity, different organization: lines 0 and 2048
     conflict in a 2 KB direct-mapped cache (same set, different tag)
     but co-reside in a 2-way 1 KB-per-way LRU cache. *)
  let dm = mk_cache ~ways:1 ~way_kb:2 () in
  ignore (Sim.Cache.read dm 0);
  ignore (Sim.Cache.read dm 2048);
  check_bool "direct-mapped conflict at same capacity" false
    (Sim.Cache.read dm 0);
  let assoc = mk_cache ~ways:2 ~way_kb:1 ~repl:Arch.Config.Lru () in
  ignore (Sim.Cache.read assoc 0);
  ignore (Sim.Cache.read assoc 2048);
  check_bool "2-way holds both" true (Sim.Cache.read assoc 0)

(* --- Stack-distance analysis --- *)

let test_stackdist_hand_trace () =
  (* Lines (16-byte): A B A C B A  ->
     distances: A inf, B inf, A 1 (B between), C inf, B 1 (C since
     last B... A,C accessed after first B -> distance 2), A 2 (C,B). *)
  let a = 0x000 and b = 0x010 and c = 0x020 in
  let sd = Sim.Stackdist.analyze ~line_bytes:16 [| a; b; a; c; b; a |] in
  check_int "accesses" 6 (Sim.Stackdist.accesses sd);
  check_int "cold misses" 3 (Sim.Stackdist.cold_misses sd);
  (* capacity 1 line: every non-consecutive reuse misses *)
  check_int "capacity 1" 6 (Sim.Stackdist.misses sd ~lines:1);
  (* capacity 2: hits only the distance-1 reuse (A at index 2) *)
  check_int "capacity 2" 5 (Sim.Stackdist.misses sd ~lines:2);
  (* capacity 3: all reuses hit *)
  check_int "capacity 3" 3 (Sim.Stackdist.misses sd ~lines:3);
  check_int "working set" 2 (Sim.Stackdist.max_distance sd)

let test_stackdist_same_line () =
  let sd = Sim.Stackdist.analyze ~line_bytes:16 [| 0; 4; 8; 12 |] in
  check_int "one cold miss" 1 (Sim.Stackdist.cold_misses sd);
  check_int "rest hit even in 1 line" 1 (Sim.Stackdist.misses sd ~lines:1)

(* Naive fully-associative LRU reference. *)
let naive_lru_misses ~line_bytes ~lines trace =
  let stack = ref [] in
  let misses = ref 0 in
  Array.iter
    (fun addr ->
      let line = addr / line_bytes in
      let rest = List.filter (fun l -> l <> line) !stack in
      if not (List.mem line !stack) then begin
        incr misses;
        stack := line :: rest
      end
      else if List.length rest >= lines then begin
        (* line was in the stack but beyond capacity: miss *)
        let depth = ref 0 in
        List.iteri (fun k l -> if l = line then depth := k) !stack;
        if !depth >= lines then incr misses;
        stack := line :: rest
      end
      else begin
        let depth = ref 0 in
        List.iteri (fun k l -> if l = line then depth := k) !stack;
        if !depth >= lines then incr misses;
        stack := line :: rest
      end)
    trace;
  !misses

let test_stackdist_vs_naive_lru () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"stack distance = naive LRU misses"
       QCheck.(pair (int_range 1 6) (list_of_size (QCheck.Gen.int_range 1 60) (int_bound 0x1FF)))
       (fun (lines, addrs) ->
         let trace = Array.of_list addrs in
         let sd = Sim.Stackdist.analyze ~line_bytes:16 trace in
         Sim.Stackdist.misses sd ~lines
         = naive_lru_misses ~line_bytes:16 ~lines trace))

let test_stackdist_monotone () =
  let trace =
    Array.init 500 (fun k -> (k * 37 mod 253) * 16)
  in
  let sd = Sim.Stackdist.analyze ~line_bytes:16 trace in
  let prev = ref max_int in
  List.iter
    (fun lines ->
      let m = Sim.Stackdist.misses sd ~lines in
      check_bool "misses nonincreasing in capacity" true (m <= !prev);
      prev := m)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ];
  check_int "large cache leaves only cold misses"
    (Sim.Stackdist.cold_misses sd)
    (Sim.Stackdist.misses sd ~lines:1024)

let test_trace_capture () =
  (* Machine.trace_reads captures exactly the load addresses. *)
  let a = Isa.Asm.create () in
  let buf = Isa.Asm.data_words a ~name:"w" [| 1; 2; 3; 4 |] in
  Isa.Asm.set32 a buf (Isa.Reg.o 1);
  for k = 0 to 3 do
    Isa.Asm.emit a
      (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = Isa.Reg.o 0;
                       rs1 = Isa.Reg.o 1; op2 = Isa.Insn.Imm (4 * k) })
  done;
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  let trace = Sim.Machine.trace_reads ~mem_size:(1 lsl 16) Arch.Config.base p in
  Alcotest.(check (array int)) "trace"
    [| buf; buf + 4; buf + 8; buf + 12 |]
    trace

(* --- CPU: assembly helpers --- *)

let run_asm ?(config = base) build =
  let a = Isa.Asm.create () in
  build a;
  let p = Isa.Asm.finish a ~entry:0 in
  let cpu = Sim.Cpu.create config p ~mem_size:(1 lsl 16) in
  Sim.Cpu.run cpu;
  cpu

let o0 = Isa.Reg.o 0
let o1 = Isa.Reg.o 1
let mov_imm a v rd = Isa.Asm.set32 a v rd

let alu op ?(cc = false) rd rs1 op2 = Isa.Insn.Alu { op; cc; rd; rs1; op2 }

let test_alu_basic () =
  let cpu =
    run_asm (fun a ->
        mov_imm a 5 o0;
        Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 3));
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "5 + 3" 8 (Sim.Cpu.result cpu)

let test_alu_wrap () =
  let cpu =
    run_asm (fun a ->
        mov_imm a 0x7FFFFFFF o0;
        Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 1));
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "signed overflow wraps" 0x80000000 (Sim.Cpu.result cpu)

let test_shifts () =
  let cpu =
    run_asm (fun a ->
        mov_imm a (-8) o0;
        Isa.Asm.emit a (alu Isa.Insn.Sra o1 o0 (Isa.Insn.Imm 1));
        Isa.Asm.emit a (alu Isa.Insn.Srl o0 o0 (Isa.Insn.Imm 28));
        Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Reg o1));
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  (* -8 asr 1 = -4 (0xFFFFFFFC); -8 lsr 28 = 0xF; sum = 0xFFFFFFFC + F *)
  check_int "sra + srl" ((0xFFFFFFFC + 0xF) land 0xFFFFFFFF) (Sim.Cpu.result cpu)

let test_mul_div () =
  let cpu =
    run_asm (fun a ->
        mov_imm a (-6) o0;
        Isa.Asm.emit a (Isa.Insn.Mul { signed = true; cc = false; rd = o0; rs1 = o0; op2 = Isa.Insn.Imm 7 });
        Isa.Asm.emit a (Isa.Insn.Div { signed = true; rd = o0; rs1 = o0; op2 = Isa.Insn.Imm 4 });
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  (* -42 / 4 truncates toward zero: -10. *)
  check_int "signed mul/div" ((-10) land 0xFFFFFFFF) (Sim.Cpu.result cpu)

let test_div_by_zero () =
  match
    run_asm (fun a ->
        mov_imm a 1 o0;
        Isa.Asm.emit a (Isa.Insn.Div { signed = true; rd = o0; rs1 = o0; op2 = Isa.Insn.Imm 0 });
        Isa.Asm.emit a Isa.Insn.Halt)
  with
  | exception Sim.Cpu.Error _ -> ()
  | _ -> Alcotest.fail "expected division-by-zero error"

let test_branch_signed () =
  (* -1 < 1 signed: blt taken. *)
  let cpu =
    run_asm (fun a ->
        mov_imm a (-1) o0;
        Isa.Asm.emit a (alu Isa.Insn.Sub ~cc:true 0 o0 (Isa.Insn.Imm 1));
        Isa.Asm.bcc a Isa.Insn.Lt "less";
        mov_imm a 0 o0;
        Isa.Asm.emit a Isa.Insn.Halt;
        Isa.Asm.label a "less";
        mov_imm a 1 o0;
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "signed less-than" 1 (Sim.Cpu.result cpu)

let test_branch_unsigned () =
  (* 0xFFFFFFFF > 1 unsigned: bgu taken. *)
  let cpu =
    run_asm (fun a ->
        mov_imm a (-1) o0;
        Isa.Asm.emit a (alu Isa.Insn.Sub ~cc:true 0 o0 (Isa.Insn.Imm 1));
        Isa.Asm.bcc a Isa.Insn.Gu "above";
        mov_imm a 0 o0;
        Isa.Asm.emit a Isa.Insn.Halt;
        Isa.Asm.label a "above";
        mov_imm a 1 o0;
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "unsigned greater" 1 (Sim.Cpu.result cpu)

let test_load_store () =
  let cpu =
    run_asm (fun a ->
        let buf = Isa.Asm.data_zero a ~name:"buf" 16 in
        mov_imm a buf o1;
        mov_imm a 0x1234 o0;
        Isa.Asm.emit a (Isa.Insn.Store { width = Isa.Insn.Word; rs = o0; rs1 = o1; op2 = Isa.Insn.Imm 4 });
        mov_imm a 0 o0;
        Isa.Asm.emit a (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = o0; rs1 = o1; op2 = Isa.Insn.Imm 4 });
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "store/load roundtrip" 0x1234 (Sim.Cpu.result cpu)

let test_byte_access () =
  let cpu =
    run_asm (fun a ->
        let buf = Isa.Asm.data_bytes a ~name:"b" (Bytes.of_string "\x01\xFF\x03\x04") in
        mov_imm a buf o1;
        Isa.Asm.emit a (Isa.Insn.Load { width = Isa.Insn.Byte; signed = false; rd = o0; rs1 = o1; op2 = Isa.Insn.Imm 1 });
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "unsigned byte load" 0xFF (Sim.Cpu.result cpu)

let test_signed_byte () =
  let cpu =
    run_asm (fun a ->
        let buf = Isa.Asm.data_bytes a ~name:"b" (Bytes.of_string "\x01\xFF") in
        mov_imm a buf o1;
        Isa.Asm.emit a (Isa.Insn.Load { width = Isa.Insn.Byte; signed = true; rd = o0; rs1 = o1; op2 = Isa.Insn.Imm 1 });
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "signed byte load" 0xFFFFFFFF (Sim.Cpu.result cpu)

(* Recursive factorial exercising register windows and traps. *)
let factorial_program n =
  fun a ->
    mov_imm a n o0;
    Isa.Asm.call a "fact";
    Isa.Asm.emit a Isa.Insn.Halt;
    Isa.Asm.label a "fact";
    Isa.Asm.emit a (Isa.Insn.Save { rd = Isa.Reg.sp; rs1 = Isa.Reg.sp; op2 = Isa.Insn.Imm (-96) });
    Isa.Asm.emit a (alu Isa.Insn.Sub ~cc:true 0 (Isa.Reg.i 0) (Isa.Insn.Imm 1));
    Isa.Asm.bcc a Isa.Insn.Gt "rec";
    mov_imm a 1 (Isa.Reg.i 0);
    Isa.Asm.emit a (Isa.Insn.Restore { rd = 0; rs1 = 0; op2 = Isa.Insn.Reg 0 });
    Isa.Asm.ret a;
    Isa.Asm.label a "rec";
    Isa.Asm.emit a (alu Isa.Insn.Sub o0 (Isa.Reg.i 0) (Isa.Insn.Imm 1));
    Isa.Asm.call a "fact";
    Isa.Asm.emit a (Isa.Insn.Mul { signed = true; cc = false; rd = Isa.Reg.i 0; rs1 = Isa.Reg.i 0; op2 = Isa.Insn.Reg o0 });
    Isa.Asm.emit a (Isa.Insn.Restore { rd = 0; rs1 = 0; op2 = Isa.Insn.Reg 0 });
    Isa.Asm.ret a

let test_factorial_shallow () =
  let cpu = run_asm (factorial_program 5) in
  check_int "5!" 120 (Sim.Cpu.result cpu);
  check_int "no overflows at depth 5 with 8 windows" 0
    (Sim.Cpu.profile cpu).Sim.Profiler.window_overflows

let test_factorial_deep_traps () =
  let cpu = run_asm (factorial_program 12) in
  check_int "12!" 479001600 (Sim.Cpu.result cpu);
  let p = Sim.Cpu.profile cpu in
  check_bool "overflow traps occurred" true (p.Sim.Profiler.window_overflows > 0);
  check_int "fills match spills" p.Sim.Profiler.window_overflows
    p.Sim.Profiler.window_underflows

let test_windows_semantic_invariance () =
  (* The result must not depend on the number of windows; cycles must
     not increase with more windows. *)
  let more = with_iu (fun u -> { u with Arch.Config.reg_windows = 32 }) in
  let cpu8 = run_asm (factorial_program 12) in
  let cpu32 = run_asm ~config:more (factorial_program 12) in
  check_int "same result" (Sim.Cpu.result cpu8) (Sim.Cpu.result cpu32);
  check_int "no traps with 32 windows" 0
    (Sim.Cpu.profile cpu32).Sim.Profiler.window_overflows;
  check_bool "more windows, fewer cycles" true
    ((Sim.Cpu.profile cpu32).Sim.Profiler.cycles
    < (Sim.Cpu.profile cpu8).Sim.Profiler.cycles)

(* --- Cycle accounting --- *)

let cycles_of ?config build =
  (Sim.Cpu.profile (run_asm ?config build)).Sim.Profiler.cycles

let test_simple_cycle_count () =
  (* nop; halt: one cold icache miss (13-cycle fill) + 2 cycles. *)
  let c =
    cycles_of (fun a ->
        Isa.Asm.emit a Isa.Insn.Nop;
        Isa.Asm.emit a Isa.Insn.Halt)
  in
  check_int "nop+halt cycles" 15 c

let test_mul_latency_effect () =
  let body a =
    mov_imm a 3 o0;
    for _ = 1 to 10 do
      Isa.Asm.emit a (Isa.Insn.Mul { signed = true; cc = false; rd = o0; rs1 = o0; op2 = Isa.Insn.Imm 1 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let fast = with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 }) in
  let slow = with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_iterative }) in
  let cf = cycles_of ~config:fast body and cs = cycles_of ~config:slow body in
  (* 10 multiplies, latency 35 vs 1. *)
  check_int "latency difference" (10 * 34) (cs - cf)

let test_icc_hold_effect () =
  let body a =
    mov_imm a 0 o0;
    Isa.Asm.label a "top";
    Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 1));
    Isa.Asm.emit a (alu Isa.Insn.Sub ~cc:true 0 o0 (Isa.Insn.Imm 100));
    Isa.Asm.bcc a Isa.Insn.Lt "top";
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let hold = cycles_of body in
  let nohold =
    cycles_of ~config:(with_iu (fun u -> { u with Arch.Config.icc_hold = false })) body
  in
  (* 100 branches, each immediately after subcc: one stall each. *)
  check_int "icc hold stalls" 100 (hold - nohold)

let test_fast_jump_effect () =
  let body a =
    for _ = 1 to 5 do
      Isa.Asm.call a "f"
    done;
    Isa.Asm.emit a Isa.Insn.Halt;
    Isa.Asm.label a "f";
    Isa.Asm.ret a
  in
  let fast = cycles_of body in
  let slow =
    cycles_of ~config:(with_iu (fun u -> { u with Arch.Config.fast_jump = false })) body
  in
  (* 5 calls + 5 returns, each one cycle slower without fast jump. *)
  check_int "jump penalty" 10 (slow - fast)

let test_load_delay_effect () =
  let body a =
    let buf = Isa.Asm.data_words a ~name:"w" [| 7 |] in
    mov_imm a buf o1;
    for _ = 1 to 8 do
      (* Dependent consumer right after the load. *)
      Isa.Asm.emit a (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = o0; rs1 = o1; op2 = Isa.Insn.Imm 0 });
      Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 1))
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let d1 = cycles_of body in
  let d2 =
    cycles_of ~config:(with_iu (fun u -> { u with Arch.Config.load_delay = 2 })) body
  in
  check_int "interlock stalls" 8 (d2 - d1)

let test_fast_read_neutral () =
  let body a =
    let buf = Isa.Asm.data_words a ~name:"w" [| 7 |] in
    mov_imm a buf o1;
    for _ = 1 to 16 do
      Isa.Asm.emit a (Isa.Insn.Load { width = Isa.Insn.Word; signed = false; rd = o0; rs1 = o1; op2 = Isa.Insn.Imm 0 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let normal = cycles_of body in
  let fast = cycles_of ~config:{ base with Arch.Config.dcache_fast_read = true } body in
  (* Area-only option at fixed clock: CPI must be unchanged. *)
  check_int "fast read is CPI-neutral" normal fast

let test_fast_write_neutral () =
  let body a =
    let buf = Isa.Asm.data_words a ~name:"w" [| 0 |] in
    mov_imm a buf o1;
    for _ = 1 to 16 do
      Isa.Asm.emit a (Isa.Insn.Store { width = Isa.Insn.Word; rs = o0; rs1 = o1; op2 = Isa.Insn.Imm 0 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let normal = cycles_of body in
  let fast = cycles_of ~config:{ base with Arch.Config.dcache_fast_write = true } body in
  check_int "fast write is CPI-neutral" normal fast

let test_branch_cycle_costs () =
  (* Taken branch: +1 redirect; untaken: free.  Loop of k iterations
     has k-1 taken back edges plus one fall-through. *)
  let body taken a =
    mov_imm a 0 o0;
    Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 1));
    (* one branch, never taken vs always taken once *)
    Isa.Asm.emit a (alu Isa.Insn.Sub ~cc:true 0 o0 (Isa.Insn.Imm (if taken then 1 else 99)));
    Isa.Asm.bcc a Isa.Insn.Eq "off";
    Isa.Asm.emit a Isa.Insn.Nop;
    Isa.Asm.label a "off";
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let t = cycles_of (body true) and u = cycles_of (body false) in
  (* Taken path skips the nop (-1 cycle) but pays the redirect (+1):
     identical totals; instruction counts differ by one. *)
  check_int "taken = untaken + redirect - skipped nop" u t

let test_store_costs_two_cycles () =
  let with_stores n a =
    let buf = Isa.Asm.data_words a ~name:"w" [| 0 |] in
    mov_imm a buf o1;
    ignore (Sim.Memory.write_cycles);
    for _ = 1 to n do
      Isa.Asm.emit a (Isa.Insn.Store { width = Isa.Insn.Word; rs = o0; rs1 = o1; op2 = Isa.Insn.Imm 0 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  (* each extra store adds exactly 2 cycles (1 base + 1 buffer) *)
  check_int "store delta" 2 (cycles_of (with_stores 5) - cycles_of (with_stores 4))

let test_save_restore_cost () =
  (* Without traps, save and restore are single-cycle. *)
  let body n a =
    for _ = 1 to n do
      Isa.Asm.emit a (Isa.Insn.Save { rd = Isa.Reg.sp; rs1 = Isa.Reg.sp; op2 = Isa.Insn.Imm (-96) });
      Isa.Asm.emit a (Isa.Insn.Restore { rd = 0; rs1 = 0; op2 = Isa.Insn.Reg 0 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  check_int "save+restore pair" 2 (cycles_of (body 3) - cycles_of (body 2))

let test_icache_line_boundary () =
  (* 9 nops cross one 32-byte (8-word) line: exactly two cold fills. *)
  let body n a =
    for _ = 1 to n do
      Isa.Asm.emit a Isa.Insn.Nop
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let c7 = run_asm (body 6) and c9 = run_asm (body 8) in
  check_int "one fill for 7 insns" 1 (Sim.Cpu.profile c7).Sim.Profiler.icache_misses;
  check_int "two fills for 9 insns" 2 (Sim.Cpu.profile c9).Sim.Profiler.icache_misses

let test_div_latency_effect () =
  let body a =
    mov_imm a 1000 o0;
    for _ = 1 to 4 do
      Isa.Asm.emit a (Isa.Insn.Div { signed = true; rd = o0; rs1 = o0; op2 = Isa.Insn.Imm 1 })
    done;
    Isa.Asm.emit a Isa.Insn.Halt
  in
  let hw = cycles_of body in
  let sw =
    cycles_of ~config:(with_iu (fun u -> { u with Arch.Config.divider = Arch.Config.Div_none })) body
  in
  (* 4 divides, latency 180 vs 35. *)
  check_int "software division penalty" (4 * (180 - 35)) (sw - hw)

let test_determinism () =
  let build = factorial_program 10 in
  let c1 = cycles_of build and c2 = cycles_of build in
  check_int "same cycles on identical runs" c1 c2

(* --- Trace --- *)

let test_trace_listing () =
  let a = Isa.Asm.create () in
  mov_imm a 1 o0;
  Isa.Asm.emit a (alu Isa.Insn.Add o0 o0 (Isa.Insn.Imm 2));
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  let cpu = Sim.Cpu.create base p ~mem_size:(1 lsl 16) in
  let entries = Sim.Trace.run cpu in
  check_int "three instructions" 3 (List.length entries);
  check_bool "halted afterwards" true (Sim.Cpu.halted cpu);
  check_int "result visible after trace" 3 (Sim.Cpu.result cpu);
  let cycles = List.map (fun (e : Sim.Trace.entry) -> e.Sim.Trace.cycles_after) entries in
  check_bool "cycles strictly increasing" true
    (List.sort compare cycles = cycles);
  let listing = Fmt.str "%a" Sim.Trace.pp entries in
  check_bool "listing mentions halt" true
    (String.length listing > 0
    && (try ignore (Str.search_forward (Str.regexp_string "halt") listing 0); true
        with Not_found -> false))

let test_trace_limit () =
  let a = Isa.Asm.create () in
  Isa.Asm.label a "spin";
  Isa.Asm.emit a Isa.Insn.Nop;
  Isa.Asm.ba a "spin";
  let p = Isa.Asm.finish a ~entry:0 in
  let cpu = Sim.Cpu.create base p ~mem_size:(1 lsl 16) in
  let entries = Sim.Trace.run ~limit:50 cpu in
  check_int "stops at the limit" 50 (List.length entries);
  check_bool "machine still live" true (not (Sim.Cpu.halted cpu))

(* --- Machine --- *)

let test_machine_scaling () =
  let a = Isa.Asm.create () in
  factorial_program 8 a;
  let p = Isa.Asm.finish a ~entry:0 in
  let r1 = Sim.Machine.run ~reps:1 base p in
  let r10 = Sim.Machine.run ~reps:10 base p in
  check_int "same checksum" r1.Sim.Machine.checksum r10.Sim.Machine.checksum;
  check_bool "warm run at most as slow as cold" true
    (r10.Sim.Machine.warm_cycles <= r10.Sim.Machine.cold_cycles);
  check_int "scaling formula"
    (r10.Sim.Machine.cold_cycles + (9 * r10.Sim.Machine.warm_cycles))
    r10.Sim.Machine.profile.Sim.Profiler.cycles

let test_machine_single_rep_epoch () =
  (* reps = 1 is a pure cold run: no warm epoch executes, and both
     epoch fields report the cold measurement. *)
  let a = Isa.Asm.create () in
  factorial_program 6 a;
  let p = Isa.Asm.finish a ~entry:0 in
  let r = Sim.Machine.run ~reps:1 base p in
  check_int "profile is the cold epoch" r.Sim.Machine.cold_cycles
    r.Sim.Machine.profile.Sim.Profiler.cycles;
  check_int "warm field mirrors cold" r.Sim.Machine.cold_cycles
    r.Sim.Machine.warm_cycles

let test_machine_epoch_independence () =
  (* Epoch measurements are per-epoch, not per-run: cold and warm
     cycles must not depend on how many warm repetitions are billed. *)
  let a = Isa.Asm.create () in
  factorial_program 8 a;
  let p = Isa.Asm.finish a ~entry:0 in
  let r2 = Sim.Machine.run ~reps:2 base p in
  let r10 = Sim.Machine.run ~reps:10 base p in
  check_int "cold epoch independent of reps" r2.Sim.Machine.cold_cycles
    r10.Sim.Machine.cold_cycles;
  check_int "warm epoch independent of reps" r2.Sim.Machine.warm_cycles
    r10.Sim.Machine.warm_cycles

let test_machine_warm_epoch_cache_state () =
  (* The cold/warm boundary reinitialises the architectural state but
     NOT the caches: nop+halt costs one 13-cycle line fill plus 2
     cycles cold, and exactly 2 cycles warm. *)
  let a = Isa.Asm.create () in
  Isa.Asm.emit a Isa.Insn.Nop;
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  let r = Sim.Machine.run ~reps:3 base p in
  check_int "cold epoch pays the line fill" 15 r.Sim.Machine.cold_cycles;
  check_int "warm epoch runs from a hot icache" 2 r.Sim.Machine.warm_cycles;
  check_int "billed total" (15 + (2 * 2)) r.Sim.Machine.profile.Sim.Profiler.cycles;
  check_int "instructions scale with reps" (3 * 2)
    r.Sim.Machine.profile.Sim.Profiler.instructions

let () =
  Alcotest.run "sim"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "faults" `Quick test_memory_faults;
          Alcotest.test_case "line fill cycles" `Quick test_line_fill_cycles;
        ] );
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_cache_geometry;
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "direct-mapped conflict" `Quick test_direct_mapped_conflict;
          Alcotest.test_case "two-way no conflict" `Quick test_two_way_no_conflict;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "LRR round robin" `Quick test_lrr_round_robin;
          Alcotest.test_case "write no-allocate" `Quick test_write_no_allocate;
          Alcotest.test_case "stats sanity (qcheck)" `Quick test_fills_equal_misses_qcheck;
          Alcotest.test_case "capacity steady state" `Quick test_lru_capacity_property;
          Alcotest.test_case "single-set fully assoc" `Quick test_single_set_fully_assoc;
          Alcotest.test_case "single-set LRU = stackdist (qcheck)" `Quick
            test_single_set_lru_is_stackdist;
          Alcotest.test_case "direct-mapped ignores policy (qcheck)" `Quick
            test_direct_mapped_policy_irrelevant;
          Alcotest.test_case "associativity vs capacity" `Quick
            test_associativity_vs_capacity;
        ] );
      ( "stackdist",
        [
          Alcotest.test_case "hand trace" `Quick test_stackdist_hand_trace;
          Alcotest.test_case "same line" `Quick test_stackdist_same_line;
          Alcotest.test_case "vs naive LRU (qcheck)" `Quick test_stackdist_vs_naive_lru;
          Alcotest.test_case "monotone" `Quick test_stackdist_monotone;
          Alcotest.test_case "trace capture" `Quick test_trace_capture;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "alu basic" `Quick test_alu_basic;
          Alcotest.test_case "alu wrap" `Quick test_alu_wrap;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "mul/div" `Quick test_mul_div;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "signed branch" `Quick test_branch_signed;
          Alcotest.test_case "unsigned branch" `Quick test_branch_unsigned;
          Alcotest.test_case "load/store" `Quick test_load_store;
          Alcotest.test_case "byte access" `Quick test_byte_access;
          Alcotest.test_case "signed byte" `Quick test_signed_byte;
          Alcotest.test_case "factorial shallow" `Quick test_factorial_shallow;
          Alcotest.test_case "factorial deep traps" `Quick test_factorial_deep_traps;
          Alcotest.test_case "window invariance" `Quick test_windows_semantic_invariance;
        ] );
      ( "timing",
        [
          Alcotest.test_case "nop+halt" `Quick test_simple_cycle_count;
          Alcotest.test_case "mul latency" `Quick test_mul_latency_effect;
          Alcotest.test_case "icc hold" `Quick test_icc_hold_effect;
          Alcotest.test_case "fast jump" `Quick test_fast_jump_effect;
          Alcotest.test_case "load delay" `Quick test_load_delay_effect;
          Alcotest.test_case "fast read neutral" `Quick test_fast_read_neutral;
          Alcotest.test_case "fast write neutral" `Quick test_fast_write_neutral;
          Alcotest.test_case "branch costs" `Quick test_branch_cycle_costs;
          Alcotest.test_case "store cost" `Quick test_store_costs_two_cycles;
          Alcotest.test_case "save/restore cost" `Quick test_save_restore_cost;
          Alcotest.test_case "icache line boundary" `Quick test_icache_line_boundary;
          Alcotest.test_case "divider latency" `Quick test_div_latency_effect;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "trace",
        [
          Alcotest.test_case "listing" `Quick test_trace_listing;
          Alcotest.test_case "limit" `Quick test_trace_limit;
        ] );
      ( "machine",
        [
          Alcotest.test_case "rep scaling" `Quick test_machine_scaling;
          Alcotest.test_case "single rep epoch" `Quick test_machine_single_rep_epoch;
          Alcotest.test_case "epoch independence" `Quick test_machine_epoch_independence;
          Alcotest.test_case "warm epoch cache state" `Quick
            test_machine_warm_epoch_cache_state;
        ] );
    ]
