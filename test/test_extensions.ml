(* Tests for the extension layer: heuristic baselines, the convex
   recast, the energy model, ablations and the figure report drivers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Heuristic baselines --- *)

let test_random_config_valid () =
  let rng = Sim.Rng.create ~seed:99 in
  for _ = 1 to 500 do
    let c = Dse.Heuristic.random_config rng in
    match Arch.Config.validate c with
    | Ok () -> ()
    | Error m -> Alcotest.failf "invalid random config: %s" m
  done

let test_random_search_budget () =
  let r =
    Dse.Heuristic.random_search ~builds:10 ~weights:Dse.Cost.runtime_weights
      Apps.Registry.arith
  in
  (* Every feasible draw consumes budget; bounds admission decides
     whether it is simulated ([builds]) or provably dominated and
     skipped ([pruned]). *)
  check_int "spent exactly the budget" 10
    (r.Dse.Heuristic.builds + r.Dse.Heuristic.pruned);
  check_bool "at least the winner is simulated" true
    (r.Dse.Heuristic.builds >= 1);
  check_bool "never worse than base" true (r.Dse.Heuristic.objective <= 0.0);
  check_bool "feasible" true (Synth.Resource.fits r.Dse.Heuristic.cost.Dse.Cost.resources)

let test_random_search_deterministic () =
  let go () =
    (Dse.Heuristic.random_search ~seed:7 ~builds:8
       ~weights:Dse.Cost.runtime_weights Apps.Registry.arith)
      .Dse.Heuristic.objective
  in
  Alcotest.(check (float 0.0)) "same seed, same answer" (go ()) (go ())

let test_coordinate_descent_improves () =
  let r =
    Dse.Heuristic.coordinate_descent ~weights:Dse.Cost.runtime_weights
      Apps.Registry.arith
  in
  check_bool "strictly better than base" true (r.Dse.Heuristic.objective < 0.0);
  check_bool "counts its candidates" true
    (r.Dse.Heuristic.builds + r.Dse.Heuristic.pruned > 10);
  check_bool "valid result" true (Arch.Config.is_valid r.Dse.Heuristic.config)

let test_paper_method_build_count () =
  let r = Dse.Heuristic.paper_method ~weights:Dse.Cost.runtime_weights Apps.Registry.arith in
  (* base + 52 probes + 2 replacement references + 1 verification *)
  check_int "56 builds" 56 r.Dse.Heuristic.builds

let test_static_features () =
  let ft = Apps.Features.of_app Apps.Registry.arith in
  let prog = Lazy.force Apps.Registry.arith.Apps.Registry.program in
  check_int "code bytes are 4 per instruction"
    (4 * Array.length prog.Isa.Program.code)
    ft.Apps.Features.code_bytes;
  check_int "arith code fits one 1KB way" 1 (Apps.Features.code_resident_kb ft);
  check_bool "arith multiplies" false (Apps.Features.mul_free ft);
  check_bool "arith divides" false (Apps.Features.div_free ft);
  Alcotest.(check (option int))
    "call depth 0: main only" (Some 0) ft.Apps.Features.call_depth;
  Alcotest.(check (option int))
    "one 96-byte frame" (Some 96) ft.Apps.Features.stack_bytes;
  check_bool "instruction mix sums to the total" true
    (let m = ft.Apps.Features.mix in
     m.Apps.Features.total
     = m.Apps.Features.alu + m.Apps.Features.mul + m.Apps.Features.div
       + m.Apps.Features.load + m.Apps.Features.store + m.Apps.Features.branch
       + m.Apps.Features.call + m.Apps.Features.other);
  (* blastn calls helpers: its nesting is deeper *)
  let bft = Apps.Features.of_app Apps.Registry.blastn in
  check_bool "blastn call depth positive" true
    (match bft.Apps.Features.call_depth with Some d -> d > 0 | None -> false)

let test_features_recursion_unbounded () =
  let open Minic.Ast in
  let f name body = { name; params = []; locals = []; body } in
  let src =
    {
      globals = [];
      funcs =
        [ f "loop" [ Do (Call ("loop", [])); Ret (i 0) ];
          f "main" [ Do (Call ("loop", [])); Ret (i 0) ] ];
    }
  in
  let ft = Apps.Features.of_program src (Minic.Codegen.compile src) in
  Alcotest.(check (option int))
    "recursive call graph has no depth bound" None ft.Apps.Features.call_depth;
  Alcotest.(check (option int))
    "and no stack bound" None ft.Apps.Features.stack_bytes

let test_static_pruning_preserves_trajectory () =
  let weights = Dse.Cost.runtime_weights in
  let app = Apps.Registry.arith in
  let plain = Dse.Heuristic.coordinate_descent ~weights app in
  let pruned =
    Dse.Heuristic.coordinate_descent
      ~features:(Apps.Features.of_app app)
      ~weights app
  in
  check_bool "same final configuration" true
    (Arch.Config.equal plain.Dse.Heuristic.config pruned.Dse.Heuristic.config);
  Alcotest.(check (float 1e-9))
    "same objective" plain.Dse.Heuristic.objective
    pruned.Dse.Heuristic.objective;
  check_bool "features never prune less than bounds admission alone" true
    (pruned.Dse.Heuristic.pruned >= plain.Dse.Heuristic.pruned);
  check_bool "some candidates pruned" true (pruned.Dse.Heuristic.pruned > 0);
  check_bool "no more builds with features than without" true
    (pruned.Dse.Heuristic.builds <= plain.Dse.Heuristic.builds);
  (* both runs walk the identical candidate sequence; each candidate is
     either simulated or (feature- or bounds-)pruned *)
  check_int "candidates considered add up"
    (plain.Dse.Heuristic.builds + plain.Dse.Heuristic.pruned)
    (pruned.Dse.Heuristic.builds + pruned.Dse.Heuristic.pruned)

(* --- Convex recast --- *)

let test_convex_study_runs () =
  let model =
    Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.arith
  in
  let s = Dse.Convex.run ~weights:Dse.Cost.runtime_weights model in
  check_bool "recast decodes to a valid config" true
    (Arch.Config.is_valid s.Dse.Convex.recast_config);
  check_bool "positive LP node count" true (s.Dse.Convex.milp_nodes > 0);
  (* On the dcache-only model for arith (no attractive products), both
     solvers settle on configurations of equal objective value. *)
  ignore s.Dse.Convex.agrees

(* --- Energy --- *)

let test_energy_measure_positive () =
  let m = Dse.Energy.measure Apps.Registry.arith Arch.Config.base in
  check_bool "positive energy" true (m.Dse.Energy.millijoules > 0.0);
  check_bool "sane average power" true
    (m.Dse.Energy.average_milliwatts > 10.0
    && m.Dse.Energy.average_milliwatts < 1000.0)

let test_energy_static_grows_with_resources () =
  let big =
    { Arch.Config.base with
      dcache = { Arch.Config.base.Arch.Config.dcache with way_kb = 32 } }
  in
  check_bool "more BRAM, more static power" true
    (Dse.Energy.static_milliwatts big
    > Dse.Energy.static_milliwatts Arch.Config.base)

let test_energy_mult_tradeoff () =
  (* The 32x32 multiplier burns more per operation but finishes sooner;
     both numbers must move in the modeled directions for a
     multiply-heavy app. *)
  let fast =
    { Arch.Config.base with
      Arch.Config.iu =
        { Arch.Config.base.Arch.Config.iu with multiplier = Arch.Config.Mul_32x32 } }
  in
  let b = Dse.Energy.measure Apps.Registry.arith Arch.Config.base in
  let f = Dse.Energy.measure Apps.Registry.arith fast in
  check_bool "faster" true (f.Dse.Energy.seconds < b.Dse.Energy.seconds);
  check_bool "higher average power" true
    (f.Dse.Energy.average_milliwatts > b.Dse.Energy.average_milliwatts)

let test_energy_optimize_improves () =
  let o = Dse.Energy.optimize ~weights:Dse.Energy.energy_weights Apps.Registry.arith in
  check_bool "energy reduced" true (o.Dse.Energy.energy_change_percent < 0.0);
  check_bool "valid config" true (Arch.Config.is_valid o.Dse.Energy.config)

(* --- Ablation --- *)

let test_variant_study_shapes () =
  let model =
    Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.blastn
  in
  let points = Dse.Ablation.variant_study ~weights:Dse.Cost.runtime_weights model in
  check_int "four variants" 4 (List.length points);
  (* All four must produce decodable outcomes. *)
  List.iter
    (fun (p : Dse.Ablation.variant_point) ->
      check_bool "valid" true
        (Arch.Config.is_valid p.Dse.Ablation.outcome.Dse.Optimizer.config))
    points

let test_independence_study_signs () =
  (* Arith has no cache overlap: its prediction is exact.  Use the
     cheap dcache dims to keep this fast: build a study by hand. *)
  let o =
    Dse.Optimizer.run ~dims:Arch.Param.dcache_size_dims
      ~weights:Dse.Cost.runtime_weights Apps.Registry.arith
  in
  let base = o.Dse.Optimizer.model.Dse.Measure.base.Dse.Cost.seconds in
  let predicted = o.Dse.Optimizer.predicted.Dse.Optimizer.seconds in
  let actual = o.Dse.Optimizer.actual.Dse.Cost.seconds in
  check_bool "exact prediction for arith" true
    (Float.abs (predicted -. actual) /. base < 1e-6)

(* --- Multi-application optimization --- *)

let test_multiapp_validation () =
  (match Dse.Multiapp.optimize ~weights:Dse.Cost.runtime_weights [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty workload must be rejected");
  match
    Dse.Multiapp.optimize ~weights:Dse.Cost.runtime_weights
      [ (Apps.Registry.arith, -1.0) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative share must be rejected"

let test_multiapp_single_equals_solo () =
  (* A one-application "mix" must reproduce the solo optimization. *)
  let dims = Arch.Param.dcache_size_dims in
  let solo =
    Dse.Optimizer.run ~dims ~weights:Dse.Cost.runtime_weights Apps.Registry.arith
  in
  let mix =
    Dse.Multiapp.optimize ~dims ~weights:Dse.Cost.runtime_weights
      [ (Apps.Registry.arith, 5.0) ]
  in
  check_bool "identical configuration" true
    (Arch.Config.equal solo.Dse.Optimizer.config mix.Dse.Multiapp.config)

let test_multiapp_compromise () =
  (* DRR wants a big dcache, Arith a small one; the mix must not hurt
     either beyond its solo optimum and must improve the blend. *)
  let mix =
    Dse.Multiapp.optimize ~dims:Arch.Param.dcache_size_dims
      ~weights:Dse.Cost.runtime_weights
      [ (Apps.Registry.drr, 0.5); (Apps.Registry.arith, 0.5) ]
  in
  check_bool "mix improves" true (mix.Dse.Multiapp.mix_gain_percent <= 0.0);
  List.iter
    (fun (app, change) ->
      check_bool (app.Apps.Registry.name ^ " not degraded") true (change <= 0.01))
    mix.Dse.Multiapp.per_app

(* --- Plot --- *)

let test_plot_renders () =
  let out =
    Fmt.str "%a"
      (fun ppf pts -> Dse.Plot.xy ~x_label:"kb" ~y_label:"misses" ppf pts)
      [ (1.0, 100.0); (2.0, 50.0); (4.0, 10.0) ]
  in
  check_bool "contains marks" true (String.contains out '*');
  check_bool "labels present" true
    (try
       ignore (Str.search_forward (Str.regexp_string "misses") out 0);
       true
     with Not_found -> false)

let test_plot_golden () =
  (* Pins nearest-cell rounding (the midpoint lands in column 12 of 24,
     not the truncated 11) and the x-axis labels: x1 right-aligned with
     the axis edge instead of the old fixed [width - 20] padding. *)
  let out =
    Fmt.str "%a"
      (fun ppf pts -> Dse.Plot.xy ~width:24 ~height:3 ppf pts)
      [ (0.0, 10.0); (0.5, 20.0); (1.0, 10.0) ]
  in
  let expected =
    "y\n\
    \     20.00 |            *           \n\
    \           |                        \n\
    \     10.00 |*                      *\n\
    \           +------------------------\n\
    \            0.00                1.00  (x)\n"
  in
  Alcotest.(check string) "golden plot" expected out;
  (* Narrow plots (width < 20) keep a positive pad between the labels. *)
  let narrow =
    Fmt.str "%a"
      (fun ppf pts -> Dse.Plot.xy ~width:12 ~height:3 ppf pts)
      [ (0.0, 1.0); (1.0, 2.0) ]
  in
  let last_line =
    match List.rev (String.split_on_char '\n' (String.trim narrow)) with
    | l :: _ -> l
    | [] -> ""
  in
  check_bool "narrow plot labels present" true
    (try
       ignore (Str.search_forward (Str.regexp_string "1.00") last_line 0);
       true
     with Not_found -> false)

let test_plot_degenerate () =
  let render pts =
    Fmt.str "%a" (fun ppf -> Dse.Plot.xy ppf) pts
  in
  check_bool "empty input" true (String.length (render []) > 0);
  check_bool "single point" true (String.contains (render [ (1.0, 1.0) ]) '*');
  check_bool "flat series" true
    (String.contains (render [ (1.0, 5.0); (2.0, 5.0) ]) '*')

(* --- Parallel map --- *)

let test_parallel_map_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> x * x) xs)
    (Dse.Parallel.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty list" [] (Dse.Parallel.map ~jobs:4 Fun.id [])

let test_parallel_map_exception () =
  match
    Dse.Parallel.map ~jobs:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (List.init 10 Fun.id)
  with
  | exception Failure m -> Alcotest.(check string) "propagated" "boom" m
  | _ -> Alcotest.fail "expected the worker exception"

let test_parallel_build_identical () =
  (* Parallel model building is a pure fan-out: any job count yields
     the sequential result bit for bit. *)
  let key m =
    List.map
      (fun (r : Dse.Measure.row) ->
        ( r.Dse.Measure.var.Arch.Param.index,
          r.Dse.Measure.cost.Dse.Cost.seconds,
          r.Dse.Measure.cost.Dse.Cost.resources ))
      m.Dse.Measure.rows
  in
  let dims = Arch.Param.dcache_size_dims in
  let seq = Dse.Measure.build ~dims ~jobs:1 Apps.Registry.arith in
  let par = Dse.Measure.build ~dims ~jobs:3 Apps.Registry.arith in
  check_bool "identical models" true (key seq = key par)

(* --- Generic domain: scheduler tuning --- *)

let test_sched_state_bytes () =
  check_int "base state" 19456
    (Dse.Sched_tuning.state_bytes Dse.Sched_tuning.base);
  check_int "small geometry" ((64 * 8 * 4) + (3 * 64 * 4))
    (Dse.Sched_tuning.state_bytes { Dse.Sched_tuning.queues = 64; slots = 8; quantum = 400 })

let test_sched_measure_dimensions () =
  let m = Dse.Sched_tuning.measure Dse.Sched_tuning.base in
  check_int "two dimensions" 2 (Array.length m);
  check_bool "positive efficiency cost" true (m.(0) > 0.0);
  check_bool "state matches formula" true
    (m.(1) = float_of_int (Dse.Sched_tuning.state_bytes Dse.Sched_tuning.base))

let test_sched_budget_enforced () =
  (* Whatever the weights, the 12 KB state budget must hold. *)
  List.iter
    (fun weights ->
      let o = Dse.Sched_tuning.Tuner.optimize ~weights in
      check_bool "under budget" true
        (Dse.Sched_tuning.state_bytes o.Dse.Sched_tuning.Tuner.config <= 12288))
    [ [| 100.0; 1.0 |]; [| 1.0; 100.0 |] ]

let test_sched_efficiency_improves () =
  let o = Dse.Sched_tuning.Tuner.optimize ~weights:[| 100.0; 1.0 |] in
  check_bool "efficiency improved" true (o.Dse.Sched_tuning.Tuner.actual.(0) < 0.0)

let test_generic_weight_validation () =
  match Dse.Sched_tuning.Tuner.optimize ~weights:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong weight arity must be rejected"

(* --- Report drivers --- *)

let test_fig2_structure () =
  let f = Dse.Report.run_fig2 Apps.Registry.arith in
  check_int "28 points" 28 (List.length f.Dse.Report.points);
  check_bool "optimal is feasible" true (f.Dse.Report.optimal.Dse.Exhaustive.cost <> None)

let test_fig3_structure () =
  let f = Dse.Report.run_fig3 Apps.Registry.arith in
  check_int "8 model rows" 8 (List.length f.Dse.Report.model.Dse.Measure.rows);
  check_bool "selection decodes" true
    (Arch.Config.is_valid f.Dse.Report.outcome.Dse.Optimizer.config)

let test_changed_params () =
  let c =
    { Arch.Config.base with
      Arch.Config.dcache = { Arch.Config.base.Arch.Config.dcache with way_kb = 32 };
      iu = { Arch.Config.base.Arch.Config.iu with icc_hold = false } }
  in
  let params = Dse.Report.changed_params c in
  check_int "two changes" 2 (List.length params);
  check_bool "dcache size listed" true (List.mem_assoc "dcachsetsz" params);
  check_bool "icc hold listed" true (List.mem_assoc "icchold" params);
  check_int "base changes nothing" 0
    (List.length (Dse.Report.changed_params Arch.Config.base))

let test_fig6_rows_complete () =
  let model = Dse.Measure.build Apps.Registry.blastn in
  let rows = Dse.Report.run_fig6 model in
  check_int "eight rows as in the paper" 8 (List.length rows);
  List.iter
    (fun ((r : Dse.Measure.row), (label, _, _, _)) ->
      check_bool (label ^ " maps to a measured row") true
        (r.Dse.Measure.cost.Dse.Cost.seconds > 0.0))
    rows

let test_paper_reference_data () =
  check_int "figure 2 rows" 19 (List.length Dse.Paper.figure2);
  check_int "figure 5 apps" 4 (List.length Dse.Paper.figure5);
  check_int "figure 7 apps" 4 (List.length Dse.Paper.figure7);
  check_int "figure 6 rows" 8 (List.length Dse.Paper.figure6);
  let lo, hi = Dse.Paper.runtime_gain_range in
  check_bool "gain range" true (lo = 6.15 && hi = 19.39)

let () =
  Alcotest.run "extensions"
    [
      ( "heuristic",
        [
          Alcotest.test_case "random configs valid" `Quick test_random_config_valid;
          Alcotest.test_case "random search budget" `Quick test_random_search_budget;
          Alcotest.test_case "random search deterministic" `Quick test_random_search_deterministic;
          Alcotest.test_case "coordinate descent" `Slow test_coordinate_descent_improves;
          Alcotest.test_case "paper build count" `Slow test_paper_method_build_count;
          Alcotest.test_case "static features" `Quick test_static_features;
          Alcotest.test_case "recursion unbounded" `Quick
            test_features_recursion_unbounded;
          Alcotest.test_case "static pruning" `Slow
            test_static_pruning_preserves_trajectory;
        ] );
      ( "convex",
        [ Alcotest.test_case "study runs" `Quick test_convex_study_runs ] );
      ( "energy",
        [
          Alcotest.test_case "measure positive" `Quick test_energy_measure_positive;
          Alcotest.test_case "static grows" `Quick test_energy_static_grows_with_resources;
          Alcotest.test_case "multiplier tradeoff" `Quick test_energy_mult_tradeoff;
          Alcotest.test_case "optimize improves" `Slow test_energy_optimize_improves;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "variant study" `Quick test_variant_study_shapes;
          Alcotest.test_case "independence exact for arith" `Quick test_independence_study_signs;
        ] );
      ( "multiapp",
        [
          Alcotest.test_case "validation" `Quick test_multiapp_validation;
          Alcotest.test_case "single = solo" `Quick test_multiapp_single_equals_solo;
          Alcotest.test_case "compromise" `Slow test_multiapp_compromise;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "degenerate" `Quick test_plot_degenerate;
          Alcotest.test_case "golden" `Quick test_plot_golden;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "order" `Quick test_parallel_map_order;
          Alcotest.test_case "exception" `Quick test_parallel_map_exception;
          Alcotest.test_case "identical model" `Quick test_parallel_build_identical;
        ] );
      ( "generic",
        [
          Alcotest.test_case "state bytes" `Quick test_sched_state_bytes;
          Alcotest.test_case "measure dims" `Quick test_sched_measure_dimensions;
          Alcotest.test_case "budget enforced" `Slow test_sched_budget_enforced;
          Alcotest.test_case "efficiency improves" `Slow test_sched_efficiency_improves;
          Alcotest.test_case "weight validation" `Quick test_generic_weight_validation;
        ] );
      ( "report",
        [
          Alcotest.test_case "fig2 structure" `Quick test_fig2_structure;
          Alcotest.test_case "fig3 structure" `Quick test_fig3_structure;
          Alcotest.test_case "changed params" `Quick test_changed_params;
          Alcotest.test_case "fig6 rows" `Slow test_fig6_rows_complete;
          Alcotest.test_case "paper data" `Quick test_paper_reference_data;
        ] );
    ]
