(* Diagnostic tool: per-application static features plus execution
   statistics on the base configuration and a few interesting
   perturbations.  Used to calibrate workload sizes against the
   paper's runtime signatures.

     appinfo                      dynamic + static report, paper apps
     appinfo blastn drr           ... a subset (extra apps allowed)
     appinfo --static             static features only (no simulation)
     appinfo --lint [--Werror]    lint every selected app's source     *)

open Cmdliner

let pr fmt = Format.printf fmt

let dcache_kb kb =
  { Arch.Config.base with
    dcache = { Arch.Config.base.Arch.Config.dcache with way_kb = kb } }

let with_iu f =
  { Arch.Config.base with Arch.Config.iu = f Arch.Config.base.Arch.Config.iu }

let selected_apps names =
  let known = Apps.Registry.all @ Apps.Extra.all in
  match names with
  | [] -> Apps.Registry.all
  | names ->
      List.map
        (fun name ->
          match
            List.find_opt (fun a -> a.Apps.Registry.name = String.lowercase_ascii name) known
          with
          | Some a -> a
          | None ->
              Logs.err (fun m ->
                  m "unknown app %S (known: %s)" name
                    (String.concat ", "
                       (List.map (fun a -> a.Apps.Registry.name) known)));
              exit 2)
        names

(* Lint every selected app's source; exit 4 on failures, like
   [mcc --lint].  Backs the @lint alias for the registry. *)
let lint_apps ~werror apps =
  let failed = ref false in
  List.iter
    (fun app ->
      let findings = Minic.Lint.program app.Apps.Registry.source in
      List.iter
        (fun f ->
          pr "%s: %a@." app.Apps.Registry.name Minic.Lint.pp_finding f)
        findings;
      pr "%s: %d finding%s@." app.Apps.Registry.name (List.length findings)
        (if List.length findings = 1 then "" else "s");
      if Minic.Lint.fails ~werror findings then failed := true)
    apps;
  if !failed then exit 4

let static_report app =
  let ft = Apps.Features.of_app app in
  pr "  static: @[<v>%a@]@." Apps.Features.pp ft

(* Static [best, worst] runtime bounds on the selected target's base
   configuration, with the worst/best tightness ratio. *)
let bounds_report (module T : Dse.Target.S) app =
  let lo, hi = Dse.Bounds.app_bounds (T.cycle_model T.base) app in
  let tight =
    match Dse.Bounds.tightness ~lo ~hi with
    | Some r -> Printf.sprintf "x%.2f" r
    | None -> "unbounded"
  in
  pr "  bounds (%s base): [%.3f s, %.3f s]  tightness %s@." T.name lo hi tight

(* Program-phase summary on the selected target's base configuration:
   one cold detection run, reported as count, boundaries, dominant
   class and per-phase CPI (see Sim.Phase). *)
let phase_report (module T : Dse.Target.S) app =
  let ph = T.detect_phases app in
  pr "  phases (%s base): %a@." T.name Sim.Phase.pp ph

let dynamic_report app =
  let base_r = Apps.Registry.run app in
  let p = base_r.Sim.Machine.profile in
  pr "  base: cold=%d warm=%d checksum=%#x seconds=%.2f (paper %.2f)@."
    base_r.Sim.Machine.cold_cycles base_r.Sim.Machine.warm_cycles
    base_r.Sim.Machine.checksum
    (Sim.Machine.seconds base_r)
    app.Apps.Registry.paper_base_seconds;
  pr "  warm profile: %a@." Sim.Profiler.pp p;
  let show name config =
    let r = Apps.Registry.run ~config app in
    let d =
      100.0
      *. (Sim.Machine.seconds r -. Sim.Machine.seconds base_r)
      /. Sim.Machine.seconds base_r
    in
    pr "  %-18s %10.3f s  (%+.2f%%)@." name (Sim.Machine.seconds r) d
  in
  show "dcache 1KB" (dcache_kb 1);
  show "dcache 8KB" (dcache_kb 8);
  show "dcache 16KB" (dcache_kb 16);
  show "dcache 32KB" (dcache_kb 32);
  show "dcache 2x16KB"
    { Arch.Config.base with
      dcache = { Arch.Config.base.Arch.Config.dcache with ways = 2; way_kb = 16 } };
  show "icache 1KB"
    { Arch.Config.base with
      icache = { Arch.Config.base.Arch.Config.icache with way_kb = 1 } };
  show "icache 2KB"
    { Arch.Config.base with
      icache = { Arch.Config.base.Arch.Config.icache with way_kb = 2 } };
  show "line 4 (dcache)"
    { Arch.Config.base with
      dcache = { Arch.Config.base.Arch.Config.dcache with line_words = 4 } };
  show "mul 32x32" (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 }));
  show "mul iterative" (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_iterative }));
  show "no icc hold" (with_iu (fun u -> { u with Arch.Config.icc_hold = false }));
  show "no fast jump" (with_iu (fun u -> { u with Arch.Config.fast_jump = false }));
  show "no divider" (with_iu (fun u -> { u with Arch.Config.divider = Arch.Config.Div_none }))

(* One-at-a-time report for a non-LEON2 target: the same base line, then
   every parameter-space variable applied to the target's base config.
   (The LEON2 report above keeps its historical hand-picked sweep.) *)
let target_dynamic_report (module T : Dse.Target.S) app =
  let base_r = T.run_app app in
  let p = base_r.Sim.Machine.profile in
  pr "  base: cold=%d warm=%d checksum=%#x seconds=%.2f (paper %.2f)@."
    base_r.Sim.Machine.cold_cycles base_r.Sim.Machine.warm_cycles
    base_r.Sim.Machine.checksum
    (Sim.Machine.seconds base_r)
    app.Apps.Registry.paper_base_seconds;
  pr "  warm profile: %a@." Sim.Profiler.pp p;
  List.iter
    (fun (v : T.var) ->
      let config = v.T.apply T.base in
      if T.is_valid config && not (T.equal config T.base) then begin
        let r = T.run_app ~config app in
        let d =
          100.0
          *. (Sim.Machine.seconds r -. Sim.Machine.seconds base_r)
          /. Sim.Machine.seconds base_r
        in
        pr "  %-18s %10.3f s  (%+.2f%%)@." v.T.label (Sim.Machine.seconds r) d
      end)
    T.vars

let list_targets () =
  List.iter
    (fun (module T : Dse.Target.S) ->
      pr "%-12s %s@." T.name T.description)
    Dse.Targets.all

let run list_targets_flag target lint werror static names obs =
  Obs_cli.with_reporting obs "appinfo" @@ fun () ->
  if list_targets_flag then list_targets ()
  else begin
    let (module T : Dse.Target.S) = target in
    let apps = selected_apps names in
    if lint then lint_apps ~werror apps
    else
      List.iter
        (fun app ->
          let prog = Lazy.force app.Apps.Registry.program in
          pr "=== %s (%d insns, %d B data, reps %d) ===@."
            app.Apps.Registry.name
            (Array.length prog.Isa.Program.code)
            (Bytes.length prog.Isa.Program.data)
            app.Apps.Registry.reps;
          static_report app;
          bounds_report (module T) app;
          if not static then begin
            phase_report (module T) app;
            if T.name = "leon2" then dynamic_report app
            else target_dynamic_report (module T) app
          end;
          pr "@.")
        apps
  end

let target_conv =
  let parse s =
    match Dse.Targets.find (String.lowercase_ascii s) with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown target %S (known: %s)" s
               (String.concat ", " Dse.Targets.names)))
  in
  let print ppf (module T : Dse.Target.S) = Format.fprintf ppf "%s" T.name in
  Arg.conv (parse, print)

let target_arg =
  let doc = "Soft-core target for the dynamic report (see --list-targets)." in
  Arg.(
    value
    & opt target_conv (module Dse.Target_leon2 : Dse.Target.S)
    & info [ "target" ] ~doc ~docv:"TARGET")

let list_targets_arg =
  Arg.(
    value & flag
    & info [ "list-targets" ]
        ~doc:"List the registered soft-core targets and exit.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Lint every selected application's source and exit 4 on \
           error-level findings, like $(b,mcc --lint).")

let werror_arg =
  Arg.(
    value & flag
    & info [ "Werror" ] ~doc:"With $(b,--lint): treat warnings as errors.")

let static_arg =
  Arg.(
    value & flag
    & info [ "static" ] ~doc:"Static features only (skip the simulations).")

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc:"Applications to report on (default: the paper's four).")

let cmd =
  let doc = "per-application static features and execution statistics" in
  Cmd.v
    (Cmd.info "appinfo" ~version:"1.0.0" ~doc)
    Term.(
      const run $ list_targets_arg $ target_arg $ lint_arg $ werror_arg
      $ static_arg $ names_arg $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
