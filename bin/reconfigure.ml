(* Command-line interface for automatic application-specific
   microarchitecture reconfiguration.

     reconfigure --app blastn                 # runtime optimization
     reconfigure --app drr --w1 1 --w2 100    # chip-resource optimization
     reconfigure --app frag --dims dcache     # the paper's Section 5 study
     reconfigure --app arith --exhaustive     # exhaustive dcache baseline *)

open Cmdliner

(* The paper's four benchmarks plus the extra kernels (rtr, dct,
   qsort, phases) — the latter matter for schedule runs, where the
   bi-modal [phases] kernel is the showcase. *)
let known_apps = Apps.Registry.all @ Apps.Extra.all

let app_conv =
  let parse s =
    match
      List.find_opt (fun a -> a.Apps.Registry.name = s) known_apps
    with
    | Some app -> Ok app
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown application %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun a -> a.Apps.Registry.name) known_apps))))
  in
  let print ppf app = Format.fprintf ppf "%s" app.Apps.Registry.name in
  Arg.conv (parse, print)

let app_arg =
  let doc =
    "Application to optimize for (blastn, drr, frag, arith; extras: rtr, \
     dct, qsort, phases)."
  in
  Arg.(required & opt (some app_conv) None & info [ "a"; "app" ] ~doc ~docv:"APP")

let w1_arg =
  let doc = "Weight of application runtime in the objective." in
  Arg.(value & opt float 100.0 & info [ "w1" ] ~doc)

let w2_arg =
  let doc = "Weight of chip resources (LUT%% + BRAM%%) in the objective." in
  Arg.(value & opt float 1.0 & info [ "w2" ] ~doc)

let dims_arg =
  let doc =
    "Restrict the explored dimensions: 'dcache' for the paper's Section 5 \
     ways x way-size study, 'all' (default) for all 52 variables."
  in
  Arg.(value & opt (enum [ ("all", `All); ("dcache", `Dcache) ]) `All & info [ "dims" ] ~doc)

let exhaustive_arg =
  let doc = "Also run the exhaustive dcache-geometry baseline and compare." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let schedule_arg =
  let doc =
    "Phase-aware reconfiguration: detect the application's program phases, \
     solve for a schedule of configurations (one per phase, switched at \
     runtime at a per-group reconfiguration cost) and compare the verified \
     schedule against the verified static pick."
  in
  Arg.(value & flag & info [ "schedule" ] ~doc)

let noise_arg =
  let doc =
    "Synthesis measurement noise amplitude (fraction of the device, e.g. \
     0.005); models place-and-route variance."
  in
  Arg.(value & opt (some float) None & info [ "noise" ] ~doc)

(* [-v]/[-vv] now belong to the shared logging term (Obs_cli); the
   model dump kept its own explicit flag. *)
let print_model_arg =
  let doc = "Print the full one-at-a-time cost model." in
  Arg.(value & flag & info [ "print-model" ] ~doc)

let report_arg =
  let doc = "Print the synthesis utilization report (component tree) of the recommended configuration (leon2 target only)." in
  Arg.(value & flag & info [ "report" ] ~doc)

let target_conv =
  let parse s =
    match Dse.Targets.find (String.lowercase_ascii s) with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown target %S (known: %s)" s
               (String.concat ", " Dse.Targets.names)))
  in
  let print ppf (module T : Dse.Target.S) = Format.fprintf ppf "%s" T.name in
  Arg.conv (parse, print)

let target_arg =
  let doc = "Soft-core target to reconfigure (leon2, microblaze)." in
  Arg.(
    value
    & opt target_conv (module Dse.Target_leon2 : Dse.Target.S)
    & info [ "target" ] ~doc ~docv:"TARGET")

let explain_arg =
  let doc =
    "Record the run's decision journal (per-candidate engine outcomes, \
     solver incumbent timeline, bound tightness) and write the provenance \
     report as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "explain" ] ~doc ~docv:"FILE")

let explain_md_arg =
  let doc = "Like $(b,--explain) but render the report as markdown." in
  Arg.(value & opt (some string) None & info [ "explain-md" ] ~doc ~docv:"FILE")

let ppf = Format.std_formatter

(* The whole pipeline is generic in the target: instantiating the
   functorized stack on the chosen backend gives the same code path
   (and the same output format) for every soft core. *)
let run target app w1 w2 dims exhaustive schedule noise print_model_flag report
    explain explain_md obs =
  Obs_cli.with_reporting obs "reconfigure" @@ fun () ->
  let (module T : Dse.Target.S) = target in
  let module S = Dse.Stack.Make (T) in
  let explaining = explain <> None || explain_md <> None in
  if explaining then begin
    Obs.Journal.set_enabled true;
    Obs.Journal.record ~kind:"run.meta"
      [
        ("tool", Obs.Json.String "reconfigure");
        ("target", Obs.Json.String T.name);
        ("app", Obs.Json.String app.Apps.Registry.name);
        ("w1", Obs.Json.Float w1);
        ("w2", Obs.Json.Float w2);
        ( "dims",
          Obs.Json.String (match dims with `All -> "all" | `Dcache -> "dcache")
        );
        ("mode", Obs.Json.String (if schedule then "schedule" else "static"));
      ]
  end;
  let write_explain () =
    if explaining then begin
      let report = Dse.Explain.of_journal () in
      Option.iter
        (fun path ->
          Dse.Explain.write_json path report;
          Logs.info (fun m -> m "wrote explain report to %s" path))
        explain;
      Option.iter
        (fun path ->
          Dse.Explain.write_markdown path report;
          Logs.info (fun m -> m "wrote explain report (markdown) to %s" path))
        explain_md
    end
  in
  Fun.protect ~finally:write_explain @@ fun () ->
  let print_model (m : S.Measure.model) =
    Format.fprintf ppf "One-at-a-time cost model (base %a):@." Dse.Cost.pp
      m.S.Measure.base;
    Format.fprintf ppf "  %4s %-20s %9s %8s %8s@." "x_i" "perturbation" "rho%"
      "lambda%" "beta%";
    List.iter
      (fun (r : S.Measure.row) ->
        let d = r.S.Measure.deltas in
        Format.fprintf ppf "  %4d %-20s %+9.3f %+8.3f %+8.3f@."
          r.S.Measure.var.T.index r.S.Measure.var.T.label d.Dse.Cost.rho
          d.Dse.Cost.lambda d.Dse.Cost.beta)
      m.S.Measure.rows
  in
  let weights = { Dse.Cost.w1; w2 } in
  let dims = match dims with `All -> None | `Dcache -> Some T.quick_dims in
  Format.fprintf ppf "Application: %s — %s@." app.Apps.Registry.name
    app.Apps.Registry.description;
  if schedule then begin
    (* Phase-aware pipeline: detection, per-phase model, schedule
       solve, phased verification — all inside [S.Schedule.run].
       Without an explicit --dims restriction it solves on the
       target's [schedule_dims] subspace. *)
    Logs.info (fun m ->
        m "phase-aware schedule for %s on %s with w1=%g w2=%g"
          app.Apps.Registry.name T.name w1 w2);
    let outcome = S.Schedule.run ?noise ?dims ~weights app in
    Format.fprintf ppf "@.Phase-aware schedule:@.";
    S.Schedule.print ppf outcome;
    Format.pp_print_flush ppf ()
  end
  else begin
  Logs.info (fun m ->
      m "optimizing %s for %s with w1=%g w2=%g (%s dimensions)"
        app.Apps.Registry.name T.name w1 w2
        (match dims with None -> "all" | Some _ -> "dcache"));
  let model = S.Measure.build ?noise ?dims app in
  Logs.info (fun m ->
      m "model built: %d one-at-a-time rows, base %.3fs"
        (List.length model.S.Measure.rows)
        model.S.Measure.base.Dse.Cost.seconds);
  if print_model_flag then print_model model;
  let outcome = S.Optimizer.run_with_model ~weights model in
  Format.fprintf ppf "@.Recommended configuration:@.%a@." T.pp
    outcome.S.Optimizer.config;
  Format.fprintf ppf "(encoded: %s)@." (T.to_string outcome.S.Optimizer.config);
  S.Optimizer.print_outcome_summary ppf outcome;
  if report then begin
    (* The utilization report elaborates a LEON2 netlist; recover the
       LEON2-typed configuration through the canonical codec. *)
    match Arch.Codec.of_string (T.to_string outcome.S.Optimizer.config) with
    | Ok c when T.name = "leon2" ->
        Format.fprintf ppf "@.Utilization report:@.";
        Synth.Netlist.pp ppf (Synth.Netlist.elaborate c)
    | _ ->
        Format.fprintf ppf
          "@.(--report is only available for the leon2 target)@."
  end;
  if exhaustive then begin
    Format.fprintf ppf "@.Exhaustive dcache baseline:@.";
    let points = S.Exhaustive.geometry_sweep app in
    match S.Exhaustive.best_runtime points with
    | best -> (
        match best.S.Exhaustive.cost with
        | Some c ->
            Format.fprintf ppf
              "  best runtime: %s at %.3fs (optimizer: %.3fs)@."
              (T.describe_sweep_point best.S.Exhaustive.config)
              c.Dse.Cost.seconds
              outcome.S.Optimizer.actual.Dse.Cost.seconds
        | None -> ())
    | exception Not_found ->
        Format.fprintf ppf "  no feasible dcache point@."
  end;
  Format.pp_print_flush ppf ()
  end

let cmd =
  let doc = "automatic application-specific microarchitecture reconfiguration" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds a one-at-a-time cost model of the chosen soft-core target \
         (LEON2 by default, see --target) for the chosen application \
         (simulated execution + analytic FPGA synthesis), formulates the \
         paper's constrained binary integer nonlinear program, solves it \
         exactly, and reports the recommended configuration together with \
         its actually-measured cost.";
    ]
  in
  Cmd.v
    (Cmd.info "reconfigure" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ target_arg $ app_arg $ w1_arg $ w2_arg $ dims_arg
      $ exhaustive_arg $ schedule_arg $ noise_arg $ print_model_arg
      $ report_arg $ explain_arg $ explain_md_arg $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
