(* minic compiler driver.

     mcc prog.mc                 parse + check + compile, report sizes
     mcc prog.mc --disasm        print the generated assembly
     mcc prog.mc -o prog.img     write the binary program image
     mcc prog.img --run          load an image and simulate it
     mcc prog.mc --run           compile and simulate (base config)
     mcc prog.mc --run --stats   ... with the full cycle profile
     mcc prog.mc -O --run        compile with optimizations (level 1)
     mcc prog.mc --O2 --run      ... plus dataflow CCP and DCE
     mcc prog.mc --lint          static diagnostics only
     mcc prog.mc --lint --Werror ... failing on warnings too
     mcc prog.mc --bounds        static [best, worst] cycle bounds
     mcc prog.mc --run -c dc=1x32x4xrnd,mul=m32x32
                                 simulate on a tuned configuration     *)

open Cmdliner

(* Distinct exit codes so scripts and the @lint alias can tell failure
   stages apart (1 is kept for runtime/simulation errors). *)
let exit_parse = 2
let exit_check = 3
let exit_lint = 4
let exit_trace = 5

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_and_check path =
  let src = read_file path in
  match Minic.Parser.parse src with
  | Error msg ->
      Logs.err (fun m -> m "%s: %s" path msg);
      exit exit_parse
  | Ok ast -> (
      match Minic.Check.check ast with
      | Error es ->
          List.iter (fun e -> Logs.err (fun m -> m "%s: %s" path e)) es;
          exit exit_check
      | Ok () -> ast)

let load ~level path =
  if Filename.check_suffix path ".img" then
    (Isa.Encode.decode_program (Bytes.of_string (read_file path)), None)
  else
    let ast = parse_and_check path in
    (Minic.Codegen.compile ~level ast, Some ast)

let lint ~werror path =
  if Filename.check_suffix path ".img" then begin
    Logs.err (fun m ->
        m "%s: --lint needs minic source, not a binary image" path);
    exit exit_parse
  end;
  let ast = parse_and_check path in
  let findings = Minic.Lint.program ast in
  List.iter
    (fun f -> Format.printf "%s: %a@." path Minic.Lint.pp_finding f)
    findings;
  let errors =
    List.length
      (List.filter (fun f -> f.Minic.Lint.severity = Minic.Lint.Error) findings)
  in
  Format.printf "%s: %d finding%s (%d error%s)@." path (List.length findings)
    (if List.length findings = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s");
  if Minic.Lint.fails ~werror findings then exit exit_lint

let run target source output disasm run stats optimize level do_lint werror
    bounds trace config obs =
  Obs_cli.with_reporting obs "mcc" @@ fun () ->
  let (module T : Dse.Target.S) = target in
  let config =
    match config with
    | None -> T.base
    | Some s -> (
        match T.of_string s with
        | Ok c -> c
        | Error m ->
            Logs.err (fun m' -> m' "--config: %s" m);
            exit 1)
  in
  if do_lint then lint ~werror source
  else begin
    let level =
      match level with Some l -> l | None -> if optimize then 1 else 0
    in
    let prog, ast = load ~level source in
    Format.printf "%s: %d instructions, %d bytes of data, %d symbols@." source
      (Array.length prog.Isa.Program.code)
      (Bytes.length prog.Isa.Program.data)
      (List.length prog.Isa.Program.symbols);
    (match output with
    | None -> ()
    | Some path ->
        let image = Isa.Encode.encode_program prog in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc image);
        Format.printf "wrote %s (%d bytes)@." path (Bytes.length image));
    if disasm then Format.printf "%a@." Isa.Program.pp prog;
    if bounds then begin
      match ast with
      | None ->
          Logs.err (fun m ->
              m "%s: --bounds needs minic source, not a binary image" source);
          exit exit_parse
      | Some ast ->
          let s = Minic.Bounds.summary ~level ast in
          let cm = T.cycle_model config in
          let clo, chi = Dse.Bounds.cycles cm s in
          let slo, shi = Dse.Bounds.seconds cm ~reps:1 s in
          Format.printf "static bounds (%s, %s):@." T.name
            (T.to_string config);
          Format.printf "  cycles   [%.0f, %.0f]" clo chi;
          (match Dse.Bounds.tightness ~lo:clo ~hi:chi with
          | Some r -> Format.printf "  (x%.2f)@." r
          | None -> Format.printf "  (unbounded)@.");
          Format.printf "  runtime  [%.9fs, %.9fs]@." slo shi;
          Format.printf "  loops    %d (%d bounded), call depth %s@."
            s.Minic.Bounds.loops s.Minic.Bounds.bounded_loops
            (match s.Minic.Bounds.call_depth with
            | Some d -> string_of_int d
            | None -> "recursive")
    end;
    (match trace with
    | None -> ()
    | Some n ->
        if T.name <> "leon2" then begin
          Logs.err (fun m ->
              m
                "--trace drives the LEON2 cycle model directly and is not \
                 available for target %s"
                T.name);
          exit exit_trace
        end;
        (* The instruction tracer drives the LEON2 Cpu model directly;
           recover the LEON2-typed configuration through the codec. *)
        (match Arch.Codec.of_string (T.to_string config) with
        | Ok c ->
            let cpu = Sim.Cpu.create c prog ~mem_size:(1 lsl 20) in
            Sim.Trace.pp Format.std_formatter (Sim.Trace.run ~limit:n cpu)
        | Error msg ->
            Logs.err (fun m -> m "--trace: %s" msg);
            exit 1));
    if run then begin
      (* run_program (backed by Machine.run rather than driving Cpu
         directly) so the execution shows up as a sim span and flushes
         its profile into the metrics registry for --metrics-out. *)
      match T.run_program ~mem_size:(1 lsl 20) config prog with
      | exception Sim.Cpu.Error msg ->
          Logs.err (fun m -> m "simulation error: %s" msg);
          exit 1
      | r ->
          let p = r.Sim.Machine.profile in
          Format.printf "result: %#x (%d cycles, %d instructions)@."
            r.Sim.Machine.checksum p.Sim.Profiler.cycles
            p.Sim.Profiler.instructions;
          if stats then Format.printf "%a@." Sim.Profiler.pp p
    end
  end

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"minic source (.mc) or program image (.img)")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the binary program image to $(docv).")

let disasm_arg = Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the generated assembly.")
let run_arg = Arg.(value & flag & info [ "r"; "run" ] ~doc:"Simulate on the base configuration.")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"With --run: print the full cycle profile.")
let optimize_arg = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the source-level optimizer before code generation (same as $(b,--O1)).")

let level_arg =
  Arg.(
    value
    & vflag None
        [
          (Some 1, info [ "O1" ] ~doc:"Optimize with local rewrites only.");
          ( Some 2,
            info [ "O2" ]
              ~doc:
                "Optimize with local rewrites plus dataflow-driven constant \
                 propagation and dead-store elimination." );
        ])

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static analyses and print diagnostics instead of \
           compiling.  Exits 4 if any error-level finding is reported.")

let werror_arg =
  Arg.(
    value & flag
    & info [ "Werror" ]
        ~doc:"With $(b,--lint): treat warnings as errors (notes stay notes).")

let bounds_arg =
  Arg.(
    value & flag
    & info [ "bounds" ]
        ~doc:
          "Print sound static [best-case, worst-case] cycle and runtime \
           bounds for the selected target and configuration, with the \
           tightness ratio worst/best.  Needs minic source.")

let trace_arg = Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N" ~doc:"Trace the first $(docv) executed instructions with cycle deltas (leon2 target only; exits 5 elsewhere).")
let config_arg = Arg.(value & opt (some string) None & info [ "c"; "config" ] ~docv:"CFG" ~doc:"Microarchitecture configuration string (see reconfigure's output), e.g. dc=1x32x4xrnd,mul=m32x32.")

let target_conv =
  let parse s =
    match Dse.Targets.find (String.lowercase_ascii s) with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown target %S (known: %s)" s
               (String.concat ", " Dse.Targets.names)))
  in
  let print ppf (module T : Dse.Target.S) = Format.fprintf ppf "%s" T.name in
  Arg.conv (parse, print)

let target_arg =
  let doc = "Soft-core target for $(b,--run)/$(b,--config) (leon2, microblaze)." in
  Arg.(
    value
    & opt target_conv (module Dse.Target_leon2 : Dse.Target.S)
    & info [ "target" ] ~doc ~docv:"TARGET")

let exits =
  Cmd.Exit.info 1 ~doc:"on configuration or simulation errors."
  :: Cmd.Exit.info exit_parse ~doc:"on parse errors."
  :: Cmd.Exit.info exit_check ~doc:"on static-check errors (unknown names, limit overflows)."
  :: Cmd.Exit.info exit_lint
       ~doc:
         "on lint findings: any error, or any warning under $(b,--Werror)."
  :: Cmd.Exit.info exit_trace
       ~doc:"when $(b,--trace) is requested on a target other than leon2."
  :: Cmd.Exit.defaults

let cmd =
  let doc = "minic compiler and simulator driver" in
  Cmd.v
    (Cmd.info "mcc" ~version:"1.0.0" ~doc ~exits)
    Term.(
      const run $ target_arg $ source_arg $ output_arg $ disasm_arg $ run_arg
      $ stats_arg $ optimize_arg $ level_arg $ lint_arg $ werror_arg
      $ bounds_arg $ trace_arg $ config_arg $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
