(* Differential fuzzing driver.

     fuzz list                        describe the available oracles
     fuzz run --seed 42 --budget 200  run every oracle, 200 trials each
     fuzz run --oracle interp-vs-sim  ... a single oracle
     fuzz run --corpus DIR            write shrunk failures to DIR
     fuzz replay FILE...              re-run corpus entries exactly

   A run is fully determined by the seed: each oracle draws from its
   own stream derived from (seed, oracle name), and every failure is
   written with the seed that reproduces it.  `replay` exits 0 when an
   entry no longer reproduces or is marked known-issue, 1 when an open
   entry still fails. *)

open Cmdliner

let list_cmd =
  let run obs =
    Obs_cli.with_reporting obs "fuzz" @@ fun () ->
    List.iter
      (fun o ->
        Format.printf "%-20s %s@." (Fuzz.Oracle.name o) (Fuzz.Oracle.doc o))
      Fuzz.Oracle.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the available oracles.")
    Term.(const run $ Obs_cli.term)

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Master random seed; each oracle derives its own stream from \
           $(docv) and its name.")

let budget_arg =
  Arg.(
    value & opt int 200
    & info [ "budget" ] ~docv:"K" ~doc:"Trials per oracle.")

let oracle_arg =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:"Run only $(docv) (repeatable; default: all oracles).")

let corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Write shrunk failures to $(docv) as replayable .repro entries \
           (created if missing).")

let run_cmd =
  let run seed budget names corpus_dir obs =
    Obs_cli.with_reporting obs "fuzz" @@ fun () ->
    match
      Fuzz.Runner.run ~names ?corpus_dir ~seed ~budget Format.std_formatter
    with
    | Error msg ->
        Format.eprintf "fuzz: %s@." msg;
        2
    | Ok reports ->
        if List.exists Fuzz.Runner.failed reports then 1 else 0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the differential oracles and shrink any failure to a minimal \
          counterexample.")
    Term.(
      const run $ seed_arg $ budget_arg $ oracle_arg $ corpus_arg
      $ Obs_cli.term)

let replay_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Corpus entries (.repro) to replay.")
  in
  let run files obs =
    Obs_cli.with_reporting obs "fuzz" @@ fun () ->
    let worst =
      List.fold_left
        (fun worst file ->
          match Fuzz.Runner.replay Format.std_formatter file with
          | Error msg ->
              Format.eprintf "fuzz: %s@." msg;
              max worst 2
          | Ok (Fuzz.Runner.Fixed | Fuzz.Runner.Still_failing_known _) -> worst
          | Ok Fuzz.Runner.Still_failing -> max worst 1)
        0 files
    in
    worst
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run corpus entries from their recorded oracle, seed, and trial \
          count.  Exits 0 if every entry is fixed or a known issue, 1 if an \
          open entry still reproduces.")
    Term.(const run $ files_arg $ Obs_cli.term)

let cmd =
  let doc = "differential fuzzer for the minic/sim/arch/optim stack" in
  Cmd.group
    (Cmd.info "fuzz" ~version:"1.0.0" ~doc
       ~exits:
         (Cmd.Exit.info 1 ~doc:"when an oracle or open corpus entry fails."
         :: Cmd.Exit.info 2 ~doc:"on unknown oracles or unreadable files."
         :: Cmd.Exit.defaults))
    [ list_cmd; run_cmd; replay_cmd ]

let () = exit (Cmd.eval' cmd)
