(* Bringing your own application: write a kernel in minic, wrap it as a
   registry entry, and run the full reconfiguration pipeline on it.

   The kernel here is a CRC-32 over a 12 KB message buffer — a typical
   embedded networking workload that is neither of the paper's four
   benchmarks.  Note how the optimizer's recommendation differs from
   both Arith's (this kernel is memory-streaming) and BLASTN's (its
   working set is smaller than 16 KB).

   Run with:  dune exec examples/custom_app.exe                      *)

open Minic.Ast

let message_bytes = 12288

(* Bitwise CRC-32 (reflected, polynomial 0xEDB88320). *)
let crc_fn =
  {
    name = "crc32";
    params = [ "len" ];
    locals = [ "crc"; "k"; "b"; "j" ];
    body =
      [
        Set ("crc", i 0xFFFFFFFF);
        Set ("k", i 0);
        While
          ( v "k" < v "len",
            [
              Set ("b", idx "msg" (v "k"));
              Set ("crc", v "crc" ^^^ v "b");
              Set ("j", i 0);
              While
                ( v "j" < i 8,
                  [
                    If
                      ( (v "crc" &&& i 1) = i 1,
                        [ Set ("crc", (v "crc" >>> i 1) ^^^ i 0xEDB88320) ],
                        [ Set ("crc", v "crc" >>> i 1) ] );
                    Set ("j", v "j" + i 1);
                  ] );
              Set ("k", v "k" + i 1);
            ] );
        Ret (v "crc" ^^^ i 0xFFFFFFFF);
      ];
  }

let main_fn =
  {
    name = "main";
    params = [];
    locals = [ "r" ];
    body = [ Set ("r", Call ("crc32", [ i message_bytes ])); Ret (v "r") ];
  }

let source =
  {
    globals =
      [
        Array_init
          ( "msg",
            Byte,
            Array.map
              (fun x -> x land 0xFF)
              (Apps.Workload.lcg_stream ~seed:0xC4C ~len:message_bytes) );
      ];
    funcs = [ crc_fn; main_fn ];
  }

let app =
  {
    Apps.Registry.name = "crc32";
    description = "CRC-32 of a 12 KB message (custom example kernel)";
    source;
    program = lazy (Minic.Codegen.compile source);
    reps = 200;
    paper_base_seconds = Float.nan;
  }

let () =
  (* Sanity: the reference interpreter and the simulator must agree
     (this also bounds-checks every array access). *)
  let expected = Apps.Registry.interp_checksum app in
  let got = (Apps.Registry.run app).Sim.Machine.checksum in
  assert (Int.equal expected got);
  Format.printf "crc32 checksum: %#x (interpreter and simulator agree)@.@."
    got;

  let outcome = Dse.Optimizer.run ~weights:Dse.Cost.runtime_weights app in
  Format.printf "Recommended configuration for crc32:@.%a@.@." Arch.Config.pp
    outcome.Dse.Optimizer.config;
  Dse.Report.print_outcome_summary Format.std_formatter outcome
