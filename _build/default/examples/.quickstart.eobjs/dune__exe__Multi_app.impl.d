examples/multi_app.ml: Apps Dse Format
