examples/cache_tuning.ml: Apps Arch Dse Format List Synth Sys
