examples/miss_curve.ml: Apps Arch Dse Format Lazy List Sim Sys
