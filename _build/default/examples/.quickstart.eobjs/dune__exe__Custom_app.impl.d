examples/custom_app.ml: Apps Arch Array Dse Float Format Int Minic Sim
