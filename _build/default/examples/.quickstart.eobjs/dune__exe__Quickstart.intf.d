examples/quickstart.mli:
