examples/miss_curve.mli:
