examples/quickstart.ml: Apps Arch Dse Format
