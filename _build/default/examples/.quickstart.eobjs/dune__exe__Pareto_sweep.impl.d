examples/pareto_sweep.ml: Apps Dse Format List String Synth Sys
