examples/cache_tuning.mli:
