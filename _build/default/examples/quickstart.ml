(* Quickstart: optimize the LEON2 microarchitecture for one application.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let app = Apps.Registry.blastn in

  (* 1. Execute the application on the default (base) configuration. *)
  let base = Dse.Measure.measure app Arch.Config.base in
  Format.printf "%s on the base configuration: %a@." app.Apps.Registry.name
    Dse.Cost.pp base;

  (* 2. Run the automatic reconfiguration pipeline: one-at-a-time cost
     model -> BINLP -> exact solve -> decode -> verify by rebuild. *)
  let outcome = Dse.Optimizer.run ~weights:Dse.Cost.runtime_weights app in

  (* 3. Inspect the recommendation. *)
  Format.printf "@.Recommended configuration:@.%a@.@." Arch.Config.pp
    outcome.Dse.Optimizer.config;
  Dse.Report.print_outcome_summary Format.std_formatter outcome;

  let gain =
    100.0
    *. (base.Dse.Cost.seconds -. outcome.Dse.Optimizer.actual.Dse.Cost.seconds)
    /. base.Dse.Cost.seconds
  in
  Format.printf "@.Runtime improved by %.2f%% over the base configuration.@."
    gain
