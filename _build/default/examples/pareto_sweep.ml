(* Performance-resource tradeoff: sweep the objective weights between
   the paper's two extremes (runtime-dominant w1=100/w2=1 and
   resource-dominant w1=1/w2=100) and map the Pareto frontier the
   developer can choose from — the "performance-resource tradeoffs in
   hours" workflow of the paper's conclusion.

   Run with:  dune exec examples/pareto_sweep.exe [app]              *)

let weight_points =
  [ (100.0, 0.0); (100.0, 1.0); (20.0, 5.0); (5.0, 20.0); (1.0, 100.0); (0.0, 100.0) ]

let points = ref []

let () =
  let app =
    match Sys.argv with
    | [| _; name |] -> Apps.Registry.find name
    | _ -> Apps.Registry.blastn
  in
  Format.printf "Weight sweep for %s@.@." app.Apps.Registry.name;

  (* One model serves every weighting: measurement dominates cost, the
     exact solve is milliseconds. *)
  let model = Dse.Measure.build app in
  Format.printf "%8s %8s %12s %7s %7s %9s  %s@." "w1" "w2" "runtime(s)" "LUT%"
    "BRAM%" "chipcost" "reconfigured parameters";
  List.iter
    (fun (w1, w2) ->
      let outcome =
        Dse.Optimizer.run_with_model ~weights:{ Dse.Cost.w1; w2 } model
      in
      let a = outcome.Dse.Optimizer.actual in
      let params =
        Dse.Report.changed_params outcome.Dse.Optimizer.config
        |> List.map (fun (k, v) -> k ^ "=" ^ v)
        |> String.concat ", "
      in
      points := (Synth.Resource.chip_cost a.Dse.Cost.resources, a.Dse.Cost.seconds) :: !points;
      Format.printf "%8.1f %8.1f %12.3f %6d%% %6d%% %9.1f  %s@." w1 w2
        a.Dse.Cost.seconds
        (Synth.Resource.lut_percent_int a.Dse.Cost.resources)
        (Synth.Resource.bram_percent_int a.Dse.Cost.resources)
        (Synth.Resource.chip_cost a.Dse.Cost.resources)
        params)
    weight_points;
  Format.printf "@.";
  Dse.Plot.xy ~x_label:"chip cost (LUT%+BRAM%)" ~y_label:"runtime (s)"
    Format.std_formatter !points;
  Format.printf
    "@.Each row is the exact BINLP optimum for its weighting; runtime falls \
     and chip cost rises as w1 grows.@."
