(* Miss-rate curves from one traced execution: the "smart sampling"
   direction of the paper's future work.

   One simulation captures the data-read address trace; Mattson
   stack-distance analysis then predicts the read-miss count of every
   LRU cache capacity at once.  We compare the prediction against
   actually simulating each dcache size (4-way LRU, the closest
   realizable geometry).

   Run with:  dune exec examples/miss_curve.exe [app]               *)

let () =
  let app =
    match Sys.argv with
    | [| _; name |] -> Apps.Registry.find name
    | _ -> Apps.Registry.blastn
  in
  let prog = Lazy.force app.Apps.Registry.program in
  Format.printf "Data-read miss-rate curve for %s@.@." app.Apps.Registry.name;

  let trace = Sim.Machine.trace_reads Arch.Config.base prog in
  let line_bytes = Arch.Config.base.Arch.Config.dcache.line_words * 4 in
  let sd = Sim.Stackdist.analyze ~line_bytes trace in
  Format.printf
    "trace: %d reads, %d cold misses, working set %d lines (%d KB)@.@."
    (Sim.Stackdist.accesses sd)
    (Sim.Stackdist.cold_misses sd)
    (Sim.Stackdist.max_distance sd)
    (Sim.Stackdist.max_distance sd * line_bytes / 1024);

  Format.printf "%8s %18s %18s@." "KB" "predicted misses" "simulated (4-way LRU)";
  List.iter
    (fun kb ->
      let predicted = Sim.Stackdist.misses sd ~lines:(kb * 1024 / line_bytes) in
      (* Simulate the nearest realizable geometry: 4 ways of kb/4 each
         (LRU), for capacities >= 4 KB; smaller ones use 1 way. *)
      let ways, way_kb, repl =
        if kb >= 4 then (4, kb / 4, Arch.Config.Lru)
        else (1, kb, Arch.Config.Random)
      in
      let config =
        { Arch.Config.base with
          dcache = { Arch.Config.ways; way_kb; line_words = 8; replacement = repl } }
      in
      let cpu = Sim.Machine.run_once config prog in
      let simulated = (Sim.Cpu.profile cpu).Sim.Profiler.dcache_read_misses in
      Format.printf "%8d %18d %18d@." kb predicted simulated)
    [ 1; 2; 4; 8; 16; 32; 64 ];
  let curve =
    Sim.Stackdist.miss_curve sd ~capacities_kb:[ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Format.printf "@.";
  Dse.Plot.xy ~x_label:"dcache KB" ~y_label:"predicted read misses"
    Format.std_formatter
    (Dse.Plot.series_to_floats curve);
  Format.printf
    "@.One traced run predicts the whole sweep; each simulated row would \
     cost the paper a full build + execution.@."
